// Budget planner: sweeps the inter-DC cost budget B and shows the
// performance/cost trade-off RLCut negotiates (the Exp#2 mechanism) —
// useful for choosing a budget before a large production run.
//
//   ./budget_planner [--graph=OT] [--scale=4000]

#include <iostream>

#include "cloud/topology.h"
#include "common/flags.h"
#include "common/table_writer.h"
#include "graph/datasets.h"
#include "graph/geo.h"
#include "rlcut/rlcut_partitioner.h"

int main(int argc, char** argv) {
  using namespace rlcut;

  FlagParser flags;
  flags.DefineString("graph", "OT", "dataset preset (LJ/OT/UK/IT/TW)");
  flags.DefineInt("scale", 4000, "dataset down-scale factor");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s.ToString() << "\n" << flags.Usage(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.Usage(argv[0]);
    return 0;
  }

  Result<Dataset> dataset = ParseDataset(flags.GetString("graph"));
  if (!dataset.ok()) {
    std::cerr << dataset.status().ToString() << "\n";
    return 1;
  }
  Graph graph = LoadDataset(*dataset,
                            static_cast<uint64_t>(flags.GetInt("scale")));
  Topology topology = MakeEc2Topology();
  std::vector<DcId> locations =
      AssignGeoLocations(graph, GeoLocatorOptions{});
  std::vector<double> input_sizes = AssignInputSizes(graph);

  // Centralized-move cost anchor.
  const DcId hub = topology.CheapestUploadDc();
  double centralized = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (locations[v] != hub) {
      centralized += topology.UploadCost(locations[v], input_sizes[v]);
    }
  }

  PartitionerContext ctx;
  ctx.graph = &graph;
  ctx.topology = &topology;
  ctx.locations = &locations;
  ctx.input_sizes = &input_sizes;
  ctx.workload = Workload::PageRank();
  ctx.theta = PartitionState::AutoTheta(graph);

  std::cout << "Dataset " << DatasetName(*dataset) << ": "
            << graph.num_vertices() << " vertices, " << graph.num_edges()
            << " edges. Centralized move cost: $" << centralized << "\n\n";

  TableWriter table({"Budget(%centralized)", "Budget($)", "Transfer(s)",
                     "Cost($)", "WithinBudget"});
  for (double fraction : {0.01, 0.10, 0.40, 0.50, 1.00}) {
    ctx.budget = fraction * centralized;
    RLCutOptions options;
    options.max_steps = 10;
    RLCutRunOutput out = RunRLCut(ctx, options);
    const Objective obj = out.state.CurrentObjective();
    table.AddRow({Fmt(fraction * 100, 0), Fmt(ctx.budget, 4),
                  Fmt(obj.transfer_seconds, 6), Fmt(obj.cost_dollars, 4),
                  obj.cost_dollars <= ctx.budget * 1.001 ? "yes" : "NO"});
  }
  table.Print(std::cout);
  std::cout << "\nLooser budgets let RLCut search a larger placement space "
               "and find faster plans (Exp#2).\n";
  return 0;
}
