// Tour of the analytics engines: runs all five vertex programs over one
// RLCut-partitioned graph on the synchronous engine, the monotone ones
// on the asynchronous engine too, and cross-checks every result against
// its single-machine reference.
//
//   ./algorithms_tour [--graph=LJ] [--scale=2000]

#include <cmath>
#include <iostream>

#include "cloud/topology.h"
#include "common/flags.h"
#include "common/table_writer.h"
#include "engine/async_engine.h"
#include "engine/gas_engine.h"
#include "engine/reference.h"
#include "engine/vertex_program.h"
#include "graph/datasets.h"
#include "graph/geo.h"
#include "graph/transform.h"
#include "rlcut/rlcut_partitioner.h"

namespace {

using namespace rlcut;

double MaxError(const std::vector<double>& got,
                const std::vector<double>& want) {
  double max_err = 0;
  for (size_t i = 0; i < got.size(); ++i) {
    if (std::isinf(want[i]) && std::isinf(got[i])) continue;
    max_err = std::max(max_err, std::fabs(got[i] - want[i]));
  }
  return max_err;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.DefineString("graph", "LJ", "dataset preset (LJ/OT/UK/IT/TW)");
  flags.DefineInt("scale", 2000, "dataset down-scale factor");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s.ToString() << "\n" << flags.Usage(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.Usage(argv[0]);
    return 0;
  }
  Result<Dataset> dataset = ParseDataset(flags.GetString("graph"));
  if (!dataset.ok()) {
    std::cerr << dataset.status().ToString() << "\n";
    return 1;
  }

  Graph graph = LoadDataset(*dataset,
                            static_cast<uint64_t>(flags.GetInt("scale")));
  Topology topology = MakeEc2Topology();
  std::vector<DcId> locations =
      AssignGeoLocations(graph, GeoLocatorOptions{});
  std::vector<double> input_sizes = AssignInputSizes(graph);

  PartitionerContext ctx;
  ctx.graph = &graph;
  ctx.topology = &topology;
  ctx.locations = &locations;
  ctx.input_sizes = &input_sizes;
  ctx.workload = Workload::PageRank();
  ctx.theta = PartitionState::AutoTheta(graph);
  ctx.budget = 1e9;

  RLCutOptions options;
  options.max_steps = 5;
  RLCutRunOutput out = RunRLCut(ctx, options);
  const PartitionState& state = out.state;

  std::cout << "Dataset " << DatasetName(*dataset) << ": "
            << graph.num_vertices() << " vertices, " << graph.num_edges()
            << " edges; RLCut partitioning over " << topology.num_dcs()
            << " DCs\n\n";

  TableWriter table({"Algorithm", "Engine", "Transfer(s)", "WAN(MB)",
                     "MaxErrVsReference"});

  // PageRank (sync only: not monotone).
  {
    auto program = MakePageRank(10);
    GasEngine engine(&state);
    const RunResult run = engine.Run(program.get());
    table.AddRow({"PageRank", "sync", Fmt(run.total_transfer_seconds, 6),
                  Fmt(run.total_wan_bytes / 1e6, 3),
                  Fmt(MaxError(run.values, ReferencePageRank(graph, 10)),
                      12)});
  }
  // SSSP and weighted SSSP: sync + async.
  {
    auto program = MakeSssp(0);
    GasEngine engine(&state);
    const RunResult run = engine.Run(program.get());
    table.AddRow({"SSSP", "sync", Fmt(run.total_transfer_seconds, 6),
                  Fmt(run.total_wan_bytes / 1e6, 3),
                  Fmt(MaxError(run.values, ReferenceSssp(graph, 0)), 12)});
    auto async_program = MakeSssp(0);
    AsyncGasEngine async_engine(&state);
    const AsyncRunResult async = async_engine.Run(async_program.get());
    table.AddRow({"SSSP", "async", Fmt(async.completion_seconds, 6),
                  Fmt(async.total_bytes / 1e6, 3),
                  Fmt(MaxError(async.values, ReferenceSssp(graph, 0)),
                      12)});
  }
  {
    auto program = MakeWeightedSssp(0, 8);
    GasEngine engine(&state);
    const RunResult run = engine.Run(program.get());
    table.AddRow({"WeightedSSSP", "sync",
                  Fmt(run.total_transfer_seconds, 6),
                  Fmt(run.total_wan_bytes / 1e6, 3),
                  Fmt(MaxError(run.values,
                               ReferenceWeightedSssp(graph, 0, 8)),
                      12)});
  }
  // Connected components need the symmetrized graph: build a state over
  // it with the same masters (vertex ids are unchanged).
  {
    Graph sym = Symmetrize(graph);
    std::vector<double> sym_sizes = AssignInputSizes(sym);
    PartitionConfig config;
    config.model = ComputeModel::kHybridCut;
    config.theta = ctx.theta;
    config.workload = Workload::PageRank();
    PartitionState sym_state(&sym, &topology, &locations, &sym_sizes,
                             config);
    sym_state.ResetDerived(state.masters());
    auto program = MakeConnectedComponents();
    GasEngine engine(&sym_state);
    const RunResult run = engine.Run(program.get());
    table.AddRow({"ConnectedComp", "sync",
                  Fmt(run.total_transfer_seconds, 6),
                  Fmt(run.total_wan_bytes / 1e6, 3),
                  Fmt(MaxError(run.values,
                               ReferenceConnectedComponents(sym)),
                      12)});
  }
  // Subgraph isomorphism (labeled-path counting).
  {
    const std::vector<int> pattern = {0, 1, 2, 1};
    auto program = MakeSubgraphIsomorphism(pattern, 4);
    GasEngine engine(&state);
    const RunResult run = engine.Run(program.get());
    double got = 0;
    for (double c : run.values) got += c;
    const double want = ReferencePathMatchCount(graph, pattern, 4);
    table.AddRow({"SubgraphIso", "sync",
                  Fmt(run.total_transfer_seconds, 6),
                  Fmt(run.total_wan_bytes / 1e6, 3),
                  Fmt(std::fabs(got - want), 12)});
  }

  table.Print(std::cout);
  std::cout << "\nAll MaxErrVsReference values are ~0: distributed "
               "execution is exact regardless of the partitioning.\n";
  return 0;
}
