// End-to-end geo-distributed PageRank: partition one of the paper's
// dataset presets with several methods, execute PageRank on the
// simulated PowerLyra runtime, and compare the *realized* inter-DC
// transfer time and upload cost of each plan. Also cross-checks the
// computed ranks against a single-machine reference.
//
//   ./geo_pagerank [--graph=LJ] [--scale=2000] [--iterations=10]

#include <cmath>
#include <iostream>
#include <memory>
#include <utility>

#include "baselines/partitioner.h"
#include "cloud/topology.h"
#include "common/flags.h"
#include "common/table_writer.h"
#include "engine/gas_engine.h"
#include "engine/reference.h"
#include "engine/vertex_program.h"
#include "graph/datasets.h"
#include "graph/geo.h"
#include "rlcut/rlcut_partitioner.h"

int main(int argc, char** argv) {
  using namespace rlcut;

  FlagParser flags;
  flags.DefineString("graph", "LJ", "dataset preset (LJ/OT/UK/IT/TW)");
  flags.DefineInt("scale", 2000, "dataset down-scale factor");
  flags.DefineInt("iterations", 10, "PageRank iterations");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s.ToString() << "\n" << flags.Usage(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.Usage(argv[0]);
    return 0;
  }

  Result<Dataset> dataset = ParseDataset(flags.GetString("graph"));
  if (!dataset.ok()) {
    std::cerr << dataset.status().ToString() << "\n";
    return 1;
  }
  const int iterations = static_cast<int>(flags.GetInt("iterations"));

  Graph graph = LoadDataset(*dataset,
                            static_cast<uint64_t>(flags.GetInt("scale")));
  Topology topology = MakeEc2Topology();
  std::vector<DcId> locations =
      AssignGeoLocations(graph, GeoLocatorOptions{});
  std::vector<double> input_sizes = AssignInputSizes(graph);

  PartitionerContext ctx;
  ctx.graph = &graph;
  ctx.topology = &topology;
  ctx.locations = &locations;
  ctx.input_sizes = &input_sizes;
  ctx.workload = Workload::PageRank(iterations);
  ctx.theta = PartitionState::AutoTheta(graph);
  ctx.budget = 1e9;  // loose: this example compares performance only

  std::cout << "Dataset " << DatasetName(*dataset) << " @1/"
            << flags.GetInt("scale") << ": " << graph.num_vertices()
            << " vertices, " << graph.num_edges() << " edges\n\n";

  const std::vector<double> reference =
      ReferencePageRank(graph, iterations);

  std::vector<std::unique_ptr<Partitioner>> methods;
  for (const char* name : {"RandPG", "HashPL", "Ginger", "RLCut"}) {
    methods.push_back(
        MakePartitionerByName(name, PartitionerOptions{}).value());
  }

  TableWriter table({"Method", "PartitionOverhead(s)", "RealizedTransfer(s)",
                     "UploadCost($)", "WAN(MB)", "lambda", "MaxRankErr"});
  for (auto& method : methods) {
    Result<PartitionOutput> result = method->Run(ctx);
    if (!result.ok()) {
      std::cerr << "error: " << method->name()
                << " failed: " << result.status().ToString() << "\n";
      return 1;
    }
    PartitionOutput out = std::move(*result);
    auto program = MakePageRank(iterations);
    GasEngine engine(&out.state);
    const RunResult run = engine.Run(program.get());

    double max_err = 0;
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      max_err = std::max(max_err, std::fabs(run.values[v] - reference[v]));
    }
    table.AddRow({method->name(), Fmt(out.overhead_seconds, 4),
                  Fmt(run.total_transfer_seconds, 6),
                  Fmt(run.total_upload_cost, 4),
                  Fmt(run.total_wan_bytes / 1e6, 2),
                  Fmt(out.state.ReplicationFactor(), 2),
                  Fmt(max_err, 12)});
  }
  table.Print(std::cout);
  std::cout << "\nMaxRankErr is the largest deviation from a single-machine "
               "PageRank: the distributed execution is exact regardless of "
               "the partitioning.\n";
  return 0;
}
