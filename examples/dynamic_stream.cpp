// Dynamic repartitioning demo: a diurnal edge stream (Stack-Overflow-like,
// Fig. 4) arrives in fixed windows; RLCut adapts the partitioning within
// a per-window time budget while Spinner adapts best-effort. Prints the
// per-window overhead and resulting transfer time of both.
//
//   ./dynamic_stream [--windows=6] [--window_budget=0.5]

#include <iostream>
#include <memory>

#include "cloud/topology.h"
#include "common/flags.h"
#include "common/table_writer.h"
#include "graph/geo.h"
#include "graph/temporal.h"
#include "rlcut/dynamic.h"

int main(int argc, char** argv) {
  using namespace rlcut;

  FlagParser flags;
  flags.DefineInt("windows", 6, "number of insertion windows to replay");
  flags.DefineDouble("window_budget", 0.5,
                     "per-window adaptation budget, seconds");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s.ToString() << "\n" << flags.Usage(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.Usage(argv[0]);
    return 0;
  }
  const int num_windows = static_cast<int>(flags.GetInt("windows"));
  const double window_budget = flags.GetDouble("window_budget");

  // A 24h diurnal stream; the first 60% of edges form the initial graph
  // and the rest arrive in equal-duration windows.
  TemporalStreamOptions stream_opt;
  stream_opt.num_vertices = 4096;
  stream_opt.num_edges = 1 << 16;
  TemporalGraph stream = GenerateDiurnalStream(stream_opt);

  const double split_time = stream_opt.horizon_seconds * 0.6;
  const double window_len =
      (stream_opt.horizon_seconds - split_time) / num_windows;

  std::vector<Edge> initial;
  for (uint64_t i = 0; i < stream.CountBefore(split_time); ++i) {
    initial.push_back(stream.edges()[i].edge);
  }

  Topology topology = MakeEc2Topology();
  Graph full = stream.Prefix(stream.edges().size());
  std::vector<DcId> locations =
      AssignGeoLocations(full, GeoLocatorOptions{});

  RLCutOptions initial_opt;
  initial_opt.max_steps = 8;
  RLCutOptions window_opt;
  window_opt.max_steps = 10;
  window_opt.t_opt_seconds = window_budget;

  RLCutDynamicDriver rlcut_driver(&topology, Workload::PageRank(),
                                  PartitionState::AutoTheta(full), 3,
                                  initial_opt, window_opt);
  SpinnerDynamicDriver spinner_driver(&topology, Workload::PageRank(),
                                      PartitionState::AutoTheta(full), 3,
                                      SpinnerOptions{});

  std::cout << "Initial graph: " << initial.size()
            << " edges; replaying " << num_windows << " windows of "
            << window_len / 3600 << " h each (budget " << window_budget
            << " s/window)\n\n";

  rlcut_driver.Initialize(stream_opt.num_vertices, initial, locations);
  spinner_driver.Initialize(stream_opt.num_vertices, initial, locations);

  TableWriter table({"Window", "NewEdges", "RLCut-ovh(s)", "RLCut-T(s)",
                     "Spinner-ovh(s)", "Spinner-T(s)"});
  for (int w = 0; w < num_windows; ++w) {
    const double t0 = split_time + w * window_len;
    const std::vector<Edge> window = stream.EdgesInWindow(t0, t0 + window_len);
    if (window.empty()) continue;
    const WindowResult ours = rlcut_driver.InsertWindow(window);
    const WindowResult theirs = spinner_driver.InsertWindow(window);
    table.AddRow({Fmt(static_cast<int64_t>(w)),
                  Fmt(static_cast<uint64_t>(window.size())),
                  Fmt(ours.overhead_seconds, 4),
                  Fmt(ours.transfer_seconds, 6),
                  Fmt(theirs.overhead_seconds, 4),
                  Fmt(theirs.transfer_seconds, 6)});
  }
  table.Print(std::cout);
  std::cout << "\nRLCut sizes its per-window training to the budget; "
               "Spinner runs to convergence regardless (Sec. VI, Exp#5).\n";
  return 0;
}
