// Quickstart: partition a small skewed graph across the eight EC2
// regions with RLCut and print the resulting plan quality.
//
//   ./quickstart [--vertices=4096] [--edges=32768] [--budget_fraction=0.4]

#include <iostream>

#include "rlcut/api.h"

int main(int argc, char** argv) {
  using namespace rlcut;

  FlagParser flags;
  flags.DefineInt("vertices", 4096, "number of vertices");
  flags.DefineInt("edges", 32768, "number of edges");
  flags.DefineDouble("budget_fraction", 0.4,
                     "budget as a fraction of the centralized-move cost");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s.ToString() << "\n" << flags.Usage(argv[0]);
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.Usage(argv[0]);
    return 0;
  }

  // 1. A skewed social-network-like graph, geo-scattered over 8 DCs.
  PowerLawOptions graph_opt;
  graph_opt.num_vertices = static_cast<VertexId>(flags.GetInt("vertices"));
  graph_opt.num_edges = static_cast<uint64_t>(flags.GetInt("edges"));
  Graph graph = GeneratePowerLaw(graph_opt);
  Topology topology = MakeEc2Topology();
  std::vector<DcId> locations =
      AssignGeoLocations(graph, GeoLocatorOptions{});
  std::vector<double> input_sizes = AssignInputSizes(graph);

  // 2. Budget: a fraction of what moving everything to the cheapest DC
  //    would cost (the paper's Sec. VI-A4 convention).
  const DcId hub = topology.CheapestUploadDc();
  double centralized_cost = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (locations[v] != hub) {
      centralized_cost += topology.UploadCost(locations[v], input_sizes[v]);
    }
  }
  const double budget =
      flags.GetDouble("budget_fraction") * centralized_cost;

  // 3. Partition with RLCut.
  PartitionerContext ctx;
  ctx.graph = &graph;
  ctx.topology = &topology;
  ctx.locations = &locations;
  ctx.input_sizes = &input_sizes;
  ctx.workload = Workload::PageRank();
  ctx.theta = PartitionState::AutoTheta(graph);
  ctx.budget = budget;

  RLCutOptions options;
  options.max_steps = 10;
  RLCutRunOutput out = RunRLCut(ctx, options);

  // 4. Report.
  std::cout << "Graph: " << graph.num_vertices() << " vertices, "
            << graph.num_edges() << " edges over " << topology.num_dcs()
            << " DCs (theta=" << ctx.theta << ")\n";
  std::cout << "Budget: $" << budget << " (centralized move would cost $"
            << centralized_cost << ")\n\n";
  std::cout << "RLCut finished in " << out.train.overhead_seconds
            << " s over " << out.train.steps.size() << " steps\n";
  std::cout << MakeReport(out.state).ToString() << "\n\n";
  std::cout << "Per-step objective trace:\n";
  for (const StepStats& s : out.train.steps) {
    std::cout << "  step " << s.step << ": SR=" << s.sample_rate
              << " agents=" << s.num_agents
              << " transfer=" << s.transfer_seconds << "s"
              << " cost=$" << s.cost_dollars
              << " (moves=" << s.migrations << ", rollbacks=" << s.rollbacks
              << ")\n";
  }
  return 0;
}
