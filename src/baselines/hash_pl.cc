#include <vector>

#include "baselines/partitioner.h"
#include "common/random.h"
#include "common/timer.h"

namespace rlcut {
namespace {

/// PowerLyra's hash-based hybrid-cut: every vertex's master is
/// hash(v) % M; edges follow the low-cut/high-cut placement rules.
class HashPlPartitioner : public Partitioner {
 public:
  std::string name() const override { return "HashPL"; }
  ComputeModel model() const override { return ComputeModel::kHybridCut; }

  PartitionOutput DoRun(const PartitionerContext& ctx) override {
    WallTimer timer;
    const int num_dcs = ctx.topology->num_dcs();
    std::vector<DcId> masters(ctx.graph->num_vertices());
    for (VertexId v = 0; v < ctx.graph->num_vertices(); ++v) {
      masters[v] = static_cast<DcId>(HashU64(v ^ ctx.seed) % num_dcs);
    }

    PartitionConfig config;
    config.model = ComputeModel::kHybridCut;
    config.theta = ctx.theta;
    config.workload = ctx.workload;
    PartitionState state(ctx.graph, ctx.topology, ctx.locations,
                         ctx.input_sizes, config);
    state.ResetDerived(masters);
    return PartitionOutput(std::move(state), timer.ElapsedSeconds());
  }
};

}  // namespace

std::unique_ptr<Partitioner> MakeHashPl() {
  return std::make_unique<HashPlPartitioner>();
}

}  // namespace rlcut
