#include <algorithm>
#include <numeric>
#include <vector>

#include "baselines/extra_partitioners.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/timer.h"

namespace rlcut {
namespace {

/// One level of the coarsening hierarchy: an undirected weighted graph
/// in adjacency-list form plus the mapping to the finer level.
struct CoarseLevel {
  // CSR-ish adjacency: per vertex, (neighbor, edge weight) pairs.
  std::vector<std::vector<std::pair<VertexId, double>>> adjacency;
  std::vector<double> vertex_weight;
  // fine_to_coarse[v] = coarse vertex that fine vertex v merged into.
  std::vector<VertexId> fine_to_coarse;
};

/// Builds the base level from the (directed, possibly multi-) graph:
/// symmetrized, parallel edges merged into weights.
CoarseLevel BuildBaseLevel(const Graph& graph) {
  CoarseLevel level;
  const VertexId n = graph.num_vertices();
  level.adjacency.resize(n);
  level.vertex_weight.assign(n, 1.0);
  // Accumulate undirected weights.
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const Edge edge = graph.GetEdge(e);
    if (edge.src == edge.dst) continue;
    level.adjacency[edge.src].push_back({edge.dst, 1.0});
    level.adjacency[edge.dst].push_back({edge.src, 1.0});
  }
  // Merge parallel entries.
  for (auto& neighbors : level.adjacency) {
    std::sort(neighbors.begin(), neighbors.end());
    size_t out = 0;
    for (size_t i = 0; i < neighbors.size();) {
      size_t j = i;
      double weight = 0;
      while (j < neighbors.size() &&
             neighbors[j].first == neighbors[i].first) {
        weight += neighbors[j].second;
        ++j;
      }
      neighbors[out++] = {neighbors[i].first, weight};
      i = j;
    }
    neighbors.resize(out);
  }
  return level;
}

/// Heavy-edge matching coarsening: each unmatched vertex merges with its
/// heaviest unmatched neighbor. Returns the coarser level.
CoarseLevel Coarsen(const CoarseLevel& fine, Rng& rng) {
  const VertexId n = static_cast<VertexId>(fine.adjacency.size());
  std::vector<VertexId> match(n, static_cast<VertexId>(-1));
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0u);
  rng.Shuffle(order);

  for (VertexId v : order) {
    if (match[v] != static_cast<VertexId>(-1)) continue;
    VertexId best = v;  // self-match = stays single
    double best_weight = -1;
    for (const auto& [u, w] : fine.adjacency[v]) {
      if (u != v && match[u] == static_cast<VertexId>(-1) &&
          w > best_weight) {
        best_weight = w;
        best = u;
      }
    }
    match[v] = best;
    match[best] = v;
  }

  // Assign coarse ids.
  CoarseLevel coarse;
  coarse.fine_to_coarse.assign(n, static_cast<VertexId>(-1));
  VertexId next_id = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (coarse.fine_to_coarse[v] != static_cast<VertexId>(-1)) continue;
    const VertexId partner = match[v];
    coarse.fine_to_coarse[v] = next_id;
    coarse.fine_to_coarse[partner] = next_id;  // may be v itself
    ++next_id;
  }
  coarse.adjacency.resize(next_id);
  coarse.vertex_weight.assign(next_id, 0.0);
  for (VertexId v = 0; v < n; ++v) {
    coarse.vertex_weight[coarse.fine_to_coarse[v]] +=
        fine.vertex_weight[v];
  }
  for (VertexId v = 0; v < n; ++v) {
    const VertexId cv = coarse.fine_to_coarse[v];
    for (const auto& [u, w] : fine.adjacency[v]) {
      const VertexId cu = coarse.fine_to_coarse[u];
      if (cu != cv) coarse.adjacency[cv].push_back({cu, w});
    }
  }
  for (auto& neighbors : coarse.adjacency) {
    std::sort(neighbors.begin(), neighbors.end());
    size_t out = 0;
    for (size_t i = 0; i < neighbors.size();) {
      size_t j = i;
      double weight = 0;
      while (j < neighbors.size() &&
             neighbors[j].first == neighbors[i].first) {
        weight += neighbors[j].second;
        ++j;
      }
      neighbors[out++] = {neighbors[i].first, weight};
      i = j;
    }
    neighbors.resize(out);
  }
  return coarse;
}

/// Greedy balanced initial assignment of the coarsest level.
std::vector<DcId> InitialAssignment(const CoarseLevel& level,
                                    int num_dcs) {
  const VertexId n = static_cast<VertexId>(level.adjacency.size());
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0u);
  // Heaviest first, then greedy least-loaded with locality preference.
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return level.vertex_weight[a] > level.vertex_weight[b];
  });
  double total_weight = 0;
  for (double w : level.vertex_weight) total_weight += w;
  // Hard capacity: without it, locality gains funnel everything into
  // one partition and refinement cannot recover balance.
  const double capacity =
      1.05 * total_weight / static_cast<double>(num_dcs);

  std::vector<DcId> assign(n, kNoDc);
  std::vector<double> load(num_dcs, 0);
  std::vector<double> gain(num_dcs, 0);
  for (VertexId v : order) {
    std::fill(gain.begin(), gain.end(), 0.0);
    for (const auto& [u, w] : level.adjacency[v]) {
      if (assign[u] != kNoDc) gain[assign[u]] += w;
    }
    DcId best = kNoDc;
    double best_score = -1e300;
    for (DcId r = 0; r < num_dcs; ++r) {
      if (load[r] + level.vertex_weight[v] > capacity) continue;
      // Locality first; break ties toward the least-loaded partition.
      const double score = gain[r] - 1e-6 * load[r];
      if (score > best_score) {
        best_score = score;
        best = r;
      }
    }
    if (best == kNoDc) {
      // Every partition at capacity (possible when one coarse vertex
      // outweighs the capacity): fall back to least-loaded.
      best = 0;
      for (DcId r = 1; r < num_dcs; ++r) {
        if (load[r] < load[best]) best = r;
      }
    }
    assign[v] = best;
    load[best] += level.vertex_weight[v];
  }
  return assign;
}

/// Boundary refinement: move vertices to the neighboring partition with
/// the largest edge-weight gain, subject to a balance cap.
void Refine(const CoarseLevel& level, std::vector<DcId>& assign,
            int num_dcs, int passes, Rng& rng) {
  const VertexId n = static_cast<VertexId>(level.adjacency.size());
  std::vector<double> load(num_dcs, 0);
  double total_weight = 0;
  for (VertexId v = 0; v < n; ++v) {
    load[assign[v]] += level.vertex_weight[v];
    total_weight += level.vertex_weight[v];
  }
  const double capacity =
      1.05 * total_weight / static_cast<double>(num_dcs);

  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::vector<double> gain(num_dcs, 0);
  for (int pass = 0; pass < passes; ++pass) {
    rng.Shuffle(order);
    uint64_t moves = 0;
    for (VertexId v : order) {
      std::fill(gain.begin(), gain.end(), 0.0);
      for (const auto& [u, w] : level.adjacency[v]) gain[assign[u]] += w;
      const DcId current = assign[v];
      DcId best = current;
      for (DcId r = 0; r < num_dcs; ++r) {
        if (r == current) continue;
        if (load[r] + level.vertex_weight[v] > capacity) continue;
        if (gain[r] > gain[best]) best = r;
      }
      if (best != current && gain[best] > gain[current]) {
        load[current] -= level.vertex_weight[v];
        load[best] += level.vertex_weight[v];
        assign[v] = best;
        ++moves;
      }
    }
    if (moves == 0) break;
  }
}

/// Multilevel edge-cut partitioner (METIS-style: heavy-edge-matching
/// coarsening, greedy initial partitioning, per-level boundary
/// refinement). Offline-quality edge-cut baseline; network-oblivious
/// like the partitioners it stands next to.
class MultilevelPartitioner : public Partitioner {
 public:
  explicit MultilevelPartitioner(MultilevelOptions options)
      : options_(options) {}

  std::string name() const override { return "Multilevel"; }
  ComputeModel model() const override { return ComputeModel::kEdgeCut; }

  PartitionOutput DoRun(const PartitionerContext& ctx) override {
    WallTimer timer;
    const Graph& graph = *ctx.graph;
    const int num_dcs = ctx.topology->num_dcs();
    Rng rng(ctx.seed);

    // Coarsening hierarchy.
    std::vector<CoarseLevel> levels;
    levels.push_back(BuildBaseLevel(graph));
    const VertexId coarse_target = std::max<VertexId>(
        static_cast<VertexId>(num_dcs) * options_.coarse_vertices_per_dc,
        16);
    while (levels.back().adjacency.size() > coarse_target &&
           static_cast<int>(levels.size()) <= options_.max_levels) {
      CoarseLevel next = Coarsen(levels.back(), rng);
      // Matching failed to shrink (e.g. isolated vertices only): stop.
      if (next.adjacency.size() >= levels.back().adjacency.size()) break;
      levels.push_back(std::move(next));
    }

    // Initial partition at the coarsest level, then project + refine.
    std::vector<DcId> assign = InitialAssignment(levels.back(), num_dcs);
    Refine(levels.back(), assign, num_dcs, options_.refinement_passes,
           rng);
    for (size_t li = levels.size() - 1; li > 0; --li) {
      // Project to the finer level (levels[li].fine_to_coarse maps
      // level li-1 vertices into level li).
      const CoarseLevel& finer = levels[li - 1];
      const std::vector<VertexId>& map = levels[li].fine_to_coarse;
      std::vector<DcId> finer_assign(finer.adjacency.size());
      for (VertexId v = 0; v < finer.adjacency.size(); ++v) {
        finer_assign[v] = assign[map[v]];
      }
      assign = std::move(finer_assign);
      Refine(finer, assign, num_dcs, options_.refinement_passes, rng);
    }

    PartitionConfig config;
    config.model = ComputeModel::kEdgeCut;
    config.theta = ctx.theta;
    config.workload = ctx.workload;
    PartitionState state(ctx.graph, ctx.topology, ctx.locations,
                         ctx.input_sizes, config);
    state.ResetDerived(assign);
    return PartitionOutput(std::move(state), timer.ElapsedSeconds());
  }

 private:
  MultilevelOptions options_;
};

}  // namespace

std::unique_ptr<Partitioner> MakeMultilevel(MultilevelOptions options) {
  return std::make_unique<MultilevelPartitioner>(options);
}

}  // namespace rlcut
