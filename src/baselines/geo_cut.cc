#include <numeric>
#include <vector>

#include "baselines/partitioner.h"
#include "common/random.h"
#include "common/timer.h"

namespace rlcut {
namespace {

/// Geo-Cut (Zhou et al., ICDCS'17): network-aware streaming vertex-cut.
/// Edges are streamed in random order; each is placed on the DC that
/// minimizes the resulting inter-DC transfer time among placements that
/// keep the total cost within budget (falling back to the cheapest DC
/// when none is feasible). Optional refinement sweeps re-place every
/// edge against the finished layout, which is where most of Geo-Cut's
/// (large) overhead goes.
class GeoCutPartitioner : public Partitioner {
 public:
  explicit GeoCutPartitioner(GeoCutOptions options) : options_(options) {}

  std::string name() const override { return "Geo-Cut"; }
  ComputeModel model() const override { return ComputeModel::kVertexCut; }

  PartitionOutput DoRun(const PartitionerContext& ctx) override {
    WallTimer timer;
    const Graph& graph = *ctx.graph;
    const int num_dcs = ctx.topology->num_dcs();
    Rng rng(ctx.seed);

    PartitionConfig config;
    config.model = ComputeModel::kVertexCut;
    config.theta = ctx.theta;
    config.workload = ctx.workload;
    PartitionState state(ctx.graph, ctx.topology, ctx.locations,
                         ctx.input_sizes, config);
    state.ResetUnplaced(*ctx.locations);

    std::vector<EdgeId> order(graph.num_edges());
    std::iota(order.begin(), order.end(), EdgeId{0});
    rng.Shuffle(order);

    EvalScratch scratch;
    std::vector<Objective> evals(num_dcs);
    auto place_best = [&](EdgeId e) {
      // All candidate DCs are scored anyway: one batched what-if pass
      // shares the affected-set and remove-half work across them.
      state.EvaluatePlaceEdgeAll(e, &scratch, evals.data());
      DcId best = kNoDc;
      double best_time = 0;
      DcId cheapest = kNoDc;
      double cheapest_cost = 0;
      for (DcId r = 0; r < num_dcs; ++r) {
        const Objective& obj = evals[r];
        if (cheapest == kNoDc || obj.cost_dollars < cheapest_cost) {
          cheapest_cost = obj.cost_dollars;
          cheapest = r;
        }
        const bool feasible = ctx.budget <= 0 || obj.cost_dollars <= ctx.budget;
        if (feasible && (best == kNoDc || obj.transfer_seconds < best_time)) {
          best_time = obj.transfer_seconds;
          best = r;
        }
      }
      state.PlaceEdge(e, best == kNoDc ? cheapest : best);
    };

    for (EdgeId e : order) place_best(e);
    for (int round = 0; round < options_.refinement_rounds; ++round) {
      rng.Shuffle(order);
      for (EdgeId e : order) place_best(e);
    }

    // Master-selection pass (Zhou et al. optimize masters as well as
    // edges): move each vertex's master to the replica DC that
    // minimizes transfer time among budget-feasible choices. SetMaster
    // does not move edges, so this is pure win-or-keep.
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      const uint64_t replicas = state.ReplicaMask(v);
      DcId best = state.master(v);
      Objective best_obj = state.CurrentObjective();
      for (DcId r = 0; r < num_dcs; ++r) {
        if (r == best || !((replicas >> r) & 1)) continue;
        const DcId previous = state.master(v);
        state.SetMaster(v, r);
        const Objective obj = state.CurrentObjective();
        const bool feasible =
            ctx.budget <= 0 || obj.cost_dollars <= ctx.budget;
        if (feasible && obj.transfer_seconds < best_obj.transfer_seconds) {
          best = r;
          best_obj = obj;
        } else {
          state.SetMaster(v, previous);
        }
      }
    }

    return PartitionOutput(std::move(state), timer.ElapsedSeconds());
  }

 private:
  GeoCutOptions options_;
};

}  // namespace

std::unique_ptr<Partitioner> MakeGeoCut(GeoCutOptions options) {
  return std::make_unique<GeoCutPartitioner>(options);
}

}  // namespace rlcut
