#include <numeric>
#include <vector>

#include "baselines/extra_partitioners.h"
#include "common/random.h"
#include "common/timer.h"

namespace rlcut {
namespace {

/// GrapH (Mayer et al., ICDCS'16): heterogeneity-aware adaptive
/// vertex-cut — the other prior work on traffic-cost-aware partitioning
/// the paper cites ([2]). Our rendition of its H-adapt core: start from
/// a cheap hash placement, then repeatedly migrate the edges whose
/// relocation most reduces the traffic cost over the heterogeneous
/// links, re-evaluated against the live Eq. 1-5 state.
class GrapHPartitioner : public Partitioner {
 public:
  explicit GrapHPartitioner(GrapHOptions options) : options_(options) {}

  std::string name() const override { return "GrapH"; }
  ComputeModel model() const override { return ComputeModel::kVertexCut; }

  PartitionOutput DoRun(const PartitionerContext& ctx) override {
    WallTimer timer;
    const Graph& graph = *ctx.graph;
    const int num_dcs = ctx.topology->num_dcs();
    Rng rng(ctx.seed);

    PartitionConfig config;
    config.model = ComputeModel::kVertexCut;
    config.theta = ctx.theta;
    config.workload = ctx.workload;
    PartitionState state(ctx.graph, ctx.topology, ctx.locations,
                         ctx.input_sizes, config);

    // Cheap initial placement: hash, masters at home.
    std::vector<DcId> edge_dc(graph.num_edges());
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      edge_dc[e] = static_cast<DcId>(HashU64(e ^ ctx.seed) % num_dcs);
    }
    state.ResetWithPlacement(*ctx.locations, edge_dc);

    // Adaptive migration rounds: each round visits every edge in a
    // random order and migrates it to the DC with the best combined
    // transfer-time/cost improvement (weighted by the heterogeneous
    // links through the shared evaluator).
    EvalScratch scratch;
    std::vector<Objective> evals(num_dcs);
    std::vector<EdgeId> order(graph.num_edges());
    std::iota(order.begin(), order.end(), EdgeId{0});
    for (int round = 0; round < options_.migration_rounds; ++round) {
      rng.Shuffle(order);
      uint64_t migrations = 0;
      for (EdgeId e : order) {
        const Objective current = state.CurrentObjective();
        // Batched what-if: score every candidate DC from one pass.
        state.EvaluatePlaceEdgeAll(e, &scratch, evals.data());
        DcId best = state.edge_dc(e);
        double best_score = 0;
        for (DcId r = 0; r < num_dcs; ++r) {
          if (r == state.edge_dc(e)) continue;
          const Objective& moved = evals[r];
          double score = 0;
          if (current.transfer_seconds > 0) {
            score += (current.transfer_seconds - moved.transfer_seconds) /
                     current.transfer_seconds;
          }
          if (current.smooth_seconds > 0) {
            score += 0.2 * (current.smooth_seconds - moved.smooth_seconds) /
                     current.smooth_seconds;
          }
          if (current.cost_dollars > 0) {
            score += options_.cost_weight *
                     (current.cost_dollars - moved.cost_dollars) /
                     current.cost_dollars;
          }
          if (score > best_score) {
            best_score = score;
            best = r;
          }
        }
        if (best != state.edge_dc(e)) {
          state.PlaceEdge(e, best);
          ++migrations;
        }
      }
      if (migrations == 0) break;
    }

    return PartitionOutput(std::move(state), timer.ElapsedSeconds());
  }

 private:
  GrapHOptions options_;
};

}  // namespace

std::unique_ptr<Partitioner> MakeGrapH(GrapHOptions options) {
  return std::make_unique<GrapHPartitioner>(options);
}

}  // namespace rlcut
