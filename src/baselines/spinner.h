#ifndef RLCUT_BASELINES_SPINNER_H_
#define RLCUT_BASELINES_SPINNER_H_

#include <vector>

#include "baselines/partitioner.h"
#include "common/random.h"
#include "partition/partition_state.h"

namespace rlcut {

/// Concrete Spinner core (Martella et al., ICDE'17): capacity-aware
/// label propagation over an edge-cut PartitionState. Exposed directly
/// (in addition to the Partitioner adapter) because the dynamic
/// experiments (Exp#5) drive the incremental path explicitly.
///
/// Spinner is a best-effort method: Refine runs to convergence and is
/// *not* bounded by a time budget — the very property RLCut's adaptive
/// sampling improves upon (Fig. 15b).
class SpinnerCore {
 public:
  explicit SpinnerCore(SpinnerOptions options) : options_(options) {}

  /// Runs label propagation starting from the masters already in
  /// `state` (edge-cut, derived placement), sweeping from `seeds` and
  /// expanding to neighbors of moved vertices. Pass all vertices for a
  /// full partitioning; pass the endpoints of newly inserted edges for
  /// incremental adaptation. Returns the number of LP iterations run.
  int Refine(PartitionState* state, std::vector<VertexId> seeds, Rng* rng);

 private:
  SpinnerOptions options_;
};

}  // namespace rlcut

#endif  // RLCUT_BASELINES_SPINNER_H_
