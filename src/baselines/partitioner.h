#ifndef RLCUT_BASELINES_PARTITIONER_H_
#define RLCUT_BASELINES_PARTITIONER_H_

#include <memory>
#include <string>
#include <vector>

#include "cloud/topology.h"
#include "common/status.h"
#include "graph/graph.h"
#include "partition/partition_state.h"
#include "partition/session.h"
#include "partition/workload.h"

namespace rlcut {

/// Everything a partitioner needs to run: the problem instance of
/// Sec. III plus method-wide knobs.
struct PartitionerContext {
  const Graph* graph = nullptr;
  const Topology* topology = nullptr;
  /// Initial vertex locations L_v.
  const std::vector<DcId>* locations = nullptr;
  /// Input data sizes d_v (bytes).
  const std::vector<double>* input_sizes = nullptr;
  /// Workload whose traffic the partitioning is optimized for.
  Workload workload = Workload::PageRank();
  /// Hybrid-cut high-degree threshold.
  uint32_t theta = 100;
  /// Budget B on total inter-DC communication cost (Eq. 7), dollars.
  /// Only budget-aware methods (Geo-Cut, RLCut) consult it.
  double budget = 0;
  uint64_t seed = 1;
};

/// A produced partitioning plus the measured optimization overhead
/// (Table III's metric).
struct PartitionOutput {
  PartitionOutput(PartitionState state_in, double overhead)
      : state(std::move(state_in)), overhead_seconds(overhead) {}

  PartitionState state;
  double overhead_seconds = 0;
};

/// Validates everything Partitioner::Run assumes about a context:
/// non-null graph/topology/locations/input_sizes, location and size
/// vectors covering every vertex, locations within the topology's DC
/// range, and a non-negative budget. Returns InvalidArgument with a
/// precise message instead of aborting.
Status ValidatePartitionerContext(const PartitionerContext& ctx);

/// Common interface for all static partitioning methods (Sec. VI-A3).
///
/// Run() is a thin wrapper over the session abstraction: it validates
/// the context (returning a Status instead of crashing on null graphs,
/// dcs mismatches or a negative budget), opens a "partition/run" trace
/// span, drives a borrowed-context OneShotSession through one unlimited
/// MaybeReoptimize (which delegates to the method's DoRun()), and
/// records the optimization overhead in the default metrics registry —
/// so every method, including ones added later, is instrumented through
/// this single hook, and batch runs and streaming sessions exercise the
/// same code path.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Paper name, e.g. "Ginger".
  virtual std::string name() const = 0;

  /// Which computation model the produced partitioning targets.
  virtual ComputeModel model() const = 0;

  /// Computes a partitioning. Self-times: the returned overhead is the
  /// wall-clock optimization time. Fails with InvalidArgument on a bad
  /// context instead of aborting. Equivalent to opening a one-shot
  /// session, re-optimizing once without a migration budget, and taking
  /// the output.
  Result<PartitionOutput> Run(const PartitionerContext& ctx);

  /// Convenience for callers with known-good contexts (tests, benches):
  /// CHECK-fails on error.
  PartitionOutput RunOrDie(const PartitionerContext& ctx);

 protected:
  /// Method implementation. The context has already been validated.
  virtual PartitionOutput DoRun(const PartitionerContext& ctx) = 0;

 private:
  // The session adapter invokes DoRun on the wrapped method.
  friend class OneShotSession;
};

/// PartitioningSession adapter for batch (non-incremental) methods.
///
/// Two modes:
///  * Borrowed: wraps a caller-owned Partitioner and context for the
///    duration of one Run() call. ApplyDelta is FailedPrecondition —
///    the context is not owned, so the problem cannot evolve.
///  * Owned (Open): copies the problem out of the context and owns the
///    wrapped partitioner, so the session outlives the caller's
///    buffers and can ingest micro-batches. Each MaybeReoptimize
///    re-partitions the accumulated graph from scratch (these methods
///    have no incremental state), then clamps to the migration budget.
class OneShotSession : public PartitioningSession {
 public:
  /// Borrowed mode; `partitioner` and everything `ctx` points at must
  /// outlive the session. The context must already be validated.
  OneShotSession(Partitioner* partitioner, const PartitionerContext& ctx);

  /// Owned mode: validates `ctx`, copies the problem, takes ownership
  /// of the method.
  static Result<std::unique_ptr<OneShotSession>> Open(
      std::unique_ptr<Partitioner> partitioner, const PartitionerContext& ctx);

  std::string method() const override;
  Result<ApplyResult> ApplyDelta(const MicroBatch& batch) override;
  Result<ReoptimizeResult> MaybeReoptimize(
      const MigrationBudget& budget) override;
  Result<PublishedPlan> PublishPlan() override;
  const PartitionState* live_state() const override;

  /// Moves the produced PartitionOutput out of the session (the batch
  /// Run() return value). FailedPrecondition before the first
  /// successful MaybeReoptimize or after a previous take.
  Result<PartitionOutput> TakeOutput();

 private:
  OneShotSession(std::unique_ptr<Partitioner> owned,
                 const PartitionerContext& ctx);

  // Context for the next cold run: the borrowed context verbatim, or
  // one assembled over the owned problem copies.
  PartitionerContext CurrentContext() const;

  Partitioner* partitioner_;                  // wrapped method
  std::unique_ptr<Partitioner> owned_method_; // engaged in owned mode

  // Borrowed mode only.
  const PartitionerContext* borrowed_ctx_ = nullptr;

  // Owned-problem copies (owned mode). The graph is rebuilt lazily
  // after deltas accumulate.
  VertexId num_vertices_ = 0;
  std::vector<Edge> edges_;
  Topology topology_;
  std::vector<DcId> locations_;
  std::vector<double> input_sizes_;
  Workload workload_;
  uint32_t theta_ = 100;
  double cost_budget_ = 0;
  uint64_t seed_ = 1;
  std::unique_ptr<Graph> graph_;
  bool graph_dirty_ = false;
  SimTime watermark_ = SimTime::Min();

  // Output of the last re-optimization.
  std::unique_ptr<PartitionOutput> output_;
  MigrationBudget last_budget_;
  uint64_t version_ = 0;
  std::vector<DcId> last_published_masters_;
};

// ---- String-keyed registry --------------------------------------------

/// Method-generic knobs accepted by MakePartitionerByName. Each factory
/// maps the fields it understands onto its native options struct and
/// ignores the rest; zero/negative values mean "method default".
struct PartitionerOptions {
  /// RLCut: wall-clock training budget T_opt, seconds.
  double t_opt_seconds = 0;
  /// RLCut: deterministic agent-visit budget (overrides nothing if 0).
  int64_t agent_visit_budget = 0;
  /// RLCut: maximum training steps.
  int max_steps = 0;
  /// RLCut: logical shard count of the training runtime (a checkpoint
  /// property, see docs/sharding.md). 0 = kDefaultNumShards.
  int num_shards = 0;
  /// Iterative methods (Revolver, Spinner, GrapH, Multilevel passes).
  int iterations = 0;
  /// Geo-Cut greedy refinement sweeps (< 0 = default).
  int refinement_rounds = -1;
  /// Spinner capacity slack.
  double balance_slack = 0;
};

/// Registry card for one partitioner.
struct PartitionerInfo {
  std::string name;
  /// One-line description for --help style listings.
  std::string summary;
  /// One of the paper's six Fig. 10 comparisons.
  bool paper_comparison = false;
  /// Consults PartitionerContext::budget (Eq. 7).
  bool budget_aware = false;
};

/// All registered partitioners: the six paper comparisons first, in
/// Fig. 10 order, then RLCut, then the extra published baselines.
/// (Implemented above the baselines layer, in rlcut_core, so that RLCut
/// itself can register; link the umbrella `rlcut` target to use it.)
std::vector<PartitionerInfo> ListPartitioners();

/// Creates a partitioner by registry name (see ListPartitioners). This
/// includes "RLCut"; NotFound for unknown names, with the known names
/// in the message.
Result<std::unique_ptr<Partitioner>> MakePartitionerByName(
    const std::string& name, const PartitionerOptions& options);

/// Options for OpenPartitioningSession.
struct SessionOptions {
  /// Method-generic knobs, mapped exactly as MakePartitionerByName.
  PartitionerOptions partitioner;
  /// RLCut: topology drift that marks replicated vertices for
  /// re-training (see RLCutSessionOptions).
  double drift_threshold = 0.05;
};

/// Opens a session for a registry method over `ctx`. "RLCut" opens the
/// incremental RLCutSession (rlcut/session.h); every other method is
/// wrapped in an owned OneShotSession. Implemented next to the registry
/// in rlcut/partitioner_registry.cc.
Result<std::unique_ptr<PartitioningSession>> OpenPartitioningSession(
    const std::string& method, const PartitionerContext& ctx,
    const SessionOptions& options = {});

// ---- Factory functions for the paper's six comparisons ----------------

/// RandPG: balanced p-way vertex-cut by random edge assignment
/// (PowerGraph's random placement).
std::unique_ptr<Partitioner> MakeRandPg();

/// HashPL: hybrid-cut with hash-based master assignment (PowerLyra).
std::unique_ptr<Partitioner> MakeHashPl();

/// Ginger: hybrid-cut with Fennel-style greedy assignment of low-degree
/// vertices (PowerLyra's Ginger heuristic); high-degree by hash.
std::unique_ptr<Partitioner> MakeGinger();

/// Geo-Cut: heuristic network-aware vertex-cut that streams edges to the
/// DC minimizing the transfer-time increase subject to the cost budget
/// (Zhou et al., ICDCS'17), plus a refinement pass.
struct GeoCutOptions {
  /// Number of greedy refinement sweeps after the streaming pass.
  int refinement_rounds = 1;
};
std::unique_ptr<Partitioner> MakeGeoCut(GeoCutOptions options = {});

/// Revolver: learning-automata edge-cut (Mofrad et al., IEEE CLOUD'18):
/// one automaton per vertex, reward when the chosen partition is the
/// locally dominant one under a balance penalty.
struct RevolverOptions {
  int iterations = 20;
  double alpha = 0.1;  // LA reward parameter
  double beta = 0.1;   // LA penalty parameter
  double balance_weight = 1.0;
};
std::unique_ptr<Partitioner> MakeRevolver(RevolverOptions options = {});

/// Spinner: label-propagation edge-cut (Martella et al., ICDE'17) with
/// capacity-constrained moves; also provides the incremental interface
/// used in the dynamic experiments.
struct SpinnerOptions {
  int max_iterations = 30;
  /// Loosened capacity: a partition accepts up to
  /// balance_slack * |E| / M edge-endpoints.
  double balance_slack = 1.05;
  /// Convergence: stop when fewer than this fraction of vertices moved.
  double convergence_fraction = 0.002;
};
std::unique_ptr<Partitioner> MakeSpinner(SpinnerOptions options = {});

/// Fennel: single-pass streaming edge-cut (Tsourakakis et al., WSDM'14).
/// Not one of the paper's six comparisons; kept as an extra baseline.
struct FennelOptions {
  double gamma = 1.5;
};
std::unique_ptr<Partitioner> MakeFennel(FennelOptions options = {});

/// All six paper comparisons, in Fig. 10 order. A view over the
/// registry: the entries whose PartitionerInfo::paper_comparison is set
/// (implemented alongside the registry in rlcut/partitioner_registry.cc).
std::vector<std::unique_ptr<Partitioner>> MakePaperBaselines();

}  // namespace rlcut

#endif  // RLCUT_BASELINES_PARTITIONER_H_
