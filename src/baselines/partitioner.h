#ifndef RLCUT_BASELINES_PARTITIONER_H_
#define RLCUT_BASELINES_PARTITIONER_H_

#include <memory>
#include <string>
#include <vector>

#include "cloud/topology.h"
#include "graph/graph.h"
#include "partition/partition_state.h"
#include "partition/workload.h"

namespace rlcut {

/// Everything a partitioner needs to run: the problem instance of
/// Sec. III plus method-wide knobs.
struct PartitionerContext {
  const Graph* graph = nullptr;
  const Topology* topology = nullptr;
  /// Initial vertex locations L_v.
  const std::vector<DcId>* locations = nullptr;
  /// Input data sizes d_v (bytes).
  const std::vector<double>* input_sizes = nullptr;
  /// Workload whose traffic the partitioning is optimized for.
  Workload workload = Workload::PageRank();
  /// Hybrid-cut high-degree threshold.
  uint32_t theta = 100;
  /// Budget B on total inter-DC communication cost (Eq. 7), dollars.
  /// Only budget-aware methods (Geo-Cut, RLCut) consult it.
  double budget = 0;
  uint64_t seed = 1;
};

/// A produced partitioning plus the measured optimization overhead
/// (Table III's metric).
struct PartitionOutput {
  PartitionOutput(PartitionState state_in, double overhead)
      : state(std::move(state_in)), overhead_seconds(overhead) {}

  PartitionState state;
  double overhead_seconds = 0;
};

/// Common interface for all static partitioning methods (Sec. VI-A3).
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Paper name, e.g. "Ginger".
  virtual std::string name() const = 0;

  /// Which computation model the produced partitioning targets.
  virtual ComputeModel model() const = 0;

  /// Computes a partitioning. Self-times: the returned overhead is the
  /// wall-clock optimization time.
  virtual PartitionOutput Run(const PartitionerContext& ctx) = 0;
};

// ---- Factory functions for the paper's six comparisons ----------------

/// RandPG: balanced p-way vertex-cut by random edge assignment
/// (PowerGraph's random placement).
std::unique_ptr<Partitioner> MakeRandPg();

/// HashPL: hybrid-cut with hash-based master assignment (PowerLyra).
std::unique_ptr<Partitioner> MakeHashPl();

/// Ginger: hybrid-cut with Fennel-style greedy assignment of low-degree
/// vertices (PowerLyra's Ginger heuristic); high-degree by hash.
std::unique_ptr<Partitioner> MakeGinger();

/// Geo-Cut: heuristic network-aware vertex-cut that streams edges to the
/// DC minimizing the transfer-time increase subject to the cost budget
/// (Zhou et al., ICDCS'17), plus a refinement pass.
struct GeoCutOptions {
  /// Number of greedy refinement sweeps after the streaming pass.
  int refinement_rounds = 1;
};
std::unique_ptr<Partitioner> MakeGeoCut(GeoCutOptions options = {});

/// Revolver: learning-automata edge-cut (Mofrad et al., IEEE CLOUD'18):
/// one automaton per vertex, reward when the chosen partition is the
/// locally dominant one under a balance penalty.
struct RevolverOptions {
  int iterations = 20;
  double alpha = 0.1;  // LA reward parameter
  double beta = 0.1;   // LA penalty parameter
  double balance_weight = 1.0;
};
std::unique_ptr<Partitioner> MakeRevolver(RevolverOptions options = {});

/// Spinner: label-propagation edge-cut (Martella et al., ICDE'17) with
/// capacity-constrained moves; also provides the incremental interface
/// used in the dynamic experiments.
struct SpinnerOptions {
  int max_iterations = 30;
  /// Loosened capacity: a partition accepts up to
  /// balance_slack * |E| / M edge-endpoints.
  double balance_slack = 1.05;
  /// Convergence: stop when fewer than this fraction of vertices moved.
  double convergence_fraction = 0.002;
};
std::unique_ptr<Partitioner> MakeSpinner(SpinnerOptions options = {});

/// Fennel: single-pass streaming edge-cut (Tsourakakis et al., WSDM'14).
/// Not one of the paper's six comparisons; kept as an extra baseline.
struct FennelOptions {
  double gamma = 1.5;
};
std::unique_ptr<Partitioner> MakeFennel(FennelOptions options = {});

/// All six paper comparisons, in Fig. 10 order.
std::vector<std::unique_ptr<Partitioner>> MakePaperBaselines();

}  // namespace rlcut

#endif  // RLCUT_BASELINES_PARTITIONER_H_
