#include "baselines/partitioner.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"
#include "graph/geo.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rlcut {

Status ValidatePartitionerContext(const PartitionerContext& ctx) {
  if (ctx.graph == nullptr) {
    return Status::InvalidArgument("PartitionerContext: graph is null");
  }
  if (ctx.topology == nullptr) {
    return Status::InvalidArgument("PartitionerContext: topology is null");
  }
  if (ctx.locations == nullptr) {
    return Status::InvalidArgument("PartitionerContext: locations is null");
  }
  if (ctx.input_sizes == nullptr) {
    return Status::InvalidArgument("PartitionerContext: input_sizes is null");
  }
  const size_t n = ctx.graph->num_vertices();
  if (ctx.locations->size() != n) {
    return Status::InvalidArgument(
        "PartitionerContext: locations covers " +
        std::to_string(ctx.locations->size()) + " vertices but the graph has " +
        std::to_string(n));
  }
  if (ctx.input_sizes->size() != n) {
    return Status::InvalidArgument(
        "PartitionerContext: input_sizes covers " +
        std::to_string(ctx.input_sizes->size()) +
        " vertices but the graph has " + std::to_string(n));
  }
  const int num_dcs = ctx.topology->num_dcs();
  if (num_dcs < 1 || num_dcs > kMaxDataCenters) {
    return Status::InvalidArgument("PartitionerContext: topology has " +
                                   std::to_string(num_dcs) +
                                   " DCs, expected 1.." +
                                   std::to_string(kMaxDataCenters));
  }
  for (size_t v = 0; v < n; ++v) {
    const DcId loc = (*ctx.locations)[v];
    if (loc < 0 || loc >= num_dcs) {
      return Status::InvalidArgument(
          "PartitionerContext: vertex " + std::to_string(v) +
          " located at DC " + std::to_string(loc) +
          " outside the topology's " + std::to_string(num_dcs) + " DCs");
    }
  }
  if (ctx.budget < 0) {
    return Status::InvalidArgument("PartitionerContext: negative budget " +
                                   std::to_string(ctx.budget));
  }
  return Status::Ok();
}

Result<PartitionOutput> Partitioner::Run(const PartitionerContext& ctx) {
  RLCUT_RETURN_IF_ERROR(ValidatePartitionerContext(ctx));
  obs::TraceSpan span("partition/run", "partition");
  span.AddArg("num_vertices", static_cast<double>(ctx.graph->num_vertices()));
  span.AddArg("num_dcs", static_cast<double>(ctx.topology->num_dcs()));
  // A batch run is the degenerate session: one unlimited
  // re-optimization over a borrowed context, then take the output.
  OneShotSession session(this, ctx);
  Result<ReoptimizeResult> reopt =
      session.MaybeReoptimize(MigrationBudget::Unlimited());
  if (!reopt.ok()) return reopt.status();
  Result<PartitionOutput> out = session.TakeOutput();
  if (!out.ok()) return out.status();
  span.AddArg("overhead_seconds", out->overhead_seconds);
  obs::MetricsRegistry& registry = obs::DefaultRegistry();
  const obs::LabelSet method_label = {{"method", name()}};
  registry.GetCounter("partitioner.runs", method_label)->Increment();
  registry.GetHistogram("partitioner.overhead_seconds", method_label)
      ->Observe(out->overhead_seconds);
  return out;
}

PartitionOutput Partitioner::RunOrDie(const PartitionerContext& ctx) {
  Result<PartitionOutput> result = Run(ctx);
  RLCUT_CHECK(result.ok()) << name() << ": " << result.status().ToString();
  return std::move(result).value();
}

// ---- OneShotSession ----------------------------------------------------

OneShotSession::OneShotSession(Partitioner* partitioner,
                               const PartitionerContext& ctx)
    : partitioner_(partitioner), borrowed_ctx_(&ctx) {}

OneShotSession::OneShotSession(std::unique_ptr<Partitioner> owned,
                               const PartitionerContext& ctx)
    : partitioner_(owned.get()),
      owned_method_(std::move(owned)),
      num_vertices_(ctx.graph->num_vertices()),
      topology_(*ctx.topology),
      locations_(*ctx.locations),
      input_sizes_(*ctx.input_sizes),
      workload_(ctx.workload),
      theta_(ctx.theta),
      cost_budget_(ctx.budget),
      seed_(ctx.seed) {
  edges_.reserve(ctx.graph->num_edges());
  for (EdgeId e = 0; e < ctx.graph->num_edges(); ++e) {
    edges_.push_back(ctx.graph->GetEdge(e));
  }
  graph_ = std::make_unique<Graph>(*ctx.graph);
  last_published_masters_ = locations_;
}

Result<std::unique_ptr<OneShotSession>> OneShotSession::Open(
    std::unique_ptr<Partitioner> partitioner, const PartitionerContext& ctx) {
  if (partitioner == nullptr) {
    return Status::InvalidArgument("OneShotSession: partitioner is null");
  }
  RLCUT_RETURN_IF_ERROR(ValidatePartitionerContext(ctx));
  return std::unique_ptr<OneShotSession>(
      new OneShotSession(std::move(partitioner), ctx));
}

std::string OneShotSession::method() const { return partitioner_->name(); }

PartitionerContext OneShotSession::CurrentContext() const {
  if (borrowed_ctx_ != nullptr) return *borrowed_ctx_;
  PartitionerContext ctx;
  ctx.graph = graph_.get();
  ctx.topology = &topology_;
  ctx.locations = &locations_;
  ctx.input_sizes = &input_sizes_;
  ctx.workload = workload_;
  ctx.theta = theta_;
  ctx.budget = cost_budget_;
  ctx.seed = seed_;
  return ctx;
}

Result<ApplyResult> OneShotSession::ApplyDelta(const MicroBatch& batch) {
  if (borrowed_ctx_ != nullptr) {
    return Status::FailedPrecondition(
        "one-shot session over a borrowed context cannot ingest deltas; "
        "open an owned session (OneShotSession::Open or "
        "OpenPartitioningSession)");
  }
  if (batch.watermark < watermark_) {
    return Status::InvalidArgument(
        "micro-batch watermark moved backwards: " +
        std::to_string(batch.watermark.seconds()) + "s after " +
        std::to_string(watermark_.seconds()) + "s");
  }
  WallTimer timer;
  std::vector<VertexId> affected;
  affected.reserve(batch.edges.size() * 2);
  for (const TimedEdge& te : batch.edges) {
    if (te.edge.src >= num_vertices_ || te.edge.dst >= num_vertices_) {
      return Status::OutOfRange(
          "micro-batch edge (" + std::to_string(te.edge.src) + ", " +
          std::to_string(te.edge.dst) + ") outside the fixed vertex set of " +
          std::to_string(num_vertices_));
    }
    affected.push_back(te.edge.src);
    affected.push_back(te.edge.dst);
  }
  for (const TimedEdge& te : batch.edges) edges_.push_back(te.edge);
  if (!batch.edges.empty()) graph_dirty_ = true;
  watermark_ = batch.watermark;
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  ApplyResult result;
  result.edges_applied = batch.edges.size();
  result.vertices_affected = affected.size();
  result.apply_seconds = timer.ElapsedSeconds();
  result.watermark = watermark_;
  return result;
}

Result<ReoptimizeResult> OneShotSession::MaybeReoptimize(
    const MigrationBudget& budget) {
  if (borrowed_ctx_ == nullptr && graph_dirty_) {
    GraphBuilder builder(num_vertices_);
    builder.AddEdges(edges_);
    // Output state points into the old graph; drop it first.
    output_.reset();
    graph_ = std::make_unique<Graph>(std::move(builder).Build());
    // Input sizes grow with degree, as in the dynamic drivers.
    input_sizes_ = AssignInputSizes(*graph_);
    graph_dirty_ = false;
  }
  const PartitionerContext ctx = CurrentContext();
  // Batch methods have no incremental state: every pass is a cold
  // re-partitioning of the accumulated graph.
  PartitionOutput out = partitioner_->DoRun(ctx);
  ReoptimizeResult result;
  result.reoptimized = true;
  result.trained_vertices = ctx.graph->num_vertices();
  if (!budget.IsUnlimited()) {
    const std::vector<DcId>& baseline = borrowed_ctx_ != nullptr
                                            ? *borrowed_ctx_->locations
                                            : last_published_masters_;
    const BudgetClampResult clamp = EnforceMigrationBudget(
        &out.state, baseline, *ctx.input_sizes, budget);
    result.reverted_vertices = clamp.reverted;
  }
  result.overhead_seconds = out.overhead_seconds;
  result.objective = out.state.CurrentObjective();
  last_budget_ = budget;
  output_ = std::make_unique<PartitionOutput>(std::move(out));
  return result;
}

Result<PublishedPlan> OneShotSession::PublishPlan() {
  if (output_ == nullptr) {
    return Status::FailedPrecondition(
        "no plan to publish: MaybeReoptimize must succeed first");
  }
  if (borrowed_ctx_ != nullptr) {
    return Status::FailedPrecondition(
        "one-shot session over a borrowed context has no publish "
        "lifecycle; use TakeOutput");
  }
  PartitionState& state = output_->state;
  PublishedPlan plan;
  const BudgetClampResult clamp = EnforceMigrationBudget(
      &state, last_published_masters_, input_sizes_, last_budget_);
  plan.reverted_vertices = clamp.reverted;
  plan.masters = state.masters();
  plan.migration = PlanMigration(last_published_masters_, plan.masters,
                                 input_sizes_, topology_);
  plan.objective = state.CurrentObjective();
  plan.version = ++version_;
  last_published_masters_ = plan.masters;
  return plan;
}

const PartitionState* OneShotSession::live_state() const {
  return output_ == nullptr ? nullptr : &output_->state;
}

Result<PartitionOutput> OneShotSession::TakeOutput() {
  if (output_ == nullptr) {
    return Status::FailedPrecondition(
        "no output to take: MaybeReoptimize must succeed first");
  }
  PartitionOutput out = std::move(*output_);
  output_.reset();
  return out;
}

}  // namespace rlcut
