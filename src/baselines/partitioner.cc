#include "baselines/partitioner.h"

#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rlcut {

Status ValidatePartitionerContext(const PartitionerContext& ctx) {
  if (ctx.graph == nullptr) {
    return Status::InvalidArgument("PartitionerContext: graph is null");
  }
  if (ctx.topology == nullptr) {
    return Status::InvalidArgument("PartitionerContext: topology is null");
  }
  if (ctx.locations == nullptr) {
    return Status::InvalidArgument("PartitionerContext: locations is null");
  }
  if (ctx.input_sizes == nullptr) {
    return Status::InvalidArgument("PartitionerContext: input_sizes is null");
  }
  const size_t n = ctx.graph->num_vertices();
  if (ctx.locations->size() != n) {
    return Status::InvalidArgument(
        "PartitionerContext: locations covers " +
        std::to_string(ctx.locations->size()) + " vertices but the graph has " +
        std::to_string(n));
  }
  if (ctx.input_sizes->size() != n) {
    return Status::InvalidArgument(
        "PartitionerContext: input_sizes covers " +
        std::to_string(ctx.input_sizes->size()) +
        " vertices but the graph has " + std::to_string(n));
  }
  const int num_dcs = ctx.topology->num_dcs();
  if (num_dcs < 1 || num_dcs > kMaxDataCenters) {
    return Status::InvalidArgument("PartitionerContext: topology has " +
                                   std::to_string(num_dcs) +
                                   " DCs, expected 1.." +
                                   std::to_string(kMaxDataCenters));
  }
  for (size_t v = 0; v < n; ++v) {
    const DcId loc = (*ctx.locations)[v];
    if (loc < 0 || loc >= num_dcs) {
      return Status::InvalidArgument(
          "PartitionerContext: vertex " + std::to_string(v) +
          " located at DC " + std::to_string(loc) +
          " outside the topology's " + std::to_string(num_dcs) + " DCs");
    }
  }
  if (ctx.budget < 0) {
    return Status::InvalidArgument("PartitionerContext: negative budget " +
                                   std::to_string(ctx.budget));
  }
  return Status::Ok();
}

Result<PartitionOutput> Partitioner::Run(const PartitionerContext& ctx) {
  RLCUT_RETURN_IF_ERROR(ValidatePartitionerContext(ctx));
  obs::TraceSpan span("partition/run", "partition");
  span.AddArg("num_vertices", static_cast<double>(ctx.graph->num_vertices()));
  span.AddArg("num_dcs", static_cast<double>(ctx.topology->num_dcs()));
  PartitionOutput out = DoRun(ctx);
  span.AddArg("overhead_seconds", out.overhead_seconds);
  obs::MetricsRegistry& registry = obs::DefaultRegistry();
  const obs::LabelSet method_label = {{"method", name()}};
  registry.GetCounter("partitioner.runs", method_label)->Increment();
  registry.GetHistogram("partitioner.overhead_seconds", method_label)
      ->Observe(out.overhead_seconds);
  return out;
}

PartitionOutput Partitioner::RunOrDie(const PartitionerContext& ctx) {
  Result<PartitionOutput> result = Run(ctx);
  RLCUT_CHECK(result.ok()) << name() << ": " << result.status().ToString();
  return std::move(result).value();
}

}  // namespace rlcut
