#include <vector>

#include "baselines/partitioner.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/timer.h"

namespace rlcut {
namespace {

/// PowerGraph's random balanced p-way vertex-cut: each edge lands on a
/// uniformly random DC; each vertex's master is the replica DC holding
/// most of its edges (vertices without edges stay home).
class RandPgPartitioner : public Partitioner {
 public:
  std::string name() const override { return "RandPG"; }
  ComputeModel model() const override { return ComputeModel::kVertexCut; }

  PartitionOutput DoRun(const PartitionerContext& ctx) override {
    WallTimer timer;
    const Graph& graph = *ctx.graph;
    const int num_dcs = ctx.topology->num_dcs();
    Rng rng(ctx.seed);

    std::vector<DcId> edge_dc(graph.num_edges());
    std::vector<uint32_t> incident(
        static_cast<size_t>(graph.num_vertices()) * num_dcs, 0);
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      const DcId dc = static_cast<DcId>(rng.UniformInt(num_dcs));
      edge_dc[e] = dc;
      ++incident[static_cast<size_t>(graph.EdgeSource(e)) * num_dcs + dc];
      ++incident[static_cast<size_t>(graph.EdgeTarget(e)) * num_dcs + dc];
    }

    std::vector<DcId> masters(graph.num_vertices());
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      const uint32_t* row = &incident[static_cast<size_t>(v) * num_dcs];
      DcId best = kNoDc;
      uint32_t best_count = 0;
      for (DcId r = 0; r < num_dcs; ++r) {
        if (row[r] > best_count) {
          best_count = row[r];
          best = r;
        }
      }
      masters[v] = best == kNoDc ? (*ctx.locations)[v] : best;
    }

    PartitionConfig config;
    config.model = ComputeModel::kVertexCut;
    config.theta = ctx.theta;
    config.workload = ctx.workload;
    PartitionState state(ctx.graph, ctx.topology, ctx.locations,
                         ctx.input_sizes, config);
    state.ResetWithPlacement(masters, edge_dc);
    return PartitionOutput(std::move(state), timer.ElapsedSeconds());
  }
};

}  // namespace

std::unique_ptr<Partitioner> MakeRandPg() {
  return std::make_unique<RandPgPartitioner>();
}

}  // namespace rlcut
