#include <numeric>
#include <vector>

#include "baselines/extra_partitioners.h"
#include "common/random.h"
#include "common/timer.h"

namespace rlcut {
namespace {

/// LDG (Stanton & Kliot, KDD'12): one-pass streaming edge-cut. Vertex v
/// goes to argmax over partitions of
///   |N(v) ∩ V_i| * (1 - |V_i| / C),   C = |V| / M * slack.
class LdgPartitioner : public Partitioner {
 public:
  std::string name() const override { return "LDG"; }
  ComputeModel model() const override { return ComputeModel::kEdgeCut; }

  PartitionOutput DoRun(const PartitionerContext& ctx) override {
    WallTimer timer;
    const Graph& graph = *ctx.graph;
    const int num_dcs = ctx.topology->num_dcs();
    const VertexId n = graph.num_vertices();
    Rng rng(ctx.seed);

    const double capacity =
        1.05 * static_cast<double>(n) / static_cast<double>(num_dcs);

    std::vector<VertexId> order(n);
    std::iota(order.begin(), order.end(), 0u);
    rng.Shuffle(order);

    std::vector<DcId> masters(n, kNoDc);
    std::vector<double> load(num_dcs, 0);
    std::vector<double> neighbor_count(num_dcs, 0);
    for (VertexId v : order) {
      std::fill(neighbor_count.begin(), neighbor_count.end(), 0.0);
      for (VertexId u : graph.OutNeighbors(v)) {
        if (masters[u] != kNoDc) neighbor_count[masters[u]] += 1;
      }
      for (VertexId u : graph.InNeighbors(v)) {
        if (masters[u] != kNoDc) neighbor_count[masters[u]] += 1;
      }
      DcId best = 0;
      double best_score = -1e300;
      for (DcId r = 0; r < num_dcs; ++r) {
        const double score =
            (neighbor_count[r] + 1.0) * (1.0 - load[r] / capacity);
        if (score > best_score) {
          best_score = score;
          best = r;
        }
      }
      masters[v] = best;
      load[best] += 1;
    }

    PartitionConfig config;
    config.model = ComputeModel::kEdgeCut;
    config.theta = ctx.theta;
    config.workload = ctx.workload;
    PartitionState state(ctx.graph, ctx.topology, ctx.locations,
                         ctx.input_sizes, config);
    state.ResetDerived(masters);
    return PartitionOutput(std::move(state), timer.ElapsedSeconds());
  }
};

}  // namespace

std::unique_ptr<Partitioner> MakeLdg() {
  return std::make_unique<LdgPartitioner>();
}

}  // namespace rlcut
