#include <numeric>
#include <vector>

#include "baselines/partitioner.h"
#include "common/random.h"
#include "common/timer.h"

namespace rlcut {
namespace {

/// PowerLyra's Ginger heuristic: high-degree vertices are hashed;
/// low-degree vertices are streamed in random order and greedily placed
/// on the partition maximizing the Fennel-style score
///
///   c(v, S_i) = |N_in(v) ∩ S_i| - b(S_i),
///   b(S_i)    = 0.5 * (|V_i| + |V|/|E| * |E_i|),
///
/// where |E_i| counts in-edges already attracted to partition i.
class GingerPartitioner : public Partitioner {
 public:
  std::string name() const override { return "Ginger"; }
  ComputeModel model() const override { return ComputeModel::kHybridCut; }

  PartitionOutput DoRun(const PartitionerContext& ctx) override {
    WallTimer timer;
    const Graph& graph = *ctx.graph;
    const int num_dcs = ctx.topology->num_dcs();
    const VertexId n = graph.num_vertices();
    Rng rng(ctx.seed);

    std::vector<DcId> masters(n, kNoDc);
    std::vector<double> vertex_load(num_dcs, 0);
    std::vector<double> edge_load(num_dcs, 0);
    const double edge_weight =
        graph.num_edges() == 0
            ? 0.0
            : static_cast<double>(n) / static_cast<double>(graph.num_edges());

    // High-degree vertices by hash (their in-edges scatter to source
    // masters anyway, so locality-driven placement buys little).
    std::vector<VertexId> low_degree;
    low_degree.reserve(n);
    for (VertexId v = 0; v < n; ++v) {
      if (graph.InDegree(v) >= ctx.theta) {
        const DcId dc = static_cast<DcId>(HashU64(v ^ ctx.seed) % num_dcs);
        masters[v] = dc;
        vertex_load[dc] += 1;
        edge_load[dc] += graph.InDegree(v);
      } else {
        low_degree.push_back(v);
      }
    }

    // Stream low-degree vertices in random order.
    rng.Shuffle(low_degree);
    std::vector<double> neighbor_count(num_dcs, 0);
    for (VertexId v : low_degree) {
      std::fill(neighbor_count.begin(), neighbor_count.end(), 0.0);
      for (VertexId u : graph.InNeighbors(v)) {
        if (masters[u] != kNoDc) neighbor_count[masters[u]] += 1;
      }
      DcId best = 0;
      double best_score = -1e300;
      for (DcId r = 0; r < num_dcs; ++r) {
        const double balance =
            0.5 * (vertex_load[r] + edge_weight * edge_load[r]);
        const double score = neighbor_count[r] - balance;
        if (score > best_score) {
          best_score = score;
          best = r;
        }
      }
      masters[v] = best;
      vertex_load[best] += 1;
      edge_load[best] += graph.InDegree(v);
    }

    PartitionConfig config;
    config.model = ComputeModel::kHybridCut;
    config.theta = ctx.theta;
    config.workload = ctx.workload;
    PartitionState state(ctx.graph, ctx.topology, ctx.locations,
                         ctx.input_sizes, config);
    state.ResetDerived(masters);
    return PartitionOutput(std::move(state), timer.ElapsedSeconds());
  }
};

}  // namespace

std::unique_ptr<Partitioner> MakeGinger() {
  return std::make_unique<GingerPartitioner>();
}

}  // namespace rlcut
