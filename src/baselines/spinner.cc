#include "baselines/spinner.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "common/timer.h"

namespace rlcut {

int SpinnerCore::Refine(PartitionState* state, std::vector<VertexId> seeds,
                        Rng* rng) {
  const Graph& graph = state->graph();
  const int num_dcs = state->num_dcs();
  const VertexId n = graph.num_vertices();
  const double capacity =
      options_.balance_slack *
      std::max<double>(1.0, static_cast<double>(graph.num_edges()) / num_dcs);

  std::vector<uint8_t> in_frontier(n, 0);
  std::vector<VertexId> frontier = std::move(seeds);
  for (VertexId v : frontier) in_frontier[v] = 1;

  std::vector<double> neighbor_count(num_dcs, 0);
  int iterations = 0;
  for (; iterations < options_.max_iterations; ++iterations) {
    if (frontier.empty()) break;
    rng->Shuffle(frontier);
    std::vector<VertexId> next_frontier;
    uint64_t moves = 0;
    for (VertexId v : frontier) {
      in_frontier[v] = 0;
      std::fill(neighbor_count.begin(), neighbor_count.end(), 0.0);
      for (VertexId u : graph.OutNeighbors(v)) {
        neighbor_count[state->master(u)] += 1;
      }
      for (VertexId u : graph.InNeighbors(v)) {
        neighbor_count[state->master(u)] += 1;
      }
      const DcId current = state->master(v);
      DcId best = current;
      double best_score = -1e300;
      for (DcId r = 0; r < num_dcs; ++r) {
        // Label-propagation score with a multiplicative load penalty;
        // moves into partitions at capacity are forbidden.
        const double load = static_cast<double>(state->EdgeCount(r));
        if (r != current && load >= capacity) continue;
        const double score = neighbor_count[r] * (1.0 - load / capacity);
        if (score > best_score) {
          best_score = score;
          best = r;
        }
      }
      if (best != current && neighbor_count[best] > neighbor_count[current]) {
        state->MoveMaster(v, best);
        ++moves;
        // The move changes the locality of every neighbor.
        auto enqueue = [&](VertexId u) {
          if (!in_frontier[u]) {
            in_frontier[u] = 1;
            next_frontier.push_back(u);
          }
        };
        for (VertexId u : graph.OutNeighbors(v)) enqueue(u);
        for (VertexId u : graph.InNeighbors(v)) enqueue(u);
      }
    }
    if (static_cast<double>(moves) <
        options_.convergence_fraction * static_cast<double>(n)) {
      break;
    }
    frontier = std::move(next_frontier);
  }
  return iterations;
}

namespace {

/// Partitioner adapter: hash-initialized full Spinner run.
class SpinnerPartitioner : public Partitioner {
 public:
  explicit SpinnerPartitioner(SpinnerOptions options) : options_(options) {}

  std::string name() const override { return "Spinner"; }
  ComputeModel model() const override { return ComputeModel::kEdgeCut; }

  PartitionOutput DoRun(const PartitionerContext& ctx) override {
    WallTimer timer;
    const VertexId n = ctx.graph->num_vertices();
    const int num_dcs = ctx.topology->num_dcs();
    Rng rng(ctx.seed);

    std::vector<DcId> masters(n);
    for (VertexId v = 0; v < n; ++v) {
      masters[v] = static_cast<DcId>(HashU64(v ^ ctx.seed) % num_dcs);
    }

    PartitionConfig config;
    config.model = ComputeModel::kEdgeCut;
    config.theta = ctx.theta;
    config.workload = ctx.workload;
    PartitionState state(ctx.graph, ctx.topology, ctx.locations,
                         ctx.input_sizes, config);
    state.ResetDerived(masters);

    std::vector<VertexId> all(n);
    for (VertexId v = 0; v < n; ++v) all[v] = v;
    SpinnerCore core(options_);
    core.Refine(&state, std::move(all), &rng);
    return PartitionOutput(std::move(state), timer.ElapsedSeconds());
  }

 private:
  SpinnerOptions options_;
};

}  // namespace

std::unique_ptr<Partitioner> MakeSpinner(SpinnerOptions options) {
  return std::make_unique<SpinnerPartitioner>(options);
}

}  // namespace rlcut
