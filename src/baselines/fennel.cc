#include <cmath>
#include <numeric>
#include <vector>

#include "baselines/partitioner.h"
#include "common/random.h"
#include "common/timer.h"

namespace rlcut {
namespace {

/// Fennel (Tsourakakis et al., WSDM'14): one-pass streaming edge-cut.
/// Vertex v goes to the partition maximizing
///   |N(v) ∩ S_i| - alpha * gamma * |V_i|^{gamma-1},
/// with alpha = |E| * M^{gamma-1} / |V|^gamma.
class FennelPartitioner : public Partitioner {
 public:
  explicit FennelPartitioner(FennelOptions options) : options_(options) {}

  std::string name() const override { return "Fennel"; }
  ComputeModel model() const override { return ComputeModel::kEdgeCut; }

  PartitionOutput DoRun(const PartitionerContext& ctx) override {
    WallTimer timer;
    const Graph& graph = *ctx.graph;
    const int num_dcs = ctx.topology->num_dcs();
    const VertexId n = graph.num_vertices();
    Rng rng(ctx.seed);

    const double gamma = options_.gamma;
    const double alpha =
        n == 0 ? 0.0
               : static_cast<double>(graph.num_edges()) *
                     std::pow(static_cast<double>(num_dcs), gamma - 1.0) /
                     std::pow(static_cast<double>(n), gamma);

    std::vector<VertexId> order(n);
    std::iota(order.begin(), order.end(), 0u);
    rng.Shuffle(order);

    std::vector<DcId> masters(n, kNoDc);
    std::vector<double> load(num_dcs, 0);
    std::vector<double> neighbor_count(num_dcs, 0);
    // Hard capacity on top of the soft balance term, as practical
    // Fennel deployments use (the soft term alone drifts on small
    // skewed graphs).
    const double capacity =
        1.1 * static_cast<double>(n) / static_cast<double>(num_dcs);
    for (VertexId v : order) {
      std::fill(neighbor_count.begin(), neighbor_count.end(), 0.0);
      for (VertexId u : graph.OutNeighbors(v)) {
        if (masters[u] != kNoDc) neighbor_count[masters[u]] += 1;
      }
      for (VertexId u : graph.InNeighbors(v)) {
        if (masters[u] != kNoDc) neighbor_count[masters[u]] += 1;
      }
      DcId best = kNoDc;
      double best_score = -1e300;
      for (DcId r = 0; r < num_dcs; ++r) {
        if (load[r] >= capacity) continue;
        const double score =
            neighbor_count[r] -
            alpha * gamma * std::pow(load[r], gamma - 1.0);
        if (score > best_score) {
          best_score = score;
          best = r;
        }
      }
      if (best == kNoDc) best = 0;  // all full: capacity was mis-sized
      masters[v] = best;
      load[best] += 1;
    }

    PartitionConfig config;
    config.model = ComputeModel::kEdgeCut;
    config.theta = ctx.theta;
    config.workload = ctx.workload;
    PartitionState state(ctx.graph, ctx.topology, ctx.locations,
                         ctx.input_sizes, config);
    state.ResetDerived(masters);
    return PartitionOutput(std::move(state), timer.ElapsedSeconds());
  }

 private:
  FennelOptions options_;
};

}  // namespace

std::unique_ptr<Partitioner> MakeFennel(FennelOptions options) {
  return std::make_unique<FennelPartitioner>(options);
}

// MakePaperBaselines lives in rlcut/partitioner_registry.cc: it is now a
// view over the registry (paper_comparison entries in Fig. 10 order).

}  // namespace rlcut
