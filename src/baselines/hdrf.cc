#include <algorithm>
#include <numeric>
#include <vector>

#include "baselines/extra_partitioners.h"
#include "common/random.h"
#include "common/timer.h"

namespace rlcut {
namespace {

/// HDRF (Petroni et al., CIKM'15): streaming vertex-cut that prefers to
/// replicate high-degree endpoints. For edge (u, v) and partition p:
///
///   C_rep(p) = g(u, p) + g(v, p)
///   g(w, p)  = (1 + norm_other_degree(w)) if w has a replica on p else 0
///   C_bal(p) = lambda * (maxload - load_p) / (1 + maxload - minload)
///
/// and the edge goes to argmax C_rep + C_bal.
class HdrfPartitioner : public Partitioner {
 public:
  explicit HdrfPartitioner(HdrfOptions options) : options_(options) {}

  std::string name() const override { return "HDRF"; }
  ComputeModel model() const override { return ComputeModel::kVertexCut; }

  PartitionOutput DoRun(const PartitionerContext& ctx) override {
    WallTimer timer;
    const Graph& graph = *ctx.graph;
    const int num_dcs = ctx.topology->num_dcs();
    Rng rng(ctx.seed);

    std::vector<uint64_t> replicas(graph.num_vertices(), 0);
    std::vector<uint64_t> partial_degree(graph.num_vertices(), 0);
    std::vector<double> load(num_dcs, 0);
    std::vector<DcId> edge_dc(graph.num_edges(), kNoDc);
    std::vector<uint32_t> incident(
        static_cast<size_t>(graph.num_vertices()) * num_dcs, 0);

    std::vector<EdgeId> order(graph.num_edges());
    std::iota(order.begin(), order.end(), EdgeId{0});
    rng.Shuffle(order);

    for (EdgeId e : order) {
      const VertexId src = graph.EdgeSource(e);
      const VertexId dst = graph.EdgeTarget(e);
      ++partial_degree[src];
      ++partial_degree[dst];
      const double total = static_cast<double>(partial_degree[src]) +
                           static_cast<double>(partial_degree[dst]);
      const double theta_src =
          static_cast<double>(partial_degree[src]) / total;
      const double theta_dst = 1.0 - theta_src;

      const double max_load = *std::max_element(load.begin(), load.end());
      const double min_load = *std::min_element(load.begin(), load.end());

      DcId best = 0;
      double best_score = -1e300;
      for (DcId r = 0; r < num_dcs; ++r) {
        double rep = 0;
        // Degree-normalized replica affinity: the *lower*-degree
        // endpoint pulls harder, so hubs get replicated (the H in HDRF).
        if ((replicas[src] >> r) & 1) rep += 1.0 + (1.0 - theta_src);
        if ((replicas[dst] >> r) & 1) rep += 1.0 + (1.0 - theta_dst);
        const double bal = options_.lambda * (max_load - load[r]) /
                           (1.0 + max_load - min_load);
        const double score = rep + bal;
        if (score > best_score) {
          best_score = score;
          best = r;
        }
      }
      edge_dc[e] = best;
      replicas[src] |= 1ull << best;
      replicas[dst] |= 1ull << best;
      load[best] += 1;
      ++incident[static_cast<size_t>(src) * num_dcs + best];
      ++incident[static_cast<size_t>(dst) * num_dcs + best];
    }

    std::vector<DcId> masters(graph.num_vertices());
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      const uint32_t* row = &incident[static_cast<size_t>(v) * num_dcs];
      DcId best = kNoDc;
      uint32_t best_count = 0;
      for (DcId r = 0; r < num_dcs; ++r) {
        if (row[r] > best_count) {
          best_count = row[r];
          best = r;
        }
      }
      masters[v] = best == kNoDc ? (*ctx.locations)[v] : best;
    }

    PartitionConfig config;
    config.model = ComputeModel::kVertexCut;
    config.theta = ctx.theta;
    config.workload = ctx.workload;
    PartitionState state(ctx.graph, ctx.topology, ctx.locations,
                         ctx.input_sizes, config);
    state.ResetWithPlacement(masters, edge_dc);
    return PartitionOutput(std::move(state), timer.ElapsedSeconds());
  }

 private:
  HdrfOptions options_;
};

}  // namespace

std::unique_ptr<Partitioner> MakeHdrf(HdrfOptions options) {
  return std::make_unique<HdrfPartitioner>(options);
}

}  // namespace rlcut
