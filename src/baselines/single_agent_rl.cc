#include <cmath>
#include <unordered_map>
#include <vector>

#include "baselines/extra_partitioners.h"
#include "common/random.h"
#include "common/timer.h"

namespace rlcut {
namespace {

/// Single-agent reinforcement learning over the joint action space
/// (vertex, target DC) — the strawman Sec. IV argues against: one
/// automaton must learn a probability distribution over |V| x M actions,
/// so per-action signal accumulates |V| times slower than in the
/// multi-agent decomposition. Included to make that comparison
/// measurable (see bench_extras_comparison / EXPERIMENTS.md).
///
/// The probability vector is stored sparsely (entries that still carry
/// the uniform initial mass are implicit), otherwise sampling a
/// 40M-entry distribution would dominate the runtime and hide the
/// learning behaviour the comparison is about.
class SingleAgentRlPartitioner : public Partitioner {
 public:
  explicit SingleAgentRlPartitioner(SingleAgentRlOptions options)
      : options_(options) {}

  std::string name() const override { return "SingleAgentRL"; }
  ComputeModel model() const override { return ComputeModel::kHybridCut; }

  PartitionOutput DoRun(const PartitionerContext& ctx) override {
    WallTimer timer;
    const Graph& graph = *ctx.graph;
    const int num_dcs = ctx.topology->num_dcs();
    Rng rng(ctx.seed);

    PartitionConfig config;
    config.model = ComputeModel::kHybridCut;
    config.theta = ctx.theta;
    config.workload = ctx.workload;
    PartitionState state(ctx.graph, ctx.topology, ctx.locations,
                         ctx.input_sizes, config);
    state.ResetDerived(*ctx.locations);

    const uint64_t num_actions =
        static_cast<uint64_t>(graph.num_vertices()) * num_dcs;
    // Sparse automaton: actions not in the map still hold the uniform
    // initial mass. With |V| x M actions the distribution stays
    // near-uniform for any realistic training length (each action is
    // visited ~iterations/num_actions times — the whole point of the
    // comparison), so selection is approximated O(1) as: exploit the
    // current best-learned action with the probability mass it has
    // accumulated relative to uniform, otherwise draw uniformly.
    std::unordered_map<uint64_t, double> learned;
    const double uniform_mass = 1.0 / static_cast<double>(num_actions);
    uint64_t best_action = 0;
    double best_mass = uniform_mass;

    auto sample_action = [&]() -> uint64_t {
      const double exploit_probability =
          best_mass / (best_mass + 1.0);  // tiny until mass accumulates
      if (!learned.empty() && rng.Bernoulli(exploit_probability)) {
        return best_action;
      }
      return rng.UniformInt(num_actions);
    };

    auto boost = [&](uint64_t action, double factor) {
      auto [it, inserted] = learned.try_emplace(action, uniform_mass);
      (void)inserted;
      it->second = std::min(it->second * factor, 1.0);
      if (it->second > best_mass) {
        best_mass = it->second;
        best_action = action;
      }
    };

    EvalScratch scratch;
    std::vector<Objective> evals(num_dcs);
    // Exploit-heavy phases hammer the same action repeatedly; the
    // batched what-if stays valid at a vertex until the state mutates,
    // so memoize the last EvaluateMoveAll pass per vertex.
    VertexId cached_vertex = static_cast<VertexId>(-1);
    Objective current = state.CurrentObjective();
    const int64_t iterations =
        options_.moves_per_vertex *
        static_cast<int64_t>(graph.num_vertices());
    for (int64_t i = 0; i < iterations; ++i) {
      const uint64_t action = sample_action();
      const VertexId v = static_cast<VertexId>(action / num_dcs);
      const DcId to = static_cast<DcId>(action % num_dcs);
      if (to == state.master(v)) continue;
      if (v != cached_vertex) {
        state.EvaluateMoveAll(v, &scratch, evals.data());
        cached_vertex = v;
      }
      const Objective proposed = evals[to];
      const bool breaks_budget =
          ctx.budget > 0 && proposed.cost_dollars > ctx.budget &&
          proposed.cost_dollars > current.cost_dollars;
      const double gain =
          (current.transfer_seconds - proposed.transfer_seconds) +
          0.2 * (current.smooth_seconds - proposed.smooth_seconds);
      if (!breaks_budget && gain > 0) {
        state.MoveMaster(v, to);
        current = proposed;
        cached_vertex = static_cast<VertexId>(-1);  // state mutated
        boost(action, 1.0 + options_.alpha);  // reward
      } else {
        boost(action, 1.0 - options_.alpha);  // penalty
      }
    }

    return PartitionOutput(std::move(state), timer.ElapsedSeconds());
  }

 private:
  SingleAgentRlOptions options_;
};

}  // namespace

std::unique_ptr<Partitioner> MakeSingleAgentRl(
    SingleAgentRlOptions options) {
  return std::make_unique<SingleAgentRlPartitioner>(options);
}

}  // namespace rlcut
