#include <numeric>
#include <vector>

#include "baselines/extra_partitioners.h"
#include "common/random.h"
#include "common/timer.h"

namespace rlcut {
namespace {

/// PowerGraph's greedy "Oblivious" vertex-cut (Gonzalez et al.,
/// OSDI'12): edges are streamed and each is placed by the classic
/// case analysis on where its endpoints already have replicas:
///   1. both endpoints share replica DCs  -> least-loaded shared DC;
///   2. only one endpoint has replicas    -> its least-loaded DC;
///   3. both have replicas, none shared   -> least-loaded DC of the
///      endpoint with the higher remaining degree;
///   4. neither has replicas              -> least-loaded DC overall.
class ObliviousPartitioner : public Partitioner {
 public:
  std::string name() const override { return "Oblivious"; }
  ComputeModel model() const override { return ComputeModel::kVertexCut; }

  PartitionOutput DoRun(const PartitionerContext& ctx) override {
    WallTimer timer;
    const Graph& graph = *ctx.graph;
    const int num_dcs = ctx.topology->num_dcs();
    Rng rng(ctx.seed);

    std::vector<uint64_t> replicas(graph.num_vertices(), 0);  // bitmask
    std::vector<uint64_t> load(num_dcs, 0);
    std::vector<DcId> edge_dc(graph.num_edges(), kNoDc);
    std::vector<uint32_t> incident(
        static_cast<size_t>(graph.num_vertices()) * num_dcs, 0);
    std::vector<uint32_t> remaining_degree(graph.num_vertices());
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      remaining_degree[v] = graph.Degree(v);
    }

    std::vector<EdgeId> order(graph.num_edges());
    std::iota(order.begin(), order.end(), EdgeId{0});
    rng.Shuffle(order);

    auto least_loaded_of = [&](uint64_t mask) {
      DcId best = kNoDc;
      for (DcId r = 0; r < num_dcs; ++r) {
        if ((mask >> r) & 1) {
          if (best == kNoDc || load[r] < load[best]) best = r;
        }
      }
      return best;
    };

    for (EdgeId e : order) {
      const VertexId src = graph.EdgeSource(e);
      const VertexId dst = graph.EdgeTarget(e);
      const uint64_t shared = replicas[src] & replicas[dst];
      DcId target;
      if (shared != 0) {
        target = least_loaded_of(shared);
      } else if (replicas[src] != 0 && replicas[dst] != 0) {
        const VertexId heavier =
            remaining_degree[src] >= remaining_degree[dst] ? src : dst;
        target = least_loaded_of(replicas[heavier]);
      } else if (replicas[src] != 0) {
        target = least_loaded_of(replicas[src]);
      } else if (replicas[dst] != 0) {
        target = least_loaded_of(replicas[dst]);
      } else {
        target = least_loaded_of(~0ull >> (64 - num_dcs));
      }
      edge_dc[e] = target;
      replicas[src] |= 1ull << target;
      replicas[dst] |= 1ull << target;
      ++load[target];
      ++incident[static_cast<size_t>(src) * num_dcs + target];
      ++incident[static_cast<size_t>(dst) * num_dcs + target];
      if (remaining_degree[src] > 0) --remaining_degree[src];
      if (remaining_degree[dst] > 0) --remaining_degree[dst];
    }

    // Master = replica DC holding most incident edges (home if none).
    std::vector<DcId> masters(graph.num_vertices());
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      const uint32_t* row = &incident[static_cast<size_t>(v) * num_dcs];
      DcId best = kNoDc;
      uint32_t best_count = 0;
      for (DcId r = 0; r < num_dcs; ++r) {
        if (row[r] > best_count) {
          best_count = row[r];
          best = r;
        }
      }
      masters[v] = best == kNoDc ? (*ctx.locations)[v] : best;
    }

    PartitionConfig config;
    config.model = ComputeModel::kVertexCut;
    config.theta = ctx.theta;
    config.workload = ctx.workload;
    PartitionState state(ctx.graph, ctx.topology, ctx.locations,
                         ctx.input_sizes, config);
    state.ResetWithPlacement(masters, edge_dc);
    return PartitionOutput(std::move(state), timer.ElapsedSeconds());
  }
};

}  // namespace

std::unique_ptr<Partitioner> MakeOblivious() {
  return std::make_unique<ObliviousPartitioner>();
}

}  // namespace rlcut
