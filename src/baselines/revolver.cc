#include <vector>

#include "baselines/partitioner.h"
#include "common/random.h"
#include "common/timer.h"

namespace rlcut {
namespace {

// Exploration probability of the epsilon-greedy action selection.
constexpr double kExploreRate = 0.15;

/// Revolver (Mofrad et al., IEEE CLOUD'18): edge-cut partitioning with
/// one learning automaton per vertex. Each iteration, a vertex scores
/// partitions by neighbor locality discounted by load, receives a reward
/// when its current partition is the top-scoring one (LRP update
/// otherwise), then re-samples its assignment from the updated
/// probability vector.
class RevolverPartitioner : public Partitioner {
 public:
  explicit RevolverPartitioner(RevolverOptions options) : options_(options) {}

  std::string name() const override { return "Revolver"; }
  ComputeModel model() const override { return ComputeModel::kEdgeCut; }

  PartitionOutput DoRun(const PartitionerContext& ctx) override {
    WallTimer timer;
    const Graph& graph = *ctx.graph;
    const int num_dcs = ctx.topology->num_dcs();
    const VertexId n = graph.num_vertices();
    Rng rng(ctx.seed);

    // Probability vectors, initialized uniform.
    std::vector<double> prob(static_cast<size_t>(n) * num_dcs,
                             1.0 / num_dcs);
    std::vector<DcId> assignment(n);
    std::vector<double> load(num_dcs, 0);
    for (VertexId v = 0; v < n; ++v) {
      assignment[v] = static_cast<DcId>(rng.UniformInt(num_dcs));
      load[assignment[v]] += 1;
    }
    const double capacity = static_cast<double>(n) / num_dcs;

    std::vector<double> neighbor_count(num_dcs, 0);
    std::vector<double> pick(num_dcs, 0);
    for (int iter = 0; iter < options_.iterations; ++iter) {
      for (VertexId v = 0; v < n; ++v) {
        std::fill(neighbor_count.begin(), neighbor_count.end(), 0.0);
        double degree = 0;
        for (VertexId u : graph.OutNeighbors(v)) {
          neighbor_count[assignment[u]] += 1;
          degree += 1;
        }
        for (VertexId u : graph.InNeighbors(v)) {
          neighbor_count[assignment[u]] += 1;
          degree += 1;
        }
        DcId best = 0;
        double best_score = -1e300;
        for (DcId r = 0; r < num_dcs; ++r) {
          const double locality =
              degree > 0 ? neighbor_count[r] / degree : 0.0;
          const double score =
              locality - options_.balance_weight * (load[r] / capacity - 1.0);
          if (score > best_score) {
            best_score = score;
            best = r;
          }
        }
        double* p = &prob[static_cast<size_t>(v) * num_dcs];
        const DcId current = assignment[v];
        // Environment response: the locally dominant partition receives
        // the reward (Eq. 8 shape); if the current assignment is not
        // dominant it additionally receives a penalty (Eq. 9 shape), so
        // mass flows from the current choice toward the dominant one.
        for (DcId r = 0; r < num_dcs; ++r) {
          p[r] = (r == best) ? p[r] + options_.alpha * (1.0 - p[r])
                             : p[r] * (1.0 - options_.alpha);
        }
        if (current != best && num_dcs > 1) {
          const double share =
              options_.beta * p[current] / (num_dcs - 1);
          for (DcId r = 0; r < num_dcs; ++r) {
            p[r] = (r == current) ? p[r] * (1.0 - options_.beta)
                                  : p[r] + share;
          }
        }
        // Epsilon-greedy over the automaton: mostly exploit the mode of
        // the probability vector (pure sampling thrashes and never
        // consolidates locality), explore occasionally.
        DcId next;
        if (rng.Bernoulli(kExploreRate)) {
          pick.assign(p, p + num_dcs);
          next = static_cast<DcId>(rng.SampleDiscrete(pick));
        } else {
          next = 0;
          for (DcId r = 1; r < num_dcs; ++r) {
            if (p[r] > p[next]) next = r;
          }
        }
        if (next != current) {
          load[current] -= 1;
          load[next] += 1;
          assignment[v] = next;
        }
      }
    }

    PartitionConfig config;
    config.model = ComputeModel::kEdgeCut;
    config.theta = ctx.theta;
    config.workload = ctx.workload;
    PartitionState state(ctx.graph, ctx.topology, ctx.locations,
                         ctx.input_sizes, config);
    state.ResetDerived(assignment);
    return PartitionOutput(std::move(state), timer.ElapsedSeconds());
  }

 private:
  RevolverOptions options_;
};

}  // namespace

std::unique_ptr<Partitioner> MakeRevolver(RevolverOptions options) {
  return std::make_unique<RevolverPartitioner>(options);
}

}  // namespace rlcut
