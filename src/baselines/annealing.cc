#include <cmath>
#include <vector>

#include "baselines/extra_partitioners.h"
#include "common/random.h"
#include "common/timer.h"

namespace rlcut {
namespace {

/// Simulated annealing over hybrid-cut master placements: the classic
/// single-solution metaheuristic RLCut's multi-agent search can be
/// compared against at an equal evaluation budget. The energy is the
/// Eq. 1 transfer time plus a soft budget-violation penalty.
class AnnealingPartitioner : public Partitioner {
 public:
  explicit AnnealingPartitioner(AnnealingOptions options)
      : options_(options) {}

  std::string name() const override { return "Annealing"; }
  ComputeModel model() const override { return ComputeModel::kHybridCut; }

  PartitionOutput DoRun(const PartitionerContext& ctx) override {
    WallTimer timer;
    const Graph& graph = *ctx.graph;
    const int num_dcs = ctx.topology->num_dcs();
    Rng rng(ctx.seed);

    PartitionConfig config;
    config.model = ComputeModel::kHybridCut;
    config.theta = ctx.theta;
    config.workload = ctx.workload;
    PartitionState state(ctx.graph, ctx.topology, ctx.locations,
                         ctx.input_sizes, config);
    state.ResetDerived(*ctx.locations);  // natural start, like RLCut

    auto energy = [&](const Objective& obj) {
      double penalty = 0;
      if (ctx.budget > 0 && obj.cost_dollars > ctx.budget) {
        penalty = options_.budget_penalty *
                  (obj.cost_dollars - ctx.budget) / ctx.budget;
      }
      // Smooth term keeps acceptance informative on the bottleneck
      // plateau, mirroring the trainer's surrogate.
      return obj.transfer_seconds + 0.2 * obj.smooth_seconds +
             penalty * std::max(obj.transfer_seconds, 1e-12);
    };

    EvalScratch scratch;
    Objective current = state.CurrentObjective();
    double current_energy = energy(current);
    const int64_t iterations =
        options_.moves_per_vertex *
        static_cast<int64_t>(graph.num_vertices());
    double temperature = options_.initial_temperature * current_energy;
    const double cooling =
        iterations > 1
            ? std::pow(options_.final_temperature_fraction,
                       1.0 / static_cast<double>(iterations))
            : 1.0;

    std::vector<Objective> evals(num_dcs);
    for (int64_t i = 0; i < iterations;) {
      const VertexId v =
          static_cast<VertexId>(rng.UniformInt(graph.num_vertices()));
      // One batched what-if pass prices every destination for v; up to
      // num_dcs consecutive Metropolis proposals at v reuse it. The
      // cached objectives stay exact until a move is accepted, at
      // which point the run breaks out and re-evaluates fresh.
      state.EvaluateMoveAll(v, &scratch, evals.data());
      const DcId from = state.master(v);
      bool moved = false;
      for (int p = 0; p < num_dcs && i < iterations && !moved; ++p, ++i) {
        const DcId to = static_cast<DcId>(rng.UniformInt(num_dcs));
        if (to == from) {
          temperature *= cooling;
          continue;
        }
        const Objective& proposed = evals[to];
        // Hard feasibility: never accept a move that lands above budget
        // while increasing cost (same rule as the trainer).
        const bool breaks_budget =
            ctx.budget > 0 && proposed.cost_dollars > ctx.budget &&
            proposed.cost_dollars > current.cost_dollars;
        const double proposed_energy = energy(proposed);
        const double delta = proposed_energy - current_energy;
        const bool accept =
            !breaks_budget &&
            (delta <= 0 ||
             rng.UniformDouble() <
                 std::exp(-delta / std::max(temperature, 1e-30)));
        if (accept) {
          state.MoveMaster(v, to);
          current = proposed;
          current_energy = proposed_energy;
          moved = true;
        }
        temperature *= cooling;
      }
    }

    return PartitionOutput(std::move(state), timer.ElapsedSeconds());
  }

 private:
  AnnealingOptions options_;
};

}  // namespace

std::unique_ptr<Partitioner> MakeAnnealing(AnnealingOptions options) {
  return std::make_unique<AnnealingPartitioner>(options);
}

}  // namespace rlcut
