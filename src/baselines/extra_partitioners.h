#ifndef RLCUT_BASELINES_EXTRA_PARTITIONERS_H_
#define RLCUT_BASELINES_EXTRA_PARTITIONERS_H_

#include <memory>

#include "baselines/partitioner.h"

namespace rlcut {

/// Additional published partitioners beyond the paper's six comparisons.
/// They share the Partitioner interface so the comparison benches and
/// the CLI tool can select them by name.

/// PowerGraph's greedy "Oblivious" vertex-cut (Gonzalez et al., OSDI'12).
std::unique_ptr<Partitioner> MakeOblivious();

/// HDRF: High-Degree Replicated First streaming vertex-cut (Petroni et
/// al., CIKM'15). Scores candidate DCs by partial-degree-weighted replica
/// affinity plus a load-balance term.
struct HdrfOptions {
  /// Balance weight lambda (>= 0; HDRF paper uses ~1).
  double lambda = 1.0;
};
std::unique_ptr<Partitioner> MakeHdrf(HdrfOptions options = {});

/// LDG: Linear Deterministic Greedy streaming edge-cut (Stanton &
/// Kliot, KDD'12): place v on the partition with most neighbors, scaled
/// by the remaining capacity factor (1 - |V_i|/C).
std::unique_ptr<Partitioner> MakeLdg();

/// Multilevel edge-cut partitioner (METIS-style): heavy-edge-matching
/// coarsening, greedy initial partitioning, per-level boundary
/// refinement. The offline-quality, network-oblivious reference point.
struct MultilevelOptions {
  /// Stop coarsening once the level has at most this many vertices
  /// per target partition.
  VertexId coarse_vertices_per_dc = 32;
  int max_levels = 20;
  int refinement_passes = 4;
};
std::unique_ptr<Partitioner> MakeMultilevel(MultilevelOptions options = {});

/// Simulated annealing over hybrid-cut masters: the classic
/// single-solution metaheuristic, run from the same natural start and
/// under the same budget rules as RLCut, for equal-work comparisons.
struct AnnealingOptions {
  /// Proposal budget: moves_per_vertex * |V| candidate moves.
  int64_t moves_per_vertex = 20;
  /// Starting temperature as a fraction of the initial energy.
  double initial_temperature = 0.05;
  /// Final temperature as a fraction of the initial temperature.
  double final_temperature_fraction = 1e-3;
  /// Soft penalty weight for exceeding the budget.
  double budget_penalty = 10.0;
};
std::unique_ptr<Partitioner> MakeAnnealing(AnnealingOptions options = {});

/// GrapH (Mayer et al., ICDCS'16): heterogeneity-aware adaptive
/// vertex-cut — cheap hash placement followed by traffic-cost-driven
/// edge migration rounds over the heterogeneous links.
struct GrapHOptions {
  int migration_rounds = 2;
  /// Weight of the monetary-cost term in the migration score.
  double cost_weight = 0.3;
};
std::unique_ptr<Partitioner> MakeGrapH(GrapHOptions options = {});

/// Single-agent RL over the joint (vertex, DC) action space — the
/// alternative Sec. IV argues against. With |V| x M actions the learned
/// distribution stays near-uniform for any realistic training length,
/// so in practice this degenerates into randomized greedy local search;
/// measured findings are in EXPERIMENTS.md (it is surprisingly
/// competitive on raw quality at small scale, but has no notion of a
/// time budget, no parallel decomposition, and no per-vertex policy to
/// carry across dynamic windows — which is where the multi-agent
/// formulation actually earns its keep).
struct SingleAgentRlOptions {
  int64_t moves_per_vertex = 20;
  double alpha = 0.5;  // multiplicative reward/penalty step
};
std::unique_ptr<Partitioner> MakeSingleAgentRl(
    SingleAgentRlOptions options = {});

/// Legacy name lookup: returns nullptr for unknown names. Thin wrapper
/// over the registry in baselines/partitioner.h, which is the preferred
/// API (it also knows "RLCut" and accepts PartitionerOptions).
/// Implemented alongside the registry in rlcut_core.
std::unique_ptr<Partitioner> MakePartitionerByName(const std::string& name);

}  // namespace rlcut

#endif  // RLCUT_BASELINES_EXTRA_PARTITIONERS_H_
