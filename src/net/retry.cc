#include "net/retry.h"

#include <algorithm>
#include <cmath>

#include "common/timer.h"
#include "fault/fault.h"
#include "obs/metrics.h"

namespace rlcut {
namespace net {
namespace {

// SplitMix64, the same decorrelation step the fault injector uses: one
// round is enough to turn (seed, op, attempt) into an independent draw.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

double BackoffMs(const RetryPolicy& policy, uint64_t op_id, int attempt) {
  const double initial = std::max(0.0, policy.initial_backoff_ms);
  const double cap = std::max(initial, policy.max_backoff_ms);
  const double growth = std::max(1.0, policy.multiplier);
  double base = initial * std::pow(growth, attempt);
  base = std::min(base, cap);
  const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  if (jitter == 0 || base == 0) return base;
  const uint64_t draw =
      Mix64(policy.seed ^ Mix64(op_id) ^ static_cast<uint64_t>(attempt));
  // Top 53 bits to a uniform double in [0, 1), mapped to [-1, +1).
  const double u = static_cast<double>(draw >> 11) * 0x1.0p-53 * 2.0 - 1.0;
  return base * (1.0 + jitter * u);
}

Status RetryCall(const RetryPolicy& policy, uint64_t op_id,
                 const std::string& what,
                 const std::function<Status()>& fn,
                 const std::atomic<bool>* cancel, RetryOutcome* outcome) {
  obs::Counter* retries =
      obs::DefaultRegistry().GetCounter("retry." + what + ".retries");
  obs::Counter* exhausted =
      obs::DefaultRegistry().GetCounter("retry." + what + ".exhausted");
  const int max_attempts = std::max(1, policy.max_attempts);
  WallTimer timer;
  Status last = Status::Internal(what + ": never attempted");
  int attempt = 0;
  for (; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      const int64_t wait_ms = static_cast<int64_t>(
          std::ceil(BackoffMs(policy, op_id, attempt - 1)));
      fault::CancellableSleepMs(wait_ms, cancel);
      retries->Increment();
    }
    last = fn();
    if (last.ok()) {
      if (outcome != nullptr) {
        outcome->attempts = attempt + 1;
        outcome->exhausted = false;
      }
      return last;
    }
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) break;
    if (policy.deadline_seconds > 0 &&
        timer.ElapsedSeconds() >= policy.deadline_seconds) {
      break;
    }
  }
  exhausted->Increment();
  if (outcome != nullptr) {
    outcome->attempts = std::min(attempt + 1, max_attempts);
    outcome->exhausted = true;
  }
  return Status(last.code(), what + " failed after " +
                                 std::to_string(outcome != nullptr
                                                    ? outcome->attempts
                                                    : attempt + 1) +
                                 " attempts: " + last.message());
}

}  // namespace net
}  // namespace rlcut
