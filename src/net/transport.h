#ifndef RLCUT_NET_TRANSPORT_H_
#define RLCUT_NET_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "common/status.h"

namespace rlcut {
namespace net {

/// A bidirectional, connection-oriented byte stream. Two
/// implementations: TcpTransport (loopback/LAN sockets, the production
/// shape) and FlakyPipe (deterministic in-memory pair for tests and the
/// chaos oracle). Both consult the net.* fault-injection sites
/// (src/fault), so every failure mode the chaos lane exercises is the
/// same code path production would take.
///
/// Thread-safety: one sender and one receiver may use a transport
/// concurrently; concurrent Send calls (or concurrent Recv calls) must
/// be externally serialized.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Blocking send of all of `bytes`. Non-OK means the connection is
  /// unusable (callers reconnect; partial delivery is possible and the
  /// frame checksum catches it on the far side).
  virtual Status Send(const std::string& bytes) = 0;

  /// Waits up to `timeout_ms` for data and returns whatever arrived
  /// (at most an implementation-chosen chunk). An empty string means
  /// the timeout elapsed with the connection still healthy; a non-OK
  /// Status means EOF or a connection error.
  virtual Result<std::string> Recv(int timeout_ms) = 0;

  /// Closes the connection; pending and future Recv on the peer sees
  /// EOF once buffered bytes drain.
  virtual void Close() = 0;

  virtual bool closed() const = 0;
};

/// Frame types of the replica-sync protocol (docs/distributed.md).
enum class FrameType : uint8_t {
  kHello = 1,     // client -> server: protocol handshake
  kHelloAck = 2,  // server -> client: server version + fingerprint
  kDelta = 3,     // client -> server: EncodePlanDelta payload
  kSnapshot = 4,  // client -> server: EncodePlanSnapshot payload (resync)
  kAck = 5,       // server -> client: applied; new version + fingerprint
  kNack = 6,      // server -> client: rejected; server version + reason
  kPing = 7,      // client -> server: liveness probe
  kPong = 8,      // server -> client: liveness answer
};

/// Largest payload a frame may declare. Bounds the allocation a
/// corrupted or hostile length prefix can force; a 2^20-vertex snapshot
/// is ~4 MiB, so 64 MiB leaves ample headroom.
constexpr uint32_t kMaxFramePayload = 64u << 20;

/// One protocol message.
struct Frame {
  FrameType type = FrameType::kPing;
  std::string payload;
};

/// Frame wire format (host-endian, like every rlcut binary format):
///   u32 magic "RLNF" | u8 type | u32 payload size | payload |
///   u64 FNV-1a checksum over (type byte + payload)
std::string EncodeFrame(const Frame& frame);

/// Incremental frame parser over a byte stream. Feed() whatever Recv
/// returned; Next() pops complete frames. A malformed stream (bad
/// magic, oversized length, checksum mismatch) is unrecoverable — the
/// decoder stays in the error state and the connection must be torn
/// down, because frame boundaries can no longer be trusted.
class FrameDecoder {
 public:
  void Feed(const std::string& bytes) { buffer_ += bytes; }

  /// True with `*out` filled when a complete, checksum-valid frame was
  /// consumed; false when more bytes are needed; non-OK on corruption.
  Result<bool> Next(Frame* out);

  size_t buffered() const { return buffer_.size(); }

 private:
  std::string buffer_;
  bool corrupt_ = false;
};

/// Sends one encoded frame, consulting the net.frame_corrupt site: when
/// it fires the frame is transmitted with one byte flipped, so the
/// receiver's checksum check — not the injector — decides the outcome.
Status SendFrame(Transport* transport, const Frame& frame);

/// Receives frames until one is complete or `timeout_ms` elapses.
/// Timeout returns kIoError with a message containing "timed out";
/// corruption and EOF surface the decoder/transport error.
Status RecvFrame(Transport* transport, FrameDecoder* decoder,
                 int timeout_ms, Frame* out);

/// A deterministic in-memory duplex pipe. CreatePair() returns two
/// connected ends; bytes written to one are readable from the other.
/// "Flaky" because, like the socket transport, every operation consults
/// the net.* fault sites — under an armed schedule the pipe drops
/// connections, times out, and corrupts frames on demand, with no real
/// network in the loop.
class FlakyPipe : public Transport {
 public:
  static std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
  CreatePair();

  ~FlakyPipe() override;
  Status Send(const std::string& bytes) override;
  Result<std::string> Recv(int timeout_ms) override;
  void Close() override;
  bool closed() const override;

 private:
  struct Shared;
  FlakyPipe(std::shared_ptr<Shared> shared, int side);

  std::shared_ptr<Shared> shared_;
  int side_ = 0;
};

/// A listening TCP socket bound to 127.0.0.1. `port` 0 picks an
/// ephemeral port, readable from port() afterwards.
class TcpListener {
 public:
  static Result<std::unique_ptr<TcpListener>> Listen(int port);

  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Waits up to `timeout_ms` for a connection. Timeout returns
  /// kIoError with "timed out" in the message.
  Result<std::unique_ptr<Transport>> Accept(int timeout_ms);

  int port() const { return port_; }

  /// Closes the listening socket; a blocked Accept returns an error.
  void Close();

 private:
  explicit TcpListener(int fd, int port) : fd_(fd), port_(port) {}

  int fd_ = -1;
  int port_ = 0;
};

/// Connects to `endpoint` ("host:port"; host must resolve as a numeric
/// IPv4 address, e.g. "127.0.0.1:7070"). Consults net.connect_fail.
Result<std::unique_ptr<Transport>> DialTcp(const std::string& endpoint,
                                           int timeout_ms);

/// Splits "host:port"; non-OK on malformed input.
Status ParseEndpoint(const std::string& endpoint, std::string* host,
                     int* port);

}  // namespace net
}  // namespace rlcut

#endif  // RLCUT_NET_TRANSPORT_H_
