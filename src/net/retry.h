#ifndef RLCUT_NET_RETRY_H_
#define RLCUT_NET_RETRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"

namespace rlcut {
namespace net {

/// Shared retry/backoff policy for fallible remote (or remote-shaped)
/// operations: bounded attempts, exponential backoff with seeded
/// jitter, and an overall wall-clock deadline. Every retry loop in the
/// codebase goes through this one policy so retry behavior is tuned —
/// and tested — in exactly one place (docs/distributed.md).
struct RetryPolicy {
  /// Total tries including the first one. <= 0 means a single attempt.
  int max_attempts = 8;
  /// Backoff before the first retry, milliseconds.
  double initial_backoff_ms = 1;
  /// Backoff growth cap, milliseconds.
  double max_backoff_ms = 250;
  /// Exponential growth factor between retries.
  double multiplier = 2.0;
  /// Uniform jitter as a fraction of the base backoff: the actual wait
  /// is base * (1 +/- jitter). Decorrelates clients that fail together.
  double jitter = 0.25;
  /// Wall-clock budget across all attempts, seconds. Once exceeded no
  /// further retry starts (the in-flight attempt is never interrupted).
  /// <= 0 disables the deadline.
  double deadline_seconds = 0;
  /// Seed for the jitter draws; (seed, op_id, attempt) fully determines
  /// every backoff, so a seeded run replays its exact retry timeline.
  uint64_t seed = 1;
};

/// The jittered backoff before retry `attempt` (0-based: the wait after
/// the first failure is attempt 0) of operation `op_id`. Deterministic
/// in (policy.seed, op_id, attempt); always within
/// [base * (1 - jitter), base * (1 + jitter)] for
/// base = min(initial_backoff_ms * multiplier^attempt, max_backoff_ms).
double BackoffMs(const RetryPolicy& policy, uint64_t op_id, int attempt);

/// Outcome accounting for one RetryCall, also mirrored into the default
/// metrics registry as "retry.<what>.retries" / "retry.<what>.exhausted"
/// counters so daemons can report retry pressure in their summaries.
struct RetryOutcome {
  /// Attempts actually made (>= 1).
  int attempts = 0;
  /// True when the call gave up (attempts or deadline exhausted).
  bool exhausted = false;
};

/// Runs `fn` until it returns OK, sleeping the policy's backoff between
/// attempts. On exhaustion returns the last error with the attempt
/// count prepended to its message — a clean Status, never a throw.
/// `what` names the operation for metrics and error messages ("connect",
/// "serve.publish", ...). `cancel`, when non-null, aborts the backoff
/// sleep early and stops retrying (the last error is returned).
Status RetryCall(const RetryPolicy& policy, uint64_t op_id,
                 const std::string& what,
                 const std::function<Status()>& fn,
                 const std::atomic<bool>* cancel = nullptr,
                 RetryOutcome* outcome = nullptr);

}  // namespace net
}  // namespace rlcut

#endif  // RLCUT_NET_RETRY_H_
