#ifndef RLCUT_NET_REPLICA_SERVICE_H_
#define RLCUT_NET_REPLICA_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "net/retry.h"
#include "net/transport.h"
#include "partition/plan_delta.h"

namespace rlcut {
namespace net {

/// Replica-sync protocol payloads (docs/distributed.md). Deltas and
/// snapshots use the partition codecs; the rest are the small control
/// messages below. All decode paths bound counts before allocating.
struct HelloMsg {
  uint32_t protocol_version = 1;
  uint64_t client_version = 0;
  uint64_t client_fingerprint = 0;
};

struct HelloAckMsg {
  uint64_t server_version = 0;
  uint64_t server_fingerprint = 0;
};

struct AckMsg {
  uint64_t version = 0;
  uint64_t fingerprint = 0;
};

struct NackMsg {
  uint64_t server_version = 0;
  std::string reason;
};

std::string EncodeHello(const HelloMsg& msg);
Status DecodeHello(const std::string& bytes, HelloMsg* out);
std::string EncodeHelloAck(const HelloAckMsg& msg);
Status DecodeHelloAck(const std::string& bytes, HelloAckMsg* out);
std::string EncodeAck(const AckMsg& msg);
Status DecodeAck(const std::string& bytes, AckMsg* out);
std::string EncodeNack(const NackMsg& msg);
Status DecodeNack(const std::string& bytes, NackMsg* out);

/// Counters a replica server accumulates across connections.
struct ReplicaServerStats {
  uint64_t connections = 0;
  uint64_t frames = 0;
  uint64_t deltas_applied = 0;
  uint64_t snapshots_installed = 0;
  uint64_t nacks = 0;
  uint64_t pings = 0;
};

struct ReplicaServerOptions {
  /// Per-recv idle wait; the connection stays open across timeouts
  /// (clients go quiet between sync intervals) until EOF or `stop`.
  int idle_timeout_ms = 1000;
};

/// The far side of the replica link: owns a PlanReplica and applies
/// whatever a well-formed client ships. A delta that does not chain
/// onto the current version is Nacked with the server's version — the
/// client answers with a full snapshot (resync). Malformed frames or
/// payloads close the connection; the replica keeps its last good
/// state, so a reconnecting client finds a consistent (if stale) peer.
///
/// Thread-safe: HandleFrame locks the replica, so one server instance
/// can serve sequential connections from a host loop while observers
/// read its state.
class ReplicaServer {
 public:
  explicit ReplicaServer(ReplicaServerOptions options = {})
      : options_(options) {}

  /// Processes one protocol frame and returns the response frame.
  /// Non-OK means the frame was malformed and the connection must be
  /// dropped (exposed for tests and the fuzz harness).
  Result<Frame> HandleFrame(const Frame& frame);

  /// Serves one connection until EOF, a malformed frame, or `stop`.
  /// Clean EOF returns OK; protocol or transport errors return the
  /// cause (the host loop logs and moves to the next connection).
  Status ServeConnection(Transport* transport,
                         const std::atomic<bool>* stop = nullptr);

  PlanSnapshot snapshot() const;
  uint64_t version() const;
  uint64_t fingerprint() const;
  ReplicaServerStats stats() const;

 private:
  ReplicaServerOptions options_;
  mutable std::mutex mu_;
  PlanReplica replica_;
  ReplicaServerStats stats_;
};

struct ReplicaClientOptions {
  /// Backoff/deadline for Flush-time convergence (the fail-closed
  /// barrier). PushDelta never blocks on this policy — mid-training
  /// failures degrade instead of stalling the trainer.
  RetryPolicy retry;
  int dial_timeout_ms = 2000;
  int recv_timeout_ms = 2000;
  /// Send a Ping liveness probe every N in-sync pushes; 0 disables.
  int heartbeat_every_pushes = 16;
};

/// The trainer-side half of the link: a ReplicaSink that mirrors every
/// pushed delta into a local PlanReplica (so it always holds the full
/// intended state) and ships it to a remote ReplicaServer.
///
/// Failure model (docs/distributed.md):
///  - PushDelta updates the mirror, then best-effort ships the delta.
///    Any transport failure flips the client into *degraded* mode —
///    PushDelta still returns OK and the trainer keeps going against
///    the mirror; the gap is surfaced through the net.client.degraded
///    gauge and the degraded() flag.
///  - While degraded, each PushDelta makes one cheap reconnect attempt;
///    on success the client heals by shipping a full snapshot.
///  - A server that Nacks (version gap — e.g. it restarted empty) or
///    Acks with a mismatched fingerprint triggers the same snapshot
///    resync.
///  - Flush() is the barrier: it retries under the client RetryPolicy
///    until the server confirms the mirror's exact version and
///    fingerprint, or returns a non-OK Status for callers to fail
///    closed on.
///
/// Single-caller: one thread drives Begin/PushDelta/Flush (the
/// trainer's sync cadence); degraded() may be read from anywhere.
class ReplicaClient : public ReplicaSink {
 public:
  using Connector = std::function<Result<std::unique_ptr<Transport>>()>;

  explicit ReplicaClient(Connector connector,
                         ReplicaClientOptions options = {});
  ~ReplicaClient() override;

  /// A connector that dials `endpoint` over TCP with the client's dial
  /// timeout.
  static Connector TcpConnector(const std::string& endpoint,
                                int dial_timeout_ms);

  Status Begin(const PlanSnapshot& snapshot) override;
  Status PushDelta(const PlanDelta& delta) override;
  Status Flush() override;
  bool degraded() const override;
  uint64_t version() const override { return mirror_version(); }

  /// True if the client was degraded at any point since Begin().
  bool ever_degraded() const;

  uint64_t mirror_version() const;
  uint64_t mirror_fingerprint() const;
  uint64_t resyncs() const { return resyncs_; }
  uint64_t reconnects() const { return reconnects_; }

  void CloseConnection();

 private:
  /// One reconnect + handshake attempt; no retries.
  Status EnsureConnected();
  /// Drives the server to the mirror's exact state (snapshot resync if
  /// needed) and verifies the fingerprint. One attempt; no retries.
  Status SyncFully();
  /// Sends one frame and waits for its Ack/Nack/Pong response.
  Status RoundTrip(const Frame& request, Frame* response);
  void EnterDegraded(const Status& cause);

  Connector connector_;
  ReplicaClientOptions options_;

  PlanReplica mirror_;
  std::unique_ptr<Transport> transport_;
  FrameDecoder decoder_;
  /// Server state as last confirmed on this connection; valid only
  /// while `server_synced_`.
  bool server_synced_ = false;
  uint64_t server_version_ = 0;

  std::atomic<bool> degraded_{false};
  std::atomic<bool> ever_degraded_{false};
  uint64_t pushes_since_heartbeat_ = 0;
  uint64_t resyncs_ = 0;
  uint64_t reconnects_ = 0;
  uint64_t op_id_ = 0;
};

}  // namespace net
}  // namespace rlcut

#endif  // RLCUT_NET_REPLICA_SERVICE_H_
