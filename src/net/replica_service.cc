#include "net/replica_service.h"

#include <utility>

#include "common/byte_io.h"
#include "obs/metrics.h"

namespace rlcut {
namespace net {
namespace {

bool IsTimeout(const Status& status) {
  return status.code() == StatusCode::kIoError &&
         status.message().find("timed out") != std::string::npos;
}

bool IsEof(const Status& status) {
  return status.code() == StatusCode::kIoError &&
         status.message().find("EOF") != std::string::npos;
}

Status Truncated(const char* what) {
  return Status::InvalidArgument(std::string(what) + " payload truncated");
}

}  // namespace

std::string EncodeHello(const HelloMsg& msg) {
  ByteWriter writer;
  writer.Write<uint32_t>(msg.protocol_version);
  writer.Write<uint64_t>(msg.client_version);
  writer.Write<uint64_t>(msg.client_fingerprint);
  return writer.bytes();
}

Status DecodeHello(const std::string& bytes, HelloMsg* out) {
  ByteReader reader(bytes);
  HelloMsg msg;
  if (!reader.Read(&msg.protocol_version) ||
      !reader.Read(&msg.client_version) ||
      !reader.Read(&msg.client_fingerprint) || !reader.exhausted()) {
    return Truncated("hello");
  }
  *out = msg;
  return Status::Ok();
}

std::string EncodeHelloAck(const HelloAckMsg& msg) {
  ByteWriter writer;
  writer.Write<uint64_t>(msg.server_version);
  writer.Write<uint64_t>(msg.server_fingerprint);
  return writer.bytes();
}

Status DecodeHelloAck(const std::string& bytes, HelloAckMsg* out) {
  ByteReader reader(bytes);
  HelloAckMsg msg;
  if (!reader.Read(&msg.server_version) ||
      !reader.Read(&msg.server_fingerprint) || !reader.exhausted()) {
    return Truncated("hello-ack");
  }
  *out = msg;
  return Status::Ok();
}

std::string EncodeAck(const AckMsg& msg) {
  ByteWriter writer;
  writer.Write<uint64_t>(msg.version);
  writer.Write<uint64_t>(msg.fingerprint);
  return writer.bytes();
}

Status DecodeAck(const std::string& bytes, AckMsg* out) {
  ByteReader reader(bytes);
  AckMsg msg;
  if (!reader.Read(&msg.version) || !reader.Read(&msg.fingerprint) ||
      !reader.exhausted()) {
    return Truncated("ack");
  }
  *out = msg;
  return Status::Ok();
}

std::string EncodeNack(const NackMsg& msg) {
  ByteWriter writer;
  writer.Write<uint64_t>(msg.server_version);
  writer.WriteString(msg.reason);
  return writer.bytes();
}

Status DecodeNack(const std::string& bytes, NackMsg* out) {
  ByteReader reader(bytes);
  NackMsg msg;
  if (!reader.Read(&msg.server_version) ||
      !reader.ReadString(&msg.reason) || !reader.exhausted()) {
    return Truncated("nack");
  }
  *out = std::move(msg);
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// ReplicaServer

Result<Frame> ReplicaServer::HandleFrame(const Frame& frame) {
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.frames;
  Frame response;
  switch (frame.type) {
    case FrameType::kHello: {
      HelloMsg hello;
      RLCUT_RETURN_IF_ERROR(DecodeHello(frame.payload, &hello));
      if (hello.protocol_version != 1) {
        return Status::InvalidArgument(
            "unsupported replica protocol version " +
            std::to_string(hello.protocol_version));
      }
      HelloAckMsg ack;
      ack.server_version = replica_.version();
      ack.server_fingerprint = replica_.Fingerprint();
      response.type = FrameType::kHelloAck;
      response.payload = EncodeHelloAck(ack);
      return response;
    }
    case FrameType::kDelta: {
      PlanDelta delta;
      RLCUT_RETURN_IF_ERROR(DecodePlanDelta(frame.payload, &delta));
      const Status applied = replica_.Apply(delta);
      if (applied.ok()) {
        ++stats_.deltas_applied;
        AckMsg ack;
        ack.version = replica_.version();
        ack.fingerprint = replica_.Fingerprint();
        response.type = FrameType::kAck;
        response.payload = EncodeAck(ack);
      } else {
        ++stats_.nacks;
        NackMsg nack;
        nack.server_version = replica_.version();
        nack.reason = applied.ToString();
        response.type = FrameType::kNack;
        response.payload = EncodeNack(nack);
      }
      return response;
    }
    case FrameType::kSnapshot: {
      PlanSnapshot snapshot;
      RLCUT_RETURN_IF_ERROR(DecodePlanSnapshot(frame.payload, &snapshot));
      const Status installed = replica_.InstallSnapshot(snapshot);
      if (installed.ok()) {
        ++stats_.snapshots_installed;
        AckMsg ack;
        ack.version = replica_.version();
        ack.fingerprint = replica_.Fingerprint();
        response.type = FrameType::kAck;
        response.payload = EncodeAck(ack);
      } else {
        ++stats_.nacks;
        NackMsg nack;
        nack.server_version = replica_.version();
        nack.reason = installed.ToString();
        response.type = FrameType::kNack;
        response.payload = EncodeNack(nack);
      }
      return response;
    }
    case FrameType::kPing: {
      ++stats_.pings;
      response.type = FrameType::kPong;
      return response;
    }
    default:
      return Status::InvalidArgument(
          "unexpected frame type " +
          std::to_string(static_cast<int>(frame.type)));
  }
}

Status ReplicaServer::ServeConnection(Transport* transport,
                                      const std::atomic<bool>* stop) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++stats_.connections;
  }
  FrameDecoder decoder;
  for (;;) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
      return Status::Ok();
    }
    Frame frame;
    const Status received =
        RecvFrame(transport, &decoder, options_.idle_timeout_ms, &frame);
    if (!received.ok()) {
      if (IsTimeout(received)) continue;  // Idle client; keep waiting.
      if (IsEof(received)) return Status::Ok();
      return received;
    }
    Result<Frame> response = HandleFrame(frame);
    if (!response.ok()) return response.status();
    RLCUT_RETURN_IF_ERROR(SendFrame(transport, response.value()));
  }
}

PlanSnapshot ReplicaServer::snapshot() const {
  std::unique_lock<std::mutex> lock(mu_);
  return replica_.Snapshot();
}

uint64_t ReplicaServer::version() const {
  std::unique_lock<std::mutex> lock(mu_);
  return replica_.version();
}

uint64_t ReplicaServer::fingerprint() const {
  std::unique_lock<std::mutex> lock(mu_);
  return replica_.Fingerprint();
}

ReplicaServerStats ReplicaServer::stats() const {
  std::unique_lock<std::mutex> lock(mu_);
  return stats_;
}

// ---------------------------------------------------------------------------
// ReplicaClient

ReplicaClient::ReplicaClient(Connector connector,
                             ReplicaClientOptions options)
    : connector_(std::move(connector)), options_(options) {}

ReplicaClient::~ReplicaClient() { CloseConnection(); }

ReplicaClient::Connector ReplicaClient::TcpConnector(
    const std::string& endpoint, int dial_timeout_ms) {
  return [endpoint, dial_timeout_ms]() {
    return DialTcp(endpoint, dial_timeout_ms);
  };
}

void ReplicaClient::CloseConnection() {
  transport_.reset();
  decoder_ = FrameDecoder();
  server_synced_ = false;
}

void ReplicaClient::EnterDegraded(const Status& cause) {
  (void)cause;
  CloseConnection();
  if (!degraded_.exchange(true, std::memory_order_relaxed)) {
    obs::DefaultRegistry().GetCounter("net.client.degrade_events")
        ->Increment();
  }
  ever_degraded_.store(true, std::memory_order_relaxed);
  obs::DefaultRegistry().GetGauge("net.client.degraded")->Set(1);
}

Status ReplicaClient::RoundTrip(const Frame& request, Frame* response) {
  Status sent = SendFrame(transport_.get(), request);
  if (!sent.ok()) {
    CloseConnection();
    return sent;
  }
  Status received = RecvFrame(transport_.get(), &decoder_,
                              options_.recv_timeout_ms, response);
  if (!received.ok()) {
    // A late response would desynchronize request/response pairing, so
    // any failed round trip costs the connection.
    CloseConnection();
    return received;
  }
  return Status::Ok();
}

Status ReplicaClient::EnsureConnected() {
  if (transport_ != nullptr && !transport_->closed()) return Status::Ok();
  CloseConnection();
  Result<std::unique_ptr<Transport>> dialed = connector_();
  if (!dialed.ok()) return dialed.status();
  transport_ = std::move(dialed.value());
  ++reconnects_;
  obs::DefaultRegistry().GetCounter("net.client.reconnects")->Increment();
  HelloMsg hello;
  hello.client_version = mirror_.version();
  hello.client_fingerprint = mirror_.Fingerprint();
  Frame request;
  request.type = FrameType::kHello;
  request.payload = EncodeHello(hello);
  Frame response;
  RLCUT_RETURN_IF_ERROR(RoundTrip(request, &response));
  if (response.type != FrameType::kHelloAck) {
    CloseConnection();
    return Status::Internal("expected hello-ack, got frame type " +
                            std::to_string(static_cast<int>(response.type)));
  }
  HelloAckMsg ack;
  Status decoded = DecodeHelloAck(response.payload, &ack);
  if (!decoded.ok()) {
    CloseConnection();
    return decoded;
  }
  server_version_ = ack.server_version;
  server_synced_ = ack.server_version == mirror_.version() &&
                   ack.server_fingerprint == mirror_.Fingerprint();
  return Status::Ok();
}

Status ReplicaClient::SyncFully() {
  RLCUT_RETURN_IF_ERROR(EnsureConnected());
  if (server_synced_) return Status::Ok();
  Frame request;
  request.type = FrameType::kSnapshot;
  request.payload = EncodePlanSnapshot(mirror_.Snapshot());
  Frame response;
  RLCUT_RETURN_IF_ERROR(RoundTrip(request, &response));
  if (response.type == FrameType::kNack) {
    NackMsg nack;
    if (DecodeNack(response.payload, &nack).ok()) {
      CloseConnection();
      return Status::Internal("server rejected snapshot: " + nack.reason);
    }
  }
  if (response.type != FrameType::kAck) {
    CloseConnection();
    return Status::Internal("expected ack for snapshot, got frame type " +
                            std::to_string(static_cast<int>(response.type)));
  }
  AckMsg ack;
  Status decoded = DecodeAck(response.payload, &ack);
  if (!decoded.ok()) {
    CloseConnection();
    return decoded;
  }
  if (ack.version != mirror_.version() ||
      ack.fingerprint != mirror_.Fingerprint()) {
    CloseConnection();
    return Status::Internal(
        "server state diverged after snapshot install (version " +
        std::to_string(ack.version) + " vs " +
        std::to_string(mirror_.version()) + ")");
  }
  server_version_ = ack.version;
  server_synced_ = true;
  ++resyncs_;
  obs::DefaultRegistry().GetCounter("net.client.resyncs")->Increment();
  return Status::Ok();
}

Status ReplicaClient::Begin(const PlanSnapshot& snapshot) {
  RLCUT_RETURN_IF_ERROR(mirror_.InstallSnapshot(snapshot));
  server_synced_ = false;
  const Status synced = SyncFully();
  if (!synced.ok()) {
    // Start degraded: the trainer proceeds against the mirror and the
    // link heals on a later push or at Flush().
    EnterDegraded(synced);
  }
  return Status::Ok();
}

Status ReplicaClient::PushDelta(const PlanDelta& delta) {
  // The mirror is authoritative for what the server must end up with;
  // a delta the mirror rejects is a caller bug, not a network fault.
  RLCUT_RETURN_IF_ERROR(mirror_.Apply(delta));
  server_synced_ = false;
  obs::DefaultRegistry().GetCounter("net.client.pushes")->Increment();

  if (degraded_.load(std::memory_order_relaxed)) {
    // One cheap heal attempt per push; stay degraded on failure.
    if (SyncFully().ok()) {
      degraded_.store(false, std::memory_order_relaxed);
      obs::DefaultRegistry().GetGauge("net.client.degraded")->Set(0);
    } else {
      CloseConnection();
      obs::DefaultRegistry()
          .GetCounter("net.client.push_degraded")
          ->Increment();
    }
    return Status::Ok();
  }

  Status shipped = [&]() -> Status {
    RLCUT_RETURN_IF_ERROR(EnsureConnected());
    if (server_version_ != delta.base_version) {
      // Version gap (server restarted or lagged): snapshot resync.
      return SyncFully();
    }
    Frame request;
    request.type = FrameType::kDelta;
    request.payload = EncodePlanDelta(delta);
    Frame response;
    RLCUT_RETURN_IF_ERROR(RoundTrip(request, &response));
    if (response.type == FrameType::kNack) {
      // The server's version disagrees with what it told us — resync.
      return SyncFully();
    }
    if (response.type != FrameType::kAck) {
      CloseConnection();
      return Status::Internal("expected ack for delta, got frame type " +
                              std::to_string(
                                  static_cast<int>(response.type)));
    }
    AckMsg ack;
    RLCUT_RETURN_IF_ERROR(DecodeAck(response.payload, &ack));
    if (ack.version != mirror_.version() ||
        ack.fingerprint != mirror_.Fingerprint()) {
      // Silent divergence caught by the fingerprint: resync.
      server_synced_ = false;
      return SyncFully();
    }
    server_version_ = ack.version;
    server_synced_ = true;
    return Status::Ok();
  }();
  if (!shipped.ok()) {
    EnterDegraded(shipped);
    return Status::Ok();
  }

  if (options_.heartbeat_every_pushes > 0 &&
      ++pushes_since_heartbeat_ >=
          static_cast<uint64_t>(options_.heartbeat_every_pushes)) {
    pushes_since_heartbeat_ = 0;
    obs::DefaultRegistry().GetCounter("net.client.heartbeats")->Increment();
    Frame ping;
    ping.type = FrameType::kPing;
    Frame pong;
    Status alive = RoundTrip(ping, &pong);
    if (alive.ok() && pong.type != FrameType::kPong) {
      alive = Status::Internal("expected pong, got frame type " +
                               std::to_string(
                                   static_cast<int>(pong.type)));
    }
    if (!alive.ok()) EnterDegraded(alive);
  }
  return Status::Ok();
}

Status ReplicaClient::Flush() {
  const Status flushed = RetryCall(
      options_.retry, ++op_id_, "net.client.flush",
      [&]() -> Status {
        const Status synced = SyncFully();
        if (!synced.ok()) {
          // Force a fresh dial on the next attempt.
          CloseConnection();
        }
        return synced;
      });
  if (flushed.ok()) {
    degraded_.store(false, std::memory_order_relaxed);
    obs::DefaultRegistry().GetGauge("net.client.degraded")->Set(0);
  } else {
    EnterDegraded(flushed);
  }
  return flushed;
}

bool ReplicaClient::degraded() const {
  return degraded_.load(std::memory_order_relaxed);
}

bool ReplicaClient::ever_degraded() const {
  return ever_degraded_.load(std::memory_order_relaxed);
}

uint64_t ReplicaClient::mirror_version() const { return mirror_.version(); }

uint64_t ReplicaClient::mirror_fingerprint() const {
  return mirror_.Fingerprint();
}

}  // namespace net
}  // namespace rlcut
