#include "net/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/byte_io.h"
#include "common/timer.h"
#include "fault/fault.h"

namespace rlcut {
namespace net {
namespace {

constexpr char kFrameMagic[4] = {'R', 'L', 'N', 'F'};
constexpr size_t kFrameHeaderBytes = 4 + 1 + 4;
constexpr size_t kFrameChecksumBytes = 8;

uint64_t FrameChecksum(FrameType type, const std::string& payload) {
  std::string checked;
  checked.reserve(1 + payload.size());
  checked.push_back(static_cast<char>(type));
  checked.append(payload);
  return Fnv1a64(checked);
}

Status ErrnoStatus(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

}  // namespace

std::string EncodeFrame(const Frame& frame) {
  std::string bytes;
  bytes.append(kFrameMagic, sizeof(kFrameMagic));
  bytes.push_back(static_cast<char>(frame.type));
  const uint32_t size = static_cast<uint32_t>(frame.payload.size());
  bytes.append(reinterpret_cast<const char*>(&size), sizeof(size));
  bytes.append(frame.payload);
  const uint64_t checksum = FrameChecksum(frame.type, frame.payload);
  bytes.append(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  return bytes;
}

Result<bool> FrameDecoder::Next(Frame* out) {
  if (corrupt_) {
    return Status::InvalidArgument(
        "frame stream already corrupt; reconnect");
  }
  if (buffer_.size() < kFrameHeaderBytes) return false;
  if (std::memcmp(buffer_.data(), kFrameMagic, sizeof(kFrameMagic)) != 0) {
    corrupt_ = true;
    return Status::InvalidArgument("frame stream lost sync: bad magic");
  }
  const uint8_t type_byte = static_cast<uint8_t>(buffer_[4]);
  uint32_t payload_size = 0;
  std::memcpy(&payload_size, buffer_.data() + 5, sizeof(payload_size));
  if (payload_size > kMaxFramePayload) {
    corrupt_ = true;
    return Status::InvalidArgument("frame declares " +
                                   std::to_string(payload_size) +
                                   " payload bytes, over the frame cap");
  }
  const size_t total =
      kFrameHeaderBytes + payload_size + kFrameChecksumBytes;
  if (buffer_.size() < total) return false;
  Frame frame;
  frame.type = static_cast<FrameType>(type_byte);
  frame.payload.assign(buffer_, kFrameHeaderBytes, payload_size);
  uint64_t checksum = 0;
  std::memcpy(&checksum, buffer_.data() + kFrameHeaderBytes + payload_size,
              sizeof(checksum));
  if (checksum != FrameChecksum(frame.type, frame.payload)) {
    corrupt_ = true;
    return Status::InvalidArgument("frame checksum mismatch");
  }
  buffer_.erase(0, total);
  *out = std::move(frame);
  return true;
}

Status SendFrame(Transport* transport, const Frame& frame) {
  std::string bytes = EncodeFrame(frame);
  int64_t amount = 0;
  if (fault::ShouldFire("net.frame_corrupt", &amount)) {
    // Flip one byte in flight; the receiver's checksum — not the
    // injector — decides what happens next. `amount` picks the byte.
    const size_t pos = amount > 0
                           ? static_cast<size_t>(amount) % bytes.size()
                           : bytes.size() - 1;
    bytes[pos] = static_cast<char>(bytes[pos] ^ 0x40);
  }
  return transport->Send(bytes);
}

Status RecvFrame(Transport* transport, FrameDecoder* decoder,
                 int timeout_ms, Frame* out) {
  WallTimer timer;
  for (;;) {
    Result<bool> ready = decoder->Next(out);
    if (!ready.ok()) return ready.status();
    if (ready.value()) return Status::Ok();
    const int elapsed_ms = static_cast<int>(timer.ElapsedMillis());
    if (elapsed_ms >= timeout_ms) {
      return Status::IoError("timed out waiting for a frame after " +
                             std::to_string(timeout_ms) + " ms");
    }
    Result<std::string> chunk = transport->Recv(timeout_ms - elapsed_ms);
    if (!chunk.ok()) return chunk.status();
    decoder->Feed(chunk.value());
  }
}

// ---------------------------------------------------------------------------
// FlakyPipe

struct FlakyPipe::Shared {
  std::mutex mu;
  std::condition_variable cv;
  // inbox[i] holds bytes readable by side i.
  std::string inbox[2];
  bool closed[2] = {false, false};
};

FlakyPipe::FlakyPipe(std::shared_ptr<Shared> shared, int side)
    : shared_(std::move(shared)), side_(side) {}

FlakyPipe::~FlakyPipe() { Close(); }

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
FlakyPipe::CreatePair() {
  auto shared = std::make_shared<Shared>();
  std::unique_ptr<Transport> a(new FlakyPipe(shared, 0));
  std::unique_ptr<Transport> b(new FlakyPipe(shared, 1));
  return {std::move(a), std::move(b)};
}

Status FlakyPipe::Send(const std::string& bytes) {
  if (fault::ShouldFire("net.send_fail")) {
    return Status::IoError("injected send failure");
  }
  std::unique_lock<std::mutex> lock(shared_->mu);
  if (fault::ShouldFire("net.disconnect")) {
    shared_->closed[0] = shared_->closed[1] = true;
    shared_->cv.notify_all();
    return Status::IoError("injected disconnect");
  }
  if (shared_->closed[side_] || shared_->closed[1 - side_]) {
    return Status::IoError("pipe closed");
  }
  shared_->inbox[1 - side_].append(bytes);
  shared_->cv.notify_all();
  return Status::Ok();
}

Result<std::string> FlakyPipe::Recv(int timeout_ms) {
  if (fault::ShouldFire("net.recv_timeout")) {
    return std::string();
  }
  std::unique_lock<std::mutex> lock(shared_->mu);
  if (fault::ShouldFire("net.disconnect")) {
    shared_->closed[0] = shared_->closed[1] = true;
    shared_->cv.notify_all();
    return Status::IoError("injected disconnect");
  }
  std::string& inbox = shared_->inbox[side_];
  shared_->cv.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&] {
    return !inbox.empty() || shared_->closed[side_] ||
           shared_->closed[1 - side_];
  });
  if (!inbox.empty()) {
    std::string chunk = std::move(inbox);
    inbox.clear();
    return chunk;
  }
  if (shared_->closed[side_]) return Status::IoError("pipe closed");
  if (shared_->closed[1 - side_]) {
    return Status::IoError("pipe peer closed (EOF)");
  }
  return std::string();  // Timeout with the pipe still healthy.
}

void FlakyPipe::Close() {
  std::unique_lock<std::mutex> lock(shared_->mu);
  shared_->closed[side_] = true;
  shared_->cv.notify_all();
}

bool FlakyPipe::closed() const {
  std::unique_lock<std::mutex> lock(shared_->mu);
  return shared_->closed[side_] || shared_->closed[1 - side_];
}

// ---------------------------------------------------------------------------
// TCP

namespace {

/// A connected TCP socket; loopback or LAN. Fault sites fire on the
/// same operations as FlakyPipe so the chaos schedules mean the same
/// thing on both transports.
class TcpTransport : public Transport {
 public:
  explicit TcpTransport(int fd) : fd_(fd) {}

  ~TcpTransport() override { Close(); }

  Status Send(const std::string& bytes) override {
    if (fault::ShouldFire("net.send_fail")) {
      return Status::IoError("injected send failure");
    }
    if (fault::ShouldFire("net.disconnect")) {
      Close();
      return Status::IoError("injected disconnect");
    }
    if (closed_.load(std::memory_order_acquire)) {
      return Status::IoError("socket closed");
    }
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent,
                               bytes.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("send");
      }
      sent += static_cast<size_t>(n);
    }
    return Status::Ok();
  }

  Result<std::string> Recv(int timeout_ms) override {
    if (fault::ShouldFire("net.recv_timeout")) {
      return std::string();
    }
    if (fault::ShouldFire("net.disconnect")) {
      Close();
      return Status::IoError("injected disconnect");
    }
    if (closed_.load(std::memory_order_acquire)) {
      return Status::IoError("socket closed");
    }
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) return std::string();
      return ErrnoStatus("poll");
    }
    if (ready == 0) return std::string();  // Timeout, socket healthy.
    char buffer[64 * 1024];
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR) return std::string();
      return ErrnoStatus("recv");
    }
    if (n == 0) return Status::IoError("connection closed by peer (EOF)");
    return std::string(buffer, static_cast<size_t>(n));
  }

  void Close() override {
    bool expected = false;
    if (closed_.compare_exchange_strong(expected, true)) {
      ::shutdown(fd_, SHUT_RDWR);
      ::close(fd_);
    }
  }

  bool closed() const override {
    return closed_.load(std::memory_order_acquire);
  }

 private:
  int fd_ = -1;
  std::atomic<bool> closed_{false};
};

}  // namespace

Status ParseEndpoint(const std::string& endpoint, std::string* host,
                     int* port) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == endpoint.size()) {
    return Status::InvalidArgument("endpoint must be host:port, got '" +
                                   endpoint + "'");
  }
  *host = endpoint.substr(0, colon);
  const std::string port_str = endpoint.substr(colon + 1);
  char* end = nullptr;
  const long value = std::strtol(port_str.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || value < 1 || value > 65535) {
    return Status::InvalidArgument("bad port in endpoint '" + endpoint +
                                   "'");
  }
  *port = static_cast<int>(value);
  return Status::Ok();
}

TcpListener::~TcpListener() { Close(); }

Result<std::unique_ptr<TcpListener>> TcpListener::Listen(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Status status = ErrnoStatus("bind 127.0.0.1:" +
                                      std::to_string(port));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 16) != 0) {
    const Status status = ErrnoStatus("listen");
    ::close(fd);
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr),
                    &addr_len) != 0) {
    const Status status = ErrnoStatus("getsockname");
    ::close(fd);
    return status;
  }
  const int bound_port = ntohs(addr.sin_port);
  return std::unique_ptr<TcpListener>(new TcpListener(fd, bound_port));
}

Result<std::unique_ptr<Transport>> TcpListener::Accept(int timeout_ms) {
  if (fd_ < 0) return Status::IoError("listener closed");
  struct pollfd pfd;
  pfd.fd = fd_;
  pfd.events = POLLIN;
  pfd.revents = 0;
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) {
    // A signal (e.g. the daemon's own SIGTERM handler) interrupting the
    // wait is a timeout, not a listener failure.
    if (errno == EINTR) {
      return Status::IoError("timed out waiting for a connection (EINTR)");
    }
    return ErrnoStatus("poll");
  }
  if (ready == 0) {
    return Status::IoError("timed out waiting for a connection after " +
                           std::to_string(timeout_ms) + " ms");
  }
  const int conn = ::accept(fd_, nullptr, nullptr);
  if (conn < 0) return ErrnoStatus("accept");
  const int one = 1;
  ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<Transport>(new TcpTransport(conn));
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::unique_ptr<Transport>> DialTcp(const std::string& endpoint,
                                           int timeout_ms) {
  if (fault::ShouldFire("net.connect_fail")) {
    return Status::IoError("injected connect failure dialing " + endpoint);
  }
  std::string host;
  int port = 0;
  RLCUT_RETURN_IF_ERROR(ParseEndpoint(endpoint, &host, &port));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("endpoint host must be a numeric IPv4 "
                                   "address, got '" +
                                   host + "'");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  // Non-blocking connect so the dial honors `timeout_ms` instead of the
  // kernel's (much longer) default SYN timeout.
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const Status status = ErrnoStatus("connect " + endpoint);
    ::close(fd);
    return status;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<Transport>(new TcpTransport(fd));
}

}  // namespace net
}  // namespace rlcut
