#ifndef RLCUT_GRAPH_DATASETS_H_
#define RLCUT_GRAPH_DATASETS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace rlcut {

/// Named stand-ins for the paper's five real-world graphs (Table II).
/// Each preset reproduces the original's |V|:|E| ratio and degree skew at
/// 1/scale of the original size (see DESIGN.md, substitutions).
enum class Dataset {
  kLiveJournal,  // LJ: 4.85M vertices, 69.0M edges, social, moderate skew
  kOrkut,        // OT: 3.07M vertices, 117.2M edges, social, dense
  kUk2005,       // UK: 39.5M vertices, 936.4M edges, web, high skew
  kIt2004,       // IT: 41.3M vertices, 1150.7M edges, web, high skew
  kTwitter,      // TW: 41.7M vertices, 1468.4M edges, social, extreme skew
};

/// All five presets in the paper's Table II order.
std::vector<Dataset> AllDatasets();

/// Paper notation ("LJ", "OT", "UK", "IT", "TW").
std::string DatasetName(Dataset dataset);

/// Parses the paper notation; case-insensitive. Also accepts long names
/// ("livejournal", "orkut", "uk-2005", "it-2004", "twitter").
Result<Dataset> ParseDataset(const std::string& name);

/// Original sizes from Table II.
struct DatasetShape {
  uint64_t num_vertices;
  uint64_t num_edges;
  /// Power-law exponent used to match the original degree skew.
  double skew_exponent;
  /// True for web graphs (R-MAT community structure), false for social
  /// (Chung-Lu popularity model).
  bool web_like;
};

DatasetShape GetDatasetShape(Dataset dataset);

/// Instantiates the preset at 1/scale of the original size (scale >= 1).
/// scale=1000 yields, e.g., LJ with ~4.8k vertices and ~69k edges.
Graph LoadDataset(Dataset dataset, uint64_t scale = 1000, uint64_t seed = 42);

}  // namespace rlcut

#endif  // RLCUT_GRAPH_DATASETS_H_
