#ifndef RLCUT_GRAPH_TYPES_H_
#define RLCUT_GRAPH_TYPES_H_

#include <cstdint>

namespace rlcut {

/// Vertex identifier. Scaled-down reproductions stay far below 2^32
/// vertices; 32 bits halves CSR memory vs 64.
using VertexId = uint32_t;

/// Directed-edge identifier: index into the out-edge CSR of a Graph.
using EdgeId = uint64_t;

/// Data-center (partition) identifier. The paper partitions over M <= 8
/// DCs; we support up to kMaxDataCenters via 64-bit replica bitmasks.
using DcId = int32_t;

/// Upper bound on the number of data centers, imposed by the 64-bit
/// replica bitmask in PartitionState.
inline constexpr int kMaxDataCenters = 64;

/// Sentinel for "no data center assigned".
inline constexpr DcId kNoDc = -1;

/// A directed edge (src -> dst).
struct Edge {
  VertexId src;
  VertexId dst;

  friend bool operator==(const Edge&, const Edge&) = default;
};

}  // namespace rlcut

#endif  // RLCUT_GRAPH_TYPES_H_
