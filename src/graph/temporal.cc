#include "graph/temporal.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/random.h"

namespace rlcut {

TemporalGraph::TemporalGraph(VertexId num_vertices,
                             std::vector<TimedEdge> edges)
    : num_vertices_(num_vertices), edges_(std::move(edges)) {
  for (size_t i = 1; i < edges_.size(); ++i) {
    RLCUT_CHECK_GE(edges_[i].time.micros(), edges_[i - 1].time.micros())
        << "temporal edges must be sorted by timestamp";
  }
}

uint64_t TemporalGraph::CountBefore(SimTime t) const {
  auto it = std::lower_bound(
      edges_.begin(), edges_.end(), t,
      [](const TimedEdge& e, SimTime ts) { return e.time < ts; });
  return static_cast<uint64_t>(it - edges_.begin());
}

Graph TemporalGraph::SnapshotBefore(SimTime t) const {
  return Prefix(CountBefore(t));
}

Graph TemporalGraph::Prefix(uint64_t count) const {
  RLCUT_CHECK_LE(count, edges_.size());
  GraphBuilder builder(num_vertices_);
  for (uint64_t i = 0; i < count; ++i) builder.AddEdge(edges_[i].edge);
  return std::move(builder).Build();
}

std::vector<Edge> TemporalGraph::EdgesInWindow(SimTime t0, SimTime t1) const {
  std::vector<Edge> out;
  const uint64_t begin = CountBefore(t0);
  const uint64_t end = CountBefore(t1);
  out.reserve(end - begin);
  for (uint64_t i = begin; i < end; ++i) out.push_back(edges_[i].edge);
  return out;
}

std::vector<uint64_t> TemporalGraph::WindowCounts(SimTime horizon,
                                                  SimTime window) const {
  RLCUT_CHECK_GT(window.micros(), 0);
  const size_t num_windows = static_cast<size_t>(
      (horizon.micros() + window.micros() - 1) / window.micros());
  std::vector<uint64_t> counts(num_windows, 0);
  for (const TimedEdge& e : edges_) {
    if (e.time >= horizon) break;
    const size_t w = static_cast<size_t>(e.time.micros() / window.micros());
    ++counts[w];
  }
  return counts;
}

TemporalGraph GenerateDiurnalStream(const TemporalStreamOptions& options) {
  RLCUT_CHECK_GT(options.peak_to_trough, 1.0);
  Rng rng(options.seed);

  // Rate envelope r(t) = 1 + A*cos(2*pi*(h - peak)/24) scaled so that
  // max/min = peak_to_trough.
  const double ratio = options.peak_to_trough;
  const double amplitude = (ratio - 1.0) / (ratio + 1.0);
  auto rate = [&](double t) {
    const double hour = std::fmod(t / 3600.0, 24.0);
    return 1.0 +
           amplitude * std::cos(2 * M_PI * (hour - options.peak_hour) / 24.0);
  };

  // Sample timestamps by thinning against the max rate, then sort.
  std::vector<double> stamps;
  stamps.reserve(options.num_edges);
  const double max_rate = 1.0 + amplitude;
  while (stamps.size() < options.num_edges) {
    const double t = rng.UniformDouble() * options.horizon_seconds;
    if (rng.UniformDouble() * max_rate <= rate(t)) stamps.push_back(t);
  }
  std::sort(stamps.begin(), stamps.end());

  std::vector<TimedEdge> edges;
  edges.reserve(options.num_edges);
  for (double t : stamps) {
    const VertexId dst = static_cast<VertexId>(
        rng.Zipf(options.num_vertices, options.skew_exponent));
    const VertexId src =
        static_cast<VertexId>(rng.UniformInt(options.num_vertices));
    edges.push_back({{src, dst}, t});
  }
  return TemporalGraph(options.num_vertices, std::move(edges));
}

GraphSplit SplitEdges(const Graph& graph, double initial_fraction,
                      uint64_t seed) {
  RLCUT_CHECK_GE(initial_fraction, 0.0);
  RLCUT_CHECK_LE(initial_fraction, 1.0);
  std::vector<Edge> edges;
  edges.reserve(graph.num_edges());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    edges.push_back(graph.GetEdge(e));
  }
  Rng rng(seed);
  rng.Shuffle(edges);
  const uint64_t cut =
      static_cast<uint64_t>(initial_fraction * static_cast<double>(edges.size()));
  GraphSplit split;
  split.initial_edges.assign(edges.begin(), edges.begin() + cut);
  split.remaining_edges.assign(edges.begin() + cut, edges.end());
  return split;
}

}  // namespace rlcut
