#ifndef RLCUT_GRAPH_GEO_H_
#define RLCUT_GRAPH_GEO_H_

#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace rlcut {

/// Assigns each vertex an initial data-center location L_v, standing in
/// for the real user geo-locations of Section II (Fig. 1).
///
/// Model: regions have a popularity distribution (how many users live
/// there) and edges exhibit homophily (a follower is more likely to be in
/// the follower's own region than global popularity alone would predict).
/// homophily=0 places neighbors independently; 1 forces same-region.
struct GeoLocatorOptions {
  int num_dcs = 8;
  /// Relative region populations; empty = the default 8-region profile
  /// (USA East/West, Europe, Asia, ... with realistic imbalance).
  std::vector<double> region_popularity;
  /// Probability mass moved toward "same region as a random in-neighbor".
  double homophily = 0.3;
  uint64_t seed = 7;
};

/// Per-vertex initial locations L_v. The graph is consulted for
/// homophily; with homophily=0 it is ignored.
std::vector<DcId> AssignGeoLocations(const Graph& graph,
                                     const GeoLocatorOptions& options);

/// Per-vertex input data sizes d_v (bytes). Sizes grow with degree (a
/// vertex's adjacency plus per-edge payload dominates its stored
/// footprint): d_v = base_bytes + bytes_per_edge * degree(v). Defaults
/// are KB-scale so that input movement cost (Eq. 4) is a first-class
/// term next to runtime transfer cost, as in the paper's setting.
std::vector<double> AssignInputSizes(const Graph& graph,
                                     double base_bytes = 16384.0,
                                     double bytes_per_edge = 1024.0);

/// Counts edges whose endpoints' locations differ; Fig. 1's ">75%
/// inter-DC edges" observation.
struct GeoEdgeStats {
  uint64_t intra_dc_edges = 0;
  uint64_t inter_dc_edges = 0;
  /// counts[i][j] = edges from a vertex in DC i to a vertex in DC j.
  std::vector<std::vector<uint64_t>> counts;

  double InterDcFraction() const {
    const uint64_t total = intra_dc_edges + inter_dc_edges;
    return total == 0 ? 0.0
                      : static_cast<double>(inter_dc_edges) /
                            static_cast<double>(total);
  }
};

GeoEdgeStats ComputeGeoEdgeStats(const Graph& graph,
                                 const std::vector<DcId>& locations,
                                 int num_dcs);

}  // namespace rlcut

#endif  // RLCUT_GRAPH_GEO_H_
