#include "graph/datasets.h"

#include <algorithm>
#include <cctype>

#include "common/logging.h"
#include "graph/generators.h"

namespace rlcut {

std::vector<Dataset> AllDatasets() {
  return {Dataset::kLiveJournal, Dataset::kOrkut, Dataset::kUk2005,
          Dataset::kIt2004, Dataset::kTwitter};
}

std::string DatasetName(Dataset dataset) {
  switch (dataset) {
    case Dataset::kLiveJournal:
      return "LJ";
    case Dataset::kOrkut:
      return "OT";
    case Dataset::kUk2005:
      return "UK";
    case Dataset::kIt2004:
      return "IT";
    case Dataset::kTwitter:
      return "TW";
  }
  return "?";
}

Result<Dataset> ParseDataset(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "lj" || lower == "livejournal") return Dataset::kLiveJournal;
  if (lower == "ot" || lower == "orkut") return Dataset::kOrkut;
  if (lower == "uk" || lower == "uk-2005") return Dataset::kUk2005;
  if (lower == "it" || lower == "it-2004") return Dataset::kIt2004;
  if (lower == "tw" || lower == "twitter") return Dataset::kTwitter;
  return Status::InvalidArgument("unknown dataset: " + name);
}

DatasetShape GetDatasetShape(Dataset dataset) {
  // |V| and |E| are Table II values. Skew exponents approximate published
  // degree-distribution fits: social networks ~2.0-2.3, web graphs ~1.9
  // with stronger hubs, Twitter the most skewed.
  switch (dataset) {
    case Dataset::kLiveJournal:
      return {4847571, 68993773, 2.25, /*web_like=*/false};
    case Dataset::kOrkut:
      return {3072441, 117185083, 2.30, /*web_like=*/false};
    case Dataset::kUk2005:
      return {39454746, 936364282, 1.95, /*web_like=*/true};
    case Dataset::kIt2004:
      return {41290682, 1150725436, 1.92, /*web_like=*/true};
    case Dataset::kTwitter:
      return {41652230, 1468365182, 1.80, /*web_like=*/false};
  }
  RLCUT_CHECK(false) << "unhandled dataset";
  return {};
}

Graph LoadDataset(Dataset dataset, uint64_t scale, uint64_t seed) {
  RLCUT_CHECK_GE(scale, 1u);
  const DatasetShape shape = GetDatasetShape(dataset);
  const uint64_t n64 = std::max<uint64_t>(64, shape.num_vertices / scale);
  const uint64_t m = std::max<uint64_t>(256, shape.num_edges / scale);
  const VertexId n = static_cast<VertexId>(n64);

  if (shape.web_like) {
    RmatOptions opt;
    opt.num_vertices = n;
    opt.num_edges = m;
    // Stronger diagonal (a) concentration for web-graph-like hub pages.
    opt.a = 0.60;
    opt.b = 0.18;
    opt.c = 0.18;
    opt.seed = seed + static_cast<uint64_t>(dataset);
    return GenerateRmat(opt);
  }
  PowerLawOptions opt;
  opt.num_vertices = n;
  opt.num_edges = m;
  opt.exponent = shape.skew_exponent;
  opt.seed = seed + static_cast<uint64_t>(dataset);
  return GeneratePowerLaw(opt);
}

}  // namespace rlcut
