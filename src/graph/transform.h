#ifndef RLCUT_GRAPH_TRANSFORM_H_
#define RLCUT_GRAPH_TRANSFORM_H_

#include "graph/graph.h"

namespace rlcut {

/// Returns the graph with every edge mirrored (u->v plus v->u),
/// de-duplicated and with self-loops dropped. Pull-based propagation
/// algorithms that need undirected semantics (connected components) run
/// on the symmetrized graph.
Graph Symmetrize(const Graph& graph);

/// Returns the transpose (every edge reversed).
Graph Transpose(const Graph& graph);

/// Returns the subgraph keeping only the first `num_edges` edges in
/// EdgeId order (vertex set unchanged).
Graph EdgePrefixSubgraph(const Graph& graph, uint64_t num_edges);

}  // namespace rlcut

#endif  // RLCUT_GRAPH_TRANSFORM_H_
