#ifndef RLCUT_GRAPH_TRANSFORM_H_
#define RLCUT_GRAPH_TRANSFORM_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace rlcut {

/// Returns the graph with every edge mirrored (u->v plus v->u),
/// de-duplicated and with self-loops dropped. Pull-based propagation
/// algorithms that need undirected semantics (connected components) run
/// on the symmetrized graph.
Graph Symmetrize(const Graph& graph);

/// Returns the transpose (every edge reversed).
Graph Transpose(const Graph& graph);

/// Returns the subgraph keeping only the first `num_edges` edges in
/// EdgeId order (vertex set unchanged).
Graph EdgePrefixSubgraph(const Graph& graph, uint64_t num_edges);

/// A vertex renumbering held in both directions: new_of_old[old] is the
/// new id of original vertex `old`, old_of_new its inverse. Training
/// runs on renumbered ids for locality; every published artifact (plan
/// masters, per-edge placements) is mapped back through old_of_new so
/// plans are always in original ids.
struct VertexPermutation {
  std::vector<VertexId> new_of_old;
  std::vector<VertexId> old_of_new;

  VertexId size() const { return static_cast<VertexId>(new_of_old.size()); }
};

/// Which locality order to renumber a graph into before training.
enum class VertexOrderKind {
  kNatural,   // keep ids as loaded / generated
  kDegree,    // total-degree descending: hubs share the leading rows
  kLocality,  // BFS from hub seeds: neighborhoods get contiguous ids
};

/// Parses "natural" | "degree" | "locality" (as spelled in --vertex_order).
Result<VertexOrderKind> ParseVertexOrderKind(const std::string& name);
const char* VertexOrderKindName(VertexOrderKind kind);

/// The identity permutation on n vertices.
VertexPermutation IdentityOrder(VertexId n);

/// Orders vertices by total degree (out + in) descending, original id
/// ascending as the tie-break. On skewed graphs the hot hub rows of the
/// partition-state count arrays then share the first cache lines.
VertexPermutation DegreeDescendingOrder(const Graph& graph);

/// Hub-seeded BFS order over the union adjacency (out + in neighbors):
/// unvisited vertices are seeded in degree-descending order, each BFS
/// assigns contiguous new ids in visit order, so tightly connected
/// neighborhoods land on adjacent CSR pages. Deterministic.
VertexPermutation LocalityOrder(const Graph& graph);

/// Builds the permutation for `kind` (identity for kNatural).
VertexPermutation BuildVertexOrder(const Graph& graph, VertexOrderKind kind);

/// Validates that `new_of_old` is a bijection on [0, n) and returns it
/// with the inverse filled in.
Result<VertexPermutation> PermutationFromNewOfOld(
    std::vector<VertexId> new_of_old);

/// Returns the graph relabeled so original vertex v becomes
/// perm.new_of_old[v]. Edge ids are renumbered by the rebuilt CSR
/// (sorted by new source id, original adjacency order within a source —
/// deterministic). If `old_edge_of_new` is non-null it receives, for
/// each new EdgeId, the EdgeId the edge had in `graph`; per-edge
/// artifacts computed on the reordered graph map back through it.
Graph ReorderVertices(const Graph& graph, const VertexPermutation& perm,
                      std::vector<EdgeId>* old_edge_of_new = nullptr);

/// Reorders a per-vertex attribute array: result[new] = values[old].
template <typename T>
std::vector<T> PermuteVertexValues(const std::vector<T>& values,
                                   const VertexPermutation& perm) {
  std::vector<T> out(values.size());
  for (VertexId old_id = 0; old_id < perm.size(); ++old_id) {
    out[perm.new_of_old[old_id]] = values[old_id];
  }
  return out;
}

/// Maps a per-vertex attribute array computed on the reordered graph
/// back to original ids: result[old] = values[new].
template <typename T>
std::vector<T> UnpermuteVertexValues(const std::vector<T>& values,
                                     const VertexPermutation& perm) {
  std::vector<T> out(values.size());
  for (VertexId old_id = 0; old_id < perm.size(); ++old_id) {
    out[old_id] = values[perm.new_of_old[old_id]];
  }
  return out;
}

}  // namespace rlcut

#endif  // RLCUT_GRAPH_TRANSFORM_H_
