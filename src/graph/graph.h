#ifndef RLCUT_GRAPH_GRAPH_H_
#define RLCUT_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/types.h"

namespace rlcut {

/// Immutable directed graph in dual-CSR form (both out- and in-adjacency).
///
/// Every directed edge has a stable EdgeId equal to its position in the
/// out-edge CSR; the in-adjacency carries the same EdgeIds so partition
/// state (which places *edges* onto data centers) can be updated from
/// either endpoint. Build via GraphBuilder.
class Graph {
 public:
  Graph() = default;

  // Copyable (tests clone small graphs) and movable.
  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  VertexId num_vertices() const {
    return static_cast<VertexId>(out_offsets_.empty()
                                     ? 0
                                     : out_offsets_.size() - 1);
  }
  uint64_t num_edges() const { return out_targets_.size(); }

  uint32_t OutDegree(VertexId v) const {
    return static_cast<uint32_t>(out_offsets_[v + 1] - out_offsets_[v]);
  }
  uint32_t InDegree(VertexId v) const {
    return static_cast<uint32_t>(in_offsets_[v + 1] - in_offsets_[v]);
  }
  uint32_t Degree(VertexId v) const { return OutDegree(v) + InDegree(v); }

  /// Targets of v's out-edges.
  std::span<const VertexId> OutNeighbors(VertexId v) const {
    return {out_targets_.data() + out_offsets_[v],
            out_targets_.data() + out_offsets_[v + 1]};
  }

  /// Sources of v's in-edges.
  std::span<const VertexId> InNeighbors(VertexId v) const {
    return {in_sources_.data() + in_offsets_[v],
            in_sources_.data() + in_offsets_[v + 1]};
  }

  /// EdgeIds of v's out-edges: the k-th out-edge of v has EdgeId
  /// OutEdgeBegin(v) + k and target OutNeighbors(v)[k].
  EdgeId OutEdgeBegin(VertexId v) const { return out_offsets_[v]; }
  EdgeId OutEdgeEnd(VertexId v) const { return out_offsets_[v + 1]; }

  /// EdgeIds of v's in-edges, parallel to InNeighbors(v).
  std::span<const EdgeId> InEdgeIds(VertexId v) const {
    return {in_edge_ids_.data() + in_offsets_[v],
            in_edge_ids_.data() + in_offsets_[v + 1]};
  }

  /// Endpoints of edge `e`.
  VertexId EdgeSource(EdgeId e) const { return edge_sources_[e]; }
  VertexId EdgeTarget(EdgeId e) const { return out_targets_[e]; }

  /// All edges in EdgeId order (src computed from the CSR).
  Edge GetEdge(EdgeId e) const { return {EdgeSource(e), EdgeTarget(e)}; }

  /// Maximum in-degree over all vertices (0 for an empty graph).
  uint32_t MaxInDegree() const;

 private:
  friend class GraphBuilder;

  // CSR over out-edges; EdgeId == index into out_targets_.
  std::vector<uint64_t> out_offsets_;  // |V|+1
  std::vector<VertexId> out_targets_;  // |E|
  // Reverse map EdgeId -> source vertex (kept explicit: O(1) lookups in
  // partition-state updates beat binary-searching out_offsets_).
  std::vector<VertexId> edge_sources_;  // |E|

  // CSR over in-edges, mirroring EdgeIds of the out-CSR.
  std::vector<uint64_t> in_offsets_;  // |V|+1
  std::vector<VertexId> in_sources_;  // |E|
  std::vector<EdgeId> in_edge_ids_;   // |E|
};

/// Accumulates edges then builds the dual-CSR Graph.
///
///   GraphBuilder b(num_vertices);
///   b.AddEdge(0, 1);
///   Graph g = std::move(b).Build();
class GraphBuilder {
 public:
  /// `num_vertices` fixes the vertex id space [0, num_vertices).
  explicit GraphBuilder(VertexId num_vertices);

  /// Appends a directed edge; endpoints must be < num_vertices.
  void AddEdge(VertexId src, VertexId dst);
  void AddEdge(const Edge& e) { AddEdge(e.src, e.dst); }

  /// Appends all edges from a list.
  void AddEdges(const std::vector<Edge>& edges);

  uint64_t num_edges() const { return edges_.size(); }
  VertexId num_vertices() const { return num_vertices_; }

  /// Removes exact duplicate (src,dst) pairs and self-loops. Optional:
  /// generators may legitimately produce multigraphs.
  void DeduplicateAndDropSelfLoops();

  /// Builds the graph. Consumes the builder.
  Graph Build() &&;

 private:
  VertexId num_vertices_;
  std::vector<Edge> edges_;
};

}  // namespace rlcut

#endif  // RLCUT_GRAPH_GRAPH_H_
