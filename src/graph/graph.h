#ifndef RLCUT_GRAPH_GRAPH_H_
#define RLCUT_GRAPH_GRAPH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "graph/types.h"

namespace rlcut {

/// Raw dual-CSR arrays describing a graph without owning them. The
/// storage seam between in-memory graphs (arrays owned by Graph's
/// vectors) and memory-mapped ones (arrays living inside an .rlg file
/// mapping, see graph/rlg.h): consumers always go through Graph's
/// accessors and never learn which backing they are reading.
struct CsrView {
  const uint64_t* out_offsets = nullptr;  // num_vertices + 1
  const VertexId* out_targets = nullptr;  // num_edges
  const VertexId* edge_sources = nullptr;  // num_edges
  const uint64_t* in_offsets = nullptr;  // num_vertices + 1
  const VertexId* in_sources = nullptr;  // num_edges
  const EdgeId* in_edge_ids = nullptr;  // num_edges
  VertexId num_vertices = 0;
  uint64_t num_edges = 0;
};

/// Immutable directed graph in dual-CSR form (both out- and in-adjacency).
///
/// Every directed edge has a stable EdgeId equal to its position in the
/// out-edge CSR; the in-adjacency carries the same EdgeIds so partition
/// state (which places *edges* onto data centers) can be updated from
/// either endpoint. Build via GraphBuilder, or wrap externally owned
/// arrays (a memory-mapped .rlg file) with FromView. All accessors read
/// through one CsrView regardless of backing, so the evaluation hot
/// paths are identical for owned and mapped graphs.
class Graph {
 public:
  Graph() = default;

  // Copyable (tests clone small graphs) and movable. The view pointers
  // must be re-bound to the destination's own vectors after every copy
  // or move; mapped graphs share the backing instead.
  Graph(const Graph& other) { *this = other; }
  Graph& operator=(const Graph& other) {
    if (this == &other) return *this;
    out_offsets_ = other.out_offsets_;
    out_targets_ = other.out_targets_;
    edge_sources_ = other.edge_sources_;
    in_offsets_ = other.in_offsets_;
    in_sources_ = other.in_sources_;
    in_edge_ids_ = other.in_edge_ids_;
    backing_ = other.backing_;
    view_ = other.view_;
    if (!out_offsets_.empty()) BindViewToOwned();
    return *this;
  }
  Graph(Graph&& other) noexcept { *this = std::move(other); }
  Graph& operator=(Graph&& other) noexcept {
    if (this == &other) return *this;
    out_offsets_ = std::move(other.out_offsets_);
    out_targets_ = std::move(other.out_targets_);
    edge_sources_ = std::move(other.edge_sources_);
    in_offsets_ = std::move(other.in_offsets_);
    in_sources_ = std::move(other.in_sources_);
    in_edge_ids_ = std::move(other.in_edge_ids_);
    backing_ = std::move(other.backing_);
    view_ = other.view_;
    other.view_ = CsrView{};
    if (!out_offsets_.empty()) BindViewToOwned();
    return *this;
  }

  /// Wraps externally owned CSR arrays as a Graph without copying.
  /// `backing` is held for the Graph's lifetime (and the lifetime of
  /// every copy) to keep the arrays alive — for a mapped .rlg file it
  /// is the mapping handle. The arrays must describe a structurally
  /// valid dual CSR; loaders of untrusted files must validate before
  /// wrapping (see ValidateRlg in graph/rlg.h).
  static Graph FromView(const CsrView& view,
                        std::shared_ptr<const void> backing) {
    Graph g;
    g.view_ = view;
    g.backing_ = std::move(backing);
    return g;
  }

  /// True when the CSR arrays live in external backing (e.g. an mmap)
  /// rather than this Graph's own vectors.
  bool view_backed() const { return backing_ != nullptr; }

  /// The raw arrays (whichever backing they live in).
  const CsrView& view() const { return view_; }

  VertexId num_vertices() const { return view_.num_vertices; }
  uint64_t num_edges() const { return view_.num_edges; }

  uint32_t OutDegree(VertexId v) const {
    return static_cast<uint32_t>(view_.out_offsets[v + 1] -
                                 view_.out_offsets[v]);
  }
  uint32_t InDegree(VertexId v) const {
    return static_cast<uint32_t>(view_.in_offsets[v + 1] -
                                 view_.in_offsets[v]);
  }
  uint32_t Degree(VertexId v) const { return OutDegree(v) + InDegree(v); }

  /// Targets of v's out-edges.
  std::span<const VertexId> OutNeighbors(VertexId v) const {
    return {view_.out_targets + view_.out_offsets[v],
            view_.out_targets + view_.out_offsets[v + 1]};
  }

  /// Sources of v's in-edges.
  std::span<const VertexId> InNeighbors(VertexId v) const {
    return {view_.in_sources + view_.in_offsets[v],
            view_.in_sources + view_.in_offsets[v + 1]};
  }

  /// EdgeIds of v's out-edges: the k-th out-edge of v has EdgeId
  /// OutEdgeBegin(v) + k and target OutNeighbors(v)[k].
  EdgeId OutEdgeBegin(VertexId v) const { return view_.out_offsets[v]; }
  EdgeId OutEdgeEnd(VertexId v) const { return view_.out_offsets[v + 1]; }

  /// EdgeIds of v's in-edges, parallel to InNeighbors(v).
  std::span<const EdgeId> InEdgeIds(VertexId v) const {
    return {view_.in_edge_ids + view_.in_offsets[v],
            view_.in_edge_ids + view_.in_offsets[v + 1]};
  }

  /// Endpoints of edge `e`.
  VertexId EdgeSource(EdgeId e) const { return view_.edge_sources[e]; }
  VertexId EdgeTarget(EdgeId e) const { return view_.out_targets[e]; }

  /// All edges in EdgeId order (src computed from the CSR).
  Edge GetEdge(EdgeId e) const { return {EdgeSource(e), EdgeTarget(e)}; }

  /// Maximum in-degree over all vertices (0 for an empty graph).
  uint32_t MaxInDegree() const;

 private:
  friend class GraphBuilder;

  // Points view_ at this Graph's own vectors.
  void BindViewToOwned() {
    view_.out_offsets = out_offsets_.data();
    view_.out_targets = out_targets_.data();
    view_.edge_sources = edge_sources_.data();
    view_.in_offsets = in_offsets_.data();
    view_.in_sources = in_sources_.data();
    view_.in_edge_ids = in_edge_ids_.data();
    view_.num_vertices = static_cast<VertexId>(
        out_offsets_.empty() ? 0 : out_offsets_.size() - 1);
    view_.num_edges = out_targets_.size();
  }

  // Owned storage for built graphs; all empty when view-backed.
  // CSR over out-edges; EdgeId == index into out_targets_.
  std::vector<uint64_t> out_offsets_;  // |V|+1
  std::vector<VertexId> out_targets_;  // |E|
  // Reverse map EdgeId -> source vertex (kept explicit: O(1) lookups in
  // partition-state updates beat binary-searching out_offsets_).
  std::vector<VertexId> edge_sources_;  // |E|
  // CSR over in-edges, mirroring EdgeIds of the out-CSR.
  std::vector<uint64_t> in_offsets_;  // |V|+1
  std::vector<VertexId> in_sources_;  // |E|
  std::vector<EdgeId> in_edge_ids_;   // |E|

  // Keep-alive handle for view-backed graphs (e.g. the file mapping).
  std::shared_ptr<const void> backing_;

  // The arrays every accessor reads, regardless of backing.
  CsrView view_;
};

/// Accumulates edges then builds the dual-CSR Graph.
///
///   GraphBuilder b(num_vertices);
///   b.AddEdge(0, 1);
///   Graph g = std::move(b).Build();
class GraphBuilder {
 public:
  /// `num_vertices` fixes the vertex id space [0, num_vertices).
  explicit GraphBuilder(VertexId num_vertices);

  /// Appends a directed edge; endpoints must be < num_vertices.
  void AddEdge(VertexId src, VertexId dst);
  void AddEdge(const Edge& e) { AddEdge(e.src, e.dst); }

  /// Appends all edges from a list.
  void AddEdges(const std::vector<Edge>& edges);

  /// Pre-sizes the edge accumulator. Streaming loaders that know the
  /// edge count up front (two-pass file loads) reserve once instead of
  /// growing geometrically.
  void Reserve(uint64_t num_edges) { edges_.reserve(num_edges); }

  uint64_t num_edges() const { return edges_.size(); }
  VertexId num_vertices() const { return num_vertices_; }

  /// Removes exact duplicate (src,dst) pairs and self-loops. Optional:
  /// generators may legitimately produce multigraphs.
  void DeduplicateAndDropSelfLoops();

  /// Builds the graph. Consumes the builder. The edge accumulator is
  /// released as soon as the out-CSR is fixed (the in-CSR is derived
  /// from the out-CSR), which caps peak memory at roughly the final
  /// graph plus one edge array instead of plus the full accumulator.
  Graph Build() &&;

 private:
  VertexId num_vertices_;
  std::vector<Edge> edges_;
};

}  // namespace rlcut

#endif  // RLCUT_GRAPH_GRAPH_H_
