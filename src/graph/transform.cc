#include "graph/transform.h"

#include "common/logging.h"

namespace rlcut {

Graph Symmetrize(const Graph& graph) {
  GraphBuilder builder(graph.num_vertices());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const Edge edge = graph.GetEdge(e);
    builder.AddEdge(edge.src, edge.dst);
    builder.AddEdge(edge.dst, edge.src);
  }
  builder.DeduplicateAndDropSelfLoops();
  return std::move(builder).Build();
}

Graph Transpose(const Graph& graph) {
  GraphBuilder builder(graph.num_vertices());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const Edge edge = graph.GetEdge(e);
    builder.AddEdge(edge.dst, edge.src);
  }
  return std::move(builder).Build();
}

Graph EdgePrefixSubgraph(const Graph& graph, uint64_t num_edges) {
  RLCUT_CHECK_LE(num_edges, graph.num_edges());
  GraphBuilder builder(graph.num_vertices());
  for (EdgeId e = 0; e < num_edges; ++e) {
    builder.AddEdge(graph.GetEdge(e));
  }
  return std::move(builder).Build();
}

}  // namespace rlcut
