#include "graph/transform.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace rlcut {

Graph Symmetrize(const Graph& graph) {
  GraphBuilder builder(graph.num_vertices());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const Edge edge = graph.GetEdge(e);
    builder.AddEdge(edge.src, edge.dst);
    builder.AddEdge(edge.dst, edge.src);
  }
  builder.DeduplicateAndDropSelfLoops();
  return std::move(builder).Build();
}

Graph Transpose(const Graph& graph) {
  GraphBuilder builder(graph.num_vertices());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const Edge edge = graph.GetEdge(e);
    builder.AddEdge(edge.dst, edge.src);
  }
  return std::move(builder).Build();
}

Graph EdgePrefixSubgraph(const Graph& graph, uint64_t num_edges) {
  RLCUT_CHECK_LE(num_edges, graph.num_edges());
  GraphBuilder builder(graph.num_vertices());
  for (EdgeId e = 0; e < num_edges; ++e) {
    builder.AddEdge(graph.GetEdge(e));
  }
  return std::move(builder).Build();
}

Result<VertexOrderKind> ParseVertexOrderKind(const std::string& name) {
  if (name == "natural") return VertexOrderKind::kNatural;
  if (name == "degree") return VertexOrderKind::kDegree;
  if (name == "locality") return VertexOrderKind::kLocality;
  return Status::InvalidArgument(
      "unknown vertex order '" + name +
      "' (expected natural | degree | locality)");
}

const char* VertexOrderKindName(VertexOrderKind kind) {
  switch (kind) {
    case VertexOrderKind::kNatural:
      return "natural";
    case VertexOrderKind::kDegree:
      return "degree";
    case VertexOrderKind::kLocality:
      return "locality";
  }
  return "unknown";
}

VertexPermutation IdentityOrder(VertexId n) {
  VertexPermutation perm;
  perm.new_of_old.resize(n);
  std::iota(perm.new_of_old.begin(), perm.new_of_old.end(), VertexId{0});
  perm.old_of_new = perm.new_of_old;
  return perm;
}

namespace {

// Original vertex ids sorted by total degree descending, id ascending.
std::vector<VertexId> VerticesByDegreeDesc(const Graph& graph) {
  const VertexId n = graph.num_vertices();
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  std::stable_sort(order.begin(), order.end(),
                   [&graph](VertexId a, VertexId b) {
                     return graph.Degree(a) > graph.Degree(b);
                   });
  return order;
}

VertexPermutation FromOldOfNew(std::vector<VertexId> old_of_new) {
  VertexPermutation perm;
  perm.new_of_old.resize(old_of_new.size());
  for (VertexId new_id = 0; new_id < old_of_new.size(); ++new_id) {
    perm.new_of_old[old_of_new[new_id]] = new_id;
  }
  perm.old_of_new = std::move(old_of_new);
  return perm;
}

}  // namespace

VertexPermutation DegreeDescendingOrder(const Graph& graph) {
  return FromOldOfNew(VerticesByDegreeDesc(graph));
}

VertexPermutation LocalityOrder(const Graph& graph) {
  const VertexId n = graph.num_vertices();
  const std::vector<VertexId> seeds = VerticesByDegreeDesc(graph);
  std::vector<VertexId> old_of_new;
  old_of_new.reserve(n);
  std::vector<uint8_t> visited(n, 0);
  std::vector<VertexId> queue;  // BFS frontier, head is an index.
  queue.reserve(n);
  for (const VertexId seed : seeds) {
    if (visited[seed]) continue;
    size_t head = old_of_new.size();
    visited[seed] = 1;
    old_of_new.push_back(seed);
    // BFS over the union adjacency; old_of_new doubles as the queue
    // (vertices are appended exactly once, in visit order).
    while (head < old_of_new.size()) {
      const VertexId v = old_of_new[head++];
      for (const VertexId u : graph.OutNeighbors(v)) {
        if (!visited[u]) {
          visited[u] = 1;
          old_of_new.push_back(u);
        }
      }
      for (const VertexId u : graph.InNeighbors(v)) {
        if (!visited[u]) {
          visited[u] = 1;
          old_of_new.push_back(u);
        }
      }
    }
  }
  RLCUT_CHECK_EQ(old_of_new.size(), static_cast<size_t>(n));
  return FromOldOfNew(std::move(old_of_new));
}

VertexPermutation BuildVertexOrder(const Graph& graph, VertexOrderKind kind) {
  switch (kind) {
    case VertexOrderKind::kNatural:
      return IdentityOrder(graph.num_vertices());
    case VertexOrderKind::kDegree:
      return DegreeDescendingOrder(graph);
    case VertexOrderKind::kLocality:
      return LocalityOrder(graph);
  }
  return IdentityOrder(graph.num_vertices());
}

Result<VertexPermutation> PermutationFromNewOfOld(
    std::vector<VertexId> new_of_old) {
  const size_t n = new_of_old.size();
  std::vector<VertexId> old_of_new(n, VertexId{0});
  std::vector<uint8_t> seen(n, 0);
  for (size_t old_id = 0; old_id < n; ++old_id) {
    const VertexId new_id = new_of_old[old_id];
    if (new_id >= n) {
      return Status::InvalidArgument(
          "permutation entry " + std::to_string(new_id) +
          " out of range for " + std::to_string(n) + " vertices");
    }
    if (seen[new_id]) {
      return Status::InvalidArgument("permutation maps two vertices to " +
                                     std::to_string(new_id));
    }
    seen[new_id] = 1;
    old_of_new[new_id] = static_cast<VertexId>(old_id);
  }
  VertexPermutation perm;
  perm.new_of_old = std::move(new_of_old);
  perm.old_of_new = std::move(old_of_new);
  return perm;
}

Graph ReorderVertices(const Graph& graph, const VertexPermutation& perm,
                      std::vector<EdgeId>* old_edge_of_new) {
  const VertexId n = graph.num_vertices();
  RLCUT_CHECK_EQ(perm.size(), n);
  GraphBuilder builder(n);
  builder.Reserve(graph.num_edges());
  if (old_edge_of_new != nullptr) {
    old_edge_of_new->clear();
    old_edge_of_new->reserve(graph.num_edges());
  }
  // Emit edges grouped by new source id in ascending order, original
  // adjacency order within a source. GraphBuilder's counting sort is
  // stable, so new EdgeIds are exactly the emission order below and
  // old_edge_of_new can be recorded as we go.
  for (VertexId new_src = 0; new_src < n; ++new_src) {
    const VertexId old_src = perm.old_of_new[new_src];
    const auto targets = graph.OutNeighbors(old_src);
    const EdgeId old_begin = graph.OutEdgeBegin(old_src);
    for (size_t k = 0; k < targets.size(); ++k) {
      builder.AddEdge(new_src, perm.new_of_old[targets[k]]);
      if (old_edge_of_new != nullptr) {
        old_edge_of_new->push_back(old_begin + k);
      }
    }
  }
  return std::move(builder).Build();
}

}  // namespace rlcut
