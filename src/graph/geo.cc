#include "graph/geo.h"

#include "common/logging.h"
#include "common/random.h"

namespace rlcut {
namespace {

// Default relative populations for the paper's eight regions (Sec. II):
// South America, USA West, USA East, Africa, Oceania, North America,
// Asia, Europe. Values approximate the Twitter-user clustering skew.
const double kDefaultPopularity[] = {0.08, 0.12, 0.22, 0.05,
                                     0.04, 0.09, 0.18, 0.22};

}  // namespace

std::vector<DcId> AssignGeoLocations(const Graph& graph,
                                     const GeoLocatorOptions& options) {
  RLCUT_CHECK_GE(options.num_dcs, 1);
  RLCUT_CHECK_LE(options.num_dcs, kMaxDataCenters);
  RLCUT_CHECK_GE(options.homophily, 0.0);
  RLCUT_CHECK_LE(options.homophily, 1.0);

  std::vector<double> popularity = options.region_popularity;
  if (popularity.empty()) {
    for (int i = 0; i < options.num_dcs; ++i) {
      popularity.push_back(
          kDefaultPopularity[i % (sizeof(kDefaultPopularity) /
                                  sizeof(kDefaultPopularity[0]))]);
    }
  }
  RLCUT_CHECK_EQ(popularity.size(), static_cast<size_t>(options.num_dcs));

  Rng rng(options.seed);
  const VertexId n = graph.num_vertices();
  std::vector<DcId> locations(n, kNoDc);

  // First pass: independent popularity draws.
  for (VertexId v = 0; v < n; ++v) {
    locations[v] = static_cast<DcId>(rng.SampleDiscrete(popularity));
  }
  // Homophily pass: with probability `homophily`, align a vertex with
  // the majority region of its in-neighbors (followers cluster around
  // where the followee's audience lives). Aligning hubs to their
  // audience majority is what moves the inter-DC edge fraction, since
  // hubs carry most edges in skewed graphs.
  if (options.homophily > 0) {
    std::vector<uint32_t> region_count(options.num_dcs);
    for (VertexId v = 0; v < n; ++v) {
      auto in = graph.InNeighbors(v);
      if (in.empty()) continue;
      if (!rng.Bernoulli(options.homophily)) continue;
      std::fill(region_count.begin(), region_count.end(), 0u);
      for (VertexId w : in) ++region_count[locations[w]];
      DcId mode = 0;
      for (DcId r = 1; r < options.num_dcs; ++r) {
        if (region_count[r] > region_count[mode]) mode = r;
      }
      locations[v] = mode;
    }
  }
  return locations;
}

std::vector<double> AssignInputSizes(const Graph& graph, double base_bytes,
                                     double bytes_per_edge) {
  std::vector<double> sizes(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    sizes[v] = base_bytes + bytes_per_edge * graph.Degree(v);
  }
  return sizes;
}

GeoEdgeStats ComputeGeoEdgeStats(const Graph& graph,
                                 const std::vector<DcId>& locations,
                                 int num_dcs) {
  RLCUT_CHECK_EQ(locations.size(), graph.num_vertices());
  GeoEdgeStats stats;
  stats.counts.assign(num_dcs, std::vector<uint64_t>(num_dcs, 0));
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const DcId src_dc = locations[v];
    for (VertexId u : graph.OutNeighbors(v)) {
      const DcId dst_dc = locations[u];
      ++stats.counts[src_dc][dst_dc];
      if (src_dc == dst_dc) {
        ++stats.intra_dc_edges;
      } else {
        ++stats.inter_dc_edges;
      }
    }
  }
  return stats;
}

}  // namespace rlcut
