#ifndef RLCUT_GRAPH_STREAM_H_
#define RLCUT_GRAPH_STREAM_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/sim_time.h"
#include "graph/temporal.h"

namespace rlcut {

/// One edge insertion as delivered by the transport. `sequence` is a
/// producer-assigned unique id; the buffer uses it to drop duplicate
/// deliveries (at-least-once transports redeliver) and to give same-
/// timestamp events a deterministic order.
struct StreamEvent {
  TimedEdge edge;
  uint64_t sequence = 0;
};

/// A closed batch of edge insertions, ready for
/// PartitioningSession::ApplyDelta. Edges are sorted by
/// (time, sequence); `watermark` is the cut time — every edge satisfies
/// edge.time <= watermark, and no later Cut yields an edge at or before
/// it unless it arrived late (late arrivals ride the next batch).
struct MicroBatch {
  std::vector<TimedEdge> edges;
  SimTime watermark;

  bool empty() const { return edges.empty(); }
};

/// Running totals of what the buffer has seen.
struct StreamBufferStats {
  /// Events admitted into some batch (past or pending).
  uint64_t accepted = 0;
  /// Redelivered events dropped by sequence-id dedup.
  uint64_t duplicates_dropped = 0;
  /// Events that arrived with a timestamp at or before an already-cut
  /// watermark; they are deferred into the next batch, not lost.
  uint64_t late_deferred = 0;
  /// Events admitted but not yet cut into a batch.
  uint64_t pending = 0;
  /// Sequence ids released from the dedup set because their event was
  /// cut into a batch. Steady-state invariant:
  ///   accepted == sequences_retired + pending
  /// — the dedup set only holds ids of pending events, so buffer
  /// memory is bounded by the distance between pushes and cuts, not by
  /// the lifetime of the stream.
  uint64_t sequences_retired = 0;
};

/// Reorder/dedup buffer between a temporal edge transport and a
/// PartitioningSession. Push events in any arrival order; Cut(t) closes
/// a micro-batch of everything with time <= t in deterministic
/// (time, sequence) order. Determinism under arrival-order shuffles is
/// the property the streaming oracle replays against: any permutation
/// of Push calls between two Cuts yields bit-identical batches.
///
/// Memory is bounded: Cut retires the sequence ids of the events it
/// ships, so both the pending list and the dedup set track only the
/// in-flight window between cuts — a long-lived daemon does not grow
/// with stream length. The trade is a bounded redelivery window: a
/// duplicate delivery is only recognized while its original is still
/// pending; one redelivered after its batch was cut re-enters as a
/// late event (at-least-once delivery, same as the transport itself).
class StreamBuffer {
 public:
  /// Admits `event` unless its sequence id is pending (duplicate
  /// delivery; dropped, counted). Events at or before the last cut
  /// watermark are late: still admitted, counted, carried by the next
  /// Cut regardless of its watermark. Returns true if admitted.
  bool Push(const StreamEvent& event);

  /// Closes the batch of pending events with time <= `watermark`, plus
  /// every late event admitted since the previous Cut. The returned
  /// edges are sorted by (time, sequence). `watermark` must not move
  /// backwards across calls.
  MicroBatch Cut(SimTime watermark);

  /// Watermark of the last Cut, or SimTime::Min() before the first.
  SimTime last_watermark() const { return last_watermark_; }

  const StreamBufferStats& stats() const { return stats_; }

 private:
  std::vector<StreamEvent> pending_;
  std::unordered_set<uint64_t> seen_sequences_;
  SimTime last_watermark_ = SimTime::Min();
  bool cut_once_ = false;
  StreamBufferStats stats_;
};

}  // namespace rlcut

#endif  // RLCUT_GRAPH_STREAM_H_
