#ifndef RLCUT_GRAPH_IO_H_
#define RLCUT_GRAPH_IO_H_

#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace rlcut {

/// Loads a whitespace-separated edge-list file ("src dst" per line;
/// '#'-prefixed lines are comments — the SNAP dataset format). Vertex ids
/// are used as-is; the vertex count is max id + 1. Streams the file in
/// two passes (count, then load into a pre-sized builder) so peak memory
/// is one edge array. Ids ≥ 2^32 - 1 are rejected with kOutOfRange: the
/// id space max_id + 1 must fit 32-bit VertexId.
Result<Graph> LoadEdgeListFile(const std::string& path);

/// Writes a graph as a SNAP-style edge list (one "src dst" per line).
Status SaveEdgeListFile(const Graph& graph, const std::string& path);

}  // namespace rlcut

#endif  // RLCUT_GRAPH_IO_H_
