#include "graph/stream.h"

#include <algorithm>

#include "common/logging.h"

namespace rlcut {

bool StreamBuffer::Push(const StreamEvent& event) {
  if (!seen_sequences_.insert(event.sequence).second) {
    ++stats_.duplicates_dropped;
    return false;
  }
  if (cut_once_ && event.edge.time <= last_watermark_) {
    ++stats_.late_deferred;
  }
  pending_.push_back(event);
  ++stats_.accepted;
  ++stats_.pending;
  return true;
}

MicroBatch StreamBuffer::Cut(SimTime watermark) {
  if (cut_once_) {
    RLCUT_CHECK_GE(watermark.micros(), last_watermark_.micros())
        << "cut watermark moved backwards";
  }
  MicroBatch batch;
  batch.watermark = watermark;
  // Late events (time <= previous watermark) are already overdue: they
  // ship with this batch no matter where the new watermark lands.
  auto keep = [&](const StreamEvent& e) {
    return e.edge.time > watermark &&
           !(cut_once_ && e.edge.time <= last_watermark_);
  };
  std::vector<StreamEvent> cut;
  std::vector<StreamEvent> rest;
  cut.reserve(pending_.size());
  for (const StreamEvent& e : pending_) {
    (keep(e) ? rest : cut).push_back(e);
  }
  std::sort(cut.begin(), cut.end(),
            [](const StreamEvent& a, const StreamEvent& b) {
              if (a.edge.time != b.edge.time) return a.edge.time < b.edge.time;
              return a.sequence < b.sequence;
            });
  batch.edges.reserve(cut.size());
  for (const StreamEvent& e : cut) {
    batch.edges.push_back(e.edge);
    // Retire the shipped event's dedup entry: the set only guards the
    // in-flight window, so a year-long stream does not accumulate a
    // year of sequence ids (see the class comment for the redelivery
    // contract this buys).
    seen_sequences_.erase(e.sequence);
    ++stats_.sequences_retired;
  }
  pending_ = std::move(rest);
  stats_.pending = pending_.size();
  last_watermark_ = watermark;
  cut_once_ = true;
  return batch;
}

}  // namespace rlcut
