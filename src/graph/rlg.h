#ifndef RLCUT_GRAPH_RLG_H_
#define RLCUT_GRAPH_RLG_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "graph/transform.h"

namespace rlcut {

/// On-disk dual-CSR graph format (".rlg") for out-of-core training.
///
/// Layout (all fields host-endian, like every rlcut binary format —
/// these are single-machine files, not interchange):
///
///   offset   0  magic "RLCUTRLG" (8 bytes)
///   offset   8  uint32 version (currently 1)
///   offset  12  uint32 flags (bit 0: orig-ids section present)
///   offset  16  uint64 num_vertices
///   offset  24  uint64 num_edges
///   offset  32  uint64 section_offsets[7] (byte offset from file start;
///               0 = section absent):
///                 [0] out_offsets   (num_vertices + 1) x uint64
///                 [1] out_targets   num_edges x uint32 VertexId
///                 [2] edge_sources  num_edges x uint32 VertexId
///                 [3] in_offsets    (num_vertices + 1) x uint64
///                 [4] in_sources    num_edges x uint32 VertexId
///                 [5] in_edge_ids   num_edges x uint64 EdgeId
///                 [6] orig_ids      num_vertices x uint32 (optional)
///   offset  88  uint64 declared file size (truncation check)
///   offset  96  uint64 FNV-1a checksum of header bytes [0, 96)
///   offset 104  zero padding to 128
///
/// Sections are 64-byte aligned. The checksum covers the header only:
/// a whole-file checksum would force reading every page up front, which
/// is exactly what a memory-mapped loader exists to avoid. Deep
/// structural validation of the arrays is available separately
/// (MmapGraph::ValidateFully) for untrusted files.
///
/// The optional orig-ids section records, for each (possibly
/// renumbered) vertex, its id in the originally loaded graph. A file
/// written in a locality order carries it so plans trained on the
/// mapped graph can be published in original ids.

inline constexpr char kRlgMagic[8] = {'R', 'L', 'C', 'U', 'T',
                                      'R', 'L', 'G'};
inline constexpr uint32_t kRlgVersion = 1;
inline constexpr uint32_t kRlgFlagHasOrigIds = 1u << 0;
inline constexpr size_t kRlgHeaderSize = 128;
inline constexpr size_t kRlgSectionAlign = 64;

/// Writes `graph` to `path` in .rlg format, optionally relabeled by
/// `perm` (nullptr = keep ids). The output file is pre-sized and
/// memory-mapped read-write, so heap overhead is O(num_vertices)
/// regardless of edge count — the kernel page cache absorbs the
/// E-sized arrays. `orig_of_new` (size num_vertices) populates the
/// orig-ids section; pass an empty span to omit it. When `perm` is
/// given and `orig_of_new` is empty, perm->old_of_new is recorded
/// automatically so the mapping back to input ids is never lost.
/// Writes to a temp file and renames into place.
Status WriteRlgFile(const Graph& graph, const VertexPermutation* perm,
                    std::span<const VertexId> orig_of_new,
                    const std::string& path);

/// Convenience: writes `graph` as-is with no orig-ids section.
Status SaveRlgGraph(const Graph& graph, const std::string& path);

/// Streams a SNAP-style text edge list into an .rlg file with
/// O(num_vertices) heap: three passes over the text (count; degree
/// histograms straight into the mapped offset arrays; scatter the
/// edges through cursors) plus one pass over the mapped out-CSR to
/// derive the in-CSR. Id limits match LoadEdgeListFile.
Status ConvertEdgeListToRlg(const std::string& edge_list_path,
                            const std::string& rlg_path);

/// Owns one mmap'd .rlg file (and its optional residency governor);
/// shared by every Graph wrapping views into it.
class RlgMapping {
 public:
  ~RlgMapping();
  RlgMapping(const RlgMapping&) = delete;
  RlgMapping& operator=(const RlgMapping&) = delete;

  const uint8_t* data() const { return base_; }
  size_t size() const { return len_; }

  /// Drops all resident pages of the mapping (madvise MADV_DONTNEED).
  /// Safe for a read-only file mapping: pages refault from the file on
  /// the next access.
  void DropPages() const;

  /// Starts a background thread that samples this process's resident
  /// set every few milliseconds and calls DropPages() whenever it
  /// exceeds `budget_bytes`. Crude but effective back-pressure for
  /// out-of-core runs; the hot header pages refault immediately.
  void StartGovernor(size_t budget_bytes);

  /// Times the governor dropped pages so far.
  uint64_t governor_drops() const;

 private:
  friend class MmapGraph;
  RlgMapping(uint8_t* base, size_t len);

  uint8_t* base_ = nullptr;
  size_t len_ = 0;
  struct Governor;
  std::unique_ptr<Governor> governor_;
};

/// Memory-mapped .rlg loader. Open() validates the header (magic,
/// version, checksum, declared size vs real size, section bounds and
/// alignment, orig-ids bijection) without touching the edge arrays;
/// ValidateFully() walks them. graph() returns a view-backed Graph that
/// shares the mapping — copy it freely, the file stays mapped until the
/// last copy dies.
class MmapGraph {
 public:
  struct Options {
    /// Advise the kernel access will be random (disables readahead).
    /// The trainer's vertex visits are effectively random, and
    /// readahead would blow the residency budget.
    bool random_access = true;
    /// O(V+E) structural validation of the mapped arrays on open.
    bool validate_structure = false;
    /// When non-zero, start a residency governor keeping this
    /// process's RSS near the budget by dropping mapped pages.
    size_t budget_bytes = 0;
  };

  static Result<MmapGraph> Open(const std::string& path,
                                const Options& options);
  static Result<MmapGraph> Open(const std::string& path) {
    return Open(path, Options{});
  }

  const Graph& graph() const { return graph_; }
  bool has_orig_ids() const { return orig_ids_ != nullptr; }
  /// Original id per (current) vertex id; empty when the section is
  /// absent (ids are already original).
  std::span<const VertexId> orig_of_new() const {
    if (orig_ids_ == nullptr) return {};
    return {orig_ids_, graph_.num_vertices()};
  }
  uint64_t mapped_bytes() const { return mapping_->size(); }
  const std::shared_ptr<RlgMapping>& mapping() const { return mapping_; }

  /// Deep structural validation of the mapped arrays: offsets monotone
  /// and bounded, targets/sources in range, in-CSR EdgeIds consistent
  /// with the out-CSR. O(V+E); reads every page once.
  Status ValidateFully() const;

 private:
  std::shared_ptr<RlgMapping> mapping_;
  Graph graph_;
  const VertexId* orig_ids_ = nullptr;
};

/// The storage seam the tools program against: a graph that is either
/// owned in memory or memory-mapped from an .rlg file. Everything
/// downstream (PartitionState, trainer, shard layout, sessions) takes
/// `const Graph*` and cannot tell the difference.
class GraphStore {
 public:
  GraphStore() = default;

  static GraphStore InMemory(Graph graph) {
    GraphStore store;
    store.graph_ = std::move(graph);
    return store;
  }

  static Result<GraphStore> OpenMapped(const std::string& path,
                                       const MmapGraph::Options& options = {});

  const Graph& graph() const { return graph_; }
  bool mapped() const { return mmap_.has_value(); }
  /// Original id per vertex: from the .rlg orig-ids section when
  /// mapped, empty otherwise (ids are already original).
  std::span<const VertexId> orig_of_new() const {
    return mmap_.has_value() ? mmap_->orig_of_new()
                             : std::span<const VertexId>{};
  }
  const MmapGraph* mmap_graph() const {
    return mmap_.has_value() ? &*mmap_ : nullptr;
  }

 private:
  Graph graph_;
  std::optional<MmapGraph> mmap_;
};

/// In-memory footprint of the dual-CSR arrays for a graph of this
/// shape — what an owned Graph would allocate, and the baseline the
/// out-of-core RSS gate compares against.
uint64_t DualCsrBytes(VertexId num_vertices, uint64_t num_edges);

/// Current resident set size of this process in bytes (Linux
/// /proc/self/statm; 0 if unavailable).
uint64_t CurrentRssBytes();

/// Peak resident set size of this process in bytes (getrusage
/// ru_maxrss; 0 if unavailable). Note: the OS never lowers this — it
/// records the high-water mark including any earlier in-memory phase.
uint64_t PeakRssBytes();

}  // namespace rlcut

#endif  // RLCUT_GRAPH_RLG_H_
