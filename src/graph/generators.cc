#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace rlcut {
namespace {

VertexId RoundUpToPowerOfTwo(VertexId n) {
  VertexId p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Applies a random permutation to all endpoints in-place.
void PermuteVertexIds(std::vector<Edge>& edges, VertexId n, Rng& rng) {
  std::vector<VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  rng.Shuffle(perm);
  for (Edge& e : edges) {
    e.src = perm[e.src];
    e.dst = perm[e.dst];
  }
}

}  // namespace

std::vector<Edge> GenerateRmatEdges(const RmatOptions& options) {
  RLCUT_CHECK_GT(options.num_vertices, 1u);
  RLCUT_CHECK_GE(options.a + options.b + options.c, 0.0);
  RLCUT_CHECK_LE(options.a + options.b + options.c, 1.0);
  const VertexId n = RoundUpToPowerOfTwo(options.num_vertices);
  int levels = 0;
  while ((1u << levels) < n) ++levels;

  Rng rng(options.seed);
  std::vector<Edge> edges;
  edges.reserve(options.num_edges);
  for (uint64_t i = 0; i < options.num_edges; ++i) {
    VertexId src = 0;
    VertexId dst = 0;
    for (int level = 0; level < levels; ++level) {
      // Per-level multiplicative noise keeps expected quadrant mass while
      // de-correlating levels.
      const double na =
          options.a * (1 + options.noise * (rng.UniformDouble() - 0.5));
      const double nb =
          options.b * (1 + options.noise * (rng.UniformDouble() - 0.5));
      const double nc =
          options.c * (1 + options.noise * (rng.UniformDouble() - 0.5));
      const double nd = 1.0 - na - nb - nc;
      const double total = na + nb + nc + std::max(nd, 0.0);
      double x = rng.UniformDouble() * total;
      src <<= 1;
      dst <<= 1;
      if (x < na) {
        // top-left: no bits set.
      } else if (x < na + nb) {
        dst |= 1;
      } else if (x < na + nb + nc) {
        src |= 1;
      } else {
        src |= 1;
        dst |= 1;
      }
    }
    edges.push_back({src, dst});
  }
  PermuteVertexIds(edges, n, rng);
  return edges;
}

Graph GenerateRmat(const RmatOptions& options) {
  const VertexId n = RoundUpToPowerOfTwo(options.num_vertices);
  std::vector<Edge> edges = GenerateRmatEdges(options);
  GraphBuilder builder(n);
  builder.AddEdges(edges);
  if (options.remove_duplicates) builder.DeduplicateAndDropSelfLoops();
  return std::move(builder).Build();
}

std::vector<Edge> GeneratePowerLawEdges(const PowerLawOptions& options) {
  RLCUT_CHECK_GT(options.num_vertices, 1u);
  RLCUT_CHECK_GT(options.exponent, 1.05);
  Rng rng(options.seed);
  const VertexId n = options.num_vertices;
  std::vector<Edge> edges;
  edges.reserve(options.num_edges);
  // Destination drawn by Zipf rank weight, source uniform. `exponent` is
  // the degree-distribution exponent gamma (P[deg=k] ~ k^-gamma); the
  // corresponding rank-weight exponent is s = 1/(gamma-1), so a larger
  // gamma means a lighter tail. A random relabeling decouples vertex id
  // from popularity rank.
  const double rank_exponent = 1.0 / (options.exponent - 1.0);
  for (uint64_t i = 0; i < options.num_edges; ++i) {
    const VertexId dst =
        static_cast<VertexId>(rng.Zipf(n, rank_exponent));
    const VertexId src = static_cast<VertexId>(rng.UniformInt(n));
    edges.push_back({src, dst});
  }
  PermuteVertexIds(edges, n, rng);
  return edges;
}

Graph GeneratePowerLaw(const PowerLawOptions& options) {
  std::vector<Edge> edges = GeneratePowerLawEdges(options);
  GraphBuilder builder(options.num_vertices);
  builder.AddEdges(edges);
  return std::move(builder).Build();
}

Graph GenerateErdosRenyi(VertexId num_vertices, uint64_t num_edges,
                         uint64_t seed) {
  RLCUT_CHECK_GT(num_vertices, 1u);
  Rng rng(seed);
  GraphBuilder builder(num_vertices);
  for (uint64_t i = 0; i < num_edges; ++i) {
    VertexId src = static_cast<VertexId>(rng.UniformInt(num_vertices));
    VertexId dst = static_cast<VertexId>(rng.UniformInt(num_vertices));
    builder.AddEdge(src, dst);
  }
  return std::move(builder).Build();
}

Graph GenerateRing(VertexId num_vertices, uint32_t hops) {
  RLCUT_CHECK_GT(num_vertices, 1u);
  GraphBuilder builder(num_vertices);
  for (VertexId v = 0; v < num_vertices; ++v) {
    for (uint32_t h = 1; h <= hops; ++h) {
      builder.AddEdge(v, (v + h) % num_vertices);
    }
  }
  return std::move(builder).Build();
}

Graph GenerateGrid(VertexId rows, VertexId cols) {
  RLCUT_CHECK_GT(rows, 0u);
  RLCUT_CHECK_GT(cols, 0u);
  GraphBuilder builder(rows * cols);
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) builder.AddEdge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) builder.AddEdge(id(r, c), id(r + 1, c));
    }
  }
  return std::move(builder).Build();
}

}  // namespace rlcut
