#include "graph/io.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

namespace rlcut {

namespace {

// Parses one edge-list line into (src, dst). Returns false on blank or
// comment lines; error Status on malformed or out-of-range ids.
Status ParseEdgeLine(const std::string& line, const std::string& path,
                     size_t line_number, bool* is_edge, uint64_t* src,
                     uint64_t* dst) {
  *is_edge = false;
  const char* p = line.c_str();
  const char* end = p + line.size();
  auto skip_ws = [&] {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
  };
  skip_ws();
  if (p == end || *p == '#') return Status::Ok();
  auto parse_u64 = [&](uint64_t* out) {
    if (p == end || *p < '0' || *p > '9') return false;
    uint64_t value = 0;
    while (p < end && *p >= '0' && *p <= '9') {
      const uint64_t digit = static_cast<uint64_t>(*p - '0');
      if (value > (UINT64_MAX - digit) / 10) return false;
      value = value * 10 + digit;
      ++p;
    }
    *out = value;
    return true;
  };
  if (!parse_u64(src)) {
    return Status::IoError(path + ":" + std::to_string(line_number) +
                           ": malformed edge line: " + line);
  }
  skip_ws();
  if (!parse_u64(dst)) {
    return Status::IoError(path + ":" + std::to_string(line_number) +
                           ": malformed edge line: " + line);
  }
  // A vertex id space of max_id + 1 must itself fit in VertexId, so the
  // largest representable id is 0xFFFFFFFE.
  if (*src >= 0xFFFFFFFFull || *dst >= 0xFFFFFFFFull) {
    return Status::OutOfRange(
        path + ":" + std::to_string(line_number) +
        ": vertex id " + std::to_string(std::max(*src, *dst)) +
        " does not fit 32-bit VertexId (max 4294967294)");
  }
  *is_edge = true;
  return Status::Ok();
}

}  // namespace

Result<Graph> LoadEdgeListFile(const std::string& path) {
  // Two passes: the first counts edges and finds the max vertex id, the
  // second streams edges straight into a pre-sized GraphBuilder. Peak
  // memory is the builder's edge array alone — no separate full edge
  // vector — at the cost of reading the file twice (page cache makes
  // the second read cheap).
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open " + path);
  }
  uint64_t num_edges = 0;
  uint64_t max_id = 0;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    bool is_edge = false;
    uint64_t src = 0;
    uint64_t dst = 0;
    RLCUT_RETURN_IF_ERROR(
        ParseEdgeLine(line, path, line_number, &is_edge, &src, &dst));
    if (!is_edge) continue;
    ++num_edges;
    max_id = std::max({max_id, src, dst});
  }

  const VertexId n =
      num_edges == 0 ? 1 : static_cast<VertexId>(max_id) + 1;
  GraphBuilder builder(n);
  builder.Reserve(num_edges);

  in.clear();
  in.seekg(0);
  if (!in) {
    return Status::IoError("cannot rewind " + path);
  }
  line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    bool is_edge = false;
    uint64_t src = 0;
    uint64_t dst = 0;
    RLCUT_RETURN_IF_ERROR(
        ParseEdgeLine(line, path, line_number, &is_edge, &src, &dst));
    if (!is_edge) continue;
    builder.AddEdge(static_cast<VertexId>(src), static_cast<VertexId>(dst));
  }
  if (builder.num_edges() != num_edges) {
    return Status::IoError(path + ": file changed between passes (" +
                           std::to_string(num_edges) + " edges counted, " +
                           std::to_string(builder.num_edges()) + " loaded)");
  }
  return std::move(builder).Build();
}

Status SaveEdgeListFile(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  out << "# rlcut edge list: " << graph.num_vertices() << " vertices, "
      << graph.num_edges() << " edges\n";
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const Edge edge = graph.GetEdge(e);
    out << edge.src << " " << edge.dst << "\n";
  }
  if (!out) {
    return Status::IoError("write failed for " + path);
  }
  return Status::Ok();
}

}  // namespace rlcut
