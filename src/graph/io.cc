#include "graph/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace rlcut {

Result<Graph> LoadEdgeListFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open " + path);
  }
  std::vector<Edge> edges;
  VertexId max_id = 0;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    uint64_t src = 0;
    uint64_t dst = 0;
    if (!(ss >> src >> dst)) {
      return Status::IoError(path + ":" + std::to_string(line_number) +
                             ": malformed edge line: " + line);
    }
    if (src > 0xFFFFFFFFull || dst > 0xFFFFFFFFull) {
      return Status::OutOfRange(path + ":" + std::to_string(line_number) +
                                ": vertex id exceeds 32 bits");
    }
    edges.push_back(
        {static_cast<VertexId>(src), static_cast<VertexId>(dst)});
    max_id = std::max(max_id, static_cast<VertexId>(std::max(src, dst)));
  }
  const VertexId n = edges.empty() ? 0 : max_id + 1;
  GraphBuilder builder(n == 0 ? 1 : n);
  builder.AddEdges(edges);
  return std::move(builder).Build();
}

Status SaveEdgeListFile(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  out << "# rlcut edge list: " << graph.num_vertices() << " vertices, "
      << graph.num_edges() << " edges\n";
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const Edge edge = graph.GetEdge(e);
    out << edge.src << " " << edge.dst << "\n";
  }
  if (!out) {
    return Status::IoError("write failed for " + path);
  }
  return Status::Ok();
}

}  // namespace rlcut
