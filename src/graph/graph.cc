#include "graph/graph.h"

#include <algorithm>

#include "common/logging.h"

namespace rlcut {

uint32_t Graph::MaxInDegree() const {
  uint32_t max_deg = 0;
  for (VertexId v = 0; v < num_vertices(); ++v) {
    max_deg = std::max(max_deg, InDegree(v));
  }
  return max_deg;
}

GraphBuilder::GraphBuilder(VertexId num_vertices)
    : num_vertices_(num_vertices) {}

void GraphBuilder::AddEdge(VertexId src, VertexId dst) {
  RLCUT_DCHECK(src < num_vertices_);
  RLCUT_DCHECK(dst < num_vertices_);
  edges_.push_back({src, dst});
}

void GraphBuilder::AddEdges(const std::vector<Edge>& edges) {
  edges_.insert(edges_.end(), edges.begin(), edges.end());
}

void GraphBuilder::DeduplicateAndDropSelfLoops() {
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                              [](const Edge& e) { return e.src == e.dst; }),
               edges_.end());
}

Graph GraphBuilder::Build() && {
  Graph g;
  const VertexId n = num_vertices_;
  const uint64_t m = edges_.size();

  // Out-CSR via counting sort by source; this fixes EdgeIds.
  g.out_offsets_.assign(n + 1, 0);
  for (const Edge& e : edges_) ++g.out_offsets_[e.src + 1];
  for (VertexId v = 0; v < n; ++v) {
    g.out_offsets_[v + 1] += g.out_offsets_[v];
  }
  g.out_targets_.resize(m);
  g.edge_sources_.resize(m);
  {
    std::vector<uint64_t> cursor(g.out_offsets_.begin(),
                                 g.out_offsets_.end() - 1);
    for (const Edge& e : edges_) {
      const uint64_t pos = cursor[e.src]++;
      g.out_targets_[pos] = e.dst;
      g.edge_sources_[pos] = e.src;
    }
  }

  // The accumulator is no longer needed: the in-CSR below is derived
  // entirely from the out-CSR arrays. Freeing it here cuts peak RSS by
  // one Edge array on large builds.
  edges_.clear();
  edges_.shrink_to_fit();

  // In-CSR carrying matching EdgeIds.
  g.in_offsets_.assign(n + 1, 0);
  for (EdgeId e = 0; e < m; ++e) ++g.in_offsets_[g.out_targets_[e] + 1];
  for (VertexId v = 0; v < n; ++v) {
    g.in_offsets_[v + 1] += g.in_offsets_[v];
  }
  g.in_sources_.resize(m);
  g.in_edge_ids_.resize(m);
  {
    std::vector<uint64_t> cursor(g.in_offsets_.begin(),
                                 g.in_offsets_.end() - 1);
    for (EdgeId e = 0; e < m; ++e) {
      const VertexId dst = g.out_targets_[e];
      const uint64_t pos = cursor[dst]++;
      g.in_sources_[pos] = g.edge_sources_[e];
      g.in_edge_ids_[pos] = e;
    }
  }

  g.BindViewToOwned();
  return g;
}

}  // namespace rlcut
