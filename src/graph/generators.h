#ifndef RLCUT_GRAPH_GENERATORS_H_
#define RLCUT_GRAPH_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace rlcut {

/// Parameters for the recursive-matrix (R-MAT) generator used to stand in
/// for skewed social/web graphs (Twitter, uk-2005, it-2004, ...).
/// Defaults are the canonical Graph500-ish skew (a=0.57,b=0.19,c=0.19).
struct RmatOptions {
  VertexId num_vertices = 1 << 14;  // Rounded up to a power of two.
  uint64_t num_edges = 1 << 18;
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  /// Perturbation of quadrant probabilities per level; breaks the strict
  /// self-similarity that makes pure R-MAT degree sequences lumpy.
  double noise = 0.05;
  bool remove_duplicates = false;
  uint64_t seed = 1;
};

/// Generates an R-MAT graph. Vertex ids are randomly permuted so that id
/// order carries no degree information (degree-ordered ids would make
/// hash partitioners look artificially good or bad).
Graph GenerateRmat(const RmatOptions& options);

/// Chung-Lu power-law graph: expected in-degrees follow a Zipf(exponent)
/// law; out-degrees are near-uniform. This matches the paper's setting
/// where *in*-degree skew drives the hybrid-cut high/low split.
struct PowerLawOptions {
  VertexId num_vertices = 1 << 14;
  uint64_t num_edges = 1 << 18;
  /// Degree-distribution exponent gamma (P[deg=k] ~ k^-gamma), > 1.05.
  /// Smaller gamma = heavier tail (Twitter ~1.8, social nets ~2.2-2.3).
  double exponent = 2.0;
  uint64_t seed = 1;
};

Graph GeneratePowerLaw(const PowerLawOptions& options);

/// Erdős–Rényi G(n, m): m uniform random edges. The "no skew" control.
Graph GenerateErdosRenyi(VertexId num_vertices, uint64_t num_edges,
                         uint64_t seed);

/// Deterministic ring with `hops` forward edges per vertex; handy in unit
/// tests where exact structure matters.
Graph GenerateRing(VertexId num_vertices, uint32_t hops = 1);

/// Two-dimensional grid (rows x cols) with right/down edges.
Graph GenerateGrid(VertexId rows, VertexId cols);

/// Raw edge-list variants used by the temporal-stream machinery, which
/// needs the edge sequence before CSR construction.
std::vector<Edge> GenerateRmatEdges(const RmatOptions& options);
std::vector<Edge> GeneratePowerLawEdges(const PowerLawOptions& options);

}  // namespace rlcut

#endif  // RLCUT_GRAPH_GENERATORS_H_
