#ifndef RLCUT_GRAPH_TEMPORAL_H_
#define RLCUT_GRAPH_TEMPORAL_H_

#include <cstdint>
#include <vector>

#include "common/sim_time.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace rlcut {

/// A timestamped edge insertion. `time` is on the same SimTime timeline
/// as TopologySchedule events, so streams and topology drift interleave
/// without unit conversion.
struct TimedEdge {
  Edge edge;
  SimTime time;
};

/// A dynamic graph as the paper defines it (Sec. III-B): a base graph
/// plus a stream of edge insertions. Vertex ids are stable: the full
/// vertex set is fixed up front and edges arrive over time.
class TemporalGraph {
 public:
  /// `edges` must be sorted by timestamp (ValidateSorted checks).
  TemporalGraph(VertexId num_vertices, std::vector<TimedEdge> edges);

  VertexId num_vertices() const { return num_vertices_; }
  const std::vector<TimedEdge>& edges() const { return edges_; }

  /// Builds the graph containing edges with timestamp < t.
  Graph SnapshotBefore(SimTime t) const;

  /// Builds the graph over the first `count` edges.
  Graph Prefix(uint64_t count) const;

  /// Edges with timestamp in [t0, t1).
  std::vector<Edge> EdgesInWindow(SimTime t0, SimTime t1) const;

  /// Number of edges with timestamp < t.
  uint64_t CountBefore(SimTime t) const;

  /// Per-window insertion counts over [0, horizon) with the given window
  /// length — the Fig. 4 "added edges per hour" series.
  std::vector<uint64_t> WindowCounts(SimTime horizon, SimTime window) const;

 private:
  VertexId num_vertices_;
  std::vector<TimedEdge> edges_;
};

/// Diurnal-rate stream generator standing in for the Stack Overflow
/// temporal network (Fig. 4): the hourly insertion rate follows a
/// day/night sinusoid with a burst factor, so max/min hourly rate is
/// roughly `peak_to_trough` (the paper observes 5-10x).
struct TemporalStreamOptions {
  VertexId num_vertices = 1 << 13;
  uint64_t num_edges = 1 << 17;
  double horizon_seconds = 24 * 3600;
  double peak_to_trough = 8.0;
  /// Hour (0-24) of peak activity.
  double peak_hour = 14.0;
  double skew_exponent = 2.0;  // Degree skew of the underlying graph.
  uint64_t seed = 11;
};

TemporalGraph GenerateDiurnalStream(const TemporalStreamOptions& options);

/// Splits a static graph's edges into an initial fraction and the rest
/// (Exp#5 setup: 70% initial LiveJournal + inserted remainder). Edge
/// order is randomized with `seed`.
struct GraphSplit {
  std::vector<Edge> initial_edges;
  std::vector<Edge> remaining_edges;
};

GraphSplit SplitEdges(const Graph& graph, double initial_fraction,
                      uint64_t seed);

}  // namespace rlcut

#endif  // RLCUT_GRAPH_TEMPORAL_H_
