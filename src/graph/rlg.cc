#include "graph/rlg.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/resource.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/byte_io.h"
#include "common/logging.h"

namespace rlcut {

namespace {

constexpr size_t kNumSections = 7;
constexpr size_t kSecOutOffsets = 0;
constexpr size_t kSecOutTargets = 1;
constexpr size_t kSecEdgeSources = 2;
constexpr size_t kSecInOffsets = 3;
constexpr size_t kSecInSources = 4;
constexpr size_t kSecInEdgeIds = 5;
constexpr size_t kSecOrigIds = 6;

// Header checksum covers bytes [0, kRlgChecksumOffset).
constexpr size_t kRlgChecksumOffset = 96;

struct RlgLayout {
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  bool has_orig_ids = false;
  uint64_t section_offsets[kNumSections] = {};
  uint64_t file_size = 0;
};

uint64_t AlignUp(uint64_t value, uint64_t align) {
  return (value + align - 1) / align * align;
}

uint64_t SectionBytes(size_t section, uint64_t n, uint64_t m) {
  switch (section) {
    case kSecOutOffsets:
    case kSecInOffsets:
      return (n + 1) * sizeof(uint64_t);
    case kSecOutTargets:
    case kSecEdgeSources:
    case kSecInSources:
      return m * sizeof(VertexId);
    case kSecInEdgeIds:
      return m * sizeof(EdgeId);
    case kSecOrigIds:
      return n * sizeof(VertexId);
  }
  return 0;
}

RlgLayout ComputeLayout(uint64_t n, uint64_t m, bool has_orig_ids) {
  RlgLayout layout;
  layout.num_vertices = n;
  layout.num_edges = m;
  layout.has_orig_ids = has_orig_ids;
  uint64_t cursor = kRlgHeaderSize;
  for (size_t s = 0; s < kNumSections; ++s) {
    if (s == kSecOrigIds && !has_orig_ids) continue;
    cursor = AlignUp(cursor, kRlgSectionAlign);
    layout.section_offsets[s] = cursor;
    cursor += SectionBytes(s, n, m);
  }
  layout.file_size = cursor;
  return layout;
}

// Serializes the 128-byte header (checksum computed over the first 96).
void FillHeader(const RlgLayout& layout, uint8_t* out) {
  ByteWriter writer;
  for (const char c : kRlgMagic) writer.Write<char>(c);
  writer.Write<uint32_t>(kRlgVersion);
  writer.Write<uint32_t>(layout.has_orig_ids ? kRlgFlagHasOrigIds : 0u);
  writer.Write<uint64_t>(layout.num_vertices);
  writer.Write<uint64_t>(layout.num_edges);
  for (const uint64_t offset : layout.section_offsets) {
    writer.Write<uint64_t>(offset);
  }
  writer.Write<uint64_t>(layout.file_size);
  RLCUT_CHECK_EQ(writer.bytes().size(), kRlgChecksumOffset);
  const uint64_t checksum = Fnv1a64(writer.bytes());
  writer.Write<uint64_t>(checksum);
  std::memset(out, 0, kRlgHeaderSize);
  std::memcpy(out, writer.bytes().data(), writer.bytes().size());
}

Status ParseHeader(const uint8_t* data, size_t size, RlgLayout* layout) {
  if (size < kRlgHeaderSize) {
    return Status::IoError("not an rlcut .rlg graph file (too small)");
  }
  const std::string header(reinterpret_cast<const char*>(data),
                           kRlgHeaderSize);
  ByteReader reader(header);
  char magic[8];
  for (char& c : magic) {
    if (!reader.Read(&c)) return Status::IoError("truncated .rlg header");
  }
  if (std::memcmp(magic, kRlgMagic, sizeof(kRlgMagic)) != 0) {
    return Status::IoError("not an rlcut .rlg graph file (bad magic)");
  }
  uint32_t version = 0;
  uint32_t flags = 0;
  if (!reader.Read(&version) || !reader.Read(&flags)) {
    return Status::IoError("truncated .rlg header");
  }
  if (version != kRlgVersion) {
    return Status::IoError(".rlg version " + std::to_string(version) +
                           " unsupported (expected " +
                           std::to_string(kRlgVersion) + ")");
  }
  if ((flags & ~kRlgFlagHasOrigIds) != 0) {
    return Status::IoError(".rlg header has unknown flags");
  }
  uint64_t declared_size = 0;
  if (!reader.Read(&layout->num_vertices) ||
      !reader.Read(&layout->num_edges)) {
    return Status::IoError("truncated .rlg header");
  }
  for (uint64_t& offset : layout->section_offsets) {
    if (!reader.Read(&offset)) {
      return Status::IoError("truncated .rlg header");
    }
  }
  uint64_t stored_checksum = 0;
  if (!reader.Read(&declared_size) || !reader.Read(&stored_checksum)) {
    return Status::IoError("truncated .rlg header");
  }
  const uint64_t computed =
      Fnv1a64(header.substr(0, kRlgChecksumOffset));
  if (computed != stored_checksum) {
    return Status::IoError(".rlg header checksum mismatch");
  }
  if (declared_size != size) {
    return Status::IoError(".rlg file truncated: header declares " +
                           std::to_string(declared_size) + " bytes, file has " +
                           std::to_string(size));
  }
  layout->has_orig_ids = (flags & kRlgFlagHasOrigIds) != 0;
  layout->file_size = declared_size;

  const uint64_t n = layout->num_vertices;
  const uint64_t m = layout->num_edges;
  if (n >= 0xFFFFFFFFull) {
    return Status::IoError(".rlg vertex count " + std::to_string(n) +
                           " does not fit 32-bit VertexId");
  }
  for (size_t s = 0; s < kNumSections; ++s) {
    const uint64_t offset = layout->section_offsets[s];
    const bool expected = s != kSecOrigIds || layout->has_orig_ids;
    if (!expected) {
      if (offset != 0) {
        return Status::IoError(".rlg orig-ids offset set without flag");
      }
      continue;
    }
    const uint64_t bytes = SectionBytes(s, n, m);
    if (offset < kRlgHeaderSize || offset % 8 != 0 || offset > size ||
        bytes > size - offset) {
      return Status::IoError(".rlg section " + std::to_string(s) +
                             " out of bounds");
    }
  }
  return Status::Ok();
}

// Validates the orig-ids section is a bijection on [0, n). O(n).
Status ValidateOrigIds(const VertexId* orig_ids, uint64_t n) {
  std::vector<uint64_t> seen((n + 63) / 64, 0);
  for (uint64_t v = 0; v < n; ++v) {
    const VertexId orig = orig_ids[v];
    if (orig >= n) {
      return Status::IoError(".rlg orig-ids entry out of range");
    }
    uint64_t& word = seen[orig >> 6];
    const uint64_t bit = 1ull << (orig & 63);
    if ((word & bit) != 0) {
      return Status::IoError(".rlg orig-ids section is not a bijection");
    }
    word |= bit;
  }
  return Status::Ok();
}

// A writable mapping of a freshly created file, unmapped on scope exit.
class ScopedRwMapping {
 public:
  static Result<ScopedRwMapping> Create(const std::string& path,
                                        uint64_t size) {
    const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
      return Status::IoError("cannot create " + path + ": " +
                             std::strerror(errno));
    }
    if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
      const int err = errno;
      ::close(fd);
      return Status::IoError("cannot size " + path + ": " +
                             std::strerror(err));
    }
    void* base =
        ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    ::close(fd);
    if (base == MAP_FAILED) {
      return Status::IoError("cannot map " + path + ": " +
                             std::strerror(errno));
    }
    return ScopedRwMapping(static_cast<uint8_t*>(base), size);
  }

  ScopedRwMapping(ScopedRwMapping&& other) noexcept
      : base_(std::exchange(other.base_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  ScopedRwMapping& operator=(ScopedRwMapping&& other) noexcept {
    std::swap(base_, other.base_);
    std::swap(size_, other.size_);
    return *this;
  }
  ScopedRwMapping(const ScopedRwMapping&) = delete;
  ScopedRwMapping& operator=(const ScopedRwMapping&) = delete;
  ~ScopedRwMapping() {
    if (base_ != nullptr) ::munmap(base_, size_);
  }

  uint8_t* data() { return base_; }

  template <typename T>
  T* Section(uint64_t offset) {
    return reinterpret_cast<T*>(base_ + offset);
  }

  Status Sync() {
    if (::msync(base_, size_, MS_SYNC) != 0) {
      return Status::IoError(std::string("msync failed: ") +
                             std::strerror(errno));
    }
    return Status::Ok();
  }

 private:
  ScopedRwMapping(uint8_t* base, uint64_t size) : base_(base), size_(size) {}
  uint8_t* base_ = nullptr;
  uint64_t size_ = 0;
};

Status RenameInto(const std::string& tmp, const std::string& path) {
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename " + tmp + " to " + path + ": " +
                           std::strerror(err));
  }
  return Status::Ok();
}

// Derives the in-CSR sections from the completed out-CSR sections, all
// inside the output mapping. Heap: one cursor array (8 bytes/vertex).
void FillInCsrFromOutCsr(const RlgLayout& layout, ScopedRwMapping* map) {
  const uint64_t n = layout.num_vertices;
  const uint64_t m = layout.num_edges;
  const VertexId* out_targets =
      map->Section<VertexId>(layout.section_offsets[kSecOutTargets]);
  const VertexId* edge_sources =
      map->Section<VertexId>(layout.section_offsets[kSecEdgeSources]);
  uint64_t* in_offsets =
      map->Section<uint64_t>(layout.section_offsets[kSecInOffsets]);
  VertexId* in_sources =
      map->Section<VertexId>(layout.section_offsets[kSecInSources]);
  EdgeId* in_edge_ids =
      map->Section<EdgeId>(layout.section_offsets[kSecInEdgeIds]);

  std::memset(in_offsets, 0, (n + 1) * sizeof(uint64_t));
  for (uint64_t e = 0; e < m; ++e) ++in_offsets[out_targets[e] + 1];
  for (uint64_t v = 0; v < n; ++v) in_offsets[v + 1] += in_offsets[v];
  std::vector<uint64_t> cursor(in_offsets, in_offsets + n);
  for (uint64_t e = 0; e < m; ++e) {
    const uint64_t pos = cursor[out_targets[e]]++;
    in_sources[pos] = edge_sources[e];
    in_edge_ids[pos] = e;
  }
}

}  // namespace

Status WriteRlgFile(const Graph& graph, const VertexPermutation* perm,
                    std::span<const VertexId> orig_of_new,
                    const std::string& path) {
  const VertexId n = graph.num_vertices();
  const uint64_t m = graph.num_edges();
  if (perm != nullptr && perm->size() != n) {
    return Status::InvalidArgument("permutation size mismatch");
  }
  if (!orig_of_new.empty() && orig_of_new.size() != n) {
    return Status::InvalidArgument("orig_of_new size mismatch");
  }
  // A non-identity relabel whose caller gave no explicit orig ids still
  // records how to get back to the input ids.
  const bool write_orig =
      !orig_of_new.empty() || perm != nullptr;
  const RlgLayout layout = ComputeLayout(n, m, write_orig);

  const std::string tmp = path + ".tmp";
  auto map_result = ScopedRwMapping::Create(tmp, layout.file_size);
  RLCUT_RETURN_IF_ERROR(map_result.status());
  ScopedRwMapping map = std::move(map_result).value();

  uint64_t* out_offsets =
      map.Section<uint64_t>(layout.section_offsets[kSecOutOffsets]);
  VertexId* out_targets =
      map.Section<VertexId>(layout.section_offsets[kSecOutTargets]);
  VertexId* edge_sources =
      map.Section<VertexId>(layout.section_offsets[kSecEdgeSources]);

  // Out-CSR grouped by new source id: purely sequential writes.
  out_offsets[0] = 0;
  uint64_t edge_cursor = 0;
  for (VertexId new_src = 0; new_src < n; ++new_src) {
    const VertexId old_src =
        perm != nullptr ? perm->old_of_new[new_src] : new_src;
    for (const VertexId old_dst : graph.OutNeighbors(old_src)) {
      out_targets[edge_cursor] =
          perm != nullptr ? perm->new_of_old[old_dst] : old_dst;
      edge_sources[edge_cursor] = new_src;
      ++edge_cursor;
    }
    out_offsets[new_src + 1] = edge_cursor;
  }
  RLCUT_CHECK_EQ(edge_cursor, m);

  FillInCsrFromOutCsr(layout, &map);

  if (write_orig) {
    VertexId* orig_ids =
        map.Section<VertexId>(layout.section_offsets[kSecOrigIds]);
    for (VertexId new_id = 0; new_id < n; ++new_id) {
      if (!orig_of_new.empty()) {
        orig_ids[new_id] = orig_of_new[new_id];
      } else {
        orig_ids[new_id] = perm->old_of_new[new_id];
      }
    }
  }

  FillHeader(layout, map.data());
  RLCUT_RETURN_IF_ERROR(map.Sync());
  return RenameInto(tmp, path);
}

Status SaveRlgGraph(const Graph& graph, const std::string& path) {
  return WriteRlgFile(graph, nullptr, {}, path);
}

Status ConvertEdgeListToRlg(const std::string& edge_list_path,
                            const std::string& rlg_path) {
  // Pass 1: count edges and find the max vertex id.
  std::ifstream in(edge_list_path);
  if (!in) {
    return Status::IoError("cannot open " + edge_list_path);
  }
  uint64_t m = 0;
  uint64_t max_id = 0;
  std::string line;
  size_t line_number = 0;
  auto parse = [&](uint64_t* src, uint64_t* dst, bool* is_edge) -> Status {
    *is_edge = false;
    size_t pos = 0;
    while (pos < line.size() &&
           (line[pos] == ' ' || line[pos] == '\t' || line[pos] == '\r')) {
      ++pos;
    }
    if (pos == line.size() || line[pos] == '#') return Status::Ok();
    char* end = nullptr;
    errno = 0;
    *src = std::strtoull(line.c_str() + pos, &end, 10);
    if (end == line.c_str() + pos || errno != 0) {
      return Status::IoError(edge_list_path + ":" +
                             std::to_string(line_number) +
                             ": malformed edge line: " + line);
    }
    errno = 0;
    const char* dst_start = end;
    *dst = std::strtoull(dst_start, &end, 10);
    if (end == dst_start || errno != 0) {
      return Status::IoError(edge_list_path + ":" +
                             std::to_string(line_number) +
                             ": malformed edge line: " + line);
    }
    if (*src >= 0xFFFFFFFFull || *dst >= 0xFFFFFFFFull) {
      return Status::OutOfRange(
          edge_list_path + ":" + std::to_string(line_number) +
          ": vertex id does not fit 32-bit VertexId (max 4294967294)");
    }
    *is_edge = true;
    return Status::Ok();
  };
  while (std::getline(in, line)) {
    ++line_number;
    uint64_t src = 0;
    uint64_t dst = 0;
    bool is_edge = false;
    RLCUT_RETURN_IF_ERROR(parse(&src, &dst, &is_edge));
    if (!is_edge) continue;
    ++m;
    max_id = std::max({max_id, src, dst});
  }
  const uint64_t n = m == 0 ? 1 : max_id + 1;

  const RlgLayout layout = ComputeLayout(n, m, /*has_orig_ids=*/false);
  const std::string tmp = rlg_path + ".tmp";
  auto map_result = ScopedRwMapping::Create(tmp, layout.file_size);
  RLCUT_RETURN_IF_ERROR(map_result.status());
  ScopedRwMapping map = std::move(map_result).value();

  uint64_t* out_offsets =
      map.Section<uint64_t>(layout.section_offsets[kSecOutOffsets]);
  VertexId* out_targets =
      map.Section<VertexId>(layout.section_offsets[kSecOutTargets]);
  VertexId* edge_sources =
      map.Section<VertexId>(layout.section_offsets[kSecEdgeSources]);

  auto rewind = [&]() -> Status {
    in.clear();
    in.seekg(0);
    if (!in) return Status::IoError("cannot rewind " + edge_list_path);
    line_number = 0;
    return Status::Ok();
  };

  // Pass 2: out-degree histogram straight into the mapped offsets.
  std::memset(out_offsets, 0, (n + 1) * sizeof(uint64_t));
  RLCUT_RETURN_IF_ERROR(rewind());
  uint64_t counted = 0;
  while (std::getline(in, line)) {
    ++line_number;
    uint64_t src = 0;
    uint64_t dst = 0;
    bool is_edge = false;
    RLCUT_RETURN_IF_ERROR(parse(&src, &dst, &is_edge));
    if (!is_edge) continue;
    ++counted;
    ++out_offsets[src + 1];
  }
  if (counted != m) {
    return Status::IoError(edge_list_path + ": file changed between passes");
  }
  for (uint64_t v = 0; v < n; ++v) out_offsets[v + 1] += out_offsets[v];

  // Pass 3: scatter edges through per-vertex cursors (the only heap
  // allocation proportional to the graph: 8 bytes per vertex).
  {
    std::vector<uint64_t> cursor(out_offsets, out_offsets + n);
    RLCUT_RETURN_IF_ERROR(rewind());
    while (std::getline(in, line)) {
      ++line_number;
      uint64_t src = 0;
      uint64_t dst = 0;
      bool is_edge = false;
      RLCUT_RETURN_IF_ERROR(parse(&src, &dst, &is_edge));
      if (!is_edge) continue;
      const uint64_t pos = cursor[src]++;
      out_targets[pos] = static_cast<VertexId>(dst);
      edge_sources[pos] = static_cast<VertexId>(src);
    }
  }

  FillInCsrFromOutCsr(layout, &map);
  FillHeader(layout, map.data());
  RLCUT_RETURN_IF_ERROR(map.Sync());
  return RenameInto(tmp, rlg_path);
}

RlgMapping::RlgMapping(uint8_t* base, size_t len)
    : base_(base), len_(len) {}

struct RlgMapping::Governor {
  std::thread thread;
  std::mutex mu;
  std::condition_variable cv;
  bool stop = false;
  std::atomic<uint64_t> drops{0};
};

RlgMapping::~RlgMapping() {
  if (governor_ != nullptr) {
    {
      std::lock_guard<std::mutex> lock(governor_->mu);
      governor_->stop = true;
    }
    governor_->cv.notify_all();
    governor_->thread.join();
  }
  if (base_ != nullptr) ::munmap(base_, len_);
}

void RlgMapping::DropPages() const {
  ::madvise(base_, len_, MADV_DONTNEED);
}

void RlgMapping::StartGovernor(size_t budget_bytes) {
  RLCUT_CHECK(governor_ == nullptr);
  governor_ = std::make_unique<Governor>();
  Governor* gov = governor_.get();
  gov->thread = std::thread([this, gov, budget_bytes] {
    std::unique_lock<std::mutex> lock(gov->mu);
    while (!gov->stop) {
      gov->cv.wait_for(lock, std::chrono::milliseconds(10),
                       [gov] { return gov->stop; });
      if (gov->stop) break;
      if (CurrentRssBytes() > budget_bytes) {
        DropPages();
        gov->drops.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
}

uint64_t RlgMapping::governor_drops() const {
  return governor_ == nullptr
             ? 0
             : governor_->drops.load(std::memory_order_relaxed);
}

Result<MmapGraph> MmapGraph::Open(const std::string& path,
                                  const Options& options) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("cannot stat " + path + ": " +
                           std::strerror(err));
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size < kRlgHeaderSize) {
    ::close(fd);
    return Status::IoError(path + " is not an rlcut .rlg graph file " +
                           "(too small)");
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) {
    return Status::IoError("cannot map " + path + ": " +
                           std::strerror(errno));
  }
  auto mapping = std::shared_ptr<RlgMapping>(
      new RlgMapping(static_cast<uint8_t*>(base), size));
  if (options.random_access) {
    ::madvise(base, size, MADV_RANDOM);
  }

  RlgLayout layout;
  RLCUT_RETURN_IF_ERROR(ParseHeader(mapping->data(), size, &layout));

  MmapGraph result;
  CsrView view;
  view.num_vertices = static_cast<VertexId>(layout.num_vertices);
  view.num_edges = layout.num_edges;
  const uint8_t* data = mapping->data();
  view.out_offsets = reinterpret_cast<const uint64_t*>(
      data + layout.section_offsets[kSecOutOffsets]);
  view.out_targets = reinterpret_cast<const VertexId*>(
      data + layout.section_offsets[kSecOutTargets]);
  view.edge_sources = reinterpret_cast<const VertexId*>(
      data + layout.section_offsets[kSecEdgeSources]);
  view.in_offsets = reinterpret_cast<const uint64_t*>(
      data + layout.section_offsets[kSecInOffsets]);
  view.in_sources = reinterpret_cast<const VertexId*>(
      data + layout.section_offsets[kSecInSources]);
  view.in_edge_ids = reinterpret_cast<const EdgeId*>(
      data + layout.section_offsets[kSecInEdgeIds]);
  if (layout.has_orig_ids) {
    result.orig_ids_ = reinterpret_cast<const VertexId*>(
        data + layout.section_offsets[kSecOrigIds]);
    RLCUT_RETURN_IF_ERROR(
        ValidateOrigIds(result.orig_ids_, layout.num_vertices));
  }
  result.graph_ = Graph::FromView(view, mapping);
  result.mapping_ = std::move(mapping);

  if (options.validate_structure) {
    RLCUT_RETURN_IF_ERROR(result.ValidateFully());
  }
  if (options.budget_bytes > 0) {
    result.mapping_->StartGovernor(options.budget_bytes);
  }
  return result;
}

Status MmapGraph::ValidateFully() const {
  const Graph& g = graph_;
  const CsrView& view = g.view();
  const uint64_t n = view.num_vertices;
  const uint64_t m = view.num_edges;
  if (view.out_offsets[0] != 0 || view.in_offsets[0] != 0) {
    return Status::IoError(".rlg offsets do not start at 0");
  }
  for (uint64_t v = 0; v < n; ++v) {
    if (view.out_offsets[v + 1] < view.out_offsets[v] ||
        view.in_offsets[v + 1] < view.in_offsets[v]) {
      return Status::IoError(".rlg offsets not monotone");
    }
  }
  if (view.out_offsets[n] != m || view.in_offsets[n] != m) {
    return Status::IoError(".rlg offsets do not sum to edge count");
  }
  for (uint64_t e = 0; e < m; ++e) {
    if (view.out_targets[e] >= n || view.edge_sources[e] >= n) {
      return Status::IoError(".rlg edge endpoint out of range");
    }
  }
  // edge_sources must agree with the out-CSR grouping.
  for (uint64_t v = 0; v < n; ++v) {
    for (uint64_t e = view.out_offsets[v]; e < view.out_offsets[v + 1]; ++e) {
      if (view.edge_sources[e] != v) {
        return Status::IoError(".rlg edge_sources inconsistent with out-CSR");
      }
    }
  }
  // The in-CSR must mirror the out-CSR's EdgeIds exactly.
  std::vector<uint64_t> seen((m + 63) / 64, 0);
  for (uint64_t v = 0; v < n; ++v) {
    for (uint64_t k = view.in_offsets[v]; k < view.in_offsets[v + 1]; ++k) {
      const EdgeId e = view.in_edge_ids[k];
      if (e >= m) {
        return Status::IoError(".rlg in_edge_ids entry out of range");
      }
      uint64_t& word = seen[e >> 6];
      const uint64_t bit = 1ull << (e & 63);
      if ((word & bit) != 0) {
        return Status::IoError(".rlg in_edge_ids entry repeated");
      }
      word |= bit;
      if (view.out_targets[e] != v ||
          view.edge_sources[e] != view.in_sources[k]) {
        return Status::IoError(".rlg in-CSR inconsistent with out-CSR");
      }
    }
  }
  return Status::Ok();
}

Result<GraphStore> GraphStore::OpenMapped(const std::string& path,
                                          const MmapGraph::Options& options) {
  auto mmap_result = MmapGraph::Open(path, options);
  RLCUT_RETURN_IF_ERROR(mmap_result.status());
  GraphStore store;
  store.mmap_ = std::move(mmap_result).value();
  store.graph_ = store.mmap_->graph();
  return store;
}

uint64_t DualCsrBytes(VertexId num_vertices, uint64_t num_edges) {
  const uint64_t n = num_vertices;
  const uint64_t m = num_edges;
  return 2 * (n + 1) * sizeof(uint64_t) +       // out/in offsets
         3 * m * sizeof(VertexId) +             // targets, sources x2
         m * sizeof(EdgeId);                    // in_edge_ids
}

uint64_t CurrentRssBytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long total = 0;  // NOLINT(google-runtime-int)
  unsigned long long resident = 0;  // NOLINT(google-runtime-int)
  const int fields = std::fscanf(f, "%llu %llu", &total, &resident);
  std::fclose(f);
  if (fields != 2) return 0;
  return static_cast<uint64_t>(resident) *
         static_cast<uint64_t>(::sysconf(_SC_PAGESIZE));
}

uint64_t PeakRssBytes() {
  struct rusage usage {};
  if (::getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
}

}  // namespace rlcut
