#ifndef RLCUT_ENGINE_VERTEX_PROGRAM_H_
#define RLCUT_ENGINE_VERTEX_PROGRAM_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "partition/workload.h"

namespace rlcut {

/// A PowerLyra-style vertex program executed by GasEngine. Vertex values
/// are doubles: ranks (PageRank), distances (SSSP), or partial-match
/// counts (subgraph isomorphism). The engine runs synchronous pull-based
/// GAS super-steps with change-driven activation.
class VertexProgram {
 public:
  virtual ~VertexProgram() = default;

  virtual std::string name() const = 0;

  /// Initial value of v.
  virtual double Init(VertexId v, const Graph& graph) const = 0;

  /// True if v starts in the changed set (drives iteration 0's traffic):
  /// every vertex for PageRank, only the source for SSSP.
  virtual bool InitiallyChanged(VertexId v, const Graph& graph) const = 0;

  /// Identity of the gather combiner (0 for sums, +inf for mins).
  virtual double GatherIdentity() const = 0;

  /// Contribution of in-neighbor u (current value `value_u`) to v.
  virtual double Gather(VertexId u, double value_u, VertexId v,
                        const Graph& graph) const = 0;

  /// Combines two gather contributions (sum or min).
  virtual double Combine(double a, double b) const = 0;

  /// Hook invoked by the engine at the start of iteration `iteration`
  /// (0-based); round-dependent programs (subgraph isomorphism) use it.
  virtual void OnIterationStart(int iteration) { (void)iteration; }

  /// New value of v given its old value and the combined gather result.
  virtual double Apply(VertexId v, double old_value, double gathered,
                       const Graph& graph) const = 0;

  /// Whether a value update is significant enough to propagate.
  virtual bool Changed(double old_value, double new_value) const = 0;

  /// True if every vertex must be recomputed every super-step (PageRank,
  /// subgraph isomorphism: a vertex's new value can differ even when no
  /// in-neighbor changed, e.g. the damping re-mix or a label window).
  /// False enables frontier-driven activation (SSSP).
  virtual bool RecomputeAllEachIteration() const = 0;

  /// Traffic profile consistent with what the engine emits; this is what
  /// partitioners optimize against (see Workload).
  virtual Workload TrafficModel() const = 0;

  /// Hard iteration cap for the engine (e.g., PageRank's fixed rounds).
  virtual int MaxIterations() const = 0;
};

/// PageRank with damping 0.85 over in-edges.
std::unique_ptr<VertexProgram> MakePageRank(int iterations = 10,
                                            double damping = 0.85);

/// Single-source shortest paths with unit edge weights.
std::unique_ptr<VertexProgram> MakeSssp(VertexId source, int max_rounds = 64);

/// Subgraph isomorphism as labeled-path embedding counting: vertices are
/// labeled id % num_labels and the program counts directed paths whose
/// label sequence matches `pattern` (one extension round per pattern
/// position). Exact counts are verifiable against a single-machine
/// reference (see tests).
std::unique_ptr<VertexProgram> MakeSubgraphIsomorphism(
    std::vector<int> pattern = {0, 1, 2, 1}, int num_labels = 4);

/// Connected components by min-label propagation. Labels propagate along
/// in-edges (pull), so for undirected/weak components run it on
/// Symmetrize(graph); on a directed graph it computes in-reachability
/// minima.
std::unique_ptr<VertexProgram> MakeConnectedComponents(int max_rounds = 128);

/// SSSP with deterministic pseudo-random integer edge weights
/// w(u,v) = 1 + Hash(u, v) % max_weight (label-correcting, exact).
std::unique_ptr<VertexProgram> MakeWeightedSssp(VertexId source,
                                                uint32_t max_weight = 8,
                                                int max_rounds = 256);

/// The weight function used by MakeWeightedSssp, exposed so reference
/// implementations and tests agree with the program.
double WeightedSsspEdgeWeight(VertexId u, VertexId v, uint32_t max_weight);

}  // namespace rlcut

#endif  // RLCUT_ENGINE_VERTEX_PROGRAM_H_
