#include "engine/gas_engine.h"

#include <algorithm>
#include <bit>

#include "cloud/flow_simulator.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rlcut {
namespace {

template <typename Fn>
inline void ForEachDc(uint64_t mask, Fn&& fn) {
  while (mask != 0) {
    const int r = std::countr_zero(mask);
    fn(static_cast<DcId>(r));
    mask &= mask - 1;
  }
}

}  // namespace

GasEngine::GasEngine(const PartitionState* state, GasEngineOptions options)
    : state_(state), options_(options) {
  RLCUT_CHECK(state_ != nullptr);
}

RunResult GasEngine::Run(VertexProgram* program) const {
  RLCUT_CHECK(program != nullptr);
  obs::TraceSpan run_span("gas/run", "engine");
  obs::MetricsRegistry& registry = obs::DefaultRegistry();
  obs::Counter* superstep_counter = registry.GetCounter("engine.supersteps");
  obs::Gauge* wan_bytes_total = registry.GetGauge("engine.wan_bytes");
  obs::Histogram* superstep_seconds =
      obs::DetailedMetricsEnabled()
          ? registry.GetHistogram("engine.superstep_transfer_seconds")
          : nullptr;
  const Graph& graph = state_->graph();
  const Topology& topo = state_->topology();
  const VertexId n = graph.num_vertices();
  const int num_dcs = state_->num_dcs();
  const Workload traffic = program->TrafficModel();

  RunResult result;
  result.values.resize(n);
  std::vector<VertexId> changed_list;
  for (VertexId v = 0; v < n; ++v) {
    result.values[v] = program->Init(v, graph);
    if (program->InitiallyChanged(v, graph)) changed_list.push_back(v);
  }

  std::vector<uint8_t> is_candidate(n, 0);
  std::vector<VertexId> candidates;
  std::vector<std::pair<VertexId, double>> updates;

  // Per-(src,dst) byte matrices, used only by the flow-level timing.
  const bool flow_level = options_.timing == TimingModel::kFlowLevel;
  std::vector<double> gather_pair;
  std::vector<double> apply_pair;
  FlowSimulator flow_simulator(&topo);
  auto pair_index = [num_dcs](DcId src, DcId dst) {
    return static_cast<size_t>(src) * num_dcs + dst;
  };

  auto apply_bytes = [&](VertexId v) {
    return traffic.apply_base_bytes +
           traffic.apply_bytes_per_out_edge * graph.OutDegree(v);
  };

  for (int iter = 0; iter < program->MaxIterations(); ++iter) {
    // Early termination is only sound for frontier-driven programs: a
    // round-dependent Apply (SI) can produce changes after a quiet round.
    if (!program->RecomputeAllEachIteration() && changed_list.empty()) break;
    obs::TraceSpan superstep_span("gas/superstep", "engine");
    superstep_span.AddArg("iteration", iter);
    program->OnIterationStart(iter);

    // Scatter: changed vertices activate their out-neighbors. Programs
    // whose apply result can change without an in-neighbor change
    // (PageRank's damping re-mix, SI's per-round label window) recompute
    // every vertex each super-step instead.
    candidates.clear();
    if (program->RecomputeAllEachIteration()) {
      candidates.resize(n);
      for (VertexId v = 0; v < n; ++v) candidates[v] = v;
    } else {
      for (VertexId v : changed_list) {
        for (VertexId u : graph.OutNeighbors(v)) {
          if (!is_candidate[u]) {
            is_candidate[u] = 1;
            candidates.push_back(u);
          }
        }
      }
    }
    if (candidates.empty()) break;

    IterationTraffic t;
    t.gather_up.assign(num_dcs, 0);
    t.gather_down.assign(num_dcs, 0);
    t.apply_up.assign(num_dcs, 0);
    t.apply_down.assign(num_dcs, 0);
    if (flow_level) {
      gather_pair.assign(static_cast<size_t>(num_dcs) * num_dcs, 0.0);
      apply_pair.assign(static_cast<size_t>(num_dcs) * num_dcs, 0.0);
    }

    // Gather stage: high-degree candidates pull one aggregated message
    // per mirror DC holding in-edges.
    for (VertexId v : candidates) {
      if (!state_->is_high_degree(v)) continue;
      const uint64_t gather_mirrors = state_->GatherMirrorMask(v);
      if (gather_mirrors == 0) continue;
      const DcId master = state_->master(v);
      ForEachDc(gather_mirrors, [&](DcId r) {
        t.gather_up[r] += traffic.gather_base_bytes;
        t.gather_down[master] += traffic.gather_base_bytes;
        if (flow_level) {
          gather_pair[pair_index(r, master)] += traffic.gather_base_bytes;
        }
      });
    }

    // Compute new values synchronously (against pre-update values).
    updates.clear();
    for (VertexId v : candidates) {
      double gathered = program->GatherIdentity();
      for (VertexId u : graph.InNeighbors(v)) {
        gathered = program->Combine(
            gathered, program->Gather(u, result.values[u], v, graph));
      }
      const double new_value =
          program->Apply(v, result.values[v], gathered, graph);
      if (program->Changed(result.values[v], new_value)) {
        updates.emplace_back(v, new_value);
      }
      is_candidate[v] = 0;
    }

    // Apply stage: commit and broadcast to mirrors.
    changed_list.clear();
    for (const auto& [v, new_value] : updates) {
      result.values[v] = new_value;
      changed_list.push_back(v);
      const uint64_t mirrors = state_->MirrorMask(v);
      if (mirrors == 0) continue;
      const DcId master = state_->master(v);
      const double bytes = apply_bytes(v);
      ForEachDc(mirrors, [&](DcId r) {
        t.apply_up[master] += bytes;
        t.apply_down[r] += bytes;
        if (flow_level) {
          apply_pair[pair_index(master, r)] += bytes;
        }
      });
    }
    t.vertices_updated = updates.size();

    // Eq. 1-3 for this super-step.
    double t_gather = 0;
    double t_apply = 0;
    double upload_bytes_cost = 0;
    double wan_bytes = 0;
    for (DcId r = 0; r < num_dcs; ++r) {
      const double up = topo.Uplink(r) * 1e9;
      const double down = topo.Downlink(r) * 1e9;
      t_gather = std::max(
          t_gather, std::max(t.gather_down[r] / down, t.gather_up[r] / up));
      t_apply = std::max(
          t_apply, std::max(t.apply_up[r] / up, t.apply_down[r] / down));
      upload_bytes_cost +=
          topo.Price(r) * (t.gather_up[r] + t.apply_up[r]) / 1e9;
      wan_bytes += t.gather_up[r] + t.apply_up[r];
    }
    if (flow_level) {
      auto to_flows = [&](const std::vector<double>& pair_bytes) {
        std::vector<FlowTransfer> flows;
        for (DcId src = 0; src < num_dcs; ++src) {
          for (DcId dst = 0; dst < num_dcs; ++dst) {
            const double bytes = pair_bytes[pair_index(src, dst)];
            if (bytes > 0) flows.push_back({src, dst, bytes});
          }
        }
        return flows;
      };
      t.transfer_seconds =
          flow_simulator.SimulateMakespan(to_flows(gather_pair)) +
          flow_simulator.SimulateMakespan(to_flows(apply_pair));
    } else {
      t.transfer_seconds = t_gather + t_apply;
    }
    t.upload_cost = upload_bytes_cost;

    superstep_span.AddArg("vertices_updated",
                          static_cast<double>(t.vertices_updated));
    superstep_span.AddArg("transfer_seconds", t.transfer_seconds);
    superstep_counter->Increment();
    wan_bytes_total->Add(wan_bytes);
    if (superstep_seconds != nullptr) {
      superstep_seconds->Observe(t.transfer_seconds);
    }

    result.total_transfer_seconds += t.transfer_seconds;
    result.total_upload_cost += t.upload_cost;
    result.total_wan_bytes += wan_bytes;
    result.iterations.push_back(std::move(t));
    ++result.iterations_executed;
  }
  run_span.AddArg("iterations",
                  static_cast<double>(result.iterations_executed));
  run_span.AddArg("transfer_seconds", result.total_transfer_seconds);
  return result;
}

}  // namespace rlcut
