#include "engine/async_engine.h"

#include <bit>
#include <cmath>
#include <limits>
#include <queue>
#include <unordered_map>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rlcut {
namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

// Safety valve against runaway event storms (far above any test load).
constexpr uint64_t kMaxEvents = 200'000'000;

template <typename Fn>
inline void ForEachDc(uint64_t mask, Fn&& fn) {
  while (mask != 0) {
    const int r = std::countr_zero(mask);
    fn(static_cast<DcId>(r));
    mask &= mask - 1;
  }
}

enum class MessageKind : uint8_t {
  /// master(v) -> mirror DC: v's new value (apply-stage sync).
  kSyncToMirror,
  /// mirror DC -> master(w): a relaxed candidate for w (gather).
  kGatherToMaster,
};

struct Event {
  double time;
  uint64_t sequence;  // FIFO tie-break for equal timestamps
  MessageKind kind;
  VertexId vertex;
  DcId dc;  // destination DC
  double value;

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    return sequence > other.sequence;
  }
};

// (vertex, dc) -> 64-bit key; dc < 64 by kMaxDataCenters.
inline uint64_t ReplicaKey(VertexId v, DcId r) {
  return (static_cast<uint64_t>(v) << 6) | static_cast<uint64_t>(r);
}

}  // namespace

AsyncGasEngine::AsyncGasEngine(const PartitionState* state)
    : state_(state) {
  RLCUT_CHECK(state_ != nullptr);
}

AsyncRunResult AsyncGasEngine::Run(VertexProgram* program) const {
  RLCUT_CHECK(program != nullptr);
  RLCUT_CHECK(program->GatherIdentity() == kInfinity)
      << "AsyncGasEngine requires a monotone (min-combining) program";
  obs::TraceSpan run_span("async/run", "engine");

  const Graph& graph = state_->graph();
  const Topology& topo = state_->topology();
  const VertexId n = graph.num_vertices();
  const int num_dcs = state_->num_dcs();
  const Workload traffic = program->TrafficModel();

  AsyncRunResult result;
  result.values.resize(n);

  // Per-link FIFO serialization clocks.
  std::vector<double> uplink_free(num_dcs, 0);
  std::vector<double> downlink_free(num_dcs, 0);

  // Best value each (vertex, dc) pair has seen/forwarded, to suppress
  // redundant messages. Masters use result.values directly.
  std::unordered_map<uint64_t, double> mirror_value;
  std::unordered_map<uint64_t, double> forwarded;

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
      events;
  uint64_t sequence = 0;

  auto send = [&](MessageKind kind, VertexId v, DcId from, DcId to,
                  double value, double now, double bytes) {
    double arrival = now;
    if (from != to) {
      const double up_start = std::max(now, uplink_free[from]);
      const double up_end = up_start + bytes / (topo.Uplink(from) * 1e9);
      uplink_free[from] = up_end;
      const double down_start = std::max(up_end, downlink_free[to]);
      arrival = down_start + bytes / (topo.Downlink(to) * 1e9);
      downlink_free[to] = arrival;
      result.total_bytes += bytes;
    } else {
      ++result.local_messages;
    }
    ++result.messages;
    events.push({arrival, sequence++, kind, v, to, value});
  };

  auto apply_bytes = [&](VertexId v) {
    return traffic.apply_base_bytes +
           traffic.apply_bytes_per_out_edge * graph.OutDegree(v);
  };

  // Relaxes w with `candidate` at DC `at`: forwards a gather message to
  // w's master unless this DC already forwarded something at least as
  // good. A local master is updated through the same event path with
  // zero latency, keeping the control flow single-shaped.
  auto relax = [&](VertexId w, double candidate, DcId at, double now) {
    if (!std::isfinite(candidate)) return;
    const uint64_t key = ReplicaKey(w, at);
    auto [it, inserted] = forwarded.try_emplace(key, kInfinity);
    if (candidate >= it->second) return;
    it->second = candidate;
    send(MessageKind::kGatherToMaster, w, at, state_->master(w), candidate,
         now, traffic.gather_base_bytes);
  };

  // Processes v's out-edges located in DC `at` against value `value`.
  auto scatter_local_edges = [&](VertexId v, double value, DcId at,
                                 double now) {
    const EdgeId begin = graph.OutEdgeBegin(v);
    const EdgeId end = graph.OutEdgeEnd(v);
    auto neighbors = graph.OutNeighbors(v);
    for (EdgeId e = begin; e < end; ++e) {
      if (state_->edge_dc(e) != at) continue;
      const VertexId w = neighbors[e - begin];
      relax(w, program->Gather(v, value, w, graph), at, now);
    }
  };

  // Initialization: master values; initially-changed vertices scatter.
  for (VertexId v = 0; v < n; ++v) {
    result.values[v] = program->Init(v, graph);
  }
  for (VertexId v = 0; v < n; ++v) {
    if (!program->InitiallyChanged(v, graph)) continue;
    const DcId master = state_->master(v);
    scatter_local_edges(v, result.values[v], master, 0.0);
    ForEachDc(state_->MirrorMask(v), [&](DcId r) {
      send(MessageKind::kSyncToMirror, v, master, r, result.values[v], 0.0,
           apply_bytes(v));
    });
  }

  uint64_t processed = 0;
  while (!events.empty()) {
    RLCUT_CHECK_LT(++processed, kMaxEvents) << "async event storm";
    const Event event = events.top();
    events.pop();
    result.completion_seconds =
        std::max(result.completion_seconds, event.time);

    switch (event.kind) {
      case MessageKind::kSyncToMirror: {
        const uint64_t key = ReplicaKey(event.vertex, event.dc);
        auto [it, inserted] = mirror_value.try_emplace(key, kInfinity);
        if (event.value >= it->second) break;  // stale update
        it->second = event.value;
        scatter_local_edges(event.vertex, event.value, event.dc,
                            event.time);
        break;
      }
      case MessageKind::kGatherToMaster: {
        const VertexId w = event.vertex;
        const double applied =
            program->Apply(w, result.values[w], event.value, graph);
        if (!program->Changed(result.values[w], applied)) break;
        result.values[w] = applied;
        const DcId master = state_->master(w);
        scatter_local_edges(w, applied, master, event.time);
        ForEachDc(state_->MirrorMask(w), [&](DcId r) {
          send(MessageKind::kSyncToMirror, w, master, r, applied,
               event.time, apply_bytes(w));
        });
        break;
      }
    }
  }
  run_span.AddArg("messages", static_cast<double>(result.messages));
  run_span.AddArg("completion_seconds", result.completion_seconds);
  obs::MetricsRegistry& registry = obs::DefaultRegistry();
  registry.GetCounter("async.runs")->Increment();
  registry.GetCounter("async.messages")->Increment(result.messages);
  registry.GetGauge("async.total_bytes")->Add(result.total_bytes);
  return result;
}

}  // namespace rlcut
