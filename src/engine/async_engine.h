#ifndef RLCUT_ENGINE_ASYNC_ENGINE_H_
#define RLCUT_ENGINE_ASYNC_ENGINE_H_

#include <cstdint>
#include <vector>

#include "engine/vertex_program.h"
#include "partition/partition_state.h"

namespace rlcut {

/// Result of an asynchronous run.
struct AsyncRunResult {
  /// Final master values (identical to the synchronous fixpoint for
  /// monotone programs).
  std::vector<double> values;
  /// Simulated completion time: delivery of the last message, seconds.
  double completion_seconds = 0;
  uint64_t messages = 0;
  double total_bytes = 0;
  /// Messages that stayed within one DC (free, latency-less).
  uint64_t local_messages = 0;
};

/// Asynchronous GAS execution (PowerLyra's async mode): no global
/// barriers — every value improvement propagates as soon as the links
/// deliver it, and each DC computes independently.
///
/// Supported programs are the *monotone* ones (min-combiner with
/// Apply = min(old, gathered): SSSP, weighted SSSP, connected
/// components), for which asynchronous execution provably reaches the
/// same fixpoint as the synchronous schedule. The engine checks the
/// gate via GatherIdentity() == +infinity.
///
/// Timing: an event-driven simulation with per-DC uplink/downlink FIFO
/// serialization — a message occupies its source uplink for
/// bytes/U_src, then the destination downlink for bytes/D_dst, queued
/// behind earlier messages on each. Intra-DC messages are free. This is
/// the barrier-free counterpart of the synchronous engine's Eq. 1
/// stage times: comparing the two quantifies what BSP barriers cost on
/// heterogeneous WANs (see bench_async_vs_sync).
class AsyncGasEngine {
 public:
  explicit AsyncGasEngine(const PartitionState* state);

  /// Runs the program to quiescence. CHECK-fails on non-monotone
  /// programs (PageRank, SI).
  AsyncRunResult Run(VertexProgram* program) const;

 private:
  const PartitionState* state_;
};

}  // namespace rlcut

#endif  // RLCUT_ENGINE_ASYNC_ENGINE_H_
