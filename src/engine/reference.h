#ifndef RLCUT_ENGINE_REFERENCE_H_
#define RLCUT_ENGINE_REFERENCE_H_

#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace rlcut {

/// Single-machine reference implementations used to verify the GAS
/// engine's results regardless of partitioning (tests + examples).

/// Power-iteration PageRank over in-edges with dangling mass dropped,
/// matching MakePageRank's semantics.
std::vector<double> ReferencePageRank(const Graph& graph, int iterations,
                                      double damping = 0.85);

/// BFS distances with unit weights (infinity for unreachable), matching
/// MakeSssp's semantics.
std::vector<double> ReferenceSssp(const Graph& graph, VertexId source);

/// Number of directed paths whose vertex labels (id % num_labels) match
/// `pattern`, matching MakeSubgraphIsomorphism's final aggregate.
double ReferencePathMatchCount(const Graph& graph,
                               const std::vector<int>& pattern,
                               int num_labels);

/// Connected-component labels (min vertex id per component) via
/// union-find over the graph's edges treated as undirected; matches
/// MakeConnectedComponents run on Symmetrize(graph).
std::vector<double> ReferenceConnectedComponents(const Graph& graph);

/// Dijkstra with the WeightedSsspEdgeWeight function, matching
/// MakeWeightedSssp.
std::vector<double> ReferenceWeightedSssp(const Graph& graph,
                                          VertexId source,
                                          uint32_t max_weight);

}  // namespace rlcut

#endif  // RLCUT_ENGINE_REFERENCE_H_
