#ifndef RLCUT_ENGINE_GAS_ENGINE_H_
#define RLCUT_ENGINE_GAS_ENGINE_H_

#include <vector>

#include "engine/vertex_program.h"
#include "partition/partition_state.h"

namespace rlcut {

/// Inter-DC traffic of one GAS super-step, and its Eq. 1 transfer time.
struct IterationTraffic {
  /// Per-DC uplink/downlink bytes, gather and apply stages.
  std::vector<double> gather_up;
  std::vector<double> gather_down;
  std::vector<double> apply_up;
  std::vector<double> apply_down;
  double transfer_seconds = 0;
  double upload_cost = 0;
  uint64_t vertices_updated = 0;
};

/// Result of executing a vertex program over a partitioned graph.
struct RunResult {
  std::vector<double> values;  // final vertex values (at masters)
  std::vector<IterationTraffic> iterations;
  double total_transfer_seconds = 0;
  double total_upload_cost = 0;
  double total_wan_bytes = 0;
  int iterations_executed = 0;
};

/// How the engine prices a super-step's transfer time.
enum class TimingModel {
  /// Eq. 1-3 closed form: per-DC link loads, max over DCs per stage.
  kClosedForm,
  /// Flow-level max-min fair simulation over the same uplink/downlink
  /// capacities (FlowSimulator); validates the closed form.
  kFlowLevel,
};

/// Engine configuration.
struct GasEngineOptions {
  TimingModel timing = TimingModel::kClosedForm;
};

/// Simulated PowerLyra runtime: executes a VertexProgram synchronously
/// over the replica layout of a PartitionState and accounts the
/// inter-DC traffic each super-step actually generates.
///
/// Differentiated computation (Sec. III-B):
///  * high-degree vertices gather from mirrors (each mirror DC holding
///    in-edges uploads one aggregated message; the master downloads all)
///    and the master broadcasts the applied value to every mirror;
///  * low-degree vertices compute locally at the master (their in-edges
///    are co-located by the placement rules) and only broadcast in the
///    apply stage.
///
/// Activation is change-driven: a vertex recomputes only if one of its
/// in-neighbors changed in the previous super-step. Algorithm results are
/// exact (values are globally consistent after every apply barrier), so
/// tests can verify them against single-machine references.
class GasEngine {
 public:
  /// `state` provides the replica layout; it is not modified.
  explicit GasEngine(const PartitionState* state,
                     GasEngineOptions options = {});

  /// Runs the program to convergence or its MaxIterations.
  RunResult Run(VertexProgram* program) const;

 private:
  const PartitionState* state_;
  GasEngineOptions options_;
};

}  // namespace rlcut

#endif  // RLCUT_ENGINE_GAS_ENGINE_H_
