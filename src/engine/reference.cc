#include "engine/reference.h"

#include <deque>
#include <limits>
#include <numeric>
#include <queue>

#include "common/logging.h"
#include "engine/vertex_program.h"

namespace rlcut {

std::vector<double> ReferencePageRank(const Graph& graph, int iterations,
                                      double damping) {
  const VertexId n = graph.num_vertices();
  std::vector<double> rank(n, n > 0 ? 1.0 / n : 0.0);
  std::vector<double> next(n, 0.0);
  for (int iter = 0; iter < iterations; ++iter) {
    for (VertexId v = 0; v < n; ++v) {
      double sum = 0;
      for (VertexId u : graph.InNeighbors(v)) {
        const uint32_t out_deg = graph.OutDegree(u);
        if (out_deg > 0) sum += rank[u] / out_deg;
      }
      next[v] = (1.0 - damping) / n + damping * sum;
    }
    rank.swap(next);
  }
  return rank;
}

std::vector<double> ReferenceSssp(const Graph& graph, VertexId source) {
  const VertexId n = graph.num_vertices();
  RLCUT_CHECK_LT(source, n);
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  dist[source] = 0;
  std::deque<VertexId> queue{source};
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop_front();
    for (VertexId u : graph.OutNeighbors(v)) {
      if (dist[v] + 1.0 < dist[u]) {
        dist[u] = dist[v] + 1.0;
        queue.push_back(u);
      }
    }
  }
  return dist;
}

double ReferencePathMatchCount(const Graph& graph,
                               const std::vector<int>& pattern,
                               int num_labels) {
  RLCUT_CHECK_GE(pattern.size(), 1u);
  const VertexId n = graph.num_vertices();
  std::vector<double> count(n, 0.0);
  for (VertexId v = 0; v < n; ++v) {
    if (static_cast<int>(v % num_labels) == pattern[0]) count[v] = 1.0;
  }
  std::vector<double> next(n, 0.0);
  for (size_t k = 1; k < pattern.size(); ++k) {
    for (VertexId v = 0; v < n; ++v) {
      if (static_cast<int>(v % num_labels) != pattern[k]) {
        next[v] = 0;
        continue;
      }
      double sum = 0;
      for (VertexId u : graph.InNeighbors(v)) sum += count[u];
      next[v] = sum;
    }
    count.swap(next);
  }
  double total = 0;
  for (double c : count) total += c;
  return total;
}

}  // namespace rlcut

namespace rlcut {
namespace {

VertexId Find(std::vector<VertexId>& parent, VertexId x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}

}  // namespace

std::vector<double> ReferenceConnectedComponents(const Graph& graph) {
  const VertexId n = graph.num_vertices();
  std::vector<VertexId> parent(n);
  std::iota(parent.begin(), parent.end(), 0u);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const Edge edge = graph.GetEdge(e);
    const VertexId a = Find(parent, edge.src);
    const VertexId b = Find(parent, edge.dst);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  }
  std::vector<double> labels(n);
  for (VertexId v = 0; v < n; ++v) {
    labels[v] = static_cast<double>(Find(parent, v));
  }
  return labels;
}

std::vector<double> ReferenceWeightedSssp(const Graph& graph,
                                          VertexId source,
                                          uint32_t max_weight) {
  const VertexId n = graph.num_vertices();
  RLCUT_CHECK_LT(source, n);
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  dist[source] = 0;
  using Entry = std::pair<double, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  queue.push({0.0, source});
  while (!queue.empty()) {
    const auto [d, v] = queue.top();
    queue.pop();
    if (d > dist[v]) continue;
    for (VertexId u : graph.OutNeighbors(v)) {
      const double nd = d + WeightedSsspEdgeWeight(v, u, max_weight);
      if (nd < dist[u]) {
        dist[u] = nd;
        queue.push({nd, u});
      }
    }
  }
  return dist;
}

}  // namespace rlcut
