#include "engine/vertex_program.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/random.h"

namespace rlcut {
namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

class PageRankProgram : public VertexProgram {
 public:
  PageRankProgram(int iterations, double damping)
      : iterations_(iterations), damping_(damping) {
    RLCUT_CHECK_GT(iterations, 0);
    RLCUT_CHECK_GT(damping, 0.0);
    RLCUT_CHECK_LT(damping, 1.0);
  }

  std::string name() const override { return "PR"; }

  double Init(VertexId, const Graph& graph) const override {
    return 1.0 / std::max<VertexId>(1, graph.num_vertices());
  }

  bool InitiallyChanged(VertexId, const Graph&) const override {
    return true;
  }

  double GatherIdentity() const override { return 0.0; }

  double Gather(VertexId u, double value_u, VertexId,
                const Graph& graph) const override {
    const uint32_t out_deg = graph.OutDegree(u);
    // Dangling vertices contribute no rank mass (standard simplification;
    // the residual mass is not redistributed).
    return out_deg == 0 ? 0.0 : value_u / out_deg;
  }

  double Combine(double a, double b) const override { return a + b; }

  double Apply(VertexId, double, double gathered,
               const Graph& graph) const override {
    return (1.0 - damping_) / std::max<VertexId>(1, graph.num_vertices()) +
           damping_ * gathered;
  }

  bool Changed(double old_value, double new_value) const override {
    return std::fabs(old_value - new_value) > 1e-12;
  }

  bool RecomputeAllEachIteration() const override { return true; }

  Workload TrafficModel() const override {
    return Workload::PageRank(iterations_);
  }

  int MaxIterations() const override { return iterations_; }

 private:
  int iterations_;
  double damping_;
};

class SsspProgram : public VertexProgram {
 public:
  SsspProgram(VertexId source, int max_rounds)
      : source_(source), max_rounds_(max_rounds) {
    RLCUT_CHECK_GT(max_rounds, 0);
  }

  std::string name() const override { return "SSSP"; }

  double Init(VertexId v, const Graph&) const override {
    return v == source_ ? 0.0 : kInfinity;
  }

  bool InitiallyChanged(VertexId v, const Graph&) const override {
    return v == source_;
  }

  double GatherIdentity() const override { return kInfinity; }

  double Gather(VertexId, double value_u, VertexId,
                const Graph&) const override {
    return value_u + 1.0;  // unit edge weights
  }

  double Combine(double a, double b) const override {
    return std::min(a, b);
  }

  double Apply(VertexId, double old_value, double gathered,
               const Graph&) const override {
    return std::min(old_value, gathered);
  }

  bool Changed(double old_value, double new_value) const override {
    return new_value < old_value;
  }

  bool RecomputeAllEachIteration() const override { return false; }

  Workload TrafficModel() const override {
    return Workload::Sssp(max_rounds_);
  }

  int MaxIterations() const override { return max_rounds_; }

 private:
  VertexId source_;
  int max_rounds_;
};

class SubgraphIsomorphismProgram : public VertexProgram {
 public:
  SubgraphIsomorphismProgram(std::vector<int> pattern, int num_labels)
      : pattern_(std::move(pattern)), num_labels_(num_labels) {
    RLCUT_CHECK_GE(pattern_.size(), 2u);
    RLCUT_CHECK_GT(num_labels_, 0);
    for (int label : pattern_) {
      RLCUT_CHECK_GE(label, 0);
      RLCUT_CHECK_LT(label, num_labels_);
    }
  }

  std::string name() const override { return "SI"; }

  int Label(VertexId v) const { return static_cast<int>(v % num_labels_); }

  double Init(VertexId v, const Graph&) const override {
    // Partial matches of length 0 ending at v.
    return Label(v) == pattern_[0] ? 1.0 : 0.0;
  }

  bool InitiallyChanged(VertexId v, const Graph&) const override {
    return Label(v) == pattern_[0];
  }

  double GatherIdentity() const override { return 0.0; }

  double Gather(VertexId, double value_u, VertexId,
                const Graph&) const override {
    return value_u;
  }

  double Combine(double a, double b) const override { return a + b; }

  void OnIterationStart(int iteration) override {
    // Engine iteration i performs pattern extension to position i+1.
    position_ = iteration + 1;
  }

  double Apply(VertexId v, double, double gathered,
               const Graph&) const override {
    if (position_ >= static_cast<int>(pattern_.size())) return 0.0;
    return Label(v) == pattern_[position_] ? gathered : 0.0;
  }

  bool Changed(double old_value, double new_value) const override {
    return old_value != new_value;
  }

  bool RecomputeAllEachIteration() const override { return true; }

  Workload TrafficModel() const override {
    return Workload::SubgraphIsomorphism(
        static_cast<int>(pattern_.size()) - 1);
  }

  int MaxIterations() const override {
    return static_cast<int>(pattern_.size()) - 1;
  }

 private:
  std::vector<int> pattern_;
  int num_labels_;
  int position_ = 1;
};

class ConnectedComponentsProgram : public VertexProgram {
 public:
  explicit ConnectedComponentsProgram(int max_rounds)
      : max_rounds_(max_rounds) {
    RLCUT_CHECK_GT(max_rounds, 0);
  }

  std::string name() const override { return "CC"; }

  double Init(VertexId v, const Graph&) const override {
    return static_cast<double>(v);
  }

  bool InitiallyChanged(VertexId, const Graph&) const override {
    return true;  // every vertex starts by broadcasting its own label
  }

  double GatherIdentity() const override { return kInfinity; }

  double Gather(VertexId, double value_u, VertexId,
                const Graph&) const override {
    return value_u;
  }

  double Combine(double a, double b) const override {
    return std::min(a, b);
  }

  double Apply(VertexId, double old_value, double gathered,
               const Graph&) const override {
    return std::min(old_value, gathered);
  }

  bool Changed(double old_value, double new_value) const override {
    return new_value < old_value;
  }

  bool RecomputeAllEachIteration() const override { return false; }

  Workload TrafficModel() const override {
    Workload w;
    w.name = "CC";
    w.apply_base_bytes = 8;   // component label
    w.gather_base_bytes = 8;  // min-label aggregate
    // Label propagation activity decays geometrically after the first
    // few rounds on small-diameter graphs.
    w.activity.resize(max_rounds_);
    for (int i = 0; i < max_rounds_; ++i) {
      w.activity[i] = std::pow(0.7, i);
    }
    return w;
  }

  int MaxIterations() const override { return max_rounds_; }

 private:
  int max_rounds_;
};

class WeightedSsspProgram : public VertexProgram {
 public:
  WeightedSsspProgram(VertexId source, uint32_t max_weight, int max_rounds)
      : source_(source), max_weight_(max_weight), max_rounds_(max_rounds) {
    RLCUT_CHECK_GT(max_weight, 0u);
    RLCUT_CHECK_GT(max_rounds, 0);
  }

  std::string name() const override { return "WSSSP"; }

  double Init(VertexId v, const Graph&) const override {
    return v == source_ ? 0.0 : kInfinity;
  }

  bool InitiallyChanged(VertexId v, const Graph&) const override {
    return v == source_;
  }

  double GatherIdentity() const override { return kInfinity; }

  double Gather(VertexId u, double value_u, VertexId v,
                const Graph&) const override {
    return value_u + WeightedSsspEdgeWeight(u, v, max_weight_);
  }

  double Combine(double a, double b) const override {
    return std::min(a, b);
  }

  double Apply(VertexId, double old_value, double gathered,
               const Graph&) const override {
    return std::min(old_value, gathered);
  }

  bool Changed(double old_value, double new_value) const override {
    return new_value < old_value;
  }

  bool RecomputeAllEachIteration() const override { return false; }

  Workload TrafficModel() const override {
    return Workload::Sssp(max_rounds_);
  }

  int MaxIterations() const override { return max_rounds_; }

 private:
  VertexId source_;
  uint32_t max_weight_;
  int max_rounds_;
};

}  // namespace

double WeightedSsspEdgeWeight(VertexId u, VertexId v, uint32_t max_weight) {
  const uint64_t h = HashU64((static_cast<uint64_t>(u) << 32) | v);
  return 1.0 + static_cast<double>(h % max_weight);
}

std::unique_ptr<VertexProgram> MakeConnectedComponents(int max_rounds) {
  return std::make_unique<ConnectedComponentsProgram>(max_rounds);
}

std::unique_ptr<VertexProgram> MakeWeightedSssp(VertexId source,
                                                uint32_t max_weight,
                                                int max_rounds) {
  return std::make_unique<WeightedSsspProgram>(source, max_weight,
                                               max_rounds);
}

std::unique_ptr<VertexProgram> MakePageRank(int iterations, double damping) {
  return std::make_unique<PageRankProgram>(iterations, damping);
}

std::unique_ptr<VertexProgram> MakeSssp(VertexId source, int max_rounds) {
  return std::make_unique<SsspProgram>(source, max_rounds);
}

std::unique_ptr<VertexProgram> MakeSubgraphIsomorphism(
    std::vector<int> pattern, int num_labels) {
  return std::make_unique<SubgraphIsomorphismProgram>(std::move(pattern),
                                                      num_labels);
}

}  // namespace rlcut
