#ifndef RLCUT_COMMON_FLAGS_H_
#define RLCUT_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace rlcut {

/// Minimal command-line flag parser for the example and bench binaries.
/// Accepts `--name=value` and `--name value`; bare `--name` sets a bool
/// flag to true. Unknown flags are an error so typos do not silently run
/// the default experiment.
///
///   FlagParser flags;
///   flags.DefineInt("scale", 1000, "dataset down-scale factor");
///   flags.DefineString("graph", "LJ", "dataset preset");
///   Status s = flags.Parse(argc, argv);
///   int64_t scale = flags.GetInt("scale");
class FlagParser {
 public:
  FlagParser() = default;

  void DefineInt(const std::string& name, int64_t default_value,
                 const std::string& help);
  void DefineDouble(const std::string& name, double default_value,
                    const std::string& help);
  void DefineBool(const std::string& name, bool default_value,
                  const std::string& help);
  void DefineString(const std::string& name, const std::string& default_value,
                    const std::string& help);

  /// Parses argv; on error (unknown flag / bad value) returns a status
  /// describing the problem. `--help` sets help_requested().
  Status Parse(int argc, char** argv);

  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;

  bool help_requested() const { return help_requested_; }

  /// Usage text listing every defined flag with its default and help.
  std::string Usage(const std::string& program) const;

 private:
  enum class Type { kInt, kDouble, kBool, kString };
  struct Flag {
    Type type;
    std::string help;
    int64_t int_value = 0;
    double double_value = 0;
    bool bool_value = false;
    std::string string_value;
  };

  const Flag& GetFlagOrDie(const std::string& name, Type type) const;
  Status SetFromString(const std::string& name, const std::string& value);

  std::map<std::string, Flag> flags_;
  bool help_requested_ = false;
};

}  // namespace rlcut

#endif  // RLCUT_COMMON_FLAGS_H_
