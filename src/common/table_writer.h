#ifndef RLCUT_COMMON_TABLE_WRITER_H_
#define RLCUT_COMMON_TABLE_WRITER_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace rlcut {

/// Renders benchmark results as aligned ASCII tables (and optionally CSV)
/// so each bench binary prints the same rows/series the paper reports.
///
///   TableWriter t({"Graph", "RandPG", "RLCut"});
///   t.AddRow({"LJ", Fmt(1.0), Fmt(0.07)});
///   t.Print(std::cout);
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> cells);

  /// Writes the aligned table.
  void Print(std::ostream& os) const;

  /// Writes comma-separated values (header + rows).
  void PrintCsv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` significant decimals (fixed).
std::string Fmt(double value, int precision = 3);

/// Formats an integer count with no decoration.
std::string Fmt(int64_t value);
std::string Fmt(uint64_t value);

}  // namespace rlcut

#endif  // RLCUT_COMMON_TABLE_WRITER_H_
