#ifndef RLCUT_COMMON_TIMER_H_
#define RLCUT_COMMON_TIMER_H_

#include <chrono>

namespace rlcut {

/// Monotonic wall-clock stopwatch used to measure partitioning overhead
/// (Table III/IV, Fig. 8, Eq. 14 feedback loop).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rlcut

#endif  // RLCUT_COMMON_TIMER_H_
