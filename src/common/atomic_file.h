#ifndef RLCUT_COMMON_ATOMIC_FILE_H_
#define RLCUT_COMMON_ATOMIC_FILE_H_

#include <string>

#include "common/status.h"

namespace rlcut {

/// Crash-consistent whole-file replacement: the bytes are written to
/// `path` + ".tmp", flushed with fsync, and renamed over `path` in one
/// atomic step — a crash (or an injected fault) at any point leaves
/// either the previous file or no file, never a torn one. On any
/// failure the temp file is removed and `path` is untouched.
///
/// `fault_site_prefix` names this writer's injection sites
/// ("<prefix>.open_fail", ".short_write", ".fsync_fail",
/// ".rename_fail" — see fault/fault.h); pass the subsystem name
/// ("checkpoint", "plan").
Status AtomicWriteFile(const std::string& path, const std::string& bytes,
                       const std::string& fault_site_prefix);

/// The temp path AtomicWriteFile stages through for `path`.
std::string TempPathFor(const std::string& path);

/// Removes a stale temp file a crashed writer may have left next to
/// `path`. Returns true if one existed and was removed. Call on
/// startup before reading or rewriting `path`.
bool RemoveStaleTempFile(const std::string& path);

}  // namespace rlcut

#endif  // RLCUT_COMMON_ATOMIC_FILE_H_
