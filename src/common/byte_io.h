#ifndef RLCUT_COMMON_BYTE_IO_H_
#define RLCUT_COMMON_BYTE_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "common/status.h"

namespace rlcut {

/// Appends host-endian fixed-width values to a byte buffer. The encoded
/// bytes are single-machine pause/resume files, not an interchange
/// format, so host endianness is fine (documented where used).
class ByteWriter {
 public:
  template <typename T>
  void Write(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t offset = bytes_.size();
    bytes_.resize(offset + sizeof(T));
    std::memcpy(bytes_.data() + offset, &value, sizeof(T));
  }

  template <typename T>
  void WriteVector(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    Write<uint64_t>(values.size());
    const size_t offset = bytes_.size();
    bytes_.resize(offset + values.size() * sizeof(T));
    std::memcpy(bytes_.data() + offset, values.data(),
                values.size() * sizeof(T));
  }

  /// Length-prefixed byte string (DC names, method names, ...).
  void WriteString(const std::string& value) {
    Write<uint64_t>(value.size());
    bytes_.append(value);
  }

  const std::string& bytes() const { return bytes_; }

 private:
  std::string bytes_;
};

/// Reads the writer's output back with bounds checking; any overrun
/// flags the payload as truncated. Every count decoded from the payload
/// is bounded by remaining() before any resize: a truncated or
/// bit-flipped file must produce a clean corrupt-file Status, never a
/// multi-GB allocation.
class ByteReader {
 public:
  explicit ByteReader(const std::string& bytes) : bytes_(bytes) {}

  template <typename T>
  bool Read(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (offset_ + sizeof(T) > bytes_.size()) return false;
    std::memcpy(value, bytes_.data() + offset_, sizeof(T));
    offset_ += sizeof(T);
    return true;
  }

  template <typename T>
  bool ReadVector(std::vector<T>* values) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t count = 0;
    if (!Read(&count)) return false;
    // Guard the multiplication: a corrupted count must not overflow.
    if (count > (bytes_.size() - offset_) / sizeof(T)) return false;
    values->resize(count);
    std::memcpy(values->data(), bytes_.data() + offset_,
                count * sizeof(T));
    offset_ += count * sizeof(T);
    return true;
  }

  bool ReadString(std::string* value) {
    uint64_t count = 0;
    if (!Read(&count)) return false;
    if (count > bytes_.size() - offset_) return false;
    value->assign(bytes_.data() + offset_, count);
    offset_ += count;
    return true;
  }

  bool exhausted() const { return offset_ == bytes_.size(); }

  /// Bytes left to read; bound every decoded count by this.
  size_t remaining() const { return bytes_.size() - offset_; }

 private:
  const std::string& bytes_;
  size_t offset_ = 0;
};

/// FNV-1a over the payload; the envelope's integrity check.
uint64_t Fnv1a64(const std::string& bytes);

/// Wraps `payload` in the common rlcut binary-file envelope:
///   8-byte magic | uint32 version | uint64 payload size | payload |
///   uint64 FNV-1a checksum of the payload.
/// `magic` must be exactly 8 bytes.
std::string WrapEnvelope(const char* magic, uint32_t version,
                         const std::string& payload);

/// Reads and verifies an envelope file written by WrapEnvelope +
/// AtomicWriteFile, returning the payload. `kind` names the file type in
/// error messages ("checkpoint" -> "not an rlcut checkpoint file"). The
/// declared payload size is bounded by the real file size before any
/// allocation.
Result<std::string> ReadEnvelopeFile(const std::string& path,
                                     const char* magic,
                                     uint32_t expected_version,
                                     const std::string& kind);

/// Same, accepting any version in [min_version, max_version] (for file
/// formats that kept decode support for older revisions). The version
/// actually found is returned through `version_out` so the caller can
/// branch its payload decoding on it.
Result<std::string> ReadEnvelopeFile(const std::string& path,
                                     const char* magic,
                                     uint32_t min_version,
                                     uint32_t max_version,
                                     const std::string& kind,
                                     uint32_t* version_out);

}  // namespace rlcut

#endif  // RLCUT_COMMON_BYTE_IO_H_
