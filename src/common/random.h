#ifndef RLCUT_COMMON_RANDOM_H_
#define RLCUT_COMMON_RANDOM_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace rlcut {

/// Deterministic, fast PRNG (xoshiro256**). All stochastic components of
/// the library (generators, samplers, learning automata) take an explicit
/// Rng so experiments are reproducible from a single seed.
class Rng {
 public:
  /// Seeds the four-word state via SplitMix64 expansion of `seed`.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t UniformInt(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// Samples an index from an (unnormalized) non-negative weight vector.
  /// Falls back to uniform if all weights are zero.
  size_t SampleDiscrete(const std::vector<double>& weights);

  /// Approximate Zipf(s) sample over {0, ..., n-1} using inverse-CDF on a
  /// precomputed table is avoided; this uses rejection-inversion
  /// (Hörmann 1996 style simplified), adequate for generator workloads.
  uint64_t Zipf(uint64_t n, double s);

  /// Raw generator state, for checkpoint/resume: restoring a saved state
  /// continues the exact output sequence. Must not be all zeros.
  std::array<uint64_t, 4> State() const { return {s_[0], s_[1], s_[2], s_[3]}; }
  void SetState(const std::array<uint64_t, 4>& state) {
    RLCUT_CHECK((state[0] | state[1] | state[2] | state[3]) != 0);
    for (size_t i = 0; i < 4; ++i) s_[i] = state[i];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    if (v.empty()) return;
    for (size_t i = v.size() - 1; i > 0; --i) {
      size_t j = UniformInt(i + 1);
      std::swap(v[i], v[j]);
    }
  }

 private:
  uint64_t s_[4];
};

/// SplitMix64 step, exposed for deterministic hashing needs (e.g., hash
/// partitioners that must agree across runs).
uint64_t SplitMix64(uint64_t x);

/// Stateless 64-bit mix hash suitable for partition-by-hash.
inline uint64_t HashU64(uint64_t x) { return SplitMix64(x); }

}  // namespace rlcut

#endif  // RLCUT_COMMON_RANDOM_H_
