#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace rlcut {
namespace internal_logging {
namespace {

std::atomic<LogLevel> g_min_level{LogLevel::kInfo};

// Serializes whole log lines across threads.
std::mutex& LogMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

void EmitLine(LogLevel level, const std::string& body) {
  std::lock_guard<std::mutex> lock(LogMutex());
  std::cerr << "[" << LevelTag(level) << "] " << body << "\n";
}

}  // namespace

LogLevel GetMinLogLevel() { return g_min_level.load(std::memory_order_relaxed); }

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(level, std::memory_order_relaxed);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetMinLogLevel()) {
    EmitLine(level_, stream_.str());
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  stream_ << file << ":" << line << "] CHECK failed: " << condition << " ";
}

FatalLogMessage::~FatalLogMessage() {
  EmitLine(LogLevel::kError, stream_.str());
  std::abort();
}

}  // namespace internal_logging
}  // namespace rlcut
