#include "common/stats.h"

#include <cmath>

namespace rlcut {

void RunningStats::Add(double x) {
  ++count_;
  sum_ += x;
  if (count_ == 1) {
    mean_ = x;
    min_ = x;
    max_ = x;
    m2_ = 0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::cv() const {
  if (count_ == 0 || mean_ == 0) return 0.0;
  return stddev() / mean_;
}

Pow2Histogram::Pow2Histogram() : buckets_(65, 0) {}

void Pow2Histogram::Add(uint64_t value) {
  size_t bucket = 0;
  while ((1ull << (bucket + 1)) <= value && bucket < 63) ++bucket;
  ++buckets_[bucket];
  ++total_;
}

}  // namespace rlcut
