#include "common/random.h"

#include <cmath>

namespace rlcut {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) {
    sm = SplitMix64(sm);
    word = sm;
  }
  // Avoid the all-zero state xoshiro cannot leave.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  RLCUT_CHECK_GT(bound, 0u);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  RLCUT_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

size_t Rng::SampleDiscrete(const std::vector<double>& weights) {
  RLCUT_CHECK(!weights.empty());
  double total = 0;
  for (double w : weights) {
    RLCUT_CHECK_GE(w, 0.0);
    total += w;
  }
  if (total <= 0) return UniformInt(weights.size());
  double x = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x <= 0) return i;
  }
  return weights.size() - 1;
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  RLCUT_CHECK_GT(n, 0u);
  if (n == 1) return 0;
  // Inverse-CDF approximation via the continuous Zipf envelope
  // H(x) = (x^{1-s} - 1) / (1 - s); exact enough for synthetic workloads.
  if (s == 1.0) s = 1.0000001;
  const double one_minus_s = 1.0 - s;
  const double h_n = (std::pow(static_cast<double>(n) + 0.5, one_minus_s) -
                      std::pow(0.5, one_minus_s)) /
                     one_minus_s;
  while (true) {
    double u = UniformDouble();
    double x = std::pow(u * h_n * one_minus_s + std::pow(0.5, one_minus_s),
                        1.0 / one_minus_s);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k >= 1 && k <= n) return k - 1;
  }
}

}  // namespace rlcut
