#include "common/table_writer.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/logging.h"

namespace rlcut {

TableWriter::TableWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  RLCUT_CHECK(!header_.empty());
}

void TableWriter::AddRow(std::vector<std::string> cells) {
  RLCUT_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

void TableWriter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[c]))
         << std::left << row[c];
    }
    os << " |\n";
  };
  auto print_rule = [&] {
    for (size_t c = 0; c < widths.size(); ++c) {
      os << (c == 0 ? "+" : "+") << std::string(widths[c] + 2, '-');
    }
    os << "+\n";
  };
  print_rule();
  print_row(header_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

void TableWriter::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ",";
      os << row[c];
    }
    os << "\n";
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

std::string Fmt(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

std::string Fmt(int64_t value) { return std::to_string(value); }
std::string Fmt(uint64_t value) { return std::to_string(value); }

}  // namespace rlcut
