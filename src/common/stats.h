#ifndef RLCUT_COMMON_STATS_H_
#define RLCUT_COMMON_STATS_H_

#include <cstdint>
#include <vector>

namespace rlcut {

/// Streaming summary statistics (count/mean/variance via Welford, min/max).
/// Used for load-balance metrics and benchmark repetitions.
class RunningStats {
 public:
  RunningStats() = default;

  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Population variance.
  double variance() const { return count_ > 0 ? m2_ / count_ : 0.0; }
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Coefficient of variation (stddev / mean); 0 when mean is 0.
  double cv() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
  double sum_ = 0;
};

/// Fixed-bucket histogram over [0, +inf) with power-of-two bucket bounds;
/// used for degree distributions in tests and dataset reports.
class Pow2Histogram {
 public:
  Pow2Histogram();

  void Add(uint64_t value);

  /// Bucket i counts values in [2^i, 2^{i+1}) with bucket 0 = {0, 1}.
  const std::vector<uint64_t>& buckets() const { return buckets_; }
  uint64_t total() const { return total_; }

 private:
  std::vector<uint64_t> buckets_;
  uint64_t total_ = 0;
};

}  // namespace rlcut

#endif  // RLCUT_COMMON_STATS_H_
