#ifndef RLCUT_COMMON_SIM_TIME_H_
#define RLCUT_COMMON_SIM_TIME_H_

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>
#include <ostream>

namespace rlcut {

/// The library's one monotonic simulation-time type.
///
/// Historically the temporal stream generators measured time in floating
/// seconds while TopologySchedule measured it in integer "training
/// steps", so stream batches and topology events could not be merged
/// onto one timeline without an ad-hoc conversion at every call site.
/// SimTime normalizes both: it counts integer microseconds since the
/// start of the run, converts implicitly from arithmetic values
/// denominated in seconds (one historical schedule "step" embeds as one
/// second), and orders totally — no floating-point equality traps, no
/// unit mismatches.
///
/// Use `SimTime::Micros` / `micros()` when exact tick arithmetic
/// matters (serialization, interleaved-event ordering) and `seconds()`
/// for human-facing output.
class SimTime {
 public:
  constexpr SimTime() = default;

  /// Implicit from a value in seconds. Whole-number training steps of
  /// the legacy schedule timeline land exactly (1 step == 1 s).
  template <typename T,
            typename = std::enable_if_t<std::is_arithmetic_v<T>>>
  constexpr SimTime(T seconds)  // NOLINT(runtime/explicit)
      : micros_(static_cast<int64_t>(
            static_cast<double>(seconds) * 1e6 +
            (static_cast<double>(seconds) >= 0 ? 0.5 : -0.5))) {}

  static constexpr SimTime Micros(int64_t us) {
    SimTime t;
    t.micros_ = us;
    return t;
  }
  static constexpr SimTime Seconds(double s) { return SimTime(s); }
  static constexpr SimTime Min() {
    return Micros(std::numeric_limits<int64_t>::min());
  }
  static constexpr SimTime Max() {
    return Micros(std::numeric_limits<int64_t>::max());
  }

  constexpr int64_t micros() const { return micros_; }
  constexpr double seconds() const {
    return static_cast<double>(micros_) / 1e6;
  }
  /// The legacy integer step this time falls in (floor of seconds).
  constexpr int64_t step() const {
    return micros_ >= 0 ? micros_ / 1000000
                        : (micros_ - 999999) / 1000000;
  }

  friend constexpr auto operator<=>(SimTime a, SimTime b) = default;

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return Micros(a.micros_ + b.micros_);
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return Micros(a.micros_ - b.micros_);
  }
  SimTime& operator+=(SimTime other) {
    micros_ += other.micros_;
    return *this;
  }

  friend std::ostream& operator<<(std::ostream& os, SimTime t) {
    return os << t.seconds() << "s";
  }

 private:
  int64_t micros_ = 0;
};

}  // namespace rlcut

#endif  // RLCUT_COMMON_SIM_TIME_H_
