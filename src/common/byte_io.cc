#include "common/byte_io.h"

#include <cstring>
#include <fstream>

namespace rlcut {

namespace {
constexpr size_t kMagicBytes = 8;
}  // namespace

uint64_t Fnv1a64(const std::string& bytes) {
  uint64_t hash = 14695981039346656037ull;
  for (char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string WrapEnvelope(const char* magic, uint32_t version,
                         const std::string& payload) {
  std::string bytes;
  bytes.reserve(kMagicBytes + sizeof(uint32_t) + sizeof(uint64_t) +
                payload.size() + sizeof(uint64_t));
  bytes.append(magic, kMagicBytes);
  bytes.append(reinterpret_cast<const char*>(&version), sizeof(version));
  const uint64_t payload_size = payload.size();
  bytes.append(reinterpret_cast<const char*>(&payload_size),
               sizeof(payload_size));
  bytes.append(payload);
  const uint64_t checksum = Fnv1a64(payload);
  bytes.append(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  return bytes;
}

Result<std::string> ReadEnvelopeFile(const std::string& path,
                                     const char* magic,
                                     uint32_t expected_version,
                                     const std::string& kind) {
  return ReadEnvelopeFile(path, magic, expected_version, expected_version,
                          kind, nullptr);
}

Result<std::string> ReadEnvelopeFile(const std::string& path,
                                     const char* magic,
                                     uint32_t min_version,
                                     uint32_t max_version,
                                     const std::string& kind,
                                     uint32_t* version_out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open " + path);
  }
  in.seekg(0, std::ios::end);
  const std::streamoff file_size = in.tellg();
  in.seekg(0, std::ios::beg);
  if (file_size < 0) {
    return Status::IoError("cannot stat " + path);
  }
  char file_magic[kMagicBytes];
  if (!in.read(file_magic, sizeof(file_magic)) ||
      std::memcmp(file_magic, magic, sizeof(file_magic)) != 0) {
    return Status::IoError(path + ": not an rlcut " + kind + " file");
  }
  uint32_t version = 0;
  if (!in.read(reinterpret_cast<char*>(&version), sizeof(version))) {
    return Status::IoError(path + ": truncated " + kind + " header");
  }
  if (version < min_version || version > max_version) {
    const std::string expected =
        min_version == max_version
            ? std::to_string(max_version)
            : std::to_string(min_version) + ".." +
                  std::to_string(max_version);
    return Status::IoError(path + ": unsupported " + kind + " version " +
                           std::to_string(version) + " (expected " +
                           expected + ")");
  }
  if (version_out != nullptr) *version_out = version;
  uint64_t payload_size = 0;
  if (!in.read(reinterpret_cast<char*>(&payload_size),
               sizeof(payload_size))) {
    return Status::IoError(path + ": truncated " + kind + " header");
  }
  // Bound the declared payload by what the file actually holds (header,
  // payload, trailing checksum) before allocating: a bit-flipped size
  // field must not request a multi-GB buffer.
  constexpr uint64_t kHeaderBytes =
      kMagicBytes + sizeof(uint32_t) + sizeof(uint64_t);
  constexpr uint64_t kChecksumBytes = sizeof(uint64_t);
  const uint64_t total = static_cast<uint64_t>(file_size);
  if (total < kHeaderBytes + kChecksumBytes ||
      payload_size > total - kHeaderBytes - kChecksumBytes) {
    return Status::IoError(path + ": truncated " + kind + " payload");
  }
  std::string payload(payload_size, '\0');
  if (!in.read(payload.data(),
               static_cast<std::streamsize>(payload_size))) {
    return Status::IoError(path + ": truncated " + kind + " payload");
  }
  uint64_t checksum = 0;
  if (!in.read(reinterpret_cast<char*>(&checksum), sizeof(checksum))) {
    return Status::IoError(path + ": missing " + kind + " checksum");
  }
  if (checksum != Fnv1a64(payload)) {
    return Status::IoError(path + ": " + kind + " checksum mismatch");
  }
  return payload;
}

}  // namespace rlcut
