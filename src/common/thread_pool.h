#ifndef RLCUT_COMMON_THREAD_POOL_H_
#define RLCUT_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rlcut {

/// Fixed-size worker pool used by the multi-agent trainer (batched score
/// computation) and by graph generators. Tasks are arbitrary closures;
/// Wait() blocks until the queue drains and all workers are idle.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);

  /// Joins all workers. Pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n), split into contiguous chunks across the
  /// pool, and waits for completion. fn must be safe to call concurrently
  /// on disjoint indices.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Runs fn(chunk_begin, chunk_end, worker_slot) over contiguous ranges;
  /// worker_slot in [0, num_threads) identifies the chunk, enabling
  /// per-thread accumulators without locking.
  void ParallelForChunked(
      size_t n,
      const std::function<void(size_t, size_t, size_t)>& fn);

  /// Total tasks executed by this pool's workers so far. Counted with a
  /// relaxed atomic so it is race-free to read from any thread (the
  /// value may lag tasks currently in flight).
  uint64_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::atomic<uint64_t> tasks_executed_{0};
};

/// Number of hardware threads, never less than 1.
size_t DefaultThreadCount();

}  // namespace rlcut

#endif  // RLCUT_COMMON_THREAD_POOL_H_
