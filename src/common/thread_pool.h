#ifndef RLCUT_COMMON_THREAD_POOL_H_
#define RLCUT_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rlcut {

/// Fixed-size worker pool used by the multi-agent trainer (batched score
/// computation) and by graph generators. Tasks are arbitrary closures;
/// Wait() blocks until the queue drains and all workers are idle.
///
/// Failure semantics (docs/robustness.md): a task that throws never
/// takes the process down — the worker catches the exception, records
/// the first one for TakeError(), and keeps serving tasks. A worker
/// that dies (the threadpool.worker_crash fault site) drops its task,
/// records the error, and is replaced by a fresh thread, so the pool's
/// capacity survives. ParallelFor/ParallelForChunked rethrow the first
/// captured error after the barrier; callers that manage their own
/// completion tracking (the trainer) drain TakeError() themselves.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);

  /// Joins all workers. Pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker. Returns false (and
  /// drops the task) once shutdown has begun instead of aborting, so
  /// racing a Submit against destruction is an error the caller can
  /// observe rather than a crash.
  bool Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return num_threads_; }

  /// Runs fn(i) for i in [0, n), split into contiguous chunks across the
  /// pool, and waits for completion. fn must be safe to call concurrently
  /// on disjoint indices. Rethrows the first error any chunk raised.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Runs fn(chunk_begin, chunk_end, worker_slot) over contiguous ranges;
  /// worker_slot in [0, num_threads) identifies the chunk, enabling
  /// per-thread accumulators without locking. Rethrows the first error
  /// any chunk raised (indices of a throwing or dropped chunk may not
  /// have run).
  void ParallelForChunked(
      size_t n,
      const std::function<void(size_t, size_t, size_t)>& fn);

  /// First error captured since the last TakeError(): a task exception,
  /// an injected task fault, or a crashed worker's dropped task.
  /// Returns nullptr if none. Clears the slot.
  std::exception_ptr TakeError();

  /// Total task errors captured over the pool's lifetime.
  uint64_t errors_seen() const {
    return errors_seen_.load(std::memory_order_relaxed);
  }

  /// Total tasks executed by this pool's workers so far. Counted with a
  /// relaxed atomic so it is race-free to read from any thread (the
  /// value may lag tasks currently in flight).
  uint64_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();
  // Requires mu_. Records the first error and bumps the error count.
  void RecordErrorLocked(std::exception_ptr error);

  const size_t num_threads_;
  // Grows when a crashed worker is replaced; stable once shutting_down_
  // is set (respawn checks the flag under mu_), so the destructor can
  // join without holding the lock.
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::exception_ptr first_error_;  // guarded by mu_
  std::atomic<uint64_t> errors_seen_{0};
  std::atomic<uint64_t> tasks_executed_{0};
};

/// Number of hardware threads, never less than 1.
size_t DefaultThreadCount();

}  // namespace rlcut

#endif  // RLCUT_COMMON_THREAD_POOL_H_
