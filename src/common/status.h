#ifndef RLCUT_COMMON_STATUS_H_
#define RLCUT_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace rlcut {

/// Error categories used across the library. Modeled after the
/// RocksDB/Arrow Status idiom: library code does not throw; fallible
/// operations return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kIoError,
  kFailedPrecondition,
  kInternal,
};

/// Lightweight status object carrying an error code and message.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable representation, e.g. "InvalidArgument: bad theta".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> is a value-or-status holder (a minimal StatusOr).
///
/// Usage:
///   Result<Graph> g = LoadGraph(path);
///   if (!g.ok()) return g.status();
///   Use(g.value());
template <typename T>
class Result {
 public:
  /// Implicit from value and from error status, so functions can
  /// `return MakeGraph(...)` or `return Status::IoError(...)` uniformly.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                         // NOLINT(runtime/explicit)
      : data_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOkStatus;
    if (ok()) return kOkStatus;
    return std::get<Status>(data_);
  }

  T& value() & { return std::get<T>(data_); }
  const T& value() const& { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> data_;
};

/// Propagates a non-OK status out of the current function.
#define RLCUT_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::rlcut::Status rlcut_status_macro_s = (expr);  \
    if (!rlcut_status_macro_s.ok()) {               \
      return rlcut_status_macro_s;                  \
    }                                               \
  } while (0)

}  // namespace rlcut

#endif  // RLCUT_COMMON_STATUS_H_
