#include "common/thread_pool.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"

namespace rlcut {

ThreadPool::ThreadPool(size_t num_threads) {
  RLCUT_CHECK_GE(num_threads, 1u);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
  // Fold this pool's lifetime total into the global registry once all
  // workers have quiesced (no concurrent writers remain).
  obs::DefaultRegistry().GetCounter("threadpool.tasks")->Increment(
      tasks_executed_.load(std::memory_order_relaxed));
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    RLCUT_CHECK(!shutting_down_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        // shutting_down_ with an empty queue: exit.
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    // Relaxed: the counter is monotonic telemetry, not a synchronization
    // point, so this stays race-free under TSan without ordering cost.
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  ParallelForChunked(n, [&fn](size_t begin, size_t end, size_t /*slot*/) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::ParallelForChunked(
    size_t n, const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  const size_t num_chunks = std::min(n, num_threads());
  const size_t chunk = (n + num_chunks - 1) / num_chunks;
  for (size_t slot = 0; slot < num_chunks; ++slot) {
    const size_t begin = slot * chunk;
    const size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    Submit([&fn, begin, end, slot] { fn(begin, end, slot); });
  }
  Wait();
}

size_t DefaultThreadCount() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

}  // namespace rlcut
