#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/logging.h"
#include "fault/fault.h"
#include "obs/metrics.h"

namespace rlcut {

ThreadPool::ThreadPool(size_t num_threads) : num_threads_(num_threads) {
  RLCUT_CHECK_GE(num_threads, 1u);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  // workers_ is stable now: replacement spawns check shutting_down_
  // under mu_, and the flag write above synchronizes with them.
  for (auto& worker : workers_) worker.join();
  // Fold this pool's lifetime total into the global registry once all
  // workers have quiesced (no concurrent writers remain).
  obs::DefaultRegistry().GetCounter("threadpool.tasks")->Increment(
      tasks_executed_.load(std::memory_order_relaxed));
  const uint64_t errors = errors_seen_.load(std::memory_order_relaxed);
  if (errors > 0) {
    obs::DefaultRegistry().GetCounter("threadpool.task_errors")
        ->Increment(errors);
  }
}

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (shutting_down_) return false;
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
  return true;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

std::exception_ptr ThreadPool::TakeError() {
  std::unique_lock<std::mutex> lock(mu_);
  return std::exchange(first_error_, nullptr);
}

void ThreadPool::RecordErrorLocked(std::exception_ptr error) {
  if (first_error_ == nullptr) first_error_ = std::move(error);
  errors_seen_.fetch_add(1, std::memory_order_relaxed);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        // shutting_down_ with an empty queue: exit.
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    int64_t stall_ms = 0;
    if (fault::ShouldFire("threadpool.worker_stall", &stall_ms)) {
      fault::CancellableSleepMs(stall_ms > 0 ? stall_ms : 20, nullptr);
    }
    if (fault::ShouldFire("threadpool.worker_crash")) {
      // Simulated worker death: the task is dropped (recorded as an
      // error so barriers and the trainer's redispatch see it) and this
      // thread exits after arranging a replacement, so pool capacity
      // survives the crash.
      std::unique_lock<std::mutex> lock(mu_);
      RecordErrorLocked(std::make_exception_ptr(
          fault::InjectedFault("threadpool.worker_crash")));
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
      if (!shutting_down_) {
        workers_.emplace_back([this] { WorkerLoop(); });
      }
      return;
    }
    try {
      if (fault::ShouldFire("threadpool.task_throw")) {
        throw fault::InjectedFault("threadpool.task_throw");
      }
      task();
    } catch (...) {
      std::unique_lock<std::mutex> lock(mu_);
      RecordErrorLocked(std::current_exception());
    }
    // Relaxed: the counter is monotonic telemetry, not a synchronization
    // point, so this stays race-free under TSan without ordering cost.
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  ParallelForChunked(n, [&fn](size_t begin, size_t end, size_t /*slot*/) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::ParallelForChunked(
    size_t n, const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  const size_t num_chunks = std::min(n, num_threads());
  const size_t chunk = (n + num_chunks - 1) / num_chunks;
  for (size_t slot = 0; slot < num_chunks; ++slot) {
    const size_t begin = slot * chunk;
    const size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    if (!Submit([&fn, begin, end, slot] { fn(begin, end, slot); })) {
      RLCUT_CHECK(false) << "ParallelFor during pool shutdown";
    }
  }
  Wait();
  if (std::exception_ptr error = TakeError()) {
    std::rethrow_exception(error);
  }
}

size_t DefaultThreadCount() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

}  // namespace rlcut
