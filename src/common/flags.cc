#include "common/flags.h"

#include <cstdlib>
#include <sstream>

#include "common/logging.h"

namespace rlcut {

void FlagParser::DefineInt(const std::string& name, int64_t default_value,
                           const std::string& help) {
  Flag f;
  f.type = Type::kInt;
  f.help = help;
  f.int_value = default_value;
  flags_[name] = std::move(f);
}

void FlagParser::DefineDouble(const std::string& name, double default_value,
                              const std::string& help) {
  Flag f;
  f.type = Type::kDouble;
  f.help = help;
  f.double_value = default_value;
  flags_[name] = std::move(f);
}

void FlagParser::DefineBool(const std::string& name, bool default_value,
                            const std::string& help) {
  Flag f;
  f.type = Type::kBool;
  f.help = help;
  f.bool_value = default_value;
  flags_[name] = std::move(f);
}

void FlagParser::DefineString(const std::string& name,
                              const std::string& default_value,
                              const std::string& help) {
  Flag f;
  f.type = Type::kString;
  f.help = help;
  f.string_value = default_value;
  flags_[name] = std::move(f);
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("unexpected positional argument: " + arg);
    }
    std::string body = arg.substr(2);
    std::string name;
    std::string value;
    bool has_value = false;
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    } else {
      name = body;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag: --" + name);
    }
    if (!has_value) {
      if (it->second.type == Type::kBool) {
        it->second.bool_value = true;
        continue;
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag --" + name + " needs a value");
      }
      value = argv[++i];
    }
    RLCUT_RETURN_IF_ERROR(SetFromString(name, value));
  }
  return Status::Ok();
}

Status FlagParser::SetFromString(const std::string& name,
                                 const std::string& value) {
  Flag& f = flags_.at(name);
  switch (f.type) {
    case Type::kInt: {
      char* end = nullptr;
      long long v = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       ": not an integer: " + value);
      }
      f.int_value = v;
      return Status::Ok();
    }
    case Type::kDouble: {
      char* end = nullptr;
      double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       ": not a number: " + value);
      }
      f.double_value = v;
      return Status::Ok();
    }
    case Type::kBool: {
      if (value == "true" || value == "1") {
        f.bool_value = true;
      } else if (value == "false" || value == "0") {
        f.bool_value = false;
      } else {
        return Status::InvalidArgument("flag --" + name +
                                       ": not a bool: " + value);
      }
      return Status::Ok();
    }
    case Type::kString:
      f.string_value = value;
      return Status::Ok();
  }
  return Status::Internal("unreachable flag type");
}

const FlagParser::Flag& FlagParser::GetFlagOrDie(const std::string& name,
                                                 Type type) const {
  auto it = flags_.find(name);
  RLCUT_CHECK(it != flags_.end()) << "undefined flag: " << name;
  RLCUT_CHECK(it->second.type == type) << "flag type mismatch: " << name;
  return it->second;
}

int64_t FlagParser::GetInt(const std::string& name) const {
  return GetFlagOrDie(name, Type::kInt).int_value;
}

double FlagParser::GetDouble(const std::string& name) const {
  return GetFlagOrDie(name, Type::kDouble).double_value;
}

bool FlagParser::GetBool(const std::string& name) const {
  return GetFlagOrDie(name, Type::kBool).bool_value;
}

const std::string& FlagParser::GetString(const std::string& name) const {
  return GetFlagOrDie(name, Type::kString).string_value;
}

std::string FlagParser::Usage(const std::string& program) const {
  std::ostringstream ss;
  ss << "usage: " << program << " [flags]\n";
  for (const auto& [name, f] : flags_) {
    ss << "  --" << name << "  (";
    switch (f.type) {
      case Type::kInt:
        ss << "int, default " << f.int_value;
        break;
      case Type::kDouble:
        ss << "double, default " << f.double_value;
        break;
      case Type::kBool:
        ss << "bool, default " << (f.bool_value ? "true" : "false");
        break;
      case Type::kString:
        ss << "string, default \"" << f.string_value << "\"";
        break;
    }
    ss << ")\n      " << f.help << "\n";
  }
  return ss.str();
}

}  // namespace rlcut
