#include "common/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>

#include "fault/fault.h"

namespace rlcut {
namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::IoError(what + " " + path + ": " + std::strerror(errno));
}

// Writes all of `bytes` to fd, honoring the <prefix>.short_write site:
// when it fires, only the rule's `amount` bytes are written before the
// call reports a torn write.
Status WriteAll(int fd, const std::string& bytes, const std::string& path,
                const std::string& site_prefix) {
  size_t limit = bytes.size();
  bool torn = false;
  int64_t keep = 0;
  if (fault::ShouldFire((site_prefix + ".short_write").c_str(), &keep)) {
    limit = keep >= 0 && static_cast<size_t>(keep) < bytes.size()
                ? static_cast<size_t>(keep)
                : bytes.size() / 2;
    torn = true;
  }
  size_t written = 0;
  while (written < limit) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, limit - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write failed for", path);
    }
    written += static_cast<size_t>(n);
  }
  if (torn) {
    return Status::IoError("short write for " + path + " (" +
                           std::to_string(limit) + " of " +
                           std::to_string(bytes.size()) + " bytes)");
  }
  return Status::Ok();
}

}  // namespace

std::string TempPathFor(const std::string& path) { return path + ".tmp"; }

bool RemoveStaleTempFile(const std::string& path) {
  return std::remove(TempPathFor(path).c_str()) == 0;
}

Status AtomicWriteFile(const std::string& path, const std::string& bytes,
                       const std::string& fault_site_prefix) {
  const std::string temp = TempPathFor(path);
  int fd = -1;
  if (fault::ShouldFire((fault_site_prefix + ".open_fail").c_str())) {
    errno = EACCES;
  } else {
    fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  }
  if (fd < 0) return Errno("cannot open", temp);

  Status status = WriteAll(fd, bytes, temp, fault_site_prefix);
  if (status.ok()) {
    bool fsync_ok = ::fsync(fd) == 0;
    if (fault::ShouldFire((fault_site_prefix + ".fsync_fail").c_str())) {
      fsync_ok = false;
      errno = EIO;
    }
    if (!fsync_ok) status = Errno("fsync failed for", temp);
  }
  if (::close(fd) != 0 && status.ok()) status = Errno("close failed for", temp);

  if (status.ok()) {
    bool renamed = false;
    if (fault::ShouldFire((fault_site_prefix + ".rename_fail").c_str())) {
      errno = EIO;
    } else {
      renamed = std::rename(temp.c_str(), path.c_str()) == 0;
    }
    if (!renamed) status = Errno("rename failed for", temp);
  }
  if (!status.ok()) std::remove(temp.c_str());
  return status;
}

}  // namespace rlcut
