#ifndef RLCUT_COMMON_LOGGING_H_
#define RLCUT_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace rlcut {

/// Severity levels for RLCUT_LOG.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

namespace internal_logging {

/// Global minimum level; messages below it are discarded.
/// Default is kInfo; tests may lower/raise it.
LogLevel GetMinLogLevel();
void SetMinLogLevel(LogLevel level);

/// Accumulates a single log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// LogMessage that aborts the process after emitting (used by CHECK).
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Swallows the stream expression in the ternary CHECK macro so both
/// branches have type void.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace rlcut

/// Streams a log line: RLCUT_LOG(kInfo) << "loaded " << n << " edges";
#define RLCUT_LOG(level)                                               \
  ::rlcut::internal_logging::LogMessage(::rlcut::LogLevel::level,      \
                                        __FILE__, __LINE__)            \
      .stream()

/// Aborts with a message when `condition` is false. Active in all build
/// types: partition-state invariants are cheap relative to the work they
/// guard and catching corruption early matters more than the branch.
/// Supports streaming extra context: RLCUT_CHECK(v < n) << "v=" << v;
#define RLCUT_CHECK(condition)                                          \
  (condition)                                                           \
      ? (void)0                                                         \
      : ::rlcut::internal_logging::Voidify() &                          \
            ::rlcut::internal_logging::FatalLogMessage(__FILE__,        \
                                                       __LINE__,        \
                                                       #condition)      \
                .stream()

#define RLCUT_CHECK_EQ(a, b) RLCUT_CHECK((a) == (b))
#define RLCUT_CHECK_NE(a, b) RLCUT_CHECK((a) != (b))
#define RLCUT_CHECK_LT(a, b) RLCUT_CHECK((a) < (b))
#define RLCUT_CHECK_LE(a, b) RLCUT_CHECK((a) <= (b))
#define RLCUT_CHECK_GT(a, b) RLCUT_CHECK((a) > (b))
#define RLCUT_CHECK_GE(a, b) RLCUT_CHECK((a) >= (b))

/// Debug-only check for hot paths.
#ifdef NDEBUG
#define RLCUT_DCHECK(condition) RLCUT_CHECK(true || (condition))
#else
#define RLCUT_DCHECK(condition) RLCUT_CHECK(condition)
#endif

#endif  // RLCUT_COMMON_LOGGING_H_
