#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <variant>

namespace rlcut {
namespace obs {
namespace {

std::atomic<bool> g_detailed_metrics{false};

/// CAS-min/max for atomic doubles. The empty histogram seeds min with
/// +inf and max with -inf, so the first observation always wins and no
/// first-writer coordination is needed.
void AtomicMin(std::atomic<double>* target, double v) {
  double cur = target->load(std::memory_order_relaxed);
  while (v < cur &&
         !target->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double v) {
  double cur = target->load(std::memory_order_relaxed);
  while (v > cur &&
         !target->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::string SerializeLabels(const LabelSet& labels) {
  std::string out;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first;
    out += '=';
    out += labels[i].second;
  }
  return out;
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

/// Shortest-ish round-trippable double for CSV cells.
std::string FmtDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

// ---- Histogram ---------------------------------------------------------

int Histogram::BucketIndex(double v) {
  if (!(v > 0) || !std::isfinite(v)) return 0;
  const int exp = std::ilogb(v) - kMinExp;
  return std::clamp(exp, 0, kNumBuckets - 1);
}

double Histogram::BucketLowerBound(int i) {
  return std::ldexp(1.0, i + kMinExp);
}

void Histogram::Observe(double v) {
  if (!std::isfinite(v)) return;
  count_.fetch_add(1, std::memory_order_relaxed);
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  AtomicMin(&min_, v);
  AtomicMax(&max_, v);
}

double Histogram::mean() const {
  const uint64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

double Histogram::min() const {
  return count() > 0 ? min_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::max() const {
  return count() > 0 ? max_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::Percentile(double q) const {
  const uint64_t total = count();
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation among the sorted samples.
  const double rank = q * static_cast<double>(total - 1);
  double cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const double in_bucket =
        static_cast<double>(buckets_[i].load(std::memory_order_relaxed));
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket > rank) {
      // Linear interpolation across the bucket's span.
      const double frac = (rank - cumulative) / in_bucket;
      const double lb = BucketLowerBound(i);
      const double estimate = lb + frac * lb;  // ub = 2 * lb
      return std::clamp(estimate, min(), max());
    }
    cumulative += in_bucket;
  }
  return max();
}

// ---- MetricsRegistry ---------------------------------------------------

struct MetricsRegistry::Series {
  std::string name;
  LabelSet labels;
  MetricKind kind;
  Counter counter;
  Gauge gauge;
  std::unique_ptr<Histogram> histogram;  // large; allocated on demand
};

// Out of line: Series is incomplete at the point of declaration.
MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Series* MetricsRegistry::GetSeries(std::string_view name,
                                                    const LabelSet& labels,
                                                    MetricKind kind) {
  std::string key(name);
  if (!labels.empty()) {
    key += '{';
    key += SerializeLabels(labels);
    key += '}';
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(key);
  if (it == series_.end()) {
    auto series = std::make_unique<Series>();
    series->name = std::string(name);
    series->labels = labels;
    series->kind = kind;
    if (kind == MetricKind::kHistogram) {
      series->histogram = std::make_unique<Histogram>();
    }
    it = series_.emplace(std::move(key), std::move(series)).first;
  } else if (it->second->kind != kind) {
    std::fprintf(stderr,
                 "MetricsRegistry: series '%s' requested as %s but "
                 "registered as %s\n",
                 key.c_str(), KindName(kind), KindName(it->second->kind));
    std::abort();
  }
  return it->second.get();
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     const LabelSet& labels) {
  return &GetSeries(name, labels, MetricKind::kCounter)->counter;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name,
                                 const LabelSet& labels) {
  return &GetSeries(name, labels, MetricKind::kGauge)->gauge;
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         const LabelSet& labels) {
  return GetSeries(name, labels, MetricKind::kHistogram)->histogram.get();
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(series_.size());
  for (const auto& [key, series] : series_) {
    MetricSample sample;
    sample.name = series->name;
    sample.labels = series->labels;
    sample.kind = series->kind;
    switch (series->kind) {
      case MetricKind::kCounter:
        sample.value = static_cast<double>(series->counter.value());
        break;
      case MetricKind::kGauge:
        sample.value = series->gauge.value();
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *series->histogram;
        sample.count = h.count();
        sample.sum = h.sum();
        sample.min = h.min();
        sample.max = h.max();
        sample.p50 = h.Percentile(0.50);
        sample.p90 = h.Percentile(0.90);
        sample.p99 = h.Percentile(0.99);
        sample.value = h.mean();
        break;
      }
    }
    out.push_back(std::move(sample));
  }
  return out;
}

void MetricsRegistry::WriteCsv(std::ostream& os) const {
  os << "name,labels,kind,value,count,sum,min,max,p50,p90,p99\n";
  for (const MetricSample& s : Snapshot()) {
    os << s.name << ',';
    // Labels use ';' between pairs so the row stays a flat CSV.
    for (size_t i = 0; i < s.labels.size(); ++i) {
      if (i > 0) os << ';';
      os << s.labels[i].first << '=' << s.labels[i].second;
    }
    os << ',' << KindName(s.kind) << ',' << FmtDouble(s.value) << ','
       << s.count << ',' << FmtDouble(s.sum) << ',' << FmtDouble(s.min)
       << ',' << FmtDouble(s.max) << ',' << FmtDouble(s.p50) << ','
       << FmtDouble(s.p90) << ',' << FmtDouble(s.p99) << '\n';
  }
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  series_.clear();
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

std::string MetricSample::LabelValue(std::string_view key) const {
  for (const auto& [k, v] : labels) {
    if (k == key) return v;
  }
  return "";
}

MetricsRegistry& DefaultRegistry() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

void SetDetailedMetrics(bool enabled) {
  g_detailed_metrics.store(enabled, std::memory_order_relaxed);
}

bool DetailedMetricsEnabled() {
  return g_detailed_metrics.load(std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace rlcut
