#include "obs/trace.h"

#include <cstdio>
#include <ostream>

namespace rlcut {
namespace obs {
namespace internal {
std::atomic<TraceRecorder*> g_trace_recorder{nullptr};
}  // namespace internal

namespace {

/// Minimal JSON string escaping (quotes, backslash, control chars).
void WriteJsonString(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Fixed 3-decimal microsecond formatting keeps the JSON deterministic
/// across platforms (and sub-nanosecond precision is noise anyway).
void WriteMicros(std::ostream& os, double us) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  os << buf;
}

void WriteArgValue(std::ostream& os, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  os << buf;
}

}  // namespace

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

void TraceRecorder::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

double TraceRecorder::NowMicros() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceRecorder::WriteChromeTrace(std::ostream& os) const {
  const std::vector<TraceEvent> events = this->events();
  os << "{\"traceEvents\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) os << ',';
    os << "\n{\"name\":";
    WriteJsonString(os, e.name);
    os << ",\"cat\":";
    WriteJsonString(os, e.category);
    os << ",\"ph\":\"X\",\"ts\":";
    WriteMicros(os, e.start_us);
    os << ",\"dur\":";
    WriteMicros(os, e.duration_us);
    os << ",\"pid\":1,\"tid\":" << e.tid;
    if (!e.args.empty()) {
      os << ",\"args\":{";
      for (size_t a = 0; a < e.args.size(); ++a) {
        if (a > 0) os << ',';
        WriteJsonString(os, e.args[a].first);
        os << ':';
        WriteArgValue(os, e.args[a].second);
      }
      os << '}';
    }
    os << '}';
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void TraceRecorder::WriteCsv(std::ostream& os) const {
  os << "name,category,tid,start_us,duration_us,args\n";
  for (const TraceEvent& e : events()) {
    os << e.name << ',' << e.category << ',' << e.tid << ',';
    WriteMicros(os, e.start_us);
    os << ',';
    WriteMicros(os, e.duration_us);
    os << ',';
    for (size_t a = 0; a < e.args.size(); ++a) {
      if (a > 0) os << ';';
      os << e.args[a].first << '=';
      WriteArgValue(os, e.args[a].second);
    }
    os << '\n';
  }
}

void SetTraceRecorder(TraceRecorder* recorder) {
  internal::g_trace_recorder.store(recorder, std::memory_order_release);
}

uint32_t CurrentTraceTid() {
  static std::atomic<uint32_t> next_tid{1};
  thread_local uint32_t tid = next_tid.fetch_add(1);
  return tid;
}

}  // namespace obs
}  // namespace rlcut
