#ifndef RLCUT_OBS_TRACE_H_
#define RLCUT_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace rlcut {
namespace obs {

/// One completed span. Times are microseconds relative to the owning
/// recorder's epoch (its construction time), as Chrome's "X" complete
/// events expect.
struct TraceEvent {
  std::string name;
  std::string category;
  double start_us = 0;
  double duration_us = 0;
  /// Small per-process thread number (see CurrentTraceTid()).
  uint32_t tid = 0;
  /// Numeric span arguments, e.g. {"step", 3}.
  std::vector<std::pair<std::string, double>> args;
};

/// Thread-safe collector of completed spans with Chrome-trace
/// (chrome://tracing, Perfetto) and CSV exporters. Recording appends
/// under a mutex; spans are short-lived objects so contention is one
/// lock per span end.
class TraceRecorder {
 public:
  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void Record(TraceEvent event);

  /// Microseconds since this recorder's epoch.
  double NowMicros() const;

  std::vector<TraceEvent> events() const;
  size_t size() const;

  /// Chrome trace-event JSON: {"traceEvents":[...]} with "X" complete
  /// events. Loadable by chrome://tracing and ui.perfetto.dev.
  void WriteChromeTrace(std::ostream& os) const;

  /// Flat CSV: name,category,tid,start_us,duration_us,args.
  void WriteCsv(std::ostream& os) const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

namespace internal {
extern std::atomic<TraceRecorder*> g_trace_recorder;
}  // namespace internal

/// Installs (or, with nullptr, uninstalls) the process-wide recorder
/// that TraceSpan reports to. The caller keeps ownership and must keep
/// the recorder alive until after uninstalling it; installation is not
/// synchronized with in-flight spans, so install/uninstall around —
/// not during — instrumented runs.
void SetTraceRecorder(TraceRecorder* recorder);

inline TraceRecorder* GetTraceRecorder() {
  return internal::g_trace_recorder.load(std::memory_order_acquire);
}

/// True when a recorder is installed. Disabled tracing costs exactly
/// this load per span.
inline bool TracingEnabled() { return GetTraceRecorder() != nullptr; }

/// Dense 1-based id for the calling thread, stable for its lifetime.
uint32_t CurrentTraceTid();

/// RAII span: captures the recorder at construction; when tracing is
/// disabled the constructor is a single atomic load and the destructor
/// a null check. Name/category must be string literals (stored as
/// pointers until the span ends).
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* category)
      : recorder_(GetTraceRecorder()), name_(name), category_(category) {
    if (recorder_ != nullptr) start_us_ = recorder_->NowMicros();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a numeric argument (no-op when tracing is disabled).
  void AddArg(const char* key, double value) {
    if (recorder_ != nullptr) args_.emplace_back(key, value);
  }

  ~TraceSpan() {
    if (recorder_ == nullptr) return;
    TraceEvent event;
    event.name = name_;
    event.category = category_;
    event.start_us = start_us_;
    event.duration_us = recorder_->NowMicros() - start_us_;
    event.tid = CurrentTraceTid();
    event.args = std::move(args_);
    recorder_->Record(std::move(event));
  }

 private:
  TraceRecorder* recorder_;
  const char* name_;
  const char* category_;
  double start_us_ = 0;
  std::vector<std::pair<std::string, double>> args_;
};

}  // namespace obs
}  // namespace rlcut

#endif  // RLCUT_OBS_TRACE_H_
