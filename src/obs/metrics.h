#ifndef RLCUT_OBS_METRICS_H_
#define RLCUT_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <mutex>
#include <utility>
#include <vector>

namespace rlcut {
namespace obs {

/// Sorted (key, value) pairs identifying one time series of a metric
/// family, e.g. {{"step", "3"}}. Keys and values must not contain ','
/// '=' or newlines (they flow into the CSV exporter verbatim).
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing integer metric. Increment is a relaxed
/// atomic add, safe from any thread.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written double metric (e.g. current sampling rate).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double d) { value_.fetch_add(d, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Lock-free histogram over (0, +inf) with power-of-two bucket bounds:
/// bucket i counts values in [2^(i+kMinExp), 2^(i+1+kMinExp)), with the
/// first and last buckets absorbing underflow/overflow. Also tracks the
/// exact count, sum, min and max. Percentiles interpolate within the
/// bucket, so they are exact to within one octave and clamped to the
/// observed [min, max].
class Histogram {
 public:
  /// Lowest tracked magnitude is 2^kMinExp (~9.1e-13): smaller than any
  /// timer tick or byte count the library records.
  static constexpr int kMinExp = -40;
  static constexpr int kNumBuckets = 96;

  void Observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  /// Smallest / largest observed value; 0 when empty.
  double min() const;
  double max() const;

  /// Approximate quantile for q in [0, 1] (0.5 = median).
  double Percentile(double q) const;

  /// Index of the bucket that Observe(v) lands in (exposed for tests).
  static int BucketIndex(double v);
  /// Lower bound of bucket i.
  static double BucketLowerBound(int i);

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Point-in-time reading of one series, as produced by
/// MetricsRegistry::Snapshot().
struct MetricSample {
  std::string name;
  LabelSet labels;
  MetricKind kind = MetricKind::kCounter;
  /// Counter or gauge value (counters as double for uniformity).
  double value = 0;
  /// Histogram-only fields.
  uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;

  /// The label of one labeled series, "" if unset.
  std::string LabelValue(std::string_view key) const;
};

/// Thread-safe registry of named metric series. Lookup
/// (Get{Counter,Gauge,Histogram}) takes a mutex; the returned pointers
/// are stable for the registry's lifetime and their update operations
/// are lock-free, so hot paths fetch instruments once and then update
/// without synchronization. Looking up an existing name with a
/// different kind is a programming error and aborts.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name, const LabelSet& labels = {});
  Gauge* GetGauge(std::string_view name, const LabelSet& labels = {});
  Histogram* GetHistogram(std::string_view name, const LabelSet& labels = {});

  /// All series, sorted by name then serialized labels.
  std::vector<MetricSample> Snapshot() const;

  /// CSV export, one row per series:
  ///   name,labels,kind,value,count,sum,min,max,p50,p90,p99
  void WriteCsv(std::ostream& os) const;

  /// Drops every series (invalidates previously returned pointers).
  void Reset();

  size_t size() const;

 private:
  struct Series;

  Series* GetSeries(std::string_view name, const LabelSet& labels,
                    MetricKind kind);

  mutable std::mutex mu_;
  /// Key: "name{k=v,k2=v2}"; std::map keeps Snapshot() deterministic.
  std::map<std::string, std::unique_ptr<Series>> series_;
};

/// Process-wide registry: the default sink for library instrumentation.
MetricsRegistry& DefaultRegistry();

/// Detailed-metrics switch: per-batch stage timings and other
/// high-frequency histogram observations are recorded only when this is
/// on (one relaxed atomic load to check). Coarse per-run aggregates are
/// always recorded. Off by default.
void SetDetailedMetrics(bool enabled);
bool DetailedMetricsEnabled();

}  // namespace obs
}  // namespace rlcut

#endif  // RLCUT_OBS_METRICS_H_
