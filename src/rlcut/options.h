#ifndef RLCUT_RLCUT_OPTIONS_H_
#define RLCUT_RLCUT_OPTIONS_H_

#include <cstdint>
#include <string>

namespace rlcut {

/// How an agent picks its action from the automaton state (Sec. IV-C4).
enum class ActionSelection {
  /// Upper Confidence Bound over the mean observed migration score,
  /// blended with the automaton's action probability (paper default).
  kUcbBlend,
  /// UCB over the mean observed score only.
  kUcbScore,
  /// Sample directly from the automaton's probability vector.
  kProbability,
  /// Always take the currently best-scoring DC (pure exploitation).
  kGreedy,
};

/// Tuning knobs of the RLCut trainer. Defaults follow Sec. VI-A4.
struct RLCutOptions {
  /// LA reward parameter alpha (Eq. 12).
  double alpha = 0.1;
  /// LA penalty parameter beta (Eq. 9). Only used with use_penalty.
  double beta = 0.1;
  /// Update probabilities on penalty signals too (Eq. 8+9). The paper's
  /// Fig. 6 ablation shows reward-only converges ~30x faster, so this
  /// defaults off.
  bool use_penalty = false;

  /// UCB confidence parameter c (Eq. 13).
  double ucb_c = 1.41;
  ActionSelection selection = ActionSelection::kUcbBlend;

  /// Maximum number of training steps (paper default: 10).
  int max_steps = 10;
  /// Agents whose migrations are decided against the same state snapshot
  /// and scored in parallel (paper default: 48).
  int batch_size = 48;
  /// Worker threads; 0 = hardware concurrency. A host property: it only
  /// sets how much scoring parallelism the trainer uses and never
  /// affects the trajectory (see num_shards).
  int num_threads = 0;
  /// Logical shards the automaton pool is partitioned into, each owning
  /// a contiguous degree-balanced vertex range (docs/sharding.md). The
  /// owner shard scores and commits its vertices, and the commit-phase
  /// PRNG streams are keyed per shard, so the trajectory depends on the
  /// shard count but never on num_threads — a checkpoint property, not
  /// a host property. 0 = kDefaultNumShards, which is deliberately a
  /// constant (not hardware concurrency) so two hosts resume the same
  /// checkpoint bit-identically without configuring anything.
  int num_shards = 0;
  /// Delta-sync cadence of the sharded ownership protocol: the plan
  /// replica non-owner shards read is brought up to date every N
  /// batches (docs/sharding.md). Larger values batch more moves per
  /// sync message; the committed trajectory is unaffected.
  int shard_sync_batches = 4;

  /// Budget B on inter-DC communication cost, dollars (Eq. 7).
  /// <= 0 disables the constraint.
  double budget = 0;

  /// Required optimization overhead T_opt, seconds. The adaptive sampler
  /// (Eq. 14) sizes each step's agent set to finish within it.
  /// <= 0 disables the time constraint (all agents train every step).
  double t_opt_seconds = 0;
  /// Deterministic alternative to t_opt_seconds: a total budget of agent
  /// visits (one visit = one agent trained for one step) spread evenly
  /// over the remaining steps. Unlike wall-clock budgets this is exactly
  /// reproducible across machines; benches that need stable numbers use
  /// it. 0 disables. When both budgets are set the smaller sampling rate
  /// wins.
  int64_t agent_visit_budget = 0;
  /// Initial sampling rate SR_0 (Sec. V-C).
  double initial_sample_rate = 0.01;
  /// Lower bound on the adaptive sampling rate.
  double min_sample_rate = 0.001;
  /// If > 0, overrides adaptive sampling with a fixed rate (used by the
  /// batch-size study, Exp#3, which fixes SR = 10%).
  double fixed_sample_rate = 0;
  /// Sample the highest-degree agents instead of the lowest-degree ones.
  /// Only for the Fig. 9 ablation — the paper shows low-degree agents
  /// contribute most per unit of training time.
  bool sample_highest_degree_first = false;
  /// Extension beyond the paper: reserve this fraction of each step's
  /// sampled slots for the agents with the largest apply-message volume
  /// (degree-weighted). For uniform-message workloads (PageRank) this is
  /// a no-op in effect; for degree-proportional workloads (subgraph
  /// isomorphism) it lets the few hub masters that dominate the
  /// bottleneck train even at small sampling rates. 0 restores the
  /// paper's pure lowest-degree-first sampling.
  double hub_slot_fraction = 0.1;

  /// Degree-balanced greedy assignment of agents to threads (Sec. V-B).
  bool straggler_mitigation = true;

  /// Extension beyond the paper: weight of the smooth per-link-sum
  /// surrogate in the score function. Eq. 1 is a bottleneck objective on
  /// which most single-vertex moves score exactly 0; the surrogate
  /// supplies a gradient on that plateau. 0 restores Eq. 10 exactly.
  double smooth_weight = 0.2;

  /// Extension beyond the paper: penalize a move's cost increase in the
  /// score with a pressure factor that grows quadratically as total cost
  /// approaches the budget. Eq. 10 alone ignores cost until the budget
  /// is *violated*, which lets early low-value moves exhaust the budget
  /// before high-value moves are considered. false restores Eq. 10
  /// exactly.
  bool budget_pressure = true;

  /// Early stop when a step improves the objective by less than this
  /// relative amount while the budget is satisfied.
  double convergence_epsilon = 1e-4;

  // ---- Robustness knobs (docs/robustness.md) -------------------------

  /// Wall-clock deadline for one batch's parallel scoring stage,
  /// seconds. On expiry the incomplete agent chunks are speculatively
  /// re-dispatched with exponential backoff (scoring is pure until the
  /// commit phase, so duplicate execution is harmless); after
  /// `chunk_max_retries` rounds the coordinator runs the stragglers
  /// inline. <= 0 means no deadline — except while a fault schedule is
  /// armed, where a short default keeps injected stalls and dropped
  /// tasks bounded.
  double batch_deadline_seconds = 0;
  /// Speculative re-dispatch rounds before the inline fallback.
  int chunk_max_retries = 2;

  /// Auto-checkpoint: every N completed steps, write a crash-consistent
  /// rotating checkpoint (primary + ".prev" last-good) to
  /// `checkpoint_path`. 0 disables. Save failures are counted and
  /// logged, never fatal to training.
  int checkpoint_every_steps = 0;
  std::string checkpoint_path;

  uint64_t seed = 1;
};

/// Default logical shard count when RLCutOptions::num_shards is 0.
inline constexpr int kDefaultNumShards = 8;

}  // namespace rlcut

#endif  // RLCUT_RLCUT_OPTIONS_H_
