// The string-keyed partitioner registry declared in
// baselines/partitioner.h. It lives in rlcut_core (one layer above the
// baselines) because it must see MakeRLCut: with RLCut registered, the
// CLI tool and the comparison benches select every method — learned or
// heuristic — through one code path instead of hand-rolled dispatch.

#include <functional>

#include "baselines/extra_partitioners.h"
#include "baselines/partitioner.h"
#include "rlcut/rlcut_partitioner.h"
#include "rlcut/session.h"

namespace rlcut {
namespace {

struct RegistryEntry {
  PartitionerInfo info;
  std::function<std::unique_ptr<Partitioner>(const PartitionerOptions&)>
      factory;
};

/// Registration order is the listing order: the paper's six Fig. 10
/// comparisons, then RLCut, then the extras.
const std::vector<RegistryEntry>& Registry() {
  static const std::vector<RegistryEntry>* registry = new std::vector<
      RegistryEntry>{
      {{"RandPG", "balanced vertex-cut by random edge assignment", true,
        false},
       [](const PartitionerOptions&) { return MakeRandPg(); }},
      {{"Geo-Cut", "network-aware streaming vertex-cut under a cost budget",
        true, true},
       [](const PartitionerOptions& o) {
         GeoCutOptions opt;
         if (o.refinement_rounds >= 0) {
           opt.refinement_rounds = o.refinement_rounds;
         }
         return MakeGeoCut(opt);
       }},
      {{"HashPL", "hybrid-cut with hash-based master assignment", true,
        false},
       [](const PartitionerOptions&) { return MakeHashPl(); }},
      {{"Ginger", "hybrid-cut with Fennel-style greedy low-degree placement",
        true, false},
       [](const PartitionerOptions&) { return MakeGinger(); }},
      {{"Revolver", "learning-automata edge-cut", true, false},
       [](const PartitionerOptions& o) {
         RevolverOptions opt;
         if (o.iterations > 0) opt.iterations = o.iterations;
         return MakeRevolver(opt);
       }},
      {{"Spinner", "capacity-constrained label-propagation edge-cut", true,
        false},
       [](const PartitionerOptions& o) {
         SpinnerOptions opt;
         if (o.iterations > 0) opt.max_iterations = o.iterations;
         if (o.balance_slack > 0) opt.balance_slack = o.balance_slack;
         return MakeSpinner(opt);
       }},
      {{"RLCut", "multi-agent RL hybrid-cut under time and cost budgets",
        false, true},
       [](const PartitionerOptions& o) {
         RLCutOptions opt;
         opt.t_opt_seconds = o.t_opt_seconds;
         opt.agent_visit_budget = o.agent_visit_budget;
         if (o.max_steps > 0) opt.max_steps = o.max_steps;
         if (o.num_shards > 0) opt.num_shards = o.num_shards;
         return MakeRLCut(opt);
       }},
      {{"Annealing", "simulated annealing over hybrid-cut masters", false,
        true},
       [](const PartitionerOptions&) { return MakeAnnealing(); }},
      {{"Fennel", "single-pass streaming edge-cut", false, false},
       [](const PartitionerOptions&) { return MakeFennel(); }},
      {{"GrapH", "heterogeneity-aware adaptive vertex-cut", false, false},
       [](const PartitionerOptions& o) {
         GrapHOptions opt;
         if (o.iterations > 0) opt.migration_rounds = o.iterations;
         return MakeGrapH(opt);
       }},
      {{"HDRF", "high-degree-replicated-first streaming vertex-cut", false,
        false},
       [](const PartitionerOptions&) { return MakeHdrf(); }},
      {{"LDG", "linear deterministic greedy streaming edge-cut", false,
        false},
       [](const PartitionerOptions&) { return MakeLdg(); }},
      {{"Multilevel", "METIS-style multilevel edge-cut", false, false},
       [](const PartitionerOptions& o) {
         MultilevelOptions opt;
         if (o.iterations > 0) opt.refinement_passes = o.iterations;
         return MakeMultilevel(opt);
       }},
      {{"Oblivious", "PowerGraph greedy vertex-cut", false, false},
       [](const PartitionerOptions&) { return MakeOblivious(); }},
      {{"SingleAgentRL", "single automaton over the joint action space",
        false, false},
       [](const PartitionerOptions&) { return MakeSingleAgentRl(); }},
  };
  return *registry;
}

const RegistryEntry* FindEntry(const std::string& name) {
  for (const RegistryEntry& entry : Registry()) {
    if (entry.info.name == name) return &entry;
  }
  // Historical spelling aliases accepted by the old dispatch.
  if (name == "GeoCut") return FindEntry("Geo-Cut");
  if (name == "Hdrf") return FindEntry("HDRF");
  if (name == "Ldg") return FindEntry("LDG");
  return nullptr;
}

}  // namespace

std::vector<PartitionerInfo> ListPartitioners() {
  std::vector<PartitionerInfo> out;
  out.reserve(Registry().size());
  for (const RegistryEntry& entry : Registry()) out.push_back(entry.info);
  return out;
}

Result<std::unique_ptr<Partitioner>> MakePartitionerByName(
    const std::string& name, const PartitionerOptions& options) {
  const RegistryEntry* entry = FindEntry(name);
  if (entry == nullptr) {
    std::string known;
    for (const RegistryEntry& e : Registry()) {
      if (!known.empty()) known += ", ";
      known += e.info.name;
    }
    return Status::NotFound("unknown partitioner '" + name +
                            "' (known: " + known + ")");
  }
  return entry->factory(options);
}

std::unique_ptr<Partitioner> MakePartitionerByName(const std::string& name) {
  const RegistryEntry* entry = FindEntry(name);
  if (entry == nullptr) return nullptr;
  return entry->factory(PartitionerOptions{});
}

Result<std::unique_ptr<PartitioningSession>> OpenPartitioningSession(
    const std::string& method, const PartitionerContext& ctx,
    const SessionOptions& options) {
  const RegistryEntry* entry = FindEntry(method);
  if (entry == nullptr) {
    std::string known;
    for (const RegistryEntry& e : Registry()) {
      if (!known.empty()) known += ", ";
      known += e.info.name;
    }
    return Status::NotFound("unknown partitioner '" + method +
                            "' (known: " + known + ")");
  }
  if (entry->info.name == "RLCut") {
    // The incremental session: persistent automata, affected-only
    // re-training. Mirrors the registry factory's options mapping.
    RLCutSessionOptions session_options;
    session_options.initial.t_opt_seconds = options.partitioner.t_opt_seconds;
    session_options.initial.agent_visit_budget =
        options.partitioner.agent_visit_budget;
    if (options.partitioner.max_steps > 0) {
      session_options.initial.max_steps = options.partitioner.max_steps;
    }
    if (options.partitioner.num_shards > 0) {
      session_options.initial.num_shards = options.partitioner.num_shards;
    }
    session_options.incremental = session_options.initial;
    session_options.drift_threshold = options.drift_threshold;
    Result<std::unique_ptr<RLCutSession>> session =
        RLCutSession::Open(ctx, std::move(session_options));
    if (!session.ok()) return session.status();
    return std::unique_ptr<PartitioningSession>(std::move(*session));
  }
  std::unique_ptr<Partitioner> partitioner =
      entry->factory(options.partitioner);
  Result<std::unique_ptr<OneShotSession>> session =
      OneShotSession::Open(std::move(partitioner), ctx);
  if (!session.ok()) return session.status();
  return std::unique_ptr<PartitioningSession>(std::move(*session));
}

std::vector<std::unique_ptr<Partitioner>> MakePaperBaselines() {
  std::vector<std::unique_ptr<Partitioner>> baselines;
  for (const RegistryEntry& entry : Registry()) {
    if (!entry.info.paper_comparison) continue;
    baselines.push_back(entry.factory(PartitionerOptions{}));
  }
  return baselines;
}

}  // namespace rlcut
