#include "rlcut/rlcut_partitioner.h"

#include "common/timer.h"

namespace rlcut {

RLCutRunOutput RunRLCut(const PartitionerContext& ctx, RLCutOptions options) {
  if (options.budget == 0) options.budget = ctx.budget;
  if (options.seed == RLCutOptions{}.seed) options.seed = ctx.seed;

  PartitionConfig config;
  config.model = ComputeModel::kHybridCut;
  config.theta = ctx.theta;
  config.workload = ctx.workload;
  PartitionState state(ctx.graph, ctx.topology, ctx.locations,
                       ctx.input_sizes, config);
  state.ResetDerived(*ctx.locations);  // natural partitioning

  RLCutTrainer trainer(options);
  TrainResult train = trainer.Train(&state);
  return RLCutRunOutput(std::move(state), std::move(train));
}

namespace {

class RLCutPartitioner : public Partitioner {
 public:
  explicit RLCutPartitioner(RLCutOptions options) : options_(options) {}

  std::string name() const override { return "RLCut"; }
  ComputeModel model() const override { return ComputeModel::kHybridCut; }

  PartitionOutput DoRun(const PartitionerContext& ctx) override {
    RLCutRunOutput out = RunRLCut(ctx, options_);
    return PartitionOutput(std::move(out.state),
                           out.train.overhead_seconds);
  }

 private:
  RLCutOptions options_;
};

}  // namespace

std::unique_ptr<Partitioner> MakeRLCut(RLCutOptions options) {
  return std::make_unique<RLCutPartitioner>(options);
}

}  // namespace rlcut
