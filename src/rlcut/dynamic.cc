#include "rlcut/dynamic.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "cloud/topology_schedule.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/timer.h"
#include "graph/geo.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "partition/migration.h"

namespace rlcut {

DynamicPartitionDriver::DynamicPartitionDriver(const Topology* topology,
                                               Workload workload,
                                               uint32_t theta, uint64_t seed)
    : topology_(topology),
      workload_(std::move(workload)),
      theta_(theta),
      seed_(seed) {
  RLCUT_CHECK(topology_ != nullptr);
}

void DynamicPartitionDriver::RebuildState(
    const std::vector<DcId>* carry_masters) {
  // Snapshot the outgoing layout while the old graph AND state are
  // still alive (the state holds a pointer into graph_).
  if (carry_masters != nullptr && state_ != nullptr) CaptureCarryover();
  GraphBuilder builder(num_vertices_);
  builder.AddEdges(edges_);
  graph_ = std::make_unique<Graph>(std::move(builder).Build());
  input_sizes_ = AssignInputSizes(*graph_);

  PartitionConfig config;
  config.model = model();
  config.theta = theta_;
  config.workload = workload_;
  state_ = std::make_unique<PartitionState>(
      graph_.get(), topology_, &locations_, &input_sizes_, config);
  ReinstateLayout(carry_masters ? *carry_masters : locations_);
}

void DynamicPartitionDriver::ReinstateLayout(
    const std::vector<DcId>& masters) {
  state_->ResetDerived(masters);
}

void DynamicPartitionDriver::SetTopology(const Topology& topology) {
  RLCUT_CHECK_EQ(topology.num_dcs(), topology_->num_dcs());
  effective_topology_ = topology;
  topology_ = &*effective_topology_;
  if (state_ != nullptr) state_->UpdateTopology(topology_);
}

double DynamicPartitionDriver::Initialize(VertexId num_vertices,
                                          std::vector<Edge> initial_edges,
                                          std::vector<DcId> locations) {
  RLCUT_CHECK_EQ(locations.size(), num_vertices);
  num_vertices_ = num_vertices;
  edges_ = std::move(initial_edges);
  locations_ = std::move(locations);
  RebuildState(nullptr);
  WallTimer timer;
  InitialPartition();
  return timer.ElapsedSeconds();
}

WindowResult DynamicPartitionDriver::ApplyWindow(
    const std::vector<Edge>& changed_edges, uint64_t change_count) {
  RLCUT_CHECK(state_ != nullptr) << "Initialize must be called first";
  // Carry masters across the rebuild (vertex ids are stable).
  std::vector<DcId> carried = state_->masters();

  std::vector<VertexId> affected;
  affected.reserve(changed_edges.size() * 2);
  for (const Edge& e : changed_edges) {
    affected.push_back(e.src);
    affected.push_back(e.dst);
  }
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());

  WallTimer rebuild_timer;
  RebuildState(&carried);
  const double rebuild_seconds = rebuild_timer.ElapsedSeconds();

  WindowResult result;
  result.inserted_edges = change_count;
  result.overhead_seconds = rebuild_seconds + AdaptWindow(affected);
  const Objective obj = state_->CurrentObjective();
  result.transfer_seconds = obj.transfer_seconds;
  result.cost_dollars = obj.cost_dollars;
  result.replication_factor = state_->ReplicationFactor();
  const MigrationSummary migration =
      PlanMigration(carried, state_->masters(), input_sizes_, *topology_);
  result.vertices_migrated = migration.vertices_moved;
  result.migration_bytes = migration.bytes_moved;
  result.migration_seconds = migration.transfer_seconds;
  return result;
}

WindowResult DynamicPartitionDriver::InsertWindow(
    const std::vector<Edge>& new_edges) {
  edges_.insert(edges_.end(), new_edges.begin(), new_edges.end());
  return ApplyWindow(new_edges, new_edges.size());
}

WindowResult DynamicPartitionDriver::RemoveWindow(
    const std::vector<Edge>& removed_edges) {
  // Multiset removal: each requested edge deletes one occurrence.
  std::unordered_map<uint64_t, int64_t> to_remove;
  auto key = [](const Edge& e) {
    return (static_cast<uint64_t>(e.src) << 32) | e.dst;
  };
  for (const Edge& e : removed_edges) ++to_remove[key(e)];
  uint64_t removed = 0;
  std::vector<Edge> kept;
  kept.reserve(edges_.size());
  for (const Edge& e : edges_) {
    auto it = to_remove.find(key(e));
    if (it != to_remove.end() && it->second > 0) {
      --it->second;
      ++removed;
      continue;
    }
    kept.push_back(e);
  }
  edges_ = std::move(kept);
  return ApplyWindow(removed_edges, removed);
}

// ---- RLCut driver ------------------------------------------------------

RLCutDynamicDriver::RLCutDynamicDriver(const Topology* topology,
                                       Workload workload, uint32_t theta,
                                       uint64_t seed,
                                       RLCutOptions initial_options,
                                       RLCutOptions window_options)
    : DynamicPartitionDriver(topology, std::move(workload), theta, seed),
      initial_options_(initial_options),
      window_options_(window_options) {}

void RLCutDynamicDriver::InitialPartition() {
  pool_ = std::make_unique<AutomatonPool>(
      graph().num_vertices(), mutable_state()->num_dcs(), window_options_);
  RLCutTrainer trainer(initial_options_);
  std::vector<VertexId> all(graph().num_vertices());
  std::iota(all.begin(), all.end(), 0u);
  trainer.Train(mutable_state(), std::move(all), pool_.get());
}

double RLCutDynamicDriver::AdaptWindow(
    const std::vector<VertexId>& affected) {
  WallTimer timer;
  RLCutTrainer trainer(window_options_);
  trainer.Train(mutable_state(), std::vector<VertexId>(affected),
                pool_.get());
  return timer.ElapsedSeconds();
}

ReoptimizationResult RLCutDynamicDriver::OnTopologyEvent(
    const Topology& new_topology, double trigger_threshold) {
  RLCUT_CHECK(pool_ != nullptr) << "Initialize must be called first";
  obs::TraceSpan event_span("dynamic/topology_event", "dynamic");
  obs::MetricsRegistry& registry = obs::DefaultRegistry();
  registry.GetCounter("dynamic.topology_events")->Increment();

  ReoptimizationResult result;
  result.drift = TopologyDrift(topology(), new_topology);
  const uint64_t changed_dcs =
      ChangedDcMask(topology(), new_topology, trigger_threshold);
  event_span.AddArg("drift", result.drift);

  SetTopology(new_topology);
  result.transfer_seconds_before =
      state().CurrentObjective().transfer_seconds;
  result.transfer_seconds_after = result.transfer_seconds_before;
  if (result.drift < trigger_threshold || changed_dcs == 0) {
    registry.GetCounter("dynamic.reopt_skipped")->Increment();
    return result;
  }

  // Affected agents: vertices with a replica (master or mirror) in a
  // changed DC — their traffic crosses the links that moved. They
  // resume from the policies learned so far instead of cold-starting.
  result.triggered = true;
  registry.GetCounter("dynamic.reopt_triggered")->Increment();
  std::vector<VertexId> affected;
  state().ForEachVertexWithReplicaIn(
      changed_dcs, [&](VertexId v) { affected.push_back(v); });
  result.affected_vertices = affected.size();
  event_span.AddArg("affected", static_cast<double>(affected.size()));

  const std::vector<DcId> pre_event_masters = state().masters();
  WallTimer timer;
  {
    obs::TraceSpan train_span("dynamic/reopt_train", "dynamic");
    RLCutTrainer trainer(window_options_);
    trainer.Train(mutable_state(), std::move(affected), pool_.get());
  }
  result.overhead_seconds = timer.ElapsedSeconds();

  const double adapted = state().CurrentObjective().transfer_seconds;
  if (adapted > result.transfer_seconds_before) {
    // Graceful degradation: a re-optimization that regressed the
    // objective is undone; the learned policy updates are kept.
    mutable_state()->ResetDerived(pre_event_masters);
    result.rolled_back = true;
    registry.GetCounter("dynamic.reopt_rollbacks")->Increment();
  } else {
    result.transfer_seconds_after = adapted;
  }
  return result;
}

// ---- Leopard driver ------------------------------------------------------

namespace {

uint64_t EdgeKey(VertexId src, VertexId dst) {
  return (static_cast<uint64_t>(src) << 32) | dst;
}

}  // namespace

LeopardDynamicDriver::LeopardDynamicDriver(const Topology* topology,
                                           Workload workload,
                                           uint32_t theta, uint64_t seed)
    : DynamicPartitionDriver(topology, std::move(workload), theta, seed) {}

DcId LeopardDynamicDriver::PickDcForEdge(const PartitionState& state,
                                         VertexId src, VertexId dst) const {
  const int num_dcs = state.num_dcs();
  const uint64_t shared = state.ReplicaMask(src) & state.ReplicaMask(dst);
  const uint64_t any = state.ReplicaMask(src) | state.ReplicaMask(dst);
  const uint64_t candidates =
      shared != 0 ? shared : (any != 0 ? any : ~0ull >> (64 - num_dcs));
  DcId best = kNoDc;
  for (DcId r = 0; r < num_dcs; ++r) {
    if (!((candidates >> r) & 1)) continue;
    if (best == kNoDc || state.EdgeCount(r) < state.EdgeCount(best)) {
      best = r;
    }
  }
  return best;
}

void LeopardDynamicDriver::PlaceUnplacedEdges() {
  PartitionState* state = mutable_state();
  const Graph& g = graph();
  std::vector<VertexId> touched;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (state->edge_dc(e) != kNoDc) continue;
    const VertexId src = g.EdgeSource(e);
    const VertexId dst = g.EdgeTarget(e);
    state->PlaceEdge(e, PickDcForEdge(*state, src, dst));
    touched.push_back(src);
    touched.push_back(dst);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()),
                touched.end());
  // Master refresh: move each touched vertex's master to its
  // most-incident replica DC (Leopard's replication-aware master rule).
  std::vector<uint32_t> incident(state->num_dcs());
  for (VertexId v : touched) {
    std::fill(incident.begin(), incident.end(), 0u);
    for (EdgeId e = g.OutEdgeBegin(v); e < g.OutEdgeEnd(v); ++e) {
      if (state->edge_dc(e) != kNoDc) ++incident[state->edge_dc(e)];
    }
    for (EdgeId e : g.InEdgeIds(v)) {
      if (state->edge_dc(e) != kNoDc) ++incident[state->edge_dc(e)];
    }
    DcId best = state->master(v);
    for (DcId r = 0; r < state->num_dcs(); ++r) {
      if (incident[r] > incident[best]) best = r;
    }
    if (best != state->master(v)) state->SetMaster(v, best);
  }
}

void LeopardDynamicDriver::InitialPartition() { PlaceUnplacedEdges(); }

double LeopardDynamicDriver::AdaptWindow(
    const std::vector<VertexId>& affected) {
  (void)affected;  // placement itself identifies the new edges
  WallTimer timer;
  PlaceUnplacedEdges();
  return timer.ElapsedSeconds();
}

void LeopardDynamicDriver::CaptureCarryover() {
  carried_edges_.clear();
  const Graph& g = graph();
  const PartitionState& st = state();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    carried_edges_[EdgeKey(g.EdgeSource(e), g.EdgeTarget(e))].push_back(
        st.edge_dc(e));
  }
}

void LeopardDynamicDriver::ReinstateLayout(
    const std::vector<DcId>& masters) {
  PartitionState* state = mutable_state();
  state->ResetUnplaced(masters);
  if (carried_edges_.empty()) return;
  const Graph& g = graph();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    auto it = carried_edges_.find(EdgeKey(g.EdgeSource(e), g.EdgeTarget(e)));
    if (it == carried_edges_.end() || it->second.empty()) continue;
    const DcId dc = it->second.back();
    it->second.pop_back();
    if (dc != kNoDc) state->PlaceEdge(e, dc);
  }
  carried_edges_.clear();
}

// ---- Spinner driver ----------------------------------------------------

SpinnerDynamicDriver::SpinnerDynamicDriver(const Topology* topology,
                                           Workload workload, uint32_t theta,
                                           uint64_t seed,
                                           SpinnerOptions options)
    : DynamicPartitionDriver(topology, std::move(workload), theta, seed),
      options_(options) {}

void SpinnerDynamicDriver::InitialPartition() {
  Rng rng(seed());
  std::vector<VertexId> all(graph().num_vertices());
  std::iota(all.begin(), all.end(), 0u);
  SpinnerCore core(options_);
  core.Refine(mutable_state(), std::move(all), &rng);
}

double SpinnerDynamicDriver::AdaptWindow(
    const std::vector<VertexId>& affected) {
  WallTimer timer;
  Rng rng(seed() + 1);
  SpinnerCore core(options_);
  core.Refine(mutable_state(), std::vector<VertexId>(affected), &rng);
  return timer.ElapsedSeconds();
}

}  // namespace rlcut
