#include "rlcut/automaton.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace rlcut {

AutomatonPool::AutomatonPool(VertexId num_vertices, int num_dcs,
                             const RLCutOptions& options)
    : num_dcs_(num_dcs), options_(options) {
  RLCUT_CHECK_GE(num_dcs, 1);
  RLCUT_CHECK_GT(options.alpha, 0.0);
  RLCUT_CHECK_LT(options.alpha, 1.0);
  const size_t total = static_cast<size_t>(num_vertices) * num_dcs;
  prob_.assign(total, 1.0 / num_dcs);
  mean_q_.assign(total, 0.0);
  count_.assign(total, 0u);
}

AutomatonPoolState AutomatonPool::Snapshot() const {
  AutomatonPoolState snapshot;
  snapshot.num_vertices = num_vertices();
  snapshot.num_dcs = num_dcs_;
  snapshot.prob = prob_;
  snapshot.mean_q = mean_q_;
  snapshot.count = count_;
  return snapshot;
}

Status AutomatonPool::Restore(const AutomatonPoolState& snapshot) {
  if (snapshot.num_dcs != num_dcs_ ||
      snapshot.num_vertices != num_vertices()) {
    return Status::FailedPrecondition(
        "automaton snapshot dimensions do not match the pool");
  }
  const size_t total = prob_.size();
  if (snapshot.prob.size() != total || snapshot.mean_q.size() != total ||
      snapshot.count.size() != total) {
    return Status::InvalidArgument("automaton snapshot arrays are malformed");
  }
  prob_ = snapshot.prob;
  mean_q_ = snapshot.mean_q;
  count_ = snapshot.count;
  return Status::Ok();
}

void AutomatonPool::UpdateSignals(VertexId v, DcId rewarded) {
  double* p = &prob_[Index(v, 0)];
  const double alpha = options_.alpha;
  // Eq. 12: boost the rewarded action, shrink the rest.
  for (DcId r = 0; r < num_dcs_; ++r) {
    p[r] = (r == rewarded) ? p[r] + alpha * (1.0 - p[r])
                           : p[r] * (1.0 - alpha);
  }
  if (options_.use_penalty && num_dcs_ > 1) {
    // Eq. 9, applied to each penalized action in turn: shrink it and
    // spread the mass over the others. (The Fig. 6 ablation only; slower
    // convergence, same fixed point.)
    const double beta = options_.beta;
    for (DcId penalized = 0; penalized < num_dcs_; ++penalized) {
      if (penalized == rewarded) continue;
      const double share = beta * p[penalized] / (num_dcs_ - 1);
      for (DcId r = 0; r < num_dcs_; ++r) {
        if (r == penalized) {
          p[r] *= (1.0 - beta);
        } else {
          p[r] += share;
        }
      }
    }
  }
}

void AutomatonPool::RecordSelection(VertexId v, DcId action, double reward) {
  const size_t i = Index(v, action);
  ++count_[i];
  // Incremental mean.
  mean_q_[i] += (reward - mean_q_[i]) / count_[i];
}

DcId AutomatonPool::SelectAction(VertexId v, int64_t step, Rng* rng) const {
  const double* p = &prob_[Index(v, 0)];
  switch (options_.selection) {
    case ActionSelection::kProbability: {
      std::vector<double> weights(p, p + num_dcs_);
      return static_cast<DcId>(rng->SampleDiscrete(weights));
    }
    case ActionSelection::kGreedy: {
      DcId best = 0;
      for (DcId r = 1; r < num_dcs_; ++r) {
        if (p[r] > p[best]) best = r;
      }
      return best;
    }
    case ActionSelection::kUcbBlend:
    case ActionSelection::kUcbScore:
      break;
  }
  // Eq. 13. Untried actions have UCB = inf; break inf-ties by the
  // automaton probability so signal accumulation still matters early.
  // `step` is constant across the thousands of agents of one training
  // step, so the log is memoized; not safe under concurrent callers
  // (the trainer selects actions in its sequential commit phase).
  if (step != cached_log_step_) {
    cached_log_step_ = step;
    cached_log_n_ =
        std::log(static_cast<double>(std::max<int64_t>(2, step)));
  }
  const double log_n = cached_log_n_;
  DcId best = 0;
  double best_value = -std::numeric_limits<double>::infinity();
  bool best_is_untried = false;
  for (DcId r = 0; r < num_dcs_; ++r) {
    const uint32_t n_r = count_[Index(v, r)];
    if (n_r == 0) {
      if (!best_is_untried || p[r] > p[best]) {
        best = r;
        best_is_untried = true;
        best_value = std::numeric_limits<double>::infinity();
      }
      continue;
    }
    if (best_is_untried) continue;
    const double exploit =
        options_.selection == ActionSelection::kUcbBlend
            ? 0.5 * mean_q_[Index(v, r)] + 0.5 * p[r]
            : mean_q_[Index(v, r)];
    const double value = exploit + options_.ucb_c * std::sqrt(log_n / n_r);
    if (value > best_value) {
      best_value = value;
      best = r;
    }
  }
  return best;
}

}  // namespace rlcut
