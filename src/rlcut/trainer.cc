#include "rlcut/trainer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <numeric>
#include <string>
#include <string_view>
#include <unordered_map>

#include "check/invariants.h"
#include "common/logging.h"
#include "common/timer.h"
#include "fault/fault.h"
#include "obs/trace.h"
#include "partition/plan_delta.h"
#include "rlcut/checkpoint.h"
#include "rlcut/shard.h"

namespace rlcut {
namespace {

// delta(x) of Eq. 10: 1 if x > 0 else 0.
inline double Delta(double x) { return x > 0 ? 1.0 : 0.0; }

// Score of moving from objective `before` to `after` (Eq. 10 with the
// last-iteration values replaced by `before`), used both for per-DC
// scores and for the migration rollback check. `smooth_weight` and
// `cost_pressure` are the extension weights (0 = paper-exact Eq. 10).
double ObjectiveScore(const Objective& before, const Objective& after,
                      double tw, double cw, double budget_delta,
                      double smooth_weight, double cost_pressure,
                      double budget) {
  double score = 0;
  if (before.transfer_seconds > 0) {
    score += tw * (before.transfer_seconds - after.transfer_seconds) /
             before.transfer_seconds;
  }
  if (smooth_weight > 0 && before.smooth_seconds > 0) {
    score += smooth_weight * tw *
             (before.smooth_seconds - after.smooth_seconds) /
             before.smooth_seconds;
  }
  if (before.cost_dollars > 0) {
    score += cw * (before.cost_dollars - after.cost_dollars) /
             before.cost_dollars * budget_delta;
  }
  if (cost_pressure > 0 && budget > 0) {
    score -= cost_pressure *
             (after.cost_dollars - before.cost_dollars) / budget;
  }
  return score;
}

// Instruments of one training step's "trainer.step.*" series, fetched
// once per step so the hot loops update raw counters.
struct StepInstruments {
  obs::Counter* migrations;
  obs::Counter* rollbacks;
  obs::Gauge* sample_rate;
  obs::Gauge* num_agents;
  obs::Gauge* seconds;
  obs::Gauge* transfer_seconds;
  obs::Gauge* cost_dollars;

  // `label` is the {"step", i} set for this step; callers reuse one
  // LabelSet across steps instead of rebuilding the pair per step.
  StepInstruments(obs::MetricsRegistry* registry,
                  const obs::LabelSet& label) {
    migrations = registry->GetCounter("trainer.step.migrations", label);
    rollbacks = registry->GetCounter("trainer.step.rollbacks", label);
    sample_rate = registry->GetGauge("trainer.step.sample_rate", label);
    num_agents = registry->GetGauge("trainer.step.num_agents", label);
    seconds = registry->GetGauge("trainer.step.seconds", label);
    transfer_seconds =
        registry->GetGauge("trainer.step.transfer_seconds", label);
    cost_dollars = registry->GetGauge("trainer.step.cost_dollars", label);
  }
};

// One attempt at scoring one agent chunk. The scoring stage is pure
// (reads the frozen batch-start state, writes only this buffer), so a
// chunk may be executed several times concurrently — by the original
// dispatch, a speculative re-dispatch after a deadline, or the inline
// fallback — and any completed attempt is a valid winner. Retry
// attempts own their EvalScratch; the first round borrows the
// trainer's persistent per-worker scratch.
struct ChunkScores {
  std::vector<double> scores;  // slot-major: [i * num_dcs + r]
  std::vector<DcId> rho;
  std::unique_ptr<EvalScratch> owned_scratch;
};

// Coordination for one batch's scoring stage: chunks claim a winner
// and report attempt completion; the coordinator waits with a deadline
// and re-dispatches stragglers.
struct BatchSync {
  std::mutex mu;
  std::condition_variable cv;
  size_t claimed = 0;  // chunks with a winning attempt
  size_t pending = 0;  // dispatched attempts not yet finished
};

}  // namespace

std::vector<StepStats> StepStatsFromRegistry(
    const obs::MetricsRegistry& registry) {
  std::vector<StepStats> steps;
  // Step label -> steps index; the snapshot interleaves the series, so
  // a linear search here would make materialization O(steps^2).
  std::unordered_map<int, size_t> index;
  auto stats_for = [&steps, &index](int step) -> StepStats& {
    const auto [it, inserted] = index.try_emplace(step, steps.size());
    if (inserted) {
      steps.emplace_back();
      steps.back().step = step;
    }
    return steps[it->second];
  };
  constexpr std::string_view kPrefix = "trainer.step.";
  for (const obs::MetricSample& sample : registry.Snapshot()) {
    if (sample.name.rfind(kPrefix, 0) != 0) continue;
    const std::string step_label = sample.LabelValue("step");
    if (step_label.empty()) continue;
    StepStats& s = stats_for(std::stoi(step_label));
    const std::string_view field =
        std::string_view(sample.name).substr(kPrefix.size());
    if (field == "migrations") {
      s.migrations = static_cast<uint64_t>(sample.value);
    } else if (field == "rollbacks") {
      s.rollbacks = static_cast<uint64_t>(sample.value);
    } else if (field == "sample_rate") {
      s.sample_rate = sample.value;
    } else if (field == "num_agents") {
      s.num_agents = static_cast<uint64_t>(sample.value);
    } else if (field == "seconds") {
      s.seconds = sample.value;
    } else if (field == "transfer_seconds") {
      s.transfer_seconds = sample.value;
    } else if (field == "cost_dollars") {
      s.cost_dollars = sample.value;
    }
  }
  std::sort(steps.begin(), steps.end(),
            [](const StepStats& a, const StepStats& b) {
              return a.step < b.step;
            });
  return steps;
}

Status ValidateRLCutOptions(const RLCutOptions& options) {
  if (options.max_steps <= 0) {
    return Status::InvalidArgument("max_steps must be positive, got " +
                                   std::to_string(options.max_steps));
  }
  if (options.batch_size <= 0) {
    return Status::InvalidArgument("batch_size must be positive, got " +
                                   std::to_string(options.batch_size));
  }
  if (options.num_threads < 0) {
    return Status::InvalidArgument(
        "num_threads must be >= 0 (0 = hardware concurrency), got " +
        std::to_string(options.num_threads));
  }
  if (options.num_shards < 0) {
    return Status::InvalidArgument(
        "num_shards must be >= 0 (0 = kDefaultNumShards), got " +
        std::to_string(options.num_shards));
  }
  if (options.shard_sync_batches < 0) {
    return Status::InvalidArgument(
        "shard_sync_batches must be >= 0, got " +
        std::to_string(options.shard_sync_batches));
  }
  if (options.chunk_max_retries < 0) {
    return Status::InvalidArgument("chunk_max_retries must be >= 0, got " +
                                   std::to_string(options.chunk_max_retries));
  }
  if (options.checkpoint_every_steps < 0) {
    return Status::InvalidArgument(
        "checkpoint_every_steps must be >= 0 (0 = disabled), got " +
        std::to_string(options.checkpoint_every_steps));
  }
  if (options.checkpoint_every_steps > 0 && options.checkpoint_path.empty()) {
    return Status::InvalidArgument(
        "checkpoint_every_steps > 0 requires a checkpoint_path");
  }
  return Status::Ok();
}

Result<std::unique_ptr<RLCutTrainer>> RLCutTrainer::Create(
    const RLCutOptions& options) {
  if (Status valid = ValidateRLCutOptions(options); !valid.ok()) {
    return valid;
  }
  return std::make_unique<RLCutTrainer>(options);
}

RLCutTrainer::RLCutTrainer(const RLCutOptions& options) : options_(options) {
  // Clamp instead of crashing: callers holding options from external
  // input validate through Create()/ValidateRLCutOptions() first and
  // get a Status; programmatic callers get nearest-legal behavior.
  options_.max_steps = std::max(1, options_.max_steps);
  options_.batch_size = std::max(1, options_.batch_size);
  options_.num_threads = std::max(0, options_.num_threads);
  options_.num_shards = std::max(0, options_.num_shards);
  options_.shard_sync_batches = std::max(0, options_.shard_sync_batches);
  options_.chunk_max_retries = std::max(0, options_.chunk_max_retries);
  num_threads_ = options_.num_threads > 0
                     ? static_cast<size_t>(options_.num_threads)
                     : DefaultThreadCount();
  // The shard count deliberately does NOT default to hardware
  // concurrency: it is a checkpoint property (see RLCutOptions), so its
  // default must be the same constant on every host.
  num_shards_ = options_.num_shards > 0
                    ? static_cast<size_t>(options_.num_shards)
                    : static_cast<size_t>(kDefaultNumShards);
  pool_ = std::make_unique<ThreadPool>(num_threads_);
}

RLCutTrainer::~RLCutTrainer() = default;

Status RLCutTrainer::ValidateResume(const TrainerSession& session) const {
  // Legacy (pre-sharding) sessions carry the shard count implicitly as
  // the number of saved PRNG streams.
  const size_t session_shards = session.num_shards != 0
                                    ? static_cast<size_t>(session.num_shards)
                                    : session.rng_states.size();
  if (session.started && session_shards != 0 &&
      session_shards != num_shards_) {
    return Status::FailedPrecondition(
        "cannot resume: session was paused with " +
        std::to_string(session_shards) + " shards but this trainer has " +
        std::to_string(num_shards_) +
        " (set RLCutOptions::num_shards to match; the shard count is a "
        "checkpoint property, while the thread count may differ freely)");
  }
  return Status::Ok();
}

TrainResult RLCutTrainer::Train(PartitionState* state) {
  std::vector<VertexId> all(state->graph().num_vertices());
  std::iota(all.begin(), all.end(), 0u);
  return Train(state, std::move(all));
}

double RLCutTrainer::SampleRateForStep(
    int step, const std::vector<StepStats>& history) const {
  if (options_.fixed_sample_rate > 0) {
    return std::min(1.0, options_.fixed_sample_rate);
  }
  if (options_.t_opt_seconds <= 0) return 1.0;
  // No completed-step telemetry yet: fall back to the bootstrap rate.
  // `history` can be empty with step > 0 when a resumed session was
  // paused before its first completed step.
  if (step == 0 || history.empty()) return options_.initial_sample_rate;

  // Eq. 14: remaining time per remaining step, times the mean observed
  // sampling-rate-per-second of past steps.
  double spent = 0;
  double rate_per_second = 0;
  for (const StepStats& s : history) {
    spent += s.seconds;
    rate_per_second += s.sample_rate / std::max(1e-9, s.seconds);
  }
  rate_per_second /= history.size();
  const double remaining = options_.t_opt_seconds - spent;
  if (remaining <= 0) return 0;  // out of time
  const double per_step = remaining / (options_.max_steps - step);
  const double sr = per_step * rate_per_second;
  return std::clamp(sr, options_.min_sample_rate, 1.0);
}

TrainResult RLCutTrainer::Train(PartitionState* state,
                                std::vector<VertexId> eligible) {
  return Train(state, std::move(eligible), nullptr);
}

TrainResult RLCutTrainer::Train(PartitionState* state,
                                std::vector<VertexId> eligible,
                                AutomatonPool* pool) {
  return Train(state, std::move(eligible), pool, nullptr);
}

TrainResult RLCutTrainer::Train(PartitionState* state,
                                std::vector<VertexId> eligible,
                                AutomatonPool* pool,
                                TrainerSession* session) {
  RLCUT_CHECK(state != nullptr);
  TrainResult result;
  WallTimer total_timer;
  obs::TraceSpan train_span("trainer/train", "trainer");
  train_span.AddArg("eligible", static_cast<double>(eligible.size()));
  // Per-run registry: the single bookkeeping path for step telemetry;
  // TrainResult::steps is materialized from it (see StepStats).
  obs::MetricsRegistry run_registry;
  obs::MetricsRegistry& global_registry = obs::DefaultRegistry();
  obs::Counter* total_steps = global_registry.GetCounter("trainer.steps");
  obs::Counter* total_visits =
      global_registry.GetCounter("trainer.agent_visits");
  obs::Counter* total_migrations =
      global_registry.GetCounter("trainer.migrations");
  obs::Counter* total_rollbacks =
      global_registry.GetCounter("trainer.rollbacks");
  // Per-batch stage timings are histogram observations; they are only
  // taken when detailed metrics are on (SetDetailedMetrics).
  const bool detailed = obs::DetailedMetricsEnabled();
  obs::Histogram* score_stage_seconds =
      detailed ? global_registry.GetHistogram("trainer.stage.score_seconds")
               : nullptr;
  obs::Histogram* migrate_stage_seconds =
      detailed
          ? global_registry.GetHistogram("trainer.stage.migrate_seconds")
          : nullptr;
  const Graph& graph = state->graph();
  const int num_dcs = state->num_dcs();
  if (eligible.empty() || num_dcs < 2) {
    result.final_objective = state->CurrentObjective();
    result.converged = true;
    return result;
  }

  // Sampling order: ascending degree (Sec. V-C: low-degree agents
  // contribute most per unit of training time). The descending order is
  // kept only for the Fig. 9 ablation.
  const bool descending = options_.sample_highest_degree_first;
  std::sort(eligible.begin(), eligible.end(),
            [&graph, descending](VertexId a, VertexId b) {
              const uint32_t da = graph.Degree(a);
              const uint32_t db = graph.Degree(b);
              if (da != db) return descending ? da > db : da < db;
              return a < b;
            });

  // Hub ordering for the importance-sampling extension: agents with the
  // largest apply-message volume first (see RLCutOptions).
  std::vector<VertexId> hub_order;
  if (options_.hub_slot_fraction > 0) {
    hub_order = eligible;
    std::stable_sort(hub_order.begin(), hub_order.end(),
                     [&](VertexId a, VertexId b) {
                       const double va = state->ApplyBytes(a);
                       const double vb = state->ApplyBytes(b);
                       if (va != vb) return va > vb;
                       return graph.Degree(a) > graph.Degree(b);
                     });
  }

  std::unique_ptr<AutomatonPool> local_pool;
  if (pool == nullptr) {
    local_pool = std::make_unique<AutomatonPool>(graph.num_vertices(),
                                                 num_dcs, options_);
    pool = local_pool.get();
  }
  AutomatonPool& automata = *pool;

  // The ownership layout: each logical shard owns a contiguous
  // degree-balanced vertex range; the owner shard scores and commits
  // its vertices (docs/sharding.md). A pure function of the graph and
  // the shard count, so every host rebuilds the same layout.
  const ShardLayout layout(graph, num_shards_);

  // Per-shard resources. RNG streams are keyed by logical shard — a
  // checkpoint property — never by worker thread, so a session paused
  // on a 16-core host resumes bit-identically on a 4-core one. A
  // resumed session reinstates the per-shard PRNG states so a
  // continued run draws the exact sequence the uninterrupted run
  // would have.
  std::vector<EvalScratch> scratch(num_shards_);
  std::vector<Rng> rngs;
  rngs.reserve(num_shards_);
  for (size_t s = 0; s < num_shards_; ++s) {
    rngs.emplace_back(options_.seed + 0x9e37 * (s + 1));
  }
  const bool resuming = session != nullptr && session->started;
  if (resuming && session->finished) {
    // The run already concluded; the uninterrupted run would not have
    // trained past this point, so continuing would diverge from it.
    result.steps = session->history;
    result.final_objective = state->CurrentObjective();
    result.converged = true;
    return result;
  }
  if (resuming && !session->rng_states.empty()) {
    // Callers with file-sourced sessions (rlcut_tool --resume_from)
    // gate on ValidateResume() first and exit with a Status; reaching
    // here with a mismatch is an API-contract violation.
    RLCUT_CHECK_EQ(session->rng_states.size(), num_shards_)
        << "resuming a session requires the shard count it was paused "
           "with";
    for (size_t s = 0; s < num_shards_; ++s) {
      rngs[s].SetState(session->rng_states[s]);
    }
  }

  // The delta-sync bus of the ownership protocol: non-owner shards
  // read plan state from this versioned replica instead of the
  // authoritative PartitionState. The trainer accumulates committed
  // moves into a delta and applies it every shard_sync_batches
  // batches; in a process split, Apply runs behind an RPC instead and
  // nothing about the accumulation changes.
  PlanReplica replica(state->masters(), num_dcs);
  PlanDelta sync_delta;
  int batches_since_sync = 0;
  obs::Counter* shard_syncs =
      global_registry.GetCounter("trainer.shard_syncs");
  obs::Counter* shard_sync_moves =
      global_registry.GetCounter("trainer.shard_sync_moves");
  // The external sink (if attached) receives the starting snapshot and
  // then exactly the deltas the audit replica applies, in order. It is
  // write-only: a slow, degraded, or failed sink never changes what the
  // trainer does, only what TrainResult::replica_status reports.
  ReplicaSink* sink =
      options_.shard_sync_batches > 0 ? replica_sink_ : nullptr;
  Status sink_status;
  bool sink_degraded = false;
  if (sink != nullptr) {
    sink_status = sink->Begin(replica.Snapshot());
    if (!sink_status.ok()) sink = nullptr;
  }
  const auto sync_replica = [&] {
    sync_delta.base_version = replica.version();
    Status synced = replica.Apply(sync_delta);
    RLCUT_CHECK(synced.ok())
        << "shard delta-sync rejected: " << synced.ToString();
    shard_syncs->Increment();
    shard_sync_moves->Increment(sync_delta.moves.size());
    if (sink != nullptr) {
      const Status pushed = sink->PushDelta(sync_delta);
      if (!pushed.ok()) {
        // A push the sink's own mirror rejects is unrecoverable (the
        // network path degrades instead of erroring); stop feeding it
        // and surface the failure through the result.
        if (sink_status.ok()) sink_status = pushed;
        sink = nullptr;
      } else {
        sink_degraded = sink_degraded || sink->degraded();
      }
    }
    sync_delta.moves.clear();
    batches_since_sync = 0;
  };

  // Telemetry of steps completed before this call (resumed sessions):
  // the Eq. 14 sampler reads the full history, and TrainResult::steps
  // spans the whole run.
  const int start_step = resuming ? session->next_step : 0;
  if (resuming) result.steps = session->history;

  // Per-batch decision buffers, indexed by position within the batch.
  const size_t batch_size = static_cast<size_t>(options_.batch_size);
  std::vector<DcId> chosen(batch_size, kNoDc);
  std::vector<uint8_t> taken(graph.num_vertices(), 0);
  std::vector<VertexId> agents;
  // Slot-to-owner-shard grouping, reused across batches. shard_plan[s]
  // lists the batch slots owned — scored and committed — by shard s,
  // in ascending slot order; shard s's commit-phase RNG is rngs[s], so
  // ownership also fixes which PRNG stream each agent draws from
  // (deterministic regardless of execution interleaving or thread
  // count). active_shards lists the shards with work this batch, in
  // dispatch order.
  std::vector<std::vector<size_t>> shard_plan(num_shards_);
  std::vector<size_t> active_shards;
  std::vector<uint64_t> shard_loads(num_shards_, 0);
  // First-round score buffers (one per shard) and the spillover list
  // for speculative retry attempts.
  std::vector<ChunkScores> round0(num_shards_);
  std::vector<std::unique_ptr<ChunkScores>> extra_attempts;
  std::vector<ChunkScores*> winner;
  // Robustness telemetry for the speculative re-dispatch machinery.
  obs::Counter* chunk_redispatches =
      global_registry.GetCounter("trainer.chunk_redispatches");
  obs::Counter* chunk_inline_runs =
      global_registry.GetCounter("trainer.chunk_inline_runs");
  obs::Counter* masked_pool_errors =
      global_registry.GetCounter("trainer.masked_pool_errors");
  obs::Counter* autosaves =
      global_registry.GetCounter("trainer.checkpoint_autosaves");
  obs::Counter* autosave_failures =
      global_registry.GetCounter("trainer.checkpoint_autosave_failures");
  // Reusable {"step", i} label for the per-step instruments.
  obs::LabelSet step_label = {{"step", std::string()}};

  Objective last_objective = state->CurrentObjective();
  int64_t visits_remaining =
      resuming ? session->visits_remaining : options_.agent_visit_budget;

  // First step the next Train call on this session would run: pauses
  // and pre-step exits leave it at the unexecuted step, end-of-step
  // exits advance past the executed one.
  int next_step = start_step;
  bool paused = false;
  for (int step = start_step; step < options_.max_steps; ++step) {
    if (session != nullptr && session->stop_after_step >= 0 &&
        step >= session->stop_after_step) {
      paused = true;
      break;
    }
    obs::TraceSpan step_span("trainer/step", "trainer");
    step_span.AddArg("step", step);
    // steps=A-B fault triggers scope themselves to this window.
    fault::SetStepContext(step);
    double sr = SampleRateForStep(step, result.steps);
    if (options_.agent_visit_budget > 0) {
      if (visits_remaining <= 0) {
        result.hit_time_budget = true;
        break;
      }
      // Deterministic analog of Eq. 14: spread the remaining visit
      // budget evenly over the remaining steps.
      const double per_step = static_cast<double>(visits_remaining) /
                              (options_.max_steps - step);
      sr = std::min(sr, std::clamp(per_step /
                                       static_cast<double>(eligible.size()),
                                   options_.min_sample_rate, 1.0));
    }
    if (sr <= 0) {
      result.hit_time_budget = true;
      break;
    }
    const uint64_t num_agents = std::max<uint64_t>(
        1, static_cast<uint64_t>(sr * static_cast<double>(eligible.size())));
    WallTimer step_timer;

    // Sampled agent set: a reserved share of hub agents plus the
    // lowest-degree prefix (Sec. V-C + the hub-slot extension).
    {
      obs::TraceSpan sample_span("trainer/stage/sample", "trainer");
      sample_span.AddArg("sample_rate", sr);
      sample_span.AddArg("target_agents", static_cast<double>(num_agents));
      agents.clear();
      const size_t hub_count = std::min<size_t>(
          static_cast<size_t>(options_.hub_slot_fraction *
                              static_cast<double>(num_agents)),
          hub_order.size());
      for (size_t i = 0; i < hub_count; ++i) {
        agents.push_back(hub_order[i]);
        taken[hub_order[i]] = 1;
      }
      for (VertexId v : eligible) {
        if (agents.size() >= num_agents) break;
        if (!taken[v]) agents.push_back(v);
      }
      for (size_t i = 0; i < hub_count; ++i) taken[hub_order[i]] = 0;
    }

    // Eq. 10 weights for this step. The cost term engages only while
    // the budget is violated; tw shifts toward cost as training ages.
    const Objective step_objective = state->CurrentObjective();
    const double over_budget =
        options_.budget > 0
            ? Delta(step_objective.cost_dollars - options_.budget)
            : 0.0;
    const double cw =
        static_cast<double>(step) / static_cast<double>(options_.max_steps);
    const double tw = 1.0 - cw * over_budget;
    const double c_l = step_objective.cost_dollars;
    // Budget-pressure extension: quadratic ramp as cost approaches B.
    const double cost_pressure =
        (options_.budget_pressure && options_.budget > 0)
            ? std::pow(std::min(1.0, c_l / options_.budget), 2.0)
            : 0.0;

    step_label[0].second = std::to_string(step);
    StepInstruments step_metrics(&run_registry, step_label);
    step_metrics.sample_rate->Set(sr);
    step_metrics.num_agents->Set(static_cast<double>(agents.size()));
    step_span.AddArg("sample_rate", sr);
    step_span.AddArg("num_agents", static_cast<double>(agents.size()));

    for (uint64_t batch_begin = 0; batch_begin < agents.size();
         batch_begin += batch_size) {
      const uint64_t batch_end =
          std::min<uint64_t>(agents.size(), batch_begin + batch_size);
      const size_t this_batch = batch_end - batch_begin;
      obs::TraceSpan batch_span("trainer/batch", "trainer");
      batch_span.AddArg("agents", static_cast<double>(this_batch));

      // Batch-start snapshot: agents in this batch score moves against
      // it (the batching semantics of Sec. V-A).
      const Objective batch_objective = state->CurrentObjective();

      // ---- Slot-to-shard assignment (ownership protocol). -----------
      // Each slot belongs to the shard owning its vertex; the
      // assignment is a pure function of the layout, never of the
      // thread count or the load, so the committed trajectory is the
      // same on any host.
      for (size_t s = 0; s < num_shards_; ++s) shard_plan[s].clear();
      for (size_t slot = 0; slot < this_batch; ++slot) {
        shard_plan[layout.OwnerOf(agents[batch_begin + slot])].push_back(
            slot);
      }
      active_shards.clear();
      for (size_t s = 0; s < num_shards_; ++s) {
        if (!shard_plan[s].empty()) active_shards.push_back(s);
      }
      if (options_.straggler_mitigation && active_shards.size() > 1) {
        // Straggler mitigation, sharded form (Sec. V-B): ownership
        // pins which shard scores each agent, so instead of
        // re-balancing the work itself the heaviest shards are
        // dispatched first and the light ones fill the tail. Dispatch
        // order only affects wall clock, never results.
        for (size_t s : active_shards) {
          shard_loads[s] = 0;
          for (size_t slot : shard_plan[s]) {
            shard_loads[s] += graph.Degree(agents[batch_begin + slot]) + 1;
          }
        }
        std::stable_sort(active_shards.begin(), active_shards.end(),
                         [&](size_t a, size_t b) {
                           return shard_loads[a] > shard_loads[b];
                         });
      }

      // ---- Parallel stage: pure scoring (step 1) for every agent. ----
      // Agents score against the same frozen batch-start state; a chunk
      // attempt writes only its own ChunkScores buffer, so attempts are
      // idempotent and safe to run speculatively in parallel. All side
      // effects (automaton updates, action selection, PRNG draws)
      // happen in the sequential commit phase below.
      auto score_chunk = [&](const std::vector<size_t>& slots,
                             EvalScratch& es, ChunkScores* out,
                             const std::atomic<bool>* cancel,
                             bool faults_enabled) -> bool {
        if (faults_enabled) {
          int64_t stall_ms = 0;
          if (fault::ShouldFire("trainer.chunk_abandon")) return false;
          if (fault::ShouldFire("trainer.chunk_stall", &stall_ms)) {
            fault::CancellableSleepMs(stall_ms > 0 ? stall_ms : 30, cancel);
          }
        }
        out->scores.resize(slots.size() * static_cast<size_t>(num_dcs));
        out->rho.resize(slots.size());
        Objective evals[kMaxDataCenters];
        const Objective& current = batch_objective;
        for (size_t i = 0; i < slots.size(); ++i) {
          if (cancel != nullptr &&
              cancel->load(std::memory_order_relaxed)) {
            return false;  // abandoned: a sibling attempt already won
          }
          const VertexId v = agents[batch_begin + slots[i]];
          // Score every DC (Eq. 10) from one batched what-if pass —
          // EvaluateMoveAll collects the affected set and the
          // destination-independent base deltas once instead of per
          // DC. Seed rho at the current master (whose score is exactly
          // 0) so that ties on a plateau mean "don't move".
          DcId rho = state->master(v);
          double best_score = 0;
          double* scores =
              out->scores.data() + i * static_cast<size_t>(num_dcs);
          state->EvaluateMoveAll(v, &es, evals);
          for (DcId r = 0; r < num_dcs; ++r) {
            const Objective& moved =
                (r == state->master(v)) ? current : evals[r];
            const double s = ObjectiveScore(current, moved, tw, cw,
                                            over_budget,
                                            options_.smooth_weight,
                                            cost_pressure, options_.budget);
            scores[r] = s;
            if (s > best_score) {
              best_score = s;
              rho = r;
            }
          }
          out->rho[i] = rho;
        }
        return true;
      };

      BatchSync sync;
      std::atomic<bool> cancel{false};
      winner.assign(num_shards_, nullptr);
      extra_attempts.clear();
      const size_t num_active = active_shards.size();

      // Dispatches one attempt at shard `s`'s slots into `buf`. The
      // first completed attempt per shard is the winner; late
      // duplicates see the claim (or the cancel flag) and discard
      // themselves.
      auto dispatch_shard = [&](size_t s, ChunkScores* buf,
                                EvalScratch* es) {
        {
          std::lock_guard<std::mutex> lock(sync.mu);
          ++sync.pending;
        }
        const bool submitted = pool_->Submit([&, s, buf, es] {
          bool ok = false;
          try {
            ok = score_chunk(shard_plan[s], *es, buf, &cancel,
                             /*faults_enabled=*/true);
          } catch (...) {
            // A failed attempt is not fatal: the deadline loop
            // re-dispatches and the inline fallback would surface a
            // persistent error. Swallowing keeps pending accurate.
          }
          std::lock_guard<std::mutex> lock(sync.mu);
          if (ok && winner[s] == nullptr) {
            winner[s] = buf;
            ++sync.claimed;
          }
          --sync.pending;
          sync.cv.notify_all();
        });
        if (!submitted) {
          std::lock_guard<std::mutex> lock(sync.mu);
          --sync.pending;
        }
      };

      {
      obs::TraceSpan score_span("trainer/stage/score", "trainer");
      WallTimer stage_timer;
      // Inline fast path: with one active shard — or one worker
      // thread, where the pool adds no parallelism — and no fault
      // schedule armed, the speculative dispatch machinery (pool
      // submit, cv waits, quiesce) buys nothing — run the pure scoring
      // stage inline on the coordinator. Scores, PRNG assignment and
      // commit order are identical to the dispatched path.
      if (!fault::Armed() && (num_active == 1 || num_threads_ == 1)) {
        for (size_t s : active_shards) {
          score_chunk(shard_plan[s], scratch[s], &round0[s], nullptr,
                      /*faults_enabled=*/false);
          winner[s] = &round0[s];
        }
        if (score_stage_seconds != nullptr) {
          score_stage_seconds->Observe(stage_timer.ElapsedSeconds());
        }
      } else {
      for (size_t s : active_shards) {
        dispatch_shard(s, &round0[s], &scratch[s]);
      }
      // Per-batch deadline with speculative re-dispatch: pool-level
      // faults can drop or stall a chunk's task, so while a schedule
      // is armed a default deadline keeps the batch bounded even if
      // the caller did not configure one.
      double deadline_seconds = options_.batch_deadline_seconds;
      if (deadline_seconds <= 0 && fault::Armed()) deadline_seconds = 0.25;
      int round = 0;
      {
        std::unique_lock<std::mutex> lock(sync.mu);
        while (sync.claimed < num_active) {
          auto settled = [&] {
            return sync.claimed == num_active || sync.pending == 0;
          };
          if (deadline_seconds > 0) {
            // Exponential backoff: each retry round doubles the wait.
            const double wait_seconds =
                deadline_seconds *
                static_cast<double>(int64_t{1} << std::min(round, 20));
            sync.cv.wait_for(lock,
                             std::chrono::duration<double>(wait_seconds),
                             settled);
          } else {
            sync.cv.wait(lock, settled);
          }
          if (sync.claimed == num_active) break;
          if (round >= options_.chunk_max_retries) break;
          ++round;
          for (size_t s : active_shards) {
            if (winner[s] != nullptr) continue;
            auto attempt = std::make_unique<ChunkScores>();
            attempt->owned_scratch = std::make_unique<EvalScratch>();
            ChunkScores* raw = attempt.get();
            extra_attempts.push_back(std::move(attempt));
            chunk_redispatches->Increment();
            lock.unlock();
            dispatch_shard(s, raw, raw->owned_scratch.get());
            lock.lock();
          }
        }
      }
      // Inline fallback: after the retry budget, the coordinator runs
      // the remaining shards itself with injection disabled, so the
      // batch always completes with a full set of scores.
      for (size_t s : active_shards) {
        {
          std::lock_guard<std::mutex> lock(sync.mu);
          if (winner[s] != nullptr) continue;
        }
        auto attempt = std::make_unique<ChunkScores>();
        attempt->owned_scratch = std::make_unique<EvalScratch>();
        chunk_inline_runs->Increment();
        try {
          score_chunk(shard_plan[s], *attempt->owned_scratch,
                      attempt.get(), nullptr, /*faults_enabled=*/false);
        } catch (...) {
          // A real scoring bug (not injectable): quiesce the pool so
          // no abandoned attempt still reads state, then surface it.
          cancel.store(true, std::memory_order_relaxed);
          pool_->Wait();
          throw;
        }
        std::lock_guard<std::mutex> lock(sync.mu);
        winner[s] = attempt.get();
        extra_attempts.push_back(std::move(attempt));
      }
      // Quiesce before the commit/migration phases mutate state: an
      // abandoned speculative attempt must not be mid-read when the
      // masters move. Free when nothing is outstanding.
      cancel.store(true, std::memory_order_relaxed);
      pool_->Wait();
      cancel.store(false, std::memory_order_relaxed);
      if (pool_->TakeError() != nullptr) masked_pool_errors->Increment();
      if (score_stage_seconds != nullptr) {
        score_stage_seconds->Observe(stage_timer.ElapsedSeconds());
      }
      }
      }

      // ---- Sequential commit: steps 2-4 for every agent. -------------
      // Owner shards commit in ascending shard order (slots ascending
      // within a shard), each drawing from its own PRNG stream
      // (rngs[s]) — a pure function of the shard layout, so the commit
      // sequence is identical however the scoring attempts were
      // scheduled and whatever the thread count.
      for (size_t s = 0; s < num_shards_; ++s) {
        if (shard_plan[s].empty()) continue;
        const ChunkScores& buf = *winner[s];
        for (size_t i = 0; i < shard_plan[s].size(); ++i) {
          const size_t slot = shard_plan[s][i];
          const VertexId v = agents[batch_begin + slot];
          const double* scores =
              buf.scores.data() + i * static_cast<size_t>(num_dcs);
          // Steps 2+3: reinforcement signal for rho, probability update.
          automata.UpdateSignals(v, buf.rho[i]);
          // Step 4: UCB action selection; record the normalized score
          // of the selected action as its observed reward.
          const DcId action = automata.SelectAction(v, step + 1, &rngs[s]);
          double best_score = 0;
          double min_score = 0;
          for (DcId r = 0; r < num_dcs; ++r) {
            best_score = std::max(best_score, scores[r]);
            min_score = std::min(min_score, scores[r]);
          }
          const double span = best_score - min_score;
          const double normalized =
              span > 0 ? (scores[action] - min_score) / span : 1.0;
          automata.RecordSelection(v, action, normalized);
          chosen[slot] = action;
        }
      }

      // ---- Sequential stage: step 5, migration with rollback. --------
      obs::TraceSpan migrate_span("trainer/stage/migrate", "trainer");
      WallTimer migrate_timer;
      for (size_t slot = 0; slot < this_batch; ++slot) {
        const VertexId v = agents[batch_begin + slot];
        const DcId action = chosen[slot];
        const DcId from = state->master(v);
        if (action == from) continue;
        const Objective before = state->CurrentObjective();
        // Evaluate-first acceptance: a rejected move costs one what-if
        // evaluation instead of a commit plus an exact rollback, and
        // most attempted moves are rejected once training settles.
        const Objective after = state->EvaluateMove(v, action, &scratch[0]);
        const double budget_delta =
            options_.budget > 0
                ? Delta(before.cost_dollars - options_.budget)
                : 0.0;
        // Hard feasibility filter (Eq. 7): never accept a move that
        // lands above budget while increasing cost. Starting from a
        // feasible state this keeps every intermediate state feasible.
        const bool breaks_budget =
            options_.budget > 0 && after.cost_dollars > options_.budget &&
            after.cost_dollars > before.cost_dollars;
        if (breaks_budget ||
            ObjectiveScore(before, after, tw, cw, budget_delta,
                           options_.smooth_weight, cost_pressure,
                           options_.budget) < 0) {
          step_metrics.rollbacks->Increment();
        } else {
          // Committed moves double as the owner's published delta:
          // non-owner shards learn of them at the next replica sync.
          sync_delta.moves.push_back(PlanMove{v, from, action});
          state->MoveMaster(v, action);
          step_metrics.migrations->Increment();
        }
      }
      if (migrate_stage_seconds != nullptr) {
        migrate_stage_seconds->Observe(migrate_timer.ElapsedSeconds());
      }

      // ---- Delta-sync cadence (docs/sharding.md). --------------------
      if (options_.shard_sync_batches > 0 &&
          ++batches_since_sync >= options_.shard_sync_batches) {
        sync_replica();
      }
    }

    visits_remaining -= static_cast<int64_t>(agents.size());
    next_step = step + 1;

    // Sampled end-of-step audit (RLCUT_DEBUG_INVARIANTS=N): the state
    // just absorbed a batch of moves and rollbacks, so incremental
    // corruption would surface here first.
    if (check::ShouldCheckInvariantsAtStep(step)) {
      RLCUT_CHECK(state->CheckInvariants())
          << "partition state invariants violated after trainer step "
          << step;
    }

    const Objective objective = state->CurrentObjective();
    const double step_seconds = step_timer.ElapsedSeconds();
    step_metrics.seconds->Set(step_seconds);
    step_metrics.transfer_seconds->Set(objective.transfer_seconds);
    step_metrics.cost_dollars->Set(objective.cost_dollars);
    // Accumulate this step's StepStats directly (the registry keeps
    // the same values for export; re-materializing the whole history
    // from it every step was O(steps^2)). StepStatsFromRegistry stays
    // as the offline/resume view over an exported registry.
    StepStats step_stats;
    step_stats.step = step;
    step_stats.sample_rate = sr;
    step_stats.num_agents = agents.size();
    step_stats.seconds = step_seconds;
    step_stats.transfer_seconds = objective.transfer_seconds;
    step_stats.cost_dollars = objective.cost_dollars;
    step_stats.migrations = step_metrics.migrations->value();
    step_stats.rollbacks = step_metrics.rollbacks->value();
    result.steps.push_back(step_stats);

    total_steps->Increment();
    total_visits->Increment(agents.size());
    total_migrations->Increment(step_metrics.migrations->value());
    total_rollbacks->Increment(step_metrics.rollbacks->value());

    // Periodic auto-checkpoint (crash tolerance): a rotating
    // crash-consistent snapshot of the run every N completed steps.
    // Resuming it continues bit-identically, so a crash costs at most
    // N steps of work. Save failures degrade to telemetry + a warning;
    // they never take down the training run.
    if (options_.checkpoint_every_steps > 0 &&
        !options_.checkpoint_path.empty() &&
        next_step % options_.checkpoint_every_steps == 0) {
      TrainerSession snapshot;
      snapshot.next_step = next_step;
      snapshot.started = true;
      snapshot.finished = false;
      snapshot.visits_remaining = visits_remaining;
      snapshot.history = result.steps;
      snapshot.num_shards = static_cast<uint32_t>(num_shards_);
      snapshot.rng_states.resize(num_shards_);
      for (size_t s = 0; s < num_shards_; ++s) {
        snapshot.rng_states[s] = rngs[s].State();
      }
      const TrainerCheckpoint auto_checkpoint =
          CaptureCheckpoint(*state, automata, snapshot, options_.seed);
      if (Status saved = SaveTrainerCheckpointRotating(
              auto_checkpoint, options_.checkpoint_path);
          !saved.ok()) {
        autosave_failures->Increment();
        RLCUT_LOG(kWarning) << "auto-checkpoint failed after step " << step
                            << ": " << saved.ToString();
      } else {
        autosaves->Increment();
      }
    }

    // Convergence: negligible relative improvement while feasible.
    const bool feasible = options_.budget <= 0 ||
                          objective.cost_dollars <= options_.budget;
    const double rel_improvement =
        last_objective.transfer_seconds > 0
            ? (last_objective.transfer_seconds - objective.transfer_seconds) /
                  last_objective.transfer_seconds
            : 0.0;
    last_objective = objective;
    if (feasible && step > 0 &&
        std::fabs(rel_improvement) < options_.convergence_epsilon) {
      result.converged = true;
      break;
    }
    if (options_.t_opt_seconds > 0 &&
        total_timer.ElapsedSeconds() >= options_.t_opt_seconds) {
      result.hit_time_budget = true;
      break;
    }
  }

  fault::SetStepContext(-1);

  // Flush the residual delta and audit the protocol: after the final
  // sync the replica every non-owner shard reads must agree with the
  // authoritative plan bit for bit.
  if (options_.shard_sync_batches > 0) {
    if (!sync_delta.moves.empty()) sync_replica();
    RLCUT_CHECK(replica.masters() == state->masters())
        << "delta-synced plan replica diverged from the partition state "
           "after "
        << replica.version() << " syncs";
  } else if (replica_sink_ != nullptr) {
    // Delta sync disabled: hand the sink the final plan as a snapshot
    // so it still converges to the authoritative state.
    sink = replica_sink_;
    sink_status = sink->Begin(
        PlanSnapshot{replica.version(), static_cast<int32_t>(num_dcs),
                     state->masters()});
    if (!sink_status.ok()) sink = nullptr;
  }
  if (sink != nullptr) {
    // The fail-closed barrier: the sink must confirm the far side holds
    // the final plan, or report why it cannot.
    const Status flushed = sink->Flush();
    if (sink_status.ok()) sink_status = flushed;
    sink_degraded = sink_degraded || sink->degraded();
  }
  result.replica_status = sink_status;
  result.replica_degraded = sink_degraded;

  if (session != nullptr) {
    session->started = true;
    session->paused = paused;
    session->finished = !paused;
    session->next_step = next_step;
    session->visits_remaining = visits_remaining;
    session->history = result.steps;
    session->num_shards = static_cast<uint32_t>(num_shards_);
    session->rng_states.resize(num_shards_);
    for (size_t s = 0; s < num_shards_; ++s) {
      session->rng_states[s] = rngs[s].State();
    }
  }

  result.final_objective = state->CurrentObjective();
  result.overhead_seconds = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace rlcut
