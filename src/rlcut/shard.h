#ifndef RLCUT_RLCUT_SHARD_H_
#define RLCUT_RLCUT_SHARD_H_

#include <cstddef>
#include <vector>

#include "graph/graph.h"

namespace rlcut {

/// Partition of the vertex id space into N logical shards, each owning
/// one contiguous range (docs/sharding.md). The automaton pool, the
/// commit-phase PRNG streams and (in the process split) the plan
/// replicas are all keyed by shard, so the layout is the unit of
/// ownership for the sharded training runtime.
///
/// The layout is a pure function of the graph and the shard count:
/// ranges are degree-balanced (each shard owns roughly an equal share
/// of sum(degree + 1)) by a deterministic prefix sweep, so every host
/// that builds a layout for the same problem and shard count gets the
/// same ownership map — the property that makes shard count a
/// checkpoint property and thread count a host property.
class ShardLayout {
 public:
  /// An empty layout (no shards); assign a real one before use.
  ShardLayout() = default;

  /// Splits `[0, graph.num_vertices())` into `num_shards` contiguous
  /// degree-balanced ranges. `num_shards` must be >= 1; shards beyond
  /// the vertex count own empty ranges.
  ShardLayout(const Graph& graph, size_t num_shards);

  size_t num_shards() const {
    return starts_.empty() ? 0 : starts_.size() - 1;
  }

  /// The shard owning vertex `v` (binary search over the range starts).
  size_t OwnerOf(VertexId v) const;

  /// Owned range of shard `s`: [shard_begin(s), shard_end(s)).
  VertexId shard_begin(size_t s) const { return starts_[s]; }
  VertexId shard_end(size_t s) const { return starts_[s + 1]; }

 private:
  // starts_[s] .. starts_[s+1] is shard s's range; num_shards + 1
  // entries, starts_.front() == 0, starts_.back() == num_vertices.
  std::vector<VertexId> starts_;
};

}  // namespace rlcut

#endif  // RLCUT_RLCUT_SHARD_H_
