#ifndef RLCUT_RLCUT_SESSION_H_
#define RLCUT_RLCUT_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/partitioner.h"
#include "cloud/topology.h"
#include "cloud/topology_schedule.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "graph/graph.h"
#include "graph/stream.h"
#include "partition/partition_state.h"
#include "partition/plan_delta.h"
#include "partition/session.h"
#include "rlcut/automaton.h"
#include "rlcut/options.h"

namespace rlcut {

/// Configuration of an RLCutSession.
struct RLCutSessionOptions {
  /// Drives the first (full) optimization pass.
  RLCutOptions initial;
  /// Drives every subsequent affected-only pass; also sizes the
  /// persistent automaton pool.
  RLCutOptions incremental;
  /// Relative topology drift at or above which UpdateTopology marks the
  /// vertices replicated in changed DCs for re-training.
  double drift_threshold = 0.05;
};

/// Outcome of swapping in a new effective topology.
struct TopologyUpdateResult {
  /// TopologyDrift between the previous and the new topology.
  double drift = 0;
  /// Vertices marked for the next MaybeReoptimize (0 below threshold).
  uint64_t affected_marked = 0;
};

/// RLCut's incremental PartitioningSession: the paper's adaptive
/// repartitioning loop as a long-lived object.
///
/// The session owns the problem (fixed vertex set, accumulating edge
/// set, effective topology) and a persistent per-vertex automaton pool.
/// ApplyDelta folds a micro-batch into the live graph carrying the
/// current plan; MaybeReoptimize warm-resumes the automata of the
/// affected vertices only (full training on the first call) and clamps
/// the plan to the migration budget; PublishPlan versions the result.
/// SaveCheckpoint/Restore make the whole session crash-tolerant: a
/// restored session continues the stream bit-identically (the trainer
/// is re-seeded per pass from the options, so state + pool + pending
/// set determine every subsequent decision).
class RLCutSession : public PartitioningSession {
 public:
  /// Copies the problem out of `ctx` (validated). The initial plan is
  /// "every vertex masters at its initial location L_v" — the zero-
  /// migration baseline the first publish is budgeted against. A zero
  /// RLCutOptions::budget in `options` inherits ctx.budget.
  static Result<std::unique_ptr<RLCutSession>> Open(
      const PartitionerContext& ctx, RLCutSessionOptions options);

  std::string method() const override { return "RLCut"; }

  /// Folds a micro-batch into the live graph, carrying the current
  /// masters across the rebuild and marking the batch's endpoints for
  /// the next re-optimization. Fault site: session.ingest_fail.
  Result<ApplyResult> ApplyDelta(const MicroBatch& batch) override;

  /// Warm-trains the pending affected vertices (all vertices on the
  /// first call), then clamps the plan so the move-set vs the last
  /// published plan respects `budget`.
  Result<ReoptimizeResult> MaybeReoptimize(
      const MigrationBudget& budget) override;

  /// Versions the live plan. The migration delta vs the previous
  /// published version respects the last MaybeReoptimize budget (a
  /// publish-time re-clamp guarantees it even if the state drifted).
  /// Fault site: session.publish_fail.
  Result<PublishedPlan> PublishPlan() override;

  const PartitionState* live_state() const override { return state_.get(); }

  /// Re-prices the live layout under a new effective topology (same DC
  /// count) and, at or above the drift threshold, marks the vertices
  /// replicated in changed DCs for re-training — the TopologySchedule
  /// integration point; stream batches and topology events share the
  /// SimTime timeline.
  Result<TopologyUpdateResult> UpdateTopology(const Topology& topology);

  // ---- Checkpoint / resume -------------------------------------------

  /// Atomically writes the full session (problem, plan, automaton pool,
  /// publish baseline, pending set, watermark) to `path`; "RLCUTSSN" v1
  /// envelope (common/byte_io.h), rotating the previous file to
  /// `path`.prev as a fallback slot.
  Status SaveCheckpoint(const std::string& path) const;

  /// Loads a session saved by SaveCheckpoint. Falls back to
  /// `path`.prev when the primary is corrupt or missing. `options` are
  /// runtime configuration, not part of the checkpoint; pass the same
  /// values for bit-identical continuation.
  static Result<std::unique_ptr<RLCutSession>> Restore(
      const std::string& path, RLCutSessionOptions options);

  // ---- Introspection --------------------------------------------------

  // ---- Process-split replica sync (docs/distributed.md) ---------------

  /// Attaches an external replica sink: every re-optimization pass
  /// feeds it the trainer's deltas, then a post-clamp correction delta,
  /// so the far side tracks the publishable plan. Not owned; must
  /// outlive the session (or be detached with nullptr).
  void SetReplicaSink(ReplicaSink* sink) { replica_sink_ = sink; }

  /// Outcome of the latest pass's replica flush (OK when no sink).
  const Status& replica_status() const { return replica_status_; }

  /// True if the sink ever reported degraded operation this session.
  bool replica_degraded() const { return replica_degraded_; }

  SimTime watermark() const { return watermark_; }
  uint64_t version() const { return version_; }
  uint64_t num_edges() const { return edges_.size(); }
  VertexId num_vertices() const { return num_vertices_; }
  const Topology& topology() const { return topology_; }
  const std::vector<DcId>& last_published_masters() const {
    return last_published_masters_;
  }

 private:
  explicit RLCutSession(RLCutSessionOptions options);

  // Rebuilds graph_/input_sizes_/state_ from edges_ and reinstates
  // `masters` (the dynamic-driver rebuild idiom; vertex ids are stable).
  void RebuildState(const std::vector<DcId>& masters);

  // Decodes one checkpoint payload into a fresh session (needs the
  // private constructor, hence a member).
  static Result<std::unique_ptr<RLCutSession>> DecodeSession(
      const std::string& payload, RLCutSessionOptions options);
  static Result<std::unique_ptr<RLCutSession>> LoadSessionFile(
      const std::string& path, const RLCutSessionOptions& options);

  std::vector<VertexId> TakePendingAffected();

  RLCutSessionOptions options_;

  // Owned problem instance.
  VertexId num_vertices_ = 0;
  std::vector<Edge> edges_;
  Topology topology_;
  std::vector<DcId> locations_;
  std::vector<double> input_sizes_;
  Workload workload_;
  uint32_t theta_ = 100;
  double cost_budget_ = 0;
  uint64_t seed_ = 1;

  std::unique_ptr<Graph> graph_;
  std::unique_ptr<PartitionState> state_;
  std::unique_ptr<AutomatonPool> pool_;

  // Session lifecycle state.
  bool trained_once_ = false;
  std::vector<uint8_t> affected_flags_;  // pending re-train marks
  uint64_t version_ = 0;
  std::vector<DcId> last_published_masters_;
  MigrationBudget last_budget_;
  SimTime watermark_ = SimTime::Min();

  // Process-split replica sync (not part of the checkpoint: runtime
  // wiring, like thread count).
  ReplicaSink* replica_sink_ = nullptr;
  Status replica_status_;
  bool replica_degraded_ = false;
};

}  // namespace rlcut

#endif  // RLCUT_RLCUT_SESSION_H_
