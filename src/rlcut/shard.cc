#include "rlcut/shard.h"

#include <algorithm>

#include "common/logging.h"

namespace rlcut {

ShardLayout::ShardLayout(const Graph& graph, size_t num_shards) {
  RLCUT_CHECK_GE(num_shards, size_t{1});
  const VertexId n = graph.num_vertices();
  starts_.reserve(num_shards + 1);
  starts_.push_back(0);

  // Degree-balanced prefix sweep: shard s ends at the first vertex
  // where the cumulative weight reaches (s+1)/num_shards of the total.
  // Weight degree+1 keeps isolated vertices from collapsing every
  // boundary onto the hubs.
  uint64_t total = 0;
  for (VertexId v = 0; v < n; ++v) total += graph.Degree(v) + 1;
  uint64_t prefix = 0;
  VertexId v = 0;
  for (size_t s = 1; s < num_shards; ++s) {
    const uint64_t target = total * s / num_shards;
    while (v < n && prefix < target) {
      prefix += graph.Degree(v) + 1;
      ++v;
    }
    starts_.push_back(v);
  }
  starts_.push_back(n);
}

size_t ShardLayout::OwnerOf(VertexId v) const {
  RLCUT_DCHECK(!starts_.empty());
  RLCUT_DCHECK(v < starts_.back());
  // First start strictly past v; its predecessor's shard owns v.
  const auto it = std::upper_bound(starts_.begin(), starts_.end(), v);
  return static_cast<size_t>(it - starts_.begin()) - 1;
}

}  // namespace rlcut
