#ifndef RLCUT_RLCUT_CHECKPOINT_H_
#define RLCUT_RLCUT_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "partition/partition_state.h"
#include "rlcut/automaton.h"
#include "rlcut/trainer.h"

namespace rlcut {

/// A paused RLCut training run, fully serializable: the problem
/// fingerprint (validated on resume), the plan at the pause point, the
/// learned automaton state, and the trainer's resumable cursor.
/// Restoring all three onto a freshly built problem and calling
/// Train(state, eligible, pool, &session) continues the run
/// bit-identically for deterministic budgets (see TrainerSession).
struct TrainerCheckpoint {
  // ---- Problem fingerprint -------------------------------------------
  uint64_t num_vertices = 0;
  uint32_t num_dcs = 0;
  uint64_t seed = 0;
  ComputeModel model = ComputeModel::kHybridCut;
  uint32_t theta = 0;

  // ---- Plan at the pause point ---------------------------------------
  std::vector<DcId> masters;

  // ---- Learned automaton state ---------------------------------------
  AutomatonPoolState pool;

  // ---- Trainer cursor -------------------------------------------------
  TrainerSession session;
};

/// Snapshots a paused run. `session` should come from a Train call that
/// stopped (its stop_after_step is not serialized; a restored session
/// resumes to completion unless the caller pauses it again).
TrainerCheckpoint CaptureCheckpoint(const PartitionState& state,
                                    const AutomatonPool& pool,
                                    const TrainerSession& session,
                                    uint64_t seed);

/// Reinstates a checkpoint onto a freshly built problem: validates the
/// fingerprint against `state`'s graph/topology/config, applies the
/// masters, restores the pool, and fills `session` for the continuing
/// Train call.
Status RestoreCheckpoint(const TrainerCheckpoint& checkpoint,
                         PartitionState* state, AutomatonPool* pool,
                         TrainerSession* session);

/// Binary file format (see docs/dynamic_environments.md):
///   [8]  magic "RLCUTCKP"
///   [4]  format version (currently 2; v1 files still load)
///   [8]  payload size in bytes
///   [..] payload (host-endian fixed-width fields and arrays)
///   [8]  FNV-1a 64-bit checksum of the payload
/// v2 added TrainerSession::num_shards to the payload; a v1 file's
/// shard count is inferred from its saved PRNG stream count (which the
/// pre-sharding trainer keyed per thread), so old checkpoints resume
/// on a trainer configured with num_shards equal to the thread count
/// they were paused with. Loading rejects bad magic, unsupported
/// versions, truncation and checksum mismatches with distinct error
/// messages.
///
/// Saves are crash-consistent (docs/robustness.md): the file is staged
/// to `path`+".tmp", fsynced, and renamed over `path`, so a crash at
/// any point leaves either the previous checkpoint or none — never a
/// torn one.
Status SaveTrainerCheckpoint(const TrainerCheckpoint& checkpoint,
                             const std::string& path);
Result<TrainerCheckpoint> LoadTrainerCheckpoint(const std::string& path);

/// The rotation slot SaveTrainerCheckpointRotating keeps the previous
/// checkpoint in: `path` + ".prev".
std::string CheckpointFallbackPath(const std::string& path);

/// Crash-consistent save that additionally rotates an existing `path`
/// to CheckpointFallbackPath(path) first, so there is always a
/// last-good file to fall back to even if `path` itself is later lost
/// or corrupted. The trainer's periodic auto-checkpoint uses this.
Status SaveTrainerCheckpointRotating(const TrainerCheckpoint& checkpoint,
                                     const std::string& path);

/// A checkpoint loaded by LoadTrainerCheckpointWithFallback, plus where
/// it came from.
struct LoadedCheckpoint {
  TrainerCheckpoint checkpoint;
  /// The file that actually loaded (`path` or the fallback slot).
  std::string loaded_from;
  bool used_fallback = false;
  /// Why the primary was rejected when used_fallback is true.
  std::string primary_error;
};

/// Loads `path`; if it is missing, truncated or corrupt, falls back to
/// CheckpointFallbackPath(path). Fails only when both are unusable
/// (the primary's error message is reported).
Result<LoadedCheckpoint> LoadTrainerCheckpointWithFallback(
    const std::string& path);

}  // namespace rlcut

#endif  // RLCUT_RLCUT_CHECKPOINT_H_
