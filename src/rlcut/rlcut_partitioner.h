#ifndef RLCUT_RLCUT_RLCUT_PARTITIONER_H_
#define RLCUT_RLCUT_RLCUT_PARTITIONER_H_

#include <memory>

#include "baselines/partitioner.h"
#include "rlcut/options.h"
#include "rlcut/trainer.h"

namespace rlcut {

/// RLCut behind the common Partitioner interface, so the benches treat
/// it uniformly with the six baselines. The returned output's state is
/// hybrid-cut; training starts from the natural partitioning (masters at
/// initial locations).
///
/// If options.budget == 0, the context's budget is used; likewise the
/// context workload/theta always apply.
std::unique_ptr<Partitioner> MakeRLCut(RLCutOptions options = {});

/// Convenience wrapper: trains on an already-built context and also
/// returns the TrainResult telemetry (step stats).
struct RLCutRunOutput {
  RLCutRunOutput(PartitionState state_in, TrainResult train_in)
      : state(std::move(state_in)), train(std::move(train_in)) {}

  PartitionState state;
  TrainResult train;
};

RLCutRunOutput RunRLCut(const PartitionerContext& ctx, RLCutOptions options);

}  // namespace rlcut

#endif  // RLCUT_RLCUT_RLCUT_PARTITIONER_H_
