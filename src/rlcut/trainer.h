#ifndef RLCUT_RLCUT_TRAINER_H_
#define RLCUT_RLCUT_TRAINER_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "partition/partition_state.h"
#include "partition/plan_delta.h"
#include "rlcut/automaton.h"
#include "rlcut/options.h"

namespace rlcut {

/// Per-training-step telemetry (drives Fig. 13/14 and Table IV).
///
/// The trainer no longer books these separately: every field is
/// recorded into a per-run metrics registry under "trainer.step.*"
/// series labeled {"step", i}, and StepStats is materialized back from
/// that registry by StepStatsFromRegistry() — one bookkeeping path for
/// both the exported metrics and the in-process telemetry.
struct StepStats {
  int step = 0;
  double sample_rate = 0;
  uint64_t num_agents = 0;
  double seconds = 0;
  double transfer_seconds = 0;  // objective after the step
  double cost_dollars = 0;
  uint64_t migrations = 0;
  uint64_t rollbacks = 0;
};

/// Rebuilds the chronological step telemetry from the "trainer.step.*"
/// series of `registry` (see StepStats). Steps come out sorted by their
/// {"step"} label, so the result equals the TrainResult::steps of the
/// run that filled the registry.
std::vector<StepStats> StepStatsFromRegistry(
    const obs::MetricsRegistry& registry);

/// Resumable cursor of a training run: everything the step loop carries
/// from one step to the next that lives outside the PartitionState and
/// the AutomatonPool. Pass a session to Train with `stop_after_step`
/// set to pause before that step; pass the same session (or one
/// restored from a checkpoint, see rlcut/checkpoint.h) back to continue
/// the run exactly where it left off.
///
/// Continuation is bit-identical to the uninterrupted run for
/// deterministic budgets (no t_opt_seconds; agent_visit_budget and
/// fixed/full sampling are fine) because the wall-clock Eq. 14 sampler
/// is the only nondeterministic input to a step.
struct TrainerSession {
  /// First step the next Train call will execute.
  int next_step = 0;
  /// Pause before this step (-1 = run to completion).
  int stop_after_step = -1;
  /// True once a Train call has populated the cursor fields below.
  bool started = false;
  /// True when the last Train call stopped because of stop_after_step.
  bool paused = false;
  /// True when the run concluded on its own (converged, budget
  /// exhausted, or max_steps reached). Resuming a finished session is a
  /// no-op: the uninterrupted run would not have trained further either.
  bool finished = false;
  int64_t visits_remaining = 0;
  /// Telemetry of the steps completed so far (input to Eq. 14).
  std::vector<StepStats> history;
  /// Logical shard count the run trains with (docs/sharding.md). A
  /// checkpoint property: resuming requires a trainer with the same
  /// shard count, but any thread count. 0 = not yet started (or a
  /// legacy session, where rng_states.size() carries the count).
  uint32_t num_shards = 0;
  /// Per-shard PRNG states, rng_states[s] belonging to shard s; only
  /// the kProbability action selection actually draws from these.
  std::vector<std::array<uint64_t, 4>> rng_states;
};

/// Outcome of a training run.
struct TrainResult {
  std::vector<StepStats> steps;
  double overhead_seconds = 0;
  Objective final_objective;
  bool converged = false;
  /// True if training stopped because T_opt was reached.
  bool hit_time_budget = false;
  /// Outcome of the external replica sink, if one was attached with
  /// SetReplicaSink: OK when the sink's Flush confirmed the far side
  /// holds the final plan bit for bit, non-OK when it could not — the
  /// fail-closed signal for callers that require a synced replica.
  /// Always OK when no sink is attached.
  Status replica_status;
  /// True if the sink reported degraded (lossy/stale) operation at any
  /// sync during the run.
  bool replica_degraded = false;
};

/// The RLCut multi-agent trainer (Sec. IV-V).
///
/// Each training step runs the five per-agent stages — score function
/// (Eq. 10), reinforcement signal (Eq. 11), probability update (Eq. 12),
/// UCB action selection (Eq. 13) and globally sequential vertex
/// migration with rollback — with three overhead optimizations:
///
///  * batching: agents within a batch decide against the batch-start
///    state and are scored in parallel by their owner shards, each
///    owning a contiguous degree-balanced vertex range
///    (docs/sharding.md);
///  * straggler mitigation: heaviest-shard-first dispatch of the
///    scoring work (Sec. V-B, sharded form — order affects wall clock,
///    never the trajectory);
///  * adaptive sampling: the lowest-degree SR_i fraction of agents
///    trains in step i, SR_i sized by Eq. 14 to meet T_opt (Sec. V-C).
/// Construction-time validation of trainer options, Status-based like
/// the rest of the fallible API. Fallible entry points (the CLI tools,
/// the partitioner registry) gate on this; the RLCutTrainer constructor
/// itself clamps out-of-range values instead of crashing.
Status ValidateRLCutOptions(const RLCutOptions& options);

class RLCutTrainer {
 public:
  /// Fallible construction: validates `options` and returns a trainer,
  /// or the ValidateRLCutOptions error. Entry points holding options
  /// from external input (flags, config files) should construct through
  /// this instead of the normalizing constructor below.
  static Result<std::unique_ptr<RLCutTrainer>> Create(
      const RLCutOptions& options);

  /// Infallible construction for callers with programmatic options:
  /// out-of-range values are clamped to their nearest legal value
  /// (max_steps/batch_size to >= 1, thread/shard counts to >= 0).
  explicit RLCutTrainer(const RLCutOptions& options);
  ~RLCutTrainer();

  RLCutTrainer(const RLCutTrainer&) = delete;
  RLCutTrainer& operator=(const RLCutTrainer&) = delete;

  /// Trains over all vertices of the state's graph. The state must use
  /// derived placement (hybrid-cut or edge-cut).
  TrainResult Train(PartitionState* state);

  /// Trains over the given eligible agents only (dynamic adaptation:
  /// the vertices touched by newly inserted edges).
  TrainResult Train(PartitionState* state, std::vector<VertexId> eligible);

  /// Same, but using (and updating) an externally owned automaton pool.
  /// Dynamic drivers pass a persistent pool so per-vertex policies carry
  /// across adaptation windows instead of restarting from uniform.
  /// `pool` must cover the state's vertex and DC counts; nullptr falls
  /// back to a fresh local pool.
  TrainResult Train(PartitionState* state, std::vector<VertexId> eligible,
                    AutomatonPool* pool);

  /// Same, with a resumable session: starts at session->next_step,
  /// pauses before session->stop_after_step (if >= 0), and updates the
  /// session cursor on exit. nullptr behaves like the overload above.
  TrainResult Train(PartitionState* state, std::vector<VertexId> eligible,
                    AutomatonPool* pool, TrainerSession* session);

  /// Whether `session` (typically file-sourced, see rlcut/checkpoint.h)
  /// can be resumed by this trainer: the saved shard count must match
  /// this trainer's. Thread count is deliberately NOT checked — RNG and
  /// worker state are keyed per shard, so a session paused on a 16-core
  /// host resumes bit-identically on a 4-core one. Callers holding
  /// sessions from external input should gate on this instead of
  /// letting Train hit its API-contract CHECK.
  Status ValidateResume(const TrainerSession& session) const;

  size_t num_threads() const { return num_threads_; }
  size_t num_shards() const { return num_shards_; }
  const RLCutOptions& options() const { return options_; }

  /// Attaches an external replica sink: Train feeds it the starting
  /// snapshot and then every delta the in-process audit replica
  /// applies, at the same cadence. The sink is write-only — training
  /// decisions never read it — so a lagging or degraded sink cannot
  /// perturb the trajectory. Not owned; must outlive Train. nullptr
  /// detaches.
  void SetReplicaSink(ReplicaSink* sink) { replica_sink_ = sink; }

 private:
  // Sampling rate for step `step` per Eq. 14, from the history so far.
  double SampleRateForStep(int step,
                           const std::vector<StepStats>& history) const;

  RLCutOptions options_;
  size_t num_threads_;
  size_t num_shards_;
  std::unique_ptr<ThreadPool> pool_;
  ReplicaSink* replica_sink_ = nullptr;
};

}  // namespace rlcut

#endif  // RLCUT_RLCUT_TRAINER_H_
