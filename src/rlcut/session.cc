#include "rlcut/session.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <utility>

#include "common/atomic_file.h"
#include "common/byte_io.h"
#include "common/logging.h"
#include "common/timer.h"
#include "fault/fault.h"
#include "graph/geo.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "partition/migration.h"
#include "rlcut/trainer.h"

namespace rlcut {
namespace {

constexpr char kSessionMagic[8] = {'R', 'L', 'C', 'U', 'T', 'S', 'S', 'N'};
constexpr uint32_t kSessionFormatVersion = 1;

}  // namespace

RLCutSession::RLCutSession(RLCutSessionOptions options)
    : options_(std::move(options)) {}

Result<std::unique_ptr<RLCutSession>> RLCutSession::Open(
    const PartitionerContext& ctx, RLCutSessionOptions options) {
  RLCUT_RETURN_IF_ERROR(ValidatePartitionerContext(ctx));
  if (options.initial.budget == 0) options.initial.budget = ctx.budget;
  if (options.incremental.budget == 0) options.incremental.budget = ctx.budget;
  std::unique_ptr<RLCutSession> session(
      new RLCutSession(std::move(options)));
  session->num_vertices_ = ctx.graph->num_vertices();
  session->edges_.reserve(ctx.graph->num_edges());
  for (EdgeId e = 0; e < ctx.graph->num_edges(); ++e) {
    session->edges_.push_back(ctx.graph->GetEdge(e));
  }
  session->topology_ = *ctx.topology;
  session->locations_ = *ctx.locations;
  session->input_sizes_ = *ctx.input_sizes;
  session->workload_ = ctx.workload;
  session->theta_ = ctx.theta;
  session->cost_budget_ = ctx.budget;
  session->seed_ = ctx.seed;

  session->graph_ = std::make_unique<Graph>(*ctx.graph);
  PartitionConfig config;
  config.model = ComputeModel::kHybridCut;
  config.theta = session->theta_;
  config.workload = session->workload_;
  session->state_ = std::make_unique<PartitionState>(
      session->graph_.get(), &session->topology_, &session->locations_,
      &session->input_sizes_, config);
  // Initial plan: data stays where it is. The first publish is budgeted
  // against this zero-migration baseline.
  session->state_->ResetDerived(session->locations_);
  session->pool_ = std::make_unique<AutomatonPool>(
      session->num_vertices_, session->topology_.num_dcs(),
      session->options_.incremental);
  session->last_published_masters_ = session->locations_;
  session->affected_flags_.assign(session->num_vertices_, 0);
  return session;
}

void RLCutSession::RebuildState(const std::vector<DcId>& masters) {
  GraphBuilder builder(num_vertices_);
  builder.AddEdges(edges_);
  // The state points into the old graph; drop it before the swap.
  state_.reset();
  graph_ = std::make_unique<Graph>(std::move(builder).Build());
  // Input sizes grow with degree, as in the dynamic drivers.
  input_sizes_ = AssignInputSizes(*graph_);
  PartitionConfig config;
  config.model = ComputeModel::kHybridCut;
  config.theta = theta_;
  config.workload = workload_;
  state_ = std::make_unique<PartitionState>(graph_.get(), &topology_,
                                            &locations_, &input_sizes_,
                                            config);
  state_->ResetDerived(masters);
}

Result<ApplyResult> RLCutSession::ApplyDelta(const MicroBatch& batch) {
  if (fault::ShouldFire("session.ingest_fail")) {
    return Status::Internal("injected fault: session.ingest_fail");
  }
  if (batch.watermark < watermark_) {
    return Status::InvalidArgument(
        "micro-batch watermark moved backwards: " +
        std::to_string(batch.watermark.seconds()) + "s after " +
        std::to_string(watermark_.seconds()) + "s");
  }
  SimTime prev = SimTime::Min();
  for (const TimedEdge& te : batch.edges) {
    if (te.edge.src >= num_vertices_ || te.edge.dst >= num_vertices_) {
      return Status::OutOfRange(
          "micro-batch edge (" + std::to_string(te.edge.src) + ", " +
          std::to_string(te.edge.dst) + ") outside the fixed vertex set of " +
          std::to_string(num_vertices_));
    }
    if (te.time < prev) {
      return Status::InvalidArgument(
          "micro-batch edges are not sorted by time (see "
          "StreamBuffer::Cut, which emits deterministic sorted batches)");
    }
    if (te.time > batch.watermark) {
      return Status::InvalidArgument(
          "micro-batch contains an edge past its watermark");
    }
    prev = te.time;
  }

  WallTimer timer;
  ApplyResult result;
  result.edges_applied = batch.edges.size();
  if (!batch.edges.empty()) {
    std::vector<VertexId> endpoints;
    endpoints.reserve(batch.edges.size() * 2);
    for (const TimedEdge& te : batch.edges) {
      edges_.push_back(te.edge);
      affected_flags_[te.edge.src] = 1;
      affected_flags_[te.edge.dst] = 1;
      endpoints.push_back(te.edge.src);
      endpoints.push_back(te.edge.dst);
    }
    const std::vector<DcId> carried = state_->masters();
    RebuildState(carried);
    // vertices_affected counts this batch's distinct endpoints.
    std::sort(endpoints.begin(), endpoints.end());
    endpoints.erase(std::unique(endpoints.begin(), endpoints.end()),
                    endpoints.end());
    result.vertices_affected = endpoints.size();
  }
  watermark_ = batch.watermark;
  result.apply_seconds = timer.ElapsedSeconds();
  result.watermark = watermark_;
  obs::MetricsRegistry& registry = obs::DefaultRegistry();
  registry.GetCounter("serve.edges_ingested")
      ->Increment(result.edges_applied);
  registry.GetHistogram("serve.apply_seconds")->Observe(result.apply_seconds);
  return result;
}

std::vector<VertexId> RLCutSession::TakePendingAffected() {
  std::vector<VertexId> pending;
  for (VertexId v = 0; v < num_vertices_; ++v) {
    if (affected_flags_[v]) pending.push_back(v);
  }
  std::fill(affected_flags_.begin(), affected_flags_.end(), 0);
  return pending;
}

Result<ReoptimizeResult> RLCutSession::MaybeReoptimize(
    const MigrationBudget& budget) {
  obs::TraceSpan span("session/reoptimize", "session");
  ReoptimizeResult result;
  last_budget_ = budget;
  std::vector<VertexId> eligible;
  if (!trained_once_) {
    eligible.resize(num_vertices_);
    std::iota(eligible.begin(), eligible.end(), 0u);
    std::fill(affected_flags_.begin(), affected_flags_.end(), 0);
  } else {
    eligible = TakePendingAffected();
  }
  if (eligible.empty()) {
    result.objective = state_->CurrentObjective();
    return result;
  }
  WallTimer timer;
  result.trained_vertices = eligible.size();
  {
    RLCutTrainer trainer(trained_once_ ? options_.incremental
                                       : options_.initial);
    trainer.SetReplicaSink(replica_sink_);
    const TrainResult trained =
        trainer.Train(state_.get(), std::move(eligible), pool_.get());
    if (replica_sink_ != nullptr) {
      replica_status_ = trained.replica_status;
      replica_degraded_ = replica_degraded_ || trained.replica_degraded;
    }
  }
  // The sink mirrors the trainer's final plan; the budget clamp below
  // can revert moves after that, so capture the pre-clamp masters and
  // ship the difference as one correction delta.
  std::vector<DcId> pre_clamp_masters;
  if (replica_sink_ != nullptr) pre_clamp_masters = state_->masters();
  const BudgetClampResult clamp = EnforceMigrationBudget(
      state_.get(), last_published_masters_, input_sizes_, budget);
  if (replica_sink_ != nullptr && replica_status_.ok()) {
    PlanDelta correction;
    correction.base_version = replica_sink_->version();
    const std::vector<DcId>& post_clamp = state_->masters();
    for (size_t v = 0; v < post_clamp.size(); ++v) {
      if (pre_clamp_masters[v] != post_clamp[v]) {
        correction.moves.push_back(PlanMove{static_cast<VertexId>(v),
                                            pre_clamp_masters[v],
                                            post_clamp[v]});
      }
    }
    if (!correction.moves.empty()) {
      replica_status_ = replica_sink_->PushDelta(correction);
      if (replica_status_.ok()) replica_status_ = replica_sink_->Flush();
      replica_degraded_ =
          replica_degraded_ || replica_sink_->degraded();
    }
  }
  trained_once_ = true;
  result.reoptimized = true;
  result.reverted_vertices = clamp.reverted;
  result.overhead_seconds = timer.ElapsedSeconds();
  result.objective = state_->CurrentObjective();
  span.AddArg("trained", static_cast<double>(result.trained_vertices));
  span.AddArg("reverted", static_cast<double>(result.reverted_vertices));
  obs::DefaultRegistry().GetCounter("serve.reopt_runs")->Increment();
  return result;
}

Result<PublishedPlan> RLCutSession::PublishPlan() {
  if (fault::ShouldFire("session.publish_fail")) {
    return Status::Internal("injected fault: session.publish_fail");
  }
  if (!trained_once_) {
    return Status::FailedPrecondition(
        "no plan to publish: MaybeReoptimize must succeed first");
  }
  PublishedPlan plan;
  // Publish-time re-clamp: guarantees the per-publish budget invariant
  // even if input sizes shifted since the last re-optimization.
  const BudgetClampResult clamp = EnforceMigrationBudget(
      state_.get(), last_published_masters_, input_sizes_, last_budget_);
  plan.reverted_vertices = clamp.reverted;
  plan.masters = state_->masters();
  plan.migration = PlanMigration(last_published_masters_, plan.masters,
                                 input_sizes_, topology_);
  plan.objective = state_->CurrentObjective();
  plan.version = ++version_;
  last_published_masters_ = plan.masters;
  obs::MetricsRegistry& registry = obs::DefaultRegistry();
  registry.GetCounter("serve.publishes")->Increment();
  registry.GetGauge("serve.plan_version")
      ->Set(static_cast<double>(version_));
  return plan;
}

Result<TopologyUpdateResult> RLCutSession::UpdateTopology(
    const Topology& topology) {
  if (topology.num_dcs() != topology_.num_dcs()) {
    return Status::InvalidArgument(
        "topology update changes the DC count from " +
        std::to_string(topology_.num_dcs()) + " to " +
        std::to_string(topology.num_dcs()));
  }
  RLCUT_RETURN_IF_ERROR(topology.Validate());
  TopologyUpdateResult result;
  result.drift = TopologyDrift(topology_, topology);
  const uint64_t changed =
      ChangedDcMask(topology_, topology, options_.drift_threshold);
  topology_ = topology;
  state_->UpdateTopology(&topology_);
  if (result.drift >= options_.drift_threshold && changed != 0) {
    state_->ForEachVertexWithReplicaIn(changed, [&](VertexId v) {
      if (!affected_flags_[v]) {
        affected_flags_[v] = 1;
        ++result.affected_marked;
      }
    });
  }
  return result;
}

// ---- Checkpoint / resume ------------------------------------------------

Status RLCutSession::SaveCheckpoint(const std::string& path) const {
  obs::TraceSpan span("session/checkpoint_save", "session");
  ByteWriter writer;
  writer.Write<uint64_t>(num_vertices_);
  writer.Write<uint32_t>(theta_);
  writer.Write<double>(cost_budget_);
  writer.Write<uint64_t>(seed_);

  writer.Write<int32_t>(topology_.num_dcs());
  for (const DataCenter& dc : topology_.dcs()) {
    writer.WriteString(dc.name);
    writer.Write<double>(dc.uplink_gbps);
    writer.Write<double>(dc.downlink_gbps);
    writer.Write<double>(dc.upload_price);
  }

  writer.WriteVector(locations_);
  writer.WriteVector(edges_);

  writer.WriteString(workload_.name);
  writer.Write<double>(workload_.apply_base_bytes);
  writer.Write<double>(workload_.apply_bytes_per_out_edge);
  writer.Write<double>(workload_.gather_base_bytes);
  writer.WriteVector(workload_.activity);

  writer.WriteVector(input_sizes_);
  writer.WriteVector(state_->masters());

  const AutomatonPoolState pool = pool_->Snapshot();
  writer.Write<uint64_t>(pool.num_vertices);
  writer.Write<int32_t>(pool.num_dcs);
  writer.WriteVector(pool.prob);
  writer.WriteVector(pool.mean_q);
  writer.WriteVector(pool.count);

  writer.Write<uint8_t>(trained_once_ ? 1 : 0);
  writer.Write<uint64_t>(version_);
  writer.WriteVector(last_published_masters_);
  writer.Write<uint64_t>(last_budget_.max_vertices);
  writer.Write<double>(last_budget_.max_bytes);
  writer.Write<int64_t>(watermark_.micros());
  writer.WriteVector(affected_flags_);

  span.AddArg("bytes", static_cast<double>(writer.bytes().size()));
  // Rotate the previous file into the fallback slot before the atomic
  // replace, mirroring SaveTrainerCheckpointRotating.
  std::rename(path.c_str(), (path + ".prev").c_str());
  RLCUT_RETURN_IF_ERROR(AtomicWriteFile(
      path,
      WrapEnvelope(kSessionMagic, kSessionFormatVersion, writer.bytes()),
      "checkpoint"));
  obs::DefaultRegistry().GetCounter("serve.checkpoint_saves")->Increment();
  return Status::Ok();
}

Result<std::unique_ptr<RLCutSession>> RLCutSession::LoadSessionFile(
    const std::string& path, const RLCutSessionOptions& options) {
  Result<std::string> payload = ReadEnvelopeFile(
      path, kSessionMagic, kSessionFormatVersion, "session");
  if (!payload.ok()) return payload.status();
  Result<std::unique_ptr<RLCutSession>> session =
      DecodeSession(*payload, options);
  if (!session.ok()) {
    return Status(session.status().code(),
                  path + ": " + session.status().message());
  }
  return session;
}

Result<std::unique_ptr<RLCutSession>> RLCutSession::Restore(
    const std::string& path, RLCutSessionOptions options) {
  obs::TraceSpan span("session/checkpoint_load", "session");
  Result<std::unique_ptr<RLCutSession>> primary =
      LoadSessionFile(path, options);
  if (primary.ok()) return primary;
  Result<std::unique_ptr<RLCutSession>> fallback =
      LoadSessionFile(path + ".prev", options);
  if (!fallback.ok()) {
    // The primary's diagnosis is the interesting one; a missing
    // fallback slot is the normal state.
    return primary.status();
  }
  obs::DefaultRegistry()
      .GetCounter("serve.checkpoint_fallback_loads")
      ->Increment();
  return fallback;
}

Result<std::unique_ptr<RLCutSession>> RLCutSession::DecodeSession(
    const std::string& payload, RLCutSessionOptions options) {
  ByteReader reader(payload);
  const Status truncated = Status::IoError("truncated session payload");

  uint64_t num_vertices = 0;
  uint32_t theta = 0;
  double cost_budget = 0;
  uint64_t seed = 0;
  int32_t num_dcs = 0;
  if (!reader.Read(&num_vertices) || !reader.Read(&theta) ||
      !reader.Read(&cost_budget) || !reader.Read(&seed) ||
      !reader.Read(&num_dcs)) {
    return truncated;
  }
  if (num_dcs < 1 || num_dcs > kMaxDataCenters) {
    return Status::IoError("session has an invalid DC count");
  }
  std::vector<DataCenter> dcs(num_dcs);
  for (DataCenter& dc : dcs) {
    if (!reader.ReadString(&dc.name) || !reader.Read(&dc.uplink_gbps) ||
        !reader.Read(&dc.downlink_gbps) || !reader.Read(&dc.upload_price)) {
      return truncated;
    }
  }

  std::vector<DcId> locations;
  std::vector<Edge> edges;
  if (!reader.ReadVector(&locations) || !reader.ReadVector(&edges)) {
    return truncated;
  }

  Workload workload;
  if (!reader.ReadString(&workload.name) ||
      !reader.Read(&workload.apply_base_bytes) ||
      !reader.Read(&workload.apply_bytes_per_out_edge) ||
      !reader.Read(&workload.gather_base_bytes) ||
      !reader.ReadVector(&workload.activity)) {
    return truncated;
  }

  std::vector<double> input_sizes;
  std::vector<DcId> masters;
  if (!reader.ReadVector(&input_sizes) || !reader.ReadVector(&masters)) {
    return truncated;
  }

  AutomatonPoolState pool;
  uint64_t pool_vertices = 0;
  if (!reader.Read(&pool_vertices) || !reader.Read(&pool.num_dcs) ||
      !reader.ReadVector(&pool.prob) || !reader.ReadVector(&pool.mean_q) ||
      !reader.ReadVector(&pool.count)) {
    return truncated;
  }
  pool.num_vertices = static_cast<VertexId>(pool_vertices);

  uint8_t trained_once = 0;
  uint64_t version = 0;
  std::vector<DcId> last_published;
  uint64_t budget_vertices = 0;
  double budget_bytes = 0;
  int64_t watermark_micros = 0;
  std::vector<uint8_t> affected_flags;
  if (!reader.Read(&trained_once) || !reader.Read(&version) ||
      !reader.ReadVector(&last_published) || !reader.Read(&budget_vertices) ||
      !reader.Read(&budget_bytes) || !reader.Read(&watermark_micros) ||
      !reader.ReadVector(&affected_flags)) {
    return truncated;
  }
  if (!reader.exhausted()) {
    return Status::IoError("trailing bytes in session payload");
  }

  // Cross-field validation: a corrupt-but-checksummed file must still
  // come out as a clean error, never a crash downstream.
  if (locations.size() != num_vertices || masters.size() != num_vertices ||
      last_published.size() != num_vertices ||
      input_sizes.size() != num_vertices ||
      affected_flags.size() != num_vertices) {
    return Status::IoError("session vertex arrays do not match the graph");
  }
  for (const Edge& e : edges) {
    if (e.src >= num_vertices || e.dst >= num_vertices) {
      return Status::IoError("session edge references an unknown vertex");
    }
  }
  for (const std::vector<DcId>* v : {&locations, &masters, &last_published}) {
    for (DcId dc : *v) {
      if (dc < 0 || dc >= num_dcs) {
        return Status::IoError("session references an unknown DC");
      }
    }
  }
  if (pool.num_vertices != num_vertices || pool.num_dcs != num_dcs) {
    return Status::IoError("session pool dimensions do not match");
  }

  Topology topology{std::move(dcs)};
  RLCUT_RETURN_IF_ERROR(topology.Validate());

  if (options.initial.budget == 0) options.initial.budget = cost_budget;
  if (options.incremental.budget == 0) {
    options.incremental.budget = cost_budget;
  }
  std::unique_ptr<RLCutSession> session(
      new RLCutSession(std::move(options)));
  session->num_vertices_ = static_cast<VertexId>(num_vertices);
  session->edges_ = std::move(edges);
  session->topology_ = std::move(topology);
  session->locations_ = std::move(locations);
  session->workload_ = std::move(workload);
  session->theta_ = theta;
  session->cost_budget_ = cost_budget;
  session->seed_ = seed;

  GraphBuilder builder(session->num_vertices_);
  builder.AddEdges(session->edges_);
  session->graph_ = std::make_unique<Graph>(std::move(builder).Build());
  // The serialized sizes are authoritative (bit-identical resume).
  session->input_sizes_ = std::move(input_sizes);
  PartitionConfig config;
  config.model = ComputeModel::kHybridCut;
  config.theta = session->theta_;
  config.workload = session->workload_;
  session->state_ = std::make_unique<PartitionState>(
      session->graph_.get(), &session->topology_, &session->locations_,
      &session->input_sizes_, config);
  session->state_->ResetDerived(masters);
  session->pool_ = std::make_unique<AutomatonPool>(
      session->num_vertices_, session->topology_.num_dcs(),
      session->options_.incremental);
  RLCUT_RETURN_IF_ERROR(session->pool_->Restore(pool));

  session->trained_once_ = trained_once != 0;
  session->version_ = version;
  session->last_published_masters_ = std::move(last_published);
  session->last_budget_.max_vertices = budget_vertices;
  session->last_budget_.max_bytes = budget_bytes;
  session->watermark_ = SimTime::Micros(watermark_micros);
  session->affected_flags_ = std::move(affected_flags);
  obs::DefaultRegistry().GetCounter("serve.checkpoint_loads")->Increment();
  return session;
}

}  // namespace rlcut
