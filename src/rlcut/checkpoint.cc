#include "rlcut/checkpoint.h"

#include <cstdio>
#include <utility>

#include "common/atomic_file.h"
#include "common/byte_io.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rlcut {
namespace {

// The envelope and the ByteWriter/ByteReader codecs live in
// common/byte_io.h, shared with the session checkpoint format
// (partition/session_io). Host endianness is fine: this is a
// single-machine pause/resume file, not an interchange format.
constexpr char kMagic[8] = {'R', 'L', 'C', 'U', 'T', 'C', 'K', 'P'};
// v2 added TrainerSession::num_shards (the shard count became a
// checkpoint property when RNG streams moved from per-thread to
// per-shard keying). v1 files still load: their shard count is the
// number of saved PRNG streams, which under the per-thread era equals
// the thread count the session was paused with.
constexpr uint32_t kMinFormatVersion = 1;
constexpr uint32_t kFormatVersion = 2;

std::string EncodePayload(const TrainerCheckpoint& checkpoint) {
  ByteWriter writer;
  writer.Write<uint64_t>(checkpoint.num_vertices);
  writer.Write<uint32_t>(checkpoint.num_dcs);
  writer.Write<uint64_t>(checkpoint.seed);
  writer.Write<uint32_t>(static_cast<uint32_t>(checkpoint.model));
  writer.Write<uint32_t>(checkpoint.theta);
  writer.WriteVector(checkpoint.masters);

  writer.Write<uint64_t>(checkpoint.pool.num_vertices);
  writer.Write<int32_t>(checkpoint.pool.num_dcs);
  writer.WriteVector(checkpoint.pool.prob);
  writer.WriteVector(checkpoint.pool.mean_q);
  writer.WriteVector(checkpoint.pool.count);

  const TrainerSession& session = checkpoint.session;
  writer.Write<int32_t>(session.next_step);
  writer.Write<uint8_t>(session.started ? 1 : 0);
  writer.Write<uint8_t>(session.finished ? 1 : 0);
  writer.Write<int64_t>(session.visits_remaining);
  writer.Write<uint32_t>(session.num_shards);  // v2
  writer.Write<uint64_t>(session.history.size());
  for (const StepStats& step : session.history) {
    writer.Write<int32_t>(step.step);
    writer.Write<double>(step.sample_rate);
    writer.Write<uint64_t>(step.num_agents);
    writer.Write<double>(step.seconds);
    writer.Write<double>(step.transfer_seconds);
    writer.Write<double>(step.cost_dollars);
    writer.Write<uint64_t>(step.migrations);
    writer.Write<uint64_t>(step.rollbacks);
  }
  writer.Write<uint64_t>(session.rng_states.size());
  for (const auto& rng_state : session.rng_states) {
    for (uint64_t word : rng_state) writer.Write<uint64_t>(word);
  }
  return writer.bytes();
}

Status DecodePayload(const std::string& payload, uint32_t version,
                     TrainerCheckpoint* checkpoint) {
  ByteReader reader(payload);
  uint32_t model = 0;
  uint64_t vertex_count = 0;
  bool ok = reader.Read(&checkpoint->num_vertices) &&
            reader.Read(&checkpoint->num_dcs) &&
            reader.Read(&checkpoint->seed) && reader.Read(&model) &&
            reader.Read(&checkpoint->theta) &&
            reader.ReadVector(&checkpoint->masters) &&
            reader.Read(&vertex_count) &&
            reader.Read(&checkpoint->pool.num_dcs) &&
            reader.ReadVector(&checkpoint->pool.prob) &&
            reader.ReadVector(&checkpoint->pool.mean_q) &&
            reader.ReadVector(&checkpoint->pool.count);
  if (!ok) return Status::IoError("truncated checkpoint payload");
  if (model > static_cast<uint32_t>(ComputeModel::kEdgeCut)) {
    return Status::IoError("checkpoint has an unknown compute model");
  }
  checkpoint->model = static_cast<ComputeModel>(model);
  checkpoint->pool.num_vertices = static_cast<VertexId>(vertex_count);

  TrainerSession& session = checkpoint->session;
  uint8_t started = 0;
  uint8_t finished = 0;
  uint64_t history_size = 0;
  if (!reader.Read(&session.next_step) || !reader.Read(&started) ||
      !reader.Read(&finished) ||
      !reader.Read(&session.visits_remaining)) {
    return Status::IoError("truncated checkpoint payload");
  }
  if (version >= 2 && !reader.Read(&session.num_shards)) {
    return Status::IoError("truncated checkpoint payload");
  }
  if (!reader.Read(&history_size)) {
    return Status::IoError("truncated checkpoint payload");
  }
  session.started = started != 0;
  session.finished = finished != 0;
  // Serialized size of one StepStats record; bounds the history count a
  // corrupt file can claim before the resize below allocates.
  constexpr uint64_t kStepStatsWireBytes =
      sizeof(int32_t) + 3 * sizeof(uint64_t) + 4 * sizeof(double);
  if (history_size > reader.remaining() / kStepStatsWireBytes) {
    return Status::IoError("checkpoint history count exceeds payload size");
  }
  session.history.resize(history_size);
  for (StepStats& step : session.history) {
    if (!reader.Read(&step.step) || !reader.Read(&step.sample_rate) ||
        !reader.Read(&step.num_agents) || !reader.Read(&step.seconds) ||
        !reader.Read(&step.transfer_seconds) ||
        !reader.Read(&step.cost_dollars) ||
        !reader.Read(&step.migrations) || !reader.Read(&step.rollbacks)) {
      return Status::IoError("truncated checkpoint payload");
    }
  }
  uint64_t rng_count = 0;
  if (!reader.Read(&rng_count)) {
    return Status::IoError("truncated checkpoint payload");
  }
  constexpr uint64_t kRngStateWireBytes = 4 * sizeof(uint64_t);
  if (rng_count > reader.remaining() / kRngStateWireBytes) {
    return Status::IoError("checkpoint rng state count exceeds payload size");
  }
  session.rng_states.resize(rng_count);
  for (auto& rng_state : session.rng_states) {
    uint64_t nonzero = 0;
    for (uint64_t& word : rng_state) {
      if (!reader.Read(&word)) {
        return Status::IoError("truncated checkpoint payload");
      }
      nonzero |= word;
    }
    // xoshiro256** never reaches the all-zero state, so a saved file
    // cannot legitimately contain one; restoring it would abort inside
    // Rng::SetState when the resumed trainer reinstates worker PRNGs.
    if (nonzero == 0) {
      return Status::IoError("checkpoint contains an all-zero rng state");
    }
  }
  if (version < 2) {
    // Pre-sharding files keyed one PRNG stream per worker thread; the
    // resumed run treats that count as its shard count so the saved
    // streams keep their meaning.
    session.num_shards = static_cast<uint32_t>(rng_count);
  } else if (session.num_shards != 0 && rng_count != 0 &&
             session.num_shards != rng_count) {
    return Status::IoError(
        "checkpoint shard count disagrees with its rng state count");
  }
  if (!reader.exhausted()) {
    return Status::IoError("trailing bytes in checkpoint payload");
  }
  return Status::Ok();
}

}  // namespace

TrainerCheckpoint CaptureCheckpoint(const PartitionState& state,
                                    const AutomatonPool& pool,
                                    const TrainerSession& session,
                                    uint64_t seed) {
  TrainerCheckpoint checkpoint;
  checkpoint.num_vertices = state.graph().num_vertices();
  checkpoint.num_dcs = static_cast<uint32_t>(state.num_dcs());
  checkpoint.seed = seed;
  checkpoint.model = state.config().model;
  checkpoint.theta = state.config().theta;
  checkpoint.masters = state.masters();
  checkpoint.pool = pool.Snapshot();
  checkpoint.session = session;
  // A fresh Train call decides where to pause; the saved cursor only
  // records where the run stands.
  checkpoint.session.stop_after_step = -1;
  checkpoint.session.paused = false;
  return checkpoint;
}

Status RestoreCheckpoint(const TrainerCheckpoint& checkpoint,
                         PartitionState* state, AutomatonPool* pool,
                         TrainerSession* session) {
  if (state == nullptr || pool == nullptr || session == nullptr) {
    return Status::InvalidArgument("null restore target");
  }
  if (checkpoint.num_vertices != state->graph().num_vertices()) {
    return Status::FailedPrecondition(
        "checkpoint vertex count does not match the graph");
  }
  if (checkpoint.num_dcs != static_cast<uint32_t>(state->num_dcs())) {
    return Status::FailedPrecondition(
        "checkpoint DC count does not match the topology");
  }
  if (checkpoint.model != state->config().model) {
    return Status::FailedPrecondition(
        "checkpoint compute model does not match the state");
  }
  if (checkpoint.theta != state->config().theta) {
    return Status::FailedPrecondition(
        "checkpoint theta does not match the state");
  }
  if (checkpoint.masters.size() != state->graph().num_vertices()) {
    return Status::FailedPrecondition(
        "checkpoint masters array does not match the graph");
  }
  for (DcId dc : checkpoint.masters) {
    if (dc < 0 || dc >= state->num_dcs()) {
      return Status::OutOfRange("checkpoint references an unknown DC");
    }
  }
  RLCUT_RETURN_IF_ERROR(pool->Restore(checkpoint.pool));
  state->ResetDerived(checkpoint.masters);
  *session = checkpoint.session;
  return Status::Ok();
}

Status SaveTrainerCheckpoint(const TrainerCheckpoint& checkpoint,
                             const std::string& path) {
  obs::TraceSpan span("checkpoint/save", "checkpoint");
  const std::string payload = EncodePayload(checkpoint);
  span.AddArg("bytes", static_cast<double>(payload.size()));
  RLCUT_RETURN_IF_ERROR(AtomicWriteFile(
      path, WrapEnvelope(kMagic, kFormatVersion, payload), "checkpoint"));
  obs::DefaultRegistry().GetCounter("checkpoint.saves")->Increment();
  return Status::Ok();
}

std::string CheckpointFallbackPath(const std::string& path) {
  return path + ".prev";
}

Status SaveTrainerCheckpointRotating(const TrainerCheckpoint& checkpoint,
                                     const std::string& path) {
  // Best-effort rotation: if `path` exists, park it in the fallback
  // slot before the atomic replace. A crash between the two leaves no
  // primary but an intact fallback, which the loader handles.
  std::rename(path.c_str(), CheckpointFallbackPath(path).c_str());
  return SaveTrainerCheckpoint(checkpoint, path);
}

Result<TrainerCheckpoint> LoadTrainerCheckpoint(const std::string& path) {
  obs::TraceSpan span("checkpoint/load", "checkpoint");
  uint32_t version = 0;
  Result<std::string> payload =
      ReadEnvelopeFile(path, kMagic, kMinFormatVersion, kFormatVersion,
                       "checkpoint", &version);
  if (!payload.ok()) return payload.status();
  TrainerCheckpoint checkpoint;
  if (Status s = DecodePayload(*payload, version, &checkpoint); !s.ok()) {
    return Status(s.code(), path + ": " + s.message());
  }
  obs::DefaultRegistry().GetCounter("checkpoint.loads")->Increment();
  return checkpoint;
}

Result<LoadedCheckpoint> LoadTrainerCheckpointWithFallback(
    const std::string& path) {
  LoadedCheckpoint loaded;
  Result<TrainerCheckpoint> primary = LoadTrainerCheckpoint(path);
  if (primary.ok()) {
    loaded.checkpoint = *std::move(primary);
    loaded.loaded_from = path;
    return loaded;
  }
  const std::string fallback = CheckpointFallbackPath(path);
  Result<TrainerCheckpoint> previous = LoadTrainerCheckpoint(fallback);
  if (!previous.ok()) {
    // The primary's diagnosis is the interesting one; a missing
    // fallback slot is the normal state for single-shot checkpoints.
    return primary.status();
  }
  obs::DefaultRegistry()
      .GetCounter("checkpoint.fallback_loads")
      ->Increment();
  loaded.checkpoint = *std::move(previous);
  loaded.loaded_from = fallback;
  loaded.used_fallback = true;
  loaded.primary_error = primary.status().ToString();
  return loaded;
}

}  // namespace rlcut
