#ifndef RLCUT_RLCUT_API_H_
#define RLCUT_RLCUT_API_H_

/// Umbrella header: the library's public surface in one include.
///
/// Pulls in everything an application needs to go from a graph to an
/// evaluated geo-distributed partition:
///
///  * graphs       — SNAP edge-list loading (graph/io.h), the paper's
///                   dataset presets (graph/datasets.h), synthetic
///                   generators (graph/generators.h) and geo-scattering
///                   of vertices over DCs (graph/geo.h);
///  * streams      — the shared SimTime timeline (common/sim_time.h),
///                   temporal edge streams (graph/temporal.h) and the
///                   reorder/dedup buffer that turns out-of-order
///                   arrivals into deterministic micro-batches
///                   (graph/stream.h);
///  * topologies   — EC2-profile presets and custom data-center
///                   topologies (cloud/topology.h), plus time-varying
///                   network schedules for dynamic-environment runs
///                   (cloud/topology_schedule.h);
///  * partitioners — the string-keyed registry (ListPartitioners /
///                   MakePartitionerByName) and the unified fallible
///                   Partitioner::Run API (baselines/partitioner.h),
///                   plus direct access to RLCut's trainer-level output
///                   (rlcut/rlcut_partitioner.h) and trainer
///                   checkpoint/resume (rlcut/checkpoint.h);
///  * sessions     — the long-lived PartitioningSession lifecycle
///                   Open -> ApplyDelta -> MaybeReoptimize(budget) ->
///                   PublishPlan (partition/session.h), opened by
///                   registry name via OpenPartitioningSession, with
///                   RLCut's incremental, checkpointable implementation
///                   in rlcut/session.h (docs/streaming.md walks
///                   through the whole loop);
///  * evaluation   — the Eq. 1-5 quality metrics and report
///                   (partition/metrics.h);
///  * plans        — saving, loading and applying partition plans
///                   (partition/plan_io.h);
///  * observability— the metrics registry and trace spans that every
///                   layer above records into (obs/metrics.h,
///                   obs/trace.h);
///  * scaffolding  — Status / Result error handling (common/status.h)
///                   and command-line flag parsing (common/flags.h).
///
/// Applications should prefer this header over reaching into the
/// per-layer headers; see examples/quickstart.cpp. Link against the
/// umbrella `rlcut` CMake target.
///
/// Deprecation notes (API v6)
/// --------------------------
///  * Constructing methods through the per-method factory functions
///    (MakeRandPg, MakeHashPl, MakeGinger, MakeGeoCut, MakeRevolver,
///    MakeSpinner, MakeFennel, MakeRLCut) is deprecated for
///    applications: resolve methods by registry name instead —
///    MakePartitionerByName(name, options) for a one-shot run, or
///    OpenPartitioningSession(name, ctx, options) for a live session.
///    The factories remain as the registry's implementation hooks (and
///    for method-specific option structs), but direct application use
///    will stop being part of this umbrella in the next release.
///  * Batch Partitioner::Run is now a thin wrapper over the session
///    abstraction (open, one unlimited MaybeReoptimize, take). It is
///    not deprecated — it is the blessed one-shot entry point — but
///    code that re-runs a method as its problem evolves should move to
///    a PartitioningSession and micro-batches.

#include "baselines/partitioner.h"
#include "cloud/topology.h"
#include "cloud/topology_schedule.h"
#include "common/flags.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/geo.h"
#include "graph/io.h"
#include "graph/stream.h"
#include "graph/temporal.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "partition/metrics.h"
#include "partition/plan_io.h"
#include "partition/session.h"
#include "rlcut/checkpoint.h"
#include "rlcut/rlcut_partitioner.h"
#include "rlcut/session.h"

#endif  // RLCUT_RLCUT_API_H_
