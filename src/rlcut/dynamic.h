#ifndef RLCUT_RLCUT_DYNAMIC_H_
#define RLCUT_RLCUT_DYNAMIC_H_

#include <memory>
#include <optional>
#include <unordered_map>
#include <string>
#include <vector>

#include "baselines/partitioner.h"
#include "baselines/spinner.h"
#include "cloud/topology.h"
#include "graph/graph.h"
#include "partition/partition_state.h"
#include "rlcut/automaton.h"
#include "rlcut/options.h"
#include "rlcut/trainer.h"

namespace rlcut {

/// Outcome of adapting the partitioning to one window of edge inserts.
struct WindowResult {
  uint64_t inserted_edges = 0;
  double overhead_seconds = 0;
  /// Objective after adaptation.
  double transfer_seconds = 0;
  double cost_dollars = 0;
  double replication_factor = 0;
  /// Deployment delta vs the pre-window plan (see partition/migration.h):
  /// vertices whose master moved and the data volume that ships.
  uint64_t vertices_migrated = 0;
  double migration_bytes = 0;
  double migration_seconds = 0;
};

/// Shared plumbing of the dynamic experiments (Exp#5): maintains the
/// accumulated edge set, rebuilds the CSR graph and PartitionState per
/// window, carries masters across windows, and delegates the initial
/// partitioning and per-window adaptation to subclasses.
///
/// Vertex ids are stable; initial locations are assigned once (on the
/// initial graph) and input sizes are refreshed each window since they
/// grow with degree.
class DynamicPartitionDriver {
 public:
  /// `topology` must outlive the driver.
  DynamicPartitionDriver(const Topology* topology, Workload workload,
                         uint32_t theta, uint64_t seed);
  virtual ~DynamicPartitionDriver() = default;

  virtual std::string name() const = 0;

  /// Builds the initial graph and partitioning; returns the initial
  /// partitioning overhead (seconds). `locations` fixes L_v for the
  /// entire run.
  double Initialize(VertexId num_vertices, std::vector<Edge> initial_edges,
                    std::vector<DcId> locations);

  /// Appends `new_edges`, rebuilds the state with carried-over masters,
  /// and runs the method's adaptation.
  WindowResult InsertWindow(const std::vector<Edge>& new_edges);

  /// Removes `removed_edges` (multiset semantics: each entry removes one
  /// matching occurrence), rebuilds with carried-over masters, and runs
  /// the method's adaptation. Edges not present are ignored.
  WindowResult RemoveWindow(const std::vector<Edge>& removed_edges);

  /// Swaps in a new effective topology (same DC count) and re-prices the
  /// current layout under it — the environment-side analog of an edge
  /// window. Drive it from TopologySchedule::EffectiveAt as training
  /// steps pass; RLCutDynamicDriver::OnTopologyEvent layers the
  /// re-optimization trigger on top.
  void SetTopology(const Topology& topology);

  const PartitionState& state() const { return *state_; }
  const Graph& graph() const { return *graph_; }
  const Topology& topology() const { return *topology_; }

 protected:
  /// Computation model the subclass's state uses.
  virtual ComputeModel model() const = 0;
  /// Full partitioning of the freshly built initial state.
  virtual void InitialPartition() = 0;
  /// Adapts after an insert window; `affected` lists the (deduplicated)
  /// endpoints of the new edges. Returns the adaptation overhead.
  virtual double AdaptWindow(const std::vector<VertexId>& affected) = 0;

  /// Called before the old graph/state are torn down during a rebuild,
  /// while both are still valid. Explicit-placement methods snapshot
  /// their edge layout here.
  virtual void CaptureCarryover() {}

  /// Reinstates a layout on the freshly rebuilt state. The default
  /// derives edge placement from the carried masters (hybrid/edge-cut);
  /// explicit-placement methods override to restore edges too.
  virtual void ReinstateLayout(const std::vector<DcId>& masters);

  PartitionState* mutable_state() { return state_.get(); }
  uint64_t seed() const { return seed_; }

 private:
  // Rebuilds graph_/sizes_/state_ from edges_; masters carried over when
  // carry_masters is non-null.
  void RebuildState(const std::vector<DcId>* carry_masters);

  // Shared insert/remove plumbing: rebuild with carried masters and
  // adapt over the endpoints of `changed_edges`.
  WindowResult ApplyWindow(const std::vector<Edge>& changed_edges,
                           uint64_t change_count);

  const Topology* topology_;
  // Engaged once SetTopology swaps in an effective topology; topology_
  // then points here instead of at the caller-owned base.
  std::optional<Topology> effective_topology_;
  Workload workload_;
  uint32_t theta_;
  uint64_t seed_;

  VertexId num_vertices_ = 0;
  std::vector<Edge> edges_;
  std::vector<DcId> locations_;
  std::vector<double> input_sizes_;
  std::unique_ptr<Graph> graph_;
  std::unique_ptr<PartitionState> state_;
};

/// Outcome of handling one topology event (RLCutDynamicDriver).
struct ReoptimizationResult {
  /// Relative drift between the previous and the new effective topology
  /// (TopologyDrift).
  double drift = 0;
  /// True if the drift met the threshold and the affected automata were
  /// resumed from their learned policies.
  bool triggered = false;
  /// True if the re-optimization regressed the objective and the
  /// pre-event plan was reinstated (graceful degradation).
  bool rolled_back = false;
  /// Vertices whose automata were resumed.
  uint64_t affected_vertices = 0;
  /// Objective (transfer seconds) under the *new* topology, before and
  /// after re-optimization. after <= before always holds: a regressing
  /// adaptation is rolled back.
  double transfer_seconds_before = 0;
  double transfer_seconds_after = 0;
  double overhead_seconds = 0;
};

/// RLCut's dynamic mode: initial full training, then per window a
/// budgeted training pass (T_opt = window budget) over the affected
/// vertices only. The per-vertex automata persist across windows, so a
/// vertex touched by multiple windows resumes from its learned policy
/// rather than a uniform distribution.
class RLCutDynamicDriver : public DynamicPartitionDriver {
 public:
  /// `initial_options` drives the initial partitioning;
  /// `window_options.t_opt_seconds` is the per-window budget.
  RLCutDynamicDriver(const Topology* topology, Workload workload,
                     uint32_t theta, uint64_t seed,
                     RLCutOptions initial_options,
                     RLCutOptions window_options);

  std::string name() const override { return "RLCut"; }

  /// Network-triggered re-optimization: swaps in `new_topology` and, if
  /// the relative drift reaches `trigger_threshold`, resumes the
  /// automata of the vertices replicated in a changed DC from their
  /// learned policies (the same warm-start mechanism as graph windows)
  /// under the per-window budget. If the adaptation regresses the
  /// objective the pre-event plan is reinstated. Below the threshold
  /// only the re-pricing happens.
  ReoptimizationResult OnTopologyEvent(const Topology& new_topology,
                                       double trigger_threshold = 0.05);

 protected:
  ComputeModel model() const override { return ComputeModel::kHybridCut; }
  void InitialPartition() override;
  double AdaptWindow(const std::vector<VertexId>& affected) override;

 private:
  RLCutOptions initial_options_;
  RLCutOptions window_options_;
  // Persistent per-vertex policies (vertex ids are stable for the run).
  std::unique_ptr<AutomatonPool> pool_;
};

/// Leopard-style dynamic vertex-cut (Huang & Abadi, VLDB'16, adapted):
/// carries the explicit edge placement across windows, streams only the
/// new edges via replica-affinity greedy placement, and re-picks the
/// masters of affected vertices. Network-oblivious, like the original.
class LeopardDynamicDriver : public DynamicPartitionDriver {
 public:
  LeopardDynamicDriver(const Topology* topology, Workload workload,
                       uint32_t theta, uint64_t seed);

  std::string name() const override { return "Leopard"; }

 protected:
  ComputeModel model() const override { return ComputeModel::kVertexCut; }
  void InitialPartition() override;
  double AdaptWindow(const std::vector<VertexId>& affected) override;
  void CaptureCarryover() override;
  void ReinstateLayout(const std::vector<DcId>& masters) override;

 private:
  // Greedy replica-affinity placement of one edge (Oblivious-style).
  DcId PickDcForEdge(const PartitionState& state, VertexId src,
                     VertexId dst) const;
  // Streams every currently unplaced edge and refreshes masters of the
  // vertices it touched.
  void PlaceUnplacedEdges();

  // Carried layout, keyed by (src, dst) with multiset semantics.
  std::unordered_map<uint64_t, std::vector<DcId>> carried_edges_;
};

/// Spinner's dynamic mode: best-effort label propagation from the
/// affected vertices, run to convergence regardless of any window
/// budget (the behaviour Fig. 15b contrasts against).
class SpinnerDynamicDriver : public DynamicPartitionDriver {
 public:
  SpinnerDynamicDriver(const Topology* topology, Workload workload,
                       uint32_t theta, uint64_t seed,
                       SpinnerOptions options);

  std::string name() const override { return "Spinner"; }

 protected:
  ComputeModel model() const override { return ComputeModel::kEdgeCut; }
  void InitialPartition() override;
  double AdaptWindow(const std::vector<VertexId>& affected) override;

 private:
  SpinnerOptions options_;
};

}  // namespace rlcut

#endif  // RLCUT_RLCUT_DYNAMIC_H_
