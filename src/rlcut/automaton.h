#ifndef RLCUT_RLCUT_AUTOMATON_H_
#define RLCUT_RLCUT_AUTOMATON_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "graph/types.h"
#include "rlcut/options.h"

namespace rlcut {

/// Serializable copy of an AutomatonPool's learned state: the per-agent
/// action probabilities (Eq. 12) and UCB statistics (Eq. 13). Used by
/// trainer checkpoint/resume (rlcut/checkpoint.h) and by warm-vs-cold
/// comparisons that need an independent copy of a pool.
struct AutomatonPoolState {
  VertexId num_vertices = 0;
  int num_dcs = 0;
  std::vector<double> prob;
  std::vector<double> mean_q;
  std::vector<uint32_t> count;
};

/// Struct-of-arrays pool of per-vertex learning automata (Sec. IV-A).
///
/// Each agent keeps an action-probability vector P over the M DCs
/// (updated with the L_RI scheme of Eq. 12, optionally the penalty
/// scheme of Eq. 8/9), plus the UCB statistics of Eq. 13: per-action
/// selection counts N and mean observed reward Q.
///
/// Rows (agents) are independent: concurrent calls on distinct vertex
/// ids are safe, which the batched trainer relies on.
class AutomatonPool {
 public:
  /// Agents for vertices [0, num_vertices) over `num_dcs` actions.
  AutomatonPool(VertexId num_vertices, int num_dcs,
                const RLCutOptions& options);

  int num_dcs() const { return num_dcs_; }
  VertexId num_vertices() const {
    return static_cast<VertexId>(prob_.size() / num_dcs_);
  }

  /// Probability of agent v choosing DC r.
  double Probability(VertexId v, DcId r) const {
    return prob_[Index(v, r)];
  }

  /// Mean observed reward Q of action r at agent v (Eq. 13).
  double MeanReward(VertexId v, DcId r) const { return mean_q_[Index(v, r)]; }

  /// Applies the reward update (Eq. 12) for the action `rewarded`; with
  /// options.use_penalty also applies the penalty update (Eq. 9) to
  /// every other action.
  void UpdateSignals(VertexId v, DcId rewarded);

  /// Records an observed reward for the action that was selected
  /// (normalized migration score in [0,1]); feeds Q/N of Eq. 13.
  void RecordSelection(VertexId v, DcId action, double reward);

  /// Selects an action per the configured strategy (Eq. 13 for the UCB
  /// variants). `step` is the global training-step count n. Memoizes
  /// log(n) across the calls of one step; call sequentially.
  DcId SelectAction(VertexId v, int64_t step, Rng* rng) const;

  /// Number of times an action was selected.
  uint32_t SelectionCount(VertexId v, DcId r) const {
    return count_[Index(v, r)];
  }

  /// Deep copy of the learned state (checkpoint/resume).
  AutomatonPoolState Snapshot() const;

  /// Reinstates a snapshot. The snapshot's dimensions must match this
  /// pool's; restoring makes every agent resume from its saved policy.
  Status Restore(const AutomatonPoolState& snapshot);

 private:
  size_t Index(VertexId v, DcId r) const {
    return static_cast<size_t>(v) * num_dcs_ + r;
  }

  int num_dcs_;
  RLCutOptions options_;
  std::vector<double> prob_;      // P_v (Eq. 12)
  std::vector<double> mean_q_;    // Q_n(a) (Eq. 13)
  std::vector<uint32_t> count_;   // N_n(a) (Eq. 13)
  // SelectAction's log(n) memo (one log per step, not per agent).
  mutable int64_t cached_log_step_ = -1;
  mutable double cached_log_n_ = 0;
};

}  // namespace rlcut

#endif  // RLCUT_RLCUT_AUTOMATON_H_
