#ifndef RLCUT_FAULT_FAULT_H_
#define RLCUT_FAULT_FAULT_H_

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

/// Deterministic, seeded fault injection (docs/robustness.md).
///
/// Production code declares *failure sites* — named points where the
/// environment could fail (a task throws, a write is torn, a worker
/// stalls) — by calling ShouldFire("site.name") and acting out the
/// failure when it returns true. With no schedule armed every site is a
/// single relaxed atomic load, so sites are free in production builds;
/// arming a FaultSchedule (tests, the chaos audit lane) turns selected
/// sites on with per-site triggers:
///
///   prob=P     fire each hit independently with probability P, decided
///              by a hash of (schedule seed, site, hit index) so a given
///              seed fires the same hit indices every run
///   nth=N      fire exactly on the N-th hit of the site (1-based)
///   steps=A-B  only fire while the trainer step context (SetStepContext)
///              is within [A, B]
///   max=M      stop after M fires (default: unlimited)
///   amount=K   site-specific payload: stall milliseconds for *stall
///              sites, bytes written before failing for short_write
///
/// Spec grammar (one line, e.g. for a --faults flag):
///   site:key=value[,key=value...][;site:...]
/// Example:
///   threadpool.task_throw:prob=0.05;checkpoint.short_write:nth=2
namespace rlcut::fault {

/// Thrown by sites that simulate a failing task. Deliberately a plain
/// runtime_error subtype: survivors must handle it through the same
/// path as any other exception, not by special-casing the injector.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& site)
      : std::runtime_error("injected fault: " + site) {}
};

/// One trigger rule for a named site. Default-constructed fields mean
/// "no constraint"; a rule with neither prob nor nth never fires.
struct FaultRule {
  std::string site;
  double probability = 0;
  int64_t nth = 0;
  int64_t step_lo = -1;
  int64_t step_hi = -1;
  int64_t max_fires = -1;
  int64_t amount = 0;
};

/// A set of rules plus the seed that makes probabilistic triggers
/// deterministic. Value type: build one, then Arm() it.
struct FaultSchedule {
  uint64_t seed = 1;
  std::vector<FaultRule> rules;

  /// Parses the spec grammar above. Unknown sites and malformed
  /// key=value pairs are errors (returns false and sets *error);
  /// an empty spec parses to an empty schedule.
  static bool Parse(const std::string& spec, uint64_t seed,
                    FaultSchedule* out, std::string* error);

  /// Round-trips back to the spec grammar (for logs and reports).
  std::string ToSpec() const;
};

/// Installs `schedule` process-wide and resets all hit/fire counters.
/// Thread-safe; replaces any previously armed schedule.
void Arm(const FaultSchedule& schedule);

/// Returns every site to the free no-op path.
void Disarm();

/// True while a schedule is armed.
bool Armed();

/// Trainer-step context for steps=A-B triggers; -1 means "outside any
/// step" (such hits only match rules without a step window).
void SetStepContext(int64_t step);

/// The site check. Disarmed: one relaxed atomic load. Armed: consults
/// the schedule under a lock (injection runs are not perf runs). When
/// the site fires and `amount` is non-null, the rule's amount payload
/// (or 0) is stored there.
bool ShouldFire(const char* site, int64_t* amount = nullptr);

/// Fires observed per site / in total since the last Arm().
uint64_t FireCount(const std::string& site);
uint64_t TotalFires();

/// Sleeps up to `ms` milliseconds in 1 ms slices, returning early once
/// `*cancel` becomes true (pass nullptr for an uninterruptible sleep).
/// Stall sites use this so speculative re-dispatch can abandon them.
void CancellableSleepMs(int64_t ms, const std::atomic<bool>* cancel);

/// Registry of the failure sites wired into the codebase, for spec
/// validation and the docs table.
struct SiteInfo {
  const char* name;
  const char* description;
};
const std::vector<SiteInfo>& KnownSites();

}  // namespace rlcut::fault

#endif  // RLCUT_FAULT_FAULT_H_
