#include "fault/fault.h"

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>

namespace rlcut::fault {
namespace {

// SplitMix64: one hash step is enough to decorrelate (seed, site, hit)
// tuples into an independent per-hit uniform draw.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t HashString(const std::string& s) {
  uint64_t hash = 14695981039346656037ull;  // FNV-1a 64
  for (char c : s) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

struct SiteState {
  FaultRule rule;
  uint64_t site_hash = 0;
  int64_t hits = 0;
  int64_t fires = 0;
};

struct Injector {
  uint64_t seed = 1;
  std::unordered_map<std::string, SiteState> sites;
};

std::mutex g_mu;
Injector g_injector;                       // guarded by g_mu
std::atomic<bool> g_armed{false};          // fast disarmed check
std::atomic<int64_t> g_step_context{-1};

bool ParseInt64(const std::string& text, int64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

bool IsKnownSite(const std::string& name) {
  for (const SiteInfo& info : KnownSites()) {
    if (name == info.name) return true;
  }
  return false;
}

}  // namespace

bool FaultSchedule::Parse(const std::string& spec, uint64_t seed,
                          FaultSchedule* out, std::string* error) {
  out->seed = seed;
  out->rules.clear();
  std::istringstream stream(spec);
  std::string clause;
  while (std::getline(stream, clause, ';')) {
    if (clause.empty()) continue;
    const size_t colon = clause.find(':');
    if (colon == std::string::npos || colon == 0) {
      if (error != nullptr) *error = "expected site:key=value in '" + clause + "'";
      return false;
    }
    FaultRule rule;
    rule.site = clause.substr(0, colon);
    if (!IsKnownSite(rule.site)) {
      if (error != nullptr) *error = "unknown fault site '" + rule.site + "'";
      return false;
    }
    std::istringstream params(clause.substr(colon + 1));
    std::string kv;
    bool has_trigger = false;
    while (std::getline(params, kv, ',')) {
      const size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        if (error != nullptr) *error = "expected key=value in '" + kv + "'";
        return false;
      }
      const std::string key = kv.substr(0, eq);
      const std::string value = kv.substr(eq + 1);
      bool ok = false;
      if (key == "prob") {
        ok = ParseDouble(value, &rule.probability) &&
             rule.probability >= 0 && rule.probability <= 1;
        has_trigger = has_trigger || rule.probability > 0;
      } else if (key == "nth") {
        ok = ParseInt64(value, &rule.nth) && rule.nth >= 1;
        has_trigger = true;
      } else if (key == "steps") {
        const size_t dash = value.find('-');
        if (dash == std::string::npos) {
          ok = ParseInt64(value, &rule.step_lo);
          rule.step_hi = rule.step_lo;
        } else {
          ok = ParseInt64(value.substr(0, dash), &rule.step_lo) &&
               ParseInt64(value.substr(dash + 1), &rule.step_hi) &&
               rule.step_lo <= rule.step_hi;
        }
      } else if (key == "max") {
        ok = ParseInt64(value, &rule.max_fires) && rule.max_fires >= 1;
      } else if (key == "amount") {
        ok = ParseInt64(value, &rule.amount) && rule.amount >= 0;
      }
      if (!ok) {
        if (error != nullptr) {
          *error = "bad parameter '" + kv + "' for site " + rule.site;
        }
        return false;
      }
    }
    if (!has_trigger) {
      if (error != nullptr) {
        *error = "site " + rule.site + " needs a prob= or nth= trigger";
      }
      return false;
    }
    out->rules.push_back(std::move(rule));
  }
  return true;
}

std::string FaultSchedule::ToSpec() const {
  std::ostringstream os;
  bool first_rule = true;
  for (const FaultRule& rule : rules) {
    if (!first_rule) os << ';';
    first_rule = false;
    os << rule.site << ':';
    bool first_kv = true;
    auto emit = [&](const std::string& kv) {
      if (!first_kv) os << ',';
      first_kv = false;
      os << kv;
    };
    if (rule.probability > 0) emit("prob=" + std::to_string(rule.probability));
    if (rule.nth >= 1) emit("nth=" + std::to_string(rule.nth));
    if (rule.step_lo >= 0) {
      emit("steps=" + std::to_string(rule.step_lo) + "-" +
           std::to_string(rule.step_hi));
    }
    if (rule.max_fires >= 0) emit("max=" + std::to_string(rule.max_fires));
    if (rule.amount > 0) emit("amount=" + std::to_string(rule.amount));
  }
  return os.str();
}

void Arm(const FaultSchedule& schedule) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_injector.seed = schedule.seed;
  g_injector.sites.clear();
  for (const FaultRule& rule : schedule.rules) {
    SiteState state;
    state.rule = rule;
    state.site_hash = HashString(rule.site);
    g_injector.sites.emplace(rule.site, std::move(state));
  }
  g_armed.store(!g_injector.sites.empty(), std::memory_order_release);
}

void Disarm() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_armed.store(false, std::memory_order_release);
  g_injector.sites.clear();
}

bool Armed() { return g_armed.load(std::memory_order_acquire); }

void SetStepContext(int64_t step) {
  g_step_context.store(step, std::memory_order_relaxed);
}

bool ShouldFire(const char* site, int64_t* amount) {
  if (!g_armed.load(std::memory_order_relaxed)) return false;
  std::lock_guard<std::mutex> lock(g_mu);
  auto it = g_injector.sites.find(site);
  if (it == g_injector.sites.end()) return false;
  SiteState& state = it->second;
  const FaultRule& rule = state.rule;
  const int64_t hit = ++state.hits;
  if (rule.step_lo >= 0) {
    const int64_t step = g_step_context.load(std::memory_order_relaxed);
    if (step < rule.step_lo || step > rule.step_hi) return false;
  }
  if (rule.max_fires >= 0 && state.fires >= rule.max_fires) return false;
  bool fire = false;
  if (rule.nth >= 1 && hit == rule.nth) fire = true;
  if (!fire && rule.probability > 0) {
    const uint64_t draw = Mix64(g_injector.seed ^ state.site_hash ^
                                static_cast<uint64_t>(hit));
    // Top 53 bits to a uniform double in [0, 1).
    const double u =
        static_cast<double>(draw >> 11) * 0x1.0p-53;
    fire = u < rule.probability;
  }
  if (fire) {
    ++state.fires;
    if (amount != nullptr) *amount = rule.amount;
  }
  return fire;
}

uint64_t FireCount(const std::string& site) {
  std::lock_guard<std::mutex> lock(g_mu);
  auto it = g_injector.sites.find(site);
  return it == g_injector.sites.end()
             ? 0
             : static_cast<uint64_t>(it->second.fires);
}

uint64_t TotalFires() {
  std::lock_guard<std::mutex> lock(g_mu);
  uint64_t total = 0;
  for (const auto& [name, state] : g_injector.sites) {
    total += static_cast<uint64_t>(state.fires);
  }
  return total;
}

void CancellableSleepMs(int64_t ms, const std::atomic<bool>* cancel) {
  for (int64_t slept = 0; slept < ms; ++slept) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

const std::vector<SiteInfo>& KnownSites() {
  static const std::vector<SiteInfo> kSites = {
      {"threadpool.task_throw",
       "a queued task throws before running; the pool records the error"},
      {"threadpool.worker_stall",
       "a worker sleeps `amount` ms (default 20) before running its task"},
      {"threadpool.worker_crash",
       "a worker drops its task and exits; the pool spawns a replacement"},
      {"trainer.chunk_stall",
       "an agent chunk stalls `amount` ms (default 30, cancellable) "
       "before scoring"},
      {"trainer.chunk_abandon",
       "an agent chunk returns without publishing its scores"},
      {"checkpoint.open_fail", "checkpoint temp file cannot be opened"},
      {"checkpoint.short_write",
       "checkpoint write is torn after `amount` bytes"},
      {"checkpoint.fsync_fail", "checkpoint fsync reports an I/O error"},
      {"checkpoint.rename_fail",
       "checkpoint temp->final rename fails; the temp is removed"},
      {"plan.open_fail", "plan temp file cannot be opened"},
      {"plan.short_write", "plan write is torn after `amount` bytes"},
      {"plan.fsync_fail", "plan fsync reports an I/O error"},
      {"plan.rename_fail",
       "plan temp->final rename fails; the temp is removed"},
      {"session.ingest_fail",
       "a streaming session rejects a micro-batch at the ingest site"},
      {"session.publish_fail",
       "a streaming session fails to publish its current plan"},
      {"net.connect_fail", "dialing a replica endpoint fails"},
      {"net.send_fail",
       "a transport send reports an I/O error without delivering"},
      {"net.recv_timeout",
       "a transport recv returns no data within its timeout"},
      {"net.frame_corrupt",
       "a frame is delivered with a flipped byte (checksum catches it)"},
      {"net.disconnect",
       "the connection drops; subsequent sends and recvs fail"},
  };
  return kSites;
}

}  // namespace rlcut::fault
