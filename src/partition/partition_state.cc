#include "partition/partition_state.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

#include "common/logging.h"
#include "partition/simd.h"

namespace rlcut {
namespace {

inline uint64_t Bit(DcId r) { return 1ull << r; }

inline int PopCount(uint64_t x) { return std::popcount(x); }

// Iterates the set bits of `mask`, calling fn(DcId).
template <typename Fn>
inline void ForEachDc(uint64_t mask, Fn&& fn) {
  while (mask != 0) {
    const int r = std::countr_zero(mask);
    fn(static_cast<DcId>(r));
    mask &= mask - 1;
  }
}

// Order-insensitive elementwise stage of the objective finalize: per-DC
// stage times g/a (Eq. 2-3 link bottlenecks via cached reciprocals),
// their sum s for the smooth surrogate and the per-DC upload dollars c
// (Eq. 5). Deliberately elementwise — multiplies, adds and maxes on
// independent lanes are exact IEEE operations, so the scalar and AVX2
// variants below produce bit-identical lanes, and the order-sensitive
// reductions run once, in scalar DC order, in AccumulateLanes.
inline void FinalizeLanesScalar(const double* gu, const double* gd,
                                const double* au, const double* ad,
                                const double* iu, const double* id,
                                const double* pp, int m, double* g,
                                double* a, double* s, double* c) {
  for (int r = 0; r < m; ++r) {
    const double gdt = gd[r] * id[r];
    const double gut = gu[r] * iu[r];
    const double aut = au[r] * iu[r];
    const double adt = ad[r] * id[r];
    const double gr = std::max(gdt, gut);
    const double ar = std::max(aut, adt);
    const double up = gu[r] + au[r];
    g[r] = gr;
    a[r] = ar;
    s[r] = gr + ar;
    c[r] = pp[r] * up;
  }
}

#if defined(__x86_64__) || defined(__i386__)
__attribute__((target("avx2"))) void FinalizeLanesAvx2(
    const double* gu, const double* gd, const double* au, const double* ad,
    const double* iu, const double* id, const double* pp, int m, double* g,
    double* a, double* s, double* c) {
  int r = 0;
  for (; r + 4 <= m; r += 4) {
    const __m256d vgu = _mm256_loadu_pd(gu + r);
    const __m256d vgd = _mm256_loadu_pd(gd + r);
    const __m256d vau = _mm256_loadu_pd(au + r);
    const __m256d vad = _mm256_loadu_pd(ad + r);
    const __m256d viu = _mm256_loadu_pd(iu + r);
    const __m256d vid = _mm256_loadu_pd(id + r);
    const __m256d gdt = _mm256_mul_pd(vgd, vid);
    const __m256d gut = _mm256_mul_pd(vgu, viu);
    const __m256d aut = _mm256_mul_pd(vau, viu);
    const __m256d adt = _mm256_mul_pd(vad, vid);
    // max_pd and std::max pick different operands on exact ties, but
    // the lanes are non-negative products (never -0.0), so the chosen
    // bits are identical either way.
    const __m256d vg = _mm256_max_pd(gdt, gut);
    const __m256d va = _mm256_max_pd(aut, adt);
    const __m256d up = _mm256_add_pd(vgu, vau);
    const __m256d vc = _mm256_mul_pd(_mm256_loadu_pd(pp + r), up);
    _mm256_storeu_pd(g + r, vg);
    _mm256_storeu_pd(a + r, va);
    _mm256_storeu_pd(s + r, _mm256_add_pd(vg, va));
    _mm256_storeu_pd(c + r, vc);
  }
  for (; r < m; ++r) {
    const double gdt = gd[r] * id[r];
    const double gut = gu[r] * iu[r];
    const double aut = au[r] * iu[r];
    const double adt = ad[r] * id[r];
    const double gr = std::max(gdt, gut);
    const double ar = std::max(aut, adt);
    const double up = gu[r] + au[r];
    g[r] = gr;
    a[r] = ar;
    s[r] = gr + ar;
    c[r] = pp[r] * up;
  }
}
#endif  // x86

struct FinalizeAccum {
  double t_gather = 0;
  double t_apply = 0;
  double smooth = 0;
  double cost = 0;
};

// The order-sensitive reductions of the finalize, always scalar and in
// DC order so every dispatch path reduces identically.
inline FinalizeAccum AccumulateLanes(const double* g, const double* a,
                                     const double* s, const double* c,
                                     int m) {
  FinalizeAccum acc;
  for (int r = 0; r < m; ++r) {
    acc.t_gather = std::max(acc.t_gather, g[r]);
    acc.t_apply = std::max(acc.t_apply, a[r]);
    acc.smooth += s[r];
    acc.cost += c[r];
  }
  return acc;
}

inline void FinalizeLanes(const double* gu, const double* gd,
                          const double* au, const double* ad,
                          const double* iu, const double* id,
                          const double* pp, int m, double* g, double* a,
                          double* s, double* c) {
#if defined(__x86_64__) || defined(__i386__)
  if (simd::Avx2Enabled()) {
    FinalizeLanesAvx2(gu, gd, au, ad, iu, id, pp, m, g, a, s, c);
    return;
  }
#endif
  FinalizeLanesScalar(gu, gd, au, ad, iu, id, pp, m, g, a, s, c);
}

}  // namespace

void EvalScratch::EnsureSized(VertexId num_vertices, int num_dcs) {
  if (slot_epoch_.size() < num_vertices) {
    slot_.resize(num_vertices, 0);
    slot_epoch_.resize(num_vertices, 0);
  }
  const size_t agg_len = static_cast<size_t>(num_dcs) * 4;
  if (work_.size() < agg_len) {
    work_.resize(agg_len);
    base_.resize(agg_len);
  }
  if (corr_head_.size() < static_cast<size_t>(num_dcs)) {
    corr_head_.resize(num_dcs, -1);
  }
}

PartitionState::PartitionState(const Graph* graph, const Topology* topology,
                               const std::vector<DcId>* initial_locations,
                               const std::vector<double>* input_sizes,
                               PartitionConfig config)
    : graph_(graph),
      topology_(topology),
      initial_locations_(initial_locations),
      input_sizes_(input_sizes),
      config_(std::move(config)) {
  RLCUT_CHECK(graph_ != nullptr);
  RLCUT_CHECK(topology_ != nullptr);
  RLCUT_CHECK(initial_locations_ != nullptr);
  RLCUT_CHECK(input_sizes_ != nullptr);
  RLCUT_CHECK(topology_->Validate().ok());
  num_dcs_ = topology_->num_dcs();
  const VertexId n = graph_->num_vertices();
  RLCUT_CHECK_EQ(initial_locations_->size(), n);
  RLCUT_CHECK_EQ(input_sizes_->size(), n);

  is_high_.resize(n);
  apply_bytes_.resize(n);
  gather_bytes_.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    switch (config_.model) {
      case ComputeModel::kHybridCut:
        is_high_[v] = graph_->InDegree(v) >= config_.theta ? 1 : 0;
        break;
      case ComputeModel::kVertexCut:
        is_high_[v] = 1;
        break;
      case ComputeModel::kEdgeCut:
        is_high_[v] = 0;
        break;
    }
    apply_bytes_[v] = config_.workload.apply_base_bytes +
                      config_.workload.apply_bytes_per_out_edge *
                          graph_->OutDegree(v);
    gather_bytes_[v] = config_.workload.gather_base_bytes;
  }

  masters_.assign(n, 0);
  edge_dc_.assign(graph_->num_edges(), kNoDc);
  cnt_.assign(static_cast<size_t>(n) * num_dcs_, 0);
  in_cnt_.assign(static_cast<size_t>(n) * num_dcs_, 0);
  edge_mask_.assign(n, 0);
  in_mask_.assign(n, 0);
  agg_.assign(static_cast<size_t>(num_dcs_) * 4, 0.0);
  masters_in_dc_.assign(num_dcs_, 0);
  edges_in_dc_.assign(num_dcs_, 0);
  replica_bits_.resize(num_dcs_);
  for (DcId r = 0; r < num_dcs_; ++r) replica_bits_[r].Resize(n);
  meta_.resize(n);
  RefreshPricing();

  // Start from the natural partitioning: masters at initial locations.
  if (config_.model == ComputeModel::kVertexCut) {
    ResetUnplaced(*initial_locations_);
  } else {
    ResetDerived(*initial_locations_);
  }
}

DcId PartitionState::DerivedEdgeDc(EdgeId e) const {
  const VertexId src = graph_->EdgeSource(e);
  const VertexId dst = graph_->EdgeTarget(e);
  // Hybrid-cut rules (Sec. IV-B): in-edges of a low-degree vertex follow
  // that vertex's master; in-edges of a high-degree vertex follow the
  // *source* master. kEdgeCut/kVertexCut degenerate via is_high_.
  return is_high_[dst] ? masters_[src] : masters_[dst];
}

bool PartitionState::EdgeFollowsMaster(EdgeId e, VertexId v) const {
  const VertexId src = graph_->EdgeSource(e);
  const VertexId dst = graph_->EdgeTarget(e);
  return (dst == v && !is_high_[dst]) || (src == v && is_high_[dst]);
}

void PartitionState::ResetDerived(const std::vector<DcId>& masters) {
  RLCUT_CHECK_EQ(masters.size(), graph_->num_vertices());
  derived_placement_ = true;
  masters_ = masters;
  for (EdgeId e = 0; e < graph_->num_edges(); ++e) {
    edge_dc_[e] = DerivedEdgeDc(e);
  }
  RebuildFromPlacement();
}

void PartitionState::ResetWithPlacement(const std::vector<DcId>& masters,
                                        const std::vector<DcId>& edge_dcs) {
  RLCUT_CHECK_EQ(masters.size(), graph_->num_vertices());
  RLCUT_CHECK_EQ(edge_dcs.size(), graph_->num_edges());
  derived_placement_ = false;
  masters_ = masters;
  edge_dc_ = edge_dcs;
  RebuildFromPlacement();
}

void PartitionState::ResetUnplaced(const std::vector<DcId>& masters) {
  RLCUT_CHECK_EQ(masters.size(), graph_->num_vertices());
  derived_placement_ = false;
  masters_ = masters;
  std::fill(edge_dc_.begin(), edge_dc_.end(), kNoDc);
  RebuildFromPlacement();
}

void PartitionState::UpdateTopology(const Topology* topology) {
  RLCUT_CHECK(topology != nullptr);
  RLCUT_CHECK_EQ(topology->num_dcs(), num_dcs_);
  topology_ = topology;
  RefreshPricing();
  // Placement, counters and byte aggregates do not depend on the
  // topology; only the accumulated input-movement cost (Eq. 4) bakes in
  // upload prices and must be re-summed.
  move_cost_ = 0;
  for (VertexId v = 0; v < graph_->num_vertices(); ++v) {
    move_cost_ += MoveCostDelta(v, (*initial_locations_)[v], masters_[v]);
  }
  RefreshCachedObjective();
}

void PartitionState::RefreshPricing() {
  inv_up_.resize(num_dcs_);
  inv_down_.resize(num_dcs_);
  price_per_byte_.resize(num_dcs_);
  for (DcId r = 0; r < num_dcs_; ++r) {
    inv_up_[r] = 1.0 / LinkBytesPerSec(topology_->Uplink(r));
    inv_down_[r] = 1.0 / LinkBytesPerSec(topology_->Downlink(r));
    price_per_byte_[r] = topology_->Price(r) / 1e9;
  }
  total_activity_ = config_.workload.TotalActivity();
}

void PartitionState::RefreshCachedObjective() {
  const double* gu = agg_.data();
  cached_objective_ = ObjectiveFromAggregates(
      gu, gu + num_dcs_, gu + 2 * num_dcs_, gu + 3 * num_dcs_, move_cost_);
}

void PartitionState::RebuildReplicaBits() {
  replica_count_ = 0;
  for (DcId r = 0; r < num_dcs_; ++r) replica_bits_[r].ClearAll();
  for (VertexId v = 0; v < graph_->num_vertices(); ++v) {
    const uint64_t rep = edge_mask_[v] | Bit(masters_[v]);
    replica_count_ += static_cast<uint64_t>(PopCount(rep));
    ForEachDc(rep, [&](DcId r) { replica_bits_[r].Set(v); });
  }
}

void PartitionState::UpdateReplicaBits(VertexId v, uint64_t old_replica,
                                       uint64_t new_replica) {
  uint64_t diff = old_replica ^ new_replica;
  while (diff != 0) {
    const int r = std::countr_zero(diff);
    diff &= diff - 1;
    if ((new_replica >> r) & 1u) {
      replica_bits_[r].Set(v);
      ++replica_count_;
    } else {
      replica_bits_[r].Clear(v);
      --replica_count_;
    }
  }
}

void PartitionState::RebuildFromPlacement() {
  const VertexId n = graph_->num_vertices();
  std::fill(cnt_.begin(), cnt_.end(), 0u);
  std::fill(in_cnt_.begin(), in_cnt_.end(), 0u);
  std::fill(edges_in_dc_.begin(), edges_in_dc_.end(), 0u);
  for (EdgeId e = 0; e < graph_->num_edges(); ++e) {
    const DcId dc = edge_dc_[e];
    if (dc == kNoDc) continue;
    const VertexId src = graph_->EdgeSource(e);
    const VertexId dst = graph_->EdgeTarget(e);
    ++cnt_[static_cast<size_t>(src) * num_dcs_ + dc];
    ++cnt_[static_cast<size_t>(dst) * num_dcs_ + dc];
    ++in_cnt_[static_cast<size_t>(dst) * num_dcs_ + dc];
    ++edges_in_dc_[dc];
  }
  std::fill(agg_.begin(), agg_.end(), 0.0);
  std::fill(masters_in_dc_.begin(), masters_in_dc_.end(), 0u);
  double* gather_up = agg_.data();
  double* gather_down = gather_up + num_dcs_;
  double* apply_up = gather_up + 2 * num_dcs_;
  double* apply_down = gather_up + 3 * num_dcs_;
  move_cost_ = 0;
  for (VertexId v = 0; v < n; ++v) {
    uint64_t em = 0;
    uint64_t im = 0;
    for (DcId r = 0; r < num_dcs_; ++r) {
      if (CntAt(v, r) > 0) em |= Bit(r);
      if (InCntAt(v, r) > 0) im |= Bit(r);
    }
    edge_mask_[v] = em;
    in_mask_[v] = im;
    meta_[v] = {em, apply_bytes_[v], masters_[v], is_high_[v]};
    AccumulateContribution(v, em, im, masters_[v], +1.0, gather_up,
                           gather_down, apply_up, apply_down);
    ++masters_in_dc_[masters_[v]];
    move_cost_ += MoveCostDelta(v, (*initial_locations_)[v], masters_[v]);
  }
  RebuildReplicaBits();
  RefreshCachedObjective();
}

double PartitionState::MoveCostDelta(VertexId v, DcId old_master,
                                     DcId new_master) const {
  const DcId home = (*initial_locations_)[v];
  const double moved_cost = topology_->UploadCost(home, (*input_sizes_)[v]);
  const double old_val = (old_master != home) ? moved_cost : 0.0;
  const double new_val = (new_master != home) ? moved_cost : 0.0;
  return new_val - old_val;
}

void PartitionState::AccumulateContribution(
    VertexId w, uint64_t edge_mask, uint64_t in_mask, DcId master_dc,
    double sign, double* gather_up, double* gather_down, double* apply_up,
    double* apply_down) const {
  const uint64_t master_bit = Bit(master_dc);
  const uint64_t mirrors = edge_mask & ~master_bit;
  const int num_mirrors = PopCount(mirrors);
  if (num_mirrors > 0) {
    // Apply stage (Eq. 3): master uploads a_v to each mirror; every
    // mirror downloads a_v. Low-degree sync is unified into apply.
    const double a = sign * apply_bytes_[w];
    apply_up[master_dc] += a * num_mirrors;
    ForEachDc(mirrors, [&](DcId r) { apply_down[r] += a; });
  }
  if (is_high_[w]) {
    // Gather stage (Eq. 2): mirrors that hold in-edges of w upload one
    // aggregated message; the master downloads all of them.
    const uint64_t gather_mirrors = in_mask & ~master_bit;
    const int num_gather = PopCount(gather_mirrors);
    if (num_gather > 0) {
      const double g = sign * gather_bytes_[w];
      gather_down[master_dc] += g * num_gather;
      ForEachDc(gather_mirrors, [&](DcId r) { gather_up[r] += g; });
    }
  }
}

void PartitionState::CollectMasterMoveDeltas(VertexId v, DcId from, DcId to,
                                             EvalScratch* scratch,
                                             bool record_moved_edges) const {
  EvalScratch& s = *scratch;
  s.EnsureSized(graph_->num_vertices(), num_dcs_);
  s.affected_.clear();
  s.moved_edges_.clear();
  s.from_dc_ = from;
  s.to_dc_ = to;
  if (++s.epoch_ == 0) {
    std::fill(s.slot_epoch_.begin(), s.slot_epoch_.end(), 0u);
    s.epoch_ = 1;
  }
  // On first touch, prefetch the per-vertex state the evaluation loops
  // read next (masks, counts, byte sizes): those loads are scattered
  // and would otherwise serialize on cache misses.
  auto touch = [&](VertexId w) -> EvalScratch::AffectedDelta& {
    if (s.slot_epoch_[w] != s.epoch_) {
      s.slot_epoch_[w] = s.epoch_;
      s.slot_[w] = static_cast<uint32_t>(s.affected_.size());
      s.affected_.push_back({w, 0, 0, 0, 0});
      __builtin_prefetch(&meta_[w]);
      __builtin_prefetch(&cnt_[static_cast<size_t>(w) * num_dcs_]);
    }
    return s.affected_[s.slot_[w]];
  };

  // v is always affected: its master bit moves even if no edge does.
  // Its (large) delta accumulates in locals and is written once.
  touch(v);
  int32_t v_cnt = 0;
  int32_t v_in = 0;

  if (!is_high_[v]) {
    // Low-cut: all in-edges of v follow v's master. The in-neighbor
    // span gives each source directly, avoiding an edge->endpoint
    // lookup per edge.
    auto in_neighbors = graph_->InNeighbors(v);
    auto in_edge_ids = graph_->InEdgeIds(v);
    for (size_t k = 0; k < in_neighbors.size(); ++k) {
      const VertexId u = in_neighbors[k];
      RLCUT_DCHECK(edge_dc_[in_edge_ids[k]] == from);
      if (u == v) {
        v_cnt += 2;  // self-loop: v is both endpoints
      } else {
        auto& du = touch(u);
        --du.cnt_from;
        ++du.cnt_to;
        ++v_cnt;
      }
      ++v_in;
      if (record_moved_edges) s.moved_edges_.push_back(in_edge_ids[k]);
    }
  }
  // High-cut: v's out-edges into high-degree targets follow v's master.
  // A self-loop with is_high_[v] lands here and was not handled by the
  // low-cut branch; with !is_high_[v] the low-cut branch already moved
  // it and the is_high_[u] condition is false.
  const EdgeId out_begin = graph_->OutEdgeBegin(v);
  auto out_neighbors = graph_->OutNeighbors(v);
  for (size_t k = 0; k < out_neighbors.size(); ++k) {
    const VertexId u = out_neighbors[k];
    if (!is_high_[u]) continue;
    RLCUT_DCHECK(edge_dc_[out_begin + k] == from);
    if (u == v) {
      v_cnt += 2;
      ++v_in;
    } else {
      auto& du = touch(u);
      --du.cnt_from;
      ++du.cnt_to;
      --du.in_from;
      ++du.in_to;
      ++v_cnt;
    }
    if (record_moved_edges) s.moved_edges_.push_back(out_begin + k);
  }

  auto& dv = s.affected_[s.slot_[v]];
  dv.cnt_from -= v_cnt;
  dv.cnt_to += v_cnt;
  dv.in_from -= v_in;
  dv.in_to += v_in;
}

void PartitionState::CollectEdgePlaceDeltas(EdgeId e, DcId to,
                                            EvalScratch* scratch) const {
  EvalScratch& s = *scratch;
  s.EnsureSized(graph_->num_vertices(), num_dcs_);
  s.affected_.clear();
  s.moved_edges_.clear();
  s.from_dc_ = edge_dc_[e];
  s.to_dc_ = to;
  if (++s.epoch_ == 0) {
    std::fill(s.slot_epoch_.begin(), s.slot_epoch_.end(), 0u);
    s.epoch_ = 1;
  }
  auto touch = [&s](VertexId w) -> EvalScratch::AffectedDelta& {
    if (s.slot_epoch_[w] != s.epoch_) {
      s.slot_epoch_[w] = s.epoch_;
      s.slot_[w] = static_cast<uint32_t>(s.affected_.size());
      s.affected_.push_back({w, 0, 0, 0, 0});
    }
    return s.affected_[s.slot_[w]];
  };
  const VertexId src = graph_->EdgeSource(e);
  const VertexId dst = graph_->EdgeTarget(e);
  auto& ds = touch(src);
  --ds.cnt_from;
  ++ds.cnt_to;
  auto& dd = touch(dst);
  --dd.cnt_from;
  ++dd.cnt_to;
  --dd.in_from;
  ++dd.in_to;
  s.moved_edges_.push_back(e);
}

void PartitionState::CommitDeltas(EvalScratch* scratch, VertexId move_vertex,
                                  DcId new_master_v) {
  EvalScratch& s = *scratch;
  const DcId from = s.from_dc_;
  const DcId to = s.to_dc_;
  double* gather_up = agg_.data();
  double* gather_down = gather_up + num_dcs_;
  double* apply_up = gather_up + 2 * num_dcs_;
  double* apply_down = gather_up + 3 * num_dcs_;

  const bool has_mover = move_vertex != static_cast<VertexId>(-1);
  uint64_t mover_old_replica = 0;
  if (has_mover) {
    // The mover's master changes, so its whole contribution is removed
    // here (old masks/master) and re-added below (new masks/master).
    AccumulateContribution(move_vertex, edge_mask_[move_vertex],
                           in_mask_[move_vertex], masters_[move_vertex],
                           -1.0, gather_up, gather_down, apply_up,
                           apply_down);
    mover_old_replica = edge_mask_[move_vertex] | Bit(masters_[move_vertex]);
  }

  // Apply count deltas, refresh the from/to mask bits, and fold the net
  // aggregate change of every non-mover in O(1): its master is fixed,
  // so a mirror disappears at `from` exactly when the last incident
  // edge leaves, and appears at `to` exactly when the first arrives.
  for (const auto& d : s.affected_) {
    const size_t row = static_cast<size_t>(d.v) * num_dcs_;
    const uint64_t em_old = edge_mask_[d.v];
    uint64_t em = em_old;
    if (from != kNoDc) {
      cnt_[row + from] = static_cast<uint32_t>(
          static_cast<int64_t>(cnt_[row + from]) + d.cnt_from);
      em = (em & ~Bit(from)) | (cnt_[row + from] > 0 ? Bit(from) : 0);
    }
    cnt_[row + to] = static_cast<uint32_t>(
        static_cast<int64_t>(cnt_[row + to]) + d.cnt_to);
    em = (em & ~Bit(to)) | (cnt_[row + to] > 0 ? Bit(to) : 0);
    edge_mask_[d.v] = em;
    meta_[d.v].edge_mask = em;
    // The in-side state is untouched for most affected vertices (only
    // edges whose target moved carry in-deltas); skipping it avoids
    // pulling the in_cnt_/in_mask_ cache lines.
    uint64_t im_old = 0;
    uint64_t im = 0;
    const bool in_changed = (d.in_from | d.in_to) != 0;
    if (in_changed || d.v == move_vertex) {
      im_old = in_mask_[d.v];
      im = im_old;
      if (from != kNoDc) {
        in_cnt_[row + from] = static_cast<uint32_t>(
            static_cast<int64_t>(in_cnt_[row + from]) + d.in_from);
        im = (im & ~Bit(from)) | (in_cnt_[row + from] > 0 ? Bit(from) : 0);
      }
      in_cnt_[row + to] = static_cast<uint32_t>(
          static_cast<int64_t>(in_cnt_[row + to]) + d.in_to);
      im = (im & ~Bit(to)) | (in_cnt_[row + to] > 0 ? Bit(to) : 0);
      in_mask_[d.v] = im;
    }

    if (d.v == move_vertex) continue;  // re-added with its new master below

    const DcId m = masters_[d.v];
    const double a = apply_bytes_[d.v];
    if (from != kNoDc && (em_old & Bit(from)) != 0 &&
        (em & Bit(from)) == 0 && from != m) {
      apply_up[m] -= a;
      apply_down[from] -= a;
    }
    if ((em_old & Bit(to)) == 0 && (em & Bit(to)) != 0 && to != m) {
      apply_up[m] += a;
      apply_down[to] += a;
    }
    if (is_high_[d.v] != 0 && in_changed) {
      const double g = gather_bytes_[d.v];
      if (from != kNoDc && (im_old & Bit(from)) != 0 &&
          (im & Bit(from)) == 0 && from != m) {
        gather_down[m] -= g;
        gather_up[from] -= g;
      }
      if ((im_old & Bit(to)) == 0 && (im & Bit(to)) != 0 && to != m) {
        gather_down[m] += g;
        gather_up[to] += g;
      }
    }
    if (((em_old ^ em) & ~Bit(m)) != 0) {
      UpdateReplicaBits(d.v, em_old | Bit(m), em | Bit(m));
    }
  }

  // Master change for the moved vertex, then re-add its contribution.
  if (has_mover) {
    const DcId old_master = masters_[move_vertex];
    move_cost_ += MoveCostDelta(move_vertex, old_master, new_master_v);
    --masters_in_dc_[old_master];
    ++masters_in_dc_[new_master_v];
    masters_[move_vertex] = new_master_v;
    meta_[move_vertex].master = new_master_v;
    AccumulateContribution(move_vertex, edge_mask_[move_vertex],
                           in_mask_[move_vertex], new_master_v, +1.0,
                           gather_up, gather_down, apply_up, apply_down);
    UpdateReplicaBits(move_vertex, mover_old_replica,
                      edge_mask_[move_vertex] | Bit(new_master_v));
  }

  // Relocate the moved edges.
  for (EdgeId e : s.moved_edges_) {
    if (edge_dc_[e] != kNoDc) --edges_in_dc_[edge_dc_[e]];
    edge_dc_[e] = to;
    ++edges_in_dc_[to];
  }

  RefreshCachedObjective();
}

void PartitionState::MoveMaster(VertexId v, DcId to) {
  RLCUT_CHECK(derived_placement_)
      << "MoveMaster requires derived placement (hybrid/edge-cut)";
  RLCUT_DCHECK(to >= 0 && to < num_dcs_);
  const DcId from = masters_[v];
  if (from == to) return;
  CollectMasterMoveDeltas(v, from, to, &mutation_scratch_,
                          /*record_moved_edges=*/true);
  CommitDeltas(&mutation_scratch_, v, to);
}

void PartitionState::PlaceEdge(EdgeId e, DcId to) {
  RLCUT_CHECK(!derived_placement_)
      << "PlaceEdge requires explicit placement (vertex-cut)";
  RLCUT_DCHECK(to >= 0 && to < num_dcs_);
  if (edge_dc_[e] == to) return;
  CollectEdgePlaceDeltas(e, to, &mutation_scratch_);
  CommitDeltas(&mutation_scratch_, static_cast<VertexId>(-1), kNoDc);
}

void PartitionState::SetMaster(VertexId v, DcId to) {
  RLCUT_CHECK(!derived_placement_)
      << "SetMaster requires explicit placement; use MoveMaster otherwise";
  RLCUT_DCHECK(to >= 0 && to < num_dcs_);
  const DcId from = masters_[v];
  if (from == to) return;
  EvalScratch& s = mutation_scratch_;
  s.EnsureSized(graph_->num_vertices(), num_dcs_);
  s.affected_.clear();
  s.moved_edges_.clear();
  s.from_dc_ = from;
  s.to_dc_ = to;
  if (++s.epoch_ == 0) {
    std::fill(s.slot_epoch_.begin(), s.slot_epoch_.end(), 0u);
    s.epoch_ = 1;
  }
  s.slot_epoch_[v] = s.epoch_;
  s.slot_[v] = 0;
  s.affected_.push_back({v, 0, 0, 0, 0});
  CommitDeltas(&s, v, to);
}

Objective PartitionState::EvaluateDeltas(EvalScratch* scratch,
                                         VertexId move_vertex,
                                         DcId new_master_v) const {
  EvalScratch& s = *scratch;
  const DcId from = s.from_dc_;
  const DcId to = s.to_dc_;
  double* gather_up = s.work_.data();
  double* gather_down = gather_up + num_dcs_;
  double* apply_up = gather_up + 2 * num_dcs_;
  double* apply_down = gather_up + 3 * num_dcs_;
  // Snapshot the live aggregates, then fold each affected vertex's net
  // change: non-movers in O(1) (their master is fixed, only the from/to
  // mirror bits can flip), the mover by a full remove/re-add since its
  // master changes. All additions are exact on dyadic instances, so
  // this matches CommitDeltas + RefreshCachedObjective bit-for-bit
  // there.
  std::memcpy(gather_up, agg_.data(),
              sizeof(double) * static_cast<size_t>(num_dcs_) * 4);

  for (const auto& d : s.affected_) {
    const size_t row = static_cast<size_t>(d.v) * num_dcs_;
    const VertexMeta& mt = meta_[d.v];
    const uint64_t em_old = mt.edge_mask;
    if (d.v == move_vertex) {
      const uint64_t im_old = in_mask_[d.v];
      AccumulateContribution(d.v, em_old, im_old, mt.master, -1.0,
                             gather_up, gather_down, apply_up, apply_down);
      uint64_t em = em_old;
      uint64_t im = im_old;
      if (from != kNoDc) {
        const int64_t cf =
            static_cast<int64_t>(cnt_[row + from]) + d.cnt_from;
        const int64_t inf =
            static_cast<int64_t>(in_cnt_[row + from]) + d.in_from;
        em = (em & ~Bit(from)) | (cf > 0 ? Bit(from) : 0);
        im = (im & ~Bit(from)) | (inf > 0 ? Bit(from) : 0);
      }
      const int64_t ct = static_cast<int64_t>(cnt_[row + to]) + d.cnt_to;
      const int64_t it = static_cast<int64_t>(in_cnt_[row + to]) + d.in_to;
      em = (em & ~Bit(to)) | (ct > 0 ? Bit(to) : 0);
      im = (im & ~Bit(to)) | (it > 0 ? Bit(to) : 0);
      AccumulateContribution(d.v, em, im, new_master_v, +1.0, gather_up,
                             gather_down, apply_up, apply_down);
      continue;
    }
    const DcId m = mt.master;
    const double a = mt.apply_bytes;
    if (from != kNoDc && (em_old & Bit(from)) != 0 && from != m &&
        static_cast<int64_t>(cnt_[row + from]) + d.cnt_from == 0) {
      apply_up[m] -= a;
      apply_down[from] -= a;
    }
    if ((em_old & Bit(to)) == 0 && d.cnt_to > 0 && to != m) {
      apply_up[m] += a;
      apply_down[to] += a;
    }
    if (mt.is_high != 0) {
      // in_mask_/in_cnt_ loads gated behind the rare high-degree case.
      const uint64_t im_old = in_mask_[d.v];
      const double g = gather_bytes_[d.v];
      if (from != kNoDc && (im_old & Bit(from)) != 0 && from != m &&
          static_cast<int64_t>(in_cnt_[row + from]) + d.in_from == 0) {
        gather_down[m] -= g;
        gather_up[from] -= g;
      }
      if ((im_old & Bit(to)) == 0 && d.in_to > 0 && to != m) {
        gather_down[m] += g;
        gather_up[to] += g;
      }
    }
  }

  double mv_cost = move_cost_;
  if (move_vertex != static_cast<VertexId>(-1)) {
    mv_cost += MoveCostDelta(move_vertex, masters_[move_vertex], new_master_v);
  }
  return ObjectiveFromAggregates(gather_up, gather_down, apply_up, apply_down,
                                 mv_cost);
}

void PartitionState::EvaluateDeltasAll(EvalScratch* scratch,
                                       VertexId move_vertex,
                                       Objective* out) const {
  EvalScratch& s = *scratch;
  const DcId from = s.from_dc_;
  const size_t num_affected = s.affected_.size();

  // Destination-independent base: live aggregates, minus the net
  // from-bit changes of the non-movers, minus the mover's old
  // contribution plus the destination-independent part of its new one.
  // All additions are exact on dyadic instances, so regrouping them
  // does not perturb the result relative to EvaluateDeltas.
  double* base_gu = s.base_.data();
  double* base_gd = base_gu + num_dcs_;
  double* base_au = base_gu + 2 * num_dcs_;
  double* base_ad = base_gu + 3 * num_dcs_;
  std::memcpy(base_gu, agg_.data(),
              sizeof(double) * static_cast<size_t>(num_dcs_) * 4);
  s.corr_pool_.clear();
  std::fill_n(s.corr_head_.begin(), num_dcs_, -1);
  const uint64_t valid_mask =
      num_dcs_ < 64 ? (Bit(num_dcs_) - 1) : ~uint64_t{0};
  bool has_mover = false;
  bool mover_high = false;
  uint64_t mover_mid_em = 0;
  uint64_t mover_mid_im = 0;
  int mover_em_pop = 0;
  int mover_im_pop = 0;
  double mover_a = 0;
  double mover_g = 0;
  for (size_t i = 0; i < num_affected; ++i) {
    const auto& d = s.affected_[i];
    const size_t row = static_cast<size_t>(d.v) * num_dcs_;
    const VertexMeta& mt = meta_[d.v];
    const uint64_t em_old = mt.edge_mask;
    uint64_t em = em_old;
    if (from != kNoDc) {
      const int64_t cf = static_cast<int64_t>(cnt_[row + from]) + d.cnt_from;
      em = (em & ~Bit(from)) | (cf > 0 ? Bit(from) : 0);
    }
    if (d.v == move_vertex) {
      // The in-side mid mask is only needed for the mover and for the
      // rare high-degree non-movers below: gating the in_mask_/in_cnt_
      // loads behind those cases keeps the common low-degree neighbor
      // to two scattered cache lines (edge mask/meta and count row).
      const uint64_t im_old = in_mask_[d.v];
      uint64_t im = im_old;
      if (from != kNoDc && d.in_from != 0) {
        const int64_t inf =
            static_cast<int64_t>(in_cnt_[row + from]) + d.in_from;
        im = (im & ~Bit(from)) | (inf > 0 ? Bit(from) : 0);
      }
      // The mover's master follows the destination. Remove its old
      // contribution, then fold the destination-independent part of the
      // new one: the master bit is excluded from the mirror set, so
      // every DC in the mid mask receives the mover's bytes regardless
      // of destination and only index `to` needs a per-destination fix.
      has_mover = true;
      mover_high = mt.is_high != 0;
      AccumulateContribution(d.v, em_old, im_old, mt.master, -1.0,
                             base_gu, base_gd, base_au, base_ad);
      mover_a = mt.apply_bytes;
      mover_g = gather_bytes_[d.v];
      mover_mid_em = em;
      mover_mid_im = im;
      mover_em_pop = PopCount(em);
      mover_im_pop = PopCount(im);
      ForEachDc(em, [&](DcId r) { base_ad[r] += mover_a; });
      if (mover_high) {
        ForEachDc(im, [&](DcId r) { base_gu[r] += mover_g; });
      }
      continue;
    }
    const DcId m = mt.master;
    const double a = mt.apply_bytes;
    // Net from-bit fix (removal only: moved edges leave the from-DC).
    if (from != kNoDc && (em_old & Bit(from)) != 0 &&
        (em & Bit(from)) == 0 && from != m) {
      base_au[m] -= a;
      base_ad[from] -= a;
    }
    // A destination gains a mirror of this vertex exactly when its bit
    // is off in the mid mask (the to-bit recomputation of EvaluateDeltas
    // reduces to an OR because cnt_to/in_to deltas are never negative)
    // and it is not the vertex's own master. Neighbors typically already
    // hold replicas in most DCs, so few destinations fire; bucket one
    // node per firing destination so the per-destination pass walks
    // only its own short list instead of scanning every correction.
    if (d.cnt_to > 0) {
      ForEachDc(~(em | Bit(m)) & valid_mask, [&](DcId r) {
        s.corr_pool_.push_back({m, a, 0.0, s.corr_head_[r]});
        s.corr_head_[r] = static_cast<int32_t>(s.corr_pool_.size()) - 1;
      });
    }
    if (mt.is_high != 0) {
      const uint64_t im_old = in_mask_[d.v];
      uint64_t im = im_old;
      if (from != kNoDc && d.in_from != 0) {
        const int64_t inf =
            static_cast<int64_t>(in_cnt_[row + from]) + d.in_from;
        im = (im & ~Bit(from)) | (inf > 0 ? Bit(from) : 0);
      }
      const double g = gather_bytes_[d.v];
      if (from != kNoDc && (im_old & Bit(from)) != 0 &&
          (im & Bit(from)) == 0 && from != m) {
        base_gd[m] -= g;
        base_gu[from] -= g;
      }
      if (d.in_to > 0) {
        ForEachDc(~(im | Bit(m)) & valid_mask, [&](DcId r) {
          s.corr_pool_.push_back({m, 0.0, g, s.corr_head_[r]});
          s.corr_head_[r] = static_cast<int32_t>(s.corr_pool_.size()) - 1;
        });
      }
    }
  }

  // Finalize the base once into per-DC lanes. Per destination, only the
  // DCs whose aggregates change (the destination itself plus the
  // masters of correcting vertices) get their lanes recomputed; the
  // accumulation selects the dirty lane when present. All selections
  // and recomputations use the exact elementwise operations of
  // FinalizeLanes, so this stays bit-identical to finalizing a fully
  // patched aggregate copy.
  double base_g[kMaxDataCenters];
  double base_a[kMaxDataCenters];
  double base_s[kMaxDataCenters];
  double base_c[kMaxDataCenters];
  const double* iu = inv_up_.data();
  const double* id = inv_down_.data();
  const double* pp = price_per_byte_.data();
  FinalizeLanes(base_gu, base_gd, base_au, base_ad, iu, id, pp, num_dcs_,
                base_g, base_a, base_s, base_c);

  const EvalScratch::CorrNode* corr = s.corr_pool_.data();
  const bool has_mv_cost = move_vertex != static_cast<VertexId>(-1);
  // Hoist the Eq. 4 pieces: the per-destination delta is
  // (to != home) * moved_cost - old_val, computed with the same
  // grouping as MoveCostDelta.
  DcId mv_home = 0;
  double mv_moved_cost = 0;
  double mv_old_val = 0;
  if (has_mv_cost) {
    mv_home = (*initial_locations_)[move_vertex];
    mv_moved_cost = topology_->UploadCost(mv_home, (*input_sizes_)[move_vertex]);
    mv_old_val = (masters_[move_vertex] != mv_home) ? mv_moved_cost : 0.0;
  }

  // Running aggregate values of the dirty DCs, indexed by DC.
  double dgu[kMaxDataCenters];
  double dgd[kMaxDataCenters];
  double dau[kMaxDataCenters];
  double dad[kMaxDataCenters];
  double dl_g[kMaxDataCenters];
  double dl_a[kMaxDataCenters];
  double dl_s[kMaxDataCenters];
  double dl_c[kMaxDataCenters];
  for (DcId to = 0; to < num_dcs_; ++to) {
    if (to == from) {
      out[to] = cached_objective_;
      continue;
    }
    const uint64_t to_bit = Bit(to);
    uint64_t dirty_mask = 0;
    auto touch_dc = [&](DcId r) {
      const uint64_t bit = Bit(r);
      if ((dirty_mask & bit) == 0) {
        dirty_mask |= bit;
        dgu[r] = base_gu[r];
        dgd[r] = base_gd[r];
        dau[r] = base_au[r];
        dad[r] = base_ad[r];
      }
    };
    touch_dc(to);
    if (has_mover) {
      // Per-destination mover fix: as the master, `to` uploads to every
      // mirror (the mid mask minus itself) and stops being a mirror.
      const int in_mid = (mover_mid_em & to_bit) != 0 ? 1 : 0;
      dau[to] += mover_a * (mover_em_pop - in_mid);
      if (in_mid != 0) dad[to] -= mover_a;
      if (mover_high) {
        const int g_in_mid = (mover_mid_im & to_bit) != 0 ? 1 : 0;
        dgd[to] += mover_g * (mover_im_pop - g_in_mid);
        if (g_in_mid != 0) dgu[to] -= mover_g;
      }
    }
    // Walk this destination's correction list: each node is one extra
    // mirror gained here — the master uploads one more copy and the new
    // mirror transfers it (Eq. 2-3).
    for (int32_t idx = s.corr_head_[to]; idx >= 0; idx = corr[idx].next) {
      const EvalScratch::CorrNode& n = corr[idx];
      touch_dc(n.m);
      dau[n.m] += n.a;
      dad[to] += n.a;
      dgd[n.m] += n.g;
      dgu[to] += n.g;
    }
    // Recompute the lanes of the dirty DCs (same elementwise ops as
    // FinalizeLanesScalar), then accumulate selecting dirty lanes.
    ForEachDc(dirty_mask, [&](DcId r) {
      const double gdt = dgd[r] * id[r];
      const double gut = dgu[r] * iu[r];
      const double aut = dau[r] * iu[r];
      const double adt = dad[r] * id[r];
      const double gr = std::max(gdt, gut);
      const double ar = std::max(aut, adt);
      const double up = dgu[r] + dau[r];
      dl_g[r] = gr;
      dl_a[r] = ar;
      dl_s[r] = gr + ar;
      dl_c[r] = pp[r] * up;
    });
    double t_gather = 0;
    double t_apply = 0;
    double smooth = 0;
    double cost = 0;
    for (DcId r = 0; r < num_dcs_; ++r) {
      const bool dirty = ((dirty_mask >> r) & 1) != 0;
      const double lg = dirty ? dl_g[r] : base_g[r];
      const double la = dirty ? dl_a[r] : base_a[r];
      const double ls = dirty ? dl_s[r] : base_s[r];
      const double lc = dirty ? dl_c[r] : base_c[r];
      t_gather = std::max(t_gather, lg);
      t_apply = std::max(t_apply, la);
      smooth += ls;
      cost += lc;
    }
    double mv_cost = move_cost_;
    if (has_mv_cost) {
      const double mv_new_val = (to != mv_home) ? mv_moved_cost : 0.0;
      mv_cost += mv_new_val - mv_old_val;
    }
    out[to] = {(t_gather + t_apply) * total_activity_,
               mv_cost + cost * total_activity_,
               smooth * total_activity_};
  }
}

void PartitionState::EvaluateMoveAll(VertexId v, EvalScratch* scratch,
                                     Objective* out) const {
  RLCUT_CHECK(derived_placement_);
  const DcId from = masters_[v];
  // The affected set and its count deltas do not depend on the
  // destination; collect them once with a placeholder to_dc_.
  CollectMasterMoveDeltas(v, from, from, scratch,
                          /*record_moved_edges=*/false);
  EvaluateDeltasAll(scratch, v, out);
}

void PartitionState::EvaluatePlaceEdgeAll(EdgeId e, EvalScratch* scratch,
                                          Objective* out) const {
  RLCUT_CHECK(!derived_placement_);
  CollectEdgePlaceDeltas(e, edge_dc_[e], scratch);
  EvaluateDeltasAll(scratch, static_cast<VertexId>(-1), out);
}

Objective PartitionState::EvaluateMove(VertexId v, DcId to,
                                       EvalScratch* scratch) const {
  RLCUT_CHECK(derived_placement_);
  const DcId from = masters_[v];
  if (from == to) return cached_objective_;
  CollectMasterMoveDeltas(v, from, to, scratch,
                          /*record_moved_edges=*/false);
  return EvaluateDeltas(scratch, v, to);
}

Objective PartitionState::EvaluatePlaceEdge(EdgeId e, DcId to,
                                            EvalScratch* scratch) const {
  RLCUT_CHECK(!derived_placement_);
  if (edge_dc_[e] == to) return cached_objective_;
  CollectEdgePlaceDeltas(e, to, scratch);
  return EvaluateDeltas(scratch, static_cast<VertexId>(-1), kNoDc);
}

Objective PartitionState::ObjectiveFromAggregates(const double* gather_up,
                                                  const double* gather_down,
                                                  const double* apply_up,
                                                  const double* apply_down,
                                                  double mv_cost) const {
  // Eq. 1-3: per stage, per DC, the slower of uplink and downlink; the
  // stage finishes when its slowest DC finishes; stages are separated
  // by a global barrier. The smooth surrogate sums all per-link times
  // instead of taking the max (see Objective::smooth_seconds). Zero-
  // bandwidth links (outage events) price as saturated at a finite
  // floor via the cached LinkBytesPerSec reciprocals.
  double g[kMaxDataCenters];
  double a[kMaxDataCenters];
  double s[kMaxDataCenters];
  double c[kMaxDataCenters];
  FinalizeLanes(gather_up, gather_down, apply_up, apply_down, inv_up_.data(),
                inv_down_.data(), price_per_byte_.data(), num_dcs_, g, a, s,
                c);
  const FinalizeAccum acc = AccumulateLanes(g, a, s, c, num_dcs_);
  return {(acc.t_gather + acc.t_apply) * total_activity_,
          mv_cost + acc.cost * total_activity_,
          acc.smooth * total_activity_};
}

double PartitionState::TransferSecondsPerIteration() const {
  double g[kMaxDataCenters];
  double a[kMaxDataCenters];
  double s[kMaxDataCenters];
  double c[kMaxDataCenters];
  const double* gu = agg_.data();
  FinalizeLanes(gu, gu + num_dcs_, gu + 2 * num_dcs_, gu + 3 * num_dcs_,
                inv_up_.data(), inv_down_.data(), price_per_byte_.data(),
                num_dcs_, g, a, s, c);
  const FinalizeAccum acc = AccumulateLanes(g, a, s, c, num_dcs_);
  return acc.t_gather + acc.t_apply;
}

double PartitionState::RuntimeCostPerIteration() const {
  // Eq. 5: only uploads are charged.
  const double* gather_up = agg_.data();
  const double* apply_up = gather_up + 2 * num_dcs_;
  double cost = 0;
  for (DcId r = 0; r < num_dcs_; ++r) {
    const double up = gather_up[r] + apply_up[r];
    cost += price_per_byte_[r] * up;
  }
  return cost;
}

double PartitionState::WanBytesPerIteration() const {
  const double* gather_up = agg_.data();
  const double* apply_up = gather_up + 2 * num_dcs_;
  double bytes = 0;
  for (DcId r = 0; r < num_dcs_; ++r) {
    bytes += gather_up[r] + apply_up[r];
  }
  return bytes;
}

uint64_t PartitionState::ReplicaMask(VertexId v) const {
  return edge_mask_[v] | Bit(masters_[v]);
}

int PartitionState::MirrorCount(VertexId v) const {
  return PopCount(edge_mask_[v] & ~Bit(masters_[v]));
}

uint64_t PartitionState::MirrorMask(VertexId v) const {
  return edge_mask_[v] & ~Bit(masters_[v]);
}

uint64_t PartitionState::GatherMirrorMask(VertexId v) const {
  return in_mask_[v] & ~Bit(masters_[v]);
}

double PartitionState::ReplicationFactor() const {
  const VertexId n = graph_->num_vertices();
  if (n == 0) return 0;
  return static_cast<double>(replica_count_) / n;
}

uint64_t PartitionState::NumHighDegree() const {
  uint64_t count = 0;
  for (uint8_t h : is_high_) count += h;
  return count;
}

bool PartitionState::CheckInvariants() const {
  // Recompute everything from (masters_, edge_dc_) and compare.
  PartitionState fresh(graph_, topology_, initial_locations_, input_sizes_,
                       config_);
  fresh.derived_placement_ = derived_placement_;
  fresh.masters_ = masters_;
  fresh.edge_dc_ = edge_dc_;
  fresh.RebuildFromPlacement();

  bool ok = true;
  for (VertexId v = 0; v < graph_->num_vertices(); ++v) {
    if (masters_[v] < 0 || masters_[v] >= num_dcs_) {
      RLCUT_LOG(kError) << "vertex " << v << " has out-of-range master "
                        << masters_[v];
      ok = false;
      break;
    }
  }
  auto expect_near = [&](double x, double y, const char* what) {
    const double scale = std::max({std::fabs(x), std::fabs(y), 1.0});
    if (std::fabs(x - y) > 1e-6 * scale) {
      RLCUT_LOG(kError) << "invariant mismatch in " << what << ": " << x
                        << " vs " << y;
      ok = false;
    }
  };
  if (cnt_ != fresh.cnt_) {
    RLCUT_LOG(kError) << "invariant mismatch in cnt_";
    ok = false;
  }
  if (in_cnt_ != fresh.in_cnt_) {
    RLCUT_LOG(kError) << "invariant mismatch in in_cnt_";
    ok = false;
  }
  if (edge_mask_ != fresh.edge_mask_) {
    RLCUT_LOG(kError) << "invariant mismatch in edge_mask_";
    ok = false;
  }
  if (in_mask_ != fresh.in_mask_) {
    RLCUT_LOG(kError) << "invariant mismatch in in_mask_";
    ok = false;
  }
  if (masters_in_dc_ != fresh.masters_in_dc_) {
    RLCUT_LOG(kError) << "invariant mismatch in masters_in_dc_";
    ok = false;
  }
  if (edges_in_dc_ != fresh.edges_in_dc_) {
    RLCUT_LOG(kError) << "invariant mismatch in edges_in_dc_";
    ok = false;
  }
  if (replica_bits_ != fresh.replica_bits_) {
    RLCUT_LOG(kError) << "invariant mismatch in replica_bits_";
    ok = false;
  }
  if (meta_ != fresh.meta_) {
    RLCUT_LOG(kError) << "invariant mismatch in meta_ (packed hot fields)";
    ok = false;
  }
  if (replica_count_ != fresh.replica_count_) {
    RLCUT_LOG(kError) << "invariant mismatch in replica_count_: "
                      << replica_count_ << " vs " << fresh.replica_count_;
    ok = false;
  }
  static const char* const kAggNames[4] = {"gather_up", "gather_down",
                                           "apply_up", "apply_down"};
  for (int part = 0; part < 4; ++part) {
    for (DcId r = 0; r < num_dcs_; ++r) {
      const size_t idx = static_cast<size_t>(part) * num_dcs_ + r;
      expect_near(agg_[idx], fresh.agg_[idx], kAggNames[part]);
    }
  }
  expect_near(move_cost_, fresh.move_cost_, "move_cost");

  // The cached objective must be exactly what the live aggregates
  // finalize to — any drift means a mutation path forgot to refresh it.
  {
    const double* gu = agg_.data();
    const Objective recomputed =
        ObjectiveFromAggregates(gu, gu + num_dcs_, gu + 2 * num_dcs_,
                                gu + 3 * num_dcs_, move_cost_);
    if (cached_objective_.transfer_seconds != recomputed.transfer_seconds ||
        cached_objective_.cost_dollars != recomputed.cost_dollars ||
        cached_objective_.smooth_seconds != recomputed.smooth_seconds) {
      RLCUT_LOG(kError) << "stale cached objective: "
                        << cached_objective_.transfer_seconds << "/"
                        << cached_objective_.cost_dollars << "/"
                        << cached_objective_.smooth_seconds << " vs "
                        << recomputed.transfer_seconds << "/"
                        << recomputed.cost_dollars << "/"
                        << recomputed.smooth_seconds;
      ok = false;
    }
  }

  // Compare the cached objective end-to-end with the rebuilt state too,
  // so a divergence in the derived views (stale topology pointer, bad
  // activity scaling) cannot hide.
  const Objective cached = CurrentObjective();
  const Objective rebuilt = fresh.CurrentObjective();
  expect_near(cached.transfer_seconds, rebuilt.transfer_seconds,
              "objective.transfer_seconds");
  expect_near(cached.cost_dollars, rebuilt.cost_dollars,
              "objective.cost_dollars");
  expect_near(cached.smooth_seconds, rebuilt.smooth_seconds,
              "objective.smooth_seconds");

  if (derived_placement_) {
    for (EdgeId e = 0; e < graph_->num_edges(); ++e) {
      if (edge_dc_[e] != DerivedEdgeDc(e)) {
        RLCUT_LOG(kError) << "edge " << e
                          << " not at its rule-derived DC: " << edge_dc_[e]
                          << " vs " << DerivedEdgeDc(e);
        ok = false;
        break;
      }
    }
  }
  return ok;
}

uint32_t PartitionState::AutoTheta(const Graph& graph, double fraction) {
  RLCUT_CHECK_GT(fraction, 0.0);
  RLCUT_CHECK_LE(fraction, 1.0);
  const VertexId n = graph.num_vertices();
  if (n == 0) return 2;
  std::vector<uint32_t> in_degrees(n);
  for (VertexId v = 0; v < n; ++v) in_degrees[v] = graph.InDegree(v);
  std::sort(in_degrees.begin(), in_degrees.end(), std::greater<uint32_t>());
  const size_t idx = std::min<size_t>(
      n - 1, static_cast<size_t>(fraction * static_cast<double>(n)));
  return std::max<uint32_t>(2, in_degrees[idx] + 1);
}

}  // namespace rlcut
