#include "partition/partition_state.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.h"

namespace rlcut {
namespace {

inline uint64_t Bit(DcId r) { return 1ull << r; }

inline int PopCount(uint64_t x) { return std::popcount(x); }

// Iterates the set bits of `mask`, calling fn(DcId).
template <typename Fn>
inline void ForEachDc(uint64_t mask, Fn&& fn) {
  while (mask != 0) {
    const int r = std::countr_zero(mask);
    fn(static_cast<DcId>(r));
    mask &= mask - 1;
  }
}

}  // namespace

void EvalScratch::EnsureSized(VertexId num_vertices, int num_dcs) {
  if (slot_epoch_.size() < num_vertices) {
    slot_.resize(num_vertices, 0);
    slot_epoch_.resize(num_vertices, 0);
  }
  if (gather_up_.size() < static_cast<size_t>(num_dcs)) {
    gather_up_.resize(num_dcs);
    gather_down_.resize(num_dcs);
    apply_up_.resize(num_dcs);
    apply_down_.resize(num_dcs);
    base_gather_up_.resize(num_dcs);
    base_gather_down_.resize(num_dcs);
    base_apply_up_.resize(num_dcs);
    base_apply_down_.resize(num_dcs);
  }
}

PartitionState::PartitionState(const Graph* graph, const Topology* topology,
                               const std::vector<DcId>* initial_locations,
                               const std::vector<double>* input_sizes,
                               PartitionConfig config)
    : graph_(graph),
      topology_(topology),
      initial_locations_(initial_locations),
      input_sizes_(input_sizes),
      config_(std::move(config)) {
  RLCUT_CHECK(graph_ != nullptr);
  RLCUT_CHECK(topology_ != nullptr);
  RLCUT_CHECK(initial_locations_ != nullptr);
  RLCUT_CHECK(input_sizes_ != nullptr);
  RLCUT_CHECK(topology_->Validate().ok());
  num_dcs_ = topology_->num_dcs();
  const VertexId n = graph_->num_vertices();
  RLCUT_CHECK_EQ(initial_locations_->size(), n);
  RLCUT_CHECK_EQ(input_sizes_->size(), n);

  is_high_.resize(n);
  apply_bytes_.resize(n);
  gather_bytes_.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    switch (config_.model) {
      case ComputeModel::kHybridCut:
        is_high_[v] = graph_->InDegree(v) >= config_.theta ? 1 : 0;
        break;
      case ComputeModel::kVertexCut:
        is_high_[v] = 1;
        break;
      case ComputeModel::kEdgeCut:
        is_high_[v] = 0;
        break;
    }
    apply_bytes_[v] = config_.workload.apply_base_bytes +
                      config_.workload.apply_bytes_per_out_edge *
                          graph_->OutDegree(v);
    gather_bytes_[v] = config_.workload.gather_base_bytes;
  }

  masters_.assign(n, 0);
  edge_dc_.assign(graph_->num_edges(), kNoDc);
  cnt_.assign(static_cast<size_t>(n) * num_dcs_, 0);
  in_cnt_.assign(static_cast<size_t>(n) * num_dcs_, 0);
  edge_mask_.assign(n, 0);
  in_mask_.assign(n, 0);
  gather_up_.assign(num_dcs_, 0);
  gather_down_.assign(num_dcs_, 0);
  apply_up_.assign(num_dcs_, 0);
  apply_down_.assign(num_dcs_, 0);
  masters_in_dc_.assign(num_dcs_, 0);
  edges_in_dc_.assign(num_dcs_, 0);

  // Start from the natural partitioning: masters at initial locations.
  if (config_.model == ComputeModel::kVertexCut) {
    ResetUnplaced(*initial_locations_);
  } else {
    ResetDerived(*initial_locations_);
  }
}

DcId PartitionState::DerivedEdgeDc(EdgeId e) const {
  const VertexId src = graph_->EdgeSource(e);
  const VertexId dst = graph_->EdgeTarget(e);
  // Hybrid-cut rules (Sec. IV-B): in-edges of a low-degree vertex follow
  // that vertex's master; in-edges of a high-degree vertex follow the
  // *source* master. kEdgeCut/kVertexCut degenerate via is_high_.
  return is_high_[dst] ? masters_[src] : masters_[dst];
}

bool PartitionState::EdgeFollowsMaster(EdgeId e, VertexId v) const {
  const VertexId src = graph_->EdgeSource(e);
  const VertexId dst = graph_->EdgeTarget(e);
  return (dst == v && !is_high_[dst]) || (src == v && is_high_[dst]);
}

void PartitionState::ResetDerived(const std::vector<DcId>& masters) {
  RLCUT_CHECK_EQ(masters.size(), graph_->num_vertices());
  derived_placement_ = true;
  masters_ = masters;
  for (EdgeId e = 0; e < graph_->num_edges(); ++e) {
    edge_dc_[e] = DerivedEdgeDc(e);
  }
  RebuildFromPlacement();
}

void PartitionState::ResetWithPlacement(const std::vector<DcId>& masters,
                                        const std::vector<DcId>& edge_dcs) {
  RLCUT_CHECK_EQ(masters.size(), graph_->num_vertices());
  RLCUT_CHECK_EQ(edge_dcs.size(), graph_->num_edges());
  derived_placement_ = false;
  masters_ = masters;
  edge_dc_ = edge_dcs;
  RebuildFromPlacement();
}

void PartitionState::ResetUnplaced(const std::vector<DcId>& masters) {
  RLCUT_CHECK_EQ(masters.size(), graph_->num_vertices());
  derived_placement_ = false;
  masters_ = masters;
  std::fill(edge_dc_.begin(), edge_dc_.end(), kNoDc);
  RebuildFromPlacement();
}

void PartitionState::UpdateTopology(const Topology* topology) {
  RLCUT_CHECK(topology != nullptr);
  RLCUT_CHECK_EQ(topology->num_dcs(), num_dcs_);
  topology_ = topology;
  // Placement, counters and byte aggregates do not depend on the
  // topology; only the accumulated input-movement cost (Eq. 4) bakes in
  // upload prices and must be re-summed.
  move_cost_ = 0;
  for (VertexId v = 0; v < graph_->num_vertices(); ++v) {
    move_cost_ += MoveCostDelta(v, (*initial_locations_)[v], masters_[v]);
  }
}

void PartitionState::RebuildFromPlacement() {
  const VertexId n = graph_->num_vertices();
  std::fill(cnt_.begin(), cnt_.end(), 0u);
  std::fill(in_cnt_.begin(), in_cnt_.end(), 0u);
  std::fill(edges_in_dc_.begin(), edges_in_dc_.end(), 0u);
  for (EdgeId e = 0; e < graph_->num_edges(); ++e) {
    const DcId dc = edge_dc_[e];
    if (dc == kNoDc) continue;
    const VertexId src = graph_->EdgeSource(e);
    const VertexId dst = graph_->EdgeTarget(e);
    ++cnt_[static_cast<size_t>(src) * num_dcs_ + dc];
    ++cnt_[static_cast<size_t>(dst) * num_dcs_ + dc];
    ++in_cnt_[static_cast<size_t>(dst) * num_dcs_ + dc];
    ++edges_in_dc_[dc];
  }
  std::fill(gather_up_.begin(), gather_up_.end(), 0.0);
  std::fill(gather_down_.begin(), gather_down_.end(), 0.0);
  std::fill(apply_up_.begin(), apply_up_.end(), 0.0);
  std::fill(apply_down_.begin(), apply_down_.end(), 0.0);
  std::fill(masters_in_dc_.begin(), masters_in_dc_.end(), 0u);
  move_cost_ = 0;
  for (VertexId v = 0; v < n; ++v) {
    uint64_t em = 0;
    uint64_t im = 0;
    for (DcId r = 0; r < num_dcs_; ++r) {
      if (CntAt(v, r) > 0) em |= Bit(r);
      if (InCntAt(v, r) > 0) im |= Bit(r);
    }
    edge_mask_[v] = em;
    in_mask_[v] = im;
    AccumulateContribution(v, em, im, masters_[v], +1.0, gather_up_.data(),
                           gather_down_.data(), apply_up_.data(),
                           apply_down_.data());
    ++masters_in_dc_[masters_[v]];
    move_cost_ += MoveCostDelta(v, (*initial_locations_)[v], masters_[v]);
  }
}

double PartitionState::MoveCostDelta(VertexId v, DcId old_master,
                                     DcId new_master) const {
  const DcId home = (*initial_locations_)[v];
  const double moved_cost =
      topology_->UploadCost(home, (*input_sizes_)[v]);
  const double old_val = (old_master != home) ? moved_cost : 0.0;
  const double new_val = (new_master != home) ? moved_cost : 0.0;
  return new_val - old_val;
}

void PartitionState::AccumulateContribution(
    VertexId w, uint64_t edge_mask, uint64_t in_mask, DcId master_dc,
    double sign, double* gather_up, double* gather_down, double* apply_up,
    double* apply_down) const {
  const uint64_t master_bit = Bit(master_dc);
  const uint64_t mirrors = edge_mask & ~master_bit;
  const int num_mirrors = PopCount(mirrors);
  if (num_mirrors > 0) {
    // Apply stage (Eq. 3): master uploads a_v to each mirror; every
    // mirror downloads a_v. Low-degree sync is unified into apply.
    const double a = sign * apply_bytes_[w];
    apply_up[master_dc] += a * num_mirrors;
    ForEachDc(mirrors, [&](DcId r) { apply_down[r] += a; });
  }
  if (is_high_[w]) {
    // Gather stage (Eq. 2): mirrors that hold in-edges of w upload one
    // aggregated message; the master downloads all of them.
    const uint64_t gather_mirrors = in_mask & ~master_bit;
    const int num_gather = PopCount(gather_mirrors);
    if (num_gather > 0) {
      const double g = sign * gather_bytes_[w];
      gather_down[master_dc] += g * num_gather;
      ForEachDc(gather_mirrors, [&](DcId r) { gather_up[r] += g; });
    }
  }
}

void PartitionState::CollectMasterMoveDeltas(VertexId v, DcId from, DcId to,
                                             EvalScratch* scratch) const {
  EvalScratch& s = *scratch;
  s.EnsureSized(graph_->num_vertices(), num_dcs_);
  s.affected_.clear();
  s.moved_edges_.clear();
  s.from_dc_ = from;
  s.to_dc_ = to;
  if (++s.epoch_ == 0) {
    std::fill(s.slot_epoch_.begin(), s.slot_epoch_.end(), 0u);
    s.epoch_ = 1;
  }
  auto touch = [&s](VertexId w) -> EvalScratch::AffectedDelta& {
    if (s.slot_epoch_[w] != s.epoch_) {
      s.slot_epoch_[w] = s.epoch_;
      s.slot_[w] = static_cast<uint32_t>(s.affected_.size());
      s.affected_.push_back({w, 0, 0, 0, 0});
    }
    return s.affected_[s.slot_[w]];
  };

  // v is always affected: its master bit moves even if no edge does.
  touch(v);

  auto move_edge = [&](EdgeId e) {
    RLCUT_DCHECK(edge_dc_[e] == from);
    const VertexId src = graph_->EdgeSource(e);
    const VertexId dst = graph_->EdgeTarget(e);
    auto& ds = touch(src);
    --ds.cnt_from;
    ++ds.cnt_to;
    auto& dd = touch(dst);
    --dd.cnt_from;
    ++dd.cnt_to;
    --dd.in_from;
    ++dd.in_to;
    s.moved_edges_.push_back(e);
  };

  if (!is_high_[v]) {
    // Low-cut: all in-edges of v follow v's master.
    for (EdgeId e : graph_->InEdgeIds(v)) move_edge(e);
  }
  // High-cut: v's out-edges into high-degree targets follow v's master.
  const EdgeId out_begin = graph_->OutEdgeBegin(v);
  const EdgeId out_end = graph_->OutEdgeEnd(v);
  auto out_neighbors = graph_->OutNeighbors(v);
  for (EdgeId e = out_begin; e < out_end; ++e) {
    const VertexId u = out_neighbors[e - out_begin];
    if (is_high_[u]) {
      // A self-loop (u == v) with is_high_[v] lands here and was not
      // handled by the low-cut branch; with !is_high_[v] the low-cut
      // branch already moved it and this condition is false.
      move_edge(e);
    }
  }
}

void PartitionState::CollectEdgePlaceDeltas(EdgeId e, DcId to,
                                            EvalScratch* scratch) const {
  EvalScratch& s = *scratch;
  s.EnsureSized(graph_->num_vertices(), num_dcs_);
  s.affected_.clear();
  s.moved_edges_.clear();
  s.from_dc_ = edge_dc_[e];
  s.to_dc_ = to;
  if (++s.epoch_ == 0) {
    std::fill(s.slot_epoch_.begin(), s.slot_epoch_.end(), 0u);
    s.epoch_ = 1;
  }
  auto touch = [&s](VertexId w) -> EvalScratch::AffectedDelta& {
    if (s.slot_epoch_[w] != s.epoch_) {
      s.slot_epoch_[w] = s.epoch_;
      s.slot_[w] = static_cast<uint32_t>(s.affected_.size());
      s.affected_.push_back({w, 0, 0, 0, 0});
    }
    return s.affected_[s.slot_[w]];
  };
  const VertexId src = graph_->EdgeSource(e);
  const VertexId dst = graph_->EdgeTarget(e);
  auto& ds = touch(src);
  --ds.cnt_from;
  ++ds.cnt_to;
  auto& dd = touch(dst);
  --dd.cnt_from;
  ++dd.cnt_to;
  --dd.in_from;
  ++dd.in_to;
  s.moved_edges_.push_back(e);
}

void PartitionState::CommitDeltas(EvalScratch* scratch, VertexId move_vertex,
                                  DcId new_master_v) {
  EvalScratch& s = *scratch;
  const DcId from = s.from_dc_;
  const DcId to = s.to_dc_;

  // Remove old contributions.
  for (const auto& d : s.affected_) {
    AccumulateContribution(d.v, edge_mask_[d.v], in_mask_[d.v],
                           masters_[d.v], -1.0, gather_up_.data(),
                           gather_down_.data(), apply_up_.data(),
                           apply_down_.data());
  }

  // Apply count deltas and refresh bitmask bits at from/to.
  for (const auto& d : s.affected_) {
    const size_t row = static_cast<size_t>(d.v) * num_dcs_;
    if (from != kNoDc) {
      cnt_[row + from] = static_cast<uint32_t>(
          static_cast<int64_t>(cnt_[row + from]) + d.cnt_from);
      in_cnt_[row + from] = static_cast<uint32_t>(
          static_cast<int64_t>(in_cnt_[row + from]) + d.in_from);
    }
    cnt_[row + to] = static_cast<uint32_t>(
        static_cast<int64_t>(cnt_[row + to]) + d.cnt_to);
    in_cnt_[row + to] = static_cast<uint32_t>(
        static_cast<int64_t>(in_cnt_[row + to]) + d.in_to);

    uint64_t em = edge_mask_[d.v];
    uint64_t im = in_mask_[d.v];
    if (from != kNoDc) {
      em = (em & ~Bit(from)) | (cnt_[row + from] > 0 ? Bit(from) : 0);
      im = (im & ~Bit(from)) | (in_cnt_[row + from] > 0 ? Bit(from) : 0);
    }
    em = (em & ~Bit(to)) | (cnt_[row + to] > 0 ? Bit(to) : 0);
    im = (im & ~Bit(to)) | (in_cnt_[row + to] > 0 ? Bit(to) : 0);
    edge_mask_[d.v] = em;
    in_mask_[d.v] = im;
  }

  // Master change for the moved vertex.
  if (move_vertex != static_cast<VertexId>(-1)) {
    const DcId old_master = masters_[move_vertex];
    move_cost_ += MoveCostDelta(move_vertex, old_master, new_master_v);
    --masters_in_dc_[old_master];
    ++masters_in_dc_[new_master_v];
    masters_[move_vertex] = new_master_v;
  }

  // Re-add contributions with the new state.
  for (const auto& d : s.affected_) {
    AccumulateContribution(d.v, edge_mask_[d.v], in_mask_[d.v],
                           masters_[d.v], +1.0, gather_up_.data(),
                           gather_down_.data(), apply_up_.data(),
                           apply_down_.data());
  }

  // Relocate the moved edges.
  for (EdgeId e : s.moved_edges_) {
    if (edge_dc_[e] != kNoDc) --edges_in_dc_[edge_dc_[e]];
    edge_dc_[e] = to;
    ++edges_in_dc_[to];
  }
}

void PartitionState::MoveMaster(VertexId v, DcId to) {
  RLCUT_CHECK(derived_placement_)
      << "MoveMaster requires derived placement (hybrid/edge-cut)";
  RLCUT_DCHECK(to >= 0 && to < num_dcs_);
  const DcId from = masters_[v];
  if (from == to) return;
  CollectMasterMoveDeltas(v, from, to, &mutation_scratch_);
  CommitDeltas(&mutation_scratch_, v, to);
}

void PartitionState::PlaceEdge(EdgeId e, DcId to) {
  RLCUT_CHECK(!derived_placement_)
      << "PlaceEdge requires explicit placement (vertex-cut)";
  RLCUT_DCHECK(to >= 0 && to < num_dcs_);
  if (edge_dc_[e] == to) return;
  CollectEdgePlaceDeltas(e, to, &mutation_scratch_);
  CommitDeltas(&mutation_scratch_, static_cast<VertexId>(-1), kNoDc);
}

void PartitionState::SetMaster(VertexId v, DcId to) {
  RLCUT_CHECK(!derived_placement_)
      << "SetMaster requires explicit placement; use MoveMaster otherwise";
  RLCUT_DCHECK(to >= 0 && to < num_dcs_);
  const DcId from = masters_[v];
  if (from == to) return;
  EvalScratch& s = mutation_scratch_;
  s.EnsureSized(graph_->num_vertices(), num_dcs_);
  s.affected_.clear();
  s.moved_edges_.clear();
  s.from_dc_ = from;
  s.to_dc_ = to;
  if (++s.epoch_ == 0) {
    std::fill(s.slot_epoch_.begin(), s.slot_epoch_.end(), 0u);
    s.epoch_ = 1;
  }
  s.slot_epoch_[v] = s.epoch_;
  s.slot_[v] = 0;
  s.affected_.push_back({v, 0, 0, 0, 0});
  CommitDeltas(&s, v, to);
}

Objective PartitionState::EvaluateDeltas(EvalScratch* scratch,
                                         VertexId move_vertex,
                                         DcId new_master_v) const {
  EvalScratch& s = *scratch;
  const DcId from = s.from_dc_;
  const DcId to = s.to_dc_;
  std::fill(s.gather_up_.begin(), s.gather_up_.begin() + num_dcs_, 0.0);
  std::fill(s.gather_down_.begin(), s.gather_down_.begin() + num_dcs_, 0.0);
  std::fill(s.apply_up_.begin(), s.apply_up_.begin() + num_dcs_, 0.0);
  std::fill(s.apply_down_.begin(), s.apply_down_.begin() + num_dcs_, 0.0);

  for (const auto& d : s.affected_) {
    const size_t row = static_cast<size_t>(d.v) * num_dcs_;
    // Remove the current contribution.
    AccumulateContribution(d.v, edge_mask_[d.v], in_mask_[d.v],
                           masters_[d.v], -1.0, s.gather_up_.data(),
                           s.gather_down_.data(), s.apply_up_.data(),
                           s.apply_down_.data());
    // Compute hypothetical masks.
    uint64_t em = edge_mask_[d.v];
    uint64_t im = in_mask_[d.v];
    if (from != kNoDc) {
      const int64_t cf = static_cast<int64_t>(cnt_[row + from]) + d.cnt_from;
      const int64_t inf =
          static_cast<int64_t>(in_cnt_[row + from]) + d.in_from;
      em = (em & ~Bit(from)) | (cf > 0 ? Bit(from) : 0);
      im = (im & ~Bit(from)) | (inf > 0 ? Bit(from) : 0);
    }
    const int64_t ct = static_cast<int64_t>(cnt_[row + to]) + d.cnt_to;
    const int64_t int_ = static_cast<int64_t>(in_cnt_[row + to]) + d.in_to;
    em = (em & ~Bit(to)) | (ct > 0 ? Bit(to) : 0);
    im = (im & ~Bit(to)) | (int_ > 0 ? Bit(to) : 0);
    const DcId master_dc =
        (d.v == move_vertex) ? new_master_v : masters_[d.v];
    AccumulateContribution(d.v, em, im, master_dc, +1.0, s.gather_up_.data(),
                           s.gather_down_.data(), s.apply_up_.data(),
                           s.apply_down_.data());
  }

  // Combine deltas with the base aggregates.
  for (int r = 0; r < num_dcs_; ++r) {
    s.gather_up_[r] += gather_up_[r];
    s.gather_down_[r] += gather_down_[r];
    s.apply_up_[r] += apply_up_[r];
    s.apply_down_[r] += apply_down_[r];
  }

  const StageTimes t_static = TransferTimeFromAggregates(
      s.gather_up_.data(), s.gather_down_.data(), s.apply_up_.data(),
      s.apply_down_.data());
  const double c_rt_static =
      RuntimeCostFromAggregates(s.gather_up_.data(), s.apply_up_.data());
  double mv_cost = move_cost_;
  if (move_vertex != static_cast<VertexId>(-1)) {
    mv_cost += MoveCostDelta(move_vertex, masters_[move_vertex], new_master_v);
  }
  const double total_activity = config_.workload.TotalActivity();
  return {t_static.bottleneck * total_activity,
          mv_cost + c_rt_static * total_activity,
          t_static.smooth * total_activity};
}

void PartitionState::EvaluateDeltasAll(EvalScratch* scratch,
                                       VertexId move_vertex,
                                       Objective* out) const {
  EvalScratch& s = *scratch;
  const DcId from = s.from_dc_;
  const size_t num_affected = s.affected_.size();
  if (s.mid_edge_mask_.size() < num_affected) {
    s.mid_edge_mask_.resize(num_affected);
    s.mid_in_mask_.resize(num_affected);
  }

  // Destination-independent base: current aggregates minus the old
  // contribution of every affected vertex, plus the "mid" contribution
  // (from-bit resolved, to-bit untouched) of every affected vertex
  // except the mover, whose master depends on the destination. All
  // additions are exact on dyadic instances, so regrouping them does
  // not perturb the result relative to EvaluateDeltas.
  for (DcId r = 0; r < num_dcs_; ++r) {
    s.base_gather_up_[r] = gather_up_[r];
    s.base_gather_down_[r] = gather_down_[r];
    s.base_apply_up_[r] = apply_up_[r];
    s.base_apply_down_[r] = apply_down_[r];
  }
  s.corr_.clear();
  bool has_mover = false;
  uint64_t mover_mid_em = 0;
  uint64_t mover_mid_im = 0;
  uint64_t mover_to_em_bit = 0;  // to-bit OR-ed in iff cnt_to > 0
  uint64_t mover_to_im_bit = 0;
  for (size_t i = 0; i < num_affected; ++i) {
    const auto& d = s.affected_[i];
    AccumulateContribution(d.v, edge_mask_[d.v], in_mask_[d.v],
                           masters_[d.v], -1.0, s.base_gather_up_.data(),
                           s.base_gather_down_.data(),
                           s.base_apply_up_.data(),
                           s.base_apply_down_.data());
    uint64_t em = edge_mask_[d.v];
    uint64_t im = in_mask_[d.v];
    if (from != kNoDc) {
      const size_t row = static_cast<size_t>(d.v) * num_dcs_;
      const int64_t cf = static_cast<int64_t>(cnt_[row + from]) + d.cnt_from;
      const int64_t inf =
          static_cast<int64_t>(in_cnt_[row + from]) + d.in_from;
      em = (em & ~Bit(from)) | (cf > 0 ? Bit(from) : 0);
      im = (im & ~Bit(from)) | (inf > 0 ? Bit(from) : 0);
    }
    s.mid_edge_mask_[i] = em;
    s.mid_in_mask_[i] = im;
    if (d.v == move_vertex) {
      // The mover's master follows the destination, so its contribution
      // is rebuilt in full per destination rather than corrected.
      has_mover = true;
      mover_mid_em = em;
      mover_mid_im = im;
      mover_to_em_bit = d.cnt_to > 0 ? 1 : 0;
      mover_to_im_bit = d.in_to > 0 ? 1 : 0;
      continue;
    }
    AccumulateContribution(d.v, em, im, masters_[d.v], +1.0,
                           s.base_gather_up_.data(),
                           s.base_gather_down_.data(),
                           s.base_apply_up_.data(),
                           s.base_apply_down_.data());
    // Precompute which destinations add a mirror of this vertex. The
    // to-bit recomputation of EvaluateDeltas reduces to an OR because
    // cnt_to/in_to deltas are never negative (moved edges only add
    // incidence at the destination); a correction fires exactly when
    // the destination bit was off in the mid mask (and is not the
    // vertex's own master, which is excluded from the mirror set).
    EvalScratch::DestCorrection c;
    c.m = masters_[d.v];
    c.a = apply_bytes_[d.v];
    c.g = gather_bytes_[d.v];
    c.apply_mask = d.cnt_to > 0 ? (~em & ~Bit(c.m)) : 0;
    c.gather_mask =
        (is_high_[d.v] != 0 && d.in_to > 0) ? (~im & ~Bit(c.m)) : 0;
    if (c.apply_mask != 0 || c.gather_mask != 0) s.corr_.push_back(c);
  }

  const double total_activity = config_.workload.TotalActivity();
  for (DcId to = 0; to < num_dcs_; ++to) {
    if (to == from) {
      out[to] = CurrentObjective();
      continue;
    }
    for (DcId r = 0; r < num_dcs_; ++r) {
      s.gather_up_[r] = s.base_gather_up_[r];
      s.gather_down_[r] = s.base_gather_down_[r];
      s.apply_up_[r] = s.base_apply_up_[r];
      s.apply_down_[r] = s.base_apply_down_[r];
    }
    const uint64_t to_bit = Bit(to);
    for (const EvalScratch::DestCorrection& c : s.corr_) {
      if (c.apply_mask & to_bit) {
        // One extra apply mirror: the master uploads one more a_v copy
        // and the new mirror downloads it (Eq. 3).
        s.apply_up_[c.m] += c.a;
        s.apply_down_[to] += c.a;
      }
      if (c.gather_mask & to_bit) {
        // One extra gather mirror uploads its aggregate; the master
        // downloads one more message (Eq. 2).
        s.gather_down_[c.m] += c.g;
        s.gather_up_[to] += c.g;
      }
    }
    if (has_mover) {
      const uint64_t em = mover_mid_em | (mover_to_em_bit ? to_bit : 0);
      const uint64_t im = mover_mid_im | (mover_to_im_bit ? to_bit : 0);
      AccumulateContribution(move_vertex, em, im, to, +1.0,
                             s.gather_up_.data(), s.gather_down_.data(),
                             s.apply_up_.data(), s.apply_down_.data());
    }

    const StageTimes t = TransferTimeFromAggregates(
        s.gather_up_.data(), s.gather_down_.data(), s.apply_up_.data(),
        s.apply_down_.data());
    const double c_rt =
        RuntimeCostFromAggregates(s.gather_up_.data(), s.apply_up_.data());
    double mv_cost = move_cost_;
    if (move_vertex != static_cast<VertexId>(-1)) {
      mv_cost += MoveCostDelta(move_vertex, masters_[move_vertex], to);
    }
    out[to] = {t.bottleneck * total_activity,
               mv_cost + c_rt * total_activity, t.smooth * total_activity};
  }
}

void PartitionState::EvaluateMoveAll(VertexId v, EvalScratch* scratch,
                                     Objective* out) const {
  RLCUT_CHECK(derived_placement_);
  const DcId from = masters_[v];
  // The affected set and its count deltas do not depend on the
  // destination; collect them once with a placeholder to_dc_.
  CollectMasterMoveDeltas(v, from, from, scratch);
  EvaluateDeltasAll(scratch, v, out);
}

void PartitionState::EvaluatePlaceEdgeAll(EdgeId e, EvalScratch* scratch,
                                          Objective* out) const {
  RLCUT_CHECK(!derived_placement_);
  CollectEdgePlaceDeltas(e, edge_dc_[e], scratch);
  EvaluateDeltasAll(scratch, static_cast<VertexId>(-1), out);
}

Objective PartitionState::EvaluateMove(VertexId v, DcId to,
                                       EvalScratch* scratch) const {
  RLCUT_CHECK(derived_placement_);
  const DcId from = masters_[v];
  if (from == to) return CurrentObjective();
  CollectMasterMoveDeltas(v, from, to, scratch);
  return EvaluateDeltas(scratch, v, to);
}

Objective PartitionState::EvaluatePlaceEdge(EdgeId e, DcId to,
                                            EvalScratch* scratch) const {
  RLCUT_CHECK(!derived_placement_);
  if (edge_dc_[e] == to) return CurrentObjective();
  CollectEdgePlaceDeltas(e, to, scratch);
  return EvaluateDeltas(scratch, static_cast<VertexId>(-1), kNoDc);
}

PartitionState::StageTimes PartitionState::TransferTimeFromAggregates(
    const double* gather_up, const double* gather_down,
    const double* apply_up, const double* apply_down) const {
  // Eq. 1-3: per stage, per DC, the slower of uplink and downlink; the
  // stage finishes when its slowest DC finishes; stages are separated by
  // a global barrier. The smooth surrogate sums all per-link times
  // instead of taking the max (see Objective::smooth_seconds).
  double t_gather = 0;
  double t_apply = 0;
  double smooth = 0;
  for (DcId r = 0; r < num_dcs_; ++r) {
    // Zero-bandwidth links (outage events) count as saturated at a
    // finite floor; see kMinLinkBytesPerSec.
    const double up = LinkBytesPerSec(topology_->Uplink(r));
    const double down = LinkBytesPerSec(topology_->Downlink(r));
    const double g = std::max(gather_down[r] / down, gather_up[r] / up);
    const double a = std::max(apply_up[r] / up, apply_down[r] / down);
    t_gather = std::max(t_gather, g);
    t_apply = std::max(t_apply, a);
    smooth += g + a;
  }
  return {t_gather + t_apply, smooth};
}

double PartitionState::RuntimeCostFromAggregates(const double* gather_up,
                                                 const double* apply_up) const {
  // Eq. 5: only uploads are charged.
  double cost = 0;
  for (DcId r = 0; r < num_dcs_; ++r) {
    cost += topology_->Price(r) * (gather_up[r] + apply_up[r]) / 1e9;
  }
  return cost;
}

Objective PartitionState::CurrentObjective() const {
  const double total_activity = config_.workload.TotalActivity();
  const StageTimes t = TransferTimeFromAggregates(
      gather_up_.data(), gather_down_.data(), apply_up_.data(),
      apply_down_.data());
  return {t.bottleneck * total_activity,
          move_cost_ + RuntimeCostPerIteration() * total_activity,
          t.smooth * total_activity};
}

double PartitionState::TransferSecondsPerIteration() const {
  return TransferTimeFromAggregates(gather_up_.data(), gather_down_.data(),
                                    apply_up_.data(), apply_down_.data())
      .bottleneck;
}

double PartitionState::RuntimeCostPerIteration() const {
  return RuntimeCostFromAggregates(gather_up_.data(), apply_up_.data());
}

double PartitionState::WanBytesPerIteration() const {
  double bytes = 0;
  for (DcId r = 0; r < num_dcs_; ++r) {
    bytes += gather_up_[r] + apply_up_[r];
  }
  return bytes;
}

uint64_t PartitionState::ReplicaMask(VertexId v) const {
  return edge_mask_[v] | Bit(masters_[v]);
}

int PartitionState::MirrorCount(VertexId v) const {
  return PopCount(edge_mask_[v] & ~Bit(masters_[v]));
}

uint64_t PartitionState::MirrorMask(VertexId v) const {
  return edge_mask_[v] & ~Bit(masters_[v]);
}

uint64_t PartitionState::GatherMirrorMask(VertexId v) const {
  return in_mask_[v] & ~Bit(masters_[v]);
}

double PartitionState::ReplicationFactor() const {
  const VertexId n = graph_->num_vertices();
  if (n == 0) return 0;
  uint64_t replicas = 0;
  for (VertexId v = 0; v < n; ++v) {
    replicas += static_cast<uint64_t>(PopCount(ReplicaMask(v)));
  }
  return static_cast<double>(replicas) / n;
}

uint64_t PartitionState::NumHighDegree() const {
  uint64_t count = 0;
  for (uint8_t h : is_high_) count += h;
  return count;
}

bool PartitionState::CheckInvariants() const {
  // Recompute everything from (masters_, edge_dc_) and compare.
  PartitionState fresh(graph_, topology_, initial_locations_, input_sizes_,
                       config_);
  fresh.derived_placement_ = derived_placement_;
  fresh.masters_ = masters_;
  fresh.edge_dc_ = edge_dc_;
  fresh.RebuildFromPlacement();

  bool ok = true;
  for (VertexId v = 0; v < graph_->num_vertices(); ++v) {
    if (masters_[v] < 0 || masters_[v] >= num_dcs_) {
      RLCUT_LOG(kError) << "vertex " << v << " has out-of-range master "
                        << masters_[v];
      ok = false;
      break;
    }
  }
  auto expect_near = [&](double a, double b, const char* what) {
    const double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
    if (std::fabs(a - b) > 1e-6 * scale) {
      RLCUT_LOG(kError) << "invariant mismatch in " << what << ": " << a
                        << " vs " << b;
      ok = false;
    }
  };
  if (cnt_ != fresh.cnt_) {
    RLCUT_LOG(kError) << "invariant mismatch in cnt_";
    ok = false;
  }
  if (in_cnt_ != fresh.in_cnt_) {
    RLCUT_LOG(kError) << "invariant mismatch in in_cnt_";
    ok = false;
  }
  if (edge_mask_ != fresh.edge_mask_) {
    RLCUT_LOG(kError) << "invariant mismatch in edge_mask_";
    ok = false;
  }
  if (in_mask_ != fresh.in_mask_) {
    RLCUT_LOG(kError) << "invariant mismatch in in_mask_";
    ok = false;
  }
  if (masters_in_dc_ != fresh.masters_in_dc_) {
    RLCUT_LOG(kError) << "invariant mismatch in masters_in_dc_";
    ok = false;
  }
  if (edges_in_dc_ != fresh.edges_in_dc_) {
    RLCUT_LOG(kError) << "invariant mismatch in edges_in_dc_";
    ok = false;
  }
  for (DcId r = 0; r < num_dcs_; ++r) {
    expect_near(gather_up_[r], fresh.gather_up_[r], "gather_up");
    expect_near(gather_down_[r], fresh.gather_down_[r], "gather_down");
    expect_near(apply_up_[r], fresh.apply_up_[r], "apply_up");
    expect_near(apply_down_[r], fresh.apply_down_[r], "apply_down");
  }
  expect_near(move_cost_, fresh.move_cost_, "move_cost");

  // The cached objective is derived from the aggregates above, but
  // compare it end-to-end too so a divergence in the derived views
  // (stale topology pointer, bad activity scaling) cannot hide.
  const Objective cached = CurrentObjective();
  const Objective rebuilt = fresh.CurrentObjective();
  expect_near(cached.transfer_seconds, rebuilt.transfer_seconds,
              "objective.transfer_seconds");
  expect_near(cached.cost_dollars, rebuilt.cost_dollars,
              "objective.cost_dollars");
  expect_near(cached.smooth_seconds, rebuilt.smooth_seconds,
              "objective.smooth_seconds");

  if (derived_placement_) {
    for (EdgeId e = 0; e < graph_->num_edges(); ++e) {
      if (edge_dc_[e] != DerivedEdgeDc(e)) {
        RLCUT_LOG(kError) << "edge " << e
                          << " not at its rule-derived DC: " << edge_dc_[e]
                          << " vs " << DerivedEdgeDc(e);
        ok = false;
        break;
      }
    }
  }
  return ok;
}

uint32_t PartitionState::AutoTheta(const Graph& graph, double fraction) {
  RLCUT_CHECK_GT(fraction, 0.0);
  RLCUT_CHECK_LE(fraction, 1.0);
  const VertexId n = graph.num_vertices();
  if (n == 0) return 2;
  std::vector<uint32_t> in_degrees(n);
  for (VertexId v = 0; v < n; ++v) in_degrees[v] = graph.InDegree(v);
  std::sort(in_degrees.begin(), in_degrees.end(), std::greater<uint32_t>());
  const size_t idx = std::min<size_t>(
      n - 1, static_cast<size_t>(fraction * static_cast<double>(n)));
  return std::max<uint32_t>(2, in_degrees[idx] + 1);
}

}  // namespace rlcut
