#ifndef RLCUT_PARTITION_SIMD_H_
#define RLCUT_PARTITION_SIMD_H_

namespace rlcut {
namespace simd {

/// True when the AVX2 fast paths are compiled in, the CPU reports AVX2
/// at runtime, and neither SetForceScalar(true) nor RLCUT_NO_SIMD=1 is
/// in effect. Callers dispatch between bit-identical scalar and AVX2
/// kernels on this; see docs/performance.md for the dispatch policy.
bool Avx2Enabled();

/// Test hook: force the scalar fallback regardless of CPU support, so
/// oracle lanes can compare the scalar and SIMD paths on one machine.
void SetForceScalar(bool force);
bool ForceScalar();

}  // namespace simd
}  // namespace rlcut

#endif  // RLCUT_PARTITION_SIMD_H_
