#ifndef RLCUT_PARTITION_METRICS_H_
#define RLCUT_PARTITION_METRICS_H_

#include <string>
#include <vector>

#include "partition/partition_state.h"

namespace rlcut {

/// Summary of a partitioning, for reports and regression tests.
struct PartitionReport {
  /// Eq. 1 summed over iterations (activity-scaled), seconds.
  double transfer_seconds = 0;
  /// Eq. 4 + Eq. 5 over iterations, dollars.
  double total_cost = 0;
  double move_cost = 0;
  double runtime_cost = 0;
  /// Uplink bytes per full-activity iteration.
  double wan_bytes_per_iteration = 0;
  /// Average replicas per vertex (lambda).
  double replication_factor = 0;
  /// max_r masters(r) / mean masters: 1.0 = perfectly balanced.
  double master_balance = 0;
  /// max_r edges(r) / mean edges.
  double edge_balance = 0;
  uint64_t num_high_degree = 0;

  std::string ToString() const;
};

/// Extracts the full report from a state.
PartitionReport MakeReport(const PartitionState& state);

}  // namespace rlcut

#endif  // RLCUT_PARTITION_METRICS_H_
