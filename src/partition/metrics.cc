#include "partition/metrics.h"

#include <algorithm>
#include <sstream>

namespace rlcut {
namespace {

// max/mean ratio over per-DC counts; 0 when everything is empty.
double BalanceRatio(const std::vector<uint64_t>& counts) {
  if (counts.empty()) return 0;
  uint64_t total = 0;
  uint64_t max_count = 0;
  for (uint64_t c : counts) {
    total += c;
    max_count = std::max(max_count, c);
  }
  if (total == 0) return 0;
  const double mean = static_cast<double>(total) / counts.size();
  return static_cast<double>(max_count) / mean;
}

}  // namespace

PartitionReport MakeReport(const PartitionState& state) {
  PartitionReport report;
  const Objective obj = state.CurrentObjective();
  report.transfer_seconds = obj.transfer_seconds;
  report.total_cost = obj.cost_dollars;
  report.move_cost = state.MoveCost();
  report.runtime_cost = obj.cost_dollars - state.MoveCost();
  report.wan_bytes_per_iteration = state.WanBytesPerIteration();
  report.replication_factor = state.ReplicationFactor();
  report.num_high_degree = state.NumHighDegree();

  std::vector<uint64_t> masters(state.num_dcs());
  std::vector<uint64_t> edges(state.num_dcs());
  for (int r = 0; r < state.num_dcs(); ++r) {
    masters[r] = state.MasterCount(r);
    edges[r] = state.EdgeCount(r);
  }
  report.master_balance = BalanceRatio(masters);
  report.edge_balance = BalanceRatio(edges);
  return report;
}

std::string PartitionReport::ToString() const {
  std::ostringstream ss;
  ss << "transfer=" << transfer_seconds << "s cost=$" << total_cost
     << " (move=$" << move_cost << " runtime=$" << runtime_cost << ")"
     << " wan=" << wan_bytes_per_iteration / 1e6 << "MB/iter"
     << " lambda=" << replication_factor
     << " master_bal=" << master_balance << " edge_bal=" << edge_balance
     << " high_deg=" << num_high_degree;
  return ss.str();
}

}  // namespace rlcut
