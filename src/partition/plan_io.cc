#include "partition/plan_io.h"

#include <fstream>
#include <sstream>

#include "common/atomic_file.h"

namespace rlcut {
namespace {

const char* ModelName(ComputeModel model) {
  switch (model) {
    case ComputeModel::kHybridCut:
      return "hybrid";
    case ComputeModel::kVertexCut:
      return "vertex";
    case ComputeModel::kEdgeCut:
      return "edge";
  }
  return "?";
}

Result<ComputeModel> ParseModel(const std::string& name) {
  if (name == "hybrid") return ComputeModel::kHybridCut;
  if (name == "vertex") return ComputeModel::kVertexCut;
  if (name == "edge") return ComputeModel::kEdgeCut;
  return Status::InvalidArgument("unknown compute model: " + name);
}

}  // namespace

PartitionPlan ExtractPlan(const PartitionState& state) {
  PartitionPlan plan;
  plan.model = state.config().model;
  plan.theta = state.config().theta;
  plan.masters = state.masters();
  if (plan.model == ComputeModel::kVertexCut) {
    plan.edge_dcs.resize(state.graph().num_edges());
    for (EdgeId e = 0; e < state.graph().num_edges(); ++e) {
      plan.edge_dcs[e] = state.edge_dc(e);
    }
  }
  return plan;
}

Status ApplyPlan(const PartitionPlan& plan, PartitionState* state) {
  if (state == nullptr) {
    return Status::InvalidArgument("null state");
  }
  if (state->config().model != plan.model) {
    return Status::FailedPrecondition(
        "state compute model does not match the plan");
  }
  if (plan.masters.size() != state->graph().num_vertices()) {
    return Status::FailedPrecondition(
        "plan vertex count does not match the graph");
  }
  for (DcId dc : plan.masters) {
    if (dc < 0 || dc >= state->num_dcs()) {
      return Status::OutOfRange("plan references an unknown DC");
    }
  }
  if (plan.edge_dcs.empty()) {
    state->ResetDerived(plan.masters);
    return Status::Ok();
  }
  if (plan.edge_dcs.size() != state->graph().num_edges()) {
    return Status::FailedPrecondition(
        "plan edge count does not match the graph");
  }
  for (DcId dc : plan.edge_dcs) {
    if (dc != kNoDc && (dc < 0 || dc >= state->num_dcs())) {
      return Status::OutOfRange("plan references an unknown DC");
    }
  }
  state->ResetWithPlacement(plan.masters, plan.edge_dcs);
  return Status::Ok();
}

Status SavePlan(const PartitionPlan& plan, const std::string& path) {
  // Serialize fully in memory, then write crash-consistently: a crash
  // or injected fault mid-save must never leave a torn plan file.
  std::ostringstream out;
  out << "rlcut-plan v1\n";
  out << "model " << ModelName(plan.model) << " theta " << plan.theta
      << "\n";
  out << "masters " << plan.masters.size() << "\n";
  for (DcId dc : plan.masters) out << dc << "\n";
  out << "edges " << plan.edge_dcs.size() << "\n";
  for (DcId dc : plan.edge_dcs) out << dc << "\n";
  return AtomicWriteFile(path, out.str(), "plan");
}

Result<PartitionPlan> LoadPlan(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open " + path);
  }
  // Upper bound on any element count the file can legitimately declare:
  // every serialized DC id occupies at least one byte, so a count larger
  // than the file itself is corrupt. Checked before the resizes below so
  // a hostile count cannot request a multi-GB allocation.
  in.seekg(0, std::ios::end);
  const std::streamoff file_size = in.tellg();
  in.seekg(0, std::ios::beg);
  if (file_size < 0) {
    return Status::IoError("cannot stat " + path);
  }
  const size_t max_count = static_cast<size_t>(file_size);
  std::string line;
  if (!std::getline(in, line) || line != "rlcut-plan v1") {
    return Status::IoError(path + ": not an rlcut plan file");
  }
  PartitionPlan plan;
  std::string keyword;
  std::string model_name;
  if (!(in >> keyword >> model_name) || keyword != "model") {
    return Status::IoError(path + ": missing model line");
  }
  Result<ComputeModel> model = ParseModel(model_name);
  if (!model.ok()) return model.status();
  plan.model = *model;
  if (!(in >> keyword >> plan.theta) || keyword != "theta") {
    return Status::IoError(path + ": missing theta");
  }
  size_t count = 0;
  if (!(in >> keyword >> count) || keyword != "masters") {
    return Status::IoError(path + ": missing masters section");
  }
  if (count > max_count) {
    return Status::IoError(path + ": masters count exceeds file size");
  }
  plan.masters.resize(count);
  for (size_t i = 0; i < count; ++i) {
    if (!(in >> plan.masters[i])) {
      return Status::IoError(path + ": truncated masters section");
    }
  }
  if (!(in >> keyword >> count) || keyword != "edges") {
    return Status::IoError(path + ": missing edges section");
  }
  if (count > max_count) {
    return Status::IoError(path + ": edges count exceeds file size");
  }
  plan.edge_dcs.resize(count);
  for (size_t i = 0; i < count; ++i) {
    if (!(in >> plan.edge_dcs[i])) {
      return Status::IoError(path + ": truncated edges section");
    }
  }
  return plan;
}

}  // namespace rlcut
