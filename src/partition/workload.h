#ifndef RLCUT_PARTITION_WORKLOAD_H_
#define RLCUT_PARTITION_WORKLOAD_H_

#include <string>
#include <vector>

namespace rlcut {

/// Traffic profile of a graph-analytics workload, as consumed by the
/// Eq. 1-5 performance/cost model.
///
/// Per GAS iteration i and vertex v the model needs the apply-stage
/// message size a_v(i) (master -> each mirror) and the gather-stage
/// aggregated message size g_v^r(i) (mirror r -> master, high-degree
/// vertices only). We factor these as a static per-vertex size times a
/// per-iteration activity fraction:
///
///   a_v(i) = activity[i] * (apply_base_bytes +
///                           apply_bytes_per_out_edge * out_deg(v))
///   g_v^r(i) = activity[i] * gather_base_bytes
///
/// PageRank: every vertex active every iteration, 8-byte rank values.
/// SSSP: label-correcting frontier; activity ramps up then decays.
/// Subgraph isomorphism: few rounds, large candidate-set messages that
/// grow with degree.
struct Workload {
  std::string name;
  double apply_base_bytes = 8;
  double apply_bytes_per_out_edge = 0;
  double gather_base_bytes = 8;
  /// Per-iteration active-vertex fraction; one entry per iteration.
  std::vector<double> activity;

  int num_iterations() const { return static_cast<int>(activity.size()); }

  /// Sum of activity fractions: total transfer time and runtime cost are
  /// the static per-iteration values scaled by this sum.
  double TotalActivity() const;

  static Workload PageRank(int iterations = 10);
  static Workload Sssp(int rounds = 12);
  static Workload SubgraphIsomorphism(int rounds = 4);

  /// All three paper workloads (Sec. VI-A2).
  static std::vector<Workload> AllPaperWorkloads();
};

}  // namespace rlcut

#endif  // RLCUT_PARTITION_WORKLOAD_H_
