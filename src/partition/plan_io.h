#ifndef RLCUT_PARTITION_PLAN_IO_H_
#define RLCUT_PARTITION_PLAN_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "partition/partition_state.h"

namespace rlcut {

/// A serializable partitioning plan: everything needed to reinstate a
/// PartitionState layout on the same graph (deploying a plan computed
/// offline is the normal production flow for geo-distributed
/// partitioning).
struct PartitionPlan {
  ComputeModel model = ComputeModel::kHybridCut;
  uint32_t theta = 100;
  /// Master DC per vertex.
  std::vector<DcId> masters;
  /// Explicit DC per edge; empty for derived-placement plans
  /// (hybrid-cut / edge-cut), where the placement rules reproduce it.
  std::vector<DcId> edge_dcs;
};

/// Extracts the current layout of a state as a plan. Derived-placement
/// states yield a masters-only plan.
PartitionPlan ExtractPlan(const PartitionState& state);

/// Applies a plan to a state. The state's graph must have exactly the
/// plan's vertex (and, for explicit plans, edge) count, and the state's
/// configured model must match the plan's.
Status ApplyPlan(const PartitionPlan& plan, PartitionState* state);

/// Text format:
///   rlcut-plan v1
///   model <hybrid|vertex|edge> theta <T>
///   masters <n>
///   <one DC id per line>
///   edges <m | 0>
///   <one DC id per line when m > 0>
Status SavePlan(const PartitionPlan& plan, const std::string& path);
Result<PartitionPlan> LoadPlan(const std::string& path);

}  // namespace rlcut

#endif  // RLCUT_PARTITION_PLAN_IO_H_
