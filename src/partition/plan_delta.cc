#include "partition/plan_delta.h"

#include <string>

namespace rlcut {

Status PlanReplica::Apply(const PlanDelta& delta) {
  if (delta.base_version != version_) {
    return Status::FailedPrecondition(
        "plan delta applies on version " +
        std::to_string(delta.base_version) + " but the replica is at " +
        std::to_string(version_));
  }
  // Validate the whole delta before touching the replica so a rejected
  // delta leaves it bit-identical to its pre-Apply state. Moves within
  // a delta apply in order, so `from` chains through duplicates.
  std::vector<DcId> applied(masters_);
  for (const PlanMove& move : delta.moves) {
    if (move.vertex >= applied.size()) {
      return Status::OutOfRange("plan delta moves vertex " +
                                std::to_string(move.vertex) +
                                " outside the replica");
    }
    if (move.to < 0 || move.to >= num_dcs_) {
      return Status::OutOfRange("plan delta moves vertex " +
                                std::to_string(move.vertex) +
                                " to unknown DC " + std::to_string(move.to));
    }
    if (applied[move.vertex] != move.from) {
      return Status::FailedPrecondition(
          "plan delta expects vertex " + std::to_string(move.vertex) +
          " mastered at DC " + std::to_string(move.from) +
          " but the replica has it at " +
          std::to_string(applied[move.vertex]));
    }
    applied[move.vertex] = move.to;
  }
  masters_ = std::move(applied);
  ++version_;
  return Status::Ok();
}

}  // namespace rlcut
