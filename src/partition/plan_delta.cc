#include "partition/plan_delta.h"

#include <string>
#include <utility>

#include "common/byte_io.h"

namespace rlcut {

Status PlanReplica::Apply(const PlanDelta& delta) {
  if (delta.base_version != version_) {
    return Status::FailedPrecondition(
        "plan delta applies on version " +
        std::to_string(delta.base_version) + " but the replica is at " +
        std::to_string(version_));
  }
  // Validate the whole delta before touching the replica so a rejected
  // delta leaves it bit-identical to its pre-Apply state. Moves within
  // a delta apply in order, so `from` chains through duplicates.
  std::vector<DcId> applied(masters_);
  for (const PlanMove& move : delta.moves) {
    if (move.vertex >= applied.size()) {
      return Status::OutOfRange("plan delta moves vertex " +
                                std::to_string(move.vertex) +
                                " outside the replica");
    }
    if (move.to < 0 || move.to >= num_dcs_) {
      return Status::OutOfRange("plan delta moves vertex " +
                                std::to_string(move.vertex) +
                                " to unknown DC " + std::to_string(move.to));
    }
    if (applied[move.vertex] != move.from) {
      return Status::FailedPrecondition(
          "plan delta expects vertex " + std::to_string(move.vertex) +
          " mastered at DC " + std::to_string(move.from) +
          " but the replica has it at " +
          std::to_string(applied[move.vertex]));
    }
    applied[move.vertex] = move.to;
  }
  masters_ = std::move(applied);
  ++version_;
  return Status::Ok();
}

Status PlanReplica::InstallSnapshot(const PlanSnapshot& snapshot) {
  if (snapshot.num_dcs < 1) {
    return Status::InvalidArgument("plan snapshot has " +
                                   std::to_string(snapshot.num_dcs) +
                                   " data centers");
  }
  for (size_t v = 0; v < snapshot.masters.size(); ++v) {
    const DcId dc = snapshot.masters[v];
    if (dc < 0 || dc >= snapshot.num_dcs) {
      return Status::OutOfRange("plan snapshot masters vertex " +
                                std::to_string(v) + " at unknown DC " +
                                std::to_string(dc));
    }
  }
  masters_ = snapshot.masters;
  num_dcs_ = snapshot.num_dcs;
  version_ = snapshot.version;
  return Status::Ok();
}

PlanSnapshot PlanReplica::Snapshot() const {
  PlanSnapshot snapshot;
  snapshot.version = version_;
  snapshot.num_dcs = num_dcs_;
  snapshot.masters = masters_;
  return snapshot;
}

std::string EncodePlanDelta(const PlanDelta& delta) {
  ByteWriter writer;
  writer.Write<uint64_t>(delta.base_version);
  writer.Write<uint64_t>(delta.moves.size());
  for (const PlanMove& move : delta.moves) {
    writer.Write<uint32_t>(move.vertex);
    writer.Write<int32_t>(move.from);
    writer.Write<int32_t>(move.to);
  }
  return writer.bytes();
}

Status DecodePlanDelta(const std::string& bytes, PlanDelta* out) {
  ByteReader reader(bytes);
  PlanDelta delta;
  uint64_t count = 0;
  if (!reader.Read(&delta.base_version) || !reader.Read(&count)) {
    return Status::InvalidArgument("plan delta payload truncated");
  }
  // 12 bytes per encoded move; bound the count by the bytes actually
  // present before any allocation (a corrupt count must not balloon).
  constexpr size_t kMoveBytes = sizeof(uint32_t) + 2 * sizeof(int32_t);
  if (count > reader.remaining() / kMoveBytes) {
    return Status::InvalidArgument("plan delta declares " +
                                   std::to_string(count) +
                                   " moves but the payload is short");
  }
  delta.moves.resize(count);
  for (PlanMove& move : delta.moves) {
    if (!reader.Read(&move.vertex) || !reader.Read(&move.from) ||
        !reader.Read(&move.to)) {
      return Status::InvalidArgument("plan delta payload truncated");
    }
  }
  if (!reader.exhausted()) {
    return Status::InvalidArgument("plan delta payload has trailing bytes");
  }
  *out = std::move(delta);
  return Status::Ok();
}

std::string EncodePlanSnapshot(const PlanSnapshot& snapshot) {
  ByteWriter writer;
  writer.Write<uint64_t>(snapshot.version);
  writer.Write<int32_t>(snapshot.num_dcs);
  writer.WriteVector(snapshot.masters);
  return writer.bytes();
}

Status DecodePlanSnapshot(const std::string& bytes, PlanSnapshot* out) {
  ByteReader reader(bytes);
  PlanSnapshot snapshot;
  if (!reader.Read(&snapshot.version) || !reader.Read(&snapshot.num_dcs) ||
      !reader.ReadVector(&snapshot.masters)) {
    return Status::InvalidArgument("plan snapshot payload truncated");
  }
  if (!reader.exhausted()) {
    return Status::InvalidArgument(
        "plan snapshot payload has trailing bytes");
  }
  *out = std::move(snapshot);
  return Status::Ok();
}

uint64_t MastersFingerprint(const std::vector<DcId>& masters) {
  ByteWriter writer;
  writer.WriteVector(masters);
  return Fnv1a64(writer.bytes());
}

}  // namespace rlcut
