#include "partition/workload.h"

#include <algorithm>
#include <cmath>

namespace rlcut {

double Workload::TotalActivity() const {
  double total = 0;
  for (double a : activity) total += a;
  return total;
}

Workload Workload::PageRank(int iterations) {
  Workload w;
  w.name = "PR";
  w.apply_base_bytes = 8;      // one double rank
  w.gather_base_bytes = 8;     // partial rank sum
  w.activity.assign(iterations, 1.0);
  return w;
}

Workload Workload::Sssp(int rounds) {
  Workload w;
  w.name = "SSSP";
  w.apply_base_bytes = 12;   // distance + parent hint
  w.gather_base_bytes = 12;  // min-distance aggregate
  // Frontier profile of label-correcting SSSP on small-diameter skewed
  // graphs: rapid ramp-up, peak near sqrt of the rounds, exponential
  // tail. Normalized to peak activity 1.
  w.activity.resize(rounds);
  const double peak = std::max(1.0, rounds / 3.0);
  for (int i = 0; i < rounds; ++i) {
    const double x = (i + 1) / peak;
    w.activity[i] = x <= 1 ? x : std::exp(-(x - 1) * 1.2);
  }
  return w;
}

Workload Workload::SubgraphIsomorphism(int rounds) {
  Workload w;
  w.name = "SI";
  // Candidate-set messages carry partial matches; size grows with the
  // vertex's own adjacency.
  w.apply_base_bytes = 32;
  w.apply_bytes_per_out_edge = 4;
  w.gather_base_bytes = 48;
  // Each pattern-extension round prunes candidates.
  w.activity.resize(rounds);
  for (int i = 0; i < rounds; ++i) {
    w.activity[i] = std::pow(0.6, i);
  }
  return w;
}

std::vector<Workload> Workload::AllPaperWorkloads() {
  return {PageRank(), Sssp(), SubgraphIsomorphism()};
}

}  // namespace rlcut
