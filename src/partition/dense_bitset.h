#ifndef RLCUT_PARTITION_DENSE_BITSET_H_
#define RLCUT_PARTITION_DENSE_BITSET_H_

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace rlcut {

/// Flat word-parallel bitset over a dense [0, size) index range — the
/// `dense_bitset` idiom of split-merge partitioners: one contiguous
/// word array per DC instead of per-vertex set containers, so replica
/// membership scans become branch-free popcount/OR over 64-bit words.
///
/// Invariant: bits at positions >= size() are always zero, so
/// whole-word operations (Popcount, union scans) need no tail masking.
class DenseBitset {
 public:
  DenseBitset() = default;
  explicit DenseBitset(size_t size) { Resize(size); }

  /// Grows or shrinks to `size` bits. Retained bits keep their value;
  /// new bits start clear.
  void Resize(size_t size) {
    size_ = size;
    words_.resize(NumWordsFor(size), 0);
    ClearTail();
  }

  size_t size() const { return size_; }
  size_t num_words() const { return words_.size(); }
  const uint64_t* words() const { return words_.data(); }

  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void Set(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  void Clear(size_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }
  void SetTo(size_t i, bool value) {
    if (value) {
      Set(i);
    } else {
      Clear(i);
    }
  }

  void ClearAll() { std::fill(words_.begin(), words_.end(), uint64_t{0}); }

  /// Number of set bits, one hardware popcount per word.
  size_t Popcount() const {
    size_t count = 0;
    for (uint64_t w : words_) count += std::popcount(w);
    return count;
  }

  bool Any() const {
    for (uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  /// Calls fn(index) for every set bit, in increasing index order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        fn((w << 6) + static_cast<size_t>(b));
      }
    }
  }

  friend bool operator==(const DenseBitset&, const DenseBitset&) = default;

  static size_t NumWordsFor(size_t size) { return (size + 63) >> 6; }

 private:
  void ClearTail() {
    const size_t tail = size_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (uint64_t{1} << tail) - 1;
    }
  }

  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace rlcut

#endif  // RLCUT_PARTITION_DENSE_BITSET_H_
