#ifndef RLCUT_PARTITION_PLAN_DELTA_H_
#define RLCUT_PARTITION_PLAN_DELTA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/types.h"

namespace rlcut {

/// One committed master migration, as shipped between shards.
/// `from` is carried so a replica can verify it is applying the delta
/// onto the state the owner committed against.
struct PlanMove {
  VertexId vertex = 0;
  DcId from = 0;
  DcId to = 0;
};

/// An ordered batch of committed moves from one sync interval.
/// `base_version` is the replica version the delta applies on top of;
/// applying it advances the replica to `base_version + 1`.
struct PlanDelta {
  uint64_t base_version = 0;
  std::vector<PlanMove> moves;
};

/// A versioned full copy of the masters array: the resync unit of the
/// replica protocol. Installing a snapshot replaces the replica's whole
/// state (masters, DC count, version) in one step, which is how a
/// replica recovers from a version gap it cannot bridge with deltas.
struct PlanSnapshot {
  uint64_t version = 0;
  int32_t num_dcs = 0;
  std::vector<DcId> masters;
};

/// Wire codecs for deltas and snapshots (common/byte_io framing:
/// host-endian, every decoded count bounded by the payload size before
/// any allocation). These bytes travel inside net-transport frames on
/// the same machine or a trusted interconnect, matching the
/// single-machine envelope convention used by checkpoints.
std::string EncodePlanDelta(const PlanDelta& delta);
Status DecodePlanDelta(const std::string& bytes, PlanDelta* out);
std::string EncodePlanSnapshot(const PlanSnapshot& snapshot);
Status DecodePlanSnapshot(const std::string& bytes, PlanSnapshot* out);

/// Order-sensitive FNV-1a over a masters array, prefixed with its size:
/// the cheap bit-identity check two ends of a replica link exchange to
/// detect silent divergence.
uint64_t MastersFingerprint(const std::vector<DcId>& masters);

/// A versioned snapshot of the masters array, kept in sync by applying
/// PlanDeltas in version order (docs/sharding.md). This is the
/// process-ready half of the sharded ownership protocol: non-owner
/// shards read plan state from a replica like this one instead of the
/// owner's address space, and the owner publishes its committed moves
/// as deltas at the sync cadence. In the threads-first runtime the
/// trainer maintains one replica next to the authoritative
/// PartitionState and audits that the two agree after every sync; in
/// the process split (src/net, docs/distributed.md) Apply runs on the
/// far side of an RPC.
class PlanReplica {
 public:
  PlanReplica() = default;
  PlanReplica(std::vector<DcId> masters, int num_dcs)
      : masters_(std::move(masters)), num_dcs_(num_dcs) {}

  /// Applies `delta` in order. Fails without mutating anything if the
  /// delta's base version does not match this replica, a move's vertex
  /// or destination is out of range, or a move's `from` disagrees with
  /// the replica (the owner and the replica have diverged).
  Status Apply(const PlanDelta& delta);

  /// Replaces the replica's entire state with `snapshot`, including its
  /// version — the resync path after a version gap. Fails without
  /// mutating anything if the snapshot is internally inconsistent
  /// (num_dcs < 1 or a master outside [0, num_dcs)).
  Status InstallSnapshot(const PlanSnapshot& snapshot);

  /// The replica's current state as an installable snapshot.
  PlanSnapshot Snapshot() const;

  const std::vector<DcId>& masters() const { return masters_; }
  DcId master(VertexId v) const { return masters_[v]; }
  uint64_t version() const { return version_; }
  int num_dcs() const { return num_dcs_; }
  uint64_t Fingerprint() const { return MastersFingerprint(masters_); }

 private:
  std::vector<DcId> masters_;
  int num_dcs_ = 0;
  uint64_t version_ = 0;
};

/// Where a trainer publishes its committed plan state, one delta per
/// sync interval. The trainer's decisions never depend on the sink —
/// it is write-only — so a sink may lag, buffer, or drop to a degraded
/// mode without perturbing the training trajectory.
///
/// Contract: Begin() hands over the starting snapshot before any
/// deltas; PushDelta() receives exactly the deltas the trainer applied
/// to its own audit replica, in order; Flush() must either drive the
/// far side to the pushed state (return OK) or report why it could not
/// (non-OK) — the fail-closed signal call sites act on. degraded()
/// reports whether the sink is currently operating in a lossy/stale
/// mode; implementations also surface it through src/obs metrics.
///
/// The in-process audit replica needs no sink; the concrete network
/// implementation is net::ReplicaClient (docs/distributed.md).
class ReplicaSink {
 public:
  virtual ~ReplicaSink() = default;
  virtual Status Begin(const PlanSnapshot& snapshot) = 0;
  virtual Status PushDelta(const PlanDelta& delta) = 0;
  virtual Status Flush() = 0;
  virtual bool degraded() const = 0;
  /// Version of the sink's intended state (the base a follow-up delta
  /// must chain onto): advances by one per accepted PushDelta.
  virtual uint64_t version() const = 0;
};

}  // namespace rlcut

#endif  // RLCUT_PARTITION_PLAN_DELTA_H_
