#ifndef RLCUT_PARTITION_PLAN_DELTA_H_
#define RLCUT_PARTITION_PLAN_DELTA_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/types.h"

namespace rlcut {

/// One committed master migration, as shipped between shards.
/// `from` is carried so a replica can verify it is applying the delta
/// onto the state the owner committed against.
struct PlanMove {
  VertexId vertex = 0;
  DcId from = 0;
  DcId to = 0;
};

/// An ordered batch of committed moves from one sync interval.
/// `base_version` is the replica version the delta applies on top of;
/// applying it advances the replica to `base_version + 1`.
struct PlanDelta {
  uint64_t base_version = 0;
  std::vector<PlanMove> moves;
};

/// A versioned snapshot of the masters array, kept in sync by applying
/// PlanDeltas in version order (docs/sharding.md). This is the
/// process-ready half of the sharded ownership protocol: non-owner
/// shards read plan state from a replica like this one instead of the
/// owner's address space, and the owner publishes its committed moves
/// as deltas at the sync cadence. In the threads-first runtime the
/// trainer maintains one replica next to the authoritative
/// PartitionState and audits that the two agree after every sync; in a
/// process split, Apply runs on the far side of an RPC instead.
class PlanReplica {
 public:
  PlanReplica() = default;
  PlanReplica(std::vector<DcId> masters, int num_dcs)
      : masters_(std::move(masters)), num_dcs_(num_dcs) {}

  /// Applies `delta` in order. Fails without mutating anything if the
  /// delta's base version does not match this replica, a move's vertex
  /// or destination is out of range, or a move's `from` disagrees with
  /// the replica (the owner and the replica have diverged).
  Status Apply(const PlanDelta& delta);

  const std::vector<DcId>& masters() const { return masters_; }
  DcId master(VertexId v) const { return masters_[v]; }
  uint64_t version() const { return version_; }

 private:
  std::vector<DcId> masters_;
  int num_dcs_ = 0;
  uint64_t version_ = 0;
};

}  // namespace rlcut

#endif  // RLCUT_PARTITION_PLAN_DELTA_H_
