#ifndef RLCUT_PARTITION_SESSION_H_
#define RLCUT_PARTITION_SESSION_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"
#include "graph/stream.h"
#include "partition/migration.h"
#include "partition/partition_state.h"

namespace rlcut {

/// Cap on how much a single published plan may move relative to the
/// previously published plan (or the initial locations L_v before the
/// first publish). The default is unlimited, which makes a one-shot
/// batch run a degenerate session.
struct MigrationBudget {
  /// Maximum vertices whose master may differ from the baseline.
  uint64_t max_vertices = std::numeric_limits<uint64_t>::max();
  /// Maximum input-data bytes (sum of d_v over moved vertices).
  double max_bytes = std::numeric_limits<double>::infinity();

  static MigrationBudget Unlimited() { return MigrationBudget{}; }

  bool IsUnlimited() const {
    return max_vertices == std::numeric_limits<uint64_t>::max() &&
           max_bytes == std::numeric_limits<double>::infinity();
  }
};

/// Outcome of ingesting one micro-batch.
struct ApplyResult {
  uint64_t edges_applied = 0;
  /// Distinct endpoints of the applied edges (the agents the next
  /// re-optimization will train).
  uint64_t vertices_affected = 0;
  double apply_seconds = 0;
  /// Stream time after the batch.
  SimTime watermark;
};

/// Outcome of one re-optimization pass.
struct ReoptimizeResult {
  /// False when there was nothing to adapt (no pending affected
  /// vertices); the plan is unchanged.
  bool reoptimized = false;
  uint64_t trained_vertices = 0;
  /// Moves undone by the migration-budget clamp.
  uint64_t reverted_vertices = 0;
  double overhead_seconds = 0;
  /// Objective of the (possibly clamped) live plan.
  Objective objective;
};

/// One published plan version: what a serving layer would deploy.
struct PublishedPlan {
  /// Monotonically increasing, starting at 1.
  uint64_t version = 0;
  std::vector<DcId> masters;
  /// Deployment delta vs the previously published plan (initial
  /// locations for version 1). Always within the session's last
  /// migration budget.
  MigrationSummary migration;
  Objective objective;
  /// Moves undone by the publish-time budget re-check (normally 0; the
  /// re-optimization already clamped).
  uint64_t reverted_vertices = 0;
};

/// A long-lived partitioning over a live problem: the session owns the
/// problem instance and carries learned state across micro-batches.
///
///   Open(problem) -> ApplyDelta(batch)* -> MaybeReoptimize(budget)
///     -> PublishPlan() -> ... repeat ...
///
/// This is the one abstraction both execution styles share. A batch run
/// is the degenerate session — open, one unlimited re-optimization, one
/// take — which is exactly what Partitioner::Run does (see
/// baselines/partitioner.h). The streaming daemon (tools/rlcut_serve)
/// drives the full loop against RLCutSession (rlcut/session.h).
///
/// Error handling: every method returns Result<>/Status; malformed
/// input (out-of-range endpoints, non-monotone watermarks, calls out of
/// order) yields InvalidArgument/FailedPrecondition, never a crash.
class PartitioningSession {
 public:
  virtual ~PartitioningSession() = default;

  /// Registry name of the underlying method, e.g. "RLCut".
  virtual std::string method() const = 0;

  /// Ingests one micro-batch of timestamped edge insertions (see
  /// graph/stream.h for the buffer that builds deterministic batches
  /// from out-of-order transports). Batch watermarks must not move
  /// backwards. Vertex ids must be within the problem's fixed vertex
  /// set.
  virtual Result<ApplyResult> ApplyDelta(const MicroBatch& batch) = 0;

  /// Adapts the plan to everything applied since the last call, then
  /// clamps the plan so the move-set vs the last published plan stays
  /// within `budget`. No-ops (reoptimized=false) when nothing changed.
  virtual Result<ReoptimizeResult> MaybeReoptimize(
      const MigrationBudget& budget) = 0;

  /// Snapshots the live plan as a new published version. The migration
  /// delta vs the previous published version respects the budget of the
  /// last MaybeReoptimize on every publish.
  virtual Result<PublishedPlan> PublishPlan() = 0;

  /// The live partition state, or nullptr before the first successful
  /// re-optimization produced one.
  virtual const PartitionState* live_state() const = 0;
};

/// What EnforceMigrationBudget did to the plan.
struct BudgetClampResult {
  /// Moved set vs the baseline after clamping.
  uint64_t vertices_moved = 0;
  double bytes_moved = 0;
  /// Moves reverted to get under the caps.
  uint64_t reverted = 0;
};

/// Clamps `state` so that at most budget.max_vertices masters differ
/// from `baseline` and the moved input data is at most budget.max_bytes.
/// Over-budget moves are reverted cheapest-first: each candidate is
/// scored once by the transfer-time delta of moving it back
/// (EvaluateMove against the current state), and reverts proceed in
/// ascending (delta, vertex id) order until both caps hold — a
/// deterministic sort-once greedy. `baseline` and `input_sizes` must
/// cover the state's vertex set.
BudgetClampResult EnforceMigrationBudget(PartitionState* state,
                                         const std::vector<DcId>& baseline,
                                         const std::vector<double>& input_sizes,
                                         const MigrationBudget& budget);

}  // namespace rlcut

#endif  // RLCUT_PARTITION_SESSION_H_
