#ifndef RLCUT_PARTITION_PARTITION_STATE_H_
#define RLCUT_PARTITION_PARTITION_STATE_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "cloud/topology.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "partition/dense_bitset.h"
#include "partition/workload.h"

namespace rlcut {

/// Which differentiated-computation model the runtime uses (Sec. II-B).
/// It determines both the edge-placement rules and which vertices incur
/// gather traffic.
enum class ComputeModel {
  /// PowerLyra hybrid-cut: vertices with in-degree >= theta are
  /// high-degree (gather+apply over mirrors); low-degree vertices compute
  /// at the master and sync mirrors in the apply stage.
  kHybridCut,
  /// PowerGraph vertex-cut: every vertex follows gather+apply.
  kVertexCut,
  /// Pregel-style edge-cut: every vertex is sync-only (apply stage).
  kEdgeCut,
};

/// Static configuration of a PartitionState.
struct PartitionConfig {
  ComputeModel model = ComputeModel::kHybridCut;
  /// High-degree threshold theta (hybrid-cut only).
  uint32_t theta = 100;
  /// Traffic profile of the analytics workload being optimized for.
  Workload workload = Workload::PageRank();
};

/// The two optimization objectives of Eq. 6-7, plus a smooth surrogate.
struct Objective {
  /// Total inter-DC transfer time over all iterations, seconds (Eq. 1
  /// summed over iterations with per-iteration activity scaling).
  double transfer_seconds = 0;
  /// Total inter-DC communication cost: input movement (Eq. 4) plus
  /// runtime upload cost over all iterations (Eq. 5), dollars.
  double cost_dollars = 0;
  /// Sum (rather than max) of per-DC link times over both stages, same
  /// activity scaling. Eq. 1 is a bottleneck objective, so most
  /// single-vertex moves leave it unchanged; this smooth surrogate
  /// gives hill-climbers (RLCut's score function) a gradient on the
  /// plateau. Not part of the paper's objective; used only as a
  /// tie-breaker.
  double smooth_seconds = 0;
};

/// Thread-local scratch for const what-if evaluation (EvaluateMove).
/// One instance per worker thread; reusable across calls. All arrays
/// grow to a high-water mark once and are reused, so steady-state
/// evaluation performs no heap allocation.
class EvalScratch {
 public:
  EvalScratch() = default;

 private:
  friend class PartitionState;

  struct AffectedDelta {
    VertexId v;
    int32_t cnt_from = 0;  // incident-edge count delta at the from-DC
    int32_t cnt_to = 0;
    int32_t in_from = 0;  // in-edge count delta at the from-DC
    int32_t in_to = 0;
  };

  void EnsureSized(VertexId num_vertices, int num_dcs);

  std::vector<AffectedDelta> affected_;
  // Epoch-tagged vertex -> affected_ slot map for O(1) dedup.
  std::vector<uint32_t> slot_;
  std::vector<uint32_t> slot_epoch_;
  uint32_t epoch_ = 0;
  std::vector<EdgeId> moved_edges_;
  // Source/destination DCs of the pending move (kNoDc = unplaced).
  DcId from_dc_ = kNoDc;
  DcId to_dc_ = kNoDc;
  // Flat per-DC aggregate buffers in the live-state layout
  // [gather_up | gather_down | apply_up | apply_down], each num_dcs
  // wide: `work_` holds one hypothetical destination's aggregates,
  // `base_` the destination-independent base shared by every candidate
  // destination in the batched evaluators.
  std::vector<double> work_;
  std::vector<double> base_;
  // Per-destination correction lists for the batched evaluators. An
  // affected neighbor's replica mask is dense on real instances (its
  // edges spread over many masters), so the destinations where it
  // gains a NEW mirror — the complement of its replica mask — are the
  // rare case. Each such firing destination records a correction node
  // holding the bytes to add on top of the shared destination-
  // independent base. Nodes are bucketed by destination as intrusive
  // singly linked lists through `next`.
  struct CorrNode {
    DcId m;        // the vertex's (unchanged) master
    double a;      // apply bytes to add (0 for gather nodes)
    double g;      // gather bytes to add (0 for apply nodes)
    int32_t next;  // previous head of this destination's list, or -1
  };
  std::vector<CorrNode> corr_pool_;
  std::vector<int32_t> corr_head_;  // per-destination list heads
};

/// Mutable partitioning state plus the incremental Eq. 1-5 evaluator.
///
/// This is the single evaluation substrate shared by RLCut and every
/// baseline: a partitioning is (master DC per vertex, DC per edge). For
/// hybrid-cut and edge-cut the edge placement is *derived* from masters
/// by the placement rules; vertex-cut baselines supply explicit edge
/// placements. The state maintains, incrementally under moves:
///
///  * per-vertex per-DC incident/in-edge counts and replica bitmasks,
///    plus one dense bitset per DC (vertex -> "this DC holds a
///    replica") for word-parallel replica scans;
///  * per-DC gather/apply upload/download byte aggregates in one flat
///    structure-of-arrays block, from which transfer time (Eq. 1-3),
///    runtime cost (Eq. 5) and WAN usage follow in O(M);
///  * the input-movement cost (Eq. 4) and an eagerly refreshed cached
///    objective, so CurrentObjective() is a constant-time read.
///
/// MoveMaster (hybrid/edge-cut) and PlaceEdge (explicit) are O(deg) and
/// exactly reversible, which the RL migration step's rollback relies
/// on. EvaluateMove is const and thread-safe, enabling parallel
/// multi-agent score computation against a shared state. All pricing —
/// live, single-eval, batched, and cold rebuild — funnels through one
/// compiled finalize (ObjectiveFromAggregates), which is what keeps the
/// differential oracle's bit-exactness contract on dyadic instances.
class PartitionState {
 public:
  /// All pointers must outlive the state. `initial_locations` are the
  /// L_v of the problem definition; `input_sizes` the d_v in bytes.
  PartitionState(const Graph* graph, const Topology* topology,
                 const std::vector<DcId>* initial_locations,
                 const std::vector<double>* input_sizes,
                 PartitionConfig config);

  // Movable but not copyable (copy via explicit Clone when needed).
  PartitionState(const PartitionState&) = delete;
  PartitionState& operator=(const PartitionState&) = delete;
  PartitionState(PartitionState&&) = default;
  PartitionState& operator=(PartitionState&&) = default;

  // ---- Initialization -----------------------------------------------

  /// Sets masters and derives every edge's DC from the placement rules
  /// of the configured model. Usable for kHybridCut and kEdgeCut.
  void ResetDerived(const std::vector<DcId>& masters);

  /// Sets masters and an explicit per-edge placement (vertex-cut).
  void ResetWithPlacement(const std::vector<DcId>& masters,
                          const std::vector<DcId>& edge_dcs);

  /// Sets masters and marks every edge unplaced; used by streaming
  /// vertex-cut partitioners that call PlaceEdge one edge at a time.
  void ResetUnplaced(const std::vector<DcId>& masters);

  /// Re-prices the current layout under a new effective topology (e.g.
  /// after a TopologySchedule event). The placement and the byte
  /// aggregates are topology-independent, so only the dollar/time views
  /// and the accumulated Eq. 4 move cost change. The new topology must
  /// have the same DC count and outlive the state.
  void UpdateTopology(const Topology* topology);

  // ---- Mutation ------------------------------------------------------

  /// Moves the master of v to DC `to`, rederiving the placement of the
  /// edges the rules tie to v's master. Derived-placement mode only.
  /// Moving back to the previous DC exactly restores the prior state.
  void MoveMaster(VertexId v, DcId to);

  /// Places (or re-places) one edge; explicit-placement mode only.
  void PlaceEdge(EdgeId e, DcId to);

  /// Changes v's master without touching edge placement;
  /// explicit-placement mode only.
  void SetMaster(VertexId v, DcId to);

  // ---- What-if evaluation (const, thread-safe) ------------------------

  /// Objective after hypothetically moving v's master to `to`
  /// (derived-placement mode). Does not modify the state.
  Objective EvaluateMove(VertexId v, DcId to, EvalScratch* scratch) const;

  /// Objective after hypothetically placing edge e at `to`
  /// (explicit-placement mode).
  Objective EvaluatePlaceEdge(EdgeId e, DcId to, EvalScratch* scratch) const;

  /// Batched what-if: fills out[r] with the objective after
  /// hypothetically moving v's master to r, for every r in [0, M).
  /// out[master(v)] is the current objective. Equivalent to M calls to
  /// EvaluateMove — bit-exact on dyadic-exact instances (see
  /// docs/correctness.md) — but the O(deg) affected-set collection and
  /// the destination-independent "remove old contribution" half run
  /// once instead of M times, so per-agent all-DC scoring drops from
  /// O(deg * M^2) to O(deg * M + M^2). Const and thread-safe with a
  /// per-thread scratch, like EvaluateMove. `out` must hold num_dcs()
  /// elements. Derived-placement mode only.
  void EvaluateMoveAll(VertexId v, EvalScratch* scratch,
                       Objective* out) const;

  /// Batched what-if for explicit placement: fills out[r] with the
  /// objective after hypothetically placing edge e at r, for every r.
  /// out[edge_dc(e)] is the current objective when e is placed.
  void EvaluatePlaceEdgeAll(EdgeId e, EvalScratch* scratch,
                            Objective* out) const;

  // ---- Objectives and metrics ----------------------------------------

  /// The objective of the live state. Maintained eagerly on every
  /// mutation, so this is a constant-time read.
  Objective CurrentObjective() const { return cached_objective_; }

  /// Prices a set of per-DC byte aggregates (plus an Eq. 4 move cost)
  /// under this state's topology and workload — the single compiled
  /// finalize shared by every evaluation path. Exposed so the
  /// differential oracle's legacy reference evaluator prices its
  /// independently maintained aggregates through the same code,
  /// making bit-exact comparison sound. Arrays hold num_dcs() entries.
  Objective ObjectiveFromAggregates(const double* gather_up,
                                    const double* gather_down,
                                    const double* apply_up,
                                    const double* apply_down,
                                    double mv_cost) const;

  /// Inter-DC transfer time of one full-activity iteration (Eq. 1).
  double TransferSecondsPerIteration() const;
  /// Runtime upload cost of one full-activity iteration (Eq. 5).
  double RuntimeCostPerIteration() const;
  /// Input data movement cost (Eq. 4).
  double MoveCost() const { return move_cost_; }
  /// Bytes crossing DC uplinks in one full-activity iteration.
  double WanBytesPerIteration() const;
  /// Average number of replicas (master + mirrors) per vertex; O(1)
  /// via the incrementally maintained replica count.
  double ReplicationFactor() const;

  // ---- Accessors -------------------------------------------------------

  const Graph& graph() const { return *graph_; }
  const Topology& topology() const { return *topology_; }
  const PartitionConfig& config() const { return config_; }
  int num_dcs() const { return topology_->num_dcs(); }

  DcId master(VertexId v) const { return masters_[v]; }
  const std::vector<DcId>& masters() const { return masters_; }
  DcId edge_dc(EdgeId e) const { return edge_dc_[e]; }
  bool is_high_degree(VertexId v) const { return is_high_[v] != 0; }

  /// Replica DC bitmask of v, including the master bit.
  uint64_t ReplicaMask(VertexId v) const;
  /// Number of mirror DCs (replicas excluding the master).
  int MirrorCount(VertexId v) const;
  /// Mirror DCs of v (replicas excluding the master), as a bitmask.
  uint64_t MirrorMask(VertexId v) const;
  /// Mirror DCs of v holding at least one in-edge of v: the DCs that
  /// upload gather messages for a high-degree v.
  uint64_t GatherMirrorMask(VertexId v) const;

  uint64_t MasterCount(DcId r) const { return masters_in_dc_[r]; }
  uint64_t EdgeCount(DcId r) const { return edges_in_dc_[r]; }

  /// Dense vertex->replica bitset of DC r: bit v is set iff r holds a
  /// replica (master or mirror) of v. Maintained incrementally.
  const DenseBitset& ReplicaBitset(DcId r) const { return replica_bits_[r]; }

  /// Number of vertices with a replica in DC r (per-DC load view).
  uint64_t ReplicaCountInDc(DcId r) const {
    return replica_bits_[r].Popcount();
  }

  /// Total replicas across all vertices and DCs (sum of per-DC loads).
  uint64_t TotalReplicaCount() const { return replica_count_; }

  /// Calls fn(v) for every vertex holding a replica in any DC of
  /// `dc_mask`, in increasing vertex order. Word-parallel: OR of the
  /// per-DC dense bitsets, 64 vertices per iteration, so a scan over a
  /// few changed DCs is O(M_changed * |V| / 64) instead of O(|V| * M).
  template <typename Fn>
  void ForEachVertexWithReplicaIn(uint64_t dc_mask, Fn&& fn) const {
    if (num_dcs_ < 64) dc_mask &= (uint64_t{1} << num_dcs_) - 1;
    if (dc_mask == 0 || replica_bits_.empty()) return;
    const size_t num_words = replica_bits_[0].num_words();
    for (size_t w = 0; w < num_words; ++w) {
      uint64_t acc = 0;
      uint64_t dcs = dc_mask;
      while (dcs != 0) {
        const int r = std::countr_zero(dcs);
        dcs &= dcs - 1;
        acc |= replica_bits_[r].words()[w];
      }
      while (acc != 0) {
        const int b = std::countr_zero(acc);
        acc &= acc - 1;
        fn(static_cast<VertexId>((w << 6) + static_cast<size_t>(b)));
      }
    }
  }

  /// Number of vertices classified high-degree.
  uint64_t NumHighDegree() const;

  /// Apply-stage message size a_v at full activity (bytes). Grows with
  /// out-degree for workloads with degree-proportional messages.
  double ApplyBytes(VertexId v) const { return apply_bytes_[v]; }

  /// Recomputes every counter/aggregate from scratch and compares with
  /// the incrementally maintained values; false + log on mismatch.
  /// Intended for tests (O(|E| + |V| M)).
  bool CheckInvariants() const;

  /// In-degree threshold that classifies roughly `fraction` of vertices
  /// (the highest in-degree ones) as high-degree. Helper for scaled-down
  /// datasets where the paper's theta=100 would select nothing.
  static uint32_t AutoTheta(const Graph& graph, double fraction = 0.02);

 private:
  // Derived placement rule: which DC does edge e live in, given masters.
  DcId DerivedEdgeDc(EdgeId e) const;

  // Whether a master move of v re-places edge e (see MoveMaster).
  // e must be incident to v.
  bool EdgeFollowsMaster(EdgeId e, VertexId v) const;

  // Adds (sign=+1) or removes (sign=-1) the traffic contribution of w,
  // described by (edge_mask, in_mask, master), into the four per-DC
  // aggregate arrays.
  void AccumulateContribution(VertexId w, uint64_t edge_mask,
                              uint64_t in_mask, DcId master_dc, double sign,
                              double* gather_up, double* gather_down,
                              double* apply_up, double* apply_down) const;

  // Collects the per-vertex count deltas and moved edges for a master
  // move of v from `from` to `to` into `scratch`. The moved-edge list
  // is only recorded when requested: CommitDeltas needs it, the const
  // evaluation paths do not.
  void CollectMasterMoveDeltas(VertexId v, DcId from, DcId to,
                               EvalScratch* scratch,
                               bool record_moved_edges) const;

  // Collects deltas for placing edge e at `to` (from its current DC).
  void CollectEdgePlaceDeltas(EdgeId e, DcId to, EvalScratch* scratch) const;

  // Applies collected deltas to the live state; `new_master_v` is the
  // new master for `move_vertex` (or kNoDc for edge placements).
  void CommitDeltas(EvalScratch* scratch, VertexId move_vertex,
                    DcId new_master_v);

  // Evaluates the objective under the deltas in `scratch` plus an
  // optional master change, without mutating the partition state
  // (scratch's working aggregates are used as memory).
  Objective EvaluateDeltas(EvalScratch* scratch, VertexId move_vertex,
                           DcId new_master_v) const;

  // Evaluates the objective of the deltas in `scratch` for every
  // destination DC at once (see EvaluateMoveAll). `move_vertex` is the
  // vertex whose master follows the destination, or VertexId(-1) for
  // edge placements. Destinations equal to scratch->from_dc_ are
  // filled with the cached current objective.
  void EvaluateDeltasAll(EvalScratch* scratch, VertexId move_vertex,
                         Objective* out) const;

  double MoveCostDelta(VertexId v, DcId old_master, DcId new_master) const;

  void RebuildFromPlacement();

  // Refreshes the cached per-DC link-rate reciprocals, per-byte prices
  // and total activity from the current topology/workload.
  void RefreshPricing();

  // Recomputes cached_objective_ from the live aggregates.
  void RefreshCachedObjective();

  // Rebuilds the per-DC dense replica bitsets and the replica count
  // from edge_mask_/masters_ (O(|V|) + bitset clears).
  void RebuildReplicaBits();

  // Applies a replica-mask change of vertex v to the per-DC bitsets
  // and the replica count.
  void UpdateReplicaBits(VertexId v, uint64_t old_replica,
                         uint64_t new_replica);

  uint32_t CntAt(VertexId v, DcId r) const {
    return cnt_[static_cast<size_t>(v) * num_dcs_ + r];
  }
  uint32_t InCntAt(VertexId v, DcId r) const {
    return in_cnt_[static_cast<size_t>(v) * num_dcs_ + r];
  }

  const Graph* graph_;
  const Topology* topology_;
  const std::vector<DcId>* initial_locations_;
  const std::vector<double>* input_sizes_;
  PartitionConfig config_;
  int num_dcs_ = 0;

  // Derived-vs-explicit placement mode (see class comment).
  bool derived_placement_ = true;

  // Per-vertex classification and message sizes.
  std::vector<uint8_t> is_high_;
  std::vector<double> apply_bytes_;   // a_v at full activity
  std::vector<double> gather_bytes_;  // g_v^r at full activity

  // Mutable partitioning state.
  std::vector<DcId> masters_;
  std::vector<DcId> edge_dc_;        // kNoDc when unplaced
  std::vector<uint32_t> cnt_;        // |V| x M incident-edge counts
  std::vector<uint32_t> in_cnt_;     // |V| x M in-edge counts
  std::vector<uint64_t> edge_mask_;  // DCs with >= 1 incident edge
  std::vector<uint64_t> in_mask_;    // DCs with >= 1 in-edge

  // The per-vertex fields the evaluation inner loops read for every
  // affected neighbor, packed into one 24-byte record. Those loops are
  // cache-miss-bound on scattered per-neighbor loads, so mirroring
  // (edge_mask_, apply_bytes_, masters_, is_high_) here turns four
  // misses per cold neighbor into one. Synced wherever the canonical
  // arrays change; CheckInvariants verifies the mirror.
  struct VertexMeta {
    uint64_t edge_mask = 0;
    double apply_bytes = 0;
    DcId master = 0;
    uint8_t is_high = 0;
    friend bool operator==(const VertexMeta&, const VertexMeta&) = default;
  };
  std::vector<VertexMeta> meta_;

  // Live per-DC byte aggregates (bytes per full-activity iteration) in
  // one flat structure-of-arrays block:
  // [gather_up | gather_down | apply_up | apply_down], each num_dcs_
  // wide. Kept contiguous so what-if evaluation snapshots them with one
  // vectorizable copy.
  std::vector<double> agg_;

  double move_cost_ = 0;  // Eq. 4, dollars
  std::vector<uint64_t> masters_in_dc_;
  std::vector<uint64_t> edges_in_dc_;

  // One dense vertex->replica bitset per DC plus the total replica
  // count, maintained incrementally by CommitDeltas.
  std::vector<DenseBitset> replica_bits_;
  uint64_t replica_count_ = 0;

  // Cached pricing terms (RefreshPricing): multiplying by a cached
  // reciprocal replaces the per-DC divisions in the finalize hot loop.
  std::vector<double> inv_up_;          // 1 / LinkBytesPerSec(uplink)
  std::vector<double> inv_down_;        // 1 / LinkBytesPerSec(downlink)
  std::vector<double> price_per_byte_;  // Price(r) / 1e9
  double total_activity_ = 0;

  // Eagerly maintained CurrentObjective() (see RefreshCachedObjective).
  Objective cached_objective_;

  // Scratch reused by the mutating paths.
  EvalScratch mutation_scratch_;
};

}  // namespace rlcut

#endif  // RLCUT_PARTITION_PARTITION_STATE_H_
