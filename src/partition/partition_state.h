#ifndef RLCUT_PARTITION_PARTITION_STATE_H_
#define RLCUT_PARTITION_PARTITION_STATE_H_

#include <cstdint>
#include <vector>

#include "cloud/topology.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "partition/workload.h"

namespace rlcut {

/// Which differentiated-computation model the runtime uses (Sec. II-B).
/// It determines both the edge-placement rules and which vertices incur
/// gather traffic.
enum class ComputeModel {
  /// PowerLyra hybrid-cut: vertices with in-degree >= theta are
  /// high-degree (gather+apply over mirrors); low-degree vertices compute
  /// at the master and sync mirrors in the apply stage.
  kHybridCut,
  /// PowerGraph vertex-cut: every vertex follows gather+apply.
  kVertexCut,
  /// Pregel-style edge-cut: every vertex is sync-only (apply stage).
  kEdgeCut,
};

/// Static configuration of a PartitionState.
struct PartitionConfig {
  ComputeModel model = ComputeModel::kHybridCut;
  /// High-degree threshold theta (hybrid-cut only).
  uint32_t theta = 100;
  /// Traffic profile of the analytics workload being optimized for.
  Workload workload = Workload::PageRank();
};

/// The two optimization objectives of Eq. 6-7, plus a smooth surrogate.
struct Objective {
  /// Total inter-DC transfer time over all iterations, seconds (Eq. 1
  /// summed over iterations with per-iteration activity scaling).
  double transfer_seconds = 0;
  /// Total inter-DC communication cost: input movement (Eq. 4) plus
  /// runtime upload cost over all iterations (Eq. 5), dollars.
  double cost_dollars = 0;
  /// Sum (rather than max) of per-DC link times over both stages, same
  /// activity scaling. Eq. 1 is a bottleneck objective, so most
  /// single-vertex moves leave it unchanged; this smooth surrogate
  /// gives hill-climbers (RLCut's score function) a gradient on the
  /// plateau. Not part of the paper's objective; used only as a
  /// tie-breaker.
  double smooth_seconds = 0;
};

/// Thread-local scratch for const what-if evaluation (EvaluateMove).
/// One instance per worker thread; reusable across calls.
class EvalScratch {
 public:
  EvalScratch() = default;

 private:
  friend class PartitionState;

  struct AffectedDelta {
    VertexId v;
    int32_t cnt_from = 0;  // incident-edge count delta at the from-DC
    int32_t cnt_to = 0;
    int32_t in_from = 0;  // in-edge count delta at the from-DC
    int32_t in_to = 0;
  };

  void EnsureSized(VertexId num_vertices, int num_dcs);

  std::vector<AffectedDelta> affected_;
  // Epoch-tagged vertex -> affected_ slot map for O(1) dedup.
  std::vector<uint32_t> slot_;
  std::vector<uint32_t> slot_epoch_;
  uint32_t epoch_ = 0;
  std::vector<EdgeId> moved_edges_;
  // Source/destination DCs of the pending move (kNoDc = unplaced).
  DcId from_dc_ = kNoDc;
  DcId to_dc_ = kNoDc;
  // Per-DC aggregate deltas.
  std::vector<double> gather_up_;
  std::vector<double> gather_down_;
  std::vector<double> apply_up_;
  std::vector<double> apply_down_;
  // Batched all-destination evaluation (EvaluateMoveAll): the
  // destination-independent "base" aggregates — current state minus the
  // old contributions of the affected set, plus their from-bit-adjusted
  // mid contributions — shared by every candidate destination.
  std::vector<double> base_gather_up_;
  std::vector<double> base_gather_down_;
  std::vector<double> base_apply_up_;
  std::vector<double> base_apply_down_;
  // From-bit-adjusted replica/in-edge masks per affected_ entry.
  std::vector<uint64_t> mid_edge_mask_;
  std::vector<uint64_t> mid_in_mask_;
  // Packed per-destination correction records for the non-mover affected
  // vertices: `apply_mask`/`gather_mask` hold the set of destinations
  // whose move would add one mirror of this vertex, so the per-destination
  // scan is a bit test plus two adds, with no random-access loads.
  struct DestCorrection {
    DcId m;               // this vertex's (unchanged) master
    uint64_t apply_mask;  // destinations adding an apply mirror
    uint64_t gather_mask; // destinations adding a gather mirror
    double a;             // apply bytes uploaded per extra mirror
    double g;             // gather bytes per extra mirror
  };
  std::vector<DestCorrection> corr_;
};

/// Mutable partitioning state plus the incremental Eq. 1-5 evaluator.
///
/// This is the single evaluation substrate shared by RLCut and every
/// baseline: a partitioning is (master DC per vertex, DC per edge). For
/// hybrid-cut and edge-cut the edge placement is *derived* from masters
/// by the placement rules; vertex-cut baselines supply explicit edge
/// placements. The state maintains, incrementally under moves:
///
///  * per-vertex per-DC incident/in-edge counts and replica bitmasks;
///  * per-DC gather/apply upload/download byte aggregates, from which
///    transfer time (Eq. 1-3), runtime cost (Eq. 5) and WAN usage follow
///    in O(M);
///  * the input-movement cost (Eq. 4).
///
/// MoveMaster (hybrid/edge-cut) and PlaceEdge (explicit) are O(deg * M)
/// and exactly reversible, which the RL migration step's rollback relies
/// on. EvaluateMove is const and thread-safe, enabling parallel
/// multi-agent score computation against a shared state.
class PartitionState {
 public:
  /// All pointers must outlive the state. `initial_locations` are the
  /// L_v of the problem definition; `input_sizes` the d_v in bytes.
  PartitionState(const Graph* graph, const Topology* topology,
                 const std::vector<DcId>* initial_locations,
                 const std::vector<double>* input_sizes,
                 PartitionConfig config);

  // Movable but not copyable (copy via explicit Clone when needed).
  PartitionState(const PartitionState&) = delete;
  PartitionState& operator=(const PartitionState&) = delete;
  PartitionState(PartitionState&&) = default;
  PartitionState& operator=(PartitionState&&) = default;

  // ---- Initialization -----------------------------------------------

  /// Sets masters and derives every edge's DC from the placement rules
  /// of the configured model. Usable for kHybridCut and kEdgeCut.
  void ResetDerived(const std::vector<DcId>& masters);

  /// Sets masters and an explicit per-edge placement (vertex-cut).
  void ResetWithPlacement(const std::vector<DcId>& masters,
                          const std::vector<DcId>& edge_dcs);

  /// Sets masters and marks every edge unplaced; used by streaming
  /// vertex-cut partitioners that call PlaceEdge one edge at a time.
  void ResetUnplaced(const std::vector<DcId>& masters);

  /// Re-prices the current layout under a new effective topology (e.g.
  /// after a TopologySchedule event). The placement and the byte
  /// aggregates are topology-independent, so only the dollar/time views
  /// and the accumulated Eq. 4 move cost change. The new topology must
  /// have the same DC count and outlive the state.
  void UpdateTopology(const Topology* topology);

  // ---- Mutation ------------------------------------------------------

  /// Moves the master of v to DC `to`, rederiving the placement of the
  /// edges the rules tie to v's master. Derived-placement mode only.
  /// Moving back to the previous DC exactly restores the prior state.
  void MoveMaster(VertexId v, DcId to);

  /// Places (or re-places) one edge; explicit-placement mode only.
  void PlaceEdge(EdgeId e, DcId to);

  /// Changes v's master without touching edge placement;
  /// explicit-placement mode only.
  void SetMaster(VertexId v, DcId to);

  // ---- What-if evaluation (const, thread-safe) ------------------------

  /// Objective after hypothetically moving v's master to `to`
  /// (derived-placement mode). Does not modify the state.
  Objective EvaluateMove(VertexId v, DcId to, EvalScratch* scratch) const;

  /// Objective after hypothetically placing edge e at `to`
  /// (explicit-placement mode).
  Objective EvaluatePlaceEdge(EdgeId e, DcId to, EvalScratch* scratch) const;

  /// Batched what-if: fills out[r] with the objective after
  /// hypothetically moving v's master to r, for every r in [0, M).
  /// out[master(v)] is the current objective. Equivalent to M calls to
  /// EvaluateMove — bit-exact on dyadic-exact instances (see
  /// docs/correctness.md) — but the O(deg) affected-set collection and
  /// the destination-independent "remove old contribution" half run
  /// once instead of M times, so per-agent all-DC scoring drops from
  /// O(deg * M^2) to O(deg * M + M^2). Const and thread-safe with a
  /// per-thread scratch, like EvaluateMove. `out` must hold num_dcs()
  /// elements. Derived-placement mode only.
  void EvaluateMoveAll(VertexId v, EvalScratch* scratch,
                       Objective* out) const;

  /// Batched what-if for explicit placement: fills out[r] with the
  /// objective after hypothetically placing edge e at r, for every r.
  /// out[edge_dc(e)] is the current objective when e is placed.
  void EvaluatePlaceEdgeAll(EdgeId e, EvalScratch* scratch,
                            Objective* out) const;

  // ---- Objectives and metrics ----------------------------------------

  Objective CurrentObjective() const;

  /// Inter-DC transfer time of one full-activity iteration (Eq. 1).
  double TransferSecondsPerIteration() const;
  /// Runtime upload cost of one full-activity iteration (Eq. 5).
  double RuntimeCostPerIteration() const;
  /// Input data movement cost (Eq. 4).
  double MoveCost() const { return move_cost_; }
  /// Bytes crossing DC uplinks in one full-activity iteration.
  double WanBytesPerIteration() const;
  /// Average number of replicas (master + mirrors) per vertex.
  double ReplicationFactor() const;

  // ---- Accessors -------------------------------------------------------

  const Graph& graph() const { return *graph_; }
  const Topology& topology() const { return *topology_; }
  const PartitionConfig& config() const { return config_; }
  int num_dcs() const { return topology_->num_dcs(); }

  DcId master(VertexId v) const { return masters_[v]; }
  const std::vector<DcId>& masters() const { return masters_; }
  DcId edge_dc(EdgeId e) const { return edge_dc_[e]; }
  bool is_high_degree(VertexId v) const { return is_high_[v] != 0; }

  /// Replica DC bitmask of v, including the master bit.
  uint64_t ReplicaMask(VertexId v) const;
  /// Number of mirror DCs (replicas excluding the master).
  int MirrorCount(VertexId v) const;
  /// Mirror DCs of v (replicas excluding the master), as a bitmask.
  uint64_t MirrorMask(VertexId v) const;
  /// Mirror DCs of v holding at least one in-edge of v: the DCs that
  /// upload gather messages for a high-degree v.
  uint64_t GatherMirrorMask(VertexId v) const;

  uint64_t MasterCount(DcId r) const { return masters_in_dc_[r]; }
  uint64_t EdgeCount(DcId r) const { return edges_in_dc_[r]; }

  /// Number of vertices classified high-degree.
  uint64_t NumHighDegree() const;

  /// Apply-stage message size a_v at full activity (bytes). Grows with
  /// out-degree for workloads with degree-proportional messages.
  double ApplyBytes(VertexId v) const { return apply_bytes_[v]; }

  /// Recomputes every counter/aggregate from scratch and compares with
  /// the incrementally maintained values; false + log on mismatch.
  /// Intended for tests (O(|E| + |V| M)).
  bool CheckInvariants() const;

  /// In-degree threshold that classifies roughly `fraction` of vertices
  /// (the highest in-degree ones) as high-degree. Helper for scaled-down
  /// datasets where the paper's theta=100 would select nothing.
  static uint32_t AutoTheta(const Graph& graph, double fraction = 0.02);

 private:
  // Derived placement rule: which DC does edge e live in, given masters.
  DcId DerivedEdgeDc(EdgeId e) const;

  // Whether a master move of v re-places edge e (see MoveMaster).
  // e must be incident to v.
  bool EdgeFollowsMaster(EdgeId e, VertexId v) const;

  // Adds (sign=+1) or removes (sign=-1) the traffic contribution of w,
  // described by (edge_mask, in_mask, master), into the four per-DC
  // aggregate arrays.
  void AccumulateContribution(VertexId w, uint64_t edge_mask,
                              uint64_t in_mask, DcId master_dc, double sign,
                              double* gather_up, double* gather_down,
                              double* apply_up, double* apply_down) const;

  // Collects the per-vertex count deltas and moved edges for a master
  // move of v from `from` to `to` into `scratch`.
  void CollectMasterMoveDeltas(VertexId v, DcId from, DcId to,
                               EvalScratch* scratch) const;

  // Collects deltas for placing edge e at `to` (from its current DC).
  void CollectEdgePlaceDeltas(EdgeId e, DcId to, EvalScratch* scratch) const;

  // Applies collected deltas to the live state; `new_master_v` is the
  // new master for `move_vertex` (or kNoDc for edge placements).
  void CommitDeltas(EvalScratch* scratch, VertexId move_vertex,
                    DcId new_master_v);

  // Evaluates the objective under the deltas in `scratch` plus an
  // optional master change, without mutating the partition state
  // (scratch's accumulation arrays are used as working memory).
  Objective EvaluateDeltas(EvalScratch* scratch, VertexId move_vertex,
                           DcId new_master_v) const;

  // Evaluates the objective of the deltas in `scratch` for every
  // destination DC at once (see EvaluateMoveAll). `move_vertex` is the
  // vertex whose master follows the destination, or VertexId(-1) for
  // edge placements. Destinations equal to scratch->from_dc_ are
  // filled with CurrentObjective().
  void EvaluateDeltasAll(EvalScratch* scratch, VertexId move_vertex,
                         Objective* out) const;

  // Transfer times for one full-activity iteration given aggregate
  // arrays: Eq. 1-3 bottleneck time and the smooth per-link sum.
  struct StageTimes {
    double bottleneck = 0;
    double smooth = 0;
  };
  StageTimes TransferTimeFromAggregates(const double* gather_up,
                                        const double* gather_down,
                                        const double* apply_up,
                                        const double* apply_down) const;
  double RuntimeCostFromAggregates(const double* gather_up,
                                   const double* apply_up) const;

  double MoveCostDelta(VertexId v, DcId old_master, DcId new_master) const;

  void RebuildFromPlacement();

  uint32_t CntAt(VertexId v, DcId r) const {
    return cnt_[static_cast<size_t>(v) * num_dcs_ + r];
  }
  uint32_t InCntAt(VertexId v, DcId r) const {
    return in_cnt_[static_cast<size_t>(v) * num_dcs_ + r];
  }

  const Graph* graph_;
  const Topology* topology_;
  const std::vector<DcId>* initial_locations_;
  const std::vector<double>* input_sizes_;
  PartitionConfig config_;
  int num_dcs_ = 0;

  // Derived-vs-explicit placement mode (see class comment).
  bool derived_placement_ = true;

  // Per-vertex classification and message sizes.
  std::vector<uint8_t> is_high_;
  std::vector<double> apply_bytes_;   // a_v at full activity
  std::vector<double> gather_bytes_;  // g_v^r at full activity

  // Mutable partitioning state.
  std::vector<DcId> masters_;
  std::vector<DcId> edge_dc_;           // kNoDc when unplaced
  std::vector<uint32_t> cnt_;           // |V| x M incident-edge counts
  std::vector<uint32_t> in_cnt_;        // |V| x M in-edge counts
  std::vector<uint64_t> edge_mask_;     // DCs with >= 1 incident edge
  std::vector<uint64_t> in_mask_;       // DCs with >= 1 in-edge

  // Aggregates (bytes per full-activity iteration).
  std::vector<double> gather_up_;
  std::vector<double> gather_down_;
  std::vector<double> apply_up_;
  std::vector<double> apply_down_;

  double move_cost_ = 0;  // Eq. 4, dollars
  std::vector<uint64_t> masters_in_dc_;
  std::vector<uint64_t> edges_in_dc_;

  // Scratch reused by the mutating paths.
  EvalScratch mutation_scratch_;
};

}  // namespace rlcut

#endif  // RLCUT_PARTITION_PARTITION_STATE_H_
