#ifndef RLCUT_PARTITION_MIGRATION_H_
#define RLCUT_PARTITION_MIGRATION_H_

#include <vector>

#include "cloud/topology.h"
#include "partition/plan_io.h"

namespace rlcut {

/// Cost and traffic of deploying a new partitioning over an old one:
/// every vertex whose master moves must ship its input data (and
/// accumulated state) from the old master DC to the new one. This is
/// the re-partitioning migration the paper's dynamic experiments imply
/// but never price; the dynamic drivers report it so window budgets can
/// account for deployment, not just optimization.
struct MigrationSummary {
  uint64_t vertices_moved = 0;
  double bytes_moved = 0;
  /// Upload cost of the moved data at the source DCs' prices, dollars.
  double cost_dollars = 0;
  /// Eq. 1-style transfer time of the migration itself (per-DC link
  /// loads, max over DCs), seconds.
  double transfer_seconds = 0;
  /// Per-source-DC bytes leaving each DC.
  std::vector<double> bytes_out;
  /// Per-destination-DC bytes entering each DC.
  std::vector<double> bytes_in;
};

/// Compares two master assignments over the same vertex set. `sizes`
/// are the per-vertex data footprints (bytes) that must move.
MigrationSummary PlanMigration(const std::vector<DcId>& old_masters,
                               const std::vector<DcId>& new_masters,
                               const std::vector<double>& sizes,
                               const Topology& topology);

/// Convenience overload over serialized plans (vertex counts must
/// match).
MigrationSummary PlanMigration(const PartitionPlan& old_plan,
                               const PartitionPlan& new_plan,
                               const std::vector<double>& sizes,
                               const Topology& topology);

}  // namespace rlcut

#endif  // RLCUT_PARTITION_MIGRATION_H_
