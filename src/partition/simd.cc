#include "partition/simd.h"

#include <atomic>
#include <cstdlib>

namespace rlcut {
namespace simd {
namespace {

std::atomic<bool> g_force_scalar{false};

bool DetectAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool DisabledByEnv() {
  const char* env = std::getenv("RLCUT_NO_SIMD");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

}  // namespace

bool Avx2Enabled() {
  static const bool available = DetectAvx2() && !DisabledByEnv();
  return available && !g_force_scalar.load(std::memory_order_relaxed);
}

void SetForceScalar(bool force) {
  g_force_scalar.store(force, std::memory_order_relaxed);
}

bool ForceScalar() { return g_force_scalar.load(std::memory_order_relaxed); }

}  // namespace simd
}  // namespace rlcut
