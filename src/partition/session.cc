#include "partition/session.h"

#include <algorithm>

#include "common/logging.h"

namespace rlcut {

BudgetClampResult EnforceMigrationBudget(
    PartitionState* state, const std::vector<DcId>& baseline,
    const std::vector<double>& input_sizes, const MigrationBudget& budget) {
  const VertexId n = state->graph().num_vertices();
  RLCUT_CHECK_EQ(baseline.size(), n);
  RLCUT_CHECK_EQ(input_sizes.size(), n);

  auto tally = [&](BudgetClampResult* out, std::vector<VertexId>* moved) {
    out->vertices_moved = 0;
    out->bytes_moved = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (state->master(v) == baseline[v]) continue;
      ++out->vertices_moved;
      out->bytes_moved += input_sizes[v];
      if (moved != nullptr) moved->push_back(v);
    }
  };

  BudgetClampResult clamp;
  std::vector<VertexId> moved;
  tally(&clamp, &moved);
  if (clamp.vertices_moved <= budget.max_vertices &&
      clamp.bytes_moved <= budget.max_bytes) {
    return clamp;
  }

  // Rank every move by how much reverting it costs, against the current
  // state (sort-once greedy: deltas are not re-evaluated as reverts
  // land, keeping the clamp deterministic and O(moved * deg * M)).
  struct Candidate {
    double delta;
    VertexId v;
  };
  std::vector<Candidate> order;
  order.reserve(moved.size());
  EvalScratch scratch;
  const double current = state->CurrentObjective().transfer_seconds;
  for (VertexId v : moved) {
    const double reverted =
        state->EvaluateMove(v, baseline[v], &scratch).transfer_seconds;
    order.push_back({reverted - current, v});
  }
  std::sort(order.begin(), order.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.delta != b.delta) return a.delta < b.delta;
              return a.v < b.v;
            });

  uint64_t vertices_left = clamp.vertices_moved;
  double bytes_left = clamp.bytes_moved;
  for (const Candidate& c : order) {
    if (vertices_left <= budget.max_vertices &&
        bytes_left <= budget.max_bytes) {
      break;
    }
    state->MoveMaster(c.v, baseline[c.v]);
    --vertices_left;
    bytes_left -= input_sizes[c.v];
    ++clamp.reverted;
  }
  // Re-tally from the state: the incremental byte total above carries
  // floating-point residue that must not leak into budget reporting.
  tally(&clamp, nullptr);
  return clamp;
}

}  // namespace rlcut
