#include "partition/migration.h"

#include <algorithm>

#include "common/logging.h"

namespace rlcut {

MigrationSummary PlanMigration(const std::vector<DcId>& old_masters,
                               const std::vector<DcId>& new_masters,
                               const std::vector<double>& sizes,
                               const Topology& topology) {
  RLCUT_CHECK_EQ(old_masters.size(), new_masters.size());
  RLCUT_CHECK_EQ(old_masters.size(), sizes.size());
  const int num_dcs = topology.num_dcs();

  MigrationSummary summary;
  summary.bytes_out.assign(num_dcs, 0);
  summary.bytes_in.assign(num_dcs, 0);
  for (size_t v = 0; v < old_masters.size(); ++v) {
    const DcId from = old_masters[v];
    const DcId to = new_masters[v];
    if (from == to) continue;
    RLCUT_CHECK(from >= 0 && from < num_dcs);
    RLCUT_CHECK(to >= 0 && to < num_dcs);
    ++summary.vertices_moved;
    summary.bytes_moved += sizes[v];
    summary.bytes_out[from] += sizes[v];
    summary.bytes_in[to] += sizes[v];
    summary.cost_dollars += topology.UploadCost(from, sizes[v]);
  }
  for (DcId r = 0; r < num_dcs; ++r) {
    summary.transfer_seconds = std::max(
        summary.transfer_seconds,
        std::max(topology.UploadSeconds(r, summary.bytes_out[r]),
                 topology.DownloadSeconds(r, summary.bytes_in[r])));
  }
  return summary;
}

MigrationSummary PlanMigration(const PartitionPlan& old_plan,
                               const PartitionPlan& new_plan,
                               const std::vector<double>& sizes,
                               const Topology& topology) {
  RLCUT_CHECK_EQ(old_plan.masters.size(), new_plan.masters.size());
  return PlanMigration(old_plan.masters, new_plan.masters, sizes,
                       topology);
}

}  // namespace rlcut
