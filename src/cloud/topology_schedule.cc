#include "cloud/topology_schedule.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace rlcut {
namespace {

// Per-DC multipliers relative to the base topology. An event *sets*
// these (last-event-wins); it never compounds onto a previous event.
struct DcFactors {
  double uplink = 1.0;
  double downlink = 1.0;
  double price = 1.0;
};

void ApplyEvent(const TopologyEvent& event, std::vector<DcFactors>* factors) {
  const size_t begin =
      event.dc == kAllDcs ? 0 : static_cast<size_t>(event.dc);
  const size_t end =
      event.dc == kAllDcs ? factors->size() : static_cast<size_t>(event.dc) + 1;
  for (size_t r = begin; r < end; ++r) {
    DcFactors& f = (*factors)[r];
    switch (event.kind) {
      case TopologyEventKind::kBandwidthScale:
        f.uplink = event.uplink_factor;
        f.downlink = event.downlink_factor;
        break;
      case TopologyEventKind::kPriceScale:
        f.price = event.price_factor;
        break;
      case TopologyEventKind::kOutage:
        f.uplink = kOutageBandwidthFactor;
        f.downlink = kOutageBandwidthFactor;
        break;
      case TopologyEventKind::kRestore:
        f = DcFactors{};
        break;
    }
  }
}

Status CheckEvent(const TopologyEvent& event, int num_dcs) {
  if (event.step < SimTime(0)) {
    return Status::InvalidArgument("event time must be >= 0");
  }
  if (event.dc != kAllDcs && (event.dc < 0 || event.dc >= num_dcs)) {
    return Status::InvalidArgument("event references an unknown DC");
  }
  if (event.kind == TopologyEventKind::kBandwidthScale &&
      (event.uplink_factor <= 0 || event.downlink_factor <= 0)) {
    return Status::InvalidArgument("bandwidth factors must be positive");
  }
  if (event.kind == TopologyEventKind::kPriceScale &&
      event.price_factor < 0) {
    return Status::InvalidArgument("price factor must be non-negative");
  }
  return Status::Ok();
}

}  // namespace

TopologySchedule::TopologySchedule(Topology base,
                                   std::vector<TopologyEvent> events)
    : base_(std::move(base)), events_(std::move(events)) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const TopologyEvent& a, const TopologyEvent& b) {
                     return a.step < b.step;
                   });
}

Topology TopologySchedule::EffectiveAt(SimTime t) const {
  std::vector<DcFactors> factors(base_.num_dcs());
  for (const TopologyEvent& event : events_) {
    if (event.step > t) break;  // events_ is sorted by time
    ApplyEvent(event, &factors);
  }
  std::vector<DataCenter> dcs = base_.dcs();
  for (size_t r = 0; r < dcs.size(); ++r) {
    dcs[r].uplink_gbps *= factors[r].uplink;
    dcs[r].downlink_gbps *= factors[r].downlink;
    dcs[r].upload_price *= factors[r].price;
  }
  return Topology(std::move(dcs));
}

bool TopologySchedule::ChangedBetween(SimTime from, SimTime to) const {
  for (const TopologyEvent& event : events_) {
    if (event.step > to) break;
    if (event.step > from) return true;
  }
  return false;
}

SimTime TopologySchedule::NextEventAfter(SimTime t) const {
  for (const TopologyEvent& event : events_) {
    if (event.step > t) return event.step;
  }
  return SimTime(-1);
}

Status TopologySchedule::Validate() const {
  RLCUT_RETURN_IF_ERROR(base_.Validate());
  for (const TopologyEvent& event : events_) {
    RLCUT_RETURN_IF_ERROR(CheckEvent(event, base_.num_dcs()));
  }
  // Factors are set (not compounded) per event, so checking the
  // effective topology right after each event covers every state the
  // schedule can produce.
  for (const TopologyEvent& event : events_) {
    RLCUT_RETURN_IF_ERROR(EffectiveAt(event.step).Validate());
  }
  return Status::Ok();
}

namespace {

double Relative(double from, double to) {
  if (from == 0) return to == 0 ? 0.0 : 1.0;
  return std::fabs(to - from) / std::fabs(from);
}

double DcDrift(const DataCenter& a, const DataCenter& b) {
  return std::max({Relative(a.uplink_gbps, b.uplink_gbps),
                   Relative(a.downlink_gbps, b.downlink_gbps),
                   Relative(a.upload_price, b.upload_price)});
}

}  // namespace

double TopologyDrift(const Topology& a, const Topology& b) {
  RLCUT_CHECK_EQ(a.num_dcs(), b.num_dcs());
  double drift = 0;
  for (DcId r = 0; r < a.num_dcs(); ++r) {
    drift = std::max(drift, DcDrift(a.dc(r), b.dc(r)));
  }
  return drift;
}

uint64_t ChangedDcMask(const Topology& a, const Topology& b,
                       double threshold) {
  RLCUT_CHECK_EQ(a.num_dcs(), b.num_dcs());
  uint64_t mask = 0;
  for (DcId r = 0; r < a.num_dcs(); ++r) {
    if (DcDrift(a.dc(r), b.dc(r)) >= threshold) {
      mask |= uint64_t{1} << r;
    }
  }
  return mask;
}

TopologySchedule MakeDiurnalDriftSchedule(Topology base, int period_steps,
                                          double amplitude,
                                          int horizon_steps) {
  RLCUT_CHECK_GT(period_steps, 0);
  RLCUT_CHECK_GE(amplitude, 0.0);
  RLCUT_CHECK_LT(amplitude, 1.0);
  const int stride = std::max(1, period_steps / 8);
  const int num_dcs = base.num_dcs();
  std::vector<TopologyEvent> events;
  constexpr double kTwoPi = 6.283185307179586;
  for (int step = 0; step < horizon_steps; step += stride) {
    for (DcId r = 0; r < num_dcs; ++r) {
      const double phase =
          kTwoPi * (static_cast<double>(step) / period_steps +
                    static_cast<double>(r) / num_dcs);
      const double factor = 1.0 + amplitude * std::sin(phase);
      TopologyEvent event;
      event.step = step;
      event.dc = r;
      event.kind = TopologyEventKind::kBandwidthScale;
      event.uplink_factor = factor;
      event.downlink_factor = factor;
      events.push_back(event);
    }
  }
  TopologySchedule schedule(std::move(base), std::move(events));
  RLCUT_CHECK(schedule.Validate().ok());
  return schedule;
}

TopologySchedule MakeBrownoutSchedule(Topology base, DcId dc,
                                      int start_step, int end_step,
                                      double bandwidth_factor) {
  RLCUT_CHECK_GE(dc, 0);
  RLCUT_CHECK_LT(dc, base.num_dcs());
  RLCUT_CHECK_LE(start_step, end_step);
  RLCUT_CHECK_GT(bandwidth_factor, 0.0);
  std::vector<TopologyEvent> events;
  TopologyEvent brownout;
  brownout.step = start_step;
  brownout.dc = dc;
  brownout.kind = TopologyEventKind::kBandwidthScale;
  brownout.uplink_factor = bandwidth_factor;
  brownout.downlink_factor = bandwidth_factor;
  events.push_back(brownout);
  TopologyEvent restore;
  restore.step = end_step;
  restore.dc = dc;
  restore.kind = TopologyEventKind::kRestore;
  events.push_back(restore);
  TopologySchedule schedule(std::move(base), std::move(events));
  RLCUT_CHECK(schedule.Validate().ok());
  return schedule;
}

Result<TopologySchedule> LoadTopologySchedule(const std::string& path,
                                              Topology base) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open " + path);
  }
  std::string line;
  if (!std::getline(in, line) || line != "rlcut-net-schedule v1") {
    return Status::IoError(path + ": not an rlcut net-schedule file");
  }
  std::vector<TopologyEvent> events;
  int line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    const std::string where = path + ":" + std::to_string(line_no);
    TopologyEvent event;
    std::string dc_token;
    std::string kind;
    double when_seconds = 0;
    if (!(fields >> when_seconds >> dc_token >> kind)) {
      return Status::IoError(where + ": expected '<time> <dc|*> <kind>'");
    }
    event.step = when_seconds;
    if (dc_token == "*") {
      event.dc = kAllDcs;
    } else {
      std::istringstream dc_field(dc_token);
      if (!(dc_field >> event.dc) || !dc_field.eof()) {
        return Status::IoError(where + ": bad DC id '" + dc_token + "'");
      }
    }
    if (kind == "bandwidth") {
      event.kind = TopologyEventKind::kBandwidthScale;
      if (!(fields >> event.uplink_factor >> event.downlink_factor)) {
        return Status::IoError(where +
                               ": bandwidth needs <up_factor> <down_factor>");
      }
    } else if (kind == "price") {
      event.kind = TopologyEventKind::kPriceScale;
      if (!(fields >> event.price_factor)) {
        return Status::IoError(where + ": price needs <price_factor>");
      }
    } else if (kind == "outage") {
      event.kind = TopologyEventKind::kOutage;
    } else if (kind == "restore") {
      event.kind = TopologyEventKind::kRestore;
    } else {
      return Status::IoError(where + ": unknown event kind '" + kind + "'");
    }
    events.push_back(event);
  }
  TopologySchedule schedule(std::move(base), std::move(events));
  if (Status s = schedule.Validate(); !s.ok()) {
    return Status(s.code(), path + ": " + s.message());
  }
  return schedule;
}

}  // namespace rlcut
