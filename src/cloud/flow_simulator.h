#ifndef RLCUT_CLOUD_FLOW_SIMULATOR_H_
#define RLCUT_CLOUD_FLOW_SIMULATOR_H_

#include <vector>

#include "cloud/topology.h"
#include "graph/types.h"

namespace rlcut {

/// One aggregated inter-DC transfer: `bytes` flowing from src's uplink
/// to dst's downlink.
struct FlowTransfer {
  DcId src;
  DcId dst;
  double bytes;
};

/// Event-driven flow-level network simulation under the paper's
/// congestion-free core assumption: the only capacities are each DC's
/// uplink and downlink, shared max-min fairly by the flows traversing
/// them.
///
/// Eq. 2-3's closed form — per DC, load divided by link capacity, then
/// max over DCs — is the lower bound on any schedule's makespan. This
/// simulator computes the makespan a fair-sharing transport actually
/// achieves. Empirically the two coincide exactly on tens of thousands
/// of random flow sets (the most-loaded link stays saturated under
/// progressive filling), and real GAS-stage flow matrices show gaps
/// below 0.1% — i.e. the paper's closed-form timing is, under its own
/// network assumptions, within a thousandth of what fair-share
/// transport realizes (see FlowSimulatorTest).
class FlowSimulator {
 public:
  explicit FlowSimulator(const Topology* topology);

  /// Makespan (seconds) of transferring all flows starting at t=0.
  /// Intra-DC flows (src == dst) are free and ignored. Zero-byte flows
  /// are ignored.
  double SimulateMakespan(std::vector<FlowTransfer> flows) const;

  /// The Eq. 2/3-style closed-form lower bound for the same flow set:
  /// max over links of (total bytes on link) / capacity.
  double ClosedFormBound(const std::vector<FlowTransfer>& flows) const;

 private:
  const Topology* topology_;
};

}  // namespace rlcut

#endif  // RLCUT_CLOUD_FLOW_SIMULATOR_H_
