#include "cloud/topology.h"

#include "common/logging.h"

namespace rlcut {
namespace {

// Measured values (Table I) for USE, SIN, SYD; the other five regions are
// extrapolated inside the measured envelope with mild variation so the
// medium profile stays "EC2-like": uplinks ~0.45-0.58 GB/s, downlinks
// ~2.4-3.6 GB/s, upload prices $0.09-$0.14 per GB.
const DataCenter kEc2Regions[] = {
    {"US-East", 0.52, 2.8, 0.09},        // measured (Table I)
    {"US-West-OR", 0.50, 3.0, 0.09},     // extrapolated
    {"US-West-NC", 0.46, 2.6, 0.11},     // extrapolated
    {"EU-Ireland", 0.54, 3.2, 0.09},     // extrapolated
    {"AP-Singapore", 0.55, 3.5, 0.12},   // measured (Table I)
    {"AP-Tokyo", 0.53, 3.1, 0.11},       // extrapolated
    {"AP-Sydney", 0.48, 2.5, 0.14},      // measured (Table I)
    {"South-America", 0.45, 2.4, 0.13},  // extrapolated
};
constexpr int kNumEc2Regions =
    static_cast<int>(sizeof(kEc2Regions) / sizeof(kEc2Regions[0]));

}  // namespace

DcId Topology::CheapestUploadDc() const {
  RLCUT_CHECK(!dcs_.empty());
  DcId best = 0;
  for (DcId r = 1; r < num_dcs(); ++r) {
    if (dcs_[r].upload_price < dcs_[best].upload_price) best = r;
  }
  return best;
}

Status Topology::Validate() const {
  if (dcs_.empty()) {
    return Status::InvalidArgument("topology has no data centers");
  }
  if (num_dcs() > kMaxDataCenters) {
    return Status::InvalidArgument("more than kMaxDataCenters data centers");
  }
  for (const DataCenter& dc : dcs_) {
    if (dc.uplink_gbps <= 0 || dc.downlink_gbps <= 0) {
      return Status::InvalidArgument("non-positive bandwidth for " + dc.name);
    }
    if (dc.upload_price < 0) {
      return Status::InvalidArgument("negative upload price for " + dc.name);
    }
  }
  return Status::Ok();
}

Topology MakeEc2Topology(Heterogeneity level) {
  return MakeEc2Topology(kNumEc2Regions, level);
}

Topology MakeEc2Topology(int num_dcs, Heterogeneity level) {
  RLCUT_CHECK_GE(num_dcs, 2);
  RLCUT_CHECK_LE(num_dcs, kNumEc2Regions);
  std::vector<DataCenter> dcs(kEc2Regions, kEc2Regions + num_dcs);

  switch (level) {
    case Heterogeneity::kMedium:
      break;
    case Heterogeneity::kLow: {
      // All DCs get the profile's mean bandwidths (prices keep their
      // per-region values: Fig. 3 varies only network heterogeneity).
      double up = 0;
      double down = 0;
      for (const DataCenter& dc : dcs) {
        up += dc.uplink_gbps;
        down += dc.downlink_gbps;
      }
      up /= dcs.size();
      down /= dcs.size();
      for (DataCenter& dc : dcs) {
        dc.uplink_gbps = up;
        dc.downlink_gbps = down;
      }
      break;
    }
    case Heterogeneity::kHigh:
      // Half the DCs throttled to 50% of their original bandwidths
      // (paper Sec. II-C).
      for (size_t i = 0; i < dcs.size(); i += 2) {
        dcs[i].uplink_gbps *= 0.5;
        dcs[i].downlink_gbps *= 0.5;
      }
      break;
  }
  Topology topo(std::move(dcs));
  RLCUT_CHECK(topo.Validate().ok());
  return topo;
}

Topology MakeUniformTopology(int num_dcs, double uplink_gbps,
                             double downlink_gbps, double upload_price) {
  RLCUT_CHECK_GE(num_dcs, 1);
  std::vector<DataCenter> dcs;
  dcs.reserve(num_dcs);
  for (int i = 0; i < num_dcs; ++i) {
    dcs.push_back({"DC-" + std::to_string(i), uplink_gbps, downlink_gbps,
                   upload_price});
  }
  Topology topo(std::move(dcs));
  RLCUT_CHECK(topo.Validate().ok());
  return topo;
}

}  // namespace rlcut
