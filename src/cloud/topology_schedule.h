#ifndef RLCUT_CLOUD_TOPOLOGY_SCHEDULE_H_
#define RLCUT_CLOUD_TOPOLOGY_SCHEDULE_H_

#include <string>
#include <vector>

#include "cloud/topology.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "graph/types.h"

namespace rlcut {

/// Applies an event to every DC (TopologyEvent::dc).
inline constexpr DcId kAllDcs = -1;

/// Bandwidth floor an outage throttles a DC to, as a fraction of its
/// base bandwidth. A true zero would make Eq. 1-3 undefined (division by
/// link capacity), so an "outage" is modeled as a severe brownout: the
/// DC stays addressable but pushing anything through it is ruinous,
/// which is what drives traffic off it during re-optimization.
inline constexpr double kOutageBandwidthFactor = 0.02;

/// What a topology event changes.
enum class TopologyEventKind {
  /// Sets the DC's uplink/downlink to factor * base value.
  kBandwidthScale,
  /// Sets the DC's upload price to factor * base value.
  kPriceScale,
  /// Throttles the DC's bandwidths to kOutageBandwidthFactor * base.
  kOutage,
  /// Returns the DC to its base bandwidths and price.
  kRestore,
};

/// One timestamped change to the effective topology. `step` is a SimTime
/// on the same monotonic timeline as temporal edge streams (the field
/// keeps its historical name; one legacy integer "step" embeds as one
/// simulated second). The event is in effect from `step` onward, until a
/// later event for the same DC and dimension overrides it (set-to-base,
/// last-event-wins semantics — factors do not compound).
struct TopologyEvent {
  SimTime step;
  DcId dc = kAllDcs;
  TopologyEventKind kind = TopologyEventKind::kBandwidthScale;
  double uplink_factor = 1.0;
  double downlink_factor = 1.0;
  double price_factor = 1.0;
};

/// A time-varying cloud environment: a base Topology plus a sequence of
/// timestamped events — bandwidth drift, upload-price changes, DC
/// degradation and outages — that together define the effective Topology
/// at any training step. FlowSimulator and the Eq. 1-5 objective
/// evaluation consume the effective topology (construct a FlowSimulator
/// over EffectiveAt(), or re-price a live PartitionState with
/// PartitionState::UpdateTopology).
class TopologySchedule {
 public:
  TopologySchedule() = default;
  /// Events are stable-sorted by step; same-step events apply in their
  /// given order.
  explicit TopologySchedule(Topology base,
                            std::vector<TopologyEvent> events = {});

  const Topology& base() const { return base_; }
  const std::vector<TopologyEvent>& events() const { return events_; }

  /// The effective topology at time `t`: the base with every event whose
  /// time is <= `t` applied in order.
  Topology EffectiveAt(SimTime t) const;

  /// True if at least one event fires in the half-open interval
  /// (from, to].
  bool ChangedBetween(SimTime from, SimTime to) const;

  /// Time of the first event strictly after `t`, or SimTime(-1) if none
  /// (event times are validated non-negative, so -1 s is unambiguous).
  SimTime NextEventAfter(SimTime t) const;

  /// Checks the base topology, event DC ids, factor positivity, and that
  /// every effective topology the schedule can produce validates.
  Status Validate() const;

 private:
  Topology base_;
  std::vector<TopologyEvent> events_;
};

/// Maximum over DCs and dimensions (uplink, downlink, price) of the
/// relative change |b - a| / a. The re-optimization trigger compares
/// this magnitude against a threshold. Topologies must have equal DC
/// counts.
double TopologyDrift(const Topology& a, const Topology& b);

/// Bitmask of DCs whose uplink, downlink or price differs between `a`
/// and `b` by at least `threshold` (relative). Used to select which
/// automata a topology event resumes.
uint64_t ChangedDcMask(const Topology& a, const Topology& b,
                       double threshold);

/// Preset: smooth diurnal bandwidth drift. Every DC's bandwidths follow
/// 1 + amplitude * sin(2*pi * (step/period + r/M)) — per-DC phase
/// offsets so DCs peak at different times — sampled every period/8 steps
/// over [0, horizon_steps).
TopologySchedule MakeDiurnalDriftSchedule(Topology base, int period_steps,
                                          double amplitude,
                                          int horizon_steps);

/// Preset: single-region brownout. DC `dc` runs at `bandwidth_factor` of
/// its base bandwidths during [start_step, end_step), then recovers.
TopologySchedule MakeBrownoutSchedule(Topology base, DcId dc,
                                      int start_step, int end_step,
                                      double bandwidth_factor = 0.5);

/// Text schedule format (see docs/dynamic_environments.md):
///   rlcut-net-schedule v1
///   <step> <dc|*> bandwidth <up_factor> <down_factor>
///   <step> <dc|*> price <price_factor>
///   <step> <dc|*> outage
///   <step> <dc|*> restore
/// Lines starting with '#' are comments. The loaded schedule is
/// validated against `base`.
Result<TopologySchedule> LoadTopologySchedule(const std::string& path,
                                              Topology base);

}  // namespace rlcut

#endif  // RLCUT_CLOUD_TOPOLOGY_SCHEDULE_H_
