#ifndef RLCUT_CLOUD_TOPOLOGY_H_
#define RLCUT_CLOUD_TOPOLOGY_H_

#include <string>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "graph/types.h"

namespace rlcut {

/// One geo-distributed data center: the paper's congestion-free network
/// model (Sec. III-A) characterizes a DC entirely by its WAN uplink and
/// downlink bandwidth plus the price of uploading to the Internet
/// (Table I). Intra-DC traffic is free and unmodeled.
struct DataCenter {
  std::string name;
  double uplink_gbps;     // GB/s out of the DC onto the WAN (U_r).
  double downlink_gbps;   // GB/s from the WAN into the DC (D_r).
  double upload_price;    // $/GB uploaded (P_r). Downloads are free.
};

/// Floor on effective link capacity, bytes/second. Outage and brownout
/// events can drive a link's bandwidth arbitrarily close to zero, and a
/// degraded topology handed to UpdateTopology/FlowSimulator may carry an
/// exact zero; Eq. 1-3 and the flow simulator divide by link capacity,
/// so an unguarded zero yields inf/NaN transfer times that poison every
/// downstream Eq. 10 score. A link at (or below) the floor behaves as
/// fully saturated: finite but ruinous, which is exactly what drives
/// traffic off it during re-optimization.
inline constexpr double kMinLinkBytesPerSec = 1.0;

/// Effective capacity of a link in bytes/second: gbps scaled to bytes,
/// floored at kMinLinkBytesPerSec.
inline double LinkBytesPerSec(double gbps) {
  const double bytes_per_sec = gbps * 1e9;
  return bytes_per_sec > kMinLinkBytesPerSec ? bytes_per_sec
                                             : kMinLinkBytesPerSec;
}

/// The set of DCs an experiment runs over.
class Topology {
 public:
  Topology() = default;
  explicit Topology(std::vector<DataCenter> dcs) : dcs_(std::move(dcs)) {}

  int num_dcs() const { return static_cast<int>(dcs_.size()); }
  const DataCenter& dc(DcId r) const { return dcs_[CheckedIndex(r)]; }
  const std::vector<DataCenter>& dcs() const { return dcs_; }

  double Uplink(DcId r) const { return dcs_[CheckedIndex(r)].uplink_gbps; }
  double Downlink(DcId r) const {
    return dcs_[CheckedIndex(r)].downlink_gbps;
  }
  double Price(DcId r) const { return dcs_[CheckedIndex(r)].upload_price; }

  /// Seconds to push `bytes` out of DC r (uplink-bound). Zero-bandwidth
  /// links count as saturated at kMinLinkBytesPerSec (finite, huge).
  double UploadSeconds(DcId r, double bytes) const {
    return bytes / LinkBytesPerSec(dcs_[CheckedIndex(r)].uplink_gbps);
  }
  /// Seconds to pull `bytes` into DC r (downlink-bound).
  double DownloadSeconds(DcId r, double bytes) const {
    return bytes / LinkBytesPerSec(dcs_[CheckedIndex(r)].downlink_gbps);
  }
  /// Dollars to upload `bytes` out of DC r.
  double UploadCost(DcId r, double bytes) const {
    return (bytes / 1e9) * dcs_[CheckedIndex(r)].upload_price;
  }

  /// Cheapest DC to upload from (used for the centralized-move budget
  /// baseline of Sec. VI-A4).
  DcId CheapestUploadDc() const;

  /// Validates bandwidths/prices are positive and size <= kMaxDataCenters.
  Status Validate() const;

 private:
  // A bad DcId used to index dcs_ silently (UB); debug builds now trap
  // it at every accessor. Hot paths pay nothing in release builds.
  size_t CheckedIndex(DcId r) const {
    RLCUT_DCHECK(r >= 0 && r < num_dcs());
    return static_cast<size_t>(r);
  }

  std::vector<DataCenter> dcs_;
};

/// Network heterogeneity levels of the Fig. 3 motivation study.
enum class Heterogeneity {
  kLow,     // all DCs share the same (mean) bandwidths
  kMedium,  // the measured EC2 profile
  kHigh,    // half the DCs throttled to 50% bandwidth
};

/// The eight EC2 regions of Exp#1: USE, OR, NC, EU, SIN, TKY, SYD, SA.
/// USE/SIN/SYD use the measured Table I values; the remaining five are
/// extrapolated within the measured range (documented in topology.cc).
Topology MakeEc2Topology(Heterogeneity level = Heterogeneity::kMedium);

/// First `num_dcs` regions of the EC2 profile (2 <= num_dcs <= 8).
Topology MakeEc2Topology(int num_dcs, Heterogeneity level);

/// Uniform topology: `num_dcs` identical DCs. The "traditional cluster"
/// control case where load-balanced partitioning is optimal.
Topology MakeUniformTopology(int num_dcs, double uplink_gbps = 0.5,
                             double downlink_gbps = 3.0,
                             double upload_price = 0.10);

}  // namespace rlcut

#endif  // RLCUT_CLOUD_TOPOLOGY_H_
