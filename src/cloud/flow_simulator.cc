#include "cloud/flow_simulator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rlcut {
namespace {

constexpr double kEpsilonBytes = 1e-9;

// Link ids: uplink of DC r = r, downlink of DC r = num_dcs + r.
struct ActiveFlow {
  DcId src;
  DcId dst;
  double remaining;
  double rate = 0;
};

// Max-min fair rate allocation by progressive filling: repeatedly find
// the link whose equal share among its unfixed flows is smallest, fix
// those flows at that share, and subtract their usage everywhere.
void AllocateRates(std::vector<ActiveFlow>& flows, int num_dcs,
                   const std::vector<double>& capacity) {
  const int num_links = 2 * num_dcs;
  std::vector<double> residual = capacity;
  std::vector<int> unfixed_count(num_links, 0);
  std::vector<uint8_t> fixed(flows.size(), 0);
  for (const ActiveFlow& f : flows) {
    ++unfixed_count[f.src];
    ++unfixed_count[num_dcs + f.dst];
  }
  size_t remaining_flows = flows.size();
  while (remaining_flows > 0) {
    // Find the tightest link.
    double min_share = std::numeric_limits<double>::infinity();
    int bottleneck = -1;
    for (int link = 0; link < num_links; ++link) {
      if (unfixed_count[link] == 0) continue;
      const double share = residual[link] / unfixed_count[link];
      if (share < min_share) {
        min_share = share;
        bottleneck = link;
      }
    }
    RLCUT_CHECK_GE(bottleneck, 0);
    // Fix every unfixed flow on the bottleneck at min_share.
    for (size_t i = 0; i < flows.size(); ++i) {
      if (fixed[i]) continue;
      const int up = flows[i].src;
      const int down = num_dcs + flows[i].dst;
      if (up != bottleneck && down != bottleneck) continue;
      flows[i].rate = min_share;
      fixed[i] = 1;
      --remaining_flows;
      residual[up] -= min_share;
      residual[down] -= min_share;
      --unfixed_count[up];
      --unfixed_count[down];
    }
    // Numeric guard: residuals can go slightly negative.
    for (double& r : residual) r = std::max(r, 0.0);
  }
}

}  // namespace

FlowSimulator::FlowSimulator(const Topology* topology)
    : topology_(topology) {
  RLCUT_CHECK(topology_ != nullptr);
}

double FlowSimulator::ClosedFormBound(
    const std::vector<FlowTransfer>& flows) const {
  const int num_dcs = topology_->num_dcs();
  std::vector<double> up(num_dcs, 0);
  std::vector<double> down(num_dcs, 0);
  for (const FlowTransfer& f : flows) {
    if (f.src == f.dst || f.bytes <= 0) continue;
    up[f.src] += f.bytes;
    down[f.dst] += f.bytes;
  }
  double bound = 0;
  for (DcId r = 0; r < num_dcs; ++r) {
    // LinkBytesPerSec floors dead links at a finite capacity so an
    // outage (bandwidth -> 0) yields a huge-but-finite bound instead of
    // inf/NaN poisoning the Eq. 10 scores built on top of it.
    bound = std::max(bound, up[r] / LinkBytesPerSec(topology_->Uplink(r)));
    bound =
        std::max(bound, down[r] / LinkBytesPerSec(topology_->Downlink(r)));
  }
  return bound;
}

double FlowSimulator::SimulateMakespan(
    std::vector<FlowTransfer> transfers) const {
  obs::TraceSpan span("flow/simulate", "cloud");
  span.AddArg("flows", static_cast<double>(transfers.size()));
  obs::DefaultRegistry().GetCounter("flow.simulations")->Increment();
  const int num_dcs = topology_->num_dcs();
  std::vector<double> capacity(2 * num_dcs);
  for (DcId r = 0; r < num_dcs; ++r) {
    // Floor dead links: a zero capacity would allocate zero-rate flows
    // whose completion time is infinite and trip the progress check.
    capacity[r] = LinkBytesPerSec(topology_->Uplink(r));
    capacity[num_dcs + r] = LinkBytesPerSec(topology_->Downlink(r));
  }

  std::vector<ActiveFlow> flows;
  flows.reserve(transfers.size());
  for (const FlowTransfer& t : transfers) {
    if (t.src == t.dst || t.bytes <= kEpsilonBytes) continue;
    RLCUT_DCHECK(t.src >= 0 && t.src < num_dcs);
    RLCUT_DCHECK(t.dst >= 0 && t.dst < num_dcs);
    flows.push_back({t.src, t.dst, t.bytes});
  }

  double now = 0;
  while (!flows.empty()) {
    AllocateRates(flows, num_dcs, capacity);
    // Advance to the next flow completion.
    double dt = std::numeric_limits<double>::infinity();
    for (const ActiveFlow& f : flows) {
      if (f.rate > 0) dt = std::min(dt, f.remaining / f.rate);
    }
    RLCUT_CHECK(std::isfinite(dt)) << "no flow is making progress";
    now += dt;
    for (ActiveFlow& f : flows) f.remaining -= f.rate * dt;
    flows.erase(std::remove_if(flows.begin(), flows.end(),
                               [](const ActiveFlow& f) {
                                 return f.remaining <= kEpsilonBytes;
                               }),
                flows.end());
  }
  return now;
}

}  // namespace rlcut
