#include "check/differential_oracle.h"

#include <deque>
#include <ios>
#include <sstream>
#include <string>
#include <vector>

#include "check/legacy_reference.h"
#include "cloud/topology.h"
#include "cloud/topology_schedule.h"
#include "common/random.h"
#include "partition/simd.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "partition/partition_state.h"
#include "partition/workload.h"

namespace rlcut {
namespace check {
namespace {

// ---- Dyadic-exact instance family -----------------------------------
//
// Every constant below is a small multiple of a power of two (or a whole
// number of GB), which keeps all additively maintained quantities —
// per-DC byte aggregates and the Eq. 4 move cost — on a common dyadic
// grid far below the 2^53 exactness limit. Divisions by bandwidth and by
// 1e9 are *not* exact, but both the incremental and the cold evaluation
// path derive them from bit-equal aggregates through the same code, so
// the results are bit-equal too.

const double kUplinkGbps[] = {0.25, 0.5, 0.125, 1.0, 0.5, 0.25, 2.0, 0.125};
const double kDownlinkGbps[] = {0.5, 1.0, 0.25, 2.0, 1.0, 0.5, 4.0, 0.25};
const double kUploadPrice[] = {0.125,   0.0625, 0.25,   0.03125,
                               0.09375, 0.5,    0.0625, 0.25};

Topology MakeOracleTopology(int preset, int num_dcs) {
  std::vector<DataCenter> dcs(num_dcs);
  for (int r = 0; r < num_dcs; ++r) {
    dcs[r].name = "dc" + std::to_string(r);
    if (preset == 0) {
      dcs[r].uplink_gbps = 0.25;
      dcs[r].downlink_gbps = 0.5;
      dcs[r].upload_price = 0.125;
    } else {
      dcs[r].uplink_gbps = kUplinkGbps[r % 8];
      dcs[r].downlink_gbps = kDownlinkGbps[r % 8];
      dcs[r].upload_price = kUploadPrice[r % 8];
    }
  }
  return Topology(std::move(dcs));
}

// Outage, drift and recovery with dyadic scale factors. Bandwidth-only
// events may use any positive factor (bandwidth enters the objective
// through division only); price factors must stay dyadic because prices
// multiply into the additively accumulated move cost.
TopologySchedule MakeOracleSchedule(Topology base, int num_dcs) {
  const DcId victim = num_dcs > 1 ? 1 : 0;
  std::vector<TopologyEvent> events;
  events.push_back({8, victim, TopologyEventKind::kOutage, 1, 1, 1});
  events.push_back({20, victim, TopologyEventKind::kRestore, 1, 1, 1});
  events.push_back(
      {28, kAllDcs, TopologyEventKind::kBandwidthScale, 0.5, 0.5, 1});
  events.push_back({36, 0, TopologyEventKind::kPriceScale, 1, 1, 2.0});
  events.push_back({44, kAllDcs, TopologyEventKind::kRestore, 1, 1, 1});
  return TopologySchedule(std::move(base), std::move(events));
}

Workload OracleWorkload() {
  Workload w;
  w.name = "oracle-dyadic";
  w.apply_base_bytes = 8;
  w.apply_bytes_per_out_edge = 0.25;
  w.gather_base_bytes = 4;
  w.activity = {1.0, 0.5, 0.25, 0.25};
  return w;
}

Graph MakeOracleGraph(int kind, VertexId n, uint64_t m, uint64_t seed) {
  switch (kind) {
    case 0: {
      PowerLawOptions o;
      o.num_vertices = n;
      o.num_edges = m;
      o.exponent = 2.0;
      o.seed = seed;
      return GeneratePowerLaw(o);
    }
    case 1:
      return GenerateErdosRenyi(n, m, seed);
    default: {
      RmatOptions o;
      o.num_vertices = n;
      o.num_edges = m;
      o.seed = seed;
      return GenerateRmat(o);
    }
  }
}

// ---- Bit-level state comparison -------------------------------------

std::string Hex(double x) {
  std::ostringstream out;
  out << std::hexfloat << x << std::defaultfloat << " (" << x << ")";
  return out.str();
}

bool SameObjective(const Objective& a, const Objective& b) {
  return a.transfer_seconds == b.transfer_seconds &&
         a.cost_dollars == b.cost_dollars &&
         a.smooth_seconds == b.smooth_seconds;
}

std::string DiffObjective(const Objective& a, const Objective& b) {
  std::ostringstream out;
  if (a.transfer_seconds != b.transfer_seconds) {
    out << " transfer " << Hex(a.transfer_seconds) << " vs "
        << Hex(b.transfer_seconds);
  }
  if (a.cost_dollars != b.cost_dollars) {
    out << " cost " << Hex(a.cost_dollars) << " vs " << Hex(b.cost_dollars);
  }
  if (a.smooth_seconds != b.smooth_seconds) {
    out << " smooth " << Hex(a.smooth_seconds) << " vs "
        << Hex(b.smooth_seconds);
  }
  return out.str();
}

// Everything observable through the public PartitionState API.
struct Snapshot {
  std::vector<DcId> masters;
  std::vector<DcId> edge_dcs;
  std::vector<uint64_t> replica;
  std::vector<uint64_t> gather_mirror;
  std::vector<uint64_t> master_count;
  std::vector<uint64_t> edge_count;
  Objective objective;
  double move_cost = 0;
  double wan_bytes = 0;
};

Snapshot Capture(const PartitionState& state) {
  Snapshot s;
  const VertexId n = state.graph().num_vertices();
  const EdgeId m = state.graph().num_edges();
  const int dcs = state.num_dcs();
  s.masters = state.masters();
  s.edge_dcs.resize(m);
  for (EdgeId e = 0; e < m; ++e) s.edge_dcs[e] = state.edge_dc(e);
  s.replica.resize(n);
  s.gather_mirror.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    s.replica[v] = state.ReplicaMask(v);
    s.gather_mirror[v] = state.GatherMirrorMask(v);
  }
  s.master_count.resize(dcs);
  s.edge_count.resize(dcs);
  for (DcId r = 0; r < dcs; ++r) {
    s.master_count[r] = state.MasterCount(r);
    s.edge_count[r] = state.EdgeCount(r);
  }
  s.objective = state.CurrentObjective();
  s.move_cost = state.MoveCost();
  s.wan_bytes = state.WanBytesPerIteration();
  return s;
}

// Empty string when identical; otherwise describes the first mismatch.
std::string DiffSnapshots(const Snapshot& a, const Snapshot& b) {
  for (size_t v = 0; v < a.masters.size(); ++v) {
    if (a.masters[v] != b.masters[v]) {
      return "master(" + std::to_string(v) + ") " +
             std::to_string(a.masters[v]) + " vs " +
             std::to_string(b.masters[v]);
    }
    if (a.replica[v] != b.replica[v]) {
      return "replica_mask(" + std::to_string(v) + ")";
    }
    if (a.gather_mirror[v] != b.gather_mirror[v]) {
      return "gather_mirror_mask(" + std::to_string(v) + ")";
    }
  }
  for (size_t e = 0; e < a.edge_dcs.size(); ++e) {
    if (a.edge_dcs[e] != b.edge_dcs[e]) {
      return "edge_dc(" + std::to_string(e) + ") " +
             std::to_string(a.edge_dcs[e]) + " vs " +
             std::to_string(b.edge_dcs[e]);
    }
  }
  for (size_t r = 0; r < a.master_count.size(); ++r) {
    if (a.master_count[r] != b.master_count[r]) {
      return "master_count(" + std::to_string(r) + ")";
    }
    if (a.edge_count[r] != b.edge_count[r]) {
      return "edge_count(" + std::to_string(r) + ")";
    }
  }
  if (!SameObjective(a.objective, b.objective)) {
    return "objective:" + DiffObjective(a.objective, b.objective);
  }
  if (a.move_cost != b.move_cost) {
    return "move_cost " + Hex(a.move_cost) + " vs " + Hex(b.move_cost);
  }
  if (a.wan_bytes != b.wan_bytes) {
    return "wan_bytes " + Hex(a.wan_bytes) + " vs " + Hex(b.wan_bytes);
  }
  return std::string();
}

}  // namespace

std::string OracleReport::Summary() const {
  std::ostringstream out;
  out << "differential oracle: " << sequences << " sequences, " << moves
      << " moves, " << cold_recomputes << " cold recomputes, " << rollbacks
      << " rollbacks, " << topology_updates << " topology updates, "
      << invariant_checks << " invariant checks, " << batched_evals
      << " batched evals, " << legacy_evals << " legacy evals, "
      << simd_lane_checks << " simd lane checks, " << failures.size()
      << " failures";
  return out.str();
}

OracleReport RunDifferentialOracle(const OracleOptions& options) {
  OracleReport report;
  Rng rng(options.seed != 0 ? options.seed : 1);
  const Workload workload = OracleWorkload();
  const int cold_every = options.cold_every > 0 ? options.cold_every : 1;

  const int num_models = options.include_vertex_cut ? 3 : 2;
  for (int seq = 0; seq < options.num_sequences; ++seq) {
    if (report.failures.size() >=
        static_cast<size_t>(options.max_failures)) {
      break;
    }
    const int graph_kind = seq % 3;
    const int preset = (seq / 3) % 3;
    const int model_kind = (seq / 9) % num_models;

    const Graph graph = MakeOracleGraph(graph_kind, options.num_vertices,
                                        options.num_edges,
                                        options.seed + 17 * seq + 1);
    const VertexId n = graph.num_vertices();
    const EdgeId m = graph.num_edges();

    // Stable addresses for every effective topology this sequence uses;
    // PartitionState keeps a pointer into the store.
    std::deque<Topology> topo_store;
    TopologySchedule schedule;
    if (preset == 2) {
      schedule = MakeOracleSchedule(MakeOracleTopology(1, options.num_dcs),
                                    options.num_dcs);
      topo_store.push_back(schedule.EffectiveAt(0));
    } else {
      topo_store.push_back(MakeOracleTopology(preset, options.num_dcs));
    }
    const Topology* cur_topo = &topo_store.back();

    // Whole-GB input sizes: size / 1e9 divides back to an exact integer,
    // so every Eq. 4 term is (integer) * (dyadic price) — exact.
    std::vector<DcId> init_locs(n);
    std::vector<double> input_sizes(n);
    for (VertexId v = 0; v < n; ++v) {
      init_locs[v] = static_cast<DcId>(rng.UniformInt(options.num_dcs));
      input_sizes[v] = static_cast<double>(1 + rng.UniformInt(8)) * 1e9;
    }

    PartitionConfig config;
    config.workload = workload;
    switch (model_kind) {
      case 0:
        config.model = ComputeModel::kHybridCut;
        config.theta = PartitionState::AutoTheta(graph, 0.1);
        break;
      case 1:
        config.model = ComputeModel::kEdgeCut;
        break;
      default:
        config.model = ComputeModel::kVertexCut;
        break;
    }
    const bool derived = config.model != ComputeModel::kVertexCut;

    PartitionState state(&graph, cur_topo, &init_locs, &input_sizes,
                         config);
    std::vector<DcId> masters(n);
    for (VertexId v = 0; v < n; ++v) {
      masters[v] = static_cast<DcId>(rng.UniformInt(options.num_dcs));
    }
    if (derived) {
      state.ResetDerived(masters);
    } else {
      std::vector<DcId> edge_dcs(m);
      for (EdgeId e = 0; e < m; ++e) {
        edge_dcs[e] = static_cast<DcId>(rng.UniformInt(options.num_dcs));
      }
      state.ResetWithPlacement(masters, edge_dcs);
    }

    EvalScratch scratch;
    EvalScratch batch_scratch;
    std::vector<Objective> batched(options.num_dcs);
    std::vector<Objective> batched_scalar(options.num_dcs);
    ++report.sequences;

    auto fail = [&](int move, const std::string& what) {
      std::ostringstream out;
      out << "seq " << seq << " move " << move << " [graph=" << graph_kind
          << " preset=" << preset << " model=" << model_kind
          << "]: " << what;
      report.failures.push_back(out.str());
    };

    // SoA-vs-legacy lane: the live objective against the AoS reference
    // evaluator, bit-exact on the dyadic instances.
    auto legacy_check = [&](int move, const char* where) {
      const Objective live = state.CurrentObjective();
      const Objective legacy = LegacyReferenceObjective(state);
      ++report.legacy_evals;
      if (!SameObjective(live, legacy)) {
        fail(move, std::string(where) + ": SoA vs legacy AoS objective:" +
                       DiffObjective(live, legacy));
      }
    };

    // Scalar-vs-SIMD lane: re-run a batched evaluation with the
    // vectorized finalize forced off; the elementwise lane kernels are
    // exact IEEE operations, so the results must match bit-for-bit.
    auto simd_check = [&](int move, const char* what, auto&& eval) {
      if (!simd::Avx2Enabled()) return;
      simd::SetForceScalar(true);
      eval(batched_scalar.data());
      simd::SetForceScalar(false);
      ++report.simd_lane_checks;
      for (DcId r = 0; r < options.num_dcs; ++r) {
        if (!SameObjective(batched[r], batched_scalar[r])) {
          fail(move, std::string(what) + "[" + std::to_string(r) +
                         "] scalar vs AVX2:" +
                         DiffObjective(batched_scalar[r], batched[r]));
        }
      }
    };

    auto cold_check = [&](int move, const char* where) {
      PartitionState fresh(&graph, cur_topo, &init_locs, &input_sizes,
                           config);
      if (derived) {
        fresh.ResetDerived(state.masters());
      } else {
        std::vector<DcId> edge_dcs(m);
        for (EdgeId e = 0; e < m; ++e) edge_dcs[e] = state.edge_dc(e);
        fresh.ResetWithPlacement(state.masters(), edge_dcs);
      }
      ++report.cold_recomputes;
      const Objective live = state.CurrentObjective();
      const Objective cold = fresh.CurrentObjective();
      if (!SameObjective(live, cold)) {
        fail(move, std::string(where) + ": incremental vs cold objective:" +
                       DiffObjective(live, cold));
      }
      if (state.MoveCost() != fresh.MoveCost()) {
        fail(move, std::string(where) + ": incremental vs cold move cost " +
                       Hex(state.MoveCost()) + " vs " +
                       Hex(fresh.MoveCost()));
      }
      if (state.WanBytesPerIteration() != fresh.WanBytesPerIteration()) {
        fail(move,
             std::string(where) + ": incremental vs cold WAN bytes " +
                 Hex(state.WanBytesPerIteration()) + " vs " +
                 Hex(fresh.WanBytesPerIteration()));
      }
    };

    for (int move = 0; move < options.moves_per_sequence; ++move) {
      if (report.failures.size() >=
          static_cast<size_t>(options.max_failures)) {
        break;
      }
      // Scheduled preset: re-price the live state against the effective
      // topology every 8 moves (move index doubles as the time step).
      if (preset == 2 && move > 0 && move % 8 == 0 &&
          schedule.ChangedBetween(move - 8, move)) {
        topo_store.push_back(schedule.EffectiveAt(move));
        cur_topo = &topo_store.back();
        state.UpdateTopology(cur_topo);
        ++report.topology_updates;
        cold_check(move, "after UpdateTopology");
      }

      ++report.moves;
      const Snapshot pre = Capture(state);

      if (derived) {
        const VertexId v = static_cast<VertexId>(rng.UniformInt(n));
        const DcId to = static_cast<DcId>(rng.UniformInt(options.num_dcs));
        const DcId from = state.master(v);

        // Batch-vs-single lane: one EvaluateMoveAll against M
        // independent EvaluateMove calls, exact on every entry (the
        // batched path regroups only exact dyadic additions).
        state.EvaluateMoveAll(v, &batch_scratch, batched.data());
        ++report.batched_evals;
        simd_check(move, "EvaluateMoveAll", [&](Objective* out) {
          state.EvaluateMoveAll(v, &batch_scratch, out);
        });
        for (DcId r = 0; r < options.num_dcs; ++r) {
          const Objective single = state.EvaluateMove(v, r, &scratch);
          if (!SameObjective(batched[r], single)) {
            fail(move, "EvaluateMoveAll[" + std::to_string(r) +
                           "] vs EvaluateMove:" +
                           DiffObjective(batched[r], single));
          }
        }
        {
          const std::string batch_diff = DiffSnapshots(pre, Capture(state));
          if (!batch_diff.empty()) {
            fail(move, "EvaluateMoveAll mutated state: " + batch_diff);
          }
        }

        const Objective predicted = state.EvaluateMove(v, to, &scratch);
        const std::string eval_diff = DiffSnapshots(pre, Capture(state));
        if (!eval_diff.empty()) {
          fail(move, "EvaluateMove mutated state: " + eval_diff);
        }
        state.MoveMaster(v, to);
        const Objective actual = state.CurrentObjective();
        if (!SameObjective(predicted, actual)) {
          fail(move, "EvaluateMove vs committed objective:" +
                         DiffObjective(predicted, actual));
        }
        legacy_check(move, "after MoveMaster");
        if (move % cold_every == 0) cold_check(move, "after MoveMaster");
        if (rng.Bernoulli(0.5)) {
          state.MoveMaster(v, from);
          ++report.rollbacks;
          const std::string diff = DiffSnapshots(pre, Capture(state));
          if (!diff.empty()) {
            fail(move, "rollback not bit-identical: " + diff);
          }
        }
      } else {
        const bool place_edge = rng.UniformInt(3) != 0;
        if (place_edge) {
          const EdgeId e = rng.UniformInt(m);
          const DcId to =
              static_cast<DcId>(rng.UniformInt(options.num_dcs));
          const DcId old = state.edge_dc(e);

          // Batch-vs-single lane for explicit placement.
          state.EvaluatePlaceEdgeAll(e, &batch_scratch, batched.data());
          ++report.batched_evals;
          simd_check(move, "EvaluatePlaceEdgeAll", [&](Objective* out) {
            state.EvaluatePlaceEdgeAll(e, &batch_scratch, out);
          });
          for (DcId r = 0; r < options.num_dcs; ++r) {
            const Objective single = state.EvaluatePlaceEdge(e, r, &scratch);
            if (!SameObjective(batched[r], single)) {
              fail(move, "EvaluatePlaceEdgeAll[" + std::to_string(r) +
                             "] vs EvaluatePlaceEdge:" +
                             DiffObjective(batched[r], single));
            }
          }
          {
            const std::string batch_diff =
                DiffSnapshots(pre, Capture(state));
            if (!batch_diff.empty()) {
              fail(move, "EvaluatePlaceEdgeAll mutated state: " + batch_diff);
            }
          }

          const Objective predicted =
              state.EvaluatePlaceEdge(e, to, &scratch);
          const std::string eval_diff = DiffSnapshots(pre, Capture(state));
          if (!eval_diff.empty()) {
            fail(move, "EvaluatePlaceEdge mutated state: " + eval_diff);
          }
          state.PlaceEdge(e, to);
          const Objective actual = state.CurrentObjective();
          if (!SameObjective(predicted, actual)) {
            fail(move, "EvaluatePlaceEdge vs committed objective:" +
                           DiffObjective(predicted, actual));
          }
          legacy_check(move, "after PlaceEdge");
          if (move % cold_every == 0) cold_check(move, "after PlaceEdge");
          if (old != kNoDc && rng.Bernoulli(0.5)) {
            state.PlaceEdge(e, old);
            ++report.rollbacks;
            const std::string diff = DiffSnapshots(pre, Capture(state));
            if (!diff.empty()) {
              fail(move, "PlaceEdge rollback not bit-identical: " + diff);
            }
          }
        } else {
          const VertexId v = static_cast<VertexId>(rng.UniformInt(n));
          const DcId to =
              static_cast<DcId>(rng.UniformInt(options.num_dcs));
          const DcId from = state.master(v);
          state.SetMaster(v, to);
          legacy_check(move, "after SetMaster");
          if (move % cold_every == 0) cold_check(move, "after SetMaster");
          if (rng.Bernoulli(0.5)) {
            state.SetMaster(v, from);
            ++report.rollbacks;
            const std::string diff = DiffSnapshots(pre, Capture(state));
            if (!diff.empty()) {
              fail(move, "SetMaster rollback not bit-identical: " + diff);
            }
          }
        }
      }

      if (options.invariant_every > 0 &&
          move % options.invariant_every == options.invariant_every - 1) {
        ++report.invariant_checks;
        if (!state.CheckInvariants()) {
          fail(move, "CheckInvariants failed");
        }
      }
    }

    // Sequence postcondition: the surviving state is fully consistent.
    ++report.invariant_checks;
    if (!state.CheckInvariants()) {
      fail(options.moves_per_sequence, "final CheckInvariants failed");
    }
    cold_check(options.moves_per_sequence, "sequence end");
  }
  return report;
}

}  // namespace check
}  // namespace rlcut
