#ifndef RLCUT_CHECK_NET_ORACLE_H_
#define RLCUT_CHECK_NET_ORACLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.h"

namespace rlcut {
namespace check {

/// Network chaos audit (docs/distributed.md): full training sessions
/// feeding a remote PlanReplica through the src/net transport, under
/// randomized fault schedules over the net.* sites (connect failures,
/// send failures, recv timeouts, frame corruption, disconnects).
///
/// Every session trains the same seeded problem twice — once without a
/// sink for the reference masters, once against a ReplicaServer behind
/// a FlakyPipe (every 4th session: real TCP loopback) — and asserts:
///
///   * the trainer's own trajectory is bit-identical to the reference
///     (the sink is write-only; no fault may leak into training), and
///   * the run ends in one of exactly two states: the remote replica
///     is bit-identical to the trainer's final masters with an OK
///     replica_status (faults masked by retry/reconnect/resync), or
///     replica_status is a clean non-OK Status (fail closed). A crash,
///     hang, or OK-status-with-divergent-replica is a failure.
///
/// Every 3rd session additionally runs the kill/restart lane with no
/// faults armed: mid-run, the server is killed and replaced by a fresh
/// empty one (as a restarted worker process would be). The client must
/// detect the version gap at the handshake and heal via snapshot
/// resync to a bit-identical replica with an OK status — that lane
/// accepts nothing weaker.
struct NetOracleOptions {
  int num_sessions = 16;
  VertexId num_vertices = 192;
  uint64_t num_edges = 1152;
  int num_dcs = 4;
  int max_steps = 5;
  int batch_size = 16;
  int num_threads = 3;
  uint64_t seed = 1;
};

struct NetOracleReport {
  uint64_t sessions = 0;
  /// Faulted runs that ended OK with a bit-identical remote replica.
  uint64_t identical = 0;
  /// Faulted runs that failed closed with a clean non-OK status.
  uint64_t fail_closed = 0;
  /// Runs that reported degraded operation mid-run yet still ended
  /// identical (the retry/resync machinery healed the link).
  uint64_t degraded_heals = 0;
  /// Kill/restart-lane sessions that resynced to bit-identical.
  uint64_t kill_resyncs = 0;
  /// Sessions driven over real TCP loopback (the rest use FlakyPipe).
  uint64_t tcp_sessions = 0;
  /// Total injected fires across all sessions.
  uint64_t fires = 0;
  std::vector<std::string> failures;

  std::string Summary() const;
};

NetOracleReport RunNetOracle(const NetOracleOptions& options);

}  // namespace check
}  // namespace rlcut

#endif  // RLCUT_CHECK_NET_ORACLE_H_
