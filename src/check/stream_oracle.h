#ifndef RLCUT_CHECK_STREAM_ORACLE_H_
#define RLCUT_CHECK_STREAM_ORACLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.h"

namespace rlcut {
namespace check {

/// Streaming-session oracle (docs/streaming.md): seeded end-to-end
/// sessions driving a diurnal edge stream through an RLCutSession, with
/// three lanes per session that must all agree:
///
///   * reference — edges arrive in order; every publish's migration
///     delta vs the previous published plan is independently re-tallied
///     (PlanMigration over a cold-built graph) and must respect the
///     session's migration budget exactly;
///   * shuffle — the same events arrive shuffled within each batch
///     window, with duplicated sequence ids and early pushes from the
///     next window; StreamBuffer::Cut must yield the same micro-batches
///     and therefore bit-identical published plans;
///   * resume — the session is checkpointed mid-stream, dropped,
///     restored from the file, and driven to the end; every post-resume
///     publish must be bit-identical to the reference lane.
///
/// The final live graph must equal a cold application of the same edits
/// (base + stream) edge-for-edge, and the final state must pass
/// CheckInvariants. Any divergence, invariant violation, budget
/// overshoot or unexpected Status is a failure.
struct StreamOracleOptions {
  int num_sessions = 16;
  VertexId num_vertices = 160;
  /// Total edges in the temporal stream; half seed the base graph, the
  /// rest arrive over `num_batches` micro-batches.
  uint64_t num_edges = 960;
  int num_dcs = 4;
  int num_batches = 8;
  /// Per-publish migration budget.
  uint64_t budget_vertices = 20;
  double budget_bytes = 256 * 1024.0;
  /// Training depth per re-optimization pass.
  int max_steps = 3;
  uint64_t seed = 1;
};

struct StreamOracleReport {
  uint64_t sessions = 0;
  /// Published plans across all reference lanes.
  uint64_t publishes = 0;
  /// Publishes where the budget clamp actually reverted moves.
  uint64_t budget_clamped = 0;
  /// Mid-stream checkpoint/restore continuations that matched.
  uint64_t resumes = 0;
  std::vector<std::string> failures;

  std::string Summary() const;
};

StreamOracleReport RunStreamOracle(const StreamOracleOptions& options);

}  // namespace check
}  // namespace rlcut

#endif  // RLCUT_CHECK_STREAM_ORACLE_H_
