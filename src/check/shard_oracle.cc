#include "check/shard_oracle.h"

#include <array>
#include <ios>
#include <memory>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "cloud/topology.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "partition/partition_state.h"
#include "partition/workload.h"
#include "rlcut/checkpoint.h"
#include "rlcut/trainer.h"

namespace rlcut {
namespace check {
namespace {

// Dyadic per-DC parameters, same discipline as the incremental oracle
// (check/differential_oracle.cc): every constant is a small multiple of
// a power of two so all additively maintained aggregates stay exact.
const double kShardUplinkGbps[] = {0.5, 0.25, 1.0, 0.125,
                                   2.0, 0.5,  0.25, 1.0};
const double kShardDownlinkGbps[] = {1.0, 0.5, 2.0, 0.25,
                                     4.0, 1.0, 0.5,  2.0};
const double kShardUploadPrice[] = {0.0625, 0.125,  0.03125, 0.25,
                                    0.09375, 0.0625, 0.5,     0.125};

Topology MakeShardTopology(int num_dcs) {
  std::vector<DataCenter> dcs(num_dcs);
  for (int r = 0; r < num_dcs; ++r) {
    dcs[r].name = "dc" + std::to_string(r);
    dcs[r].uplink_gbps = kShardUplinkGbps[r % 8];
    dcs[r].downlink_gbps = kShardDownlinkGbps[r % 8];
    dcs[r].upload_price = kShardUploadPrice[r % 8];
  }
  return Topology(std::move(dcs));
}

Workload ShardWorkload() {
  Workload w;
  w.name = "shard-oracle-dyadic";
  w.apply_base_bytes = 8;
  w.apply_bytes_per_out_edge = 0.25;
  w.gather_base_bytes = 4;
  w.activity = {1.0, 0.5, 0.25, 0.25};
  return w;
}

Graph MakeShardGraph(int kind, VertexId n, uint64_t m, uint64_t seed) {
  switch (kind) {
    case 0: {
      PowerLawOptions o;
      o.num_vertices = n;
      o.num_edges = m;
      o.exponent = 2.0;
      o.seed = seed;
      return GeneratePowerLaw(o);
    }
    case 1:
      return GenerateErdosRenyi(n, m, seed);
    default: {
      RmatOptions o;
      o.num_vertices = n;
      o.num_edges = m;
      o.seed = seed;
      return GenerateRmat(o);
    }
  }
}

// One deterministic problem instance, rebuilt state-by-state for every
// trainer run so runs never share mutable state.
struct Instance {
  Topology topology;
  Graph graph;
  std::vector<DcId> locations;
  std::vector<double> sizes;
  PartitionConfig config;

  Instance(const ShardOracleOptions& options, int kind, uint64_t seed)
      : topology(MakeShardTopology(options.num_dcs)) {
    graph = MakeShardGraph(kind, options.num_vertices, options.num_edges,
                           seed);
    locations.resize(graph.num_vertices());
    sizes.resize(graph.num_vertices());
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      locations[v] = static_cast<DcId>(v % options.num_dcs);
      // Whole-GB-fraction dyadic input sizes.
      sizes[v] = 1.0 + 0.25 * static_cast<double>(v % 8);
    }
    config.model = ComputeModel::kHybridCut;
    config.theta = PartitionState::AutoTheta(graph);
    config.workload = ShardWorkload();
  }

  std::unique_ptr<PartitionState> MakeState() const {
    auto state = std::make_unique<PartitionState>(&graph, &topology,
                                                  &locations, &sizes, config);
    state->ResetDerived(locations);
    return state;
  }

  std::vector<VertexId> AllVertices() const {
    std::vector<VertexId> all(graph.num_vertices());
    std::iota(all.begin(), all.end(), 0u);
    return all;
  }
};

RLCutOptions TrainerOptions(const ShardOracleOptions& options,
                            ActionSelection selection, int num_shards,
                            int num_threads, uint64_t seed) {
  RLCutOptions topts;
  topts.max_steps = options.max_steps;
  topts.batch_size = options.batch_size;
  topts.num_threads = num_threads;
  topts.num_shards = num_shards;
  topts.selection = selection;
  topts.seed = seed;
  // Deterministic visit budget: wall-clock sampling (Eq. 14) is the
  // one nondeterministic input to a step, so the oracle never uses it.
  topts.agent_visit_budget =
      static_cast<int64_t>(options.num_vertices) * 4;
  topts.convergence_epsilon = 1e-12;
  return topts;
}

// Everything a lane compares between two runs.
struct RunOutcome {
  std::vector<DcId> masters;
  Objective objective;
  std::vector<std::array<uint64_t, 4>> rng_states;
  uint64_t decisions = 0;
};

RunOutcome RunTrainer(const Instance& instance, const RLCutOptions& topts) {
  RunOutcome outcome;
  auto state = instance.MakeState();
  AutomatonPool pool(instance.graph.num_vertices(),
                     instance.topology.num_dcs(), topts);
  TrainerSession session;
  RLCutTrainer trainer(topts);
  const TrainResult result =
      trainer.Train(state.get(), instance.AllVertices(), &pool, &session);
  outcome.masters = state->masters();
  outcome.objective = result.final_objective;
  outcome.rng_states = session.rng_states;
  for (const StepStats& step : result.steps) {
    outcome.decisions += step.num_agents;
  }
  return outcome;
}

std::string Hex(double x) {
  std::ostringstream out;
  out << std::hexfloat << x << std::defaultfloat << " (" << x << ")";
  return out.str();
}

bool SameObjective(const Objective& a, const Objective& b) {
  return a.transfer_seconds == b.transfer_seconds &&
         a.cost_dollars == b.cost_dollars &&
         a.smooth_seconds == b.smooth_seconds;
}

std::string DiffOutcome(const RunOutcome& a, const RunOutcome& b,
                        bool compare_rng) {
  std::ostringstream out;
  if (a.masters != b.masters) {
    size_t diffs = 0;
    VertexId first = 0;
    for (VertexId v = 0; v < a.masters.size() && v < b.masters.size();
         ++v) {
      if (a.masters[v] != b.masters[v]) {
        if (diffs == 0) first = v;
        ++diffs;
      }
    }
    out << " masters differ at " << diffs << " vertices (first v=" << first
        << ": " << (first < a.masters.size() ? a.masters[first] : -1)
        << " vs " << (first < b.masters.size() ? b.masters[first] : -1)
        << ")";
  }
  if (!SameObjective(a.objective, b.objective)) {
    out << " objective transfer " << Hex(a.objective.transfer_seconds)
        << " vs " << Hex(b.objective.transfer_seconds) << ", cost "
        << Hex(a.objective.cost_dollars) << " vs "
        << Hex(b.objective.cost_dollars);
  }
  if (compare_rng && a.rng_states != b.rng_states) {
    out << " per-shard rng states differ";
  }
  return out.str();
}

bool SameOutcome(const RunOutcome& a, const RunOutcome& b,
                 bool compare_rng) {
  return a.masters == b.masters && SameObjective(a.objective, b.objective) &&
         (!compare_rng || a.rng_states == b.rng_states);
}

}  // namespace

std::string ShardOracleReport::Summary() const {
  std::ostringstream out;
  out << "shard oracle: " << instances << " instances, " << runs
      << " training runs, " << move_decisions << " move decisions ("
      << thread_lane_checks << " thread-invariance, " << shard_lane_checks
      << " shard-vs-single, " << resume_lane_checks
      << " cross-thread resume checks), " << failures.size() << " failures";
  return out.str();
}

ShardOracleReport RunShardOracle(const ShardOracleOptions& options) {
  ShardOracleReport report;
  constexpr int kShardCounts[] = {2, 3, 4, 8};
  constexpr ActionSelection kAllModes[] = {
      ActionSelection::kUcbBlend, ActionSelection::kProbability,
      ActionSelection::kUcbScore, ActionSelection::kGreedy};
  constexpr const char* kAllModeNames[] = {"ucb_blend", "probability",
                                           "ucb_score", "greedy"};
  constexpr ActionSelection kDeterministicModes[] = {
      ActionSelection::kUcbBlend, ActionSelection::kUcbScore,
      ActionSelection::kGreedy};
  constexpr const char* kDeterministicModeNames[] = {"ucb_blend",
                                                     "ucb_score", "greedy"};

  for (int i = 0; i < options.num_instances; ++i) {
    if (static_cast<int>(report.failures.size()) >= options.max_failures) {
      break;
    }
    const uint64_t seed = options.seed + static_cast<uint64_t>(i) * 131;
    const int kind = i % 3;
    const int shards = kShardCounts[i % 4];
    const Instance instance(options, kind, seed);
    ++report.instances;
    auto fail = [&](const std::string& lane, const std::string& message) {
      std::ostringstream out;
      out << "instance " << i << " (graph kind " << kind << ", " << shards
          << " shards, seed " << seed << ") " << lane << ":" << message;
      report.failures.push_back(out.str());
    };

    // ---- Lane A: thread invariance at a fixed shard count. ----------
    // All selection modes, including kProbability (the only one that
    // draws from the per-shard PRNGs); the final RNG states must match
    // too, or a resumed run would diverge later even though the final
    // plan agrees now.
    {
      const ActionSelection mode = kAllModes[i % 4];
      const std::string lane =
          std::string("thread-invariance[") + kAllModeNames[i % 4] + "]";
      const RunOutcome reference = RunTrainer(
          instance, TrainerOptions(options, mode, shards, 1, seed));
      ++report.runs;
      for (int threads : {2, 5}) {
        const RunOutcome other = RunTrainer(
            instance, TrainerOptions(options, mode, shards, threads, seed));
        ++report.runs;
        report.move_decisions += other.decisions;
        ++report.thread_lane_checks;
        if (!SameOutcome(reference, other, /*compare_rng=*/true)) {
          fail(lane, " " + std::to_string(threads) +
                         " threads diverged from 1 thread:" +
                         DiffOutcome(reference, other, true));
        }
      }
    }

    // ---- Lane B: sharded vs single-shard, deterministic modes. ------
    // With no PRNG draws, per-vertex automaton updates within a batch
    // commute and the migration stage replays slots in batch order, so
    // the shard count must not change the trajectory either.
    {
      const ActionSelection mode = kDeterministicModes[i % 3];
      const std::string lane = std::string("shard-vs-single[") +
                               kDeterministicModeNames[i % 3] + "]";
      const RunOutcome single = RunTrainer(
          instance, TrainerOptions(options, mode, 1, 2, seed));
      const RunOutcome sharded = RunTrainer(
          instance, TrainerOptions(options, mode, shards, 2, seed));
      report.runs += 2;
      report.move_decisions += sharded.decisions;
      ++report.shard_lane_checks;
      if (!SameOutcome(single, sharded, /*compare_rng=*/false)) {
        fail(lane, " " + std::to_string(shards) +
                       " shards diverged from 1 shard:" +
                       DiffOutcome(single, sharded, false));
      }
    }

    // ---- Lane C: checkpoint resume under a different thread count. --
    {
      const ActionSelection mode = kAllModes[i % 4];
      const std::string lane =
          std::string("cross-thread-resume[") + kAllModeNames[i % 4] + "]";
      const RunOutcome uninterrupted = RunTrainer(
          instance, TrainerOptions(options, mode, shards, 3, seed));
      ++report.runs;

      const RLCutOptions pause_opts =
          TrainerOptions(options, mode, shards, 3, seed);
      auto state = instance.MakeState();
      AutomatonPool pool(instance.graph.num_vertices(),
                         instance.topology.num_dcs(), pause_opts);
      TrainerSession session;
      session.stop_after_step = options.max_steps / 2;
      RLCutTrainer(pause_opts)
          .Train(state.get(), instance.AllVertices(), &pool, &session);
      const TrainerCheckpoint checkpoint =
          CaptureCheckpoint(*state, pool, session, pause_opts.seed);

      // A different host: 1 worker thread instead of 3, same shards.
      const RLCutOptions resume_opts =
          TrainerOptions(options, mode, shards, 1, seed);
      auto resumed_state = instance.MakeState();
      AutomatonPool resumed_pool(instance.graph.num_vertices(),
                                 instance.topology.num_dcs(), resume_opts);
      TrainerSession resumed_session;
      if (Status restored =
              RestoreCheckpoint(checkpoint, resumed_state.get(),
                                &resumed_pool, &resumed_session);
          !restored.ok()) {
        fail(lane, " RestoreCheckpoint: " + restored.ToString());
        continue;
      }
      RLCutTrainer resume_trainer(resume_opts);
      if (Status resumable = resume_trainer.ValidateResume(resumed_session);
          !resumable.ok()) {
        fail(lane, " ValidateResume rejected a same-shard-count resume: " +
                       resumable.ToString());
        continue;
      }
      const TrainResult resumed_result = resume_trainer.Train(
          resumed_state.get(), instance.AllVertices(), &resumed_pool,
          &resumed_session);
      ++report.runs;
      RunOutcome resumed;
      resumed.masters = resumed_state->masters();
      resumed.objective = resumed_result.final_objective;
      resumed.rng_states = resumed_session.rng_states;
      for (const StepStats& step : resumed_result.steps) {
        report.move_decisions += step.num_agents;
      }
      ++report.resume_lane_checks;
      if (!SameOutcome(uninterrupted, resumed, /*compare_rng=*/true)) {
        fail(lane,
             " resumed run diverged from the uninterrupted run:" +
                 DiffOutcome(uninterrupted, resumed, true));
      }
    }
  }
  return report;
}

}  // namespace check
}  // namespace rlcut
