#include "check/invariants.h"

#include <cstdlib>
#include <string>

namespace rlcut {
namespace check {
namespace {

const char kEnvVar[] = "RLCUT_DEBUG_INVARIANTS";

}  // namespace

bool DebugInvariantsEnabled() {
  const char* value = std::getenv(kEnvVar);
  if (value == nullptr || value[0] == '\0') return false;
  return std::string(value) != "0";
}

int DebugInvariantsInterval() {
  const char* value = std::getenv(kEnvVar);
  if (value == nullptr) return 1;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed < 1) return 1;
  return static_cast<int>(parsed);
}

bool ShouldCheckInvariantsAtStep(int step) {
  if (!DebugInvariantsEnabled()) return false;
  return step % DebugInvariantsInterval() == 0;
}

bool MaybeCheckInvariants(const PartitionState& state, int step) {
  if (!ShouldCheckInvariantsAtStep(step)) return true;
  return state.CheckInvariants();
}

}  // namespace check
}  // namespace rlcut
