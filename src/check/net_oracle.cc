#include "check/net_oracle.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <numeric>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "cloud/topology.h"
#include "common/logging.h"
#include "fault/fault.h"
#include "graph/generators.h"
#include "graph/geo.h"
#include "net/replica_service.h"
#include "net/transport.h"
#include "partition/partition_state.h"
#include "rlcut/trainer.h"

namespace rlcut {
namespace check {
namespace {

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct Rng {
  uint64_t state;
  explicit Rng(uint64_t seed) : state(seed) {}
  uint64_t Next() { return Mix64(state++); }
  uint64_t Below(uint64_t n) { return n == 0 ? 0 : Next() % n; }
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }
};

// Same small power-law fixture as the chaos lane.
struct Problem {
  Topology topology;
  Graph graph;
  std::vector<DcId> locations;
  std::vector<double> sizes;
  PartitionConfig config;

  Problem(const NetOracleOptions& options, uint64_t seed)
      : topology(MakeEc2Topology(options.num_dcs, Heterogeneity::kMedium)) {
    PowerLawOptions gen;
    gen.num_vertices = options.num_vertices;
    gen.num_edges = options.num_edges;
    gen.seed = seed;
    graph = GeneratePowerLaw(gen);
    GeoLocatorOptions geo;
    geo.num_dcs = options.num_dcs;
    geo.seed = seed + 101;
    locations = AssignGeoLocations(graph, geo);
    sizes = AssignInputSizes(graph);
    config.model = ComputeModel::kHybridCut;
    config.theta = PartitionState::AutoTheta(graph);
    config.workload = Workload::PageRank();
  }

  std::unique_ptr<PartitionState> MakeState() const {
    auto state = std::make_unique<PartitionState>(&graph, &topology,
                                                  &locations, &sizes, config);
    state->ResetDerived(locations);
    return state;
  }

  std::vector<VertexId> AllVertices() const {
    std::vector<VertexId> all(graph.num_vertices());
    std::iota(all.begin(), all.end(), 0u);
    return all;
  }
};

RLCutOptions TrainerOptions(const NetOracleOptions& options, uint64_t seed) {
  RLCutOptions topts;
  topts.max_steps = options.max_steps;
  topts.batch_size = options.batch_size;
  topts.num_threads = options.num_threads;
  topts.seed = seed;
  topts.agent_visit_budget =
      static_cast<int64_t>(options.num_vertices) * 4;
  topts.convergence_epsilon = 1e-12;
  return topts;
}

net::ReplicaClientOptions ClientOptions(uint64_t seed) {
  net::ReplicaClientOptions copts;
  copts.dial_timeout_ms = 200;
  copts.recv_timeout_ms = 100;
  copts.heartbeat_every_pushes = 4;  // Exercise the liveness path often.
  copts.retry.max_attempts = 5;
  copts.retry.initial_backoff_ms = 1;
  copts.retry.max_backoff_ms = 8;
  copts.retry.deadline_seconds = 3;
  copts.retry.seed = seed;
  return copts;
}

// Hosts a ReplicaServer behind either FlakyPipe connections or a real
// TCP listener, serving sequential connections on one background
// thread — the in-process stand-in for the rlcut_replica worker.
class ServerHost {
 public:
  explicit ServerHost(bool use_tcp) : use_tcp_(use_tcp) {
    net::ReplicaServerOptions sopts;
    sopts.idle_timeout_ms = 20;
    server_ = std::make_shared<net::ReplicaServer>(sopts);
    if (use_tcp_) {
      Result<std::unique_ptr<net::TcpListener>> listener =
          net::TcpListener::Listen(0);
      RLCUT_CHECK(listener.ok())
          << "net oracle: " << listener.status().ToString();
      listener_ = std::move(listener.value());
    }
    thread_ = std::thread([this] { Loop(); });
  }

  ~ServerHost() {
    stop_.store(true, std::memory_order_relaxed);
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (active_ != nullptr) active_->Close();
      if (listener_ != nullptr) listener_->Close();
      cv_.notify_all();
    }
    thread_.join();
  }

  net::ReplicaClient::Connector Connector() {
    if (use_tcp_) {
      const std::string endpoint =
          "127.0.0.1:" + std::to_string(listener_->port());
      return net::ReplicaClient::TcpConnector(endpoint, 200);
    }
    return [this]() -> Result<std::unique_ptr<net::Transport>> {
      // FlakyPipe dialing consults the same site DialTcp does, so
      // connect failures are injectable on both transports.
      if (fault::ShouldFire("net.connect_fail")) {
        return Status::IoError("injected connect failure dialing pipe");
      }
      auto ends = net::FlakyPipe::CreatePair();
      {
        std::unique_lock<std::mutex> lock(mu_);
        if (stop_.load(std::memory_order_relaxed)) {
          return Status::IoError("pipe host stopped");
        }
        pending_.push_back(std::move(ends.second));
        cv_.notify_all();
      }
      return std::move(ends.first);
    };
  }

  // The kill/restart lane: drop the live connection and replace the
  // server with a fresh empty one, exactly as a worker process restart
  // would. The client must detect the version gap and snapshot-resync.
  void KillAndRestartServer() {
    std::unique_lock<std::mutex> lock(mu_);
    if (active_ != nullptr) active_->Close();
    net::ReplicaServerOptions sopts;
    sopts.idle_timeout_ms = 20;
    server_ = std::make_shared<net::ReplicaServer>(sopts);
  }

  std::shared_ptr<net::ReplicaServer> server() {
    std::unique_lock<std::mutex> lock(mu_);
    return server_;
  }

 private:
  void Loop() {
    for (;;) {
      std::unique_ptr<net::Transport> conn;
      if (use_tcp_) {
        if (stop_.load(std::memory_order_relaxed)) return;
        Result<std::unique_ptr<net::Transport>> accepted =
            listener_->Accept(20);
        if (!accepted.ok()) continue;  // Timeout or closing listener.
        conn = std::move(accepted.value());
      } else {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] {
          return stop_.load(std::memory_order_relaxed) ||
                 !pending_.empty();
        });
        if (stop_.load(std::memory_order_relaxed)) return;
        conn = std::move(pending_.front());
        pending_.pop_front();
      }
      std::shared_ptr<net::ReplicaServer> server;
      {
        std::unique_lock<std::mutex> lock(mu_);
        server = server_;
        active_ = conn.get();
      }
      // Serve to EOF; errors (injected corruption, disconnects) just
      // end this connection — the client reconnects and resyncs.
      server->ServeConnection(conn.get(), &stop_);
      {
        std::unique_lock<std::mutex> lock(mu_);
        active_ = nullptr;
      }
    }
  }

  const bool use_tcp_;
  std::unique_ptr<net::TcpListener> listener_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::unique_ptr<net::Transport>> pending_;
  std::shared_ptr<net::ReplicaServer> server_;
  net::Transport* active_ = nullptr;
  std::atomic<bool> stop_{false};
};

// A pass-through sink that triggers a server kill/restart right before
// a chosen push — the deterministic "replica died mid-run" event.
class KillAtPushSink : public ReplicaSink {
 public:
  KillAtPushSink(ReplicaSink* inner, ServerHost* host, uint64_t kill_at)
      : inner_(inner), host_(host), kill_at_(kill_at) {}

  Status Begin(const PlanSnapshot& snapshot) override {
    return inner_->Begin(snapshot);
  }
  Status PushDelta(const PlanDelta& delta) override {
    if (++pushes_ == kill_at_) host_->KillAndRestartServer();
    return inner_->PushDelta(delta);
  }
  Status Flush() override { return inner_->Flush(); }
  bool degraded() const override { return inner_->degraded(); }
  uint64_t version() const override { return inner_->version(); }

 private:
  ReplicaSink* inner_;
  ServerHost* host_;
  uint64_t kill_at_;
  uint64_t pushes_ = 0;
};

// 1-3 random rules over the net.* sites. recv_timeout and disconnect
// get bounded fire counts so a worst-case draw cannot park every
// round-trip on its timeout for the whole session.
fault::FaultSchedule RandomNetSchedule(uint64_t seed, Rng* rng) {
  struct Candidate {
    const char* site;
    void (*fill)(fault::FaultRule*, Rng*);
  };
  static const Candidate kCandidates[] = {
      {"net.connect_fail",
       [](fault::FaultRule* r, Rng* g) {
         r->probability = 0.1 + 0.4 * g->NextDouble();
         r->max_fires = 1 + static_cast<int64_t>(g->Below(6));
       }},
      {"net.send_fail",
       [](fault::FaultRule* r, Rng* g) {
         r->probability = 0.05 + 0.25 * g->NextDouble();
       }},
      {"net.recv_timeout",
       [](fault::FaultRule* r, Rng* g) {
         r->probability = 0.05 + 0.25 * g->NextDouble();
         r->max_fires = 1 + static_cast<int64_t>(g->Below(8));
       }},
      {"net.frame_corrupt",
       [](fault::FaultRule* r, Rng* g) {
         r->probability = 0.05 + 0.25 * g->NextDouble();
         r->amount = static_cast<int64_t>(g->Below(64));
       }},
      {"net.disconnect",
       [](fault::FaultRule* r, Rng* g) {
         r->probability = 0.02 + 0.13 * g->NextDouble();
         r->max_fires = 1 + static_cast<int64_t>(g->Below(4));
       }},
  };
  constexpr size_t kNumCandidates =
      sizeof(kCandidates) / sizeof(kCandidates[0]);

  fault::FaultSchedule schedule;
  schedule.seed = seed;
  const size_t num_rules = 1 + rng->Below(3);
  std::vector<bool> used(kNumCandidates, false);
  for (size_t i = 0; i < num_rules; ++i) {
    size_t pick = rng->Below(kNumCandidates);
    while (used[pick]) pick = (pick + 1) % kNumCandidates;
    used[pick] = true;
    fault::FaultRule rule;
    rule.site = kCandidates[pick].site;
    kCandidates[pick].fill(&rule, rng);
    schedule.rules.push_back(rule);
  }
  return schedule;
}

// One training run against a hosted server. Returns through the out
// params; never throws (Train's net path is Status-based throughout).
struct RunOutcome {
  TrainResult result;
  std::vector<DcId> trainer_masters;
  PlanSnapshot server_state;
  uint64_t client_version = 0;
  uint64_t client_fingerprint = 0;
};

RunOutcome RunAgainstHost(const Problem& problem, const RLCutOptions& topts,
                          ServerHost* host, uint64_t client_seed,
                          uint64_t kill_at_push) {
  RunOutcome outcome;
  auto state = problem.MakeState();
  AutomatonPool pool(problem.graph.num_vertices(),
                     problem.topology.num_dcs(), topts);
  net::ReplicaClient client(host->Connector(), ClientOptions(client_seed));
  RLCutTrainer trainer(topts);
  KillAtPushSink killer(&client, host, kill_at_push);
  trainer.SetReplicaSink(kill_at_push > 0
                             ? static_cast<ReplicaSink*>(&killer)
                             : static_cast<ReplicaSink*>(&client));
  outcome.result =
      trainer.Train(state.get(), problem.AllVertices(), &pool);
  outcome.trainer_masters = state->masters();
  outcome.client_version = client.mirror_version();
  outcome.client_fingerprint = client.mirror_fingerprint();
  // Drop the client connection before sampling the server so the
  // serving thread is not mid-apply (ServeConnection locks per frame;
  // after Flush returned OK the server already acked the final state).
  client.CloseConnection();
  outcome.server_state = host->server()->snapshot();
  return outcome;
}

bool ServerMatches(const RunOutcome& outcome) {
  return outcome.server_state.masters == outcome.trainer_masters &&
         outcome.server_state.version == outcome.client_version;
}

}  // namespace

std::string NetOracleReport::Summary() const {
  std::ostringstream out;
  out << "net: " << sessions << " sessions (" << identical
      << " bit-identical, " << fail_closed << " failed closed, "
      << degraded_heals << " degraded-then-healed, " << kill_resyncs
      << " kill resyncs, " << tcp_sessions << " over tcp), " << fires
      << " injected fires, " << failures.size() << " failures";
  return out.str();
}

NetOracleReport RunNetOracle(const NetOracleOptions& options) {
  NetOracleReport report;
  fault::Disarm();
  for (int s = 0; s < options.num_sessions; ++s) {
    const uint64_t session_seed = options.seed + static_cast<uint64_t>(s);
    Rng rng(Mix64(session_seed) ^ 0x2e7c1);
    const Problem problem(options, session_seed);
    const RLCutOptions topts = TrainerOptions(options, session_seed);
    const bool use_tcp = s % 4 == 3;
    ++report.sessions;
    if (use_tcp) ++report.tcp_sessions;

    auto fail = [&](const std::string& message) {
      fault::Disarm();
      std::ostringstream out;
      out << "session " << s << " (seed " << session_seed
          << (use_tcp ? ", tcp" : ", pipe") << "): " << message;
      report.failures.push_back(out.str());
    };

    // Reference: the same seeded run with no sink attached.
    std::vector<DcId> reference;
    {
      auto state = problem.MakeState();
      AutomatonPool pool(problem.graph.num_vertices(),
                         problem.topology.num_dcs(), topts);
      RLCutTrainer(topts).Train(state.get(), problem.AllVertices(), &pool);
      reference = state->masters();
    }

    // Faulted lane.
    {
      ServerHost host(use_tcp);
      const fault::FaultSchedule schedule =
          RandomNetSchedule(session_seed, &rng);
      fault::Arm(schedule);
      RunOutcome outcome;
      try {
        outcome = RunAgainstHost(problem, topts, &host, session_seed,
                                 /*kill_at_push=*/0);
      } catch (const std::exception& e) {
        fail(std::string("training escaped with an exception under [") +
             schedule.ToSpec() + "]: " + e.what());
        continue;
      }
      report.fires += fault::TotalFires();
      fault::Disarm();
      if (outcome.trainer_masters != reference) {
        fail("sink faults perturbed the training trajectory under [" +
             schedule.ToSpec() + "]");
        continue;
      }
      if (outcome.result.replica_status.ok()) {
        if (!ServerMatches(outcome)) {
          fail("replica_status is OK but the remote replica diverged "
               "(silent divergence) under [" +
               schedule.ToSpec() + "]");
          continue;
        }
        ++report.identical;
        if (outcome.result.replica_degraded) ++report.degraded_heals;
      } else {
        if (outcome.result.replica_status.message().empty()) {
          fail("fail-closed status carries no message under [" +
               schedule.ToSpec() + "]");
          continue;
        }
        ++report.fail_closed;
      }
    }

    // Kill/restart lane: no faults armed; a mid-run server restart
    // must be healed by snapshot resync, bit-identically.
    if (s % 3 == 2) {
      ServerHost host(use_tcp);
      const uint64_t kill_at = 2 + rng.Below(4);
      const RunOutcome outcome = RunAgainstHost(
          problem, topts, &host, session_seed, /*kill_at_push=*/kill_at);
      if (outcome.trainer_masters != reference) {
        fail("kill lane perturbed the training trajectory");
        continue;
      }
      if (!outcome.result.replica_status.ok()) {
        fail("kill lane failed to resync after server restart: " +
             outcome.result.replica_status.ToString());
        continue;
      }
      if (!ServerMatches(outcome)) {
        fail("kill lane ended with a divergent replica after resync");
        continue;
      }
      ++report.kill_resyncs;
    }
  }
  fault::Disarm();
  return report;
}

}  // namespace check
}  // namespace rlcut
