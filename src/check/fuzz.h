#ifndef RLCUT_CHECK_FUZZ_H_
#define RLCUT_CHECK_FUZZ_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace rlcut {
namespace check {

/// The loaders that parse untrusted bytes.
enum class LoaderKind {
  kCheckpoint,   // LoadTrainerCheckpoint ("RLCUTCKP" binary format)
  kPlan,         // LoadPlan ("rlcut-plan v1" text format)
  kNetSchedule,  // LoadTopologySchedule ("rlcut-net-schedule v1" text)
  kRlgGraph,     // MmapGraph::Open ("RLCUTRLG" mapped dual-CSR format)
  kNetFrame,     // FrameDecoder + replica protocol payloads ("RLNF"
                 // wire stream; bytes are fed directly, not via a file)
};

const char* LoaderName(LoaderKind kind);

/// One corpus input: a byte string plus whether the loader must accept
/// it. Every corpus carries valid files, truncations, bit flips and
/// adversarial count fields (the allocation-bomb shapes the loaders are
/// hardened against).
struct CorpusCase {
  std::string name;
  std::string bytes;
  bool expect_ok = false;
};

/// The deterministic seed corpus for a loader.
std::vector<CorpusCase> BuildSeedCorpus(LoaderKind kind);

/// Writes `bytes` to a scratch file and runs the loader on it. For
/// accepted checkpoint/plan inputs, additionally round-trips the loaded
/// value through save+load and reports a mismatch as kInternal.
Status RunLoaderOnBytes(LoaderKind kind, const std::string& bytes);

struct FuzzReport {
  uint64_t cases = 0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  std::vector<std::string> failures;

  bool ok() const { return failures.empty(); }
  std::string Summary() const;
};

/// Replays the seed corpus and checks every accept/reject expectation.
FuzzReport ReplayCorpus(LoaderKind kind);

/// Deterministic structure-aware fuzzing: mutates corpus seeds
/// (truncate / bit-flip / splice / integer overwrite; checkpoint
/// mutants get their checksum re-fixed half the time so mutations reach
/// the payload decoder) and feeds them to the loader. The invariant is
/// "clean Status or clean accept, never a crash or an allocation bomb";
/// accepted inputs are additionally round-trip checked.
FuzzReport RunLoaderFuzz(LoaderKind kind, int iterations, uint64_t seed);

}  // namespace check
}  // namespace rlcut

#endif  // RLCUT_CHECK_FUZZ_H_
