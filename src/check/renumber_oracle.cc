#include "check/renumber_oracle.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <ios>
#include <sstream>
#include <string>
#include <vector>

#include "cloud/topology.h"
#include "common/random.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/rlg.h"
#include "graph/transform.h"
#include "partition/partition_state.h"
#include "partition/plan_io.h"
#include "partition/workload.h"
#include "rlcut/rlcut_partitioner.h"

namespace rlcut {
namespace check {
namespace {

// Dyadic per-DC parameters, same discipline as the incremental oracle
// (check/differential_oracle.cc).
const double kUplinkGbps[] = {0.25, 0.5, 0.125, 1.0, 0.5, 0.25, 2.0, 0.125};
const double kDownlinkGbps[] = {0.5, 1.0, 0.25, 2.0, 1.0, 0.5, 4.0, 0.25};
const double kUploadPrice[] = {0.125,   0.0625, 0.25,   0.03125,
                               0.09375, 0.5,    0.0625, 0.25};

Topology MakeRenumberTopology(int num_dcs) {
  std::vector<DataCenter> dcs(num_dcs);
  for (int r = 0; r < num_dcs; ++r) {
    dcs[r].name = "dc" + std::to_string(r);
    dcs[r].uplink_gbps = kUplinkGbps[r % 8];
    dcs[r].downlink_gbps = kDownlinkGbps[r % 8];
    dcs[r].upload_price = kUploadPrice[r % 8];
  }
  return Topology(std::move(dcs));
}

Workload RenumberWorkload() {
  Workload w;
  w.name = "renumber-oracle-dyadic";
  w.apply_base_bytes = 8;
  w.apply_bytes_per_out_edge = 0.25;
  w.gather_base_bytes = 4;
  w.activity = {1.0, 0.5, 0.25, 0.25};
  return w;
}

Graph MakeRenumberGraph(int kind, VertexId n, uint64_t m, uint64_t seed) {
  switch (kind) {
    case 0: {
      PowerLawOptions o;
      o.num_vertices = n;
      o.num_edges = m;
      o.exponent = 2.0;
      o.seed = seed;
      return GeneratePowerLaw(o);
    }
    case 1:
      return GenerateErdosRenyi(n, m, seed);
    default: {
      RmatOptions o;
      o.num_vertices = n;
      o.num_edges = m;
      o.seed = seed;
      return GenerateRmat(o);
    }
  }
}

std::string ScratchPath() {
  static std::atomic<uint64_t> counter{0};
  const uint64_t id = counter.fetch_add(1);
  return (std::filesystem::temp_directory_path() /
          ("rlcut_renumber_" + std::to_string(::getpid()) + "_" +
           std::to_string(id) + ".rlg"))
      .string();
}

std::string Hex(double x) {
  std::ostringstream out;
  out << std::hexfloat << x << std::defaultfloat << " (" << x << ")";
  return out.str();
}

bool SameObjective(const Objective& a, const Objective& b) {
  return a.transfer_seconds == b.transfer_seconds &&
         a.cost_dollars == b.cost_dollars &&
         a.smooth_seconds == b.smooth_seconds;
}

std::string DiffObjective(const Objective& a, const Objective& b) {
  std::ostringstream out;
  if (a.transfer_seconds != b.transfer_seconds) {
    out << " transfer " << Hex(a.transfer_seconds) << " vs "
        << Hex(b.transfer_seconds);
  }
  if (a.cost_dollars != b.cost_dollars) {
    out << " cost " << Hex(a.cost_dollars) << " vs " << Hex(b.cost_dollars);
  }
  if (a.smooth_seconds != b.smooth_seconds) {
    out << " smooth " << Hex(a.smooth_seconds) << " vs "
        << Hex(b.smooth_seconds);
  }
  return out.str();
}

// One mirrored instance: the original dyadic problem and the same
// problem relabeled by `perm`, with every per-vertex attribute carried
// through the permutation.
struct MirroredInstance {
  Topology topology;
  Graph original;
  Graph reordered;
  VertexPermutation perm;
  std::vector<EdgeId> old_edge_of_new;
  std::vector<EdgeId> new_edge_of_old;
  std::vector<DcId> locations;
  std::vector<DcId> locations_reordered;
  std::vector<double> sizes;
  std::vector<double> sizes_reordered;
  PartitionConfig config;

  MirroredInstance(const RenumberOracleOptions& options, int graph_kind,
                   VertexOrderKind order, ComputeModel model, Rng* rng,
                   uint64_t graph_seed)
      : topology(MakeRenumberTopology(options.num_dcs)) {
    original = MakeRenumberGraph(graph_kind, options.num_vertices,
                                 options.num_edges, graph_seed);
    perm = BuildVertexOrder(original, order);
    reordered = ReorderVertices(original, perm, &old_edge_of_new);
    new_edge_of_old.resize(old_edge_of_new.size());
    for (EdgeId e = 0; e < old_edge_of_new.size(); ++e) {
      new_edge_of_old[old_edge_of_new[e]] = e;
    }
    const VertexId n = original.num_vertices();
    locations.resize(n);
    sizes.resize(n);
    for (VertexId v = 0; v < n; ++v) {
      locations[v] = static_cast<DcId>(rng->UniformInt(options.num_dcs));
      // Whole-GB dyadic input sizes (see differential_oracle.cc).
      sizes[v] = static_cast<double>(1 + rng->UniformInt(8)) * 1e9;
    }
    locations_reordered = PermuteVertexValues(locations, perm);
    sizes_reordered = PermuteVertexValues(sizes, perm);
    config.model = model;
    config.workload = RenumberWorkload();
    if (model == ComputeModel::kHybridCut) {
      // Computed on the original graph and shared: AutoTheta is a
      // degree statistic, but pinning one value keeps the mirrored
      // states trivially identical in configuration.
      config.theta = PartitionState::AutoTheta(original, 0.1);
    }
  }
};

}  // namespace

std::string RenumberOracleReport::Summary() const {
  std::ostringstream out;
  out << "renumber oracle: " << instances << " instances, "
      << structure_checks << " structure checks, " << mirrored_evals
      << " mirrored evals, " << mirrored_moves << " mirrored moves, "
      << mapback_checks << " map-back checks, " << mmap_checks
      << " mmap checks, " << failures.size() << " failures";
  return out.str();
}

RenumberOracleReport RunRenumberOracle(
    const RenumberOracleOptions& options) {
  RenumberOracleReport report;
  Rng rng(options.seed != 0 ? options.seed : 1);
  const VertexOrderKind kOrders[] = {VertexOrderKind::kDegree,
                                     VertexOrderKind::kLocality};
  const ComputeModel kModels[] = {ComputeModel::kHybridCut,
                                  ComputeModel::kEdgeCut,
                                  ComputeModel::kVertexCut};

  for (int inst = 0; inst < options.num_instances; ++inst) {
    if (report.failures.size() >=
        static_cast<size_t>(options.max_failures)) {
      break;
    }
    // Coprime-ish cycles: six instances already cover every model and
    // both orders, so the audit tool's small defaults still exercise
    // the explicit-placement paths.
    const int graph_kind = (inst / 3) % 3;
    const VertexOrderKind order = kOrders[inst % 2];
    const ComputeModel model = kModels[inst % 3];
    ++report.instances;
    const std::string tag =
        "instance " + std::to_string(inst) + " (graph " +
        std::to_string(graph_kind) + ", order " +
        std::string(VertexOrderKindName(order)) + ", model " +
        std::to_string(static_cast<int>(model)) + ")";
    auto fail = [&](const std::string& what) {
      report.failures.push_back(tag + ": " + what);
    };

    MirroredInstance mi(options, graph_kind, order, model, &rng,
                        options.seed + 977 * inst + 13);
    const VertexId n = mi.original.num_vertices();
    const EdgeId m = mi.original.num_edges();
    const int num_dcs = options.num_dcs;

    // ---- Lane 1: structure. ------------------------------------------
    {
      const Result<VertexPermutation> checked =
          PermutationFromNewOfOld(mi.perm.new_of_old);
      if (!checked.ok()) {
        fail("permutation not a bijection: " +
             checked.status().ToString());
        continue;
      }
      bool structure_ok = true;
      for (VertexId v = 0; v < n && structure_ok; ++v) {
        const VertexId nv = mi.perm.new_of_old[v];
        if (mi.reordered.OutDegree(nv) != mi.original.OutDegree(v) ||
            mi.reordered.InDegree(nv) != mi.original.InDegree(v)) {
          fail("degree mismatch at original vertex " + std::to_string(v));
          structure_ok = false;
        }
      }
      for (EdgeId e = 0; e < m && structure_ok; ++e) {
        const EdgeId old_e = mi.old_edge_of_new[e];
        if (old_e >= m ||
            mi.perm.new_of_old[mi.original.EdgeSource(old_e)] !=
                mi.reordered.EdgeSource(e) ||
            mi.perm.new_of_old[mi.original.EdgeTarget(old_e)] !=
                mi.reordered.EdgeTarget(e)) {
          fail("edge map-back mismatch at reordered edge " +
               std::to_string(e));
          structure_ok = false;
        }
      }
      ++report.structure_checks;
      if (!structure_ok) continue;
    }

    // ---- Lane 2: evaluation invariance under mirrored mutation. ------
    const bool derived = model != ComputeModel::kVertexCut;
    PartitionState state_orig(&mi.original, &mi.topology, &mi.locations,
                              &mi.sizes, mi.config);
    PartitionState state_reord(&mi.reordered, &mi.topology,
                               &mi.locations_reordered,
                               &mi.sizes_reordered, mi.config);
    {
      std::vector<DcId> masters(n);
      for (VertexId v = 0; v < n; ++v) {
        masters[v] = static_cast<DcId>(rng.UniformInt(num_dcs));
      }
      const std::vector<DcId> masters_reordered =
          PermuteVertexValues(masters, mi.perm);
      if (derived) {
        state_orig.ResetDerived(masters);
        state_reord.ResetDerived(masters_reordered);
      } else {
        std::vector<DcId> edge_dcs(m);
        for (EdgeId e = 0; e < m; ++e) {
          edge_dcs[e] = static_cast<DcId>(rng.UniformInt(num_dcs));
        }
        std::vector<DcId> edge_dcs_reordered(m);
        for (EdgeId e = 0; e < m; ++e) {
          edge_dcs_reordered[mi.new_edge_of_old[e]] = edge_dcs[e];
        }
        state_orig.ResetWithPlacement(masters, edge_dcs);
        state_reord.ResetWithPlacement(masters_reordered,
                                       edge_dcs_reordered);
      }
    }

    EvalScratch scratch_orig;
    EvalScratch scratch_reord;
    Objective evals_orig[kMaxDataCenters];
    Objective evals_reord[kMaxDataCenters];
    auto compare_states = [&](const std::string& when) {
      if (!SameObjective(state_orig.CurrentObjective(),
                         state_reord.CurrentObjective())) {
        fail(when + ": objective" +
             DiffObjective(state_orig.CurrentObjective(),
                           state_reord.CurrentObjective()));
        return false;
      }
      if (state_orig.MoveCost() != state_reord.MoveCost()) {
        fail(when + ": move_cost " + Hex(state_orig.MoveCost()) + " vs " +
             Hex(state_reord.MoveCost()));
        return false;
      }
      if (state_orig.WanBytesPerIteration() !=
          state_reord.WanBytesPerIteration()) {
        fail(when + ": wan_bytes " +
             Hex(state_orig.WanBytesPerIteration()) + " vs " +
             Hex(state_reord.WanBytesPerIteration()));
        return false;
      }
      return true;
    };

    bool lane_ok = compare_states("initial state");
    // Mirrored batched evaluations on a random vertex (or edge) sample.
    const int evals =
        std::min<int>(options.evals_per_instance, static_cast<int>(n));
    for (int i = 0; i < evals && lane_ok; ++i) {
      if (derived) {
        const VertexId v = static_cast<VertexId>(rng.UniformInt(n));
        state_orig.EvaluateMoveAll(v, &scratch_orig, evals_orig);
        state_reord.EvaluateMoveAll(mi.perm.new_of_old[v], &scratch_reord,
                                    evals_reord);
      } else {
        const EdgeId e = rng.UniformInt(m);
        state_orig.EvaluatePlaceEdgeAll(e, &scratch_orig, evals_orig);
        state_reord.EvaluatePlaceEdgeAll(mi.new_edge_of_old[e],
                                         &scratch_reord, evals_reord);
      }
      for (int r = 0; r < num_dcs; ++r) {
        if (!SameObjective(evals_orig[r], evals_reord[r])) {
          fail("mirrored eval " + std::to_string(i) + " dc " +
               std::to_string(r) +
               DiffObjective(evals_orig[r], evals_reord[r]));
          lane_ok = false;
          break;
        }
      }
      ++report.mirrored_evals;
    }
    // Mirrored mutating moves.
    for (int mv = 0; mv < options.moves_per_instance && lane_ok; ++mv) {
      const DcId to = static_cast<DcId>(rng.UniformInt(num_dcs));
      if (derived) {
        const VertexId v = static_cast<VertexId>(rng.UniformInt(n));
        state_orig.MoveMaster(v, to);
        state_reord.MoveMaster(mi.perm.new_of_old[v], to);
      } else if (mv % 2 == 0) {
        const EdgeId e = rng.UniformInt(m);
        state_orig.PlaceEdge(e, to);
        state_reord.PlaceEdge(mi.new_edge_of_old[e], to);
      } else {
        const VertexId v = static_cast<VertexId>(rng.UniformInt(n));
        state_orig.SetMaster(v, to);
        state_reord.SetMaster(mi.perm.new_of_old[v], to);
      }
      ++report.mirrored_moves;
      if ((mv & 7) == 7) {
        lane_ok = compare_states("after move " + std::to_string(mv));
      }
    }
    if (lane_ok) lane_ok = compare_states("final state");
    if (!lane_ok) continue;

    // ---- Lane 3: plan map-back. --------------------------------------
    {
      PartitionPlan plan;
      Objective produced;
      if (model == ComputeModel::kHybridCut) {
        // Train on the reordered instance; the trajectory is the
        // reordered instance's own (see header), but the resulting
        // plan, mapped back, must price identically on the original.
        PartitionerContext ctx;
        ctx.graph = &mi.reordered;
        ctx.topology = &mi.topology;
        ctx.locations = &mi.locations_reordered;
        ctx.input_sizes = &mi.sizes_reordered;
        ctx.theta = mi.config.theta;
        ctx.workload = mi.config.workload;
        ctx.seed = options.seed + inst;
        RLCutOptions train_opt;
        train_opt.max_steps = options.max_steps;
        train_opt.fixed_sample_rate = 0.5;
        train_opt.convergence_epsilon = 0;
        const RLCutRunOutput out = RunRLCut(ctx, train_opt);
        plan = ExtractPlan(out.state);
        produced = out.state.CurrentObjective();
      } else {
        plan = ExtractPlan(state_reord);
        produced = state_reord.CurrentObjective();
      }
      // Map the plan back to original ids.
      plan.masters = UnpermuteVertexValues(plan.masters, mi.perm);
      if (!plan.edge_dcs.empty()) {
        std::vector<DcId> edge_dcs(m);
        for (EdgeId e = 0; e < m; ++e) {
          edge_dcs[mi.old_edge_of_new[e]] = plan.edge_dcs[e];
        }
        plan.edge_dcs = std::move(edge_dcs);
      }
      PartitionState cold(&mi.original, &mi.topology, &mi.locations,
                          &mi.sizes, mi.config);
      if (Status s = ApplyPlan(plan, &cold); !s.ok()) {
        fail("map-back apply: " + s.ToString());
        continue;
      }
      if (!SameObjective(cold.CurrentObjective(), produced)) {
        fail("map-back objective" +
             DiffObjective(cold.CurrentObjective(), produced));
        continue;
      }
      ++report.mapback_checks;
    }

    // ---- Lane 4: mmap round-trip. ------------------------------------
    {
      const std::string path = ScratchPath();
      // mi.reordered is already relabeled, so pass no permutation (the
      // writer's perm argument would relabel a second time) and record
      // the original ids explicitly.
      if (Status s =
              WriteRlgFile(mi.reordered, nullptr, mi.perm.old_of_new, path);
          !s.ok()) {
        fail("rlg write: " + s.ToString());
        continue;
      }
      MmapGraph::Options open_opt;
      open_opt.validate_structure = true;
      Result<MmapGraph> mapped = MmapGraph::Open(path, open_opt);
      if (!mapped.ok()) {
        std::remove(path.c_str());
        fail("rlg open: " + mapped.status().ToString());
        continue;
      }
      bool mmap_ok = true;
      const auto orig_ids = mapped.value().orig_of_new();
      if (orig_ids.size() != n) {
        fail("orig-ids section missing or wrong size");
        mmap_ok = false;
      }
      for (VertexId v = 0; mmap_ok && v < n; ++v) {
        if (orig_ids[v] != mi.perm.old_of_new[v]) {
          fail("orig-ids mismatch at " + std::to_string(v));
          mmap_ok = false;
        }
      }
      if (mmap_ok) {
        PartitionState state_mapped(&mapped.value().graph(), &mi.topology,
                                    &mi.locations_reordered,
                                    &mi.sizes_reordered, mi.config);
        if (derived) {
          state_mapped.ResetDerived(state_reord.masters());
        } else {
          std::vector<DcId> edge_dcs(m);
          for (EdgeId e = 0; e < m; ++e) {
            edge_dcs[e] = state_reord.edge_dc(e);
          }
          state_mapped.ResetWithPlacement(state_reord.masters(), edge_dcs);
        }
        if (!SameObjective(state_mapped.CurrentObjective(),
                           state_reord.CurrentObjective())) {
          fail("mmap objective" +
               DiffObjective(state_mapped.CurrentObjective(),
                             state_reord.CurrentObjective()));
          mmap_ok = false;
        }
      }
      std::remove(path.c_str());
      if (mmap_ok) ++report.mmap_checks;
    }
  }
  return report;
}

}  // namespace check
}  // namespace rlcut
