#include "check/legacy_reference.h"

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace rlcut {
namespace check {

Objective LegacyReferenceObjective(const PartitionState& state) {
  const Graph& graph = state.graph();
  const VertexId n = graph.num_vertices();
  const int num_dcs = state.num_dcs();

  // Array-of-structs membership flags, rebuilt from the public edge
  // placement: byte flags per (vertex, DC) instead of the live state's
  // bitmasks and counts.
  struct LegacyVertex {
    std::vector<uint8_t> has_edge;     // DC holds an incident edge
    std::vector<uint8_t> has_in_edge;  // DC holds an in-edge
  };
  std::vector<LegacyVertex> verts(n);
  for (VertexId v = 0; v < n; ++v) {
    verts[v].has_edge.assign(num_dcs, 0);
    verts[v].has_in_edge.assign(num_dcs, 0);
  }
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const DcId dc = state.edge_dc(e);
    if (dc == kNoDc) continue;
    const VertexId src = graph.EdgeSource(e);
    const VertexId dst = graph.EdgeTarget(e);
    verts[src].has_edge[dc] = 1;
    verts[dst].has_edge[dc] = 1;
    verts[dst].has_in_edge[dc] = 1;
  }

  // Accumulate the per-DC aggregates AoS-style: one replica at a time,
  // nested scalar loops, repeated additions instead of one multiply per
  // master. On dyadic instances every addition is exact, so this must
  // land on the same bits as the SoA fast path's regrouped sums.
  struct DcAggregates {
    double gather_up = 0;
    double gather_down = 0;
    double apply_up = 0;
    double apply_down = 0;
  };
  std::vector<DcAggregates> agg(num_dcs);
  const double gather_bytes = state.config().workload.gather_base_bytes;
  for (VertexId v = 0; v < n; ++v) {
    const DcId m = state.master(v);
    const double a = state.ApplyBytes(v);
    for (DcId r = 0; r < num_dcs; ++r) {
      if (r == m || verts[v].has_edge[r] == 0) continue;
      agg[m].apply_up += a;
      agg[r].apply_down += a;
    }
    if (state.is_high_degree(v)) {
      for (DcId r = 0; r < num_dcs; ++r) {
        if (r == m || verts[v].has_in_edge[r] == 0) continue;
        agg[m].gather_down += gather_bytes;
        agg[r].gather_up += gather_bytes;
      }
    }
  }

  // Transpose into the SoA layout the shared finalize expects and price
  // through the exact same compiled code as every live path.
  std::vector<double> gu(num_dcs), gd(num_dcs), au(num_dcs), ad(num_dcs);
  for (DcId r = 0; r < num_dcs; ++r) {
    gu[r] = agg[r].gather_up;
    gd[r] = agg[r].gather_down;
    au[r] = agg[r].apply_up;
    ad[r] = agg[r].apply_down;
  }
  return state.ObjectiveFromAggregates(gu.data(), gd.data(), au.data(),
                                       ad.data(), state.MoveCost());
}

}  // namespace check
}  // namespace rlcut
