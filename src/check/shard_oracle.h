#ifndef RLCUT_CHECK_SHARD_ORACLE_H_
#define RLCUT_CHECK_SHARD_ORACLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.h"

namespace rlcut {
namespace check {

/// Differential oracle for the sharded training runtime
/// (docs/sharding.md). Replays full training runs on small dyadic-exact
/// instances and demands *bit-exact* agreement on the final masters,
/// the final objective and the per-shard PRNG states across the three
/// equivalences the determinism contract promises:
///
///   * thread invariance — with the shard count fixed, any worker
///     thread count produces the same trajectory (all action-selection
///     modes, including the RNG-drawing kProbability);
///   * shard-vs-single — for the deterministic selection modes (UCB
///     blend/score, greedy), training with N shards equals training
///     with 1 shard, because per-vertex automaton updates within a
///     batch commute and no PRNG is drawn;
///   * cross-thread resume — a run paused mid-flight, round-tripped
///     through a checkpoint, and resumed by a trainer with a different
///     thread count finishes bit-identical to the uninterrupted run.
///
/// Exact equality is sound for the same reason as the incremental
/// oracle (see check/differential_oracle.h): the compared runs execute
/// the same floating-point operations in the same order, so any
/// mismatch is a logic bug in the ownership protocol, never FP noise.
struct ShardOracleOptions {
  /// Independent instances; graph kind, shard count and selection mode
  /// are cycled per instance.
  int num_instances = 6;
  VertexId num_vertices = 160;
  uint64_t num_edges = 960;
  int num_dcs = 4;
  int max_steps = 4;
  int batch_size = 16;
  uint64_t seed = 1;
  /// Stop collecting after this many failures.
  int max_failures = 16;
};

struct ShardOracleReport {
  uint64_t instances = 0;
  /// Trainer runs executed across all lanes.
  uint64_t runs = 0;
  /// Randomized per-agent migration decisions replayed and compared
  /// (the trained agent visits of every non-reference run).
  uint64_t move_decisions = 0;
  uint64_t thread_lane_checks = 0;
  uint64_t shard_lane_checks = 0;
  uint64_t resume_lane_checks = 0;
  std::vector<std::string> failures;

  bool ok() const { return failures.empty(); }
  std::string Summary() const;
};

/// Runs the oracle. Deterministic given options.seed.
ShardOracleReport RunShardOracle(const ShardOracleOptions& options);

}  // namespace check
}  // namespace rlcut

#endif  // RLCUT_CHECK_SHARD_ORACLE_H_
