#include "check/fuzz.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "cloud/topology.h"
#include "cloud/topology_schedule.h"
#include "common/random.h"
#include "graph/graph.h"
#include "graph/rlg.h"
#include "net/replica_service.h"
#include "net/transport.h"
#include "partition/plan_delta.h"
#include "partition/plan_io.h"
#include "rlcut/checkpoint.h"

namespace rlcut {
namespace check {
namespace {

// ---- Scratch files ---------------------------------------------------

std::string ScratchPath() {
  static std::atomic<uint64_t> counter{0};
  const uint64_t id = counter.fetch_add(1);
  return (std::filesystem::temp_directory_path() /
          ("rlcut_fuzz_" + std::to_string(::getpid()) + "_" +
           std::to_string(id)))
      .string();
}

Status WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()))) {
    return Status::IoError("cannot write scratch file " + path);
  }
  return Status::Ok();
}

// ---- Checkpoint wire format (format constants, mirrored here so the
// fuzzer can build adversarial files byte by byte) ---------------------

constexpr char kCkpMagic[8] = {'R', 'L', 'C', 'U', 'T', 'C', 'K', 'P'};
// Current version plus the oldest still-loadable one; v1 lacks the
// session num_shards field (see rlcut/checkpoint.cc).
constexpr uint32_t kCkpMinVersion = 1;
constexpr uint32_t kCkpVersion = 2;
// File layout: magic(8) version(4) payload_size(8) payload checksum(8).
constexpr size_t kCkpPayloadSizeOffset = 12;
constexpr size_t kCkpHeaderBytes = 20;

uint64_t Fnv1a64(const char* data, size_t size) {
  uint64_t hash = 14695981039346656037ull;
  for (size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 1099511628211ull;
  }
  return hash;
}

template <typename T>
void Append(std::string* out, T value) {
  const size_t offset = out->size();
  out->resize(offset + sizeof(T));
  std::memcpy(out->data() + offset, &value, sizeof(T));
}

template <typename T>
void Overwrite(std::string* out, size_t offset, T value) {
  std::memcpy(out->data() + offset, &value, sizeof(T));
}

// A structurally valid payload plus the offsets of its count fields, so
// adversarial variants can surgically corrupt exactly one count.
struct PayloadLayout {
  std::string bytes;
  size_t masters_count_offset = 0;
  size_t history_count_offset = 0;
  size_t rng_count_offset = 0;
  size_t rng_data_offset = 0;
};

// Builds a structurally valid payload for `version` (v2 adds the
// uint32 session shard count between visits_remaining and the history).
PayloadLayout BuildValidPayload(uint32_t version) {
  PayloadLayout layout;
  std::string& p = layout.bytes;
  const uint64_t num_vertices = 4;
  const int num_dcs = 2;
  Append<uint64_t>(&p, num_vertices);
  Append<uint32_t>(&p, static_cast<uint32_t>(num_dcs));
  Append<uint64_t>(&p, 7);                        // seed
  Append<uint32_t>(&p, 0);                        // model = hybrid
  Append<uint32_t>(&p, 5);                        // theta
  layout.masters_count_offset = p.size();
  Append<uint64_t>(&p, num_vertices);             // masters count
  for (uint64_t v = 0; v < num_vertices; ++v) {
    Append<int32_t>(&p, static_cast<int32_t>(v % num_dcs));
  }
  Append<uint64_t>(&p, num_vertices);             // pool.num_vertices
  Append<int32_t>(&p, num_dcs);                   // pool.num_dcs
  Append<uint64_t>(&p, num_vertices * num_dcs);   // prob count
  for (uint64_t i = 0; i < num_vertices * num_dcs; ++i) {
    Append<double>(&p, 0.5);
  }
  Append<uint64_t>(&p, num_vertices * num_dcs);   // mean_q count
  for (uint64_t i = 0; i < num_vertices * num_dcs; ++i) {
    Append<double>(&p, 0.25);
  }
  Append<uint64_t>(&p, num_vertices * num_dcs);   // count count
  for (uint64_t i = 0; i < num_vertices * num_dcs; ++i) {
    Append<uint32_t>(&p, 3);
  }
  Append<int32_t>(&p, 6);                         // session.next_step
  Append<uint8_t>(&p, 1);                         // started
  Append<uint8_t>(&p, 0);                         // finished
  Append<int64_t>(&p, 40);                        // visits_remaining
  if (version >= 2) {
    Append<uint32_t>(&p, 2);                      // num_shards (v2)
  }
  layout.history_count_offset = p.size();
  Append<uint64_t>(&p, 2);                        // history count
  for (int s = 0; s < 2; ++s) {
    Append<int32_t>(&p, s);                       // step
    Append<double>(&p, 1.0);                      // sample_rate
    Append<uint64_t>(&p, 4);                      // num_agents
    Append<double>(&p, 0.125);                    // seconds
    Append<double>(&p, 2.0);                      // transfer_seconds
    Append<double>(&p, 0.5);                      // cost_dollars
    Append<uint64_t>(&p, 1);                      // migrations
    Append<uint64_t>(&p, 0);                      // rollbacks
  }
  layout.rng_count_offset = p.size();
  Append<uint64_t>(&p, 2);                        // rng state count
  layout.rng_data_offset = p.size();
  for (int t = 0; t < 2; ++t) {
    for (int w = 0; w < 4; ++w) {
      Append<uint64_t>(&p, 0x9e3779b97f4a7c15ull + 13 * t + w);
    }
  }
  return layout;
}

std::string WrapCheckpointFile(const std::string& payload,
                               uint32_t version = kCkpVersion) {
  std::string file;
  file.append(kCkpMagic, sizeof(kCkpMagic));
  Append<uint32_t>(&file, version);
  Append<uint64_t>(&file, payload.size());
  file += payload;
  Append<uint64_t>(&file, Fnv1a64(payload.data(), payload.size()));
  return file;
}

// Re-fixes the trailing checksum of a mutated checkpoint file so payload
// mutations survive the checksum gate and reach DecodePayload. No-op
// when the declared payload size no longer fits the file.
bool RefixCheckpointChecksum(std::string* file) {
  if (file->size() < kCkpHeaderBytes + sizeof(uint64_t)) return false;
  uint64_t payload_size = 0;
  std::memcpy(&payload_size, file->data() + kCkpPayloadSizeOffset,
              sizeof(payload_size));
  if (payload_size > file->size() - kCkpHeaderBytes - sizeof(uint64_t)) {
    return false;
  }
  const uint64_t checksum = Fnv1a64(file->data() + kCkpHeaderBytes,
                                    static_cast<size_t>(payload_size));
  Overwrite<uint64_t>(file, kCkpHeaderBytes + payload_size, checksum);
  return true;
}

std::vector<CorpusCase> CheckpointCorpus() {
  std::vector<CorpusCase> corpus;
  const PayloadLayout layout = BuildValidPayload(kCkpVersion);
  const std::string valid = WrapCheckpointFile(layout.bytes);
  corpus.push_back({"valid", valid, true});

  {
    // A pre-sharding v1 file (no num_shards field) must keep loading;
    // its shard count is inferred from the rng state count.
    const PayloadLayout v1 = BuildValidPayload(kCkpMinVersion);
    corpus.push_back(
        {"valid-v1", WrapCheckpointFile(v1.bytes, kCkpMinVersion), true});
  }
  {
    // Empty history and rng sections are legal.
    PayloadLayout empty = BuildValidPayload(kCkpVersion);
    empty.bytes.resize(empty.history_count_offset);
    Append<uint64_t>(&empty.bytes, 0);  // history count
    Append<uint64_t>(&empty.bytes, 0);  // rng count
    corpus.push_back(
        {"valid-empty-history", WrapCheckpointFile(empty.bytes), true});
  }

  corpus.push_back({"empty-file", std::string(), false});
  corpus.push_back({"truncated-header", valid.substr(0, 10), false});
  corpus.push_back(
      {"truncated-payload", valid.substr(0, valid.size() - 20), false});

  {
    std::string bad = valid;
    bad[0] = 'X';
    corpus.push_back({"bad-magic", bad, false});
  }
  {
    std::string bad = valid;
    Overwrite<uint32_t>(&bad, sizeof(kCkpMagic), kCkpVersion + 1);
    corpus.push_back({"bad-version", bad, false});
  }
  {
    std::string bad = valid;
    bad[kCkpHeaderBytes + 3] ^= 0x40;  // payload bit flip, stale checksum
    corpus.push_back({"checksum-mismatch", bad, false});
  }
  {
    // Declared payload far beyond the file: must be rejected before the
    // payload buffer is allocated (pre-fix this requested ~1 TB).
    std::string bad = valid;
    Overwrite<uint64_t>(&bad, kCkpPayloadSizeOffset, 1ull << 40);
    corpus.push_back({"huge-payload-size", bad, false});
  }
  {
    // Checksum-valid payload claiming 2^56 masters: ReadVector's
    // remaining-bytes bound must reject it without allocating.
    PayloadLayout bad = BuildValidPayload(kCkpVersion);
    Overwrite<uint64_t>(&bad.bytes, bad.masters_count_offset, 1ull << 56);
    corpus.push_back(
        {"huge-masters-count", WrapCheckpointFile(bad.bytes), false});
  }
  {
    // Checksum-valid payload claiming 2^56 history records (pre-fix:
    // unbounded resize of ~6 PB).
    PayloadLayout bad = BuildValidPayload(kCkpVersion);
    Overwrite<uint64_t>(&bad.bytes, bad.history_count_offset, 1ull << 56);
    corpus.push_back(
        {"huge-history-count", WrapCheckpointFile(bad.bytes), false});
  }
  {
    // Checksum-valid payload claiming 2^56 rng states.
    PayloadLayout bad = BuildValidPayload(kCkpVersion);
    Overwrite<uint64_t>(&bad.bytes, bad.rng_count_offset, 1ull << 56);
    corpus.push_back(
        {"huge-rng-count", WrapCheckpointFile(bad.bytes), false});
  }
  {
    // Checksum-valid file whose first rng state is all zeros: resuming
    // it would abort inside Rng::SetState, so the loader must reject.
    PayloadLayout bad = BuildValidPayload(kCkpVersion);
    for (int w = 0; w < 4; ++w) {
      Overwrite<uint64_t>(&bad.bytes,
                          bad.rng_data_offset + w * sizeof(uint64_t), 0);
    }
    corpus.push_back(
        {"zero-rng-state", WrapCheckpointFile(bad.bytes), false});
  }
  {
    // Checksum-valid v2 file whose declared shard count disagrees with
    // its rng state count: the per-shard streams would be ambiguous.
    PayloadLayout bad = BuildValidPayload(kCkpVersion);
    Overwrite<uint32_t>(&bad.bytes,
                        bad.history_count_offset - sizeof(uint32_t), 5);
    corpus.push_back(
        {"shard-rng-count-mismatch", WrapCheckpointFile(bad.bytes), false});
  }
  {
    // Extra bytes inside the checksummed payload must be detected.
    std::string padded = layout.bytes;
    Append<uint64_t>(&padded, 0xdeadbeef);
    corpus.push_back(
        {"trailing-payload-bytes", WrapCheckpointFile(padded), false});
  }
  return corpus;
}

// ---- Plan corpus -----------------------------------------------------

std::vector<CorpusCase> PlanCorpus() {
  std::vector<CorpusCase> corpus;
  corpus.push_back({"valid-hybrid",
                    "rlcut-plan v1\n"
                    "model hybrid theta 100\n"
                    "masters 4\n0\n1\n0\n1\n"
                    "edges 0\n",
                    true});
  corpus.push_back({"valid-vertex",
                    "rlcut-plan v1\n"
                    "model vertex theta 0\n"
                    "masters 3\n0\n1\n2\n"
                    "edges 4\n0\n1\n2\n-1\n",
                    true});
  // Values are only range-checked against a concrete problem in
  // ApplyPlan; the parser accepts any integer DC id.
  corpus.push_back({"out-of-range-dc-values",
                    "rlcut-plan v1\n"
                    "model edge theta 1\n"
                    "masters 2\n-7\n1000\n"
                    "edges 0\n",
                    true});
  corpus.push_back({"empty-file", "", false});
  corpus.push_back({"bad-header", "rlcut-plan v2\n", false});
  corpus.push_back({"bad-model",
                    "rlcut-plan v1\nmodel pagerank theta 100\n", false});
  corpus.push_back({"missing-theta",
                    "rlcut-plan v1\nmodel hybrid\nmasters 0\n", false});
  // Counts larger than the file itself: must be rejected before the
  // resize (pre-fix this requested a ~400 GB masters vector).
  corpus.push_back({"huge-masters-count",
                    "rlcut-plan v1\n"
                    "model hybrid theta 100\n"
                    "masters 99999999999\n0\n",
                    false});
  corpus.push_back({"huge-edges-count",
                    "rlcut-plan v1\n"
                    "model vertex theta 0\n"
                    "masters 1\n0\n"
                    "edges 99999999999\n0\n",
                    false});
  corpus.push_back({"truncated-masters",
                    "rlcut-plan v1\n"
                    "model hybrid theta 100\n"
                    "masters 4\n0\n1\n",
                    false});
  corpus.push_back({"garbage-master-value",
                    "rlcut-plan v1\n"
                    "model hybrid theta 100\n"
                    "masters 2\n0\nbanana\n",
                    false});
  corpus.push_back({"missing-edges-section",
                    "rlcut-plan v1\n"
                    "model hybrid theta 100\n"
                    "masters 1\n0\n",
                    false});
  return corpus;
}

// ---- Net-schedule corpus ---------------------------------------------

std::vector<CorpusCase> NetScheduleCorpus() {
  std::vector<CorpusCase> corpus;
  corpus.push_back({"valid",
                    "rlcut-net-schedule v1\n"
                    "# diurnal dip, then a regional outage\n"
                    "0 * bandwidth 0.5 0.5\n"
                    "4 1 price 2.0\n"
                    "8 1 outage\n"
                    "12 1 restore\n"
                    "16 * restore\n",
                    true});
  corpus.push_back({"valid-empty", "rlcut-net-schedule v1\n", true});
  corpus.push_back(
      {"valid-comments-only",
       "rlcut-net-schedule v1\n# nothing happens\n\n# still nothing\n",
       true});
  corpus.push_back({"empty-file", "", false});
  corpus.push_back({"bad-header", "rlcut-net-schedule v2\n", false});
  corpus.push_back({"unknown-kind",
                    "rlcut-net-schedule v1\n0 * earthquake 0.5\n", false});
  corpus.push_back({"bad-dc-token",
                    "rlcut-net-schedule v1\n0 one outage\n", false});
  corpus.push_back({"dc-out-of-range",
                    "rlcut-net-schedule v1\n0 9 outage\n", false});
  corpus.push_back({"missing-bandwidth-factor",
                    "rlcut-net-schedule v1\n0 * bandwidth 0.5\n", false});
  corpus.push_back({"missing-price-factor",
                    "rlcut-net-schedule v1\n0 * price\n", false});
  corpus.push_back({"negative-factor",
                    "rlcut-net-schedule v1\n0 * bandwidth -0.5 0.5\n",
                    false});
  corpus.push_back({"zero-factor",
                    "rlcut-net-schedule v1\n0 0 bandwidth 0 1\n", false});
  corpus.push_back({"garbage-step",
                    "rlcut-net-schedule v1\nnoon * outage\n", false});
  return corpus;
}

// ---- .rlg graph corpus -----------------------------------------------

// The .rlg header checksum covers bytes [0, 96); the checksum itself
// lives at [96, 104). Mirrored from graph/rlg.h's format doc so the
// fuzzer can surgically corrupt checksummed fields.
constexpr size_t kRlgChecksumCoverage = 96;

// Re-fixes the header checksum of a mutated .rlg file so header-field
// mutations reach the section validators instead of dying at the gate.
bool RefixRlgHeaderChecksum(std::string* file) {
  if (file->size() < kRlgHeaderSize) return false;
  const uint64_t checksum =
      Fnv1a64(file->data(), kRlgChecksumCoverage);
  Overwrite<uint64_t>(file, kRlgChecksumCoverage, checksum);
  return true;
}

// Serializes a small graph through the real writer and returns the file
// bytes (the writer only targets paths, so round-trip via scratch).
std::string RlgBytes(bool ordered) {
  GraphBuilder builder(6);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 3);
  builder.AddEdge(2, 3);
  builder.AddEdge(3, 4);
  builder.AddEdge(4, 5);
  builder.AddEdge(5, 0);
  const Graph g = std::move(builder).Build();
  const std::string path = ScratchPath();
  Status saved;
  if (ordered) {
    const VertexPermutation perm = DegreeDescendingOrder(g);
    saved = WriteRlgFile(g, &perm, {}, path);
  } else {
    saved = SaveRlgGraph(g, path);
  }
  if (!saved.ok()) return {};
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  std::remove(path.c_str());
  return bytes;
}

std::vector<CorpusCase> RlgCorpus() {
  std::vector<CorpusCase> corpus;
  const std::string valid = RlgBytes(/*ordered=*/false);
  const std::string ordered = RlgBytes(/*ordered=*/true);
  corpus.push_back({"valid", valid, true});
  corpus.push_back({"valid-ordered-orig-ids", ordered, true});

  corpus.push_back({"empty-file", std::string(), false});
  corpus.push_back({"truncated-header", valid.substr(0, 10), false});
  corpus.push_back(
      {"truncated-mid-header", valid.substr(0, kRlgHeaderSize - 1), false});
  // Declared size no longer matches: every byte-level truncation of the
  // array region must be caught before any array is dereferenced.
  corpus.push_back(
      {"truncated-arrays", valid.substr(0, valid.size() - 16), false});
  {
    std::string bad = valid;
    bad[0] = 'X';
    corpus.push_back({"bad-magic", bad, false});
  }
  {
    std::string bad = valid;
    Overwrite<uint32_t>(&bad, 8, 99);  // version
    RefixRlgHeaderChecksum(&bad);
    corpus.push_back({"bad-version", bad, false});
  }
  {
    std::string bad = valid;
    Overwrite<uint32_t>(&bad, 12, 0xfe);  // unknown flag bits
    RefixRlgHeaderChecksum(&bad);
    corpus.push_back({"unknown-flags", bad, false});
  }
  {
    // Header bit flip without a checksum refix: the checksum gate must
    // catch it.
    std::string bad = valid;
    bad[40] ^= 0x04;
    corpus.push_back({"stale-header-checksum", bad, false});
  }
  {
    // Vertex count that cannot fit VertexId; checksum valid so the
    // explicit range check is what rejects it.
    std::string bad = valid;
    Overwrite<uint64_t>(&bad, 16, 0xFFFFFFFFull);
    RefixRlgHeaderChecksum(&bad);
    corpus.push_back({"vertex-count-overflow", bad, false});
  }
  {
    // Edge count far beyond the file: section bounds must reject before
    // any E-sized read (the .rlg analogue of the allocation bombs).
    std::string bad = valid;
    Overwrite<uint64_t>(&bad, 24, 1ull << 56);
    RefixRlgHeaderChecksum(&bad);
    corpus.push_back({"huge-edge-count", bad, false});
  }
  {
    // out_targets section pointing past the end of the file.
    std::string bad = valid;
    Overwrite<uint64_t>(&bad, 32 + 1 * 8, 1ull << 40);
    RefixRlgHeaderChecksum(&bad);
    corpus.push_back({"section-offset-beyond-file", bad, false});
  }
  {
    // Misaligned section offset.
    std::string bad = valid;
    uint64_t offset = 0;
    std::memcpy(&offset, bad.data() + 32, sizeof(offset));
    Overwrite<uint64_t>(&bad, 32, offset + 3);
    RefixRlgHeaderChecksum(&bad);
    corpus.push_back({"misaligned-section", bad, false});
  }
  if (!ordered.empty()) {
    // Two vertices claiming the same original id: the orig-ids section
    // must be validated as a bijection at open.
    std::string bad = ordered;
    uint64_t orig_offset = 0;
    std::memcpy(&orig_offset, bad.data() + 32 + 6 * 8,
                sizeof(orig_offset));
    uint32_t first = 0;
    std::memcpy(&first, bad.data() + orig_offset, sizeof(first));
    Overwrite<uint32_t>(&bad, orig_offset + sizeof(uint32_t), first);
    corpus.push_back({"orig-ids-not-bijection", bad, false});
  }
  {
    // Structurally corrupt arrays behind a valid header: an out_target
    // beyond the vertex count, caught by deep validation.
    std::string bad = valid;
    uint64_t targets_offset = 0;
    std::memcpy(&targets_offset, bad.data() + 32 + 1 * 8,
                sizeof(targets_offset));
    Overwrite<uint32_t>(&bad, targets_offset, 0xCAFE);
    corpus.push_back({"target-out-of-range", bad, false});
  }
  {
    // Non-monotone out_offsets behind a valid header.
    std::string bad = valid;
    uint64_t offsets_offset = 0;
    std::memcpy(&offsets_offset, bad.data() + 32, sizeof(offsets_offset));
    Overwrite<uint64_t>(&bad, offsets_offset + 8, ~0ull >> 8);
    corpus.push_back({"offsets-not-monotone", bad, false});
  }
  return corpus;
}

// ---- Net-frame corpus ------------------------------------------------

// Frame wire layout, mirrored from net/transport.cc so the fuzzer can
// build and surgically corrupt raw streams:
//   u32 magic "RLNF" | u8 type | u32 payload size | payload |
//   u64 FNV-1a over (type byte + payload)
constexpr char kNetFrameMagic[4] = {'R', 'L', 'N', 'F'};
constexpr size_t kNetFrameHeaderBytes = 9;
constexpr size_t kNetFrameSizeOffset = 5;
constexpr size_t kNetFrameChecksumBytes = 8;

std::string NetFrame(net::FrameType type, const std::string& payload) {
  net::Frame frame;
  frame.type = type;
  frame.payload = payload;
  return net::EncodeFrame(frame);
}

// A small consistent delta/snapshot pair: 4 masters over 2 DCs.
std::string NetDeltaPayload(uint64_t base_version) {
  PlanDelta delta;
  delta.base_version = base_version;
  delta.moves.push_back({0, 0, 1});
  delta.moves.push_back({3, 1, 0});
  return EncodePlanDelta(delta);
}

std::string NetSnapshotPayload(uint64_t version) {
  PlanSnapshot snapshot;
  snapshot.version = version;
  snapshot.num_dcs = 2;
  snapshot.masters = {0, 1, 0, 1};
  return EncodePlanSnapshot(snapshot);
}

// Re-fixes the per-frame checksums of a mutated stream so payload
// mutations survive the checksum gate and reach the protocol decoders.
// Walks complete frames from the front; stops at the first spot where
// boundaries can no longer be trusted.
bool RefixNetFrameChecksums(std::string* file) {
  bool fixed = false;
  size_t offset = 0;
  while (file->size() - offset >= kNetFrameHeaderBytes) {
    if (std::memcmp(file->data() + offset, kNetFrameMagic,
                    sizeof(kNetFrameMagic)) != 0) {
      break;
    }
    uint32_t payload_size = 0;
    std::memcpy(&payload_size, file->data() + offset + kNetFrameSizeOffset,
                sizeof(payload_size));
    const size_t total =
        kNetFrameHeaderBytes + payload_size + kNetFrameChecksumBytes;
    if (payload_size > net::kMaxFramePayload ||
        total > file->size() - offset) {
      break;
    }
    const uint64_t checksum = Fnv1a64(
        file->data() + offset + sizeof(kNetFrameMagic), 1 + payload_size);
    Overwrite<uint64_t>(file, offset + kNetFrameHeaderBytes + payload_size,
                        checksum);
    fixed = true;
    offset += total;
  }
  return fixed;
}

std::vector<CorpusCase> NetFrameCorpus() {
  std::vector<CorpusCase> corpus;
  net::HelloMsg hello;
  hello.client_version = 3;
  hello.client_fingerprint = 0xabcdef;
  const std::string valid_hello =
      NetFrame(net::FrameType::kHello, net::EncodeHello(hello));
  corpus.push_back({"valid-hello", valid_hello, true});
  {
    // A full client session: handshake, resync snapshot, chained delta,
    // liveness probe.
    std::string stream = valid_hello;
    stream += NetFrame(net::FrameType::kSnapshot, NetSnapshotPayload(3));
    stream += NetFrame(net::FrameType::kDelta, NetDeltaPayload(3));
    stream += NetFrame(net::FrameType::kPing, "");
    corpus.push_back({"valid-client-session", stream, true});
  }
  {
    // The server-side halves of the protocol.
    net::HelloAckMsg hello_ack;
    hello_ack.server_version = 4;
    hello_ack.server_fingerprint = 0x1234;
    net::AckMsg ack;
    ack.version = 5;
    ack.fingerprint = 0x5678;
    net::NackMsg nack;
    nack.server_version = 2;
    nack.reason = "version gap";
    std::string stream =
        NetFrame(net::FrameType::kHelloAck, net::EncodeHelloAck(hello_ack));
    stream += NetFrame(net::FrameType::kAck, net::EncodeAck(ack));
    stream += NetFrame(net::FrameType::kNack, net::EncodeNack(nack));
    stream += NetFrame(net::FrameType::kPong, "");
    corpus.push_back({"valid-server-session", stream, true});
  }
  {
    PlanDelta empty;
    empty.base_version = 9;
    corpus.push_back(
        {"valid-empty-delta",
         NetFrame(net::FrameType::kDelta, EncodePlanDelta(empty)), true});
  }

  const std::string valid_delta =
      NetFrame(net::FrameType::kDelta, NetDeltaPayload(1));
  corpus.push_back({"empty-file", std::string(), false});
  corpus.push_back({"truncated-header", valid_delta.substr(0, 6), false});
  corpus.push_back(
      {"truncated-payload", valid_delta.substr(0, valid_delta.size() - 4),
       false});
  {
    std::string bad = valid_delta;
    bad[0] = 'X';
    corpus.push_back({"bad-magic", bad, false});
  }
  {
    // Payload bit flip without a checksum refix: the frame checksum
    // gate must catch it.
    std::string bad = valid_delta;
    bad[kNetFrameHeaderBytes + 2] ^= 0x40;
    corpus.push_back({"stale-frame-checksum", bad, false});
  }
  {
    // Declared payload size beyond kMaxFramePayload: must be rejected
    // before any payload buffer is sized.
    std::string bad = valid_delta;
    Overwrite<uint32_t>(&bad, kNetFrameSizeOffset, 1u << 30);
    corpus.push_back({"oversized-declared-payload", bad, false});
  }
  {
    // Checksum-valid delta claiming 2^56 moves: DecodePlanDelta's
    // remaining-bytes bound must reject without allocating.
    std::string payload;
    Append<uint64_t>(&payload, 1);          // base_version
    Append<uint64_t>(&payload, 1ull << 56);  // move count
    corpus.push_back(
        {"huge-delta-count", NetFrame(net::FrameType::kDelta, payload),
         false});
  }
  {
    // Checksum-valid snapshot claiming 2^56 masters.
    std::string payload;
    Append<uint64_t>(&payload, 7);          // version
    Append<int32_t>(&payload, 2);           // num_dcs
    Append<uint64_t>(&payload, 1ull << 56);  // masters count
    corpus.push_back(
        {"huge-snapshot-count",
         NetFrame(net::FrameType::kSnapshot, payload), false});
  }
  {
    // Delta payload with undeclared trailing bytes.
    std::string payload = NetDeltaPayload(1);
    Append<uint32_t>(&payload, 0xdead);
    corpus.push_back(
        {"delta-trailing-bytes", NetFrame(net::FrameType::kDelta, payload),
         false});
  }
  corpus.push_back({"unknown-frame-type",
                    NetFrame(static_cast<net::FrameType>(99), "??"), false});
  corpus.push_back(
      {"nack-truncated",
       NetFrame(net::FrameType::kNack, std::string(4, '\0')), false});
  corpus.push_back(
      {"ping-with-payload", NetFrame(net::FrameType::kPing, "x"), false});
  {
    // Garbage after a valid frame: either bad magic or a forever-
    // incomplete header; both must reject, not hang or accept.
    std::string bad = valid_delta + "xyz";
    corpus.push_back({"trailing-garbage", bad, false});
  }
  return corpus;
}

// Decodes a raw byte stream as replica-protocol frames: every frame
// must parse, every payload must decode for its type, and the stream
// must be fully consumed. Decoded payloads are round-trip re-encoded
// (mismatch -> kInternal), and client->server frames are additionally
// pushed through a live ReplicaServer::HandleFrame — its accept/reject
// is protocol state, not validity, so only its crash-freedom is under
// test here.
Status NetFrameLoadOnce(const std::string& bytes) {
  net::FrameDecoder decoder;
  decoder.Feed(bytes);
  net::ReplicaServer server;
  net::Frame frame;
  uint64_t frames = 0;
  while (true) {
    Result<bool> next = decoder.Next(&frame);
    if (!next.ok()) return next.status();
    if (!*next) break;
    ++frames;
    Status decoded;
    std::string reencoded;
    switch (frame.type) {
      case net::FrameType::kHello: {
        net::HelloMsg msg;
        decoded = net::DecodeHello(frame.payload, &msg);
        if (decoded.ok()) reencoded = net::EncodeHello(msg);
        break;
      }
      case net::FrameType::kHelloAck: {
        net::HelloAckMsg msg;
        decoded = net::DecodeHelloAck(frame.payload, &msg);
        if (decoded.ok()) reencoded = net::EncodeHelloAck(msg);
        break;
      }
      case net::FrameType::kDelta: {
        PlanDelta delta;
        decoded = DecodePlanDelta(frame.payload, &delta);
        if (decoded.ok()) reencoded = EncodePlanDelta(delta);
        break;
      }
      case net::FrameType::kSnapshot: {
        PlanSnapshot snapshot;
        decoded = DecodePlanSnapshot(frame.payload, &snapshot);
        if (decoded.ok()) reencoded = EncodePlanSnapshot(snapshot);
        break;
      }
      case net::FrameType::kAck: {
        net::AckMsg msg;
        decoded = net::DecodeAck(frame.payload, &msg);
        if (decoded.ok()) reencoded = net::EncodeAck(msg);
        break;
      }
      case net::FrameType::kNack: {
        net::NackMsg msg;
        decoded = net::DecodeNack(frame.payload, &msg);
        if (decoded.ok()) reencoded = net::EncodeNack(msg);
        break;
      }
      case net::FrameType::kPing:
      case net::FrameType::kPong:
        if (!frame.payload.empty()) {
          decoded = Status::InvalidArgument("ping/pong carries a payload");
        }
        break;
      default:
        decoded = Status::InvalidArgument(
            "unknown frame type " +
            std::to_string(static_cast<int>(frame.type)));
        break;
    }
    if (!decoded.ok()) return decoded;
    if (!reencoded.empty() && reencoded != frame.payload) {
      return Status::Internal("frame payload did not round-trip");
    }
    switch (frame.type) {
      case net::FrameType::kHello:
      case net::FrameType::kDelta:
      case net::FrameType::kSnapshot:
      case net::FrameType::kPing:
        (void)server.HandleFrame(frame);
        break;
      default:
        break;
    }
  }
  if (decoder.buffered() > 0) {
    return Status::InvalidArgument("trailing bytes of an incomplete frame");
  }
  if (frames == 0) {
    return Status::InvalidArgument("stream contains no frames");
  }
  return Status::Ok();
}

// ---- Loader execution ------------------------------------------------

// The 4-DC reference environment every schedule corpus entry validates
// against.
Topology ScheduleBase() { return MakeUniformTopology(4); }

Status LoadOnce(LoaderKind kind, const std::string& path) {
  switch (kind) {
    case LoaderKind::kCheckpoint: {
      Result<TrainerCheckpoint> loaded = LoadTrainerCheckpoint(path);
      if (!loaded.ok()) return loaded.status();
      // Round-trip: what the loader accepts, the saver must reproduce.
      const std::string copy = ScratchPath();
      Status save = SaveTrainerCheckpoint(*loaded, copy);
      if (!save.ok()) return Status::Internal(save.message());
      Result<TrainerCheckpoint> again = LoadTrainerCheckpoint(copy);
      std::remove(copy.c_str());
      if (!again.ok()) {
        return Status::Internal("round-trip reload failed: " +
                                again.status().message());
      }
      if (again->num_vertices != loaded->num_vertices ||
          again->num_dcs != loaded->num_dcs ||
          again->masters != loaded->masters ||
          again->session.history.size() !=
              loaded->session.history.size() ||
          again->session.rng_states != loaded->session.rng_states) {
        return Status::Internal("round-trip changed the checkpoint");
      }
      return Status::Ok();
    }
    case LoaderKind::kPlan: {
      Result<PartitionPlan> loaded = LoadPlan(path);
      if (!loaded.ok()) return loaded.status();
      const std::string copy = ScratchPath();
      Status save = SavePlan(*loaded, copy);
      if (!save.ok()) return Status::Internal(save.message());
      Result<PartitionPlan> again = LoadPlan(copy);
      std::remove(copy.c_str());
      if (!again.ok()) {
        return Status::Internal("round-trip reload failed: " +
                                again.status().message());
      }
      if (again->model != loaded->model ||
          again->masters != loaded->masters ||
          again->edge_dcs != loaded->edge_dcs) {
        return Status::Internal("round-trip changed the plan");
      }
      return Status::Ok();
    }
    case LoaderKind::kNetSchedule: {
      Result<TopologySchedule> loaded =
          LoadTopologySchedule(path, ScheduleBase());
      if (!loaded.ok()) return loaded.status();
      // Exercise the loaded schedule the way the trainer would.
      (void)loaded->EffectiveAt(0);
      (void)loaded->EffectiveAt(1 << 20);
      return Status::Ok();
    }
    case LoaderKind::kRlgGraph: {
      MmapGraph::Options options;
      options.validate_structure = true;
      Result<MmapGraph> loaded = MmapGraph::Open(path, options);
      if (!loaded.ok()) return loaded.status();
      // Round-trip: re-save the mapped graph and reload; the dual CSR
      // must survive byte-identically in structure.
      const std::string copy = ScratchPath();
      const Graph& g = loaded->graph();
      Status save = SaveRlgGraph(g, copy);
      if (!save.ok()) return Status::Internal(save.message());
      Result<MmapGraph> again = MmapGraph::Open(copy, options);
      if (!again.ok()) {
        std::remove(copy.c_str());
        return Status::Internal("round-trip reload failed: " +
                                again.status().message());
      }
      Status mismatch = Status::Ok();
      const Graph& h = again->graph();
      if (h.num_vertices() != g.num_vertices() ||
          h.num_edges() != g.num_edges()) {
        mismatch = Status::Internal("round-trip changed the graph shape");
      } else {
        for (EdgeId e = 0; e < g.num_edges(); ++e) {
          if (h.EdgeSource(e) != g.EdgeSource(e) ||
              h.EdgeTarget(e) != g.EdgeTarget(e)) {
            mismatch = Status::Internal("round-trip changed edge " +
                                        std::to_string(e));
            break;
          }
        }
      }
      std::remove(copy.c_str());
      return mismatch;
    }
    case LoaderKind::kNetFrame:
      // Frames are stream bytes, not files; RunLoaderOnBytes dispatches
      // them before the scratch-file round-trip.
      return NetFrameLoadOnce(std::string());
  }
  return Status::Internal("unknown loader kind");
}

}  // namespace

const char* LoaderName(LoaderKind kind) {
  switch (kind) {
    case LoaderKind::kCheckpoint:
      return "checkpoint";
    case LoaderKind::kPlan:
      return "plan";
    case LoaderKind::kNetSchedule:
      return "net-schedule";
    case LoaderKind::kRlgGraph:
      return "rlg-graph";
    case LoaderKind::kNetFrame:
      return "net-frame";
  }
  return "?";
}

std::vector<CorpusCase> BuildSeedCorpus(LoaderKind kind) {
  switch (kind) {
    case LoaderKind::kCheckpoint:
      return CheckpointCorpus();
    case LoaderKind::kPlan:
      return PlanCorpus();
    case LoaderKind::kNetSchedule:
      return NetScheduleCorpus();
    case LoaderKind::kRlgGraph:
      return RlgCorpus();
    case LoaderKind::kNetFrame:
      return NetFrameCorpus();
  }
  return {};
}

Status RunLoaderOnBytes(LoaderKind kind, const std::string& bytes) {
  if (kind == LoaderKind::kNetFrame) return NetFrameLoadOnce(bytes);
  const std::string path = ScratchPath();
  if (Status s = WriteBytes(path, bytes); !s.ok()) return s;
  Status result = LoadOnce(kind, path);
  std::remove(path.c_str());
  return result;
}

std::string FuzzReport::Summary() const {
  std::ostringstream out;
  out << cases << " cases, " << accepted << " accepted, " << rejected
      << " rejected, " << failures.size() << " failures";
  return out.str();
}

FuzzReport ReplayCorpus(LoaderKind kind) {
  FuzzReport report;
  for (const CorpusCase& c : BuildSeedCorpus(kind)) {
    ++report.cases;
    const Status status = RunLoaderOnBytes(kind, c.bytes);
    if (status.ok()) {
      ++report.accepted;
    } else {
      ++report.rejected;
    }
    if (status.ok() != c.expect_ok) {
      std::ostringstream out;
      out << LoaderName(kind) << " corpus case '" << c.name << "': expected "
          << (c.expect_ok ? "accept" : "reject") << ", got "
          << (status.ok() ? "accept" : "reject: " + status.message());
      report.failures.push_back(out.str());
    }
  }
  return report;
}

FuzzReport RunLoaderFuzz(LoaderKind kind, int iterations, uint64_t seed) {
  FuzzReport report;
  const std::vector<CorpusCase> corpus = BuildSeedCorpus(kind);
  if (corpus.empty()) return report;
  Rng rng(seed != 0 ? seed : 1);
  const uint64_t kInterestingInts[] = {
      0,          1,          0x7f,       0xff,        1ull << 31,
      1ull << 32, 1ull << 40, 1ull << 56, ~0ull,       ~0ull >> 1};

  for (int iter = 0; iter < iterations; ++iter) {
    std::string bytes = corpus[rng.UniformInt(corpus.size())].bytes;
    const int num_mutations = 1 + static_cast<int>(rng.UniformInt(3));
    for (int mi = 0; mi < num_mutations && !bytes.empty(); ++mi) {
      switch (rng.UniformInt(4)) {
        case 0:  // truncate
          bytes.resize(rng.UniformInt(bytes.size() + 1));
          break;
        case 1: {  // bit flip
          const size_t pos = rng.UniformInt(bytes.size());
          bytes[pos] = static_cast<char>(
              static_cast<unsigned char>(bytes[pos]) ^
              (1u << rng.UniformInt(8)));
          break;
        }
        case 2: {  // splice a chunk from another seed
          const std::string& donor =
              corpus[rng.UniformInt(corpus.size())].bytes;
          if (donor.empty()) break;
          const size_t src = rng.UniformInt(donor.size());
          const size_t len =
              1 + rng.UniformInt(std::min<size_t>(donor.size() - src, 16));
          const size_t dst = rng.UniformInt(bytes.size());
          bytes.replace(dst, std::min(len, bytes.size() - dst),
                        donor.substr(src, len));
          break;
        }
        default: {  // overwrite with an interesting integer
          if (bytes.size() < sizeof(uint64_t)) break;
          const uint64_t value =
              kInterestingInts[rng.UniformInt(std::size(kInterestingInts))];
          const size_t pos =
              rng.UniformInt(bytes.size() - sizeof(uint64_t) + 1);
          std::memcpy(bytes.data() + pos, &value, sizeof(value));
          break;
        }
      }
    }
    // Half the checkpoint / .rlg mutants get a valid checksum so
    // mutations reach the payload / section validators instead of dying
    // at the checksum gate.
    if (kind == LoaderKind::kCheckpoint && rng.Bernoulli(0.5)) {
      RefixCheckpointChecksum(&bytes);
    }
    if (kind == LoaderKind::kRlgGraph && rng.Bernoulli(0.5)) {
      RefixRlgHeaderChecksum(&bytes);
    }
    if (kind == LoaderKind::kNetFrame && rng.Bernoulli(0.5)) {
      RefixNetFrameChecksums(&bytes);
    }
    ++report.cases;
    // The invariant under fuzzing: a clean Status either way — never a
    // crash, never an allocation bomb, and accepted inputs round-trip.
    const Status status = RunLoaderOnBytes(kind, bytes);
    if (status.ok()) {
      ++report.accepted;
    } else {
      ++report.rejected;
      if (status.code() == StatusCode::kInternal) {
        std::ostringstream out;
        out << LoaderName(kind) << " fuzz iter " << iter << " (seed "
            << seed << "): " << status.message();
        report.failures.push_back(out.str());
      }
    }
  }
  return report;
}

}  // namespace check
}  // namespace rlcut
