#ifndef RLCUT_CHECK_DIFFERENTIAL_ORACLE_H_
#define RLCUT_CHECK_DIFFERENTIAL_ORACLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.h"

namespace rlcut {
namespace check {

/// Configuration of the incremental-vs-recompute differential oracle.
///
/// The oracle replays randomized move sequences against PartitionState
/// and demands *bit-exact* agreement between the incremental evaluator
/// and a from-scratch reconstruction. Exact equality is sound (not a
/// flaky tolerance) because every generated problem instance is
/// dyadic-exact: bandwidths, prices, workload byte sizes and schedule
/// factors are small multiples of powers of two, and input sizes are
/// whole GB, so every aggregate the state maintains additively is an
/// exactly representable double and IEEE addition over them is exact —
/// hence order-independent and exactly reversible. Any mismatch is a
/// logic bug, not floating-point noise. See docs/correctness.md.
struct OracleOptions {
  /// Independent randomized sequences. Graph kind, topology preset and
  /// compute model are cycled per sequence.
  int num_sequences = 48;
  /// Moves (MoveMaster / PlaceEdge / SetMaster) per sequence.
  int moves_per_sequence = 64;
  /// Instance size. Small enough that the O(|E| + |V| M) cold
  /// reconstruction stays cheap; big enough for multi-DC replication.
  VertexId num_vertices = 96;
  uint64_t num_edges = 384;
  int num_dcs = 4;
  uint64_t seed = 1;
  /// Also exercise explicit edge placement (PlaceEdge / SetMaster).
  bool include_vertex_cut = true;
  /// Run PartitionState::CheckInvariants every N moves (0 = never).
  int invariant_every = 16;
  /// Cold-reconstruct and compare every N moves (>= 1).
  int cold_every = 4;
  /// Stop collecting after this many failures.
  int max_failures = 16;
};

/// What the oracle did and every disagreement it found.
struct OracleReport {
  uint64_t sequences = 0;
  uint64_t moves = 0;
  uint64_t cold_recomputes = 0;
  uint64_t rollbacks = 0;
  uint64_t topology_updates = 0;
  uint64_t invariant_checks = 0;
  /// EvaluateMoveAll / EvaluatePlaceEdgeAll calls compared entry-by-
  /// entry against the single-destination evaluators (batch-vs-single
  /// lane; exact equality on the dyadic instances).
  uint64_t batched_evals = 0;
  /// Committed objectives compared bit-exactly against the legacy
  /// array-of-structs reference evaluator (SoA-vs-legacy lane).
  uint64_t legacy_evals = 0;
  /// Batched evaluations re-run with the SIMD kernels forced scalar and
  /// compared bit-exactly against the vectorized results. Zero when the
  /// host has no AVX2 (the lane degenerates to scalar-vs-scalar and is
  /// skipped).
  uint64_t simd_lane_checks = 0;
  std::vector<std::string> failures;

  bool ok() const { return failures.empty(); }
  std::string Summary() const;
};

/// Runs the oracle. Deterministic given options.seed.
OracleReport RunDifferentialOracle(const OracleOptions& options);

}  // namespace check
}  // namespace rlcut

#endif  // RLCUT_CHECK_DIFFERENTIAL_ORACLE_H_
