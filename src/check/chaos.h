#ifndef RLCUT_CHECK_CHAOS_H_
#define RLCUT_CHECK_CHAOS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.h"

namespace rlcut {
namespace check {

/// Chaos audit (docs/robustness.md): full training sessions under
/// randomized fault schedules. Every session builds a deterministic
/// problem, trains it fault-free for a reference plan, then re-trains
/// it with a seeded random FaultSchedule armed and asserts one of two
/// acceptable outcomes:
///
///   * masked — retries/redispatch absorbed every fault and the final
///     masters are bit-identical to the reference, or
///   * degraded — the result differs but CheckInvariants() is clean
///     and the plan round-trips through Save/Load/Apply.
///
/// Aborts, hangs, invariant violations and unloadable plans are
/// failures. Every third session additionally exercises the crash
/// lane: a fault-free run auto-checkpoints every other step, the
/// primary checkpoint file is then corrupted, and resume must land on
/// the last-good fallback and continue to a bit-identical final plan.
///
/// Every second session also exercises the streaming lane: an
/// RLCutSession driven over a short diurnal stream with faults armed at
/// the session.ingest_fail / session.publish_fail sites. Injected
/// failures must surface as clean Status errors; retrying the failed
/// call must converge on plans bit-identical to a fault-free streaming
/// reference.
struct ChaosOptions {
  int num_sessions = 16;
  VertexId num_vertices = 192;
  uint64_t num_edges = 1152;
  int num_dcs = 4;
  int max_steps = 5;
  int batch_size = 16;
  int num_threads = 3;
  uint64_t seed = 1;
};

struct ChaosReport {
  uint64_t sessions = 0;
  /// Faulted runs whose masters matched the reference bit-exactly.
  uint64_t masked = 0;
  /// Faulted runs that degraded but stayed valid (see above).
  uint64_t degraded = 0;
  /// Crash-lane resumes (all must be bit-identical).
  uint64_t crash_resumes = 0;
  /// Streaming-lane sessions that converged on the fault-free plans
  /// after retrying injected ingest/publish failures.
  uint64_t stream_recoveries = 0;
  /// Total injected fires across all sessions.
  uint64_t fires = 0;
  std::vector<std::string> failures;

  std::string Summary() const;
};

ChaosReport RunChaos(const ChaosOptions& options);

}  // namespace check
}  // namespace rlcut

#endif  // RLCUT_CHECK_CHAOS_H_
