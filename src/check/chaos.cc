#include "check/chaos.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "cloud/topology.h"
#include "fault/fault.h"
#include "graph/generators.h"
#include "graph/geo.h"
#include "graph/stream.h"
#include "graph/temporal.h"
#include "partition/partition_state.h"
#include "partition/plan_io.h"
#include "rlcut/checkpoint.h"
#include "rlcut/session.h"

namespace rlcut {
namespace check {
namespace {

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Minimal SplitMix64 stream for schedule randomization; the fault
// library itself re-derives per-hit decisions from the schedule seed,
// so this only has to pick rules and corruption points.
struct Rng {
  uint64_t state;
  explicit Rng(uint64_t seed) : state(seed) {}
  uint64_t Next() { return Mix64(state++); }
  uint64_t Below(uint64_t n) { return n == 0 ? 0 : Next() % n; }
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }
};

std::string ScratchPath(const std::string& tag) {
  static std::atomic<uint64_t> counter{0};
  std::ostringstream name;
  name << "rlcut_chaos_" << ::getpid() << "_"
       << counter.fetch_add(1, std::memory_order_relaxed) << "_" << tag;
  return (std::filesystem::temp_directory_path() / name.str()).string();
}

void RemoveWithSidecars(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  const std::string prev = CheckpointFallbackPath(path);
  std::remove(prev.c_str());
  std::remove((prev + ".tmp").c_str());
}

// One deterministic chaos problem; mirrors the checkpoint tests' small
// power-law fixture but re-seeds the graph per session.
struct Problem {
  Topology topology;
  Graph graph;
  std::vector<DcId> locations;
  std::vector<double> sizes;
  PartitionConfig config;

  Problem(const ChaosOptions& options, uint64_t seed)
      : topology(MakeEc2Topology(options.num_dcs, Heterogeneity::kMedium)) {
    PowerLawOptions gen;
    gen.num_vertices = options.num_vertices;
    gen.num_edges = options.num_edges;
    gen.seed = seed;
    graph = GeneratePowerLaw(gen);
    GeoLocatorOptions geo;
    geo.num_dcs = options.num_dcs;
    geo.seed = seed + 101;
    locations = AssignGeoLocations(graph, geo);
    sizes = AssignInputSizes(graph);
    config.model = ComputeModel::kHybridCut;
    config.theta = PartitionState::AutoTheta(graph);
    config.workload = Workload::PageRank();
  }

  std::unique_ptr<PartitionState> MakeState() const {
    auto state = std::make_unique<PartitionState>(&graph, &topology,
                                                  &locations, &sizes, config);
    state->ResetDerived(locations);
    return state;
  }

  std::vector<VertexId> AllVertices() const {
    std::vector<VertexId> all(graph.num_vertices());
    std::iota(all.begin(), all.end(), 0u);
    return all;
  }
};

RLCutOptions TrainerOptions(const ChaosOptions& options, uint64_t seed) {
  RLCutOptions topts;
  topts.max_steps = options.max_steps;
  topts.batch_size = options.batch_size;
  topts.num_threads = options.num_threads;
  topts.seed = seed;
  topts.agent_visit_budget =
      static_cast<int64_t>(options.num_vertices) * 4;
  // A tiny epsilon still converges on an exact plateau (relative
  // improvement of 0.0), so sessions may legitimately stop early; the
  // crash lane checkpoints every step to guarantee a fallback pair.
  topts.convergence_epsilon = 1e-12;
  // Tight deadline + an extra retry round: injected stalls and dropped
  // chunks must resolve through re-dispatch, not by waiting them out.
  topts.batch_deadline_seconds = 0.05;
  topts.chunk_max_retries = 3;
  return topts;
}

// A randomized-but-seeded schedule over the sites a training session
// can hit: pool faults, trainer chunk faults, and checkpoint I/O faults
// (the armed run auto-checkpoints, so those sites are live too).
// plan.* rules target the armed SavePlan probe after training.
fault::FaultSchedule RandomSchedule(uint64_t seed, Rng* rng) {
  struct Candidate {
    const char* site;
    void (*fill)(fault::FaultRule*, Rng*);
  };
  static const Candidate kCandidates[] = {
      {"threadpool.task_throw",
       [](fault::FaultRule* r, Rng* g) {
         r->probability = 0.02 + 0.18 * g->NextDouble();
       }},
      {"threadpool.worker_stall",
       [](fault::FaultRule* r, Rng* g) {
         r->probability = 0.02 + 0.1 * g->NextDouble();
         r->amount = 5 + static_cast<int64_t>(g->Below(40));
       }},
      {"threadpool.worker_crash",
       [](fault::FaultRule* r, Rng* g) {
         r->nth = 1 + static_cast<int64_t>(g->Below(6));
         r->max_fires = 1 + static_cast<int64_t>(g->Below(2));
       }},
      {"trainer.chunk_stall",
       [](fault::FaultRule* r, Rng* g) {
         r->probability = 0.05 + 0.2 * g->NextDouble();
         r->amount = 5 + static_cast<int64_t>(g->Below(60));
       }},
      {"trainer.chunk_abandon",
       [](fault::FaultRule* r, Rng* g) {
         r->probability = 0.05 + 0.2 * g->NextDouble();
       }},
      {"checkpoint.open_fail",
       [](fault::FaultRule* r, Rng* g) {
         r->nth = 1 + static_cast<int64_t>(g->Below(3));
       }},
      {"checkpoint.short_write",
       [](fault::FaultRule* r, Rng* g) {
         r->probability = 0.3 + 0.5 * g->NextDouble();
       }},
      {"checkpoint.fsync_fail",
       [](fault::FaultRule* r, Rng* g) {
         r->probability = 0.3 + 0.5 * g->NextDouble();
       }},
      {"checkpoint.rename_fail",
       [](fault::FaultRule* r, Rng* g) {
         r->nth = 1 + static_cast<int64_t>(g->Below(3));
       }},
      {"plan.short_write", [](fault::FaultRule* r, Rng*) { r->nth = 1; }},
      {"plan.fsync_fail", [](fault::FaultRule* r, Rng*) { r->nth = 1; }},
      {"plan.rename_fail", [](fault::FaultRule* r, Rng*) { r->nth = 1; }},
  };
  constexpr size_t kNumCandidates =
      sizeof(kCandidates) / sizeof(kCandidates[0]);

  fault::FaultSchedule schedule;
  schedule.seed = seed;
  const size_t num_rules = 1 + rng->Below(3);
  std::vector<bool> used(kNumCandidates, false);
  for (size_t i = 0; i < num_rules; ++i) {
    size_t pick = rng->Below(kNumCandidates);
    while (used[pick]) pick = (pick + 1) % kNumCandidates;
    used[pick] = true;
    fault::FaultRule rule;
    rule.site = kCandidates[pick].site;
    kCandidates[pick].fill(&rule, rng);
    schedule.rules.push_back(rule);
  }
  return schedule;
}

// Asserts the crash-consistency contract of an atomic save target: the
// file either does not exist or loads cleanly — never a torn file.
bool CheckpointSlotIsCleanOrAbsent(const std::string& path,
                                   std::string* error) {
  if (!std::filesystem::exists(path)) return true;
  const Result<TrainerCheckpoint> loaded = LoadTrainerCheckpoint(path);
  if (loaded.ok()) return true;
  *error = path + " exists but is torn: " + loaded.status().ToString();
  return false;
}

// The faulted lane of one session. Returns true on success and bumps
// the masked/degraded counter; on failure appends to report->failures.
bool RunFaultedSession(const ChaosOptions& options, const Problem& problem,
                       uint64_t session_seed, int session_index,
                       const std::vector<DcId>& reference,
                       Rng* rng, ChaosReport* report) {
  const std::string ckpt_path =
      ScratchPath("s" + std::to_string(session_index) + ".ckpt");
  const std::string plan_path =
      ScratchPath("s" + std::to_string(session_index) + ".plan");
  auto fail = [&](const std::string& message) {
    fault::Disarm();
    std::ostringstream out;
    out << "session " << session_index << " (seed " << session_seed
        << "): " << message;
    report->failures.push_back(out.str());
    RemoveWithSidecars(ckpt_path);
    RemoveWithSidecars(plan_path);
    return false;
  };

  RLCutOptions topts = TrainerOptions(options, session_seed);
  topts.checkpoint_every_steps = 2;
  topts.checkpoint_path = ckpt_path;

  const fault::FaultSchedule schedule = RandomSchedule(session_seed, rng);
  auto state = problem.MakeState();
  AutomatonPool pool(problem.graph.num_vertices(),
                     problem.topology.num_dcs(), topts);
  fault::Arm(schedule);
  try {
    RLCutTrainer(topts).Train(state.get(), problem.AllVertices(), &pool);
  } catch (const std::exception& e) {
    return fail(std::string("training escaped with an exception under [") +
                schedule.ToSpec() + "]: " + e.what());
  }
  report->fires += fault::TotalFires();

  // Crash-consistency of the auto-checkpoint slots, checked while the
  // checkpoint.* rules are still armed the way the run left them (load
  // has no failure sites, so arming does not affect the probe itself).
  std::string slot_error;
  if (!CheckpointSlotIsCleanOrAbsent(ckpt_path, &slot_error) ||
      !CheckpointSlotIsCleanOrAbsent(CheckpointFallbackPath(ckpt_path),
                                     &slot_error)) {
    return fail("under [" + schedule.ToSpec() + "]: " + slot_error);
  }

  // Armed SavePlan probe: a failing save must report an error and leave
  // no torn file behind.
  const PartitionPlan armed_plan = ExtractPlan(*state);
  const Status armed_save = SavePlan(armed_plan, plan_path);
  if (std::filesystem::exists(plan_path)) {
    const Result<PartitionPlan> probe = LoadPlan(plan_path);
    if (!probe.ok()) {
      return fail("SavePlan under [" + schedule.ToSpec() +
                  "] left a torn plan: " + probe.status().ToString());
    }
  } else if (armed_save.ok()) {
    return fail("SavePlan reported Ok but wrote nothing");
  }
  fault::Disarm();

  // Outcome: bit-identical to the fault-free reference (all faults
  // masked), or degraded but valid.
  if (state->masters() == reference) {
    ++report->masked;
  } else {
    if (!state->CheckInvariants()) {
      return fail("degraded result violates invariants under [" +
                  schedule.ToSpec() + "]");
    }
    const Status saved = SavePlan(ExtractPlan(*state), plan_path);
    if (!saved.ok()) return fail("SavePlan: " + saved.ToString());
    const Result<PartitionPlan> loaded = LoadPlan(plan_path);
    if (!loaded.ok()) return fail("LoadPlan: " + loaded.status().ToString());
    auto replay = problem.MakeState();
    const Status applied = ApplyPlan(*loaded, replay.get());
    if (!applied.ok()) return fail("ApplyPlan: " + applied.ToString());
    if (replay->masters() != state->masters()) {
      return fail("degraded plan did not round-trip bit-identically");
    }
    ++report->degraded;
  }
  RemoveWithSidecars(ckpt_path);
  RemoveWithSidecars(plan_path);
  return true;
}

// The crash lane: a fault-free auto-checkpointing run, then corrupt the
// primary checkpoint and require resume to land on the fallback and
// continue to a bit-identical final plan. Runs unarmed because armed
// runs are not reproducible (thread timing permutes hit indices).
bool RunCrashResumeSession(const ChaosOptions& options,
                           const Problem& problem, uint64_t session_seed,
                           int session_index,
                           const std::vector<DcId>& reference, Rng* rng,
                           ChaosReport* report) {
  const std::string ckpt_path =
      ScratchPath("s" + std::to_string(session_index) + "_crash.ckpt");
  auto fail = [&](const std::string& message) {
    std::ostringstream out;
    out << "session " << session_index << " crash lane (seed "
        << session_seed << "): " << message;
    report->failures.push_back(out.str());
    RemoveWithSidecars(ckpt_path);
    return false;
  };

  RLCutOptions topts = TrainerOptions(options, session_seed);
  // Checkpoint after every step: convergence can stop a session after
  // as few as two steps, and each one autosaves before the convergence
  // check runs, so a primary + fallback pair always exists.
  topts.checkpoint_every_steps = 1;
  topts.checkpoint_path = ckpt_path;
  {
    auto state = problem.MakeState();
    AutomatonPool pool(problem.graph.num_vertices(),
                       problem.topology.num_dcs(), topts);
    RLCutTrainer(topts).Train(state.get(), problem.AllVertices(), &pool);
    if (state->masters() != reference) {
      return fail("auto-checkpointing perturbed the training result");
    }
  }
  if (!std::filesystem::exists(ckpt_path) ||
      !std::filesystem::exists(CheckpointFallbackPath(ckpt_path))) {
    return fail("run did not leave a primary + fallback checkpoint pair");
  }

  // Corrupt the primary: truncate at a random offset or flip a byte.
  std::string bytes;
  {
    std::ifstream in(ckpt_path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  if (bytes.empty()) return fail("primary checkpoint is empty");
  if (rng->Below(2) == 0) {
    bytes.resize(rng->Below(bytes.size()));
  } else {
    bytes[rng->Below(bytes.size())] ^= 0x40;
  }
  {
    std::ofstream out(ckpt_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  const Result<LoadedCheckpoint> loaded =
      LoadTrainerCheckpointWithFallback(ckpt_path);
  if (!loaded.ok()) {
    return fail("resume did not reach the fallback checkpoint: " +
                loaded.status().ToString());
  }
  if (!loaded->used_fallback) {
    return fail("corrupted primary unexpectedly loaded");
  }

  // Continue from the last-good checkpoint on a fresh problem build;
  // the continuation must reproduce the uninterrupted final plan.
  RLCutOptions resume_opts = TrainerOptions(options, session_seed);
  auto state = problem.MakeState();
  AutomatonPool pool(problem.graph.num_vertices(),
                     problem.topology.num_dcs(), resume_opts);
  TrainerSession session;
  const Status restored =
      RestoreCheckpoint(loaded->checkpoint, state.get(), &pool, &session);
  if (!restored.ok()) {
    return fail("RestoreCheckpoint: " + restored.ToString());
  }
  RLCutTrainer trainer(resume_opts);
  const Status resumable = trainer.ValidateResume(session);
  if (!resumable.ok()) {
    return fail("ValidateResume: " + resumable.ToString());
  }
  trainer.Train(state.get(), problem.AllVertices(), &pool, &session);
  if (state->masters() != reference) {
    return fail("resumed run diverged from the uninterrupted run");
  }
  ++report->crash_resumes;
  RemoveWithSidecars(ckpt_path);
  return true;
}

// The streaming lane: an RLCutSession over a short diurnal stream,
// first fault-free for a reference publish sequence, then with faults
// armed at the session ingest/publish sites. Injected failures must
// come back as clean Status errors (never aborts or torn state), and
// retrying the failed call must converge on the reference bit-exactly:
// both sites fail before any mutation, so a retry is a pure re-attempt.
bool RunStreamingFaultedSession(const ChaosOptions& options,
                                uint64_t session_seed, int session_index,
                                Rng* rng, ChaosReport* report) {
  auto fail = [&](const std::string& message) {
    fault::Disarm();
    std::ostringstream out;
    out << "session " << session_index << " streaming lane (seed "
        << session_seed << "): " << message;
    report->failures.push_back(out.str());
    return false;
  };

  // A small temporal problem: half the stream seeds the base graph,
  // the rest arrives in four micro-batches.
  TemporalStreamOptions stream;
  stream.num_vertices = options.num_vertices / 2;
  stream.num_edges = options.num_edges / 2;
  stream.seed = session_seed;
  const TemporalGraph temporal = GenerateDiurnalStream(stream);
  const uint64_t base_count = temporal.edges().size() / 2;
  const Graph base_graph = temporal.Prefix(base_count);
  GeoLocatorOptions geo;
  geo.num_dcs = options.num_dcs;
  geo.seed = session_seed + 77;
  const Topology topology =
      MakeEc2Topology(options.num_dcs, Heterogeneity::kMedium);
  const std::vector<DcId> locations = AssignGeoLocations(base_graph, geo);
  const std::vector<double> sizes = AssignInputSizes(base_graph);

  PartitionerContext ctx;
  ctx.graph = &base_graph;
  ctx.topology = &topology;
  ctx.locations = &locations;
  ctx.input_sizes = &sizes;
  ctx.theta = PartitionState::AutoTheta(base_graph);

  RLCutSessionOptions sopts;
  sopts.initial = TrainerOptions(options, session_seed);
  sopts.initial.checkpoint_every_steps = 0;
  sopts.incremental = sopts.initial;

  constexpr int kNumBatches = 4;
  std::vector<MicroBatch> batches;
  {
    StreamBuffer buffer;
    const std::vector<TimedEdge>& all = temporal.edges();
    const SimTime start = all[base_count].time;
    const SimTime end = all.back().time + SimTime(1);
    const int64_t span = end.micros() - start.micros();
    uint64_t next = base_count;
    for (int b = 0; b < kNumBatches; ++b) {
      SimTime watermark = b + 1 == kNumBatches
                              ? end
                              : SimTime::Micros(start.micros() +
                                                span * (b + 1) / kNumBatches);
      while (next < all.size() && all[next].time <= watermark) {
        buffer.Push(StreamEvent{all[next], next});
        ++next;
      }
      batches.push_back(buffer.Cut(watermark));
    }
  }
  const MigrationBudget budget{options.num_vertices / 4, 1e9};

  // One drive of the whole stream; with `armed`, every call retries
  // through injected failures (each site fails before any mutation).
  auto drive = [&](bool armed, std::vector<std::vector<DcId>>* published,
                   std::string* error) {
    Result<std::unique_ptr<RLCutSession>> opened =
        RLCutSession::Open(ctx, sopts);
    if (!opened.ok()) {
      *error = "Open: " + opened.status().ToString();
      return false;
    }
    std::unique_ptr<RLCutSession> session = std::move(*opened);
    auto retry = [&](auto&& call, const char* what,
                     std::string* err) -> bool {
      for (int attempt = 0; attempt < 64; ++attempt) {
        const Status status = call();
        if (status.ok()) return true;
        if (!armed) {
          *err = std::string(what) + ": " + status.ToString();
          return false;
        }
        if (status.message().find("injected fault") == std::string::npos) {
          *err = std::string(what) +
                 " failed with a non-injected error under faults: " +
                 status.ToString();
          return false;
        }
      }
      *err = std::string(what) + ": injected fault did not stop firing";
      return false;
    };
    for (const MicroBatch& batch : batches) {
      if (!retry(
              [&] {
                Result<ApplyResult> r = session->ApplyDelta(batch);
                return r.ok() ? Status::Ok() : r.status();
              },
              "ApplyDelta", error)) {
        return false;
      }
      Result<ReoptimizeResult> reopt = session->MaybeReoptimize(budget);
      if (!reopt.ok()) {
        *error = "MaybeReoptimize: " + reopt.status().ToString();
        return false;
      }
      std::vector<DcId> masters;
      if (!retry(
              [&] {
                Result<PublishedPlan> r = session->PublishPlan();
                if (r.ok()) masters = std::move(r->masters);
                return r.ok() ? Status::Ok() : r.status();
              },
              "PublishPlan", error)) {
        return false;
      }
      published->push_back(std::move(masters));
    }
    if (session->live_state() == nullptr ||
        !session->live_state()->CheckInvariants()) {
      *error = "final streaming state violates invariants";
      return false;
    }
    return true;
  };

  std::vector<std::vector<DcId>> reference;
  std::string error;
  if (!drive(/*armed=*/false, &reference, &error)) {
    return fail("fault-free drive: " + error);
  }

  fault::FaultSchedule schedule;
  schedule.seed = session_seed;
  for (const char* site : {"session.ingest_fail", "session.publish_fail"}) {
    if (rng->Below(2) == 0 && schedule.rules.size() < 1) {
      // At most one probabilistic rule; the other site gets a bounded
      // deterministic rule so both fire in a typical run.
      fault::FaultRule rule;
      rule.site = site;
      rule.probability = 0.2 + 0.4 * rng->NextDouble();
      rule.max_fires = 1 + static_cast<int64_t>(rng->Below(4));
      schedule.rules.push_back(rule);
    } else {
      fault::FaultRule rule;
      rule.site = site;
      rule.nth = 1 + static_cast<int64_t>(rng->Below(3));
      rule.max_fires = 1 + static_cast<int64_t>(rng->Below(3));
      schedule.rules.push_back(rule);
    }
  }

  std::vector<std::vector<DcId>> faulted;
  fault::Arm(schedule);
  const bool ok = drive(/*armed=*/true, &faulted, &error);
  report->fires += fault::TotalFires();
  fault::Disarm();
  if (!ok) {
    return fail("under [" + schedule.ToSpec() + "]: " + error);
  }
  if (faulted != reference) {
    return fail("retried streaming run diverged from the fault-free "
                "reference under [" +
                schedule.ToSpec() + "]");
  }
  ++report->stream_recoveries;
  return true;
}

}  // namespace

std::string ChaosReport::Summary() const {
  std::ostringstream out;
  out << "chaos: " << sessions << " sessions (" << masked << " masked, "
      << degraded << " degraded-valid, " << crash_resumes
      << " crash resumes, " << stream_recoveries
      << " stream recoveries), " << fires << " injected fires, "
      << failures.size() << " failures";
  return out.str();
}

ChaosReport RunChaos(const ChaosOptions& options) {
  ChaosReport report;
  // Never run with a leftover schedule from the caller.
  fault::Disarm();
  for (int s = 0; s < options.num_sessions; ++s) {
    const uint64_t session_seed = options.seed + static_cast<uint64_t>(s);
    Rng rng(Mix64(session_seed) ^ 0xc4a05);
    const Problem problem(options, session_seed);

    // Fault-free reference (no checkpointing: the faulted and crash
    // lanes must match it even though they auto-checkpoint).
    std::vector<DcId> reference;
    {
      auto state = problem.MakeState();
      AutomatonPool pool(problem.graph.num_vertices(),
                         problem.topology.num_dcs(),
                         TrainerOptions(options, session_seed));
      RLCutTrainer(TrainerOptions(options, session_seed))
          .Train(state.get(), problem.AllVertices(), &pool);
      reference = state->masters();
    }

    ++report.sessions;
    RunFaultedSession(options, problem, session_seed, s, reference, &rng,
                      &report);
    if (s % 3 == 2) {
      RunCrashResumeSession(options, problem, session_seed, s, reference,
                            &rng, &report);
    }
    if (s % 2 == 1) {
      RunStreamingFaultedSession(options, session_seed, s, &rng, &report);
    }
  }
  fault::Disarm();
  return report;
}

}  // namespace check
}  // namespace rlcut
