#include "check/stream_oracle.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cloud/topology.h"
#include "common/sim_time.h"
#include "graph/geo.h"
#include "graph/stream.h"
#include "graph/temporal.h"
#include "partition/migration.h"
#include "rlcut/session.h"

namespace rlcut {
namespace check {
namespace {

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct Rng {
  uint64_t state;
  explicit Rng(uint64_t seed) : state(seed) {}
  uint64_t Next() { return Mix64(state++); }
  uint64_t Below(uint64_t n) { return n == 0 ? 0 : Next() % n; }
};

std::string ScratchPath(const std::string& tag) {
  static std::atomic<uint64_t> counter{0};
  std::ostringstream name;
  name << "rlcut_stream_" << ::getpid() << "_"
       << counter.fetch_add(1, std::memory_order_relaxed) << "_" << tag;
  return (std::filesystem::temp_directory_path() / name.str()).string();
}

void RemoveWithSidecars(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  std::remove((path + ".prev").c_str());
  std::remove((path + ".prev.tmp").c_str());
}

// One deterministic streaming problem: a diurnal temporal stream whose
// first half seeds the base graph and whose second half arrives in
// `num_batches` micro-batch windows, plus a mid-stream topology event.
struct StreamProblem {
  Topology topology;
  Topology degraded_topology;  // applied mid-stream via UpdateTopology
  TemporalGraph temporal;
  uint64_t base_count;
  Graph base_graph;
  std::vector<DcId> locations;
  std::vector<double> sizes;
  // Per batch: the stream events (globally sequenced) and the watermark.
  std::vector<std::vector<StreamEvent>> batches;
  std::vector<SimTime> watermarks;

  StreamProblem(const StreamOracleOptions& options, uint64_t seed)
      : topology(MakeEc2Topology(options.num_dcs, Heterogeneity::kMedium)),
        temporal(MakeStream(options, seed)),
        base_count(temporal.edges().size() / 2),
        base_graph(temporal.Prefix(base_count)) {
    GeoLocatorOptions geo;
    geo.num_dcs = options.num_dcs;
    geo.seed = seed + 101;
    locations = AssignGeoLocations(base_graph, geo);
    sizes = AssignInputSizes(base_graph);

    std::vector<DataCenter> dcs = topology.dcs();
    for (DataCenter& dc : dcs) dc.uplink_gbps *= 0.7;
    degraded_topology = Topology(std::move(dcs));

    // Window the streamed suffix into strictly increasing watermarks.
    const std::vector<TimedEdge>& all = temporal.edges();
    const SimTime start =
        base_count < all.size() ? all[base_count].time : SimTime(0);
    const SimTime end = all.back().time + SimTime(1);
    batches.assign(options.num_batches, {});
    const int64_t span = end.micros() - start.micros();
    for (int b = 0; b < options.num_batches; ++b) {
      watermarks.push_back(SimTime::Micros(
          start.micros() + span * (b + 1) / options.num_batches));
    }
    watermarks.back() = end;  // catch the final edge exactly
    int batch = 0;
    for (uint64_t i = base_count; i < all.size(); ++i) {
      while (all[i].time > watermarks[batch]) ++batch;
      batches[batch].push_back(StreamEvent{all[i], i});
    }
  }

  static TemporalGraph MakeStream(const StreamOracleOptions& options,
                                  uint64_t seed) {
    TemporalStreamOptions stream;
    stream.num_vertices = options.num_vertices;
    stream.num_edges = options.num_edges;
    stream.horizon_seconds = 24 * 3600;
    stream.seed = seed;
    return GenerateDiurnalStream(stream);
  }

  PartitionerContext Context() const {
    PartitionerContext ctx;
    ctx.graph = &base_graph;
    ctx.topology = &topology;
    ctx.locations = &locations;
    ctx.input_sizes = &sizes;
    ctx.theta = PartitionState::AutoTheta(base_graph);
    ctx.seed = 1;
    return ctx;
  }

  RLCutSessionOptions SessionOptions(const StreamOracleOptions& options,
                                     uint64_t seed) const {
    RLCutSessionOptions sopts;
    sopts.initial.max_steps = options.max_steps;
    sopts.initial.batch_size = 16;
    sopts.initial.num_threads = 2;
    sopts.initial.seed = seed;
    sopts.initial.agent_visit_budget =
        static_cast<int64_t>(base_graph.num_vertices()) * 4;
    sopts.incremental = sopts.initial;
    sopts.incremental.max_steps = std::max(1, options.max_steps - 1);
    return sopts;
  }
};

// Everything one lane records about its run, for cross-lane comparison.
struct LaneTrace {
  std::vector<std::vector<DcId>> published;  // masters per publish
  std::vector<uint64_t> versions;
};

}  // namespace

std::string StreamOracleReport::Summary() const {
  std::ostringstream out;
  out << "stream: " << sessions << " sessions, " << publishes
      << " publishes (" << budget_clamped << " budget-clamped), " << resumes
      << " resumes, " << failures.size() << " failures";
  return out.str();
}

namespace {

// Drives one session lane: re-optimize + publish, then per batch
// ApplyDelta -> (mid-stream topology event) -> re-optimize -> publish.
// `shuffle_rng` non-null turns on the adversarial arrival order.
// `resume_path` non-null checkpoints after the mid batch, drops the
// session, and restores from the file.
bool DriveLane(const StreamOracleOptions& options,
               const StreamProblem& problem, uint64_t session_seed,
               Rng* shuffle_rng, const std::string* resume_path,
               LaneTrace* trace, StreamOracleReport* report,
               std::string* error) {
  const MigrationBudget budget{options.budget_vertices,
                               options.budget_bytes};
  const RLCutSessionOptions sopts =
      problem.SessionOptions(options, session_seed);
  Result<std::unique_ptr<RLCutSession>> opened =
      RLCutSession::Open(problem.Context(), sopts);
  if (!opened.ok()) {
    *error = "Open: " + opened.status().ToString();
    return false;
  }
  std::unique_ptr<RLCutSession> session = std::move(*opened);
  StreamBuffer buffer;

  auto reoptimize_and_publish = [&](const char* where) {
    Result<ReoptimizeResult> reopt = session->MaybeReoptimize(budget);
    if (!reopt.ok()) {
      *error = std::string(where) +
               " MaybeReoptimize: " + reopt.status().ToString();
      return false;
    }
    Result<PublishedPlan> plan = session->PublishPlan();
    if (!plan.ok()) {
      *error = std::string(where) +
               " PublishPlan: " + plan.status().ToString();
      return false;
    }
    if (plan->migration.vertices_moved > budget.max_vertices ||
        plan->migration.bytes_moved > budget.max_bytes) {
      std::ostringstream out;
      out << where << " publish v" << plan->version << " exceeded budget: "
          << plan->migration.vertices_moved << " vertices / "
          << plan->migration.bytes_moved << " bytes";
      *error = out.str();
      return false;
    }
    if (plan->reverted_vertices > 0 || (reopt->reverted_vertices > 0)) {
      ++report->budget_clamped;
    }
    trace->published.push_back(plan->masters);
    trace->versions.push_back(plan->version);
    return true;
  };

  if (!reoptimize_and_publish("initial")) return false;

  const int mid = options.num_batches / 2;
  const int topology_batch = options.num_batches / 3;
  for (int b = 0; b < options.num_batches; ++b) {
    std::vector<StreamEvent> events = problem.batches[b];
    if (shuffle_rng != nullptr) {
      // Adversarial arrival: shuffled within the window, a few events
      // from the next window pushed early (they stay pending until
      // their own cut), and every 7th event duplicated.
      for (size_t i = events.size(); i > 1; --i) {
        std::swap(events[i - 1], events[shuffle_rng->Below(i)]);
      }
      if (b + 1 < options.num_batches && !problem.batches[b + 1].empty()) {
        events.push_back(problem.batches[b + 1].front());
      }
    }
    for (size_t i = 0; i < events.size(); ++i) {
      buffer.Push(events[i]);
      if (shuffle_rng != nullptr && i % 7 == 3) buffer.Push(events[i]);
    }
    const MicroBatch batch = buffer.Cut(problem.watermarks[b]);
    Result<ApplyResult> applied = session->ApplyDelta(batch);
    if (!applied.ok()) {
      *error = "batch " + std::to_string(b) +
               " ApplyDelta: " + applied.status().ToString();
      return false;
    }
    if (b == topology_batch) {
      Result<TopologyUpdateResult> updated =
          session->UpdateTopology(problem.degraded_topology);
      if (!updated.ok()) {
        *error = "UpdateTopology: " + updated.status().ToString();
        return false;
      }
    }
    if (!reoptimize_and_publish(("batch " + std::to_string(b)).c_str())) {
      return false;
    }
    if (resume_path != nullptr && b == mid) {
      if (Status saved = session->SaveCheckpoint(*resume_path);
          !saved.ok()) {
        *error = "SaveCheckpoint: " + saved.ToString();
        return false;
      }
      session.reset();
      Result<std::unique_ptr<RLCutSession>> restored =
          RLCutSession::Restore(*resume_path, sopts);
      if (!restored.ok()) {
        *error = "Restore: " + restored.status().ToString();
        return false;
      }
      session = std::move(*restored);
    }
  }

  // Terminal checks: the live state must be internally consistent and
  // the live graph must equal a cold application of the same edits.
  const PartitionState* state = session->live_state();
  if (state == nullptr || !state->CheckInvariants()) {
    *error = "final state violates invariants";
    return false;
  }
  const uint64_t expected_edges = problem.temporal.edges().size();
  if (session->num_edges() != expected_edges) {
    *error = "session holds " + std::to_string(session->num_edges()) +
             " edges, cold application holds " +
             std::to_string(expected_edges);
    return false;
  }
  const Graph cold = problem.temporal.Prefix(expected_edges);
  const Graph& live = state->graph();
  if (live.num_edges() != cold.num_edges()) {
    *error = "live graph edge count diverged from cold application";
    return false;
  }
  for (EdgeId e = 0; e < cold.num_edges(); ++e) {
    const Edge a = live.GetEdge(e);
    const Edge b = cold.GetEdge(e);
    if (a.src != b.src || a.dst != b.dst) {
      *error = "live graph edge " + std::to_string(e) +
               " diverged from cold application";
      return false;
    }
  }
  return true;
}

// Re-tallies every publish of the reference lane against an
// independently cold-built problem: the migration delta between
// consecutive published plans must respect the budget under the exact
// sizes the session was using (initial sizes before the first applied
// batch, degree-derived sizes afterwards).
bool RecheckBudgets(const StreamOracleOptions& options,
                    const StreamProblem& problem, const LaneTrace& trace,
                    std::string* error) {
  const std::vector<DcId>* previous = &problem.locations;
  for (size_t p = 0; p < trace.published.size(); ++p) {
    // Publish 0 happens before any batch; publish k covers batches
    // [0, k), so the graph holds the base edges plus those batches.
    uint64_t applied = 0;
    for (size_t b = 0; b < p && b < problem.batches.size(); ++b) {
      applied += problem.batches[b].size();
    }
    std::vector<double> sizes;
    if (applied == 0) {
      sizes = problem.sizes;
    } else {
      sizes = AssignInputSizes(
          problem.temporal.Prefix(problem.base_count + applied));
    }
    const MigrationSummary delta = PlanMigration(
        *previous, trace.published[p], sizes, problem.topology);
    if (delta.vertices_moved > options.budget_vertices ||
        delta.bytes_moved > options.budget_bytes) {
      std::ostringstream out;
      out << "cold re-tally of publish " << p << " exceeds the budget: "
          << delta.vertices_moved << " vertices / " << delta.bytes_moved
          << " bytes";
      *error = out.str();
      return false;
    }
    previous = &trace.published[p];
  }
  return true;
}

}  // namespace

StreamOracleReport RunStreamOracle(const StreamOracleOptions& options) {
  StreamOracleReport report;
  for (int s = 0; s < options.num_sessions; ++s) {
    const uint64_t session_seed = options.seed + static_cast<uint64_t>(s);
    const StreamProblem problem(options, session_seed);
    ++report.sessions;
    auto fail = [&](const std::string& message) {
      std::ostringstream out;
      out << "stream session " << s << " (seed " << session_seed
          << "): " << message;
      report.failures.push_back(out.str());
    };

    LaneTrace reference;
    std::string error;
    if (!DriveLane(options, problem, session_seed, nullptr, nullptr,
                   &reference, &report, &error)) {
      fail("reference lane: " + error);
      continue;
    }
    report.publishes += reference.published.size();
    if (!RecheckBudgets(options, problem, reference, &error)) {
      fail(error);
      continue;
    }

    // Shuffle lane: identical cuts, therefore identical publishes.
    {
      LaneTrace shuffled;
      Rng rng(Mix64(session_seed) ^ 0x5eed);
      StreamOracleReport scratch;  // lane counters must not double-count
      if (!DriveLane(options, problem, session_seed, &rng, nullptr,
                     &shuffled, &scratch, &error)) {
        fail("shuffle lane: " + error);
        continue;
      }
      if (shuffled.published != reference.published ||
          shuffled.versions != reference.versions) {
        fail("shuffled arrival diverged from in-order arrival");
        continue;
      }
    }

    // Resume lane: checkpoint mid-stream, restore, finish identically.
    {
      LaneTrace resumed;
      const std::string path = ScratchPath("s" + std::to_string(s));
      StreamOracleReport scratch;
      const bool ok = DriveLane(options, problem, session_seed, nullptr,
                                &path, &resumed, &scratch, &error);
      RemoveWithSidecars(path);
      if (!ok) {
        fail("resume lane: " + error);
        continue;
      }
      if (resumed.published != reference.published ||
          resumed.versions != reference.versions) {
        fail("restored session diverged from the uninterrupted session");
        continue;
      }
      ++report.resumes;
    }
  }
  return report;
}

}  // namespace check
}  // namespace rlcut
