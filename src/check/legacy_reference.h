#ifndef RLCUT_CHECK_LEGACY_REFERENCE_H_
#define RLCUT_CHECK_LEGACY_REFERENCE_H_

#include "partition/partition_state.h"

namespace rlcut {
namespace check {

/// Reference objective computed the way the pre-SoA bookkeeping did it:
/// an array-of-structs pass that rebuilds per-vertex per-DC membership
/// flags from the public edge placement, walks them vertex-by-vertex
/// with nested per-DC loops (no bitmasks, no popcounts, no incremental
/// state), and accumulates mirror traffic one replica at a time.
///
/// Pricing funnels through the live state's ObjectiveFromAggregates, so
/// on dyadic-exact oracle instances — where every aggregate addition is
/// exact and therefore order-independent — the result must be
/// *bit-identical* to CurrentObjective() no matter how the SoA fast
/// path regrouped its additions. Any difference is a logic bug in the
/// flat-bookkeeping rewrite, not floating-point noise.
///
/// O(|E| + |V| * M) per call; intended for the differential oracle and
/// tests, not production paths.
Objective LegacyReferenceObjective(const PartitionState& state);

}  // namespace check
}  // namespace rlcut

#endif  // RLCUT_CHECK_LEGACY_REFERENCE_H_
