#ifndef RLCUT_CHECK_RENUMBER_ORACLE_H_
#define RLCUT_CHECK_RENUMBER_ORACLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.h"

namespace rlcut {
namespace check {

/// Differential oracle for vertex renumbering (graph/transform.h) and
/// the memory-mapped .rlg store (graph/rlg.h). On small dyadic-exact
/// instances (same discipline as check/differential_oracle.h — every
/// constant is a small multiple of a power of two, so all additively
/// maintained aggregates are exact and order-independent) it demands
/// *bit-exact* agreement across four lanes:
///
///   * structure — the built permutation is a bijection, the reordered
///     graph preserves per-vertex degrees and the edge multiset, and
///     old_edge_of_new maps every reordered edge back to the original
///     edge with mirrored endpoints;
///   * evaluation invariance — a PartitionState built on the reordered
///     graph with permuted attributes reports bit-identical objectives,
///     move costs and WAN bytes, and stays bit-identical under mirrored
///     move sequences (MoveMaster / PlaceEdge / SetMaster through the
///     permutation), including every EvaluateMoveAll /
///     EvaluatePlaceEdgeAll entry;
///   * plan map-back — a plan produced on the reordered instance
///     (trained, for hybrid-cut; randomized, for explicit placement),
///     mapped back to original ids through the inverse permutation and
///     old_edge_of_new, prices bit-identically on the original graph;
///   * mmap round-trip — the reordered graph written to .rlg and
///     reopened through MmapGraph carries the correct orig-ids section
///     and produces bit-identical objectives through the mapped views.
///
/// Deliberately NOT asserted: bit-exact trainer *trajectories* across
/// renumbering. The trainer's agent sampling breaks degree ties by
/// vertex id, so renumbering legitimately changes batch composition and
/// hence the trajectory. What renumbering must never change — and what
/// this oracle pins down — is the meaning of any state or plan: every
/// evaluation is invariant, and every published artifact maps back to
/// original ids with an identical objective.
struct RenumberOracleOptions {
  /// Independent instances; graph kind, order kind and compute model
  /// are cycled per instance.
  int num_instances = 12;
  VertexId num_vertices = 96;
  uint64_t num_edges = 384;
  int num_dcs = 4;
  /// Mirrored mutating moves per instance.
  int moves_per_instance = 48;
  /// Vertices whose EvaluateMoveAll is mirrored per instance (capped at
  /// num_vertices).
  int evals_per_instance = 32;
  /// Trainer steps for the map-back lane's hybrid training run.
  int max_steps = 3;
  uint64_t seed = 1;
  /// Stop collecting after this many failures.
  int max_failures = 16;
};

struct RenumberOracleReport {
  uint64_t instances = 0;
  uint64_t structure_checks = 0;
  uint64_t mirrored_evals = 0;
  uint64_t mirrored_moves = 0;
  uint64_t mapback_checks = 0;
  uint64_t mmap_checks = 0;
  std::vector<std::string> failures;

  bool ok() const { return failures.empty(); }
  std::string Summary() const;
};

/// Runs the oracle. Deterministic given options.seed.
RenumberOracleReport RunRenumberOracle(const RenumberOracleOptions& options);

}  // namespace check
}  // namespace rlcut

#endif  // RLCUT_CHECK_RENUMBER_ORACLE_H_
