#ifndef RLCUT_CHECK_INVARIANTS_H_
#define RLCUT_CHECK_INVARIANTS_H_

#include "partition/partition_state.h"

namespace rlcut {
namespace check {

/// Runtime switch for sampled invariant checking inside hot loops
/// (notably the trainer's step loop), controlled by the
/// RLCUT_DEBUG_INVARIANTS environment variable:
///
///   unset, "" or "0"  -> disabled (the default; zero overhead)
///   "1" or non-number -> check every step
///   "N" (N > 1)       -> check every N-th step (sampled)
///
/// The variable is re-read on every call so tests can toggle it with
/// setenv; a check costs O(|E| + |V| M) (PartitionState::CheckInvariants
/// rebuilds the state from scratch), hence the sampling knob.
bool DebugInvariantsEnabled();

/// Check period configured by RLCUT_DEBUG_INVARIANTS (>= 1). Meaningful
/// only when DebugInvariantsEnabled().
int DebugInvariantsInterval();

/// True when `step` should be invariant-checked under the current
/// environment configuration.
bool ShouldCheckInvariantsAtStep(int step);

/// Runs state.CheckInvariants() when the environment enables it for
/// `step`; returns false only on an actual invariant violation.
bool MaybeCheckInvariants(const PartitionState& state, int step);

}  // namespace check
}  // namespace rlcut

#endif  // RLCUT_CHECK_INVARIANTS_H_
