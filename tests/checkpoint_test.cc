#include <cstdio>
#include <fstream>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cloud/topology.h"
#include "graph/generators.h"
#include "graph/geo.h"
#include "rlcut/checkpoint.h"

namespace rlcut {
namespace {

// Small deterministic problem + trainer options shared by all tests.
// Determinism requires a visit budget instead of wall-clock T_opt and a
// fixed shard count (RNG states are per shard; the thread count is a
// host property and may vary freely across pause/resume).
class CheckpointTest : public ::testing::Test {
 protected:
  CheckpointTest() : topology_(MakeEc2Topology(4, Heterogeneity::kMedium)) {
    PowerLawOptions opt;
    opt.num_vertices = 384;
    opt.num_edges = 3072;
    graph_ = GeneratePowerLaw(opt);
    GeoLocatorOptions geo;
    geo.num_dcs = 4;
    locations_ = AssignGeoLocations(graph_, geo);
    sizes_ = AssignInputSizes(graph_);
    config_.model = ComputeModel::kHybridCut;
    config_.theta = PartitionState::AutoTheta(graph_);
    config_.workload = Workload::PageRank();
  }

  RLCutOptions Options(uint64_t seed) const {
    RLCutOptions options;
    options.max_steps = 6;
    options.batch_size = 16;
    options.num_threads = 2;
    options.seed = seed;
    options.agent_visit_budget =
        static_cast<int64_t>(graph_.num_vertices()) * 4;
    // Keep early convergence out of the way of the pause points below.
    options.convergence_epsilon = 1e-9;
    return options;
  }

  std::unique_ptr<PartitionState> MakeState() const {
    auto state = std::make_unique<PartitionState>(
        &graph_, &topology_, &locations_, &sizes_, config_);
    state->ResetDerived(locations_);
    return state;
  }

  std::vector<VertexId> AllVertices() const {
    std::vector<VertexId> all(graph_.num_vertices());
    std::iota(all.begin(), all.end(), 0u);
    return all;
  }

  // Reference: the uninterrupted run.
  std::vector<DcId> UninterruptedMasters(const RLCutOptions& options) const {
    auto state = MakeState();
    AutomatonPool pool(graph_.num_vertices(), topology_.num_dcs(), options);
    RLCutTrainer(options).Train(state.get(), AllVertices(), &pool);
    return state->masters();
  }

  std::string TempPath(const std::string& name) const {
    return ::testing::TempDir() + "/" + name;
  }

  Topology topology_;
  Graph graph_;
  std::vector<DcId> locations_;
  std::vector<double> sizes_;
  PartitionConfig config_;
};

TEST_F(CheckpointTest, InMemoryPauseResumeMatchesUninterrupted) {
  const RLCutOptions options = Options(/*seed=*/1);
  const std::vector<DcId> reference = UninterruptedMasters(options);

  auto state = MakeState();
  AutomatonPool pool(graph_.num_vertices(), topology_.num_dcs(), options);
  RLCutTrainer trainer(options);
  TrainerSession session;
  session.stop_after_step = 2;
  trainer.Train(state.get(), AllVertices(), &pool, &session);
  ASSERT_TRUE(session.paused);
  ASSERT_FALSE(session.finished);
  ASSERT_EQ(session.next_step, 2);

  session.stop_after_step = -1;
  const TrainResult result =
      trainer.Train(state.get(), AllVertices(), &pool, &session);
  EXPECT_TRUE(session.finished);
  EXPECT_EQ(state->masters(), reference);
  // The stitched telemetry spans the whole run from step 0.
  ASSERT_FALSE(result.steps.empty());
  EXPECT_EQ(result.steps.front().step, 0);
}

TEST_F(CheckpointTest, SeedSweepResumeEqualsUninterrupted) {
  for (const uint64_t seed : {1ull, 7ull, 23ull}) {
    for (const int pause_at : {1, 3}) {
      const RLCutOptions options = Options(seed);
      const std::vector<DcId> reference = UninterruptedMasters(options);

      // Pause, checkpoint through disk, restore onto a *fresh* problem
      // and a fresh trainer, then run to completion.
      const std::string path = TempPath(
          "sweep_" + std::to_string(seed) + "_" + std::to_string(pause_at));
      {
        auto state = MakeState();
        AutomatonPool pool(graph_.num_vertices(), topology_.num_dcs(),
                           options);
        RLCutTrainer trainer(options);
        TrainerSession session;
        session.stop_after_step = pause_at;
        trainer.Train(state.get(), AllVertices(), &pool, &session);
        const TrainerCheckpoint checkpoint =
            CaptureCheckpoint(*state, pool, session, options.seed);
        ASSERT_TRUE(SaveTrainerCheckpoint(checkpoint, path).ok());
      }
      Result<TrainerCheckpoint> loaded = LoadTrainerCheckpoint(path);
      ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
      std::remove(path.c_str());

      auto state = MakeState();
      AutomatonPool pool(graph_.num_vertices(), topology_.num_dcs(),
                         options);
      TrainerSession session;
      ASSERT_TRUE(
          RestoreCheckpoint(*loaded, state.get(), &pool, &session).ok());
      RLCutTrainer(options).Train(state.get(), AllVertices(), &pool,
                                  &session);
      EXPECT_EQ(state->masters(), reference)
          << "seed=" << seed << " pause_at=" << pause_at;
    }
  }
}

TEST_F(CheckpointTest, ProbabilitySelectionRestoresRngExactly) {
  // kProbability is the only selection strategy that draws from the
  // per-shard PRNGs, so it exercises the RNG state round-trip.
  RLCutOptions options = Options(/*seed=*/5);
  options.selection = ActionSelection::kProbability;
  const std::vector<DcId> reference = UninterruptedMasters(options);

  auto state = MakeState();
  AutomatonPool pool(graph_.num_vertices(), topology_.num_dcs(), options);
  RLCutTrainer trainer(options);
  TrainerSession session;
  session.stop_after_step = 2;
  trainer.Train(state.get(), AllVertices(), &pool, &session);
  ASSERT_EQ(session.rng_states.size(), trainer.num_shards());
  EXPECT_EQ(session.num_shards, trainer.num_shards());

  session.stop_after_step = -1;
  trainer.Train(state.get(), AllVertices(), &pool, &session);
  EXPECT_EQ(state->masters(), reference);
}

TEST_F(CheckpointTest, ResumeUnderDifferentThreadCountIsBitIdentical) {
  // The shard count is a checkpoint property; the thread count is a
  // host property. A run paused on a 2-thread host and resumed on 1-
  // and 4-thread hosts must finish bit-identical to the uninterrupted
  // run — including when kProbability draws from the per-shard PRNGs.
  for (const ActionSelection selection :
       {ActionSelection::kUcbBlend, ActionSelection::kProbability}) {
    RLCutOptions options = Options(/*seed=*/11);
    options.selection = selection;
    const std::vector<DcId> reference = UninterruptedMasters(options);

    const std::string path = TempPath("xthread.ckpt");
    {
      auto state = MakeState();
      AutomatonPool pool(graph_.num_vertices(), topology_.num_dcs(),
                         options);
      RLCutTrainer trainer(options);
      TrainerSession session;
      session.stop_after_step = 3;
      trainer.Train(state.get(), AllVertices(), &pool, &session);
      const TrainerCheckpoint checkpoint =
          CaptureCheckpoint(*state, pool, session, options.seed);
      ASSERT_TRUE(SaveTrainerCheckpoint(checkpoint, path).ok());
    }
    Result<TrainerCheckpoint> loaded = LoadTrainerCheckpoint(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    std::remove(path.c_str());

    for (const int resume_threads : {1, 4}) {
      RLCutOptions resume_options = options;
      resume_options.num_threads = resume_threads;
      auto state = MakeState();
      AutomatonPool pool(graph_.num_vertices(), topology_.num_dcs(),
                         resume_options);
      TrainerSession session;
      ASSERT_TRUE(
          RestoreCheckpoint(*loaded, state.get(), &pool, &session).ok());
      RLCutTrainer trainer(resume_options);
      ASSERT_TRUE(trainer.ValidateResume(session).ok());
      trainer.Train(state.get(), AllVertices(), &pool, &session);
      EXPECT_EQ(state->masters(), reference)
          << "resume_threads=" << resume_threads
          << " selection=" << static_cast<int>(selection);
    }
  }
}

TEST_F(CheckpointTest, ValidateResumeRejectsShardCountMismatch) {
  const RLCutOptions options = Options(/*seed=*/3);
  auto state = MakeState();
  AutomatonPool pool(graph_.num_vertices(), topology_.num_dcs(), options);
  RLCutTrainer trainer(options);
  TrainerSession session;
  session.stop_after_step = 2;
  trainer.Train(state.get(), AllVertices(), &pool, &session);

  RLCutOptions mismatched = options;
  mismatched.num_shards = static_cast<int>(trainer.num_shards()) + 1;
  const Status status = RLCutTrainer(mismatched).ValidateResume(session);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("shards"), std::string::npos);

  // A legacy (v1) session carries no shard count; the rng-state count
  // stands in for it, so a trainer with a matching shard count resumes.
  TrainerSession legacy = session;
  legacy.num_shards = 0;
  EXPECT_TRUE(trainer.ValidateResume(legacy).ok());
}

TEST_F(CheckpointTest, ResumingFinishedRunIsANoOp) {
  const RLCutOptions options = Options(/*seed=*/1);
  auto state = MakeState();
  AutomatonPool pool(graph_.num_vertices(), topology_.num_dcs(), options);
  RLCutTrainer trainer(options);
  TrainerSession session;
  trainer.Train(state.get(), AllVertices(), &pool, &session);
  ASSERT_TRUE(session.finished);
  const std::vector<DcId> final_masters = state->masters();

  const TrainResult again =
      trainer.Train(state.get(), AllVertices(), &pool, &session);
  EXPECT_TRUE(again.converged);
  EXPECT_EQ(state->masters(), final_masters);
}

TEST_F(CheckpointTest, CheckpointFileRoundTripsAllFields) {
  const RLCutOptions options = Options(/*seed=*/9);
  auto state = MakeState();
  AutomatonPool pool(graph_.num_vertices(), topology_.num_dcs(), options);
  RLCutTrainer trainer(options);
  TrainerSession session;
  session.stop_after_step = 2;
  trainer.Train(state.get(), AllVertices(), &pool, &session);

  const TrainerCheckpoint saved =
      CaptureCheckpoint(*state, pool, session, options.seed);
  const std::string path = TempPath("roundtrip.ckpt");
  ASSERT_TRUE(SaveTrainerCheckpoint(saved, path).ok());
  Result<TrainerCheckpoint> loaded = LoadTrainerCheckpoint(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->num_vertices, saved.num_vertices);
  EXPECT_EQ(loaded->num_dcs, saved.num_dcs);
  EXPECT_EQ(loaded->seed, saved.seed);
  EXPECT_EQ(loaded->model, saved.model);
  EXPECT_EQ(loaded->theta, saved.theta);
  EXPECT_EQ(loaded->masters, saved.masters);
  EXPECT_EQ(loaded->pool.prob, saved.pool.prob);
  EXPECT_EQ(loaded->pool.mean_q, saved.pool.mean_q);
  EXPECT_EQ(loaded->pool.count, saved.pool.count);
  EXPECT_EQ(loaded->session.next_step, saved.session.next_step);
  EXPECT_EQ(loaded->session.started, saved.session.started);
  EXPECT_EQ(loaded->session.finished, saved.session.finished);
  EXPECT_EQ(loaded->session.visits_remaining,
            saved.session.visits_remaining);
  ASSERT_EQ(loaded->session.history.size(), saved.session.history.size());
  for (size_t i = 0; i < saved.session.history.size(); ++i) {
    EXPECT_EQ(loaded->session.history[i].step,
              saved.session.history[i].step);
    EXPECT_EQ(loaded->session.history[i].transfer_seconds,
              saved.session.history[i].transfer_seconds);
    EXPECT_EQ(loaded->session.history[i].migrations,
              saved.session.history[i].migrations);
  }
  EXPECT_EQ(loaded->session.rng_states, saved.session.rng_states);
}

TEST_F(CheckpointTest, LoadRejectsCorruptedFiles) {
  const RLCutOptions options = Options(/*seed=*/1);
  auto state = MakeState();
  AutomatonPool pool(graph_.num_vertices(), topology_.num_dcs(), options);
  TrainerSession session;
  session.stop_after_step = 1;
  RLCutTrainer(options).Train(state.get(), AllVertices(), &pool, &session);
  const TrainerCheckpoint checkpoint =
      CaptureCheckpoint(*state, pool, session, options.seed);
  const std::string path = TempPath("corrupt.ckpt");
  ASSERT_TRUE(SaveTrainerCheckpoint(checkpoint, path).ok());
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  auto write_bytes = [&](const std::string& contents) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
  };

  {
    // Wrong magic.
    std::string bad = bytes;
    bad[0] = 'X';
    write_bytes(bad);
    const Result<TrainerCheckpoint> r = LoadTrainerCheckpoint(path);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("not an rlcut checkpoint"),
              std::string::npos);
  }
  {
    // Unsupported version.
    std::string bad = bytes;
    bad[8] = 99;
    write_bytes(bad);
    const Result<TrainerCheckpoint> r = LoadTrainerCheckpoint(path);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("unsupported checkpoint version"),
              std::string::npos);
  }
  {
    // Truncated payload.
    write_bytes(bytes.substr(0, bytes.size() / 2));
    EXPECT_FALSE(LoadTrainerCheckpoint(path).ok());
  }
  {
    // Flipped payload byte: checksum mismatch.
    std::string bad = bytes;
    bad[bytes.size() / 2] ^= 0x40;
    write_bytes(bad);
    const Result<TrainerCheckpoint> r = LoadTrainerCheckpoint(path);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("checksum mismatch"),
              std::string::npos);
  }
  std::remove(path.c_str());
  EXPECT_FALSE(LoadTrainerCheckpoint(path).ok());  // missing file
}

TEST_F(CheckpointTest, RestoreValidatesProblemFingerprint) {
  const RLCutOptions options = Options(/*seed=*/1);
  auto state = MakeState();
  AutomatonPool pool(graph_.num_vertices(), topology_.num_dcs(), options);
  TrainerSession session;
  session.stop_after_step = 1;
  RLCutTrainer(options).Train(state.get(), AllVertices(), &pool, &session);
  TrainerCheckpoint checkpoint =
      CaptureCheckpoint(*state, pool, session, options.seed);

  {
    // Different graph size.
    TrainerCheckpoint bad = checkpoint;
    bad.num_vertices += 1;
    TrainerSession fresh;
    EXPECT_FALSE(
        RestoreCheckpoint(bad, state.get(), &pool, &fresh).ok());
  }
  {
    // Different DC count.
    TrainerCheckpoint bad = checkpoint;
    bad.num_dcs = 8;
    TrainerSession fresh;
    EXPECT_FALSE(
        RestoreCheckpoint(bad, state.get(), &pool, &fresh).ok());
  }
  {
    // Different theta.
    TrainerCheckpoint bad = checkpoint;
    bad.theta += 1;
    TrainerSession fresh;
    EXPECT_FALSE(
        RestoreCheckpoint(bad, state.get(), &pool, &fresh).ok());
  }
  {
    // Master referencing a DC outside the topology.
    TrainerCheckpoint bad = checkpoint;
    bad.masters[0] = 40;
    TrainerSession fresh;
    EXPECT_FALSE(
        RestoreCheckpoint(bad, state.get(), &pool, &fresh).ok());
  }
  {
    // The unmodified checkpoint restores fine.
    TrainerSession fresh;
    EXPECT_TRUE(
        RestoreCheckpoint(checkpoint, state.get(), &pool, &fresh).ok());
  }
}

TEST_F(CheckpointTest, PoolSnapshotRestoreRejectsDimensionMismatch) {
  const RLCutOptions options = Options(/*seed=*/1);
  AutomatonPool pool(graph_.num_vertices(), topology_.num_dcs(), options);
  AutomatonPoolState snapshot = pool.Snapshot();
  EXPECT_TRUE(pool.Restore(snapshot).ok());

  AutomatonPool smaller(graph_.num_vertices() / 2, topology_.num_dcs(),
                        options);
  EXPECT_FALSE(smaller.Restore(snapshot).ok());

  AutomatonPoolState malformed = snapshot;
  malformed.prob.pop_back();
  EXPECT_FALSE(pool.Restore(malformed).ok());
}

}  // namespace
}  // namespace rlcut
