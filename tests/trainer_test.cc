#include <memory>

#include <gtest/gtest.h>

#include "baselines/partitioner.h"
#include "cloud/topology.h"
#include "common/random.h"
#include "graph/generators.h"
#include "graph/geo.h"
#include "rlcut/rlcut_partitioner.h"
#include "rlcut/trainer.h"

namespace rlcut {
namespace {

class TrainerTest : public ::testing::Test {
 protected:
  TrainerTest() : topology_(MakeEc2Topology(8, Heterogeneity::kMedium)) {
    PowerLawOptions opt;
    opt.num_vertices = 512;
    opt.num_edges = 4096;
    graph_ = GeneratePowerLaw(opt);
    locations_ = AssignGeoLocations(graph_, GeoLocatorOptions{});
    sizes_ = AssignInputSizes(graph_);

    ctx_.graph = &graph_;
    ctx_.topology = &topology_;
    ctx_.locations = &locations_;
    ctx_.input_sizes = &sizes_;
    ctx_.workload = Workload::PageRank();
    ctx_.theta = PartitionState::AutoTheta(graph_);
    ctx_.budget = 1000.0;  // loose
    ctx_.seed = 7;
  }

  PartitionState NaturalState() const {
    PartitionConfig config;
    config.model = ComputeModel::kHybridCut;
    config.theta = ctx_.theta;
    config.workload = ctx_.workload;
    PartitionState state(&graph_, &topology_, &locations_, &sizes_, config);
    state.ResetDerived(locations_);
    return state;
  }

  RLCutOptions FastOptions() const {
    RLCutOptions opt;
    opt.max_steps = 4;
    opt.batch_size = 16;
    opt.num_threads = 2;
    opt.budget = ctx_.budget;
    opt.seed = 11;
    return opt;
  }

  Graph graph_;
  Topology topology_;
  std::vector<DcId> locations_;
  std::vector<double> sizes_;
  PartitionerContext ctx_;
};

TEST_F(TrainerTest, ImprovesOverNaturalPartitioning) {
  PartitionState state = NaturalState();
  const double before = state.CurrentObjective().transfer_seconds;
  RLCutTrainer trainer(FastOptions());
  const TrainResult result = trainer.Train(&state);
  EXPECT_LT(result.final_objective.transfer_seconds, before);
  EXPECT_TRUE(state.CheckInvariants());
  EXPECT_FALSE(result.steps.empty());
}

TEST_F(TrainerTest, MigrationsAndRollbacksAccounted) {
  PartitionState state = NaturalState();
  RLCutTrainer trainer(FastOptions());
  const TrainResult result = trainer.Train(&state);
  uint64_t moves = 0;
  for (const StepStats& s : result.steps) {
    moves += s.migrations + s.rollbacks;
  }
  EXPECT_GT(moves, 0u);
}

TEST_F(TrainerTest, RespectsTightBudget) {
  // A tight budget must be satisfied (Exp#2: "RLCut can satisfy the
  // budget constraint under all settings").
  PartitionState state = NaturalState();
  RLCutOptions opt = FastOptions();
  opt.max_steps = 8;
  // Budget slightly above the natural partitioning's cost (which has
  // zero move cost): the trainer must not blow past it.
  opt.budget = state.CurrentObjective().cost_dollars * 1.05 + 1e-9;
  RLCutTrainer trainer(opt);
  const TrainResult result = trainer.Train(&state);
  EXPECT_LE(result.final_objective.cost_dollars, opt.budget * 1.10);
}

TEST_F(TrainerTest, LooseBudgetFindsBetterTransferTime) {
  PartitionState tight_state = NaturalState();
  PartitionState loose_state = NaturalState();
  RLCutOptions tight = FastOptions();
  tight.budget = tight_state.CurrentObjective().cost_dollars * 1.02 + 1e-9;
  RLCutOptions loose = FastOptions();
  loose.budget = 1e9;
  RLCutTrainer(tight).Train(&tight_state);
  RLCutTrainer(loose).Train(&loose_state);
  EXPECT_LE(loose_state.CurrentObjective().transfer_seconds,
            tight_state.CurrentObjective().transfer_seconds * 1.2);
}

TEST_F(TrainerTest, HonorsTimeBudgetRoughly) {
  PartitionState state = NaturalState();
  RLCutOptions opt = FastOptions();
  opt.max_steps = 100;
  opt.t_opt_seconds = 0.15;
  opt.convergence_epsilon = 0;  // do not stop early for convergence
  RLCutTrainer trainer(opt);
  const TrainResult result = trainer.Train(&state);
  // One step can overshoot, so allow generous slack; the point is that
  // 100 unconstrained steps would take far longer.
  EXPECT_LT(result.overhead_seconds, 3.0);
}

TEST_F(TrainerTest, AdaptiveSamplingGrowsWithinTimeBudget) {
  PartitionState state = NaturalState();
  RLCutOptions opt = FastOptions();
  opt.max_steps = 6;
  opt.t_opt_seconds = 5.0;  // plenty for this tiny graph
  opt.convergence_epsilon = 0;
  RLCutTrainer trainer(opt);
  const TrainResult result = trainer.Train(&state);
  ASSERT_GE(result.steps.size(), 2u);
  EXPECT_DOUBLE_EQ(result.steps[0].sample_rate, opt.initial_sample_rate);
  // With lots of remaining time, Eq. 14 must raise the rate.
  EXPECT_GT(result.steps[1].sample_rate, result.steps[0].sample_rate);
}

TEST_F(TrainerTest, FixedSampleRateOverridesAdaptive) {
  PartitionState state = NaturalState();
  RLCutOptions opt = FastOptions();
  opt.fixed_sample_rate = 0.1;
  opt.t_opt_seconds = 5.0;
  opt.convergence_epsilon = 0;
  RLCutTrainer trainer(opt);
  const TrainResult result = trainer.Train(&state);
  for (const StepStats& s : result.steps) {
    EXPECT_DOUBLE_EQ(s.sample_rate, 0.1);
    EXPECT_EQ(s.num_agents,
              static_cast<uint64_t>(0.1 * graph_.num_vertices()));
  }
}

TEST_F(TrainerTest, EligibleSubsetOnlyMovesThoseVertices) {
  PartitionState state = NaturalState();
  const std::vector<DcId> before = state.masters();
  std::vector<VertexId> eligible = {1, 2, 3, 4, 5, 6, 7, 8};
  RLCutOptions opt = FastOptions();
  RLCutTrainer trainer(opt);
  trainer.Train(&state, eligible);
  for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
    const bool in_set =
        std::find(eligible.begin(), eligible.end(), v) != eligible.end();
    if (!in_set) {
      EXPECT_EQ(state.masters()[v], before[v]) << "vertex " << v;
    }
  }
}

TEST_F(TrainerTest, BatchSizeDoesNotChangeQualityMuch) {
  // Exp#3's claim: batch size barely affects optimization quality.
  double transfer_b1 = 0;
  double transfer_b32 = 0;
  {
    PartitionState state = NaturalState();
    RLCutOptions opt = FastOptions();
    opt.batch_size = 1;
    RLCutTrainer(opt).Train(&state);
    transfer_b1 = state.CurrentObjective().transfer_seconds;
  }
  {
    PartitionState state = NaturalState();
    RLCutOptions opt = FastOptions();
    opt.batch_size = 32;
    RLCutTrainer(opt).Train(&state);
    transfer_b32 = state.CurrentObjective().transfer_seconds;
  }
  EXPECT_LT(transfer_b32, transfer_b1 * 1.5);
  EXPECT_GT(transfer_b32, transfer_b1 * 0.5);
}

TEST_F(TrainerTest, PenaltyVariantAlsoImproves) {
  PartitionState state = NaturalState();
  const double before = state.CurrentObjective().transfer_seconds;
  RLCutOptions opt = FastOptions();
  opt.use_penalty = true;
  RLCutTrainer(opt).Train(&state);
  EXPECT_LT(state.CurrentObjective().transfer_seconds, before);
}

TEST_F(TrainerTest, StragglerMitigationOffStillCorrect) {
  PartitionState state = NaturalState();
  const double before = state.CurrentObjective().transfer_seconds;
  RLCutOptions opt = FastOptions();
  opt.straggler_mitigation = false;
  RLCutTrainer(opt).Train(&state);
  EXPECT_LT(state.CurrentObjective().transfer_seconds, before);
  EXPECT_TRUE(state.CheckInvariants());
}

TEST_F(TrainerTest, EmptyEligibleSetIsNoOp) {
  PartitionState state = NaturalState();
  const std::vector<DcId> before = state.masters();
  RLCutTrainer trainer(FastOptions());
  const TrainResult result = trainer.Train(&state, {});
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(state.masters(), before);
}

TEST_F(TrainerTest, PartitionerAdapterRuns) {
  auto partitioner = MakeRLCut(FastOptions());
  EXPECT_EQ(partitioner->name(), "RLCut");
  EXPECT_EQ(partitioner->model(), ComputeModel::kHybridCut);
  PartitionOutput out = partitioner->RunOrDie(ctx_);
  EXPECT_TRUE(out.state.CheckInvariants());
  EXPECT_GT(out.overhead_seconds, 0.0);
}

TEST_F(TrainerTest, BeatsGingerOnHeterogeneousNetwork) {
  // The core claim (Fig. 10): on a heterogeneous topology RLCut's final
  // transfer time undercuts Ginger's.
  auto ginger = MakePartitionerByName("Ginger", {}).value()->RunOrDie(ctx_);
  RLCutOptions opt = FastOptions();
  opt.max_steps = 10;
  RLCutRunOutput ours = RunRLCut(ctx_, opt);
  EXPECT_LT(ours.state.CurrentObjective().transfer_seconds,
            ginger.state.CurrentObjective().transfer_seconds);
}

TEST_F(TrainerTest, SelectionStrategiesAllImprove) {
  for (ActionSelection sel :
       {ActionSelection::kUcbBlend, ActionSelection::kUcbScore,
        ActionSelection::kProbability, ActionSelection::kGreedy}) {
    PartitionState state = NaturalState();
    const double before = state.CurrentObjective().transfer_seconds;
    RLCutOptions opt = FastOptions();
    opt.selection = sel;
    RLCutTrainer(opt).Train(&state);
    EXPECT_LT(state.CurrentObjective().transfer_seconds, before)
        << "selection=" << static_cast<int>(sel);
  }
}

}  // namespace
}  // namespace rlcut
