#include <gtest/gtest.h>

#include "cloud/topology.h"

namespace rlcut {
namespace {

TEST(TopologyTest, Ec2ProfileHasEightRegions) {
  Topology topo = MakeEc2Topology();
  EXPECT_EQ(topo.num_dcs(), 8);
  EXPECT_TRUE(topo.Validate().ok());
}

TEST(TopologyTest, MeasuredTableIValues) {
  Topology topo = MakeEc2Topology();
  // US-East (Table I column 1).
  EXPECT_DOUBLE_EQ(topo.dc(0).uplink_gbps, 0.52);
  EXPECT_DOUBLE_EQ(topo.dc(0).downlink_gbps, 2.8);
  EXPECT_DOUBLE_EQ(topo.dc(0).upload_price, 0.09);
  // AP-Singapore.
  EXPECT_DOUBLE_EQ(topo.dc(4).uplink_gbps, 0.55);
  EXPECT_DOUBLE_EQ(topo.dc(4).downlink_gbps, 3.5);
  EXPECT_DOUBLE_EQ(topo.dc(4).upload_price, 0.12);
  // AP-Sydney.
  EXPECT_DOUBLE_EQ(topo.dc(6).uplink_gbps, 0.48);
  EXPECT_DOUBLE_EQ(topo.dc(6).downlink_gbps, 2.5);
  EXPECT_DOUBLE_EQ(topo.dc(6).upload_price, 0.14);
}

TEST(TopologyTest, DownlinksExceedUplinks) {
  // Table I observation: downlink is several times the uplink.
  Topology topo = MakeEc2Topology();
  for (const DataCenter& dc : topo.dcs()) {
    EXPECT_GT(dc.downlink_gbps, 3 * dc.uplink_gbps);
  }
}

TEST(TopologyTest, LowHeterogeneityIsUniform) {
  Topology topo = MakeEc2Topology(Heterogeneity::kLow);
  for (int r = 1; r < topo.num_dcs(); ++r) {
    EXPECT_DOUBLE_EQ(topo.Uplink(r), topo.Uplink(0));
    EXPECT_DOUBLE_EQ(topo.Downlink(r), topo.Downlink(0));
  }
}

TEST(TopologyTest, HighHeterogeneityThrottlesHalf) {
  Topology medium = MakeEc2Topology(Heterogeneity::kMedium);
  Topology high = MakeEc2Topology(Heterogeneity::kHigh);
  int throttled = 0;
  for (int r = 0; r < medium.num_dcs(); ++r) {
    if (high.Uplink(r) < medium.Uplink(r)) {
      EXPECT_DOUBLE_EQ(high.Uplink(r), 0.5 * medium.Uplink(r));
      ++throttled;
    }
  }
  EXPECT_EQ(throttled, medium.num_dcs() / 2);
}

TEST(TopologyTest, SubsetOfRegions) {
  Topology topo = MakeEc2Topology(3, Heterogeneity::kMedium);
  EXPECT_EQ(topo.num_dcs(), 3);
  EXPECT_EQ(topo.dc(0).name, "US-East");
}

TEST(TopologyTest, UniformTopology) {
  Topology topo = MakeUniformTopology(4, 1.0, 2.0, 0.05);
  EXPECT_EQ(topo.num_dcs(), 4);
  for (int r = 0; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(topo.Uplink(r), 1.0);
    EXPECT_DOUBLE_EQ(topo.Downlink(r), 2.0);
    EXPECT_DOUBLE_EQ(topo.Price(r), 0.05);
  }
}

TEST(TopologyTest, TransferMath) {
  Topology topo = MakeUniformTopology(2, 0.5, 2.5, 0.10);
  // 1 GB over a 0.5 GB/s uplink takes 2 s; costs $0.10.
  EXPECT_DOUBLE_EQ(topo.UploadSeconds(0, 1e9), 2.0);
  EXPECT_DOUBLE_EQ(topo.DownloadSeconds(0, 1e9), 0.4);
  EXPECT_DOUBLE_EQ(topo.UploadCost(0, 1e9), 0.10);
}

TEST(TopologyTest, CheapestUploadDc) {
  Topology topo = MakeEc2Topology();
  const DcId cheapest = topo.CheapestUploadDc();
  for (int r = 0; r < topo.num_dcs(); ++r) {
    EXPECT_LE(topo.Price(cheapest), topo.Price(r));
  }
}

TEST(TopologyTest, ValidationCatchesBadConfigs) {
  EXPECT_FALSE(Topology(std::vector<DataCenter>{}).Validate().ok());
  EXPECT_FALSE(
      Topology({{"bad", 0.0, 1.0, 0.1}}).Validate().ok());
  EXPECT_FALSE(
      Topology({{"bad", 1.0, 1.0, -0.1}}).Validate().ok());
  EXPECT_TRUE(
      Topology({{"good", 1.0, 1.0, 0.0}}).Validate().ok());
}

}  // namespace
}  // namespace rlcut
