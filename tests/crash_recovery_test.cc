// Crash-consistency and resume-fallback coverage (docs/robustness.md):
// atomic checkpoint saves under injected I/O faults, rotation to a
// last-good slot, a truncation/bit-flip sweep over every byte boundary
// of a real checkpoint, and fault-masked training bit-identity.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/chaos.h"
#include "cloud/topology.h"
#include "common/atomic_file.h"
#include "fault/fault.h"
#include "graph/generators.h"
#include "graph/geo.h"
#include "rlcut/checkpoint.h"

namespace rlcut {
namespace {

fault::FaultSchedule MustParse(const std::string& spec) {
  fault::FaultSchedule schedule;
  std::string error;
  EXPECT_TRUE(fault::FaultSchedule::Parse(spec, /*seed=*/1, &schedule,
                                          &error))
      << error;
  return schedule;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Small deterministic problem, sized so a checkpoint is a few KB and
// the every-byte sweeps below stay fast.
class CrashRecoveryTest : public ::testing::Test {
 protected:
  CrashRecoveryTest()
      : topology_(MakeEc2Topology(4, Heterogeneity::kMedium)) {
    fault::Disarm();
    PowerLawOptions opt;
    opt.num_vertices = 96;
    opt.num_edges = 768;
    graph_ = GeneratePowerLaw(opt);
    GeoLocatorOptions geo;
    geo.num_dcs = 4;
    locations_ = AssignGeoLocations(graph_, geo);
    sizes_ = AssignInputSizes(graph_);
    config_.model = ComputeModel::kHybridCut;
    config_.theta = PartitionState::AutoTheta(graph_);
    config_.workload = Workload::PageRank();
  }

  ~CrashRecoveryTest() override { fault::Disarm(); }

  RLCutOptions Options() const {
    RLCutOptions options;
    options.max_steps = 4;
    options.batch_size = 16;
    options.num_threads = 2;
    options.seed = 11;
    options.agent_visit_budget =
        static_cast<int64_t>(graph_.num_vertices()) * 4;
    options.convergence_epsilon = 1e-12;
    return options;
  }

  std::unique_ptr<PartitionState> MakeState() const {
    auto state = std::make_unique<PartitionState>(
        &graph_, &topology_, &locations_, &sizes_, config_);
    state->ResetDerived(locations_);
    return state;
  }

  std::vector<VertexId> AllVertices() const {
    std::vector<VertexId> all(graph_.num_vertices());
    std::iota(all.begin(), all.end(), 0u);
    return all;
  }

  std::vector<DcId> UninterruptedMasters(const RLCutOptions& options) const {
    auto state = MakeState();
    AutomatonPool pool(graph_.num_vertices(), topology_.num_dcs(), options);
    RLCutTrainer(options).Train(state.get(), AllVertices(), &pool);
    return state->masters();
  }

  // Pauses a run before `stop_after_step` and captures the checkpoint.
  TrainerCheckpoint CheckpointAtStep(const RLCutOptions& options,
                                     int stop_after_step) const {
    auto state = MakeState();
    AutomatonPool pool(graph_.num_vertices(), topology_.num_dcs(), options);
    TrainerSession session;
    session.stop_after_step = stop_after_step;
    RLCutTrainer(options).Train(state.get(), AllVertices(), &pool,
                                &session);
    return CaptureCheckpoint(*state, pool, session, options.seed);
  }

  // Resumes `checkpoint` on a freshly built problem to completion.
  std::vector<DcId> ResumeToCompletion(const TrainerCheckpoint& checkpoint,
                                       const RLCutOptions& options) const {
    auto state = MakeState();
    AutomatonPool pool(graph_.num_vertices(), topology_.num_dcs(), options);
    TrainerSession session;
    EXPECT_TRUE(
        RestoreCheckpoint(checkpoint, state.get(), &pool, &session).ok());
    RLCutTrainer trainer(options);
    EXPECT_TRUE(trainer.ValidateResume(session).ok());
    trainer.Train(state.get(), AllVertices(), &pool, &session);
    return state->masters();
  }

  std::string TempPath(const std::string& name) const {
    return ::testing::TempDir() + "/" + name;
  }

  static void RemoveSlots(const std::string& path) {
    std::remove(path.c_str());
    std::remove(TempPathFor(path).c_str());
    const std::string prev = CheckpointFallbackPath(path);
    std::remove(prev.c_str());
    std::remove(TempPathFor(prev).c_str());
  }

  Topology topology_;
  Graph graph_;
  std::vector<DcId> locations_;
  std::vector<double> sizes_;
  PartitionConfig config_;
};

TEST_F(CrashRecoveryTest, FailedSaveNeverTearsAnExistingCheckpoint) {
  const RLCutOptions options = Options();
  const TrainerCheckpoint old_ckpt = CheckpointAtStep(options, 1);
  const TrainerCheckpoint new_ckpt = CheckpointAtStep(options, 3);
  const char* kSites[] = {"checkpoint.open_fail", "checkpoint.short_write",
                          "checkpoint.fsync_fail",
                          "checkpoint.rename_fail"};
  for (const char* site : kSites) {
    const std::string path = TempPath(std::string("torn_") + site);
    RemoveSlots(path);
    ASSERT_TRUE(SaveTrainerCheckpoint(old_ckpt, path).ok());
    const std::string old_bytes = ReadFileBytes(path);

    fault::Arm(MustParse(std::string(site) + ":nth=1"));
    const Status failed = SaveTrainerCheckpoint(new_ckpt, path);
    fault::Disarm();

    EXPECT_FALSE(failed.ok()) << site;
    // The target is byte-identical to the previous good save and the
    // staging file was cleaned up.
    EXPECT_EQ(ReadFileBytes(path), old_bytes) << site;
    EXPECT_FALSE(std::filesystem::exists(TempPathFor(path))) << site;
    const Result<TrainerCheckpoint> loaded = LoadTrainerCheckpoint(path);
    ASSERT_TRUE(loaded.ok()) << site;
    EXPECT_EQ(loaded->session.next_step, old_ckpt.session.next_step);
    RemoveSlots(path);
  }
}

TEST_F(CrashRecoveryTest, FailedFreshSaveLeavesNothingBehind) {
  const TrainerCheckpoint checkpoint = CheckpointAtStep(Options(), 1);
  const std::string path = TempPath("fresh_fail.ckpt");
  RemoveSlots(path);
  fault::Arm(MustParse("checkpoint.short_write:nth=1"));
  EXPECT_FALSE(SaveTrainerCheckpoint(checkpoint, path).ok());
  fault::Disarm();
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(TempPathFor(path)));
}

TEST_F(CrashRecoveryTest, RotatingSaveKeepsALastGoodFallback) {
  const RLCutOptions options = Options();
  const TrainerCheckpoint first = CheckpointAtStep(options, 1);
  const TrainerCheckpoint second = CheckpointAtStep(options, 3);
  const std::string path = TempPath("rotate.ckpt");
  RemoveSlots(path);

  ASSERT_TRUE(SaveTrainerCheckpointRotating(first, path).ok());
  EXPECT_FALSE(std::filesystem::exists(CheckpointFallbackPath(path)));
  ASSERT_TRUE(SaveTrainerCheckpointRotating(second, path).ok());

  Result<TrainerCheckpoint> primary = LoadTrainerCheckpoint(path);
  ASSERT_TRUE(primary.ok());
  EXPECT_EQ(primary->session.next_step, second.session.next_step);
  Result<TrainerCheckpoint> prev =
      LoadTrainerCheckpoint(CheckpointFallbackPath(path));
  ASSERT_TRUE(prev.ok());
  EXPECT_EQ(prev->session.next_step, first.session.next_step);

  // Healthy primary: the fallback loader uses it.
  Result<LoadedCheckpoint> loaded = LoadTrainerCheckpointWithFallback(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded->used_fallback);

  // Corrupt primary: the loader reports the fallback and why.
  std::string bytes = ReadFileBytes(path);
  bytes[bytes.size() / 2] ^= 0x01;
  WriteFileBytes(path, bytes);
  loaded = LoadTrainerCheckpointWithFallback(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->used_fallback);
  EXPECT_EQ(loaded->loaded_from, CheckpointFallbackPath(path));
  EXPECT_FALSE(loaded->primary_error.empty());
  EXPECT_EQ(loaded->checkpoint.session.next_step, first.session.next_step);

  // Both slots missing: the primary's error is what surfaces.
  RemoveSlots(path);
  EXPECT_FALSE(LoadTrainerCheckpointWithFallback(path).ok());
}

TEST_F(CrashRecoveryTest, EveryTruncationBoundaryFallsBackToLastGood) {
  const RLCutOptions options = Options();
  const std::vector<DcId> reference = UninterruptedMasters(options);
  const TrainerCheckpoint first = CheckpointAtStep(options, 1);
  const TrainerCheckpoint second = CheckpointAtStep(options, 3);
  const std::string path = TempPath("truncsweep.ckpt");
  RemoveSlots(path);
  ASSERT_TRUE(SaveTrainerCheckpointRotating(first, path).ok());
  ASSERT_TRUE(SaveTrainerCheckpointRotating(second, path).ok());
  const std::string full = ReadFileBytes(path);
  ASSERT_GT(full.size(), 0u);

  // Load-only sweep: a primary cut at ANY byte boundary must reject and
  // fall back to the intact previous checkpoint.
  for (size_t len = 0; len < full.size(); ++len) {
    WriteFileBytes(path, full.substr(0, len));
    const Result<LoadedCheckpoint> loaded =
        LoadTrainerCheckpointWithFallback(path);
    ASSERT_TRUE(loaded.ok()) << "truncated at " << len;
    ASSERT_TRUE(loaded->used_fallback) << "truncated at " << len;
    ASSERT_EQ(loaded->checkpoint.session.next_step,
              first.session.next_step)
        << "truncated at " << len;
  }

  // Bit-flip sweep: same contract for single-byte corruption anywhere.
  for (size_t pos = 0; pos < full.size(); ++pos) {
    std::string bad = full;
    bad[pos] ^= 0x20;
    WriteFileBytes(path, bad);
    const Result<LoadedCheckpoint> loaded =
        LoadTrainerCheckpointWithFallback(path);
    ASSERT_TRUE(loaded.ok()) << "flipped byte " << pos;
    ASSERT_TRUE(loaded->used_fallback) << "flipped byte " << pos;
  }

  // The continuation from the fallback is bit-identical to the
  // uninterrupted run (the fallback is the same object at every
  // boundary, so one resume covers the whole sweep).
  WriteFileBytes(path, full.substr(0, full.size() / 2));
  const Result<LoadedCheckpoint> loaded =
      LoadTrainerCheckpointWithFallback(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(ResumeToCompletion(loaded->checkpoint, options), reference);
  RemoveSlots(path);
}

TEST_F(CrashRecoveryTest, AutoCheckpointedRunResumesToTheSameResult) {
  RLCutOptions options = Options();
  const std::vector<DcId> reference = UninterruptedMasters(options);
  const std::string path = TempPath("autosave.ckpt");
  RemoveSlots(path);
  options.checkpoint_every_steps = 2;
  options.checkpoint_path = path;
  {
    auto state = MakeState();
    AutomatonPool pool(graph_.num_vertices(), topology_.num_dcs(), options);
    RLCutTrainer(options).Train(state.get(), AllVertices(), &pool);
    // Auto-checkpointing must not perturb training.
    EXPECT_EQ(state->masters(), reference);
  }
  // max_steps=4 with saves every 2 steps: primary at next_step=4,
  // fallback at next_step=2, no staging leftovers.
  ASSERT_TRUE(std::filesystem::exists(path));
  ASSERT_TRUE(std::filesystem::exists(CheckpointFallbackPath(path)));
  EXPECT_FALSE(std::filesystem::exists(TempPathFor(path)));

  RLCutOptions resume_options = Options();  // no further autosaves
  Result<TrainerCheckpoint> prev =
      LoadTrainerCheckpoint(CheckpointFallbackPath(path));
  ASSERT_TRUE(prev.ok());
  EXPECT_EQ(prev->session.next_step, 2);
  EXPECT_EQ(ResumeToCompletion(*prev, resume_options), reference);
  RemoveSlots(path);
}

TEST_F(CrashRecoveryTest, MaskedFaultsLeaveTrainingBitIdentical) {
  const RLCutOptions options = Options();
  const std::vector<DcId> reference = UninterruptedMasters(options);

  auto state = MakeState();
  AutomatonPool pool(graph_.num_vertices(), topology_.num_dcs(), options);
  fault::Arm(MustParse(
      "threadpool.task_throw:prob=0.1;"
      "trainer.chunk_stall:prob=0.2,amount=10;"
      "trainer.chunk_abandon:prob=0.1"));
  RLCutTrainer(options).Train(state.get(), AllVertices(), &pool);
  const uint64_t fires = fault::TotalFires();
  fault::Disarm();

  EXPECT_GT(fires, 0u);
  // Scoring is pure and retried work is idempotent, so every one of
  // these faults must be absorbed without changing the result.
  EXPECT_EQ(state->masters(), reference);
}

TEST_F(CrashRecoveryTest, StaleTempFilesAreDetectedAndRemoved) {
  const std::string path = TempPath("stale.ckpt");
  RemoveSlots(path);
  EXPECT_FALSE(RemoveStaleTempFile(path));  // nothing to clean
  WriteFileBytes(TempPathFor(path), "half-written garbage");
  EXPECT_TRUE(RemoveStaleTempFile(path));
  EXPECT_FALSE(std::filesystem::exists(TempPathFor(path)));
  EXPECT_FALSE(RemoveStaleTempFile(path));
}

TEST_F(CrashRecoveryTest, MiniChaosAuditPasses) {
  check::ChaosOptions options;
  options.num_sessions = 3;
  options.num_vertices = 96;
  options.num_edges = 576;
  options.max_steps = 4;
  options.num_threads = 2;
  options.seed = 77;
  const check::ChaosReport report = check::RunChaos(options);
  EXPECT_EQ(report.sessions, 3u);
  EXPECT_EQ(report.masked + report.degraded, 3u);
  EXPECT_EQ(report.crash_resumes, 1u);
  EXPECT_TRUE(report.failures.empty()) << report.failures.front();
}

}  // namespace
}  // namespace rlcut
