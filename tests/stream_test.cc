// StreamBuffer: deterministic micro-batches from out-of-order,
// duplicated, and late event arrivals.

#include "graph/stream.h"

#include <algorithm>
#include <vector>

#include "common/sim_time.h"
#include "gtest/gtest.h"

namespace rlcut {
namespace {

StreamEvent Ev(VertexId src, VertexId dst, double seconds, uint64_t seq) {
  return StreamEvent{{{src, dst}, SimTime(seconds)}, seq};
}

TEST(StreamBufferTest, CutReturnsSortedWindowAndAdvancesWatermark) {
  StreamBuffer buffer;
  EXPECT_TRUE(buffer.Push(Ev(0, 1, 3.0, 3)));
  EXPECT_TRUE(buffer.Push(Ev(1, 2, 1.0, 1)));
  EXPECT_TRUE(buffer.Push(Ev(2, 3, 2.0, 2)));
  EXPECT_TRUE(buffer.Push(Ev(3, 4, 9.0, 4)));

  const MicroBatch batch = buffer.Cut(SimTime(5));
  ASSERT_EQ(batch.edges.size(), 3u);
  EXPECT_EQ(batch.watermark, SimTime(5));
  for (size_t i = 1; i < batch.edges.size(); ++i) {
    EXPECT_LE(batch.edges[i - 1].time, batch.edges[i].time);
  }
  EXPECT_EQ(batch.edges.front().edge.src, 1u);  // t=1 first
  EXPECT_EQ(buffer.stats().pending, 1u);        // t=9 still buffered
  EXPECT_EQ(buffer.last_watermark(), SimTime(5));
}

TEST(StreamBufferTest, ArrivalOrderDoesNotChangeTheCut) {
  // Same events, three arrival permutations -> identical batches.
  std::vector<StreamEvent> events;
  for (uint64_t i = 0; i < 24; ++i) {
    events.push_back(Ev(i % 7, (i + 1) % 7, 0.25 * (i % 9), i));
  }
  std::vector<std::vector<TimedEdge>> cuts;
  for (int perm = 0; perm < 3; ++perm) {
    std::vector<StreamEvent> arrival = events;
    // Deterministic permutation: rotate and interleave.
    std::rotate(arrival.begin(), arrival.begin() + perm * 5,
                arrival.end());
    if (perm == 2) std::reverse(arrival.begin(), arrival.end());
    StreamBuffer buffer;
    for (const StreamEvent& e : arrival) buffer.Push(e);
    cuts.push_back(buffer.Cut(SimTime(10)).edges);
  }
  for (const auto& cut : cuts) {
    ASSERT_EQ(cut.size(), events.size());
  }
  for (size_t i = 0; i < cuts[0].size(); ++i) {
    EXPECT_EQ(cuts[0][i].edge.src, cuts[1][i].edge.src);
    EXPECT_EQ(cuts[0][i].edge.dst, cuts[2][i].edge.dst);
    EXPECT_EQ(cuts[0][i].time, cuts[1][i].time);
    EXPECT_EQ(cuts[1][i].time, cuts[2][i].time);
  }
}

TEST(StreamBufferTest, DuplicateSequencesAreDroppedOnce) {
  StreamBuffer buffer;
  EXPECT_TRUE(buffer.Push(Ev(0, 1, 1.0, 7)));
  EXPECT_FALSE(buffer.Push(Ev(0, 1, 1.0, 7)));  // exact duplicate
  EXPECT_FALSE(buffer.Push(Ev(5, 6, 2.0, 7)));  // same id, different body
  const MicroBatch batch = buffer.Cut(SimTime(3));
  EXPECT_EQ(batch.edges.size(), 1u);
  EXPECT_EQ(buffer.stats().duplicates_dropped, 2u);
  EXPECT_EQ(buffer.stats().accepted, 1u);
}

TEST(StreamBufferTest, LateEventsRideTheNextCut) {
  StreamBuffer buffer;
  buffer.Push(Ev(0, 1, 1.0, 1));
  const MicroBatch first = buffer.Cut(SimTime(2));
  ASSERT_EQ(first.edges.size(), 1u);

  // Arrives after the watermark already passed its timestamp.
  EXPECT_TRUE(buffer.Push(Ev(2, 3, 1.5, 2)));
  EXPECT_EQ(buffer.stats().late_deferred, 1u);

  const MicroBatch second = buffer.Cut(SimTime(4));
  ASSERT_EQ(second.edges.size(), 1u);
  EXPECT_EQ(second.edges[0].edge.src, 2u);
  // The late edge keeps its original (late) timestamp.
  EXPECT_EQ(second.edges[0].time, SimTime(1.5));
}

TEST(StreamBufferTest, CutRetiresShippedSequenceIds) {
  StreamBuffer buffer;
  buffer.Push(Ev(0, 1, 1.0, 1));
  buffer.Push(Ev(1, 2, 2.0, 2));
  buffer.Push(Ev(2, 3, 9.0, 3));  // stays pending past the first cut

  const MicroBatch first = buffer.Cut(SimTime(5));
  ASSERT_EQ(first.edges.size(), 2u);
  EXPECT_EQ(buffer.stats().sequences_retired, 2u);
  EXPECT_EQ(buffer.stats().pending, 1u);
  // Dedup only guards the in-flight window: every accepted event is
  // either retired (shipped in some batch) or still pending.
  EXPECT_EQ(buffer.stats().accepted,
            buffer.stats().sequences_retired + buffer.stats().pending);

  const MicroBatch second = buffer.Cut(SimTime(10));
  ASSERT_EQ(second.edges.size(), 1u);
  EXPECT_EQ(buffer.stats().sequences_retired, 3u);
  EXPECT_EQ(buffer.stats().pending, 0u);
  EXPECT_EQ(buffer.stats().accepted,
            buffer.stats().sequences_retired + buffer.stats().pending);
}

TEST(StreamBufferTest, RedeliveryAfterCutIsReadmittedAsLate) {
  // The bounded-memory contract: a duplicate arriving while the
  // original is pending is dropped; one arriving after the original
  // shipped is re-admitted (its id was retired) and defers like any
  // late event. Downstream idempotency handles replays older than the
  // last cut — that is the documented redelivery window.
  StreamBuffer buffer;
  buffer.Push(Ev(0, 1, 1.0, 7));
  EXPECT_FALSE(buffer.Push(Ev(0, 1, 1.0, 7)));  // in-flight duplicate
  EXPECT_EQ(buffer.Cut(SimTime(2)).edges.size(), 1u);

  EXPECT_TRUE(buffer.Push(Ev(0, 1, 1.0, 7)));  // post-retirement replay
  EXPECT_EQ(buffer.stats().late_deferred, 1u);
  EXPECT_EQ(buffer.stats().duplicates_dropped, 1u);
  const MicroBatch next = buffer.Cut(SimTime(4));
  ASSERT_EQ(next.edges.size(), 1u);
  EXPECT_EQ(next.edges[0].time, SimTime(1.0));
  EXPECT_EQ(buffer.stats().accepted,
            buffer.stats().sequences_retired + buffer.stats().pending);
}

TEST(StreamBufferTest, DedupMemoryIsBoundedByTheInFlightWindow) {
  // A long-lived stream must not accumulate one dedup entry per event
  // forever. Push/cut many small windows and check the retired counter
  // tracks everything shipped.
  StreamBuffer buffer;
  uint64_t seq = 0;
  for (int window = 0; window < 200; ++window) {
    for (int i = 0; i < 8; ++i) {
      buffer.Push(Ev(seq % 11, (seq + 1) % 11, window + 0.1 * i, seq));
      ++seq;
    }
    buffer.Cut(SimTime(window + 1));
  }
  EXPECT_EQ(buffer.stats().accepted, 1600u);
  EXPECT_EQ(buffer.stats().accepted,
            buffer.stats().sequences_retired + buffer.stats().pending);
  // Everything shipped by the final cut: nothing left to guard.
  EXPECT_EQ(buffer.stats().pending, 0u);
  EXPECT_EQ(buffer.stats().sequences_retired, 1600u);
}

TEST(StreamBufferTest, EmptyCutIsValid) {
  StreamBuffer buffer;
  const MicroBatch batch = buffer.Cut(SimTime(1));
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.watermark, SimTime(1));
}

}  // namespace
}  // namespace rlcut
