#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/geo.h"

namespace rlcut {
namespace {

Graph TestGraph() {
  PowerLawOptions opt;
  opt.num_vertices = 2048;
  opt.num_edges = 16384;
  return GeneratePowerLaw(opt);
}

TEST(GeoLocatorTest, LocationsInRange) {
  Graph g = TestGraph();
  GeoLocatorOptions opt;
  opt.num_dcs = 8;
  std::vector<DcId> loc = AssignGeoLocations(g, opt);
  ASSERT_EQ(loc.size(), g.num_vertices());
  for (DcId r : loc) {
    EXPECT_GE(r, 0);
    EXPECT_LT(r, 8);
  }
}

TEST(GeoLocatorTest, PopularitySkewRespected) {
  Graph g = TestGraph();
  GeoLocatorOptions opt;
  opt.num_dcs = 2;
  opt.region_popularity = {0.9, 0.1};
  opt.homophily = 0;
  std::vector<DcId> loc = AssignGeoLocations(g, opt);
  int in_zero = 0;
  for (DcId r : loc) in_zero += (r == 0);
  EXPECT_NEAR(in_zero / static_cast<double>(loc.size()), 0.9, 0.05);
}

TEST(GeoLocatorTest, HomophilyReducesInterDcEdges) {
  Graph g = TestGraph();
  GeoLocatorOptions opt;
  opt.num_dcs = 8;
  opt.homophily = 0;
  const double frac_no =
      ComputeGeoEdgeStats(g, AssignGeoLocations(g, opt), 8)
          .InterDcFraction();
  opt.homophily = 0.8;
  const double frac_high =
      ComputeGeoEdgeStats(g, AssignGeoLocations(g, opt), 8)
          .InterDcFraction();
  EXPECT_LT(frac_high, frac_no);
}

TEST(GeoLocatorTest, DefaultProfileMatchesPaperObservation) {
  // Fig. 1: with realistic homophily, still >75% of edges are inter-DC.
  Graph g = TestGraph();
  GeoLocatorOptions opt;  // defaults: 8 DCs, homophily 0.3
  const GeoEdgeStats stats =
      ComputeGeoEdgeStats(g, AssignGeoLocations(g, opt), opt.num_dcs);
  EXPECT_GT(stats.InterDcFraction(), 0.70);
  EXPECT_LT(stats.InterDcFraction(), 0.95);
}

TEST(GeoEdgeStatsTest, CountsAreConsistent) {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  Graph g = std::move(b).Build();
  std::vector<DcId> loc = {0, 0, 1, 1};
  const GeoEdgeStats stats = ComputeGeoEdgeStats(g, loc, 2);
  EXPECT_EQ(stats.intra_dc_edges, 2u);  // 0->1 and 2->3
  EXPECT_EQ(stats.inter_dc_edges, 1u);  // 1->2
  EXPECT_EQ(stats.counts[0][0], 1u);
  EXPECT_EQ(stats.counts[0][1], 1u);
  EXPECT_EQ(stats.counts[1][1], 1u);
  EXPECT_DOUBLE_EQ(stats.InterDcFraction(), 1.0 / 3.0);
}

TEST(InputSizesTest, GrowWithDegree) {
  Graph g = TestGraph();
  std::vector<double> sizes = AssignInputSizes(g, 64, 16);
  ASSERT_EQ(sizes.size(), g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(sizes[v], 64.0 + 16.0 * g.Degree(v));
  }
}

TEST(GeoLocatorTest, DeterministicBySeed) {
  Graph g = TestGraph();
  GeoLocatorOptions opt;
  EXPECT_EQ(AssignGeoLocations(g, opt), AssignGeoLocations(g, opt));
  opt.seed = 99;
  EXPECT_NE(AssignGeoLocations(g, GeoLocatorOptions{}),
            AssignGeoLocations(g, opt));
}

}  // namespace
}  // namespace rlcut
