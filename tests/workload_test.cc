#include <gtest/gtest.h>

#include "partition/workload.h"

namespace rlcut {
namespace {

TEST(WorkloadTest, PageRankFullActivity) {
  Workload w = Workload::PageRank(10);
  EXPECT_EQ(w.name, "PR");
  EXPECT_EQ(w.num_iterations(), 10);
  EXPECT_DOUBLE_EQ(w.TotalActivity(), 10.0);
  for (double a : w.activity) EXPECT_DOUBLE_EQ(a, 1.0);
}

TEST(WorkloadTest, SsspRampsUpThenDecays) {
  Workload w = Workload::Sssp(12);
  EXPECT_EQ(w.num_iterations(), 12);
  // Activity peaks somewhere in the middle and is lower at both ends.
  const double first = w.activity.front();
  const double last = w.activity.back();
  double peak = 0;
  for (double a : w.activity) peak = std::max(peak, a);
  EXPECT_GT(peak, first);
  EXPECT_GT(peak, last);
  EXPECT_LE(peak, 1.0);
  EXPECT_LT(w.TotalActivity(), 12.0);
  EXPECT_GT(w.TotalActivity(), 0.0);
}

TEST(WorkloadTest, SubgraphIsomorphismLargeDecayingMessages) {
  Workload w = Workload::SubgraphIsomorphism(4);
  EXPECT_EQ(w.num_iterations(), 4);
  EXPECT_GT(w.apply_base_bytes, Workload::PageRank().apply_base_bytes);
  EXPECT_GT(w.apply_bytes_per_out_edge, 0.0);
  for (size_t i = 1; i < w.activity.size(); ++i) {
    EXPECT_LT(w.activity[i], w.activity[i - 1]);
  }
}

TEST(WorkloadTest, AllPaperWorkloads) {
  auto all = Workload::AllPaperWorkloads();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].name, "PR");
  EXPECT_EQ(all[1].name, "SSSP");
  EXPECT_EQ(all[2].name, "SI");
}

}  // namespace
}  // namespace rlcut
