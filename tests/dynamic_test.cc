#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "cloud/topology.h"
#include "cloud/topology_schedule.h"
#include "graph/generators.h"
#include "graph/geo.h"
#include "graph/temporal.h"
#include "rlcut/dynamic.h"

namespace rlcut {
namespace {

class DynamicTest : public ::testing::Test {
 protected:
  DynamicTest() : topology_(MakeEc2Topology(4, Heterogeneity::kMedium)) {
    PowerLawOptions opt;
    opt.num_vertices = 512;
    opt.num_edges = 4096;
    full_graph_ = GeneratePowerLaw(opt);
    split_ = SplitEdges(full_graph_, 0.7, 13);
    locations_ = [&] {
      GeoLocatorOptions geo;
      geo.num_dcs = 4;
      return AssignGeoLocations(full_graph_, geo);
    }();
  }

  std::unique_ptr<RLCutDynamicDriver> MakeRLCutDriver(double window_budget) {
    RLCutOptions initial;
    initial.max_steps = 3;
    initial.batch_size = 16;
    initial.num_threads = 2;
    RLCutOptions window = initial;
    window.t_opt_seconds = window_budget;
    return std::make_unique<RLCutDynamicDriver>(
        &topology_, Workload::PageRank(),
        PartitionState::AutoTheta(full_graph_), 3, initial, window);
  }

  std::unique_ptr<SpinnerDynamicDriver> MakeSpinnerDriver() {
    SpinnerOptions opt;
    opt.max_iterations = 10;
    return std::make_unique<SpinnerDynamicDriver>(
        &topology_, Workload::PageRank(),
        PartitionState::AutoTheta(full_graph_), 3, opt);
  }

  Topology topology_;
  Graph full_graph_;
  GraphSplit split_;
  std::vector<DcId> locations_;
};

TEST_F(DynamicTest, RLCutDriverInitializesAndAdapts) {
  auto driver = MakeRLCutDriver(0.5);
  const double init_overhead = driver->Initialize(
      full_graph_.num_vertices(), split_.initial_edges, locations_);
  EXPECT_GT(init_overhead, 0.0);
  EXPECT_EQ(driver->graph().num_edges(), split_.initial_edges.size());

  std::vector<Edge> window(split_.remaining_edges.begin(),
                           split_.remaining_edges.begin() + 200);
  const WindowResult result = driver->InsertWindow(window);
  EXPECT_EQ(result.inserted_edges, 200u);
  EXPECT_GT(result.overhead_seconds, 0.0);
  EXPECT_EQ(driver->graph().num_edges(), split_.initial_edges.size() + 200);
  EXPECT_TRUE(driver->state().CheckInvariants());
}

TEST_F(DynamicTest, SpinnerDriverInitializesAndAdapts) {
  auto driver = MakeSpinnerDriver();
  driver->Initialize(full_graph_.num_vertices(), split_.initial_edges,
                     locations_);
  std::vector<Edge> window(split_.remaining_edges.begin(),
                           split_.remaining_edges.begin() + 200);
  const WindowResult result = driver->InsertWindow(window);
  EXPECT_EQ(result.inserted_edges, 200u);
  EXPECT_GT(result.replication_factor, 0.0);
  EXPECT_TRUE(driver->state().CheckInvariants());
}

TEST_F(DynamicTest, MastersCarriedAcrossWindows) {
  auto driver = MakeRLCutDriver(/*window_budget=*/0.0001);  // near-zero
  driver->Initialize(full_graph_.num_vertices(), split_.initial_edges,
                     locations_);
  const std::vector<DcId> before = driver->state().masters();
  // With an effectively zero adaptation budget almost nothing can move;
  // carried masters must dominate.
  std::vector<Edge> window(split_.remaining_edges.begin(),
                           split_.remaining_edges.begin() + 50);
  driver->InsertWindow(window);
  const std::vector<DcId>& after = driver->state().masters();
  uint64_t same = 0;
  for (VertexId v = 0; v < full_graph_.num_vertices(); ++v) {
    if (before[v] == after[v]) ++same;
  }
  EXPECT_GT(same, full_graph_.num_vertices() * 9 / 10);
}

TEST_F(DynamicTest, MultipleWindowsAccumulateEdges) {
  auto driver = MakeRLCutDriver(0.2);
  driver->Initialize(full_graph_.num_vertices(), split_.initial_edges,
                     locations_);
  uint64_t expected = split_.initial_edges.size();
  for (int w = 0; w < 3; ++w) {
    const size_t begin = w * 100;
    std::vector<Edge> window(split_.remaining_edges.begin() + begin,
                             split_.remaining_edges.begin() + begin + 100);
    driver->InsertWindow(window);
    expected += 100;
    EXPECT_EQ(driver->graph().num_edges(), expected);
  }
}

TEST_F(DynamicTest, RemoveWindowDeletesEdges) {
  auto driver = MakeRLCutDriver(0.2);
  driver->Initialize(full_graph_.num_vertices(), split_.initial_edges,
                     locations_);
  const uint64_t before = driver->graph().num_edges();
  std::vector<Edge> to_remove(split_.initial_edges.begin(),
                              split_.initial_edges.begin() + 100);
  const WindowResult result = driver->RemoveWindow(to_remove);
  EXPECT_EQ(result.inserted_edges, 100u);
  EXPECT_EQ(driver->graph().num_edges(), before - 100);
  EXPECT_TRUE(driver->state().CheckInvariants());
}

TEST_F(DynamicTest, RemoveWindowIgnoresMissingEdges) {
  auto driver = MakeSpinnerDriver();
  driver->Initialize(full_graph_.num_vertices(), split_.initial_edges,
                     locations_);
  const uint64_t before = driver->graph().num_edges();
  // Candidate removals from the *remaining* pool; a multigraph can
  // duplicate (src,dst) pairs across the split, so compute how many of
  // these actually exist in the initial edges and expect exactly that
  // many removals.
  std::vector<Edge> missing(split_.remaining_edges.begin(),
                            split_.remaining_edges.begin() + 50);
  auto key = [](const Edge& e) {
    return (static_cast<uint64_t>(e.src) << 32) | e.dst;
  };
  std::multiset<uint64_t> present;
  for (const Edge& e : split_.initial_edges) present.insert(key(e));
  uint64_t expected_removed = 0;
  std::multiset<uint64_t> asked;
  for (const Edge& e : missing) asked.insert(key(e));
  for (auto it = asked.begin(); it != asked.end();) {
    const uint64_t k = *it;
    const uint64_t want = asked.count(k);
    expected_removed += std::min<uint64_t>(want, present.count(k));
    it = asked.upper_bound(k);
  }
  const WindowResult result = driver->RemoveWindow(missing);
  EXPECT_EQ(result.inserted_edges, expected_removed);
  EXPECT_EQ(driver->graph().num_edges(), before - expected_removed);
}

TEST_F(DynamicTest, InsertThenRemoveRestoresEdgeCount) {
  auto driver = MakeRLCutDriver(0.1);
  driver->Initialize(full_graph_.num_vertices(), split_.initial_edges,
                     locations_);
  const uint64_t before = driver->graph().num_edges();
  std::vector<Edge> window(split_.remaining_edges.begin(),
                           split_.remaining_edges.begin() + 200);
  driver->InsertWindow(window);
  driver->RemoveWindow(window);
  EXPECT_EQ(driver->graph().num_edges(), before);
}

TEST_F(DynamicTest, LeopardDriverInitializesAndAdapts) {
  LeopardDynamicDriver driver(&topology_, Workload::PageRank(),
                              PartitionState::AutoTheta(full_graph_), 3);
  driver.Initialize(full_graph_.num_vertices(), split_.initial_edges,
                    locations_);
  // Every edge must be placed after the initial partitioning.
  for (EdgeId e = 0; e < driver.graph().num_edges(); ++e) {
    EXPECT_NE(driver.state().edge_dc(e), kNoDc);
  }
  std::vector<Edge> window(split_.remaining_edges.begin(),
                           split_.remaining_edges.begin() + 200);
  const WindowResult result = driver.InsertWindow(window);
  EXPECT_EQ(result.inserted_edges, 200u);
  for (EdgeId e = 0; e < driver.graph().num_edges(); ++e) {
    EXPECT_NE(driver.state().edge_dc(e), kNoDc);
  }
  EXPECT_TRUE(driver.state().CheckInvariants());
}

TEST_F(DynamicTest, LeopardCarriesPlacementAcrossWindows) {
  LeopardDynamicDriver driver(&topology_, Workload::PageRank(),
                              PartitionState::AutoTheta(full_graph_), 3);
  driver.Initialize(full_graph_.num_vertices(), split_.initial_edges,
                    locations_);
  // Record the WAN of the adapted layout, then insert a tiny window:
  // carried placement means the layout quality cannot collapse.
  const double wan_before = driver.state().WanBytesPerIteration();
  std::vector<Edge> window(split_.remaining_edges.begin(),
                           split_.remaining_edges.begin() + 10);
  driver.InsertWindow(window);
  const double wan_after = driver.state().WanBytesPerIteration();
  EXPECT_LT(wan_after, wan_before * 1.2);
}

TEST_F(DynamicTest, LeopardReplicationStaysBelowRandom) {
  LeopardDynamicDriver driver(&topology_, Workload::PageRank(),
                              PartitionState::AutoTheta(full_graph_), 3);
  driver.Initialize(full_graph_.num_vertices(), split_.initial_edges,
                    locations_);
  // Replica-affinity placement keeps lambda well below the DC count.
  EXPECT_LT(driver.state().ReplicationFactor(), 3.0);
}

TEST_F(DynamicTest, SetTopologyRepricesWithoutMovingMasters) {
  auto driver = MakeRLCutDriver(0.2);
  driver->Initialize(full_graph_.num_vertices(), split_.initial_edges,
                     locations_);
  const std::vector<DcId> before = driver->state().masters();
  const double transfer_before =
      driver->state().TransferSecondsPerIteration();

  // Halve every DC's bandwidth: pure re-pricing, no adaptation.
  TopologySchedule schedule(
      topology_, {[&] {
        TopologyEvent e;
        e.dc = kAllDcs;
        e.kind = TopologyEventKind::kBandwidthScale;
        e.uplink_factor = 0.5;
        e.downlink_factor = 0.5;
        return e;
      }()});
  driver->SetTopology(schedule.EffectiveAt(0));
  EXPECT_EQ(driver->state().masters(), before);
  EXPECT_TRUE(driver->state().CheckInvariants());
  // Half the bandwidth means exactly twice the transfer time.
  EXPECT_NEAR(driver->state().TransferSecondsPerIteration(),
              2.0 * transfer_before, 1e-9 * transfer_before);
}

TEST_F(DynamicTest, OnTopologyEventBelowThresholdOnlyReprices) {
  auto driver = MakeRLCutDriver(0.2);
  driver->Initialize(full_graph_.num_vertices(), split_.initial_edges,
                     locations_);
  const std::vector<DcId> before = driver->state().masters();

  // A 1% drift stays under the 5% default trigger threshold.
  TopologySchedule schedule(topology_, {[&] {
    TopologyEvent e;
    e.dc = 0;
    e.kind = TopologyEventKind::kBandwidthScale;
    e.uplink_factor = 0.99;
    e.downlink_factor = 0.99;
    return e;
  }()});
  const ReoptimizationResult result =
      driver->OnTopologyEvent(schedule.EffectiveAt(0));
  EXPECT_FALSE(result.triggered);
  EXPECT_EQ(result.affected_vertices, 0u);
  EXPECT_EQ(driver->state().masters(), before);
  EXPECT_NEAR(result.drift, 0.01, 1e-9);
}

TEST_F(DynamicTest, OnTopologyEventTriggersAndNeverRegresses) {
  auto driver = MakeRLCutDriver(0.2);
  driver->Initialize(full_graph_.num_vertices(), split_.initial_edges,
                     locations_);

  const TopologySchedule schedule = MakeBrownoutSchedule(
      topology_, /*dc=*/0, /*start_step=*/0, /*end_step=*/100,
      /*bandwidth_factor=*/0.25);
  const ReoptimizationResult result =
      driver->OnTopologyEvent(schedule.EffectiveAt(0));
  EXPECT_TRUE(result.triggered);
  EXPECT_GT(result.affected_vertices, 0u);
  EXPECT_NEAR(result.drift, 0.75, 1e-9);
  // Rollback-on-regression guarantees the adapted plan is never worse
  // than the carried plan under the new topology.
  EXPECT_LE(result.transfer_seconds_after,
            result.transfer_seconds_before * (1 + 1e-12));
  EXPECT_TRUE(driver->state().CheckInvariants());
  // The reported objective is the state's live objective (Eq. 1 summed
  // over the workload's iterations).
  EXPECT_NEAR(driver->state().CurrentObjective().transfer_seconds,
              result.transfer_seconds_after,
              1e-9 * result.transfer_seconds_after);

  // Restoring the base topology is itself an event (drift back up).
  const ReoptimizationResult back =
      driver->OnTopologyEvent(schedule.EffectiveAt(100));
  EXPECT_TRUE(back.triggered);
  EXPECT_LE(back.transfer_seconds_after,
            back.transfer_seconds_before * (1 + 1e-12));
}

TEST_F(DynamicTest, RLCutWindowOverheadBounded) {
  const double budget = 0.3;
  auto driver = MakeRLCutDriver(budget);
  driver->Initialize(full_graph_.num_vertices(), split_.initial_edges,
                     locations_);
  std::vector<Edge> window(split_.remaining_edges.begin(),
                           split_.remaining_edges.begin() + 500);
  const WindowResult result = driver->InsertWindow(window);
  // Rebuild + one overshooting step allowed; but nowhere near unbounded.
  EXPECT_LT(result.overhead_seconds, budget + 2.0);
}

}  // namespace
}  // namespace rlcut
