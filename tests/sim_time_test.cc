// SimTime: the one monotonic time type shared by stream micro-batches
// and topology-schedule events, plus the interleaved-event-ordering
// regression for the old seconds-vs-steps convention mismatch.

#include "common/sim_time.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "cloud/topology.h"
#include "cloud/topology_schedule.h"
#include "graph/temporal.h"
#include "gtest/gtest.h"

namespace rlcut {
namespace {

TEST(SimTimeTest, SecondsRoundTripThroughMicros) {
  const SimTime t(1.5);
  EXPECT_EQ(t.micros(), 1'500'000);
  EXPECT_DOUBLE_EQ(t.seconds(), 1.5);
  EXPECT_EQ(SimTime::Micros(1'500'000), t);
}

TEST(SimTimeTest, ImplicitFromArithmeticSecondsRounds) {
  const SimTime half(0.4999999999);
  EXPECT_EQ(half.micros(), 500'000);
  const SimTime exact = 3;  // one legacy schedule step == one second
  EXPECT_EQ(exact.micros(), 3'000'000);
  EXPECT_EQ(exact.step(), 3);
}

TEST(SimTimeTest, OrderingAndArithmetic) {
  const SimTime a(1.0);
  const SimTime b(2.5);
  EXPECT_LT(a, b);
  EXPECT_EQ(a + SimTime(1.5), b);
  EXPECT_EQ(b - a, SimTime(1.5));
  EXPECT_LT(SimTime::Min(), SimTime(0));
  EXPECT_LT(SimTime(1e9), SimTime::Max());
}

TEST(SimTimeTest, StreamsAsSeconds) {
  std::ostringstream out;
  out << SimTime(2.25);
  EXPECT_EQ(out.str(), "2.25s");
}

// Regression: TemporalStream timestamps and TopologySchedule events used
// to live on different clocks (fractional seconds vs integer steps), so
// "which comes first" depended on the caller's conversion. Both now
// emit SimTime; interleaving must order correctly without conversion.
TEST(SimTimeTest, StreamAndTopologyEventsInterleaveOnOneTimeline) {
  TemporalStreamOptions stream_options;
  stream_options.num_vertices = 64;
  stream_options.num_edges = 256;
  stream_options.horizon_seconds = 1000;
  stream_options.seed = 5;
  const TemporalGraph stream = GenerateDiurnalStream(stream_options);

  const Topology base = MakeUniformTopology(3);
  // Schedule steps are seconds on the shared timeline.
  const TopologySchedule schedule =
      MakeBrownoutSchedule(base, /*dc=*/1, /*start_step=*/200,
                           /*end_step=*/600, /*bandwidth_factor=*/0.5);
  ASSERT_TRUE(schedule.Validate().ok());

  const SimTime brownout_start(200);
  const SimTime recovery(600);
  EXPECT_EQ(schedule.NextEventAfter(SimTime(0)), brownout_start);
  EXPECT_EQ(schedule.NextEventAfter(brownout_start), recovery);

  // Merge stream edges and topology events by SimTime directly; the
  // merged order must agree with micros() on every adjacent pair.
  struct Event {
    SimTime time;
    bool is_topology;
  };
  std::vector<Event> merged;
  for (const TimedEdge& e : stream.edges()) {
    merged.push_back({e.time, false});
  }
  for (SimTime t = schedule.NextEventAfter(SimTime(0)); t >= SimTime(0);
       t = schedule.NextEventAfter(t)) {
    merged.push_back({t, true});
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Event& a, const Event& b) {
                     return a.time < b.time;
                   });
  bool saw_topology = false;
  for (size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LE(merged[i - 1].time.micros(), merged[i].time.micros());
    saw_topology |= merged[i].is_topology;
  }
  EXPECT_TRUE(saw_topology);

  // An edge landing inside the brownout window must see the degraded
  // topology; one after recovery must see the base again.
  EXPECT_LT(schedule.EffectiveAt(SimTime(300)).Uplink(1),
            base.Uplink(1));
  EXPECT_DOUBLE_EQ(schedule.EffectiveAt(SimTime(700)).Uplink(1),
                   base.Uplink(1));

  // Stream slicing with the same SimTime values the schedule uses.
  const uint64_t before = stream.CountBefore(brownout_start);
  const uint64_t during =
      stream.EdgesInWindow(brownout_start, recovery).size();
  const uint64_t after = stream.edges().size() - before - during;
  EXPECT_EQ(before + during + after, stream.edges().size());
}

}  // namespace
}  // namespace rlcut
