#include "partition/dense_bitset.h"

#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace rlcut {
namespace {

TEST(DenseBitsetTest, EmptyBitset) {
  DenseBitset b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.num_words(), 0u);
  EXPECT_EQ(b.Popcount(), 0u);
  EXPECT_FALSE(b.Any());
  int visited = 0;
  b.ForEachSetBit([&](size_t) { ++visited; });
  EXPECT_EQ(visited, 0);
}

TEST(DenseBitsetTest, SetTestClear) {
  DenseBitset b(130);
  EXPECT_FALSE(b.Test(0));
  b.Set(0);
  b.Set(64);  // first bit of the second word
  b.Set(129);  // last valid bit, third word
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(63));
  EXPECT_FALSE(b.Test(65));
  EXPECT_EQ(b.Popcount(), 3u);
  b.Clear(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Popcount(), 2u);
  b.SetTo(7, true);
  EXPECT_TRUE(b.Test(7));
  b.SetTo(7, false);
  EXPECT_FALSE(b.Test(7));
}

TEST(DenseBitsetTest, WordBoundaries) {
  // Exercise the bits adjacent to every word boundary of a 4-word set.
  DenseBitset b(256);
  const std::vector<size_t> positions = {0, 63, 64, 127, 128, 191, 192, 255};
  for (size_t p : positions) b.Set(p);
  EXPECT_EQ(b.Popcount(), positions.size());
  for (size_t p : positions) EXPECT_TRUE(b.Test(p)) << p;
  // Neighbors of the set bits stay clear: no cross-word bleed.
  EXPECT_FALSE(b.Test(1));
  EXPECT_FALSE(b.Test(62));
  EXPECT_FALSE(b.Test(65));
  EXPECT_FALSE(b.Test(126));
  EXPECT_FALSE(b.Test(129));
  EXPECT_FALSE(b.Test(254));
  std::vector<size_t> seen;
  b.ForEachSetBit([&](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, positions);  // increasing order
}

TEST(DenseBitsetTest, SizeNotMultipleOfWord) {
  // Sizes straddling a word boundary: 63, 64, 65 bits.
  for (size_t size : {1u, 63u, 64u, 65u, 100u}) {
    DenseBitset b(size);
    EXPECT_EQ(b.num_words(), (size + 63) / 64) << size;
    for (size_t i = 0; i < size; ++i) b.Set(i);
    EXPECT_EQ(b.Popcount(), size) << size;
    EXPECT_TRUE(b.Any());
    // The invariant: bits beyond size() stay zero, so whole-word scans
    // need no tail masking.
    if (size % 64 != 0) {
      const uint64_t tail_word = b.words()[b.num_words() - 1];
      EXPECT_EQ(tail_word >> (size % 64), 0u) << size;
    }
  }
}

TEST(DenseBitsetTest, FullThenClearAll) {
  DenseBitset b(200);
  for (size_t i = 0; i < 200; ++i) b.Set(i);
  EXPECT_EQ(b.Popcount(), 200u);
  b.ClearAll();
  EXPECT_EQ(b.Popcount(), 0u);
  EXPECT_FALSE(b.Any());
  for (size_t w = 0; w < b.num_words(); ++w) EXPECT_EQ(b.words()[w], 0u);
}

TEST(DenseBitsetTest, ResizeGrowPreservesAndShrinkClampsTail) {
  DenseBitset b(70);
  b.Set(0);
  b.Set(69);
  b.Resize(200);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(69));
  EXPECT_EQ(b.Popcount(), 2u);
  EXPECT_FALSE(b.Test(199));
  b.Set(199);
  // Shrink below the highest set bit: the dropped bits must vanish from
  // both Test (well, they are out of range) and the word invariant.
  b.Resize(65);
  EXPECT_EQ(b.size(), 65u);
  EXPECT_TRUE(b.Test(0));
  EXPECT_EQ(b.Popcount(), 1u);  // bit 69 and 199 are gone
  EXPECT_EQ(b.words()[b.num_words() - 1] >> 1, 0u);
  // Re-growing must not resurrect the dropped bits.
  b.Resize(200);
  EXPECT_EQ(b.Popcount(), 1u);
  EXPECT_FALSE(b.Test(69));
  EXPECT_FALSE(b.Test(199));
}

TEST(DenseBitsetTest, EqualityComparesSizeAndBits) {
  DenseBitset a(100);
  DenseBitset b(100);
  EXPECT_EQ(a, b);
  a.Set(42);
  EXPECT_NE(a, b);
  b.Set(42);
  EXPECT_EQ(a, b);
  DenseBitset c(101);
  c.Set(42);
  EXPECT_NE(a, c);  // same words, different size
}

TEST(DenseBitsetTest, RandomizedAgainstReferenceVector) {
  Rng rng(12345);
  const size_t size = 777;  // not a word multiple
  DenseBitset b(size);
  std::vector<bool> ref(size, false);
  for (int step = 0; step < 5000; ++step) {
    const size_t i = static_cast<size_t>(rng.UniformInt(size));
    const bool value = rng.UniformInt(2) == 1;
    b.SetTo(i, value);
    ref[i] = value;
  }
  size_t expected_pop = 0;
  for (size_t i = 0; i < size; ++i) {
    EXPECT_EQ(b.Test(i), ref[i]) << i;
    expected_pop += ref[i] ? 1 : 0;
  }
  EXPECT_EQ(b.Popcount(), expected_pop);
  std::vector<size_t> seen;
  b.ForEachSetBit([&](size_t i) { seen.push_back(i); });
  std::vector<size_t> expected;
  for (size_t i = 0; i < size; ++i) {
    if (ref[i]) expected.push_back(i);
  }
  EXPECT_EQ(seen, expected);
}

}  // namespace
}  // namespace rlcut
