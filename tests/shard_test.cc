#include <memory>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "cloud/topology.h"
#include "graph/generators.h"
#include "graph/geo.h"
#include "partition/plan_delta.h"
#include "rlcut/shard.h"
#include "rlcut/trainer.h"

namespace rlcut {
namespace {

Graph ChainGraph(VertexId n) {
  GraphBuilder b(n);
  for (VertexId v = 0; v + 1 < n; ++v) b.AddEdge(v, v + 1);
  return std::move(b).Build();
}

// ---- ShardLayout ----------------------------------------------------

TEST(ShardLayoutTest, RangesCoverVertexSpaceContiguously) {
  PowerLawOptions opt;
  opt.num_vertices = 211;  // deliberately not a multiple of the counts
  opt.num_edges = 1600;
  const Graph graph = GeneratePowerLaw(opt);

  for (const size_t num_shards : {1u, 2u, 5u, 8u, 16u}) {
    const ShardLayout layout(graph, num_shards);
    ASSERT_EQ(layout.num_shards(), num_shards);
    EXPECT_EQ(layout.shard_begin(0), 0u);
    EXPECT_EQ(layout.shard_end(num_shards - 1), graph.num_vertices());
    for (size_t s = 0; s + 1 < num_shards; ++s) {
      // Contiguous and non-overlapping: each range starts where the
      // previous one ends.
      EXPECT_EQ(layout.shard_end(s), layout.shard_begin(s + 1));
      EXPECT_LE(layout.shard_begin(s), layout.shard_end(s));
    }
  }
}

TEST(ShardLayoutTest, OwnerOfAgreesWithRanges) {
  PowerLawOptions opt;
  opt.num_vertices = 160;
  opt.num_edges = 960;
  const Graph graph = GeneratePowerLaw(opt);
  const ShardLayout layout(graph, 7);

  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const size_t s = layout.OwnerOf(v);
    ASSERT_LT(s, layout.num_shards());
    EXPECT_GE(v, layout.shard_begin(s));
    EXPECT_LT(v, layout.shard_end(s));
  }
}

TEST(ShardLayoutTest, LayoutIsAPureFunctionOfGraphAndCount) {
  PowerLawOptions opt;
  opt.num_vertices = 128;
  opt.num_edges = 900;
  const Graph graph = GeneratePowerLaw(opt);
  const ShardLayout a(graph, 6);
  const ShardLayout b(graph, 6);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    EXPECT_EQ(a.OwnerOf(v), b.OwnerOf(v));
  }
}

TEST(ShardLayoutTest, MoreShardsThanVerticesLeavesTrailingShardsEmpty) {
  const Graph graph = ChainGraph(3);
  const ShardLayout layout(graph, 8);
  ASSERT_EQ(layout.num_shards(), 8u);
  EXPECT_EQ(layout.shard_end(7), graph.num_vertices());
  uint64_t owned = 0;
  for (size_t s = 0; s < 8; ++s) {
    owned += layout.shard_end(s) - layout.shard_begin(s);
  }
  EXPECT_EQ(owned, graph.num_vertices());
}

TEST(ShardLayoutTest, RangesAreRoughlyDegreeBalanced) {
  PowerLawOptions opt;
  opt.num_vertices = 400;
  opt.num_edges = 3200;
  const Graph graph = GeneratePowerLaw(opt);
  const size_t num_shards = 4;
  const ShardLayout layout(graph, num_shards);

  uint64_t total = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    total += graph.Degree(v) + 1;
  }
  // The prefix sweep stops each shard at the first vertex that crosses
  // the ideal boundary, so a shard overshoots by at most one vertex's
  // weight. Max degree bounds that overshoot; assert a generous 2x.
  for (size_t s = 0; s < num_shards; ++s) {
    uint64_t weight = 0;
    for (VertexId v = layout.shard_begin(s); v < layout.shard_end(s); ++v) {
      weight += graph.Degree(v) + 1;
    }
    EXPECT_LE(weight, 2 * total / num_shards + graph.MaxInDegree())
        << "shard " << s;
  }
}

// ---- PlanReplica ----------------------------------------------------

TEST(PlanReplicaTest, ApplyCommitsMovesAndAdvancesVersion) {
  PlanReplica replica({0, 1, 2, 0}, /*num_dcs=*/3);
  EXPECT_EQ(replica.version(), 0u);

  PlanDelta delta;
  delta.base_version = 0;
  delta.moves.push_back(PlanMove{0, 0, 2});
  delta.moves.push_back(PlanMove{3, 0, 1});
  ASSERT_TRUE(replica.Apply(delta).ok());
  EXPECT_EQ(replica.version(), 1u);
  EXPECT_EQ(replica.masters(), (std::vector<DcId>{2, 1, 2, 1}));

  // An empty delta still advances the version (one sync interval).
  PlanDelta empty;
  empty.base_version = 1;
  ASSERT_TRUE(replica.Apply(empty).ok());
  EXPECT_EQ(replica.version(), 2u);
}

TEST(PlanReplicaTest, FromChainsThroughDuplicateVertices) {
  PlanReplica replica({0, 0}, /*num_dcs=*/3);
  PlanDelta delta;
  delta.base_version = 0;
  // Vertex 0 moves twice within one delta; the second move's `from` is
  // the first move's destination, not the pre-delta master.
  delta.moves.push_back(PlanMove{0, 0, 1});
  delta.moves.push_back(PlanMove{0, 1, 2});
  ASSERT_TRUE(replica.Apply(delta).ok());
  EXPECT_EQ(replica.master(0), 2);
}

TEST(PlanReplicaTest, RejectedDeltaLeavesReplicaUntouched) {
  PlanReplica replica({0, 1}, /*num_dcs=*/2);

  {
    // Stale base version.
    PlanDelta delta;
    delta.base_version = 5;
    const Status s = replica.Apply(delta);
    EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  }
  {
    // Vertex outside the replica.
    PlanDelta delta;
    delta.moves.push_back(PlanMove{9, 0, 1});
    EXPECT_EQ(replica.Apply(delta).code(), StatusCode::kOutOfRange);
  }
  {
    // Unknown destination DC.
    PlanDelta delta;
    delta.moves.push_back(PlanMove{0, 0, 7});
    EXPECT_EQ(replica.Apply(delta).code(), StatusCode::kOutOfRange);
  }
  {
    // Diverged `from`: a valid first move, then one whose from is wrong.
    // Nothing applies — not even the valid prefix.
    PlanDelta delta;
    delta.moves.push_back(PlanMove{0, 0, 1});
    delta.moves.push_back(PlanMove{1, 0, 1});  // replica has 1 at DC 1
    EXPECT_EQ(replica.Apply(delta).code(), StatusCode::kFailedPrecondition);
  }
  EXPECT_EQ(replica.version(), 0u);
  EXPECT_EQ(replica.masters(), (std::vector<DcId>{0, 1}));
}

// ---- Options validation ---------------------------------------------

TEST(ValidateRLCutOptionsTest, FlagsEachOutOfRangeField) {
  const RLCutOptions valid;
  EXPECT_TRUE(ValidateRLCutOptions(valid).ok());

  auto expect_invalid = [](RLCutOptions options) {
    const Status s = ValidateRLCutOptions(options);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
  };
  {
    RLCutOptions o;
    o.max_steps = 0;
    expect_invalid(o);
  }
  {
    RLCutOptions o;
    o.batch_size = -1;
    expect_invalid(o);
  }
  {
    RLCutOptions o;
    o.num_threads = -2;
    expect_invalid(o);
  }
  {
    RLCutOptions o;
    o.num_shards = -1;
    expect_invalid(o);
  }
  {
    RLCutOptions o;
    o.shard_sync_batches = -3;
    expect_invalid(o);
  }
  {
    RLCutOptions o;
    o.chunk_max_retries = -1;
    expect_invalid(o);
  }
  {
    RLCutOptions o;
    o.checkpoint_every_steps = -1;
    expect_invalid(o);
  }
  {
    // Auto-checkpointing enabled with nowhere to write.
    RLCutOptions o;
    o.checkpoint_every_steps = 2;
    o.checkpoint_path.clear();
    expect_invalid(o);
  }
}

TEST(ValidateRLCutOptionsTest, CreateReturnsStatusInsteadOfCrashing) {
  RLCutOptions bad;
  bad.max_steps = -5;
  const Result<std::unique_ptr<RLCutTrainer>> r = RLCutTrainer::Create(bad);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  RLCutOptions good;
  good.num_shards = 3;
  good.num_threads = 2;
  Result<std::unique_ptr<RLCutTrainer>> trainer = RLCutTrainer::Create(good);
  ASSERT_TRUE(trainer.ok()) << trainer.status().ToString();
  EXPECT_EQ((*trainer)->num_shards(), 3u);
  EXPECT_EQ((*trainer)->num_threads(), 2u);
}

TEST(ValidateRLCutOptionsTest, ConstructorClampsAndResolvesDefaults) {
  RLCutOptions options;
  options.max_steps = -1;
  options.batch_size = 0;
  options.num_shards = 0;
  const RLCutTrainer trainer(options);
  EXPECT_EQ(trainer.options().max_steps, 1);
  EXPECT_EQ(trainer.options().batch_size, 1);
  EXPECT_EQ(trainer.num_shards(), size_t{kDefaultNumShards});
}

// ---- Trainer-level determinism smoke tests --------------------------
// The exhaustive version of these lanes is the differential oracle
// (check/shard_oracle.h, `rlcut_audit --mode=shard`); these keep a fast
// canary in the unit suite.

class ShardTrainerTest : public ::testing::Test {
 protected:
  ShardTrainerTest() : topology_(MakeEc2Topology(4, Heterogeneity::kMedium)) {
    PowerLawOptions opt;
    opt.num_vertices = 192;
    opt.num_edges = 1536;
    graph_ = GeneratePowerLaw(opt);
    GeoLocatorOptions geo;
    geo.num_dcs = 4;
    locations_ = AssignGeoLocations(graph_, geo);
    sizes_ = AssignInputSizes(graph_);
    config_.model = ComputeModel::kHybridCut;
    config_.theta = PartitionState::AutoTheta(graph_);
    config_.workload = Workload::PageRank();
  }

  RLCutOptions Options(int num_shards, int num_threads) const {
    RLCutOptions options;
    options.max_steps = 4;
    options.batch_size = 16;
    options.num_shards = num_shards;
    options.num_threads = num_threads;
    options.seed = 17;
    options.agent_visit_budget =
        static_cast<int64_t>(graph_.num_vertices()) * 4;
    options.convergence_epsilon = 1e-12;
    return options;
  }

  std::vector<DcId> TrainedMasters(const RLCutOptions& options) const {
    auto state = std::make_unique<PartitionState>(
        &graph_, &topology_, &locations_, &sizes_, config_);
    state->ResetDerived(locations_);
    std::vector<VertexId> all(graph_.num_vertices());
    std::iota(all.begin(), all.end(), 0u);
    AutomatonPool pool(graph_.num_vertices(), topology_.num_dcs(), options);
    RLCutTrainer(options).Train(state.get(), std::move(all), &pool);
    return state->masters();
  }

  Topology topology_;
  Graph graph_;
  std::vector<DcId> locations_;
  std::vector<double> sizes_;
  PartitionConfig config_;
};

TEST_F(ShardTrainerTest, TrajectoryIsInvariantToThreadCount) {
  for (const ActionSelection selection :
       {ActionSelection::kUcbBlend, ActionSelection::kProbability}) {
    RLCutOptions reference_options = Options(/*num_shards=*/4,
                                             /*num_threads=*/1);
    reference_options.selection = selection;
    const std::vector<DcId> reference = TrainedMasters(reference_options);
    for (const int threads : {2, 5}) {
      RLCutOptions options = reference_options;
      options.num_threads = threads;
      EXPECT_EQ(TrainedMasters(options), reference)
          << "threads=" << threads
          << " selection=" << static_cast<int>(selection);
    }
  }
}

TEST_F(ShardTrainerTest, DeterministicModesAreInvariantToShardCount) {
  // Per-vertex automaton updates commute within a batch and no PRNG is
  // drawn, so sharded and single-shard runs take identical trajectories.
  const std::vector<DcId> single =
      TrainedMasters(Options(/*num_shards=*/1, /*num_threads=*/2));
  for (const int shards : {2, 4, 8}) {
    EXPECT_EQ(TrainedMasters(Options(shards, /*num_threads=*/2)), single)
        << "shards=" << shards;
  }
}

TEST_F(ShardTrainerTest, StragglerMitigationNeverAffectsTheTrajectory) {
  RLCutOptions with = Options(/*num_shards=*/4, /*num_threads=*/3);
  RLCutOptions without = with;
  without.straggler_mitigation = false;
  EXPECT_EQ(TrainedMasters(with), TrainedMasters(without));
}

}  // namespace
}  // namespace rlcut
