#include <gtest/gtest.h>

#include "cloud/topology.h"
#include "common/random.h"
#include "graph/generators.h"
#include "partition/metrics.h"

namespace rlcut {
namespace {

TEST(MetricsTest, ReportMatchesStateAccessors) {
  PowerLawOptions opt;
  opt.num_vertices = 512;
  opt.num_edges = 4096;
  Graph g = GeneratePowerLaw(opt);
  Topology topo = MakeEc2Topology(8, Heterogeneity::kMedium);
  Rng rng(1);
  std::vector<DcId> locations(g.num_vertices());
  for (auto& l : locations) l = static_cast<DcId>(rng.UniformInt(8));
  std::vector<double> sizes(g.num_vertices(), 1e6);

  PartitionConfig config;
  config.model = ComputeModel::kHybridCut;
  config.theta = PartitionState::AutoTheta(g);
  PartitionState state(&g, &topo, &locations, &sizes, config);
  state.ResetDerived(locations);

  const PartitionReport report = MakeReport(state);
  const Objective obj = state.CurrentObjective();
  EXPECT_DOUBLE_EQ(report.transfer_seconds, obj.transfer_seconds);
  EXPECT_DOUBLE_EQ(report.total_cost, obj.cost_dollars);
  EXPECT_DOUBLE_EQ(report.move_cost, state.MoveCost());
  EXPECT_DOUBLE_EQ(report.replication_factor, state.ReplicationFactor());
  EXPECT_GE(report.master_balance, 1.0);
  EXPECT_GE(report.edge_balance, 1.0);
  EXPECT_EQ(report.num_high_degree, state.NumHighDegree());
  EXPECT_FALSE(report.ToString().empty());
}

TEST(MetricsTest, PerfectBalanceIsOne) {
  // Ring split evenly across 2 DCs by parity has perfectly balanced
  // masters.
  Graph g = GenerateRing(16, 1);
  Topology topo = MakeUniformTopology(2);
  std::vector<DcId> locations(16, 0);
  std::vector<double> sizes(16, 1e6);
  PartitionConfig config;
  config.model = ComputeModel::kEdgeCut;
  PartitionState state(&g, &topo, &locations, &sizes, config);
  std::vector<DcId> masters(16);
  for (VertexId v = 0; v < 16; ++v) masters[v] = v % 2;
  state.ResetDerived(masters);
  const PartitionReport report = MakeReport(state);
  EXPECT_DOUBLE_EQ(report.master_balance, 1.0);
}

}  // namespace
}  // namespace rlcut
