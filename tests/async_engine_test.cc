#include <cmath>

#include <gtest/gtest.h>

#include "cloud/topology.h"
#include "common/random.h"
#include "engine/async_engine.h"
#include "engine/gas_engine.h"
#include "engine/reference.h"
#include "engine/vertex_program.h"
#include "graph/generators.h"
#include "graph/transform.h"

namespace rlcut {
namespace {

struct AsyncFixture {
  explicit AsyncFixture(Graph graph_in, int num_dcs = 4)
      : graph(std::move(graph_in)),
        topology(MakeEc2Topology(num_dcs, Heterogeneity::kMedium)) {
    locations.resize(graph.num_vertices());
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      locations[v] = static_cast<DcId>(HashU64(v) % num_dcs);
    }
    sizes.assign(graph.num_vertices(), 1e6);
    PartitionConfig config;
    config.model = ComputeModel::kHybridCut;
    config.theta = PartitionState::AutoTheta(graph);
    state = std::make_unique<PartitionState>(&graph, &topology, &locations,
                                             &sizes, config);
    state->ResetDerived(locations);
  }

  Graph graph;
  Topology topology;
  std::vector<DcId> locations;
  std::vector<double> sizes;
  std::unique_ptr<PartitionState> state;
};

TEST(AsyncEngineTest, SsspMatchesBfsReference) {
  PowerLawOptions opt;
  opt.num_vertices = 512;
  opt.num_edges = 4096;
  AsyncFixture fix(GeneratePowerLaw(opt));
  const std::vector<double> expected = ReferenceSssp(fix.graph, 3);

  auto program = MakeSssp(3);
  AsyncGasEngine engine(fix.state.get());
  const AsyncRunResult result = engine.Run(program.get());
  for (VertexId v = 0; v < fix.graph.num_vertices(); ++v) {
    if (std::isinf(expected[v])) {
      EXPECT_TRUE(std::isinf(result.values[v])) << "vertex " << v;
    } else {
      EXPECT_DOUBLE_EQ(result.values[v], expected[v]) << "vertex " << v;
    }
  }
  EXPECT_GT(result.messages, 0u);
}

TEST(AsyncEngineTest, WeightedSsspMatchesDijkstra) {
  PowerLawOptions opt;
  opt.num_vertices = 256;
  opt.num_edges = 2048;
  AsyncFixture fix(GeneratePowerLaw(opt));
  const std::vector<double> expected =
      ReferenceWeightedSssp(fix.graph, 1, 8);
  auto program = MakeWeightedSssp(1, 8);
  AsyncGasEngine engine(fix.state.get());
  const AsyncRunResult result = engine.Run(program.get());
  for (VertexId v = 0; v < fix.graph.num_vertices(); ++v) {
    if (std::isinf(expected[v])) {
      EXPECT_TRUE(std::isinf(result.values[v]));
    } else {
      EXPECT_DOUBLE_EQ(result.values[v], expected[v]);
    }
  }
}

TEST(AsyncEngineTest, ConnectedComponentsMatchUnionFind) {
  PowerLawOptions opt;
  opt.num_vertices = 256;
  opt.num_edges = 512;  // sparse: several components
  Graph sym = Symmetrize(GeneratePowerLaw(opt));
  const std::vector<double> expected = ReferenceConnectedComponents(sym);
  AsyncFixture fix(std::move(sym));
  auto program = MakeConnectedComponents();
  AsyncGasEngine engine(fix.state.get());
  const AsyncRunResult result = engine.Run(program.get());
  for (VertexId v = 0; v < fix.graph.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(result.values[v], expected[v]) << "vertex " << v;
  }
}

TEST(AsyncEngineDeathTest, RejectsNonMonotonePrograms) {
  AsyncFixture fix(GenerateRing(16, 1));
  AsyncGasEngine engine(fix.state.get());
  auto pagerank = MakePageRank(5);
  EXPECT_DEATH(engine.Run(pagerank.get()), "monotone");
}

TEST(AsyncEngineTest, SingleDcRunIsInstantaneous) {
  AsyncFixture fix(GenerateRing(32, 1));
  // All masters in one DC: no WAN messages, zero completion time.
  std::vector<DcId> all_zero(fix.graph.num_vertices(), 0);
  fix.state->ResetDerived(all_zero);
  auto program = MakeSssp(0);
  AsyncGasEngine engine(fix.state.get());
  const AsyncRunResult result = engine.Run(program.get());
  EXPECT_DOUBLE_EQ(result.completion_seconds, 0.0);
  EXPECT_DOUBLE_EQ(result.total_bytes, 0.0);
  EXPECT_DOUBLE_EQ(result.values[16], 16.0);
}

TEST(AsyncEngineTest, AsyncStaysWithinAnOrderOfMagnitudeOfSync) {
  // Async trades barrier stalls for unaggregated per-relaxation
  // messages; on WAN-sized messages the latter usually costs more (see
  // bench_async_vs_sync), but the two must stay comparable.
  PowerLawOptions opt;
  opt.num_vertices = 1024;
  opt.num_edges = 8192;
  AsyncFixture fix(GeneratePowerLaw(opt), /*num_dcs=*/8);

  auto sync_program = MakeSssp(3);
  GasEngine sync_engine(fix.state.get());
  const double sync_time =
      sync_engine.Run(sync_program.get()).total_transfer_seconds;

  auto async_program = MakeSssp(3);
  AsyncGasEngine async_engine(fix.state.get());
  const double async_time =
      async_engine.Run(async_program.get()).completion_seconds;

  EXPECT_GT(async_time, 0.0);
  EXPECT_LT(async_time, sync_time * 10.0);
  EXPECT_GT(async_time, sync_time * 0.05);
}

TEST(AsyncEngineTest, MessageCountsAreSane) {
  AsyncFixture fix(GenerateRing(64, 1));
  auto program = MakeSssp(0);
  AsyncGasEngine engine(fix.state.get());
  const AsyncRunResult result = engine.Run(program.get());
  // Ring SSSP: each vertex improves exactly once; messages stay linear.
  EXPECT_LT(result.messages, 64u * 16u);
  EXPECT_LE(result.local_messages, result.messages);
}

}  // namespace
}  // namespace rlcut
